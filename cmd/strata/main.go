// Command strata is the command-line front end of the stratified-sampling
// library: it generates synthetic author populations, answers SSD and MSSD
// queries with the paper's MapReduce algorithms, and regenerates every table
// and figure of the paper's evaluation.
//
// Usage:
//
//	strata [-v] [-log level] [-trace spans.jsonl] [-debug-addr addr] [-progress]
//	       [-backend inproc|subprocess|tcp] [-workers n] [-routed-shuffle]
//	       [-wire binary|gob] <command> ...
//
//	strata generate    -n 10000 [-uniform] [-graph] [-seed 1] [-stats] [-csv]
//	strata sample      -n 10000 -query "nop >= 100 : 5; nop < 100 : 10" [-slaves 4]
//	                   [-layout contiguous] [-naive] [-estimate ndcc]
//	strata audit       -n 10000 -query "nop >= 100 : 5; nop < 100 : 10" [-runs 30]
//	                   [-alpha 1e-4] [-estimate nop] [-cps [-group Small]] [-json]
//	strata mssd        -n 10000 -group Small -sample 100 [-runs 5] [-ip] [-explain]
//	                   [-waves 3]
//	strata query       -design design.json [-data pop.csv] [-ip] [-out answers.csv]
//	strata serve       [-addr localhost:8372] [-n 100000] [-data pop.csv] [-seed 1]
//	                   [-slaves 4] [-window 5ms] [-max-batch 64] [-cache 1024]
//	                   [-qps 0 -burst 16] [-no-prune] [-drain-timeout 10s]
//	strata loadgen     -addr host:port | -selfhost [-clients 32] [-requests 2000]
//	                   [-queries 8] [-window 5ms] [-compare] [-json report.json]
//	strata trace       [-top 5] spans.jsonl
//	strata experiments [-run all|table2|figure6|figure7|figure8|optimality|uniform|
//	                    scaling|scorecard] [-pop 20000] [-samples 100,1000]
//	                   [-runs 10] [-slaves 10] [-json]
//	strata worker      -stdio | -connect host:port [-id name]
//
// The serve command keeps the population resident and coalesces SSD queries
// arriving within -window into a single MR-MQE pass; loadgen drives it with
// concurrent clients and reports achieved QPS plus latency percentiles
// (DESIGN.md §12).
//
// The -backend flag selects where engine tasks execute: in this process
// (inproc, the default), on a pool of "strata worker -stdio" child
// processes (subprocess), or on workers that registered over TCP (tcp; the
// coordinator spawns -workers local ones and logs the address external
// "strata worker -connect" processes can join). Job output is byte-for-byte
// identical across backends for a fixed seed.
//
// The global flags configure observability for every command: -v / -log set
// the structured-log level, -trace streams one JSON span per engine task to a
// file ("strata trace" renders it), -progress prints a live per-phase task
// progress line, and -debug-addr serves /metrics (Prometheus text), /progress
// (live JSON job progress), /quality (the latest audit report as Prometheus
// gauges), /debug/pprof and /debug/vars while the command runs.
package main

import (
	"fmt"
	"os"
)

func main() {
	args, err := parseGlobalFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	if err := globalObs.setup(); err != nil {
		fmt.Fprintf(os.Stderr, "strata: %v\n", err)
		os.Exit(1)
	}
	switch args[0] {
	case "generate":
		err = cmdGenerate(args[1:])
	case "sample":
		err = cmdSample(args[1:])
	case "mssd":
		err = cmdMSSD(args[1:])
	case "query":
		err = cmdQuery(args[1:])
	case "audit":
		err = cmdAudit(args[1:])
	case "trace":
		err = cmdTrace(args[1:])
	case "experiments":
		err = cmdExperiments(args[1:])
	case "serve":
		err = cmdServe(args[1:])
	case "loadgen":
		err = cmdLoadgen(args[1:])
	case "worker":
		err = cmdWorker(args[1:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "strata: unknown command %q\n\n", args[0])
		usage()
		os.Exit(2)
	}
	if cerr := globalObs.close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "strata: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `strata — stratified sampling over social networks using MapReduce

usage: strata [global flags] <command> [command flags]

commands:
  generate     generate a synthetic author population and print statistics
  sample       answer a single SSD query (MR-SQE) over a generated population
  audit        grade sampling quality: per-stratum fill, inclusion bias, costs
  mssd         answer a generated multi-survey query group (MR-MQE vs MR-CPS)
  query        run an MSSD design from a JSON file over a CSV or generated population
  serve        resident sampling daemon: coalesce concurrent SSD queries (MR-MQE)
  loadgen      drive a serve daemon with concurrent clients, report QPS + latency
  trace        summarize a span file written with -trace
  experiments  regenerate the paper's tables and figures
  worker       serve tasks for a coordinator (-stdio, or -connect host:port)

run "strata <command> -h" for command flags.`)
	fmt.Fprintln(os.Stderr)
	fmt.Fprintln(os.Stderr, globalFlagsHelp)
}
