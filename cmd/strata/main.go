// Command strata is the command-line front end of the stratified-sampling
// library: it generates synthetic author populations, answers SSD and MSSD
// queries with the paper's MapReduce algorithms, and regenerates every table
// and figure of the paper's evaluation.
//
// Usage:
//
//	strata generate    -n 10000 [-uniform] [-graph] [-seed 1] [-stats] [-csv]
//	strata sample      -n 10000 -query "nop >= 100 : 5; nop < 100 : 10" [-slaves 4]
//	                   [-layout contiguous] [-naive] [-estimate ndcc]
//	strata mssd        -n 10000 -group Small -sample 100 [-runs 5] [-ip] [-explain]
//	                   [-waves 3]
//	strata query       -design design.json [-data pop.csv] [-ip] [-out answers.csv]
//	strata experiments [-run all|table2|figure6|figure7|figure8|optimality|uniform|
//	                    scaling|scorecard] [-pop 20000] [-samples 100,1000]
//	                   [-runs 10] [-slaves 10] [-json]
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "sample":
		err = cmdSample(os.Args[2:])
	case "mssd":
		err = cmdMSSD(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "experiments":
		err = cmdExperiments(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "strata: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "strata: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `strata — stratified sampling over social networks using MapReduce

commands:
  generate     generate a synthetic author population and print statistics
  sample       answer a single SSD query (MR-SQE) over a generated population
  mssd         answer a generated multi-survey query group (MR-MQE vs MR-CPS)
  query        run an MSSD design from a JSON file over a CSV or generated population
  experiments  regenerate the paper's tables and figures

run "strata <command> -h" for flags.`)
}
