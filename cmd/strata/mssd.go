package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cps"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/query"
)

func groupByName(name string) (gen.GroupParams, error) {
	for _, g := range gen.Groups() {
		if g.Name == name {
			return g, nil
		}
	}
	return gen.GroupParams{}, fmt.Errorf("unknown query group %q (want Small, Medium or Large)", name)
}

func cmdMSSD(args []string) error {
	fs := flag.NewFlagSet("mssd", flag.ExitOnError)
	n := fs.Int("n", 20000, "population size")
	seed := fs.Int64("seed", 1, "random seed")
	slaves := fs.Int("slaves", 10, "cluster slaves")
	groupName := fs.String("group", "Small", "query group: Small, Medium or Large")
	sample := fs.Int("sample", 100, "per-SSD sample size")
	runs := fs.Int("runs", 5, "repetitions to average")
	integer := fs.Bool("ip", false, "solve the exact integer program instead of the LP relaxation")
	explain := fs.Bool("explain", false, "print the solved sharing plan of the last run")
	waves := fs.Int("waves", 0, "instead of repeated runs, run this many campaign waves with cross-wave exclusion")
	subUsage(fs, `strata mssd [-n 20000] [-group Small] [-sample 100] [-runs 5] [-ip] [-explain] [-waves 3]`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	group, err := groupByName(*groupName)
	if err != nil {
		return err
	}

	pop := gen.Population(*n, *seed)
	rng := rand.New(rand.NewSource(*seed + 99))
	queries, err := gen.QueryGroup(group, pop, *sample, rng)
	if err != nil {
		return err
	}
	costs := gen.DefaultPenaltyTable(group.N, rng)
	m := query.NewMSSD(costs, queries...)
	splits, err := dataset.Partition(pop, 20, dataset.Contiguous, nil)
	if err != nil {
		return err
	}
	cluster := newCluster(*slaves)

	fmt.Printf("group %s: %d SSDs × %d strata, sample %d each, population %d, %d slaves\n",
		group.Name, group.N, group.StrataPerSSD(), *sample, *n, *slaves)
	fmt.Printf("penalised pairs: %d of %d\n\n", len(costs.Penalties), group.N*(group.N-1)/2)

	if *waves > 0 {
		camp := cps.NewCampaign(cluster, pop.Schema(), splits)
		for w := 0; w < *waves; w++ {
			res, err := camp.RunWave(m, cps.Options{Seed: *seed + int64(w)*7919})
			if err != nil {
				return err
			}
			recordMetrics(res.Metrics)
			fmt.Printf("wave %d: cost $%.0f, %d unique individuals (campaign total %d)\n",
				w+1, res.Answers.Cost(costs), res.Answers.UniqueIndividuals(), camp.TotalSurveyed())
		}
		return nil
	}

	var mqeCost, cpsCost float64
	var simTotal time.Duration
	var lpTotal time.Duration
	hist := make([]float64, group.N+1)
	var histTotal float64
	var last *cps.Result
	for run := 0; run < *runs; run++ {
		res, err := cps.RunUnvalidated(cluster, m, pop.Schema(), splits, cps.Options{
			Seed:  *seed + int64(run)*7919,
			Solve: cps.SolveOptions{Integer: *integer},
		})
		if err != nil {
			return err
		}
		last = res
		recordMetrics(res.Metrics)
		mqeCost += res.Initial.Cost(costs)
		cpsCost += res.Answers.Cost(costs)
		simTotal += res.Metrics.SimulatedTotal()
		lpTotal += res.LP.FormulateTime + res.LP.SolveTime
		for i, c := range res.Answers.SharingHistogram() {
			hist[i] += float64(c)
			if i >= 1 {
				histTotal += float64(c)
			}
		}
	}
	k := float64(*runs)
	fmt.Printf("mean MR-MQE cost: $%.0f\n", mqeCost/k)
	fmt.Printf("mean MR-CPS cost: $%.0f  (%.0f%% of MQE)\n", cpsCost/k, 100*cpsCost/mqeCost)
	fmt.Printf("simulated pipeline time: %v   LP time: %v\n",
		(simTotal / time.Duration(*runs)).Round(time.Millisecond),
		(lpTotal / time.Duration(*runs)).Round(time.Microsecond))
	fmt.Printf("sharing profile (%% of individuals in i surveys):\n")
	for i := 1; i <= group.N; i++ {
		fmt.Printf("  i=%d: %5.1f%%\n", i, 100*hist[i]/histTotal)
	}
	if *explain && last != nil {
		fmt.Println("\nsharing plan of the last run:")
		for _, line := range last.Plan.Describe(last.Stats) {
			fmt.Println("  " + line)
		}
	}
	return nil
}
