package main

import (
	"flag"
	"fmt"
	"os"
)

// globalFlagsHelp is the one authoritative rendering of the global flag set;
// the top-level usage and every subcommand's -h print it, so the list cannot
// drift per command (PR 6 added -wire without updating all usage strings —
// this helper is the fix).
const globalFlagsHelp = `global flags (before the command):
  -v, -log <level>          debug logging / explicit level (debug, info, warn, error)
  -trace <spans.jsonl>      write one JSON span per engine task ("strata trace" renders it)
  -progress                 live per-phase task progress line on stderr
  -debug-addr <addr>        serve /metrics /progress /quality /debug/pprof /debug/vars
  -backend <b>              task execution: inproc (default), subprocess or tcp
  -workers <n>              worker count for -backend subprocess or tcp
  -routed-shuffle           with -backend tcp, route shuffle buckets via the coordinator
  -wire <format>            payload wire format: binary (default) or gob (escape hatch)`

// subUsage installs a usage function on a subcommand's flag set that prints
// the synopsis, the command's own flags, and the shared global-flag help.
func subUsage(fs *flag.FlagSet, synopsis string) {
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s\n\nflags:\n", synopsis)
		fs.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\n%s\n", globalFlagsHelp)
	}
}
