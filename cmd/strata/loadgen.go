package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/serve"
)

// cmdLoadgen drives a serve daemon with concurrent clients and reports
// achieved QPS plus latency percentiles. With -selfhost it starts an
// in-process daemon (no network setup needed); with -compare it runs the same
// load twice — at the requested -window and at window=0 (one pass per query)
// — to show what MR-MQE coalescing buys. Requests set "nocache": true so
// every query exercises the engine, not the result cache.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	addr := fs.String("addr", "", "target daemon host:port (mutually exclusive with -selfhost)")
	selfhost := fs.Bool("selfhost", false, "start an in-process daemon to drive")
	clients := fs.Int("clients", 32, "concurrent client goroutines")
	requests := fs.Int("requests", 2000, "total requests across all clients")
	queries := fs.Int("queries", 8, "distinct query templates cycled by the clients")
	n := fs.Int("n", 100000, "population size (selfhost)")
	seed := fs.Int64("seed", 1, "population + partition + sampling seed (selfhost)")
	slaves := fs.Int("slaves", 4, "cluster slaves per pass (selfhost)")
	window := fs.Duration("window", 5*time.Millisecond, "batching window (selfhost)")
	maxBatch := fs.Int("max-batch", 64, "batch size cap (selfhost)")
	compare := fs.Bool("compare", false, "also run the identical load at window=0 and report the ratio (selfhost only)")
	mutate := fs.Float64("mutate", 0, "fraction of requests that are mutation batches (0..1; needs a -live daemon, selfhost enables live mode)")
	mutBatch := fs.Int("mutate-batch", 8, "mutations per mutation request")
	freshness := fs.Bool("freshness", false, "selfhost: compare standing-query freshness (subscribe + warm reads) vs recompute-per-query over the same mutation stream")
	rounds := fs.Int("rounds", 32, "freshness mode: mutation rounds per arm")
	staleness := fs.Int("staleness", 0, "staleness bound for live daemons (0 = default)")
	jsonOut := fs.String("json", "", "write the report as JSON to this file")
	subUsage(fs, "strata loadgen -addr host:port | -selfhost [flags]")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*addr == "") == !*selfhost {
		return fmt.Errorf("loadgen: give exactly one of -addr or -selfhost")
	}
	if *compare && !*selfhost {
		return fmt.Errorf("loadgen: -compare needs -selfhost (it restarts the daemon with window=0)")
	}
	if *mutate < 0 || *mutate > 1 {
		return fmt.Errorf("loadgen: -mutate must be in [0,1]")
	}
	if *freshness {
		if !*selfhost {
			return fmt.Errorf("loadgen: -freshness needs -selfhost (it runs each arm on a fresh daemon)")
		}
		return runFreshnessCompare(*n, *seed, *slaves, *rounds, *mutBatch, *queries, *staleness, *jsonOut)
	}

	report := loadgenReport{
		Clients: *clients, Requests: *requests, DistinctQueries: *queries,
		Window: window.String(), MutateRatio: *mutate,
	}
	load := loadSpec{
		clients: *clients, requests: *requests, queries: *queries, seed: *seed,
		mutate: *mutate, mutBatch: *mutBatch, popN: *n, schema: gen.AuthorSchema(),
	}
	if *selfhost {
		fmt.Printf("generating population of %d (seed %d)...\n", *n, *seed)
		pop := gen.Population(*n, *seed)
		report.Population = pop.Len()
		run := func(w time.Duration) (loadgenRun, error) {
			srv, err := serve.NewServer(serve.Config{
				Population: pop, Slaves: *slaves, PartitionSeed: *seed,
				Window: w, MaxBatch: *maxBatch, AdaptiveWindow: true,
				Live: *mutate > 0, StalenessBound: *staleness,
				NewCluster: newCluster, OnMetrics: recordMetrics,
			})
			if err != nil {
				return loadgenRun{}, err
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			r, err := driveLoad(ts.URL, load)
			srv.BeginDrain()
			srv.Drain()
			return r, err
		}
		batched, err := run(*window)
		if err != nil {
			return err
		}
		report.Batched = &batched
		printRun(fmt.Sprintf("window=%v", *window), batched)
		if *compare {
			unbatched, err := run(0)
			if err != nil {
				return err
			}
			report.Unbatched = &unbatched
			printRun("window=0", unbatched)
			if unbatched.QPS > 0 {
				report.Speedup = batched.QPS / unbatched.QPS
				fmt.Printf("\nbatching speedup: %.2fx QPS (%.0f vs %.0f), %d passes vs %d\n",
					report.Speedup, batched.QPS, unbatched.QPS,
					batched.Stats.Passes, unbatched.Stats.Passes)
			}
		}
	} else {
		r, err := driveLoad("http://"+*addr, load)
		if err != nil {
			return err
		}
		report.Batched = &r
		printRun(*addr, r)
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *jsonOut)
	}
	return nil
}

// loadgenReport is the -json output shape.
type loadgenReport struct {
	Population      int         `json:"population,omitempty"`
	Clients         int         `json:"clients"`
	Requests        int         `json:"requests"`
	DistinctQueries int         `json:"distinct_queries"`
	Window          string      `json:"window"`
	MutateRatio     float64     `json:"mutate_ratio,omitempty"`
	Batched         *loadgenRun `json:"batched,omitempty"`
	Unbatched       *loadgenRun `json:"unbatched,omitempty"`
	Speedup         float64     `json:"qps_speedup,omitempty"`
}

// loadgenRun is one measured load run.
type loadgenRun struct {
	OK       int     `json:"ok"`
	Failed   int     `json:"failed"`
	WallMS   int64   `json:"wall_ms"`
	QPS      float64 `json:"qps"`
	P50MS    float64 `json:"latency_p50_ms"`
	P90MS    float64 `json:"latency_p90_ms"`
	P99MS    float64 `json:"latency_p99_ms"`
	MaxMS    float64 `json:"latency_max_ms"`
	MeanMS   float64 `json:"latency_mean_ms"`
	StddevMS float64 `json:"latency_stddev_ms"`
	// QPSTimeline is the achieved query rate in each of ten equal slices of
	// the wall time (completion-time buckets), exposing warmup and tail
	// effects a single aggregate QPS hides. TimelineBucketMS is the slice
	// width.
	TimelineBucketMS int64           `json:"timeline_bucket_ms,omitempty"`
	QPSTimeline      []float64       `json:"qps_timeline,omitempty"`
	Mutations        int             `json:"mutations,omitempty"` // mutation requests (each -mutate-batch ops)
	MutP50MS         float64         `json:"mutate_p50_ms,omitempty"`
	MutP99MS         float64         `json:"mutate_p99_ms,omitempty"`
	Stats            serve.Snapshot  `json:"daemon_stats"`
	statsErr         error           // non-nil when /v1/stats could not be read
	latencies        []time.Duration // not serialized
}

// loadSpec parameterizes one driveLoad call.
type loadSpec struct {
	clients, requests, queries int
	seed                       int64
	// mutate makes that fraction of requests POST /v1/mutate batches of
	// mutBatch operations (insert/update/delete over popN + schema).
	mutate   float64
	mutBatch int
	popN     int
	schema   *dataset.Schema
}

// loadQuery returns the i-th query template. Templates are distinct
// single-attribute SSDs over nop so any subset coalesces into one MQE pass.
func loadQuery(i int) string {
	t := 50 + 10*(i%60)
	return fmt.Sprintf("nop >= %d : 5 ; nop < %d : 10", t, t)
}

// driveLoad fires spec.requests concurrent requests from spec.clients
// goroutines against baseURL and aggregates latency. With spec.mutate > 0,
// that fraction of requests are POST /v1/mutate batches (interleaved
// deterministically by request index); the rest are POST /v1/sample.
func driveLoad(baseURL string, spec loadSpec) (loadgenRun, error) {
	client := &http.Client{Timeout: 2 * time.Minute}
	type result struct {
		d        time.Duration
		at       time.Duration // completion offset from run start (for the QPS timeline)
		err      error
		mutation bool
	}
	requests := spec.requests
	results := make([]result, requests)
	// isMutation spreads mutation requests evenly through the index space.
	isMutation := func(i int) bool {
		if spec.mutate <= 0 {
			return false
		}
		return float64(i%100) < spec.mutate*100
	}
	next := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < spec.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				var err error
				t0 := time.Now()
				if isMutation(i) {
					err = postMutations(client, baseURL, mutationBatch(i, spec.popN, spec.schema, spec.mutBatch))
					results[i] = result{d: time.Since(t0), at: time.Since(start), err: err, mutation: true}
					continue
				}
				body, _ := json.Marshal(map[string]any{
					"query": loadQuery(i % spec.queries), "seed": spec.seed, "nocache": true,
				})
				resp, err := client.Post(baseURL+"/v1/sample", "application/json", bytes.NewReader(body))
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("status %d", resp.StatusCode)
					}
				}
				results[i] = result{d: time.Since(t0), at: time.Since(start), err: err}
			}
		}()
	}
	for i := 0; i < requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)

	run := loadgenRun{WallMS: wall.Milliseconds()}
	var mutLat []time.Duration
	var doneAt []time.Duration
	for _, r := range results {
		if r.err != nil {
			run.Failed++
			continue
		}
		if r.mutation {
			run.Mutations++
			mutLat = append(mutLat, r.d)
			continue
		}
		run.OK++
		run.latencies = append(run.latencies, r.d)
		doneAt = append(doneAt, r.at)
	}
	if run.Failed > 0 {
		for _, r := range results {
			if r.err != nil {
				return run, fmt.Errorf("loadgen: %d/%d requests failed, first: %w", run.Failed, requests, r.err)
			}
		}
	}
	if len(mutLat) > 0 {
		run.MutP50MS, _, run.MutP99MS = latPercentiles(mutLat)
	}
	sort.Slice(run.latencies, func(i, j int) bool { return run.latencies[i] < run.latencies[j] })
	pct := func(p float64) float64 {
		if len(run.latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(run.latencies)-1))
		return float64(run.latencies[i].Microseconds()) / 1000
	}
	run.P50MS, run.P90MS, run.P99MS = pct(0.50), pct(0.90), pct(0.99)
	if len(run.latencies) > 0 {
		run.MaxMS = float64(run.latencies[len(run.latencies)-1].Microseconds()) / 1000
	}
	run.QPS = float64(run.OK) / wall.Seconds()
	if n := len(run.latencies); n > 0 {
		var sum float64
		for _, d := range run.latencies {
			sum += float64(d.Microseconds()) / 1000
		}
		run.MeanMS = sum / float64(n)
		var sq float64
		for _, d := range run.latencies {
			dev := float64(d.Microseconds())/1000 - run.MeanMS
			sq += dev * dev
		}
		run.StddevMS = math.Sqrt(sq / float64(n))
	}
	// QPS timeline: ten equal wall-time slices, completions counted into the
	// slice they finished in.
	if wall > 0 && len(doneAt) > 0 {
		const slices = 10
		counts := make([]int, slices)
		for _, at := range doneAt {
			i := int(int64(at) * slices / int64(wall))
			if i >= slices {
				i = slices - 1
			}
			counts[i]++
		}
		sliceSec := wall.Seconds() / slices
		run.TimelineBucketMS = wall.Milliseconds() / slices
		run.QPSTimeline = make([]float64, slices)
		for i, c := range counts {
			run.QPSTimeline[i] = float64(c) / sliceSec
		}
	}

	if resp, err := client.Get(baseURL + "/v1/stats"); err == nil {
		err = json.NewDecoder(resp.Body).Decode(&run.Stats)
		resp.Body.Close()
		run.statsErr = err
	} else {
		run.statsErr = err
	}
	return run, nil
}

func printRun(label string, r loadgenRun) {
	fmt.Printf("\n[%s] %d ok / %d failed in %dms — %.0f QPS\n",
		label, r.OK, r.Failed, r.WallMS, r.QPS)
	fmt.Printf("  latency ms: p50 %.1f  p90 %.1f  p99 %.1f  max %.1f  mean %.1f ± %.1f\n",
		r.P50MS, r.P90MS, r.P99MS, r.MaxMS, r.MeanMS, r.StddevMS)
	if len(r.QPSTimeline) > 0 {
		fmt.Printf("  qps over time (%dms slices):", r.TimelineBucketMS)
		for _, q := range r.QPSTimeline {
			fmt.Printf(" %.0f", q)
		}
		fmt.Println()
	}
	if r.Mutations > 0 {
		fmt.Printf("  mutations: %d requests, ms p50 %.2f p99 %.2f\n",
			r.Mutations, r.MutP50MS, r.MutP99MS)
	}
	if r.statsErr == nil {
		fmt.Printf("  daemon: %d passes for %d queries (%.1f distinct/pass, max %d), %d coalesced, %d single-flight\n",
			r.Stats.Passes, r.Stats.Queries, r.Stats.BatchMean, r.Stats.BatchMax,
			r.Stats.Coalesced, r.Stats.SingleFlight)
		if len(r.Stats.Attribution) > 0 {
			fmt.Printf("  attribution p50 ms:")
			for _, name := range []string{"window", "queue", "pass", "wire"} {
				if a, ok := r.Stats.Attribution[name]; ok {
					fmt.Printf(" %s %.1f", name, float64(a.P50Usec)/1000)
				}
			}
			fmt.Println()
		}
	}
}
