package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	run := fs.String("run", "all", "which experiment: all, table2, figure6, figure7, figure8, optimality, uniform, scaling, scorecard")
	pop := fs.Int("pop", 20000, "population size")
	samples := fs.String("samples", "100,1000", "comma-separated per-SSD sample sizes")
	runs := fs.Int("runs", 10, "repetitions to average")
	slaves := fs.Int("slaves", 10, "cluster slaves (fixed-slaves experiments)")
	seed := fs.Int64("seed", 1, "random seed")
	asJSON := fs.Bool("json", false, "emit results as JSON instead of tables")
	subUsage(fs, `strata experiments [-run all|table2|...] [-pop 20000] [-samples 100,1000] [-runs 10] [-slaves 10] [-json]`)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.DefaultConfig()
	cfg.PopulationSize = *pop
	cfg.Runs = *runs
	cfg.Slaves = *slaves
	cfg.Seed = *seed
	cfg.SampleSizes = nil
	for _, s := range strings.Split(*samples, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad sample size %q: %v", s, err)
		}
		cfg.SampleSizes = append(cfg.SampleSizes, v)
	}

	want := func(name string) bool { return *run == "all" || *run == name }
	ran := false
	emit := func(name string, result interface{ Table() *experiments.Table }) error {
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(map[string]any{"experiment": name, "result": result})
		}
		result.Table().Render(os.Stdout)
		return nil
	}

	if want("table2") {
		ran = true
		res, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		if err := emit("table2", res); err != nil {
			return err
		}
	}
	if want("figure6") {
		ran = true
		res, err := experiments.Figure6(cfg)
		if err != nil {
			return err
		}
		if err := emit("figure6", res); err != nil {
			return err
		}
	}
	if want("figure7") {
		ran = true
		res, err := experiments.Figure7(cfg)
		if err != nil {
			return err
		}
		if err := emit("figure7", res); err != nil {
			return err
		}
	}
	if want("figure8") {
		ran = true
		res, err := experiments.Figure8(cfg)
		if err != nil {
			return err
		}
		if err := emit("figure8", res); err != nil {
			return err
		}
	}
	if want("optimality") {
		ran = true
		res, err := experiments.Optimality(cfg)
		if err != nil {
			return err
		}
		if err := emit("optimality", res); err != nil {
			return err
		}
	}
	if want("scaling") {
		ran = true
		res, err := experiments.DataScaling(cfg)
		if err != nil {
			return err
		}
		if err := emit("scaling", res); err != nil {
			return err
		}
	}
	if *run == "scorecard" {
		ran = true
		res, err := experiments.Scorecard(cfg)
		if err != nil {
			return err
		}
		if err := emit("scorecard", res); err != nil {
			return err
		}
	}
	if want("uniform") {
		ran = true
		res, err := experiments.UniformComparison(cfg)
		if err != nil {
			return err
		}
		if err := emit("uniform", res); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *run)
	}
	return nil
}
