package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/audit"
	"repro/internal/cps"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/query"
	"repro/internal/stratified"
)

func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	n := fs.Int("n", 10000, "population size")
	seed := fs.Int64("seed", 1, "random seed")
	slaves := fs.Int("slaves", 4, "cluster slaves")
	layout := fs.String("layout", "contiguous", "data layout across machines: round-robin, contiguous, skewed, shuffled-contiguous")
	spec := fs.String("query", "nop >= 100 : 5 ; nop < 100 : 10",
		"SSD query to audit: \"cond : freq ; cond : freq ; ...\"")
	runs := fs.Int("runs", 30, "repeated runs for the inclusion-uniformity bias audit")
	alpha := fs.Float64("alpha", 1e-4, "bias significance threshold: fail below this p-value")
	estimateAttr := fs.String("estimate", "nop", "grade estimator health for this attribute (\"\" disables)")
	withCPS := fs.Bool("cps", false, "also audit an MR-CPS run over a generated query group")
	groupName := fs.String("group", "Small", "query group for -cps: Small, Medium or Large")
	sample := fs.Int("sample", 100, "per-SSD sample size for -cps")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of the scorecard")
	subUsage(fs, `strata audit [-n 10000] -query "cond : freq ; ..." [-runs 30] [-alpha 1e-4] [-estimate attr] [-cps [-group Small]] [-json]`)
	if err := fs.Parse(args); err != nil {
		return err
	}

	q, err := parseSSD("Q", *spec)
	if err != nil {
		return err
	}
	pop := gen.Population(*n, *seed)
	if err := q.Validate(pop.Schema()); err != nil {
		return err
	}
	strategy, err := dataset.ParsePartitioning(*layout)
	if err != nil {
		return err
	}
	splits, err := dataset.Partition(pop, dataset.DefaultSplits(*slaves), strategy, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	cluster := newCluster(*slaves)

	pops, err := audit.StratumPopulations(q, pop.Schema(), splits)
	if err != nil {
		return err
	}
	bias, met, err := audit.BiasAuditSQE(cluster, q, pop.Schema(), splits, stratified.Options{Seed: *seed}, *runs)
	if err != nil {
		return err
	}
	recordMetrics(met)
	// One representative run (the bias audit's first seed) for the fill and
	// estimator sections.
	ans, _, err := stratified.RunSQE(cluster, q, pop.Schema(), splits, stratified.Options{Seed: *seed})
	if err != nil {
		return err
	}
	fill, err := audit.AuditFill(q, ans, pops)
	if err != nil {
		return err
	}
	rep := &audit.Report{Fill: fill, Bias: bias}
	if *estimateAttr != "" {
		est, err := audit.AuditEstimator(ans, q, pop, *estimateAttr)
		if err != nil {
			return err
		}
		rep.Estimator = est
	}

	if *withCPS {
		group, err := groupByName(*groupName)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(*seed + 99))
		queries, err := gen.QueryGroup(group, pop, *sample, rng)
		if err != nil {
			return err
		}
		m := query.NewMSSD(gen.DefaultPenaltyTable(group.N, rng), queries...)
		res, err := cps.Run(cluster, m, pop.Schema(), splits, cps.Options{Seed: *seed})
		if err != nil {
			return err
		}
		recordMetrics(res.Metrics)
		rep.CPS = audit.AuditCPS(m, res)
	}

	recordQuality(rep)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		rep.Render(os.Stdout)
	}
	if !rep.Passed(*alpha) {
		return fmt.Errorf("audit FAILED (alpha %g): fill or bias thresholds violated", *alpha)
	}
	fmt.Printf("\naudit PASSED (bias alpha %g, %d runs)\n", *alpha, *runs)
	return nil
}
