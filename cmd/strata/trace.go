package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/mapreduce"
)

// phaseOrder is the rendering order of span phases — execution order, with
// the whole-job span last. Serve-daemon phases lead (they enclose engine
// work); the remote-attempt child phases follow the attempt phases they
// decompose. Phases not listed here render after these, alphabetically.
var phaseOrder = []string{
	"request",
	"cache",
	"window",
	"batch",
	"pass",
	"demux",
	mapreduce.PhaseMap,
	mapreduce.PhaseCombine,
	mapreduce.PhaseShuffleSend,
	mapreduce.PhaseShuffleRecv,
	mapreduce.PhaseReduce,
	mapreduce.PhaseQueue,
	mapreduce.PhaseWire,
	mapreduce.PhaseDecode,
	mapreduce.PhaseExec,
	mapreduce.PhasePush,
	mapreduce.PhaseRecv,
	mapreduce.PhaseJob,
}

// phaseAgg accumulates one (job, phase) row of the timeline table.
type phaseAgg struct {
	spans   int
	failed  int
	records int64
	out     int64
	groups  int64
	bytes   int64
	sim     time.Duration
	simMax  time.Duration
	wall    time.Duration
	first   time.Duration
	last    time.Duration
	durs    []time.Duration // per-span wall (or simulated) durations, for percentiles
}

// cmdTrace summarizes one or more span files written with the global -trace
// flag: one per-phase timeline table per job, per-phase latency percentiles,
// the slowest task attempts, and — for spans carrying a distributed trace id —
// reconstructed trace trees with their critical paths. Multiple files (or
// glob patterns) merge into one view, which is how the spans of a coordinator
// and its workers, or a serve daemon's many passes, are read back together.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	top := fs.Int("top", 5, "list this many slowest task attempts per job (0 = none)")
	crit := fs.Int("crit", 3, "print critical paths for this many longest traces (0 = none)")
	subUsage(fs, "strata trace [-top 5] [-crit 3] <spans.jsonl> [more.jsonl | glob ...]")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return fmt.Errorf("trace: want at least one span file (or glob) argument")
	}
	files, err := expandSpanFiles(fs.Args())
	if err != nil {
		return err
	}
	var spans []mapreduce.Span
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		part, err := mapreduce.ReadSpans(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("trace: %s: %w", path, err)
		}
		spans = append(spans, part...)
	}
	if len(spans) == 0 {
		return fmt.Errorf("trace: %s holds no spans", strings.Join(files, ", "))
	}
	if len(files) > 1 {
		fmt.Printf("%d spans from %d files\n\n", len(spans), len(files))
	}

	var jobs []string
	agg := map[string]map[string]*phaseAgg{} // job → phase → row
	for _, s := range spans {
		phases, ok := agg[s.Job]
		if !ok {
			phases = map[string]*phaseAgg{}
			agg[s.Job] = phases
			jobs = append(jobs, s.Job)
		}
		row := phases[s.Phase]
		if row == nil {
			row = &phaseAgg{first: s.Start}
			phases[s.Phase] = row
		}
		row.spans++
		if s.Failed {
			row.failed++
		}
		row.records += s.Records
		row.out += s.Out
		row.groups += s.Groups
		row.bytes += s.Bytes
		row.sim += s.Simulated
		if s.Simulated > row.simMax {
			row.simMax = s.Simulated
		}
		row.wall += s.Wall
		row.durs = append(row.durs, spanDur(s))
		if s.Start < row.first {
			row.first = s.Start
		}
		if end := s.Start + s.Wall; end > row.last {
			row.last = end
		}
	}

	for _, job := range jobs {
		phases := agg[job]
		fmt.Printf("job %q\n", job)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "phase\tspans\tfailed\trecords\tout\tgroups\tbytes\tsim total\tsim max\twall\tp50\tp90\tp99\t")
		for _, phase := range orderedPhases(phases) {
			row := phases[phase]
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%v\t%v\t%v\t%v\t%v\t%v\t\n",
				phase, row.spans, row.failed, row.records, row.out, row.groups, row.bytes,
				row.sim.Round(time.Microsecond), row.simMax.Round(time.Microsecond),
				row.wall.Round(time.Microsecond),
				quantileDur(row.durs, 0.50), quantileDur(row.durs, 0.90), quantileDur(row.durs, 0.99))
		}
		tw.Flush()
		if m, s, r := jobBreakdown(phases); m+s+r > 0 {
			total := m + s + r
			fmt.Printf("simulated split: map %.0f%%  shuffle %.0f%%  reduce %.0f%%\n",
				100*frac(m, total), 100*frac(s, total), 100*frac(r, total))
		}
		if *top > 0 {
			printSlowest(spans, job, *top)
		}
		fmt.Println()
	}

	if *crit > 0 {
		printCriticalPaths(spans, *crit)
	}
	return nil
}

// expandSpanFiles resolves the argument list: arguments containing glob
// metacharacters expand via filepath.Glob, plain paths pass through (so a
// missing plain file still errors usefully at open time).
func expandSpanFiles(args []string) ([]string, error) {
	var files []string
	for _, a := range args {
		if !strings.ContainsAny(a, "*?[") {
			files = append(files, a)
			continue
		}
		matches, err := filepath.Glob(a)
		if err != nil {
			return nil, fmt.Errorf("trace: bad pattern %q: %w", a, err)
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("trace: pattern %q matches no files", a)
		}
		sort.Strings(matches)
		files = append(files, matches...)
	}
	return files, nil
}

// orderedPhases lists the job's phases: known phases in phaseOrder, then any
// others alphabetically (future phases degrade to a stable ordering instead
// of vanishing from the table).
func orderedPhases(phases map[string]*phaseAgg) []string {
	seen := make(map[string]bool, len(phases))
	var out []string
	for _, p := range phaseOrder {
		if phases[p] != nil {
			out = append(out, p)
			seen[p] = true
		}
	}
	var rest []string
	for p := range phases {
		if !seen[p] {
			rest = append(rest, p)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// spanDur is the span's duration for latency purposes: measured wall time
// when present, the simulated charge otherwise (frozen-clock and cost-model
// runs have no wall component).
func spanDur(s mapreduce.Span) time.Duration {
	if s.Wall > 0 {
		return s.Wall
	}
	return s.Simulated
}

// quantileDur is the q-th quantile of the durations (nearest-rank).
func quantileDur(durs []time.Duration, q float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(durs))
	copy(sorted, durs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx].Round(time.Microsecond)
}

// jobBreakdown sums the job's simulated time into the paper's three phases.
// Combine time is part of the map tasks' spans already; the send/recv legs
// together form the shuffle.
func jobBreakdown(phases map[string]*phaseAgg) (m, s, r time.Duration) {
	if row := phases[mapreduce.PhaseMap]; row != nil {
		m += row.sim
	}
	for _, p := range []string{mapreduce.PhaseShuffleSend, mapreduce.PhaseShuffleRecv} {
		if row := phases[p]; row != nil {
			s += row.sim
		}
	}
	if row := phases[mapreduce.PhaseReduce]; row != nil {
		r += row.sim
	}
	return m, s, r
}

func frac(d, total time.Duration) float64 {
	if total <= 0 {
		return 0
	}
	return float64(d) / float64(total)
}

// printSlowest lists the job's slowest map/reduce attempts by simulated time
// — with a FaultModel installed, straggler attempts surface here.
func printSlowest(spans []mapreduce.Span, job string, n int) {
	var tasks []mapreduce.Span
	for _, s := range spans {
		if s.Job == job && (s.Phase == mapreduce.PhaseMap || s.Phase == mapreduce.PhaseReduce) {
			tasks = append(tasks, s)
		}
	}
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].Simulated > tasks[j].Simulated })
	if len(tasks) > n {
		tasks = tasks[:n]
	}
	fmt.Println("slowest task attempts:")
	for _, s := range tasks {
		status := "ok"
		if s.Failed {
			status = "FAILED"
		}
		fmt.Printf("  %-6s task %d attempt %d: sim %v, %d recs, %s\n",
			s.Phase, s.Task, s.Attempt, s.Simulated.Round(time.Microsecond), s.Records, status)
	}
}

// traceTree is one reconstructed distributed trace: the spans sharing a
// trace id, indexed for parent/child walking.
type traceTree struct {
	id       string
	byID     map[uint64]*mapreduce.Span
	children map[uint64][]*mapreduce.Span
	roots    []*mapreduce.Span
	total    time.Duration // longest root duration
}

// buildTraceTrees groups traced spans by trace id and links them into trees.
// A span is a root when it has no parent, or when its parent span is absent
// from the merged files (a partial capture still renders as a forest).
func buildTraceTrees(spans []mapreduce.Span) []*traceTree {
	byTrace := map[string][]*mapreduce.Span{}
	var order []string
	for i := range spans {
		s := &spans[i]
		if s.Trace == "" || s.ID == 0 {
			continue
		}
		if _, ok := byTrace[s.Trace]; !ok {
			order = append(order, s.Trace)
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	var trees []*traceTree
	for _, id := range order {
		t := &traceTree{
			id:       id,
			byID:     map[uint64]*mapreduce.Span{},
			children: map[uint64][]*mapreduce.Span{},
		}
		for _, s := range byTrace[id] {
			// First writer wins on id collisions (re-emitted spans); the
			// children index still holds every span.
			if _, ok := t.byID[s.ID]; !ok {
				t.byID[s.ID] = s
			}
		}
		for _, s := range byTrace[id] {
			if s.Parent != 0 && t.byID[s.Parent] != nil && s.Parent != s.ID {
				t.children[s.Parent] = append(t.children[s.Parent], s)
			} else {
				t.roots = append(t.roots, s)
			}
		}
		for _, r := range t.roots {
			if d := spanDur(*r); d > t.total {
				t.total = d
			}
		}
		trees = append(trees, t)
	}
	return trees
}

// printCriticalPaths renders the critical path of the n longest traces: from
// each trace's longest root, repeatedly descend into the child contributing
// the most time, printing each hop with its share of the root's duration.
func printCriticalPaths(spans []mapreduce.Span, n int) {
	trees := buildTraceTrees(spans)
	if len(trees) == 0 {
		return
	}
	sort.SliceStable(trees, func(i, j int) bool { return trees[i].total > trees[j].total })
	shown := trees
	if len(shown) > n {
		shown = shown[:n]
	}
	fmt.Printf("traces: %d (showing critical paths of the %d longest)\n", len(trees), len(shown))
	for _, t := range shown {
		var root *mapreduce.Span
		for _, r := range t.roots {
			if root == nil || spanDur(*r) > spanDur(*root) {
				root = r
			}
		}
		if root == nil {
			continue
		}
		total := spanDur(*root)
		fmt.Printf("trace %s: %d spans, %v\n", t.id, len(t.byID), total.Round(time.Microsecond))
		depth := 0
		for s := root; s != nil; {
			d := spanDur(*s)
			fmt.Printf("  %s%s %v (%.0f%%)\n",
				strings.Repeat("  ", depth), spanLabel(*s),
				d.Round(time.Microsecond), 100*frac(d, total))
			// Critical child: the one contributing the most time. Durations,
			// not end offsets, so spans from different processes (whose Start
			// offsets have different time bases) compare meaningfully.
			var next *mapreduce.Span
			for _, c := range t.children[s.ID] {
				if next == nil || spanDur(*c) > spanDur(*next) {
					next = c
				}
			}
			s = next
			depth++
		}
	}
	fmt.Println()
}

// spanLabel names one critical-path hop.
func spanLabel(s mapreduce.Span) string {
	var b strings.Builder
	b.WriteString(s.Phase)
	switch s.Phase {
	case "request", "window", "cache", "batch", "pass", "demux":
		// Serve spans: the run id already says which batch/pass.
	case mapreduce.PhaseJob:
		fmt.Fprintf(&b, " %q", s.Job)
	default:
		fmt.Fprintf(&b, " task %d", s.Task)
		if s.Attempt > 1 {
			fmt.Fprintf(&b, " attempt %d", s.Attempt)
		}
	}
	if s.Run != "" {
		fmt.Fprintf(&b, " [%s]", s.Run)
	}
	if s.Worker != "" {
		fmt.Fprintf(&b, " @%s", s.Worker)
	}
	return b.String()
}
