package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/mapreduce"
)

// phaseOrder is the rendering order of span phases — execution order, with
// the whole-job span last.
var phaseOrder = []string{
	mapreduce.PhaseMap,
	mapreduce.PhaseCombine,
	mapreduce.PhaseShuffleSend,
	mapreduce.PhaseShuffleRecv,
	mapreduce.PhaseReduce,
	mapreduce.PhaseJob,
}

// phaseAgg accumulates one (job, phase) row of the timeline table.
type phaseAgg struct {
	spans   int
	failed  int
	records int64
	out     int64
	groups  int64
	bytes   int64
	sim     time.Duration
	simMax  time.Duration
	wall    time.Duration
	first   time.Duration
	last    time.Duration
}

// cmdTrace summarizes a span file written with the global -trace flag: one
// per-phase timeline table per job, plus the slowest task attempts.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	top := fs.Int("top", 5, "list this many slowest task attempts per job (0 = none)")
	subUsage(fs, "strata trace [-top 5] <spans.jsonl>")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("trace: want exactly one span file argument")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := mapreduce.ReadSpans(f)
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("trace: %s holds no spans", fs.Arg(0))
	}

	var jobs []string
	agg := map[string]map[string]*phaseAgg{} // job → phase → row
	for _, s := range spans {
		phases, ok := agg[s.Job]
		if !ok {
			phases = map[string]*phaseAgg{}
			agg[s.Job] = phases
			jobs = append(jobs, s.Job)
		}
		row := phases[s.Phase]
		if row == nil {
			row = &phaseAgg{first: s.Start}
			phases[s.Phase] = row
		}
		row.spans++
		if s.Failed {
			row.failed++
		}
		row.records += s.Records
		row.out += s.Out
		row.groups += s.Groups
		row.bytes += s.Bytes
		row.sim += s.Simulated
		if s.Simulated > row.simMax {
			row.simMax = s.Simulated
		}
		row.wall += s.Wall
		if s.Start < row.first {
			row.first = s.Start
		}
		if end := s.Start + s.Wall; end > row.last {
			row.last = end
		}
	}

	for _, job := range jobs {
		phases := agg[job]
		fmt.Printf("job %q\n", job)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "phase\tspans\tfailed\trecords\tout\tgroups\tbytes\tsim total\tsim max\twall\t")
		for _, phase := range phaseOrder {
			row := phases[phase]
			if row == nil {
				continue
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%v\t%v\t%v\t\n",
				phase, row.spans, row.failed, row.records, row.out, row.groups, row.bytes,
				row.sim.Round(time.Microsecond), row.simMax.Round(time.Microsecond),
				row.wall.Round(time.Microsecond))
		}
		tw.Flush()
		if m, s, r := jobBreakdown(phases); m+s+r > 0 {
			total := m + s + r
			fmt.Printf("simulated split: map %.0f%%  shuffle %.0f%%  reduce %.0f%%\n",
				100*frac(m, total), 100*frac(s, total), 100*frac(r, total))
		}
		if *top > 0 {
			printSlowest(spans, job, *top)
		}
		fmt.Println()
	}
	return nil
}

// jobBreakdown sums the job's simulated time into the paper's three phases.
// Combine time is part of the map tasks' spans already; the send/recv legs
// together form the shuffle.
func jobBreakdown(phases map[string]*phaseAgg) (m, s, r time.Duration) {
	if row := phases[mapreduce.PhaseMap]; row != nil {
		m += row.sim
	}
	for _, p := range []string{mapreduce.PhaseShuffleSend, mapreduce.PhaseShuffleRecv} {
		if row := phases[p]; row != nil {
			s += row.sim
		}
	}
	if row := phases[mapreduce.PhaseReduce]; row != nil {
		r += row.sim
	}
	return m, s, r
}

func frac(d, total time.Duration) float64 {
	if total <= 0 {
		return 0
	}
	return float64(d) / float64(total)
}

// printSlowest lists the job's slowest map/reduce attempts by simulated time
// — with a FaultModel installed, straggler attempts surface here.
func printSlowest(spans []mapreduce.Span, job string, n int) {
	var tasks []mapreduce.Span
	for _, s := range spans {
		if s.Job == job && (s.Phase == mapreduce.PhaseMap || s.Phase == mapreduce.PhaseReduce) {
			tasks = append(tasks, s)
		}
	}
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].Simulated > tasks[j].Simulated })
	if len(tasks) > n {
		tasks = tasks[:n]
	}
	fmt.Println("slowest task attempts:")
	for _, s := range tasks {
		status := "ok"
		if s.Failed {
			status = "FAILED"
		}
		fmt.Printf("  %-6s task %d attempt %d: sim %v, %d recs, %s\n",
			s.Phase, s.Task, s.Attempt, s.Simulated.Round(time.Microsecond), s.Records, status)
	}
}
