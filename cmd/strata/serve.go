package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/serve"
)

// cmdServe runs the resident sampling daemon: it loads (or generates) a
// population once, keeps it partitioned in memory, and answers SSD queries
// over HTTP, coalescing queries that arrive within -window into one
// MapReduce pass (MR-MQE). See DESIGN.md §12.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8372", "listen address")
	n := fs.Int("n", 100000, "population size when generating")
	dataPath := fs.String("data", "", "path to a population CSV (author schema); empty = generate")
	seed := fs.Int64("seed", 1, "population + partition seed (match strata sample's -seed for identical answers)")
	slaves := fs.Int("slaves", 4, "cluster slaves per pass")
	numSplits := fs.Int("splits", 0, "resident partition splits (0 = max(2*slaves, 2*GOMAXPROCS); match strata sample's -splits for identical answers)")
	maxPasses := fs.Int("max-passes", 0, "concurrent engine passes (0 = 2*GOMAXPROCS)")
	adaptiveWindow := fs.Bool("adaptive-window", true, "fire a lone query early when the recent arrival rate says no batch-mate is coming")
	layout := fs.String("layout", "contiguous", "data layout across machines: round-robin, contiguous, skewed, shuffled-contiguous")
	window := fs.Duration("window", 5*time.Millisecond, "batching window (0 = one pass per query)")
	maxBatch := fs.Int("max-batch", 64, "fire a batch early at this many distinct queries")
	cacheSize := fs.Int("cache", 1024, "result cache entries")
	qps := fs.Float64("qps", 0, "per-tenant admission rate in queries/second (0 = unlimited)")
	burst := fs.Int("burst", 16, "per-tenant token bucket capacity")
	noPrune := fs.Bool("no-prune", false, "disable box-decomposition split pre-filtering")
	liveMode := fs.Bool("live", false, "mutable population: enable /v1/mutate + /v1/subscribe and warm standing-query answers")
	staleness := fs.Int("staleness", 0, "uncompensated deletions per stratum before reservoir repair (0 = default 64; needs -live)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget on SIGTERM/SIGINT")
	subUsage(fs, "strata serve [flags]")
	if err := fs.Parse(args); err != nil {
		return err
	}

	strategy, err := dataset.ParsePartitioning(*layout)
	if err != nil {
		return err
	}
	var pop *dataset.Relation
	if *dataPath != "" {
		f, err := os.Open(*dataPath)
		if err != nil {
			return err
		}
		pop, err = dataset.ReadCSV(f, gen.AuthorSchema())
		f.Close()
		if err != nil {
			return err
		}
	} else {
		pop = gen.Population(*n, *seed)
	}

	cfg := serve.Config{
		Population:     pop,
		Slaves:         *slaves,
		Splits:         *numSplits,
		MaxPasses:      *maxPasses,
		AdaptiveWindow: *adaptiveWindow,
		Layout:         strategy,
		PartitionSeed:  *seed,
		Window:         *window,
		MaxBatch:       *maxBatch,
		CacheSize:      *cacheSize,
		QuotaQPS:       *qps,
		QuotaBurst:     *burst,
		NoPrune:        *noPrune,
		Live:           *liveMode,
		StalenessBound: *staleness,
		NewCluster:     newCluster,
		OnMetrics:      recordMetrics,
	}
	if globalObs.tracer != nil {
		// -trace turns on end-to-end tracing: the daemon's request/batch/pass
		// spans and every pass's engine spans land in one span file, merged
		// back into request trees by "strata trace".
		cfg.Tracer = globalObs.tracer
	}
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return err
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	// The PR 3 live-progress tracker, when someone can watch it (-progress
	// or -debug-addr), is also mounted on the daemon's own port.
	if globalObs.tracker != nil {
		mux.Handle("/progress", globalObs.tracker)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	httpSrv := &http.Server{Handler: mux}

	effSplits := *numSplits
	if effSplits <= 0 {
		effSplits = dataset.DefaultSplits(*slaves)
	}
	slog.Info("strata serve listening",
		"addr", ln.Addr().String(), "population", pop.Len(), "slaves", *slaves,
		"splits", effSplits, "max_passes", *maxPasses,
		"adaptive_window", *adaptiveWindow,
		"layout", strategy.String(), "window", window.String(), "max_batch", *maxBatch,
		"cache", *cacheSize, "qps", *qps, "prune", !*noPrune, "live", *liveMode)
	mode := ""
	if *liveMode {
		mode = ", live"
	}
	fmt.Printf("serving population of %d on http://%s (window %v, max batch %d%s)\n",
		pop.Len(), ln.Addr().String(), *window, *maxBatch, mode)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()

	// Graceful drain: reject new queries, fire the collecting batch, let
	// in-flight handlers finish, then wait out the running passes.
	slog.Info("draining", "timeout", drainTimeout.String())
	srv.BeginDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		slog.Warn("http shutdown", "err", err)
	}
	srv.Drain()
	snap := srv.Stats()
	fmt.Printf("drained: %d queries, %d passes, %d coalesced, %d cache hits\n",
		snap.Queries, snap.Passes, snap.Coalesced, snap.CacheHits)
	return nil
}
