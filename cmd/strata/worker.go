package main

import (
	"flag"
	"fmt"

	"repro/internal/worker"
)

// cmdWorker turns this process into a task worker: the execution half of
// "-backend subprocess" (which spawns "strata worker -stdio" children
// itself) and "-backend tcp" (join a running coordinator from anywhere with
// "strata worker -connect host:port"). The worker serves map, combine and
// reduce attempts through the same job registry the coordinator uses, until
// the coordinator drains it.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	stdio := fs.Bool("stdio", false, "serve a coordinator over stdin/stdout (spawned by -backend subprocess)")
	connect := fs.String("connect", "", "dial a tcp coordinator at this `addr` and register")
	id := fs.String("id", "", "worker `id` reported in results and trace spans (default from STRATA_WORKER_ID or the pid)")
	routed := fs.Bool("routed-shuffle", false, "do not start a direct-shuffle receiver; all buckets travel through the coordinator")
	subUsage(fs, `strata worker -stdio | -connect host:port [-id name] [-routed-shuffle]`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := worker.ServeOptions{ID: *id, RoutedShuffle: *routed}
	switch {
	case *stdio && *connect != "":
		return fmt.Errorf("worker: -stdio and -connect are mutually exclusive")
	case *stdio:
		worker.ServeStdio(opts) // exits the process
		return nil
	case *connect != "":
		return worker.ServeTCP(*connect, opts)
	default:
		return fmt.Errorf("worker: need -stdio or -connect addr")
	}
}
