package main

import (
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"strings"
	"sync"

	"repro/internal/mapreduce"
)

// obs is the process-wide observability state configured by the global flags
// (strata [global flags] <command> ...). It owns the span file tracer, the
// optional debug HTTP server, and the metrics accumulated across every job
// the process runs.
type obs struct {
	verbose   bool
	logLevel  string
	tracePath string
	debugAddr string

	tracer    *mapreduce.JSONLTracer
	traceFile *os.File

	mu      sync.Mutex
	metrics mapreduce.Metrics
}

var globalObs obs

// parseGlobalFlags consumes the observability flags that precede the
// subcommand and returns the remaining arguments (subcommand + its flags).
func parseGlobalFlags(args []string) ([]string, error) {
	fs := flag.NewFlagSet("strata", flag.ContinueOnError)
	fs.Usage = func() {
		usage()
		fmt.Fprintln(os.Stderr, "\nglobal flags (before the command):")
		fs.PrintDefaults()
	}
	fs.BoolVar(&globalObs.verbose, "v", false, "debug logging (shorthand for -log debug)")
	fs.StringVar(&globalObs.logLevel, "log", "", "log level: debug, info, warn or error")
	fs.StringVar(&globalObs.tracePath, "trace", "", "write engine spans to this JSON-lines `file` (read back with \"strata trace\")")
	fs.StringVar(&globalObs.debugAddr, "debug-addr", "", "serve /metrics, /debug/pprof and /debug/vars on this `addr` (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return fs.Args(), nil
}

// setup applies the parsed flags: configures slog, opens the span file, and
// starts the debug server. Call close() when the command finishes.
func (o *obs) setup() error {
	level := slog.LevelInfo
	switch {
	case o.verbose, strings.EqualFold(o.logLevel, "debug"):
		level = slog.LevelDebug
	case o.logLevel == "", strings.EqualFold(o.logLevel, "info"):
		// default
	case strings.EqualFold(o.logLevel, "warn"):
		level = slog.LevelWarn
	case strings.EqualFold(o.logLevel, "error"):
		level = slog.LevelError
	default:
		return fmt.Errorf("unknown -log level %q (want debug, info, warn or error)", o.logLevel)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))

	if o.tracePath != "" {
		f, err := os.Create(o.tracePath)
		if err != nil {
			return fmt.Errorf("opening span file: %w", err)
		}
		o.traceFile = f
		o.tracer = mapreduce.NewJSONLTracer(f)
	}

	if o.debugAddr != "" {
		if err := o.serveDebug(); err != nil {
			return err
		}
	}
	return nil
}

// serveDebug starts the debug HTTP server: pprof (via the blank import),
// expvar at /debug/vars, and the accumulated job metrics in Prometheus text
// format at /metrics. Listening happens synchronously so a bad address fails
// the command instead of a background goroutine.
func (o *obs) serveDebug() error {
	expvar.Publish("strata_metrics", expvar.Func(func() any {
		m := o.snapshot()
		return m
	}))
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		m := o.snapshot()
		if err := m.WritePrometheus(w); err != nil {
			slog.Error("writing /metrics", "err", err)
		}
	})
	ln, err := net.Listen("tcp", o.debugAddr)
	if err != nil {
		return fmt.Errorf("debug server: %w", err)
	}
	slog.Info("debug server listening", "addr", ln.Addr().String(),
		"endpoints", "/metrics /debug/pprof /debug/vars")
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			slog.Error("debug server", "err", err)
		}
	}()
	return nil
}

// close flushes the span file, if any.
func (o *obs) close() error {
	if o.tracer == nil {
		return nil
	}
	if err := o.tracer.Close(); err != nil {
		return err
	}
	if err := o.traceFile.Close(); err != nil {
		return err
	}
	slog.Info("span file written", "path", o.tracePath)
	return nil
}

// record folds one job pipeline's metrics into the process-wide accumulator
// served at /metrics and /debug/vars.
func (o *obs) record(m mapreduce.Metrics) {
	o.mu.Lock()
	o.metrics.Add(m)
	o.mu.Unlock()
}

// snapshot copies the accumulated metrics.
func (o *obs) snapshot() mapreduce.Metrics {
	o.mu.Lock()
	defer o.mu.Unlock()
	var m mapreduce.Metrics
	m.Add(o.metrics)
	m.Job = "all"
	return m
}

// newCluster builds a cluster wired to the process observability state: the
// span tracer when -trace is set, and per-key metrics whenever someone is
// looking (a tracer or a debug server).
func newCluster(slaves int) *mapreduce.Cluster {
	c := mapreduce.NewCluster(slaves)
	if globalObs.tracer != nil {
		c.Tracer = globalObs.tracer
	}
	if globalObs.tracer != nil || globalObs.debugAddr != "" {
		c.PerKeyMetrics = true
	}
	return c
}

// recordMetrics is the subcommand-facing wrapper around globalObs.record.
func recordMetrics(m mapreduce.Metrics) { globalObs.record(m) }
