package main

import (
	cryptorand "crypto/rand"
	"encoding/hex"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/mapreduce"
	"repro/internal/serve"
	"repro/internal/worker"
)

// obs is the process-wide observability state configured by the global flags
// (strata [global flags] <command> ...). It owns the span file tracer, the
// live progress tracker, the optional debug HTTP server, and the metrics
// accumulated across every job the process runs.
type obs struct {
	verbose   bool
	logLevel  string
	tracePath string
	debugAddr string
	progress  bool
	backend   string
	workers   int

	// routedShuffle disables the direct worker-to-worker bucket path for
	// -backend tcp, forcing every bucket through the coordinator.
	routedShuffle bool

	// wire selects the payload wire format: "binary" (default) or "gob",
	// the escape hatch that forces every payload and frame onto the gob
	// codec (equivalent to STRATA_WIRE=gob).
	wire string

	executor mapreduce.Executor

	tracer    *mapreduce.JSONLTracer
	traceFile *os.File
	tracker   *audit.Tracker
	stopTick  chan struct{}
	tickDone  chan struct{}

	// procTrace is the process's trace id when -trace is set: every cluster
	// the command builds stamps its spans with it (runs numbered by runSeq),
	// so multi-run commands produce one coherent trace per process. started
	// anchors the debug server's uptime gauge.
	procTrace string
	runSeq    atomic.Int64
	started   time.Time

	mu      sync.Mutex
	metrics mapreduce.Metrics
	quality *audit.Report
}

var globalObs obs

// parseGlobalFlags consumes the observability flags that precede the
// subcommand and returns the remaining arguments (subcommand + its flags).
func parseGlobalFlags(args []string) ([]string, error) {
	fs := flag.NewFlagSet("strata", flag.ContinueOnError)
	// usage() already renders globalFlagsHelp, the single authoritative
	// global-flag listing; printing fs.PrintDefaults() too would show the
	// same flags twice.
	fs.Usage = usage
	fs.BoolVar(&globalObs.verbose, "v", false, "debug logging (shorthand for -log debug)")
	fs.StringVar(&globalObs.logLevel, "log", "", "log level: debug, info, warn or error")
	fs.StringVar(&globalObs.tracePath, "trace", "", "write engine spans to this JSON-lines `file` (read back with \"strata trace\")")
	fs.StringVar(&globalObs.debugAddr, "debug-addr", "", "serve /metrics, /progress, /quality, /debug/pprof and /debug/vars on this `addr` (e.g. localhost:6060)")
	fs.BoolVar(&globalObs.progress, "progress", false, "print a live per-phase progress line to stderr while jobs run")
	fs.StringVar(&globalObs.backend, "backend", "inproc", "task execution `backend`: inproc, subprocess (worker child processes) or tcp (workers register over TCP)")
	fs.IntVar(&globalObs.workers, "workers", 2, "worker count for -backend subprocess or tcp")
	fs.BoolVar(&globalObs.routedShuffle, "routed-shuffle", false, "with -backend tcp, route all shuffle buckets through the coordinator instead of worker-to-worker")
	fs.StringVar(&globalObs.wire, "wire", "", "payload wire `format`: binary (default) or gob (escape hatch; also STRATA_WIRE=gob)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	switch globalObs.wire {
	case "", "binary":
		// default; STRATA_WIRE=gob in the environment still applies
	case "gob":
		mapreduce.SetWireGob(true)
	default:
		// fs.Parse prints its own errors; this validation must too, since
		// main exits without printing parse failures.
		err := fmt.Errorf("unknown -wire format %q (want binary or gob)", globalObs.wire)
		fmt.Fprintf(os.Stderr, "strata: %v\n", err)
		return nil, err
	}
	return fs.Args(), nil
}

// setup applies the parsed flags: configures slog, opens the span file, and
// starts the debug server. Call close() when the command finishes.
func (o *obs) setup() error {
	level := slog.LevelInfo
	switch {
	case o.verbose, strings.EqualFold(o.logLevel, "debug"):
		level = slog.LevelDebug
	case o.logLevel == "", strings.EqualFold(o.logLevel, "info"):
		// default
	case strings.EqualFold(o.logLevel, "warn"):
		level = slog.LevelWarn
	case strings.EqualFold(o.logLevel, "error"):
		level = slog.LevelError
	default:
		return fmt.Errorf("unknown -log level %q (want debug, info, warn or error)", o.logLevel)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))

	o.started = time.Now()
	if o.tracePath != "" {
		f, err := os.Create(o.tracePath)
		if err != nil {
			return fmt.Errorf("opening span file: %w", err)
		}
		o.traceFile = f
		o.tracer = mapreduce.NewJSONLTracer(f)
		var b [8]byte
		if _, err := cryptorand.Read(b[:]); err == nil {
			o.procTrace = hex.EncodeToString(b[:])
		} else {
			o.procTrace = "t-cli"
		}
	}

	// The tracker consumes the span stream whenever someone can watch it:
	// the -progress ticker or the debug server's /progress endpoint.
	if o.progress || o.debugAddr != "" {
		o.tracker = audit.NewTracker()
	}
	if o.debugAddr != "" {
		if err := o.serveDebug(); err != nil {
			return err
		}
	}
	if o.progress {
		o.startTicker()
	}
	return o.setupExecutor()
}

// setupExecutor starts the worker runtime selected by -backend. The
// executor is shared by every cluster the command builds (newCluster
// installs it) and drained in close().
func (o *obs) setupExecutor() error {
	switch o.backend {
	case "", "inproc":
		return nil
	case "subprocess":
		exec, err := worker.NewSubprocessExecutor(worker.SubprocessConfig{Workers: o.workers})
		if err != nil {
			return fmt.Errorf("starting %d worker subprocesses: %w", o.workers, err)
		}
		slog.Info("worker pool started", "backend", "subprocess", "workers", o.workers)
		o.executor = exec
		return nil
	case "tcp":
		exec, err := worker.NewTCPExecutor(worker.TCPConfig{RoutedShuffle: o.routedShuffle})
		if err != nil {
			return fmt.Errorf("starting tcp coordinator: %w", err)
		}
		if o.workers > 0 {
			exec.SpawnLocal(o.workers)
			if err := exec.AwaitWorkers(o.workers, 10*time.Second); err != nil {
				exec.Close()
				return err
			}
		}
		slog.Info("worker pool started", "backend", "tcp", "addr", exec.Addr(),
			"workers", o.workers, "join", "strata worker -connect "+exec.Addr())
		o.executor = exec
		return nil
	default:
		return fmt.Errorf("unknown -backend %q (want inproc, subprocess or tcp)", o.backend)
	}
}

// startTicker prints the tracker's one-line summary to stderr a few times a
// second, carriage-return style, until close().
func (o *obs) startTicker() {
	o.stopTick = make(chan struct{})
	o.tickDone = make(chan struct{})
	go func() {
		defer close(o.tickDone)
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-o.stopTick:
				return
			case <-tick.C:
				fmt.Fprintf(os.Stderr, "\r\033[K%s", o.tracker.Line())
			}
		}
	}()
}

// serveDebug starts the debug HTTP server: pprof (via the blank import),
// expvar at /debug/vars, and the accumulated job metrics in Prometheus text
// format at /metrics. Listening happens synchronously so a bad address fails
// the command instead of a background goroutine.
func (o *obs) serveDebug() error {
	expvar.Publish("strata_metrics", expvar.Func(func() any {
		m := o.snapshot()
		return m
	}))
	expvar.Publish("strata_nonportable_fallbacks", expvar.Func(func() any {
		return mapreduce.NonPortableFallbacks()
	}))
	expvar.Publish("strata_shuffle", expvar.Func(func() any {
		type shuffleStatser interface{ ShuffleStats() worker.ShuffleStats }
		if s, ok := o.executor.(shuffleStatser); ok {
			return s.ShuffleStats()
		}
		return worker.ShuffleStats{}
	}))
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		m := o.snapshot()
		if err := m.WritePrometheus(w); err != nil {
			slog.Error("writing /metrics", "err", err)
			return
		}
		serve.WriteBuildInfo(w, o.started)
	})
	http.Handle("/progress", o.tracker)
	http.HandleFunc("/quality", func(w http.ResponseWriter, _ *http.Request) {
		o.mu.Lock()
		rep := o.quality
		o.mu.Unlock()
		if rep == nil {
			http.Error(w, "no quality report yet — run \"strata audit\"", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := rep.WritePrometheus(w); err != nil {
			slog.Error("writing /quality", "err", err)
		}
	})
	ln, err := net.Listen("tcp", o.debugAddr)
	if err != nil {
		return fmt.Errorf("debug server: %w", err)
	}
	slog.Info("debug server listening", "addr", ln.Addr().String(),
		"endpoints", "/metrics /progress /quality /debug/pprof /debug/vars")
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			slog.Error("debug server", "err", err)
		}
	}()
	return nil
}

// close drains the worker pool, stops the progress ticker and flushes the
// span file, if any.
func (o *obs) close() error {
	if o.executor != nil {
		if err := o.executor.Close(); err != nil {
			slog.Warn("draining worker pool", "err", err)
		}
	}
	if o.stopTick != nil {
		close(o.stopTick)
		<-o.tickDone
		fmt.Fprintf(os.Stderr, "\r\033[K%s\n", o.tracker.Line())
	}
	if o.tracer == nil {
		return nil
	}
	if err := o.tracer.Close(); err != nil {
		return err
	}
	if err := o.traceFile.Close(); err != nil {
		return err
	}
	slog.Info("span file written", "path", o.tracePath)
	return nil
}

// record folds one job pipeline's metrics into the process-wide accumulator
// served at /metrics and /debug/vars.
func (o *obs) record(m mapreduce.Metrics) {
	o.mu.Lock()
	o.metrics.Add(m)
	o.mu.Unlock()
}

// snapshot copies the accumulated metrics.
func (o *obs) snapshot() mapreduce.Metrics {
	o.mu.Lock()
	defer o.mu.Unlock()
	var m mapreduce.Metrics
	m.Add(o.metrics)
	m.Job = "all"
	return m
}

// newCluster builds a cluster wired to the process observability state: the
// span tracer when -trace is set, the progress tracker when -progress or
// -debug-addr is set (both at once fan out through a TeeTracer), and per-key
// metrics whenever someone is looking.
func newCluster(slaves int) *mapreduce.Cluster {
	c := mapreduce.NewCluster(slaves)
	switch {
	case globalObs.tracer != nil && globalObs.tracker != nil:
		c.Tracer = mapreduce.NewTeeTracer(globalObs.tracer, globalObs.tracker)
	case globalObs.tracer != nil:
		c.Tracer = globalObs.tracer
	case globalObs.tracker != nil:
		c.Tracer = globalObs.tracker
	}
	if globalObs.tracer != nil || globalObs.debugAddr != "" {
		c.PerKeyMetrics = true
	}
	if globalObs.tracer != nil {
		// Each cluster run of the process traces under the process trace id,
		// runs numbered in creation order. The serve daemon overrides this
		// with per-request trace contexts; one-shot commands keep it.
		c.TraceContext = &mapreduce.TraceContext{
			Trace: globalObs.procTrace,
			Run:   fmt.Sprintf("r%d", globalObs.runSeq.Add(1)),
		}
	}
	if globalObs.executor != nil {
		c.Executor = globalObs.executor
	}
	return c
}

// recordMetrics is the subcommand-facing wrapper around globalObs.record.
func recordMetrics(m mapreduce.Metrics) { globalObs.record(m) }

// recordQuality publishes a finished audit report: /quality serves it, and
// its histogram series fold into the accumulated job metrics so they travel
// the /metrics Prometheus path too.
func recordQuality(rep *audit.Report) {
	globalObs.mu.Lock()
	globalObs.quality = rep
	globalObs.metrics.Custom = mergeCustom(globalObs.metrics.Custom, rep.Histograms())
	globalObs.mu.Unlock()
}

func mergeCustom(dst, src map[string]*mapreduce.Histogram) map[string]*mapreduce.Histogram {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string]*mapreduce.Histogram, len(src))
	}
	for k, h := range src {
		if dst[k] == nil {
			dst[k] = &mapreduce.Histogram{}
		}
		dst[k].Merge(*h)
	}
	return dst
}
