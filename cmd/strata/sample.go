package main

import (
	"flag"
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/estimate"
	"repro/internal/gen"
	"repro/internal/query"
	"repro/internal/stratified"
)

// parseSSD parses "cond : freq ; cond : freq ; ..." into an SSD query (the
// shared parser lives in internal/query so the serve daemon accepts the same
// syntax).
func parseSSD(name, spec string) (*query.SSD, error) {
	return query.ParseSSD(name, spec)
}

func cmdSample(args []string) error {
	fs := flag.NewFlagSet("sample", flag.ExitOnError)
	n := fs.Int("n", 10000, "population size")
	seed := fs.Int64("seed", 1, "random seed")
	slaves := fs.Int("slaves", 4, "cluster slaves")
	numSplits := fs.Int("splits", 0, "partition splits (0 = max(2*slaves, 2*GOMAXPROCS); must match a daemon's -splits for identical answers)")
	naive := fs.Bool("naive", false, "disable the combiner (Figure 1 variant)")
	layout := fs.String("layout", "contiguous", "data layout across machines: round-robin, contiguous, skewed, shuffled-contiguous")
	spec := fs.String("query", "nop >= 100 : 5 ; nop < 100 : 10",
		"SSD query: \"cond : freq ; cond : freq ; ...\"")
	showTuples := fs.Bool("print", true, "print the sampled individuals")
	estimateAttr := fs.String("estimate", "", "also estimate the population mean of this attribute from the sample")
	subUsage(fs, `strata sample [-n 10000] -query "cond : freq ; ..." [-slaves 4] [-layout contiguous] [-naive] [-estimate attr]`)
	if err := fs.Parse(args); err != nil {
		return err
	}

	q, err := parseSSD("Q", *spec)
	if err != nil {
		return err
	}
	pop := gen.Population(*n, *seed)
	if err := q.Validate(pop.Schema()); err != nil {
		return err
	}
	strategy, err := dataset.ParsePartitioning(*layout)
	if err != nil {
		return err
	}
	k := *numSplits
	if k <= 0 {
		k = dataset.DefaultSplits(*slaves)
	}
	splits, err := dataset.Partition(pop, k, strategy, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	cluster := newCluster(*slaves)
	ans, met, err := stratified.RunSQE(cluster, q, pop.Schema(), splits, stratified.Options{
		Seed:  *seed,
		Naive: *naive,
	})
	if err != nil {
		return err
	}
	recordMetrics(met)
	for k, s := range q.Strata {
		fmt.Printf("stratum %d (%s, f=%d): %d individuals\n", k+1, s.Cond, s.Freq, len(ans.Strata[k]))
		if *showTuples {
			for _, t := range ans.Strata[k] {
				fmt.Printf("  %s\n", t)
			}
		}
	}
	fmt.Printf("\n%s\n", met)

	if *estimateAttr != "" {
		sums, err := estimate.FromAnswer(ans, q, pop, *estimateAttr)
		if err != nil {
			return err
		}
		stratMean, err := estimate.StratifiedMean(sums)
		if err != nil {
			return err
		}
		fmt.Printf("stratified estimate of mean %s: %s\n", *estimateAttr, stratMean)
	}
	return nil
}
