package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/cps"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/query"
)

// cmdQuery runs an MSSD design read from a JSON file over either a CSV
// population (in the `strata generate -csv` format, author schema) or a
// freshly generated one.
func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	designPath := fs.String("design", "", "path to an MSSD design JSON file (required)")
	dataPath := fs.String("data", "", "path to a population CSV (author schema); empty = generate")
	n := fs.Int("n", 20000, "population size when generating")
	seed := fs.Int64("seed", 1, "random seed")
	slaves := fs.Int("slaves", 4, "cluster slaves")
	ip := fs.Bool("ip", false, "solve the exact integer program")
	out := fs.String("out", "", "write the selected individuals to this CSV file")
	subUsage(fs, `strata query -design design.json [-data pop.csv] [-ip] [-out answers.csv]`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *designPath == "" {
		return fmt.Errorf("query: -design is required")
	}
	raw, err := os.ReadFile(*designPath)
	if err != nil {
		return err
	}
	var m query.MSSD
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("query: parsing %s: %w", *designPath, err)
	}

	var pop *dataset.Relation
	if *dataPath != "" {
		f, err := os.Open(*dataPath)
		if err != nil {
			return err
		}
		defer f.Close()
		pop, err = dataset.ReadCSV(f, gen.AuthorSchema())
		if err != nil {
			return err
		}
	} else {
		pop = gen.Population(*n, *seed)
	}

	splits, err := dataset.Partition(pop, dataset.DefaultSplits(*slaves), dataset.Contiguous, nil)
	if err != nil {
		return err
	}
	cluster := newCluster(*slaves)
	start := time.Now()
	res, err := cps.Run(cluster, &m, pop.Schema(), splits, cps.Options{
		Seed:  *seed,
		Solve: cps.SolveOptions{Integer: *ip},
	})
	if err != nil {
		return err
	}
	recordMetrics(res.Metrics)

	fmt.Printf("population %d, %d surveys, %d interview slots\n", pop.Len(), len(m.Queries), m.TotalFreq())
	for qi, q := range m.Queries {
		fmt.Printf("  %s: %d individuals across %d strata\n", q.Name, res.Answers[qi].Size(), len(q.Strata))
	}
	fmt.Printf("unique individuals: %d\n", res.Answers.UniqueIndividuals())
	if m.Costs != nil {
		fmt.Printf("total cost: $%.2f (independent selection would cost $%.2f)\n",
			res.Answers.Cost(m.Costs), res.Initial.Cost(m.Costs))
	}
	fmt.Printf("wall time %v, simulated cluster time %v\n",
		time.Since(start).Round(time.Millisecond), res.Metrics.SimulatedTotal().Round(time.Millisecond))

	if *out != "" {
		if err := writeAnswersCSV(*out, &m, res.Answers, pop.Schema()); err != nil {
			return err
		}
		fmt.Printf("answers written to %s\n", *out)
	}
	return nil
}

// writeAnswersCSV dumps every selected individual with its survey and
// stratum assignment: one row per (survey, individual).
func writeAnswersCSV(path string, m *query.MSSD, answers query.MultiAnswer, schema *dataset.Schema) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{"survey", "stratum", "id", "name"}
	for j := 0; j < schema.NumFields(); j++ {
		header = append(header, schema.Field(j).Name)
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for qi, ans := range answers {
		for k, stratum := range ans.Strata {
			for _, t := range stratum {
				row := []string{
					m.Queries[qi].Name,
					strconv.Itoa(k + 1),
					strconv.FormatInt(t.ID, 10),
					t.Name,
				}
				for _, v := range t.Attrs {
					row = append(row, strconv.FormatInt(v, 10))
				}
				if err := w.Write(row); err != nil {
					return err
				}
			}
		}
	}
	w.Flush()
	return w.Error()
}
