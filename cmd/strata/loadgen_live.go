package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"os"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/serve"
)

// Live-mode load generation: mutation batches mixed into the query stream
// (-mutate) and the standing-query freshness benchmark (-freshness), which
// compares subscribe-and-read-warm against recompute-per-query over the same
// mutation stream. Both need a daemon running with -live.

// mutationBatch builds one self-contained mutation batch for request i:
// inserts fresh members (ids partitioned by request index so concurrent
// clients never collide), updates originals, then deletes half of the fresh
// inserts again — applied in order, so the batch is rejection-free and the
// population stays near its starting size.
func mutationBatch(i int, popN int, schema *dataset.Schema, size int) []map[string]any {
	rng := rand.New(rand.NewSource(int64(i) + 1))
	attrs := func() []int64 {
		a := make([]int64, schema.NumFields())
		for f := 0; f < schema.NumFields(); f++ {
			fld := schema.Field(f)
			a[f] = fld.Min + rng.Int63n(fld.Width())
		}
		return a
	}
	base := int64(1)<<40 + int64(i)*int64(size)
	muts := make([]map[string]any, 0, size)
	inserts := (size + 1) / 2
	for j := 0; j < inserts; j++ {
		muts = append(muts, map[string]any{"op": "insert", "id": base + int64(j), "attrs": attrs()})
	}
	for j := 0; len(muts) < size-inserts/2; j++ {
		muts = append(muts, map[string]any{"op": "update", "id": rng.Int63n(int64(popN)), "attrs": attrs()})
	}
	for j := 0; j < inserts/2; j++ {
		muts = append(muts, map[string]any{"op": "delete", "id": base + int64(j)})
	}
	return muts
}

// postMutations applies one batch and fails on any per-mutation rejection
// (the batches are constructed to be rejection-free).
func postMutations(client *http.Client, baseURL string, muts []map[string]any) error {
	body, _ := json.Marshal(map[string]any{"mutations": muts})
	resp, err := client.Post(baseURL+"/v1/mutate", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("mutate: status %d", resp.StatusCode)
	}
	var applied struct {
		Applied  int   `json:"applied"`
		Rejected []any `json:"rejected"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&applied); err != nil {
		return err
	}
	if len(applied.Rejected) > 0 {
		return fmt.Errorf("mutate: %d of %d mutations rejected", len(applied.Rejected), len(muts))
	}
	return nil
}

// freshnessRun is one arm of the -freshness comparison.
type freshnessRun struct {
	Rounds       int     `json:"rounds"`
	MutPerRound  int     `json:"mutations_per_round"`
	FreshReads   int     `json:"fresh_reads"`
	WallMS       int64   `json:"wall_ms"`
	MutP50MS     float64 `json:"mutate_p50_ms"`
	MutP99MS     float64 `json:"mutate_p99_ms"`
	ReadMeanMS   float64 `json:"read_mean_ms"`
	ReadP50MS    float64 `json:"read_p50_ms"`
	ReadP99MS    float64 `json:"read_p99_ms"`
	LiveHits     int64   `json:"live_hits"`
	Passes       int64   `json:"passes"`
	Repairs      int64   `json:"repairs,omitempty"`
	MaxStaleness int64   `json:"max_staleness,omitempty"`
}

// runFreshness drives one arm: `rounds` mutation batches of `mutBatch`
// against a fresh in-process live daemon, reading a current answer for each
// of `queries` templates after every round. With standing=true the templates
// are subscribed first, so reads ride the warm incremental reservoirs; with
// standing=false every read is an ad-hoc nocache query — a full engine pass.
func runFreshness(pop *dataset.Relation, slaves int, seed int64, rounds, mutBatch, queries int, standing bool, staleness int) (freshnessRun, error) {
	srv, err := serve.NewServer(serve.Config{
		Population: pop, Slaves: slaves, PartitionSeed: seed,
		Window: 0, Live: true, StalenessBound: staleness,
		NewCluster: newCluster, OnMetrics: recordMetrics,
	})
	if err != nil {
		return freshnessRun{}, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: 2 * time.Minute}

	if standing {
		for qi := 0; qi < queries; qi++ {
			body, _ := json.Marshal(map[string]any{
				"query": loadQuery(qi), "seed": seed,
				// A huge mutation trigger: the subscription registers (and
				// maintains) the standing query but never pushes — this arm
				// measures the warm read path alone.
				"every_mutations": int64(1) << 40,
			})
			resp, err := client.Post(ts.URL+"/v1/subscribe", "application/json", bytes.NewReader(body))
			if err != nil {
				return freshnessRun{}, err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return freshnessRun{}, fmt.Errorf("subscribe: status %d", resp.StatusCode)
			}
		}
	}

	run := freshnessRun{Rounds: rounds, MutPerRound: mutBatch}
	var mutLat, readLat []time.Duration
	start := time.Now()
	for r := 0; r < rounds; r++ {
		t0 := time.Now()
		if err := postMutations(client, ts.URL, mutationBatch(r, pop.Len(), pop.Schema(), mutBatch)); err != nil {
			return run, err
		}
		mutLat = append(mutLat, time.Since(t0))
		for qi := 0; qi < queries; qi++ {
			req := map[string]any{"query": loadQuery(qi), "seed": seed}
			if !standing {
				req["nocache"] = true
			}
			body, _ := json.Marshal(req)
			t1 := time.Now()
			resp, err := client.Post(ts.URL+"/v1/sample", "application/json", bytes.NewReader(body))
			if err != nil {
				return run, err
			}
			var ans struct {
				Live bool `json:"live"`
			}
			err = json.NewDecoder(resp.Body).Decode(&ans)
			resp.Body.Close()
			if err != nil {
				return run, err
			}
			if ans.Live != standing {
				return run, fmt.Errorf("round %d query %d: live=%v, want %v", r, qi, ans.Live, standing)
			}
			readLat = append(readLat, time.Since(t1))
			run.FreshReads++
		}
	}
	run.WallMS = time.Since(start).Milliseconds()
	run.MutP50MS, _, run.MutP99MS = latPercentiles(mutLat)
	run.ReadP50MS, run.ReadMeanMS, run.ReadP99MS = latPercentiles(readLat)

	srv.BeginDrain()
	srv.Drain()
	snap := srv.Stats()
	run.LiveHits = snap.LiveHits
	run.Passes = snap.Passes
	if snap.Live != nil {
		run.Repairs = snap.Live.Repairs
		run.MaxStaleness = snap.Live.MaxStaleness
	}
	return run, nil
}

// latPercentiles returns (p50, mean, p99) in milliseconds.
func latPercentiles(lat []time.Duration) (p50, mean, p99 float64) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	at := func(p float64) float64 {
		return float64(sorted[int(p*float64(len(sorted)-1))].Microseconds()) / 1000
	}
	return at(0.50), float64(sum.Microseconds()) / float64(len(sorted)) / 1000, at(0.99)
}

// freshnessReport is the -freshness -json output shape: the same mutation
// stream priced two ways. Standing reads come from incrementally maintained
// reservoirs (O(sample) per mutation, snapshot per read); recompute reads pay
// a full engine pass each. ReadSpeedup is recompute mean read latency over
// standing mean read latency.
type freshnessReport struct {
	Population  int          `json:"population"`
	Queries     int          `json:"distinct_queries"`
	Standing    freshnessRun `json:"standing"`
	Recompute   freshnessRun `json:"recompute"`
	ReadSpeedup float64      `json:"read_speedup"`
}

// runFreshnessCompare runs both arms of the freshness benchmark on fresh
// in-process live daemons and reports the comparison.
func runFreshnessCompare(n int, seed int64, slaves, rounds, mutBatch, queries, staleness int, jsonOut string) error {
	fmt.Printf("generating population of %d (seed %d)...\n", n, seed)
	pop := gen.Population(n, seed)
	standing, err := runFreshness(pop, slaves, seed, rounds, mutBatch, queries, true, staleness)
	if err != nil {
		return err
	}
	printFreshness("standing", standing)
	// Each arm's daemon partitions the relation into its own split copies, so
	// the first arm's mutations never leak into the second.
	recompute, err := runFreshness(pop, slaves, seed, rounds, mutBatch, queries, false, staleness)
	if err != nil {
		return err
	}
	printFreshness("recompute", recompute)
	report := freshnessReport{
		Population: pop.Len(), Queries: queries,
		Standing: standing, Recompute: recompute,
	}
	if standing.ReadMeanMS > 0 {
		report.ReadSpeedup = recompute.ReadMeanMS / standing.ReadMeanMS
		fmt.Printf("\nstanding-query freshness: %.0fx cheaper per fresh read (%.3fms warm vs %.3fms recompute)\n",
			report.ReadSpeedup, standing.ReadMeanMS, recompute.ReadMeanMS)
	}
	if jsonOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", jsonOut)
	}
	return nil
}

func printFreshness(label string, r freshnessRun) {
	fmt.Printf("\n[%s] %d rounds x %d mutations, %d fresh reads in %dms\n",
		label, r.Rounds, r.MutPerRound, r.FreshReads, r.WallMS)
	fmt.Printf("  mutate ms: p50 %.2f p99 %.2f   read ms: mean %.3f p50 %.3f p99 %.3f\n",
		r.MutP50MS, r.MutP99MS, r.ReadMeanMS, r.ReadP50MS, r.ReadP99MS)
	fmt.Printf("  daemon: %d live hits, %d passes, %d repairs (max staleness %d)\n",
		r.LiveHits, r.Passes, r.Repairs, r.MaxStaleness)
}
