package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/predicate"
	"repro/internal/query"
)

func TestCmdGenerate(t *testing.T) {
	if err := cmdGenerate([]string{"-n", "500", "-stats=true"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGenerate([]string{"-n", "300", "-uniform"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGenerate([]string{"-n", "300", "-graph"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdSample(t *testing.T) {
	err := cmdSample([]string{"-n", "2000", "-query", "nop >= 30 : 3 ; nop < 30 : 5", "-print=false"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cmdSample([]string{"-n", "100", "-query", "broken ::"}); err == nil {
		t.Fatal("want parse error")
	}
	if err := cmdSample([]string{"-n", "100", "-query", "nop < 10 : 1 ; nop < 20 : 1"}); err == nil {
		t.Fatal("want overlap validation error")
	}
}

func TestCmdAudit(t *testing.T) {
	err := cmdAudit([]string{"-n", "2000", "-query", "nop >= 30 : 3 ; nop < 30 : 5",
		"-runs", "5", "-slaves", "2", "-estimate", "nop"})
	if err != nil {
		t.Fatal(err)
	}
	// The report must have been published for /quality.
	globalObs.mu.Lock()
	rep := globalObs.quality
	custom := globalObs.metrics.Custom
	globalObs.mu.Unlock()
	if rep == nil || rep.Fill == nil || rep.Bias == nil || rep.Estimator == nil {
		t.Fatalf("published quality report incomplete: %+v", rep)
	}
	if rep.Bias.Runs != 5 {
		t.Fatalf("bias runs = %d", rep.Bias.Runs)
	}
	if custom["audit_fill_permille"] == nil {
		t.Fatal("audit histograms not folded into process metrics")
	}
	if err := cmdAudit([]string{"-n", "100", "-query", "broken ::"}); err == nil {
		t.Fatal("want parse error")
	}
	if err := cmdAudit([]string{"-n", "500", "-cps", "-group", "Nope", "-runs", "2", "-slaves", "2"}); err == nil {
		t.Fatal("want unknown-group error")
	}
}

func TestCmdAuditCPS(t *testing.T) {
	err := cmdAudit([]string{"-n", "2500", "-query", "nop >= 30 : 3 ; nop < 30 : 5",
		"-runs", "3", "-slaves", "2", "-cps", "-group", "Small", "-sample", "24", "-json"})
	if err != nil {
		t.Fatal(err)
	}
	globalObs.mu.Lock()
	rep := globalObs.quality
	globalObs.mu.Unlock()
	if rep == nil || rep.CPS == nil {
		t.Fatal("CPS section missing from published report")
	}
	if rep.CPS.CostRatio() < 1-1e-9 {
		t.Fatalf("realized cost below LP bound: %v", rep.CPS.CostRatio())
	}
}

func TestCmdMSSD(t *testing.T) {
	err := cmdMSSD([]string{"-n", "3000", "-group", "Small", "-sample", "32", "-runs", "1", "-slaves", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cmdMSSD([]string{"-group", "Nope"}); err == nil {
		t.Fatal("want unknown-group error")
	}
}

func TestCmdQueryFromFiles(t *testing.T) {
	dir := t.TempDir()

	// Write a design file.
	m := query.NewMSSD(
		query.PenaltyCosts{Interview: 4},
		query.NewSSD("act",
			query.Stratum{Cond: predicate.MustParse("ayp >= 3"), Freq: 4},
			query.Stratum{Cond: predicate.MustParse("ayp < 3"), Freq: 6},
		),
	)
	design, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	designPath := filepath.Join(dir, "design.json")
	if err := os.WriteFile(designPath, design, 0o644); err != nil {
		t.Fatal(err)
	}

	// Write a population CSV.
	pop := gen.Population(800, 9)
	csvPath := filepath.Join(dir, "pop.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := pop.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := cmdQuery([]string{"-design", designPath, "-data", csvPath, "-slaves", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-design", designPath, "-n", "500", "-slaves", "2", "-ip"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{}); err == nil {
		t.Fatal("want missing-design error")
	}
	if err := cmdQuery([]string{"-design", filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("want file error")
	}
}

func TestCmdExperimentsQuick(t *testing.T) {
	err := cmdExperiments([]string{"-run", "table2", "-pop", "3000", "-samples", "24", "-runs", "1", "-slaves", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cmdExperiments([]string{"-run", "nope"}); err == nil {
		t.Fatal("want unknown-experiment error")
	}
	if err := cmdExperiments([]string{"-samples", "abc"}); err == nil {
		t.Fatal("want bad-samples error")
	}
}

func TestParseSSDSpec(t *testing.T) {
	q, err := parseSSD("Q", "a < 5 : 2 ; a >= 5 : 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Strata) != 2 || q.Strata[0].Freq != 2 || q.Strata[1].Freq != 3 {
		t.Fatalf("parsed %+v", q)
	}
	for _, bad := range []string{"", "a < 5", "a < 5 : x", "(( : 3"} {
		if _, err := parseSSD("Q", bad); err == nil {
			t.Errorf("parseSSD(%q) should fail", bad)
		}
	}
}

func TestCmdQueryCSVExport(t *testing.T) {
	dir := t.TempDir()
	m := query.NewMSSD(
		query.PenaltyCosts{Interview: 4},
		query.NewSSD("act",
			query.Stratum{Cond: predicate.MustParse("ayp >= 3"), Freq: 3},
			query.Stratum{Cond: predicate.MustParse("ayp < 3"), Freq: 4},
		),
	)
	design, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	designPath := filepath.Join(dir, "d.json")
	if err := os.WriteFile(designPath, design, 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "answers.csv")
	if err := cmdQuery([]string{"-design", designPath, "-n", "500", "-slaves", "2", "-out", outPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 8 { // header + 7 individuals
		t.Fatalf("%d lines in export, want 8", len(lines))
	}
	if !strings.HasPrefix(lines[0], "survey,stratum,id,name,nop") {
		t.Fatalf("bad header %q", lines[0])
	}
}
