package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/graph"
)

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	n := fs.Int("n", 10000, "number of individuals")
	seed := fs.Int64("seed", 1, "random seed")
	uniform := fs.Bool("uniform", false, "uniform attribute values (no correlations)")
	useGraph := fs.Bool("graph", false, "derive attributes from a generated coauthorship network")
	showStats := fs.Bool("stats", true, "print per-attribute statistics")
	csv := fs.Bool("csv", false, "dump the population as CSV to stdout")
	subUsage(fs, `strata generate [-n 10000] [-uniform] [-graph] [-seed 1] [-stats] [-csv]`)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var pop *dataset.Relation
	switch {
	case *useGraph:
		g, err := graph.Generate(graph.DefaultParams(*n, *seed))
		if err != nil {
			return err
		}
		pop, err = g.Population(*seed)
		if err != nil {
			return err
		}
		fmt.Printf("generated coauthorship network: %d authors, %d papers\n", g.N, len(g.Papers))
	case *uniform:
		pop = gen.UniformPopulation(*n, *seed)
	default:
		pop = gen.Population(*n, *seed)
	}

	fmt.Printf("population: %d individuals, schema %s\n", pop.Len(), pop.Schema())
	if *showStats {
		printAttrStats(pop)
	}
	if *csv {
		dumpCSV(pop)
	}
	return nil
}

func printAttrStats(pop *dataset.Relation) {
	schema := pop.Schema()
	for j := 0; j < schema.NumFields(); j++ {
		f := schema.Field(j)
		vals := make([]int64, pop.Len())
		var sum float64
		for i := 0; i < pop.Len(); i++ {
			v := pop.Tuple(i).Attrs[j]
			vals[i] = v
			sum += float64(v)
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		q := func(p float64) int64 { return vals[int(p*float64(len(vals)-1))] }
		fmt.Printf("  %-6s mean %8.2f  p50 %6d  p90 %6d  p99 %6d  max %6d   (%s)\n",
			f.Name, sum/float64(len(vals)), q(0.5), q(0.9), q(0.99), vals[len(vals)-1], f.Desc)
	}
}

func dumpCSV(pop *dataset.Relation) {
	schema := pop.Schema()
	fmt.Fprint(os.Stdout, "id,name")
	for j := 0; j < schema.NumFields(); j++ {
		fmt.Fprintf(os.Stdout, ",%s", schema.Field(j).Name)
	}
	fmt.Fprintln(os.Stdout)
	for i := 0; i < pop.Len(); i++ {
		t := pop.Tuple(i)
		fmt.Fprintf(os.Stdout, "%d,%s", t.ID, t.Name)
		for _, v := range t.Attrs {
			fmt.Fprintf(os.Stdout, ",%d", v)
		}
		fmt.Fprintln(os.Stdout)
	}
}
