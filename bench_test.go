// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations for the design choices called out in DESIGN.md. Each bench
// reports the reproduced quantity as a custom metric, so `go test -bench=.`
// doubles as the reproduction readout:
//
//	BenchmarkTable2/*      — cost(CPS)/cost(MQE) per query group   (Table 2)
//	BenchmarkFigure6/*     — mean surveys per individual           (Figure 6)
//	BenchmarkFigure7/*     — simulated seconds per cluster size    (Figure 7)
//	BenchmarkFigure8/*     — LP formulate+solve seconds            (Figure 8)
//	BenchmarkOptimality/*  — residual fraction, C_A/C_IP           (§6.2.2)
//	BenchmarkUniform/*     — cost ratio on the uniform dataset     (§6.2.1)
//	BenchmarkAblation*     — combiner, LP decomposition, layout
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cps"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/mapreduce"
	"repro/internal/query"
	"repro/internal/stratified"
)

// benchPop is shared across benches; generating it once keeps -bench=. fast.
const benchPopSize = 20000

var benchPop = gen.Population(benchPopSize, 1)

type benchWorkload struct {
	mssd    *query.MSSD
	queries []*query.SSD
	schema  *dataset.Schema
	splits  []dataset.Split
}

func buildBenchWorkload(b *testing.B, group gen.GroupParams, sample int) *benchWorkload {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(group.N)*100 + int64(sample)))
	queries, err := gen.QueryGroup(group, benchPop, sample, rng)
	if err != nil {
		b.Fatal(err)
	}
	costs := gen.DefaultPenaltyTable(group.N, rng)
	splits, err := dataset.Partition(benchPop, 20, dataset.Contiguous, nil)
	if err != nil {
		b.Fatal(err)
	}
	return &benchWorkload{
		mssd:    query.NewMSSD(costs, queries...),
		queries: queries,
		schema:  benchPop.Schema(),
		splits:  splits,
	}
}

func benchCluster(slaves int) *mapreduce.Cluster { return mapreduce.NewCluster(slaves) }

// BenchmarkTable2 regenerates Table 2: the survey-cost ratio per query group.
func BenchmarkTable2(b *testing.B) {
	for _, group := range gen.Groups() {
		b.Run(group.Name, func(b *testing.B) {
			w := buildBenchWorkload(b, group, 400)
			cluster := benchCluster(10)
			var ratioSum float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cps.RunUnvalidated(cluster, w.mssd, w.schema, w.splits, cps.Options{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				ratioSum += res.Answers.Cost(w.mssd.Costs) / res.Initial.Cost(w.mssd.Costs)
			}
			b.ReportMetric(100*ratioSum/float64(b.N), "costCPS/costMQE-%")
		})
	}
}

// BenchmarkFigure6 regenerates Figure 6: how many surveys an individual
// selected by MR-CPS participates in, on average.
func BenchmarkFigure6(b *testing.B) {
	for _, group := range gen.Groups() {
		b.Run(group.Name, func(b *testing.B) {
			w := buildBenchWorkload(b, group, 400)
			cluster := benchCluster(10)
			var meanSum, mqeShareSum float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cps.RunUnvalidated(cluster, w.mssd, w.schema, w.splits, cps.Options{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				var individuals, assignments, mqeShared, mqeTotal float64
				for j, c := range res.Answers.SharingHistogram() {
					individuals += float64(c)
					assignments += float64(j * c)
				}
				for j, c := range res.Initial.SharingHistogram() {
					mqeTotal += float64(c)
					if j > 1 {
						mqeShared += float64(c)
					}
				}
				meanSum += assignments / individuals
				mqeShareSum += mqeShared / mqeTotal
			}
			b.ReportMetric(meanSum/float64(b.N), "surveys/individual")
			b.ReportMetric(100*mqeShareSum/float64(b.N), "MQE-shared-%")
		})
	}
}

// BenchmarkFigure7 regenerates Figure 7: virtual-clock running times per
// cluster size for MR-MQE and MR-CPS.
func BenchmarkFigure7(b *testing.B) {
	for _, alg := range []string{"MQE", "CPS"} {
		for _, slaves := range []int{1, 5, 10} {
			b.Run(alg+"/"+gen.Medium.Name+"/slaves="+itoa(slaves), func(b *testing.B) {
				w := buildBenchWorkload(b, gen.Medium, 400)
				cluster := benchCluster(slaves)
				var simSum float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					switch alg {
					case "MQE":
						_, met, err := stratified.RunMQE(cluster, w.queries, w.schema, w.splits, stratified.Options{Seed: int64(i)})
						if err != nil {
							b.Fatal(err)
						}
						simSum += met.SimulatedTotal().Seconds()
					case "CPS":
						res, err := cps.RunUnvalidated(cluster, w.mssd, w.schema, w.splits, cps.Options{Seed: int64(i)})
						if err != nil {
							b.Fatal(err)
						}
						simSum += res.Metrics.SimulatedTotal().Seconds()
					}
				}
				b.ReportMetric(simSum/float64(b.N), "simulated-sec")
			})
		}
	}
}

// BenchmarkFigure8 regenerates Figure 8: LP formulate+solve time.
func BenchmarkFigure8(b *testing.B) {
	for _, group := range gen.Groups() {
		b.Run(group.Name, func(b *testing.B) {
			w := buildBenchWorkload(b, group, 400)
			cluster := benchCluster(10)
			var lpSum float64
			var vars float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cps.RunUnvalidated(cluster, w.mssd, w.schema, w.splits, cps.Options{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				lpSum += (res.LP.FormulateTime + res.LP.SolveTime).Seconds()
				vars += float64(res.LP.Vars)
			}
			b.ReportMetric(lpSum/float64(b.N), "LP-sec")
			b.ReportMetric(vars/float64(b.N), "LP-vars")
		})
	}
}

// BenchmarkOptimality regenerates the Section 6.2.2 analysis: the residual
// fraction and how far the realised cost sits above the exact IP optimum.
func BenchmarkOptimality(b *testing.B) {
	for _, group := range []gen.GroupParams{gen.Small, gen.Medium} {
		b.Run(group.Name, func(b *testing.B) {
			w := buildBenchWorkload(b, group, 400)
			cluster := benchCluster(10)
			var residSum, gapSum float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lpRes, err := cps.RunUnvalidated(cluster, w.mssd, w.schema, w.splits, cps.Options{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				ipRes, err := cps.RunUnvalidated(cluster, w.mssd, w.schema, w.splits, cps.Options{
					Seed:  int64(i),
					Solve: cps.SolveOptions{Integer: true},
				})
				if err != nil {
					b.Fatal(err)
				}
				total := float64(lpRes.PlannedTuples + lpRes.ResidualTuples)
				residSum += float64(lpRes.ResidualTuples) / total
				ca := lpRes.Answers.Cost(w.mssd.Costs)
				gapSum += (ca - ipRes.LP.Objective) / ca
			}
			b.ReportMetric(100*residSum/float64(b.N), "residual-%")
			b.ReportMetric(100*gapSum/float64(b.N), "gap-to-IP-%")
		})
	}
}

// BenchmarkUniform regenerates the Section 6.2.1 robustness check on the
// uniform no-correlation dataset.
func BenchmarkUniform(b *testing.B) {
	uniformPop := gen.UniformPopulation(benchPopSize, 1)
	rng := rand.New(rand.NewSource(301))
	queries, err := gen.QueryGroup(gen.Small, uniformPop, 400, rng)
	if err != nil {
		b.Fatal(err)
	}
	costs := gen.DefaultPenaltyTable(gen.Small.N, rng)
	mssd := query.NewMSSD(costs, queries...)
	splits, err := dataset.Partition(uniformPop, 20, dataset.Contiguous, nil)
	if err != nil {
		b.Fatal(err)
	}
	cluster := benchCluster(10)
	var ratioSum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cps.RunUnvalidated(cluster, mssd, uniformPop.Schema(), splits, cps.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		ratioSum += res.Answers.Cost(costs) / res.Initial.Cost(costs)
	}
	b.ReportMetric(100*ratioSum/float64(b.N), "costCPS/costMQE-%")
}

// BenchmarkAblationCombiner compares the naive Figure 1 program against
// MR-SQE's combiner variant: same answers in distribution, radically
// different shuffle volume.
func BenchmarkAblationCombiner(b *testing.B) {
	w := buildBenchWorkload(b, gen.Small, 400)
	cluster := benchCluster(10)
	for _, naive := range []bool{false, true} {
		name := "combiner"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			var shuffled float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, met, err := stratified.RunMQE(cluster, w.queries, w.schema, w.splits, stratified.Options{
					Seed:  int64(i),
					Naive: naive,
				})
				if err != nil {
					b.Fatal(err)
				}
				shuffled += float64(met.ShuffleRecords)
			}
			b.ReportMetric(shuffled/float64(b.N), "shuffle-records")
		})
	}
}

// BenchmarkAblationLPDecomposition compares the per-σ decomposed LP (the
// default) against the joint Figure 3 formulation: identical optimum, very
// different tableau sizes.
func BenchmarkAblationLPDecomposition(b *testing.B) {
	w := buildBenchWorkload(b, gen.Medium, 400)
	cluster := benchCluster(10)
	for _, joint := range []bool{false, true} {
		name := "decomposed"
		if joint {
			name = "joint"
		}
		b.Run(name, func(b *testing.B) {
			var lpSec, obj float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cps.RunUnvalidated(cluster, w.mssd, w.schema, w.splits, cps.Options{
					Seed:  int64(i),
					Solve: cps.SolveOptions{Joint: joint},
				})
				if err != nil {
					b.Fatal(err)
				}
				lpSec += res.LP.SolveTime.Seconds()
				obj += res.LP.Objective
			}
			b.ReportMetric(lpSec/float64(b.N), "LP-sec")
			b.ReportMetric(obj/float64(b.N), "LP-objective-$")
		})
	}
}

// BenchmarkAblationFaults measures the virtual-clock cost of fault tolerance:
// injected task failures re-execute deterministically (same answers), paying
// only time.
func BenchmarkAblationFaults(b *testing.B) {
	w := buildBenchWorkload(b, gen.Small, 400)
	for _, prob := range []float64{0, 0.1, 0.3} {
		b.Run(fmt.Sprintf("failure=%.0f%%", prob*100), func(b *testing.B) {
			cluster := benchCluster(10)
			if prob > 0 {
				cluster.Faults = &mapreduce.FaultModel{TaskFailureProb: prob, MaxAttempts: 10, Seed: 5}
			}
			var sim, attempts float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, met, err := stratified.RunMQE(cluster, w.queries, w.schema, w.splits, stratified.Options{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				sim += met.SimulatedTotal().Seconds()
				attempts += float64(met.MapAttempts + met.ReduceAttempts)
			}
			b.ReportMetric(sim/float64(b.N), "simulated-sec")
			b.ReportMetric(attempts/float64(b.N), "task-attempts")
		})
	}
}

// BenchmarkAblationPartitioning shows MR-SQE is insensitive to how the data
// is laid out across machines (the correctness claim of Section 4.2.3 in
// performance terms).
func BenchmarkAblationPartitioning(b *testing.B) {
	w := buildBenchWorkload(b, gen.Small, 400)
	cluster := benchCluster(10)
	rng := rand.New(rand.NewSource(11))
	for _, strat := range []dataset.Partitioning{dataset.RoundRobin, dataset.Contiguous, dataset.Skewed} {
		splits, err := dataset.Partition(benchPop, 20, strat, rng)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(strat.String(), func(b *testing.B) {
			var sim float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, met, err := stratified.RunMQE(cluster, w.queries, w.schema, splits, stratified.Options{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				sim += met.SimulatedTotal().Seconds()
			}
			b.ReportMetric(sim/float64(b.N), "simulated-sec")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
