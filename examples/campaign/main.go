// Campaign: a research company runs the same pair of surveys every quarter.
// Within a quarter, sharing individuals between the two surveys saves an
// interview; across quarters, nobody may be surveyed twice (survey fatigue).
// cps.Campaign keeps the bookkeeping: each wave is answered by MR-CPS with
// all previous participants excluded, and every wave is still an unbiased
// stratified sample of the remaining population.
package main

import (
	"fmt"
	"log"

	"repro/internal/cps"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
	"repro/internal/query"
)

func main() {
	pop := gen.Population(40000, 8)
	splits, err := dataset.Partition(pop, 8, dataset.Contiguous, nil)
	if err != nil {
		log.Fatal(err)
	}

	engagement := query.NewSSD("engagement",
		query.Stratum{Cond: predicate.MustParse("ayp >= 2"), Freq: 30},
		query.Stratum{Cond: predicate.MustParse("ayp < 2"), Freq: 30},
	)
	reach := query.NewSSD("reach",
		query.Stratum{Cond: predicate.MustParse("cc >= 10"), Freq: 25},
		query.Stratum{Cond: predicate.MustParse("cc < 10"), Freq: 35},
	)
	mssd := query.NewMSSD(query.PenaltyCosts{Interview: 4}, engagement, reach)

	camp := cps.NewCampaign(mapreduce.NewCluster(4), pop.Schema(), splits)
	for quarter := 1; quarter <= 4; quarter++ {
		res, err := camp.RunWave(mssd, cps.Options{Seed: int64(quarter) * 1009})
		if err != nil {
			log.Fatal(err)
		}
		hist := res.Answers.SharingHistogram()
		fmt.Printf("Q%d: %3d interview slots, %3d unique individuals (%d in both surveys), cost $%.0f\n",
			quarter, mssd.TotalFreq(), res.Answers.UniqueIndividuals(), hist[2],
			res.Answers.Cost(mssd.Costs))
	}
	fmt.Printf("\nfour quarters touched %d distinct individuals — nobody twice\n", camp.TotalSurveyed())
}
