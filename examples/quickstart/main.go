// Quickstart: generate a synthetic author population, define a stratified
// sample design (SSD) query with three strata, and answer it with the
// distributed MR-SQE algorithm on a simulated 4-slave MapReduce cluster.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/stratified"
)

func main() {
	// A population of 50,000 researchers with the attribute schema and
	// distributions of the paper's Table 1 (DBLP-shaped).
	pop := gen.Population(50000, 42)
	fmt.Printf("population: %d individuals over %s\n\n", pop.Len(), pop.Schema())

	// A survey design: 10 prolific authors, 10 mid-career authors and 20
	// newcomers. Strata must be pairwise disjoint; Validate checks that.
	q := query.NewSSD("career-survey",
		query.Stratum{Cond: predicate.MustParse("nop >= 100"), Freq: 10},
		query.Stratum{Cond: predicate.MustParse("nop >= 10 and nop < 100"), Freq: 10},
		query.Stratum{Cond: predicate.MustParse("nop < 10"), Freq: 20},
	)
	if err := q.Validate(pop.Schema()); err != nil {
		log.Fatal(err)
	}

	// The population lives on machines: here 8 contiguous splits, the
	// realistic layout where machines hold locality-correlated data (which
	// is exactly when naive distributed sampling becomes biased).
	splits, err := dataset.Partition(pop, 8, dataset.Contiguous, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Answer the query with MR-SQE: map partitions by stratum, combiners
	// draw per-machine reservoir samples, the reducer merges them with the
	// unified-sampler so every individual has equal inclusion probability.
	// A MemTracer on the cluster collects one span per task attempt, combine
	// and shuffle leg, so we can break the run down by phase afterwards.
	cluster := mapreduce.NewCluster(4)
	tracer := mapreduce.NewMemTracer()
	cluster.Tracer = tracer
	ans, metrics, err := stratified.RunSQE(cluster, q, pop.Schema(), splits, stratified.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	for k, s := range q.Strata {
		fmt.Printf("stratum %q — %d sampled:\n", s.Cond, len(ans.Strata[k]))
		for _, t := range ans.Strata[k][:min(3, len(ans.Strata[k]))] {
			fmt.Printf("  %s\n", t)
		}
		if len(ans.Strata[k]) > 3 {
			fmt.Printf("  ... and %d more\n", len(ans.Strata[k])-3)
		}
	}
	fmt.Printf("\njob counters: %s\n", metrics)
	fmt.Printf("virtual cluster time: %v (the combiner kept the shuffle at %d records for %d inputs)\n",
		metrics.SimulatedTotal().Round(1e6), metrics.ShuffleRecords, metrics.MapInputRecords)

	// Per-phase breakdown from the trace: sum the spans' simulated time by
	// phase — the same split as the paper's time-breakdown experiments.
	sim := map[string]time.Duration{}
	n := map[string]int{}
	for _, s := range tracer.Spans() {
		sim[s.Phase] += s.Simulated
		n[s.Phase]++
	}
	fmt.Println("\nper-phase trace (simulated task time, not makespan):")
	for _, phase := range []string{mapreduce.PhaseMap, mapreduce.PhaseCombine,
		mapreduce.PhaseShuffleSend, mapreduce.PhaseShuffleRecv, mapreduce.PhaseReduce} {
		fmt.Printf("  %-12s %3d spans  %v\n", phase, n[phase], sim[phase].Round(1e3))
	}
	// The combiner also reports every intermediate reservoir it shipped,
	// via TaskContext.Observe — here: how big the per-machine samples were.
	if h := metrics.Custom["reservoir_size"]; h != nil {
		fmt.Printf("intermediate reservoirs: %s\n", h)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
