// Auditdemo: the sampling-quality auditor end to end, in-process.
//
// The audit layer grades what the paper promises statistically — required
// frequencies met per stratum, unbiased per-member inclusion (Algorithm 1's
// contract, tested by repeated-run chi-square), CPS cost at the LP lower
// bound, and an estimator that actually gains precision from stratifying.
// This program runs all four audits over a generated author population and
// renders the combined quality scorecard, while a progress tracker watches
// the span stream of every job the audit itself runs.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/audit"
	"repro/internal/cps"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/stratified"
)

func main() {
	pop := gen.Population(8000, 1)
	splits, err := dataset.Partition(pop, 8, dataset.Contiguous, nil)
	if err != nil {
		log.Fatal(err)
	}

	// A progress tracker consumes the span stream of every job below; a
	// server could expose it live at /progress via its ServeHTTP.
	tracker := audit.NewTracker()
	cluster := mapreduce.NewCluster(4)
	cluster.Tracer = tracker

	q := query.NewSSD("prolific",
		query.Stratum{Cond: predicate.MustParse("nop >= 100"), Freq: 8},
		query.Stratum{Cond: predicate.MustParse("nop < 100"), Freq: 12},
	)

	// Bias audit: 25 MR-SQE runs with stepped seeds, chi-square over the
	// per-member inclusion counts of each stratum.
	bias, _, err := audit.BiasAuditSQE(cluster, q, pop.Schema(), splits, stratified.Options{Seed: 1}, 25)
	if err != nil {
		log.Fatal(err)
	}

	// Fill + estimator audits on one representative run.
	ans, _, err := stratified.RunSQE(cluster, q, pop.Schema(), splits, stratified.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	pops, err := audit.StratumPopulations(q, pop.Schema(), splits)
	if err != nil {
		log.Fatal(err)
	}
	fill, err := audit.AuditFill(q, ans, pops)
	if err != nil {
		log.Fatal(err)
	}
	est, err := audit.AuditEstimator(ans, q, pop, "nop")
	if err != nil {
		log.Fatal(err)
	}

	// CPS accounting: one MR-CPS run over a generated 3-survey group.
	rng := rand.New(rand.NewSource(100))
	queries, err := gen.QueryGroup(gen.Groups()[0], pop, 50, rng)
	if err != nil {
		log.Fatal(err)
	}
	m := query.NewMSSD(gen.DefaultPenaltyTable(len(queries), rng), queries...)
	res, err := cps.Run(cluster, m, pop.Schema(), splits, cps.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	rep := &audit.Report{
		Fill:      fill,
		Bias:      bias,
		CPS:       audit.AuditCPS(m, res),
		Estimator: est,
	}
	rep.Render(os.Stdout)

	fmt.Printf("\nverdict: passed=%v (bias alpha 1e-4)\n", rep.Passed(1e-4))
	fmt.Printf("\nwhat the progress tracker saw:\n  %s\n", tracker.Line())
	for _, j := range tracker.Snapshot().Jobs {
		fmt.Printf("  job %-28s runs=%-3d done=%v shuffled=%dB\n", j.Job, j.Runs, j.Done, j.ShuffleBytes)
	}
}
