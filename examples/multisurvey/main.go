// Multisurvey: a market-research company runs three surveys in parallel over
// the same social network (the setting of Examples 2–4 of the paper).
// Sharing an anonymized individual between surveys costs one interview
// instead of several — but surveys 1 and 2 must not share individuals
// (survey fatigue), expressed as a $25 penalty. MR-CPS chooses who
// participates in what so that every survey still gets an unbiased
// stratified sample while the total cost is minimized.
package main

import (
	"fmt"
	"log"

	"repro/internal/cps"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
	"repro/internal/query"
)

func main() {
	pop := gen.Population(60000, 3)
	splits, err := dataset.Partition(pop, 10, dataset.Contiguous, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Three stratified surveys over activity and collaboration profiles.
	activity := query.NewSSD("activity",
		query.Stratum{Cond: predicate.MustParse("ayp >= 3"), Freq: 40},
		query.Stratum{Cond: predicate.MustParse("ayp < 3"), Freq: 60},
	)
	collaboration := query.NewSSD("collaboration",
		query.Stratum{Cond: predicate.MustParse("cc >= 20"), Freq: 30},
		query.Stratum{Cond: predicate.MustParse("cc >= 5 and cc < 20"), Freq: 30},
		query.Stratum{Cond: predicate.MustParse("cc < 5"), Freq: 40},
	)
	seniority := query.NewSSD("seniority",
		query.Stratum{Cond: predicate.MustParse("fy < 1995"), Freq: 25},
		query.Stratum{Cond: predicate.MustParse("fy >= 1995"), Freq: 75},
	)

	// $4 per interview; sharing costs one interview; surveys 1 and 2
	// penalised against sharing.
	costs := query.PenaltyCosts{
		Interview: 4,
		Penalties: map[query.Tau]float64{query.NewTau(0, 1): 25},
	}
	mssd := query.NewMSSD(costs, activity, collaboration, seniority)

	cluster := mapreduce.NewCluster(5)
	res, err := cps.Run(cluster, mssd, pop.Schema(), splits, cps.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	mqeCost := res.Initial.Cost(costs)
	cpsCost := res.Answers.Cost(costs)
	fmt.Printf("independent selection (MR-MQE): $%.0f for %d interview slots\n",
		mqeCost, mssd.TotalFreq())
	fmt.Printf("optimised selection  (MR-CPS): $%.0f (%d unique individuals)\n\n",
		cpsCost, res.Answers.UniqueIndividuals())

	hist := res.Answers.SharingHistogram()
	for i := 1; i < len(hist); i++ {
		fmt.Printf("  individuals in exactly %d surveys: %d\n", i, hist[i])
	}

	// Verify the fatigue constraint held: nobody is in both survey 1 and 2
	// unless the LP was forced (tiny strata) — count them.
	both := 0
	for _, tau := range res.Answers.Assignments() {
		if tau.Contains(0) && tau.Contains(1) {
			both++
		}
	}
	fmt.Printf("\nindividuals shared between the penalised pair: %d\n", both)
	fmt.Printf("constraint program: %d stratum selections, %d variables, solved in %v\n",
		res.LP.Selections, res.LP.Vars, res.LP.SolveTime.Round(1e3))
	fmt.Printf("savings: %.0f%% of the independent-selection cost\n", 100*cpsCost/mqeCost)
}
