// Estimation: the paper's Example 1 in numbers. A market-research company
// wants the average activity level of a network's users. A rare subgroup
// (very prolific authors, <1% of the population) behaves completely
// differently, so a simple random sample either misses it or is dominated by
// its variance. A stratified design with a guaranteed quota for the subgroup
// gives the same precision from a much smaller sample — that is why the
// sample "can be as small as possible, yet representative".
//
// The example also shows Neyman allocation: using a pilot sample's
// per-stratum variances to split the interview budget optimally.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/estimate"
	"repro/internal/gen"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/sampling"
	"repro/internal/stratified"
)

func main() {
	pop := gen.Population(80000, 21)
	schema := pop.Schema()
	ndccIdx, _ := schema.Index("ndcc")

	// Ground truth for reference.
	var truth float64
	for i := 0; i < pop.Len(); i++ {
		truth += float64(pop.Tuple(i).Attrs[ndccIdx])
	}
	truth /= float64(pop.Len())
	fmt.Printf("population: %d authors; true mean coauthor links per author: %.2f\n\n", pop.Len(), truth)

	// Stratify by productivity; prolific authors are rare but dominate
	// the coauthor-link counts.
	template := []query.Stratum{
		{Cond: predicate.MustParse("nop >= 50")},
		{Cond: predicate.MustParse("nop >= 5 and nop < 50")},
		{Cond: predicate.MustParse("nop < 5")},
	}
	const budget = 120

	// Pilot pass: small proportional sample to learn per-stratum spreads.
	preds := make([]predicate.Pred, len(template))
	popSizes := make([]int64, len(template))
	for k, s := range template {
		preds[k] = predicate.MustCompile(s.Cond, schema)
		popSizes[k] = int64(pop.Count(preds[k]))
		fmt.Printf("stratum %d (%s): %d authors\n", k+1, s.Cond, popSizes[k])
	}
	pilotAlloc := estimate.Proportional(popSizes, 60)
	pilot, err := pilotAlloc.ToSSD("pilot", template)
	if err != nil {
		log.Fatal(err)
	}
	splits, err := dataset.Partition(pop, 8, dataset.Contiguous, nil)
	if err != nil {
		log.Fatal(err)
	}
	cluster := mapreduce.NewCluster(4)
	pilotAns, _, err := stratified.RunSQE(cluster, pilot, schema, splits, stratified.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	pilotSums, err := estimate.FromAnswer(pilotAns, pilot, pop, "ndcc")
	if err != nil {
		log.Fatal(err)
	}
	stdevs := make([]float64, len(pilotSums))
	for k, s := range pilotSums {
		stdevs[k] = stddev(s.Values)
	}
	fmt.Printf("\npilot stdevs per stratum: %.0f / %.0f / %.0f → Neyman allocation of %d interviews: %v\n",
		stdevs[0], stdevs[1], stdevs[2], budget, estimate.Neyman(popSizes, stdevs, budget))

	// Main survey with the Neyman allocation.
	mainSSD, err := estimate.Neyman(popSizes, stdevs, budget).ToSSD("main", template)
	if err != nil {
		log.Fatal(err)
	}
	ans, _, err := stratified.RunSQE(cluster, mainSSD, schema, splits, stratified.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	sums, err := estimate.FromAnswer(ans, mainSSD, pop, "ndcc")
	if err != nil {
		log.Fatal(err)
	}
	stratMean, err := estimate.StratifiedMean(sums)
	if err != nil {
		log.Fatal(err)
	}

	// Simple random sample of the same size, for comparison.
	rng := rand.New(rand.NewSource(3))
	srs := sampling.SRS(pop.Tuples(), budget, rng)
	values := make([]float64, len(srs))
	for i, t := range srs {
		values[i] = float64(t.Attrs[ndccIdx])
	}
	srsMean, err := estimate.SRSMean(values, int64(pop.Len()))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nstratified estimate (n=%d): %s\n", budget, stratMean)
	fmt.Printf("SRS estimate        (n=%d): %s\n", budget, srsMean)
	fmt.Printf("design effect (var ratio): %.2f — below 1 means the stratified design needs\n",
		estimate.DesignEffect(stratMean, srsMean))
	fmt.Println("proportionally fewer interviews for the same precision.")
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}
