// Coauthornet: build an actual coauthorship network (papers with author
// sets, preferential attachment) and survey it. Every attribute of the
// population — paper counts, career years, coauthor counts — is derived from
// the network structure, demonstrating the paper's point that properties may
// "relate to edges of the network".
//
// The example then shows why stratified sampling beats simple random
// sampling (the paper's Example 1): prolific authors are rare, so a simple
// random sample of practical size often misses them entirely, while the
// stratified design guarantees their representation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/sampling"
	"repro/internal/stratified"
)

func main() {
	// 30,000 authors, ~51,000 papers, DBLP-flavoured.
	net, err := graph.Generate(graph.DefaultParams(30000, 5))
	if err != nil {
		log.Fatal(err)
	}
	pop, err := net.Population(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coauthorship network: %d authors, %d papers\n", net.N, len(net.Papers))

	schema := pop.Schema()
	prolific := predicate.MustCompile(predicate.MustParse("nop >= 30"), schema)
	nProlific := pop.Count(prolific)
	fmt.Printf("prolific authors (nop >= 30): %d of %d (%.2f%%)\n\n",
		nProlific, pop.Len(), 100*float64(nProlific)/float64(pop.Len()))

	// Simple random sample of 50: how often does it contain NO prolific
	// author at all?
	rng := rand.New(rand.NewSource(9))
	misses := 0
	const runs = 200
	for i := 0; i < runs; i++ {
		srs := sampling.SRS(pop.Tuples(), 50, rng)
		found := false
		for i := range srs {
			if prolific(&srs[i]) {
				found = true
				break
			}
		}
		if !found {
			misses++
		}
	}
	fmt.Printf("simple random sample of 50: misses every prolific author in %d/%d runs\n",
		misses, runs)

	// The stratified design guarantees them a quota.
	q := query.NewSSD("productivity",
		query.Stratum{Cond: predicate.MustParse("nop >= 30"), Freq: 10},
		query.Stratum{Cond: predicate.MustParse("nop >= 5 and nop < 30"), Freq: 15},
		query.Stratum{Cond: predicate.MustParse("nop < 5"), Freq: 25},
	)
	if err := q.Validate(schema); err != nil {
		log.Fatal(err)
	}
	splits, err := dataset.Partition(pop, 6, dataset.Contiguous, nil)
	if err != nil {
		log.Fatal(err)
	}
	ans, _, err := stratified.RunSQE(mapreduce.NewCluster(3), q, schema, splits, stratified.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stratified sample of 50: %d prolific, %d mid, %d newcomers — every run\n\n",
		len(ans.Strata[0]), len(ans.Strata[1]), len(ans.Strata[2]))

	// Crawling the graph instead of sampling the dataset — what an external
	// crawler without dataset access must do — is biased toward hubs: BFS
	// and random walks oversample high-degree authors; Metropolis–Hastings
	// corrects it at the cost of slower mixing (see the related work the
	// paper cites: Kurant et al., "On the bias of BFS").
	adj := net.Adjacency()
	seed := 0
	for a := range adj {
		if len(adj[a]) > len(adj[seed]) {
			seed = a
		}
	}
	bfs, err := graph.BFSSample(adj, seed, 300, rng)
	if err != nil {
		log.Fatal(err)
	}
	mh, err := graph.MetropolisHastingsSample(adj, seed, 300, 500000, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean coauthor degree: population %.1f, BFS crawl %.1f (biased), MH walk %.1f\n\n",
		adj.MeanDegree(), graph.SampleMeanDegree(adj, bfs), graph.SampleMeanDegree(adj, mh))

	// Peek at the most collaborative sampled individual.
	ccIdx, _ := schema.Index("cc")
	var best dataset.Tuple
	for _, s := range ans.Strata {
		for _, t := range s {
			if best.Attrs == nil || t.Attrs[ccIdx] > best.Attrs[ccIdx] {
				best = t
			}
		}
	}
	fmt.Printf("most collaborative sampled author: %s\n", best)
}
