// Biasdemo: reproduces the bias argument of Section 4.2 of the paper.
//
// When machines hold very different numbers of stratum members (e.g. data is
// stored by region), the "obvious" distributed scheme — draw f_k individuals
// on each machine, then uniformly pick f_k of the candidates — over-selects
// individuals from small machines. The paper's example: a machine with 4 men
// and a machine with 8 men, select 2; naive merging gives machine-1 men a
// 1/4 inclusion probability and machine-2 men 1/8, while a correct sample
// gives everyone 2/12 = 1/6.
//
// This program measures inclusion frequencies of both schemes over many runs
// and shows MR-SQE's unified-sampler removes the bias.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/sampling"
	"repro/internal/stratified"
)

const (
	smallMachine = 4
	largeMachine = 8
	sampleSize   = 2
	runs         = 60000
)

func main() {
	schema := dataset.MustSchema(dataset.Field{Name: "gender", Min: 0, Max: 1})
	pop := dataset.NewRelation(schema)
	for i := 0; i < smallMachine+largeMachine; i++ {
		pop.MustAdd(dataset.Tuple{ID: int64(i), Attrs: []int64{1}})
	}
	all := pop.Tuples()
	splits := []dataset.Split{
		append(dataset.Split(nil), all[:smallMachine]...),
		append(dataset.Split(nil), all[smallMachine:]...),
	}

	fmt.Printf("population: %d men on a small machine, %d on a large one; sample %d\n\n",
		smallMachine, largeMachine, sampleSize)

	// Naive scheme: per-machine SRS, then uniform SRS of the union.
	rng := rand.New(rand.NewSource(1))
	naive := make([]int, pop.Len())
	for r := 0; r < runs; r++ {
		cand := append(
			sampling.SRS(all[:smallMachine], sampleSize, rng),
			sampling.SRS(all[smallMachine:], sampleSize, rng)...)
		for _, t := range sampling.SRS(cand, sampleSize, rng) {
			naive[t.ID]++
		}
	}

	// MR-SQE: combiner samples are weighted by their source-set size and
	// merged by the unified-sampler.
	q := query.NewSSD("men", query.Stratum{Cond: predicate.MustParse("gender = 1"), Freq: sampleSize})
	cluster := &mapreduce.Cluster{Slaves: 2, SlotsPerSlave: 1, Cost: mapreduce.ZeroCostModel()}
	correct := make([]int, pop.Len())
	for r := 0; r < runs; r++ {
		ans, _, err := stratified.RunSQE(cluster, q, schema, splits, stratified.Options{Seed: int64(r)})
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range ans.Strata[0] {
			correct[t.ID]++
		}
	}

	avg := func(counts []int, lo, hi int) float64 {
		sum := 0
		for _, c := range counts[lo:hi] {
			sum += c
		}
		return float64(sum) / float64(hi-lo) / runs
	}
	fmt.Println("inclusion probability      small machine   large machine   (want 1/6 ≈ 0.167 each)")
	fmt.Printf("naive merge:                    %.3f           %.3f    <- biased, as Section 4.2 predicts (1/4 vs 1/8)\n",
		avg(naive, 0, smallMachine), avg(naive, smallMachine, smallMachine+largeMachine))
	fmt.Printf("MR-SQE (unified-sampler):       %.3f           %.3f    <- unbiased\n",
		avg(correct, 0, smallMachine), avg(correct, smallMachine, smallMachine+largeMachine))
}
