package wire

import (
	"errors"
	"math"
	"testing"
)

func TestVarintRoundTrip(t *testing.T) {
	vals := []int64{0, 1, -1, 63, -64, 64, 1 << 20, -(1 << 20), math.MaxInt64, math.MinInt64}
	var b []byte
	for _, v := range vals {
		if got := len(AppendVarint(nil, v)); got != SizeVarint(v) {
			t.Errorf("SizeVarint(%d) = %d, encoded %d bytes", v, SizeVarint(v), got)
		}
		b = AppendVarint(b, v)
	}
	r := NewReader(b)
	for _, v := range vals {
		if got := r.Varint(); got != v {
			t.Errorf("Varint() = %d, want %d", got, v)
		}
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 1 << 14, 1 << 30, math.MaxUint64}
	var b []byte
	for _, v := range vals {
		if got := len(AppendUvarint(nil, v)); got != SizeUvarint(v) {
			t.Errorf("SizeUvarint(%d) = %d, encoded %d bytes", v, SizeUvarint(v), got)
		}
		b = AppendUvarint(b, v)
	}
	r := NewReader(b)
	for _, v := range vals {
		if got := r.Uvarint(); got != v {
			t.Errorf("Uvarint() = %d, want %d", got, v)
		}
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestStringBytesBoolRoundTrip(t *testing.T) {
	var b []byte
	b = AppendString(b, "")
	b = AppendString(b, "héllo")
	b = AppendBytes(b, nil)
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	r := NewReader(b)
	if s := r.String(); s != "" {
		t.Errorf("empty string decoded as %q", s)
	}
	if s := r.String(); s != "héllo" {
		t.Errorf("string decoded as %q", s)
	}
	if p := r.Bytes(); p != nil {
		t.Errorf("nil bytes decoded as %v", p)
	}
	if p := r.Bytes(); len(p) != 3 || p[0] != 1 || p[2] != 3 {
		t.Errorf("bytes decoded as %v", p)
	}
	if !r.Bool() || r.Bool() {
		t.Error("bool round trip failed")
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

// TestBytesZeroCopy locks the aliasing contract: Bytes returns a view into
// the source payload, not a copy.
func TestBytesZeroCopy(t *testing.T) {
	b := AppendBytes(nil, []byte{9, 9, 9})
	r := NewReader(b)
	v := r.Bytes()
	b[len(b)-1] = 42
	if v[2] != 42 {
		t.Error("Bytes() copied instead of aliasing the payload")
	}
}

func TestTruncatedAndCorrupt(t *testing.T) {
	cases := []struct {
		name string
		buf  []byte
		read func(*Reader)
		want error
	}{
		{"empty uvarint", nil, func(r *Reader) { r.Uvarint() }, ErrTruncated},
		{"unterminated uvarint", []byte{0x80}, func(r *Reader) { r.Uvarint() }, ErrTruncated},
		{"uvarint overflow", []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}, func(r *Reader) { r.Uvarint() }, ErrCorrupt},
		{"empty varint", nil, func(r *Reader) { r.Varint() }, ErrTruncated},
		{"empty byte", nil, func(r *Reader) { r.Byte() }, ErrTruncated},
		{"bad bool", []byte{7}, func(r *Reader) { r.Bool() }, ErrCorrupt},
		{"bytes length past end", []byte{5, 1, 2}, func(r *Reader) { r.Bytes() }, ErrCorrupt},
		{"huge count", []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F}, func(r *Reader) { r.Count(1) }, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(tc.buf)
			tc.read(r)
			err := r.Err()
			if err == nil {
				t.Fatal("no error")
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("error %v, want %v", err, tc.want)
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Errorf("error %T is not *DecodeError", err)
			}
			// Sticky: subsequent reads keep the first error and stay safe.
			r.Uvarint()
			r.Bytes()
			if !errors.Is(r.Err(), tc.want) {
				t.Error("error not sticky")
			}
		})
	}
}

func TestDoneTrailing(t *testing.T) {
	r := NewReader([]byte{1, 2})
	r.Byte()
	if err := r.Done(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Done with trailing bytes = %v, want ErrCorrupt", err)
	}
}

func TestBufferPool(t *testing.T) {
	b := GetBuffer()
	if len(b) != 0 {
		t.Fatal("pooled buffer not empty")
	}
	b = AppendString(b, "scratch")
	PutBuffer(b)
	b2 := GetBuffer()
	if len(b2) != 0 {
		t.Fatal("recycled buffer not reset")
	}
	PutBuffer(b2)
	PutBuffer(make([]byte, 0, maxPooledBuffer+1)) // dropped, not kept
}
