// Package wire is the hand-rolled binary codec used on the task hot path:
// append-style encoders over plain byte slices and a bounds-checked Reader
// with zero-copy views, replacing gob's per-frame reflection and type
// headers on the coordinator↔worker protocol and the shuffle data plane.
//
// The format is deliberately primitive: unsigned and zigzag varints for
// integers, length-delimited byte strings, and nothing self-describing —
// every payload's layout is fixed by the code on both ends and versioned by
// the frame protocol's negotiated wire version (see internal/worker). That
// is what buys the speed: no field names, no type descriptors, no interface
// dispatch, and decoding that can return sub-slice views into the frame
// buffer instead of copying payload bytes.
//
// Decoding never panics on hostile input. Every read is bounds-checked and
// the Reader carries a sticky *DecodeError wrapping ErrTruncated or
// ErrCorrupt, so a corrupted frame surfaces as one named error, not a crash
// — the worker pool treats it like any other connection failure.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"
)

// Sentinel causes of a DecodeError.
var (
	// ErrTruncated reports a payload that ended before a field's bytes.
	ErrTruncated = errors.New("truncated payload")
	// ErrCorrupt reports bytes that cannot be a valid encoding (varint
	// overflow, length prefix exceeding the payload, bad enum value).
	ErrCorrupt = errors.New("corrupt payload")
)

// DecodeError is the named error a Reader sticks on the first failed read.
// It wraps ErrTruncated or ErrCorrupt and records the payload offset.
type DecodeError struct {
	// Offset is the byte offset the failed read started at.
	Offset int
	// Err is ErrTruncated or ErrCorrupt.
	Err error
}

// Error renders the failure with its offset.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("wire: %v at offset %d", e.Err, e.Offset)
}

// Unwrap exposes the sentinel cause for errors.Is.
func (e *DecodeError) Unwrap() error { return e.Err }

// --- append-style encoders -------------------------------------------------

// AppendUvarint appends v in unsigned LEB128 form.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendVarint appends v in zigzag varint form (small magnitudes of either
// sign stay short).
func AppendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends a length-prefixed byte slice. A nil slice encodes
// exactly like an empty one; Reader.Bytes returns nil for both, which the
// protocol layer relies on (nil bucket entries are hole markers).
func AppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendBool appends a bool as one byte (0 or 1).
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// SizeUvarint is the encoded length of AppendUvarint(v).
func SizeUvarint(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// SizeVarint is the encoded length of AppendVarint(v).
func SizeVarint(v int64) int {
	return SizeUvarint(uint64(v)<<1 ^ uint64(v>>63)) // zigzag, as encoding/binary does
}

// --- decoding --------------------------------------------------------------

// Reader decodes a payload encoded with the Append functions. The first
// failed read sticks a *DecodeError; every later read returns zero values,
// so a decode function can run its full field sequence and check Err (or
// Done) once at the end.
type Reader struct {
	buf []byte
	off int
	err *DecodeError
}

// NewReader returns a Reader over payload. The Reader never writes to the
// payload but Bytes returns views into it, so the payload must not be
// recycled while any decoded view is alive.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Err returns the sticky decode error, nil while all reads succeeded.
func (r *Reader) Err() error {
	if r.err == nil {
		return nil
	}
	return r.err
}

// Remaining reports how many bytes are left.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Done returns the sticky error, or an ErrCorrupt-wrapping error when the
// payload has trailing bytes past the decoded value.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return &DecodeError{Offset: r.off, Err: fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf)-r.off)}
	}
	return nil
}

func (r *Reader) fail(cause error) {
	if r.err == nil {
		r.err = &DecodeError{Offset: r.off, Err: cause}
	}
}

// Uvarint reads one unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated)
		} else {
			r.fail(fmt.Errorf("%w: uvarint overflow", ErrCorrupt))
		}
		return 0
	}
	r.off += n
	return v
}

// Varint reads one zigzag varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated)
		} else {
			r.fail(fmt.Errorf("%w: varint overflow", ErrCorrupt))
		}
		return 0
	}
	r.off += n
	return v
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Bool reads one AppendBool byte; anything but 0 or 1 is corrupt.
func (r *Reader) Bool() bool {
	switch r.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		if r.err == nil {
			r.fail(fmt.Errorf("%w: invalid bool byte", ErrCorrupt))
		}
		return false
	}
}

// Bytes reads one length-prefixed byte slice as a view into the payload —
// no copy. A zero-length field decodes as nil. The length prefix is checked
// against the remaining payload before any slicing, so a hostile prefix can
// neither panic nor allocate.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail(fmt.Errorf("%w: %d-byte field exceeds %d remaining", ErrCorrupt, n, r.Remaining()))
		return nil
	}
	if n == 0 {
		return nil
	}
	v := r.buf[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return v
}

// String reads one length-prefixed string (this one copies — Go strings
// must own their bytes).
func (r *Reader) String() string { return string(r.Bytes()) }

// Count reads a length prefix for a slice about to be allocated and bounds
// it: a valid encoding spends at least min bytes per element, so any count
// beyond Remaining()/min is corrupt, not merely large. This keeps a hostile
// length prefix from turning into a giant make().
func (r *Reader) Count(min int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64(r.Remaining()/min) {
		r.fail(fmt.Errorf("%w: count %d exceeds remaining payload", ErrCorrupt, n))
		return 0
	}
	return int(n)
}

// --- pooled scratch buffers ------------------------------------------------

// maxPooledBuffer bounds what PutBuffer keeps: the occasional giant frame
// (a 10^5-tuple split) should not pin its buffer in the pool forever.
const maxPooledBuffer = 1 << 20

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuffer returns a zero-length scratch buffer from the pool. Append into
// it and hand it back with PutBuffer once the bytes have been consumed
// (written to a socket, copied out); never retain a view into it afterwards.
func GetBuffer() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// PutBuffer recycles a buffer obtained from GetBuffer (grown or not).
// Oversized buffers are dropped so steady-state pool memory stays bounded.
func PutBuffer(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuffer {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
