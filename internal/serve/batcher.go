package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/query"
	"repro/internal/stratified"
)

// The admission-control batcher. Queries that arrive while a batch is
// collecting are coalesced into a single engine pass over the resident
// population; the batch fires when its window elapses or it reaches the
// maximum size. Within a batch, requests with equal canonical form and seed
// attach to one entry (single flight): the pass answers the query once and
// every attached request receives the same answer.
//
// Window state machine (DESIGN.md §12):
//
//	idle --first query--> collecting(timer=window) --timeout--> executing
//	collecting --query--> collecting                (attach or add entry)
//	collecting --size==max--> executing             (early fire)
//	executing --done--> entries resolved; next query opens a fresh batch
//
// A window of zero degenerates to one-pass-per-query: each submission opens
// and immediately fires its own batch. That is the baseline the load
// generator compares against.
//
// Execution lowers the batch onto the paper's machinery: the distinct
// queries of a seed group run as one MR-MQE pass, and a group with exactly
// one distinct query runs as MR-SQE — the |Q|=1 degenerate of MR-MQE —
// which keeps its answer byte-identical to the one-shot CLI path
// ("strata sample" with matching population parameters and seed).
type batcher struct {
	window   time.Duration
	maxBatch int
	adaptive bool
	epoch    func() int64
	exec     *executor
	stats    *Stats
	seq      int64 // batch sequence, under mu; names batch runs "b<seq>"

	mu  sync.Mutex
	cur *batch
	wg  sync.WaitGroup // running passes, for graceful drain

	// Adaptive-window arrival tracking (under mu): an EWMA of inter-arrival
	// time plus the sample count it is built from. When the daemon is idle
	// (no batch executing) and history says arrivals are sparse relative to
	// the window, a batch-opening query fires immediately instead of paying
	// the full window for coalescing that history predicts will not happen.
	lastArrival time.Time
	arrivalEWMA time.Duration
	arrivals    int64
}

// batch is one collecting (then executing) admission window.
type batch struct {
	epoch   int64
	entries map[entryKey]*entry
	order   []entryKey // arrival order: determines MQE query indexes
	created time.Time
	timer   *time.Timer
	fired   bool
	// seq numbers the batch within the daemon; its passes trace under runs
	// "b<seq>.p<group>". trace/parent carry the trace identity of the request
	// that opened the batch, so the batch span hangs under that request in
	// the merged trace tree.
	seq    int64
	trace  string
	parent uint64
}

// runName is the batch's trace run id.
func (cur *batch) runName() string { return fmt.Sprintf("b%d", cur.seq) }

// spanID is the batch span's deterministic id.
func (cur *batch) spanID() uint64 {
	return mapreduce.SpanID(cur.trace, cur.runName(), "serve", "batch", "0", "0")
}

// entryKey dedups identical queries inside one batch. The epoch is a batch
// property, not part of the key: a batch is created under one epoch.
type entryKey struct {
	canon string
	seed  int64
}

// entry is one distinct query in a batch plus everyone waiting on it.
type entry struct {
	q        *query.SSD
	canon    string
	seed     int64
	attached int // number of requests riding this entry
	done     chan struct{}
	ans      *query.Answer
	err      error
	// Lifecycle timestamps for per-query latency attribution: when the batch
	// fired, and when the entry's engine pass started and finished. Written
	// before done closes, read only after — the channel close orders them.
	firedAt   time.Time
	passStart time.Time
	passEnd   time.Time
}

// executor runs one batch as engine passes over the resident data.
type executor struct {
	schema *dataset.Schema
	splits []dataset.Split
	bounds []splitBounds
	prune  bool
	// liveSplits, when set (live mode), supplies the current resident splits
	// under a read lock held for the pass; pruning is skipped because the
	// startup bounds go stale under mutation.
	liveSplits func() ([]dataset.Split, func())
	slaves     int
	pool       *clusterPool
	onMetrics  func(mapreduce.Metrics)
	cache      *resultCache
	stats      *Stats
	// sem bounds concurrently executing passes daemon-wide: seed groups of
	// one batch run in parallel under it, and overlapping batches pipeline
	// through it instead of queueing behind each other. inflight counts
	// batches that have fired but not finished — the adaptive window's
	// idleness signal.
	sem      chan struct{}
	inflight atomic.Int64
	// tracer, when enabled, receives batch/pass/demux spans and threads a
	// TraceContext into every pass cluster; base is the daemon start time all
	// serve span offsets are measured from.
	tracer mapreduce.Tracer
	base   time.Time
}

// traced reports whether this batch should emit spans.
func (x *executor) traced(cur *batch) bool {
	return x.tracer != nil && x.tracer.Enabled() && cur.trace != ""
}

func newBatcher(window time.Duration, maxBatch int, adaptive bool, epoch func() int64, exec *executor, stats *Stats) *batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	return &batcher{window: window, maxBatch: maxBatch, adaptive: adaptive, epoch: epoch, exec: exec, stats: stats}
}

// submit admits one query into the current batch (opening one if needed) and
// returns the entry to wait on. The caller has already consulted the cache.
// trace/traceSpan identify the submitting request; the request that opens a
// batch lends the batch its trace identity, so the whole batch — and every
// engine pass under it — traces under the opener.
func (b *batcher) submit(q *query.SSD, canon string, seed int64, trace string, traceSpan uint64) *entry {
	now := time.Now()
	b.mu.Lock()
	opened := false
	if b.cur == nil {
		b.openLocked()
		b.cur.trace, b.cur.parent = trace, traceSpan
		opened = true
	}
	cur := b.cur
	key := entryKey{canon: canon, seed: seed}
	e, ok := cur.entries[key]
	if ok {
		e.attached++
		b.stats.addSingleFlight()
	} else {
		e = &entry{q: q, canon: canon, seed: seed, attached: 1, done: make(chan struct{})}
		cur.entries[key] = e
		cur.order = append(cur.order, key)
	}
	fireNow := len(cur.entries) >= b.maxBatch || b.window <= 0
	if !fireNow && opened && b.idleFireLocked() {
		// Adaptive window: the daemon is idle and arrival history says the
		// next query is much further out than the window — waiting would
		// coalesce nothing, so answer this one immediately.
		b.stats.addAdaptiveFire()
		fireNow = true
	}
	if fireNow {
		b.fireLocked(cur)
	}
	// Arrival tracking for the adaptive window: EWMA (α=1/4) of inter-arrival
	// time across all submissions, cache hits excluded by the caller's flow.
	if !b.lastArrival.IsZero() {
		dt := now.Sub(b.lastArrival)
		if b.arrivals == 0 {
			b.arrivalEWMA = dt
		} else {
			b.arrivalEWMA = (3*b.arrivalEWMA + dt) / 4
		}
		b.arrivals++
	}
	b.lastArrival = now
	b.mu.Unlock()
	return e
}

// idleFireLocked reports whether a batch-opening query should skip the
// window: nothing is executing, and the observed inter-arrival EWMA (at
// least two samples) exceeds 4x the window, so the expected coalescing gain
// is nil. First-ever queries and bursty load keep the full window.
func (b *batcher) idleFireLocked() bool {
	return b.adaptive && b.window > 0 &&
		b.exec.inflight.Load() == 0 &&
		b.arrivals >= 2 && b.arrivalEWMA > 4*b.window
}

// openLocked starts a fresh collecting batch and arms its window timer.
func (b *batcher) openLocked() {
	b.seq++
	cur := &batch{
		epoch:   b.epoch(),
		entries: make(map[entryKey]*entry),
		created: time.Now(),
		seq:     b.seq,
	}
	b.cur = cur
	if b.window > 0 {
		cur.timer = time.AfterFunc(b.window, func() {
			b.mu.Lock()
			if b.cur == cur {
				b.fireLocked(cur)
			}
			b.mu.Unlock()
		})
	}
}

// fireLocked detaches the batch and runs it asynchronously.
func (b *batcher) fireLocked(cur *batch) {
	if cur.fired {
		return
	}
	cur.fired = true
	if cur.timer != nil {
		cur.timer.Stop()
	}
	firedAt := time.Now()
	for _, e := range cur.entries {
		e.firedAt = firedAt
	}
	if b.cur == cur {
		b.cur = nil
	}
	b.wg.Add(1)
	// inflight counts from fire to completion so the adaptive idle check
	// sees a batch that has detached but whose passes haven't started yet.
	b.exec.inflight.Add(1)
	go func() {
		defer b.wg.Done()
		defer b.exec.inflight.Add(-1)
		b.exec.run(cur)
		b.stats.observeWindow(time.Since(cur.created).Nanoseconds())
	}()
}

// flush fires the collecting batch, if any (used on drain).
func (b *batcher) flush() {
	b.mu.Lock()
	if b.cur != nil {
		b.fireLocked(b.cur)
	}
	b.mu.Unlock()
}

// drain flushes and waits for every running pass to finish, looping in case
// a straggler submission opened a fresh batch between the flush and the
// wait.
func (b *batcher) drain() {
	for {
		b.flush()
		b.wg.Wait()
		b.mu.Lock()
		empty := b.cur == nil
		b.mu.Unlock()
		if empty {
			return
		}
	}
}

// seedGroup is the slice of a batch sharing one sampling seed; a pass has a
// single job seed, so each group becomes its own pass.
type seedGroup struct {
	seed    int64
	entries []*entry
}

// run executes a batch: its entries are grouped by seed and each group
// becomes one engine pass, queries in arrival order. Passes run concurrently
// under the daemon-wide semaphore; each pass owns its seed and its cluster,
// so concurrency cannot reorder anything within a pass and answers stay
// byte-identical to serial execution (pinned by TestConcurrentPassesByteIdentical).
func (x *executor) run(cur *batch) {
	bySeed := make(map[int64]*seedGroup)
	var seeds []int64
	for _, key := range cur.order {
		g, ok := bySeed[key.seed]
		if !ok {
			g = &seedGroup{seed: key.seed}
			bySeed[key.seed] = g
			seeds = append(seeds, key.seed)
		}
		g.entries = append(g.entries, cur.entries[key])
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	if len(seeds) == 1 {
		x.boundedPass(bySeed[seeds[0]], cur, 0)
	} else {
		var wg sync.WaitGroup
		for i, s := range seeds {
			wg.Add(1)
			go func(g *seedGroup, idx int) {
				defer wg.Done()
				x.boundedPass(g, cur, idx)
			}(bySeed[s], i)
		}
		wg.Wait()
	}
	if x.traced(cur) {
		x.tracer.Emit(mapreduce.Span{
			Job: "serve", Phase: "batch",
			Trace: cur.trace, Run: cur.runName(),
			ID: cur.spanID(), Parent: cur.parent,
			Start:   cur.created.Sub(x.base),
			Wall:    time.Since(cur.created),
			Records: int64(len(cur.order)),
		})
	}
}

// boundedPass runs one pass under the daemon-wide pass semaphore.
func (x *executor) boundedPass(g *seedGroup, cur *batch, idx int) {
	x.sem <- struct{}{}
	defer func() { <-x.sem }()
	x.runPass(g, cur, idx)
}

// runPass answers one seed group with a single MapReduce pass. idx is the
// group's position within the batch, naming the pass run "b<seq>.p<idx>".
func (x *executor) runPass(g *seedGroup, cur *batch, idx int) {
	passStart := time.Now()
	queries := make([]*query.SSD, len(g.entries))
	requests := 0
	for i, e := range g.entries {
		queries[i] = e.q
		requests += e.attached
	}

	splits, pruned := x.splits, 0
	if x.liveSplits != nil {
		var release func()
		splits, release = x.liveSplits()
		defer release()
	} else if x.prune {
		if boxes, ok := queryBoxes(queries, x.schema); ok {
			splits, pruned = pruneSplits(x.splits, x.bounds, boxes, x.schema)
		}
	}

	c := x.pool.get()
	defer x.pool.put(c)
	traced := x.traced(cur)
	passRun := fmt.Sprintf("%s.p%d", cur.runName(), idx)
	var passSpan uint64
	if traced {
		// The pass's engine run traces under the pass span: the cluster
		// stamps its job/attempt/worker spans with this context, linking the
		// whole distributed execution into the request's tree. A cluster
		// factory that wires its own tracer (the CLI's) keeps it; otherwise
		// the daemon's tracer collects the engine spans too.
		passSpan = mapreduce.SpanID(cur.trace, passRun, "serve", "pass", "0", "0")
		c.TraceContext = &mapreduce.TraceContext{Trace: cur.trace, Run: passRun, Parent: passSpan}
		if c.Tracer == nil {
			c.Tracer = x.tracer
		}
	}
	opts := stratified.Options{Seed: g.seed}
	var (
		answers query.MultiAnswer
		met     mapreduce.Metrics
		err     error
	)
	if len(queries) == 1 {
		var ans *query.Answer
		ans, met, err = stratified.RunSQE(c, queries[0], x.schema, splits, opts)
		answers = query.MultiAnswer{ans}
	} else {
		answers, met, err = stratified.RunMQE(c, queries, x.schema, splits, opts)
	}
	passEnd := time.Now()
	if err != nil {
		err = fmt.Errorf("serve: pass failed: %w", err)
		x.stats.addError()
		for _, e := range g.entries {
			e.passStart, e.passEnd = passStart, passEnd
			e.err = err
			close(e.done)
		}
		return
	}
	if x.onMetrics != nil {
		x.onMetrics(met)
	}
	x.stats.addPass(len(queries), requests, pruned)
	for i, e := range g.entries {
		e.passStart, e.passEnd = passStart, passEnd
		e.ans = answers[i]
		x.cache.put(cacheKey{canon: e.canon, seed: e.seed, epoch: cur.epoch}, e.ans)
		close(e.done)
	}
	if traced {
		x.tracer.Emit(mapreduce.Span{
			Job: "serve", Phase: "demux",
			Trace: cur.trace, Run: passRun,
			ID:     mapreduce.SpanID(cur.trace, passRun, "serve", "demux", "0", "0"),
			Parent: passSpan,
			Start:  passEnd.Sub(x.base),
			Wall:   time.Since(passEnd),
			Out:    int64(len(queries)),
		})
		x.tracer.Emit(mapreduce.Span{
			Job: "serve", Phase: "pass",
			Trace: cur.trace, Run: passRun,
			ID: passSpan, Parent: cur.spanID(),
			Start:   passStart.Sub(x.base),
			Wall:    time.Since(passStart),
			Records: int64(len(queries)),
		})
	}
}
