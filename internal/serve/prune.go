package serve

import (
	"repro/internal/dataset"
	"repro/internal/predicate"
	"repro/internal/query"
)

// Stratum pre-filtering over the resident population. At load time the
// server computes, for every split, the bounding box of its tuples (per
// attribute min/max). Per pass, the union of all batched queries' stratum
// boxes (predicate.Boxes) is intersected against each split's bounds: a
// split whose bounding box overlaps no query box provably contains no tuple
// any stratum condition can match, so the pass can skip scanning it.
//
// Pruning is index-preserving: a pruned split is replaced by a nil slice in
// the splits vector rather than removed, so the engine still creates one
// (trivial) map task per original split and every surviving task keeps its
// task index — and with it its deterministic RNG seed. That is what makes a
// pruned pass byte-identical to an unpruned one: the skipped tasks would
// have emitted nothing (no map output, no combine draws), and the surviving
// tasks see the same seeds and the same tuples. The saving is the scan of
// the pruned tuples, which dominates map time for selective query sets.

// splitBounds is the bounding box of one split: one inclusive interval per
// schema field, indexed by field position. A nil entry means the split is
// empty (prunable against any query).
type splitBounds []predicate.Interval

// boundsOf computes per-split bounding boxes for the resident splits.
func boundsOf(splits []dataset.Split, schema *dataset.Schema) []splitBounds {
	out := make([]splitBounds, len(splits))
	for si, split := range splits {
		if len(split) == 0 {
			continue
		}
		b := make(splitBounds, schema.NumFields())
		for j := range b {
			b[j] = predicate.Interval{Lo: split[0].Attrs[j], Hi: split[0].Attrs[j]}
		}
		for _, t := range split[1:] {
			for j, v := range t.Attrs {
				if v < b[j].Lo {
					b[j].Lo = v
				}
				if v > b[j].Hi {
					b[j].Hi = v
				}
			}
		}
		out[si] = b
	}
	return out
}

// queryBoxes returns the union of every stratum box of every query in the
// pass. An error (e.g. DNF blow-up) disables pruning for the pass rather
// than failing it.
func queryBoxes(queries []*query.SSD, schema *dataset.Schema) ([]predicate.Box, bool) {
	var all []predicate.Box
	for _, q := range queries {
		for _, s := range q.Strata {
			boxes, err := predicate.Boxes(s.Cond, schema)
			if err != nil {
				return nil, false
			}
			all = append(all, boxes...)
		}
	}
	return all, true
}

// overlapsBounds reports whether the box shares at least one point with the
// split's bounding box. Attributes absent from the box are unconstrained.
func overlapsBounds(b predicate.Box, bounds splitBounds, schema *dataset.Schema) bool {
	for attr, iv := range b {
		idx, ok := schema.Index(attr)
		if !ok {
			return true // unknown attribute: be conservative, do not prune
		}
		if iv.Intersect(bounds[idx]).Empty() {
			return false
		}
	}
	return true
}

// pruneSplits returns a copy of splits with every provably-irrelevant split
// replaced by nil, plus the number of splits pruned. The caller must pass
// bounds aligned with splits (from boundsOf).
func pruneSplits(splits []dataset.Split, bounds []splitBounds, boxes []predicate.Box, schema *dataset.Schema) ([]dataset.Split, int) {
	out := make([]dataset.Split, len(splits))
	pruned := 0
	for i, split := range splits {
		if len(split) == 0 {
			pruned++
			continue
		}
		relevant := false
		for _, b := range boxes {
			if overlapsBounds(b, bounds[i], schema) {
				relevant = true
				break
			}
		}
		if relevant {
			out[i] = split
		} else {
			pruned++
		}
	}
	return out, pruned
}
