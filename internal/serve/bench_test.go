package serve

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/query"
)

// BenchmarkServePass measures one warm 8-query MQE batch over a resident
// 100k population, end to end through the batcher: submit, fire, pooled
// cluster, engine pass, demux. Its allocs/op is gated by
// scripts/bench_regress.sh — this is the daemon's hot loop, and the pooled
// pass state plus the batch-mapper fast path are what keep it flat.
func BenchmarkServePass(b *testing.B) {
	pop := gen.Population(100000, 1)
	s, err := NewServer(Config{
		Population: pop, Slaves: 4, Layout: dataset.Contiguous,
		PartitionSeed: 1, Window: 30 * time.Second, MaxBatch: 64,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		s.BeginDrain()
		s.Drain()
	}()

	type qc struct {
		q     *query.SSD
		canon string
	}
	queries := make([]qc, 8)
	for i := range queries {
		t := 50 + 10*i
		spec := fmt.Sprintf("nop >= %d : 5 ; nop < %d : 10", t, t)
		q, err := query.ParseSSD("Q", spec)
		if err != nil {
			b.Fatal(err)
		}
		canon, err := canonicalSSD(q, pop.Schema())
		if err != nil {
			b.Fatal(err)
		}
		queries[i] = qc{q: q, canon: canon}
	}

	// One warm-up batch so pooled state (cluster, executor scratch) exists
	// before measurement, like a daemon that has answered at least once.
	runBatch := func() {
		entries := make([]*entry, len(queries))
		for i, q := range queries {
			entries[i] = s.batcher.submit(q.q, q.canon, 1, "", 0)
		}
		s.batcher.flush()
		for _, e := range entries {
			<-e.done
			if e.err != nil {
				b.Fatal(e.err)
			}
		}
	}
	runBatch()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBatch()
	}
}
