package serve

import (
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/live"
	"repro/internal/mapreduce"
	"repro/internal/query"
)

// Config configures a sampling daemon.
type Config struct {
	// Population is the resident relation queries sample from. Required.
	Population *dataset.Relation
	// Slaves is the simulated cluster width per pass (as in the CLI's
	// -slaves). Defaults to 4.
	Slaves int
	// Splits is the number of partition splits; 0 means
	// dataset.DefaultSplits(Slaves) — max(2*Slaves, 2*GOMAXPROCS), the same
	// default "strata sample" uses, so lone-query answers stay byte-identical
	// between the daemon and the one-shot CLI. A resident population is
	// re-cut to this count at load regardless of how the input was laid out,
	// so every pass has enough map tasks to saturate the machine.
	Splits int
	// Layout partitions the population across splits. The zero value is
	// dataset.RoundRobin; "strata serve" passes its -layout flag (default
	// contiguous, matching "strata sample").
	Layout dataset.Partitioning
	// PartitionSeed seeds layout randomization (shuffled layouts) — use the
	// same value as the CLI's -seed to reproduce its partitioning.
	PartitionSeed int64

	// Window is the batching window: queries arriving within it coalesce
	// into one pass. Zero runs one pass per query (no batching).
	Window time.Duration
	// MaxBatch fires a batch early once it holds this many distinct
	// queries. Defaults to 64.
	MaxBatch int
	// MaxPasses bounds concurrently executing engine passes daemon-wide:
	// seed groups of one batch run in parallel under it and overlapping
	// batches pipeline through it. 0 means 2*GOMAXPROCS. Concurrency never
	// changes answers — each pass owns its seed, cluster and output slots.
	MaxPasses int
	// AdaptiveWindow lets a query that opens a batch while the daemon is
	// idle fire immediately when arrival history (inter-arrival EWMA > 4x
	// window, at least two samples) says waiting out the window would
	// coalesce nothing. Bursty load still gets full windows; lone queries
	// stop paying the window latency tax.
	AdaptiveWindow bool
	// CacheSize bounds the result cache (answers). Defaults to 1024.
	CacheSize int
	// QuotaQPS and QuotaBurst configure the per-tenant token bucket
	// (tokens/second and bucket capacity). QuotaQPS <= 0 disables quotas.
	QuotaQPS   float64
	QuotaBurst int
	// NoPrune disables box-decomposition split pre-filtering.
	NoPrune bool

	// Live makes the population mutable: POST /v1/mutate ingests a mutation
	// log, POST /v1/subscribe registers standing queries with push triggers,
	// and a /v1/sample matching a registered query answers warm from its
	// incrementally maintained reservoirs. Live mode disables split pruning
	// (the startup bounds go stale under mutation) and keys the ad-hoc result
	// cache on the mutation sequence, so any mutation invalidates it.
	Live bool
	// StalenessBound caps uncompensated deletions per stratum reservoir
	// before a repair rescan; 0 takes the live subsystem's default (64).
	// Only meaningful with Live.
	StalenessBound int

	// NewCluster builds the per-pass cluster; the CLI injects its
	// observability-wired factory here. Defaults to mapreduce.NewCluster.
	NewCluster func(slaves int) *mapreduce.Cluster
	// OnMetrics, when set, receives each pass's engine metrics (the CLI
	// routes them to the global /metrics accumulator).
	OnMetrics func(mapreduce.Metrics)
	// Tracer, when set and enabled, receives the daemon's own spans —
	// request, window, cache, batch, pass, demux — and threads a
	// TraceContext into every pass cluster so the engine's distributed spans
	// join the same trace. Nil (the default) keeps the request path free of
	// span work; trace ids are still minted and echoed so clients can
	// correlate requests either way.
	Tracer mapreduce.Tracer
}

// Server is the resident sampling daemon: it keeps a partitioned population
// in memory and answers SSD sampling queries over HTTP, coalescing
// concurrent queries into shared MapReduce passes.
//
// Endpoints:
//
//	POST /v1/sample    submit a query ({"query": "cond : freq ; ...",
//	                   "seed": 1}); blocks for the answer unless "wait": false,
//	                   which returns {"id": ...} for later polling
//	GET  /v1/result    poll an async answer (?id=...)
//	GET  /v1/stats     service counters as JSON
//	POST /v1/epoch     bump the population epoch; returns the new epoch and
//	                   how many cached answers the bump purged
//	POST /v1/mutate    (live mode) apply a mutation-log batch
//	POST /v1/subscribe (live mode) register a standing query with a push
//	                   trigger; DELETE with ?id= unsubscribes
//	GET  /v1/stream    (live mode) SSE stream of a subscription's pushes
//	GET  /v1/next      (live mode) long-poll one push (?id=&after=)
//	GET  /metrics      engine + service metrics, Prometheus text format
//	GET  /healthz      liveness: population size, epoch, draining flag
type Server struct {
	cfg     Config
	schema  *dataset.Schema
	splits  []dataset.Split
	stats   *Stats
	cache   *resultCache
	quotas  *quotaTable
	batcher *batcher
	mux     *http.ServeMux

	// Live-mode state: the mutable population and the subscription hub. Both
	// are nil unless Config.Live was set.
	lp  *live.Population
	hub *subHub

	epoch    atomic.Int64
	draining atomic.Bool
	started  time.Time

	metMu sync.Mutex
	met   mapreduce.Metrics

	tickets *ticketStore
}

// NewServer partitions the population, indexes split bounds for pruning, and
// returns a ready daemon. It does not listen; mount Handler() on an
// http.Server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Population == nil {
		return nil, fmt.Errorf("serve: Config.Population is required")
	}
	if cfg.Slaves <= 0 {
		cfg.Slaves = 4
	}
	if cfg.Splits <= 0 {
		cfg.Splits = dataset.DefaultSplits(cfg.Slaves)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxPasses <= 0 {
		cfg.MaxPasses = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 1024
	}
	if cfg.NewCluster == nil {
		cfg.NewCluster = mapreduce.NewCluster
	}

	// Partition seeding mirrors "strata sample" (rand.New(rand.NewSource(seed)))
	// so a daemon started with the same parameters partitions identically and
	// singleton-pass answers match the one-shot CLI byte for byte.
	splits, err := dataset.Partition(cfg.Population, cfg.Splits, cfg.Layout, rand.New(rand.NewSource(cfg.PartitionSeed)))
	if err != nil {
		return nil, fmt.Errorf("serve: partitioning population: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		schema:  cfg.Population.Schema(),
		splits:  splits,
		stats:   newStats(),
		cache:   newResultCache(cfg.CacheSize),
		tickets: newTicketStore(),
		started: time.Now(),
	}
	if cfg.QuotaQPS > 0 {
		s.quotas = newQuotaTable(cfg.QuotaQPS, cfg.QuotaBurst)
	}
	s.epoch.Store(1)
	exec := &executor{
		schema:    s.schema,
		splits:    splits,
		bounds:    boundsOf(splits, s.schema),
		prune:     !cfg.NoPrune,
		slaves:    cfg.Slaves,
		pool:      newClusterPool(cfg.Slaves, cfg.NewCluster),
		onMetrics: s.recordMetrics,
		cache:     s.cache,
		stats:     s.stats,
		tracer:    cfg.Tracer,
		base:      s.started,
		sem:       make(chan struct{}, cfg.MaxPasses),
	}
	if cfg.Live {
		lp, err := live.NewPopulation(s.schema, splits, live.Config{StalenessBound: cfg.StalenessBound})
		if err != nil {
			return nil, fmt.Errorf("serve: live population: %w", err)
		}
		s.lp = lp
		s.hub = newSubHub(s)
		// Passes read the splits under the population's lock; startup bounds
		// are stale the moment anything mutates, so pruning is off.
		exec.liveSplits = lp.AcquireSplits
		exec.prune = false
	}
	s.batcher = newBatcher(cfg.Window, cfg.MaxBatch, cfg.AdaptiveWindow, s.effectiveEpoch, exec, s.stats)

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sample", s.handleSample)
	mux.HandleFunc("/v1/result", s.handleResult)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/epoch", s.handleEpoch)
	mux.HandleFunc("/v1/mutate", s.handleMutate)
	mux.HandleFunc("/v1/subscribe", s.handleSubscribe)
	mux.HandleFunc("/v1/stream", s.handleStream)
	mux.HandleFunc("/v1/next", s.handleNext)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux = mux
	return s, nil
}

// effectiveEpoch is the cache epoch ad-hoc answers are keyed on: the
// administrative epoch plus, in live mode, the mutation sequence. Both terms
// are monotonic, so the sum is monotonic — any mutation moves every future
// answer to a fresh key, invalidating cached ad-hoc results without touching
// the warm standing-query path (which never uses this cache).
func (s *Server) effectiveEpoch() int64 {
	e := s.epoch.Load()
	if s.lp != nil {
		e += s.lp.Seq()
	}
	return e
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats exposes the service counters (for tests and the load generator). In
// live mode the snapshot carries the live subsystem's own counters too.
func (s *Server) Stats() Snapshot {
	snap := s.stats.snapshot()
	if s.lp != nil {
		ls := s.lp.Stats()
		snap.Live = &ls
	}
	return snap
}

// Epoch returns the current population epoch.
func (s *Server) Epoch() int64 { return s.epoch.Load() }

// BumpEpoch advances the population epoch and purges the result cache; every
// answer computed from now on carries the new epoch. It models an
// administrative invalidation boundary (in live mode, per-mutation
// invalidation happens automatically through effectiveEpoch).
func (s *Server) BumpEpoch() int64 {
	e, _ := s.bumpEpoch()
	return e
}

// bumpEpoch advances the epoch and reports how many cached answers the purge
// dropped, recording both in the stats.
func (s *Server) bumpEpoch() (int64, int) {
	e := s.epoch.Add(1)
	n := s.cache.purge()
	s.stats.addCachePurge(n)
	return e, n
}

// BeginDrain makes every subsequent submission fail with 503, fires the
// collecting batch immediately so blocked requests resolve fast, and closes
// every subscription stream.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.batcher.flush()
	if s.hub != nil {
		s.hub.close()
	}
}

// Drain waits for every in-flight pass to finish. Call after BeginDrain and
// after the HTTP server stopped accepting connections.
func (s *Server) Drain() { s.batcher.drain() }

// recordMetrics accumulates pass metrics for /metrics and forwards them to
// the configured sink.
func (s *Server) recordMetrics(m mapreduce.Metrics) {
	s.metMu.Lock()
	s.met.Add(m)
	s.metMu.Unlock()
	if s.cfg.OnMetrics != nil {
		s.cfg.OnMetrics(m)
	}
}

// sampleRequest is the JSON body of POST /v1/sample. The query can be given
// either as the CLI text form ("query") or as structured strata; "seed"
// defaults to 1, matching "strata sample".
type sampleRequest struct {
	Name   string `json:"name,omitempty"`
	Query  string `json:"query,omitempty"`
	Strata []struct {
		Cond string `json:"cond"`
		Freq int    `json:"freq"`
	} `json:"strata,omitempty"`
	Seed    *int64 `json:"seed,omitempty"`
	Wait    *bool  `json:"wait,omitempty"`
	NoCache bool   `json:"nocache,omitempty"`
}

// stratumResult is one stratum of an answer.
type stratumResult struct {
	Stratum     int      `json:"stratum"` // 1-based, like the CLI output
	Cond        string   `json:"cond"`
	Freq        int      `json:"freq"`
	Count       int      `json:"count"`
	Individuals []string `json:"individuals"`
}

// sampleResponse is the JSON answer of POST /v1/sample and GET /v1/result.
// Live/Version/LiveMeta appear only on answers served warm from a standing
// query's reservoirs.
type sampleResponse struct {
	Name      string             `json:"name"`
	Seed      int64              `json:"seed"`
	Epoch     int64              `json:"epoch"`
	Cached    bool               `json:"cached"`
	Live      bool               `json:"live,omitempty"`
	Version   int64              `json:"version,omitempty"`
	Trace     string             `json:"trace,omitempty"`
	Strata    []stratumResult    `json:"strata"`
	LiveMeta  []live.StratumMeta `json:"live_meta,omitempty"`
	ElapsedUS int64              `json:"elapsed_us"`
}

// newTraceID mints a random 64-bit trace id in hex. Collisions across a
// daemon's lifetime are astronomically unlikely at any realistic query rate.
func newTraceID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return "t-0" // never in practice; keeps the request path infallible
	}
	return hex.EncodeToString(b[:])
}

// requestSpanID is the root span id of one request's trace.
func requestSpanID(trace string) uint64 {
	return mapreduce.SpanID(trace, "req", "serve", "request", "0", "0")
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req sampleRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	q, err := s.buildQuery(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tenant := r.Header.Get("X-Strata-Tenant")
	if s.quotas != nil && !s.quotas.allow(tenant) {
		s.stats.addRejected(tenant)
		httpError(w, http.StatusTooManyRequests, "tenant %q over quota", tenant)
		return
	}
	seed := int64(1)
	if req.Seed != nil {
		seed = *req.Seed
	}
	canon, err := canonicalSSD(q, s.schema)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.stats.addQuery()
	start := time.Now()
	epoch := s.effectiveEpoch()

	// Every request gets a trace id — the client's own (X-Strata-Trace) or a
	// fresh one — echoed in the response header and body so a caller can
	// always correlate an answer with the daemon's span file.
	trace := r.Header.Get("X-Strata-Trace")
	if trace == "" {
		trace = newTraceID()
	}
	w.Header().Set("X-Strata-Trace", trace)
	reqSpan := requestSpanID(trace)

	// A query matching a registered standing query answers warm from its
	// incrementally maintained reservoirs: no pass, no cache, always current.
	if s.lp != nil {
		if ans, metas, ver, ok := s.lp.Snapshot(liveKey(canon, seed)); ok {
			s.stats.addLiveHit()
			s.respondLive(w, q, seed, epoch, trace, ans, metas, ver, start)
			s.emitRequestTrace(trace, reqSpan, start, 0, nil)
			return
		}
	}

	var cacheDur time.Duration
	if !req.NoCache {
		t0 := time.Now()
		ans, ok := s.cache.get(cacheKey{canon: canon, seed: seed, epoch: epoch})
		cacheDur = time.Since(t0)
		if ok {
			s.stats.addCacheHit()
			s.respond(w, q, seed, epoch, trace, ans, true, start)
			s.emitRequestTrace(trace, reqSpan, start, cacheDur, nil)
			return
		}
		s.stats.addCacheMiss()
	}

	e := s.batcher.submit(q, canon, seed, trace, reqSpan)
	if req.Wait != nil && !*req.Wait {
		id, err := s.tickets.add(&ticket{entry: e, q: q, seed: seed, epoch: epoch, start: start, trace: trace})
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": id, "status": "pending", "trace": trace})
		return
	}
	<-e.done
	if e.err != nil {
		httpError(w, http.StatusInternalServerError, "%v", e.err)
		return
	}
	s.stats.observeAttribution(e.firedAt.Sub(start), e.passStart.Sub(e.firedAt), e.passEnd.Sub(e.passStart))
	s.respond(w, q, seed, epoch, trace, e.ans, false, start)
	s.emitRequestTrace(trace, reqSpan, start, cacheDur, e)
}

// emitRequestTrace emits the request-level spans once the answer went out:
// the request root span, its cache-lookup child, and (for requests that rode
// a batch) the window child covering admission-to-fire. Batch, pass and
// engine spans are emitted by the batcher's executor under the same trace.
func (s *Server) emitRequestTrace(trace string, reqSpan uint64, start time.Time, cacheDur time.Duration, e *entry) {
	tr := s.cfg.Tracer
	if tr == nil || !tr.Enabled() || trace == "" {
		return
	}
	startOff := start.Sub(s.started)
	if cacheDur > 0 {
		tr.Emit(mapreduce.Span{
			Job: "serve", Phase: "cache", Trace: trace, Run: "req",
			ID:     mapreduce.SpanID(trace, "req", "serve", "cache", "0", "0"),
			Parent: reqSpan, Start: startOff, Wall: cacheDur,
		})
	}
	if e != nil && !e.firedAt.IsZero() {
		tr.Emit(mapreduce.Span{
			Job: "serve", Phase: "window", Trace: trace, Run: "req",
			ID:     mapreduce.SpanID(trace, "req", "serve", "window", "0", "0"),
			Parent: reqSpan, Start: startOff, Wall: e.firedAt.Sub(start),
		})
	}
	tr.Emit(mapreduce.Span{
		Job: "serve", Phase: "request", Trace: trace, Run: "req",
		ID: reqSpan, Start: startOff, Wall: time.Since(start),
	})
}

// buildQuery assembles and validates the SSD from either request form.
func (s *Server) buildQuery(req *sampleRequest) (*query.SSD, error) {
	name := req.Name
	if name == "" {
		name = "Q"
	}
	var q *query.SSD
	switch {
	case req.Query != "" && len(req.Strata) > 0:
		return nil, fmt.Errorf(`give either "query" or "strata", not both`)
	case req.Query != "":
		var err error
		q, err = query.ParseSSD(name, req.Query)
		if err != nil {
			return nil, err
		}
	case len(req.Strata) > 0:
		spec, err := json.Marshal(map[string]any{"name": name, "strata": req.Strata})
		if err != nil {
			return nil, err
		}
		q = new(query.SSD)
		if err := json.Unmarshal(spec, q); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf(`missing query: set "query" (text form) or "strata"`)
	}
	if err := q.Validate(s.schema); err != nil {
		return nil, err
	}
	return q, nil
}

func (s *Server) respond(w http.ResponseWriter, q *query.SSD, seed, epoch int64, trace string, ans *query.Answer, cached bool, start time.Time) {
	s.writeResponse(w, buildSampleResponse(q, seed, epoch, trace, ans, cached, start))
}

// respondLive answers from a standing query's warm reservoirs, attaching the
// query version and per-stratum maintenance metadata.
func (s *Server) respondLive(w http.ResponseWriter, q *query.SSD, seed, epoch int64, trace string, ans *query.Answer, metas []live.StratumMeta, version int64, start time.Time) {
	resp := buildSampleResponse(q, seed, epoch, trace, ans, false, start)
	resp.Live = true
	resp.Version = version
	resp.LiveMeta = metas
	s.writeResponse(w, resp)
}

func buildSampleResponse(q *query.SSD, seed, epoch int64, trace string, ans *query.Answer, cached bool, start time.Time) *sampleResponse {
	resp := &sampleResponse{
		Name: q.Name, Seed: seed, Epoch: epoch, Cached: cached, Trace: trace,
		Strata:    renderStrata(q, ans),
		ElapsedUS: time.Since(start).Microseconds(),
	}
	return resp
}

// renderStrata renders an answer in the response's stratum shape (shared with
// subscription push events).
func renderStrata(q *query.SSD, ans *query.Answer) []stratumResult {
	out := make([]stratumResult, len(q.Strata))
	for k, st := range q.Strata {
		individuals := make([]string, len(ans.Strata[k]))
		for i, t := range ans.Strata[k] {
			individuals[i] = t.String()
		}
		out[k] = stratumResult{
			Stratum: k + 1, Cond: st.Cond.String(), Freq: st.Freq,
			Count: len(individuals), Individuals: individuals,
		}
	}
	return out
}

func (s *Server) writeResponse(w http.ResponseWriter, resp *sampleResponse) {
	w.Header().Set("Content-Type", "application/json")
	t0 := time.Now()
	json.NewEncoder(w).Encode(resp)
	// Encode-and-write time is the "wire" share of the answer's latency.
	s.stats.observeWire(time.Since(t0))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		httpError(w, http.StatusBadRequest, "missing id")
		return
	}
	t, ok := s.tickets.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown or already-collected id %q", id)
		return
	}
	select {
	case <-t.entry.done:
	default:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": id, "status": "pending"})
		return
	}
	s.tickets.remove(id)
	w.Header().Set("X-Strata-Trace", t.trace)
	if t.entry.err != nil {
		httpError(w, http.StatusInternalServerError, "%v", t.entry.err)
		return
	}
	e := t.entry
	s.stats.observeAttribution(e.firedAt.Sub(t.start), e.passStart.Sub(e.firedAt), e.passEnd.Sub(e.passStart))
	s.respond(w, t.q, t.seed, t.epoch, t.trace, e.ans, false, t.start)
	// The async request span closes at collection time: its Wall covers
	// submission through pickup, which is what the client experienced.
	s.emitRequestTrace(t.trace, requestSpanID(t.trace), t.start, 0, e)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Stats()); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// In live mode an epoch bump doubles as split compaction: round-robin
	// inserts and swap-removes drift the resident splits unbalanced, so re-cut
	// them into even shards before bumping. Rebalance first, bump second — the
	// bump purges the answer cache, which must cover the post-rebalance
	// boundaries (a re-cut changes per-split reservoir draws).
	var rebalanced int64
	if s.lp != nil {
		rebalanced = int64(s.lp.Rebalance(s.cfg.Splits))
	}
	e, purged := s.bumpEpoch()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int64{"epoch": e, "purged": int64(purged), "rebalanced": rebalanced})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metMu.Lock()
	var m mapreduce.Metrics
	m.Add(s.met)
	s.metMu.Unlock()
	m.Job = "serve"
	if err := m.WritePrometheus(w); err != nil {
		return
	}
	if err := s.stats.WritePrometheus(w); err != nil {
		return
	}
	if s.lp != nil {
		if err := s.lp.WritePrometheus(w); err != nil {
			return
		}
	}
	WriteBuildInfo(w, s.started)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{
		"status":     "ok",
		"population": s.cfg.Population.Len(),
		"splits":     len(s.splits),
		"epoch":      s.epoch.Load(),
		"draining":   s.draining.Load(),
	}
	if s.lp != nil {
		body["live"] = true
		body["population"] = s.lp.Len()
		body["mutation_seq"] = s.lp.Seq()
		body["staleness_bound"] = s.lp.StalenessBound()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// ticketStore holds async submissions awaiting collection. Tickets are
// deleted on first successful read; uncollected tickets expire after
// ticketTTL. The store caps outstanding tickets so an abandoning client
// cannot grow it without bound.
type ticketStore struct {
	mu      sync.Mutex
	byID    map[string]*ticket
	queue   []ticketAge // insertion order, for expiry
	maxSize int
}

type ticket struct {
	entry *entry
	q     *query.SSD
	seed  int64
	epoch int64
	start time.Time
	trace string
}

type ticketAge struct {
	id      string
	created time.Time
}

const ticketTTL = 10 * time.Minute

func newTicketStore() *ticketStore {
	return &ticketStore{byID: make(map[string]*ticket), maxSize: 4096}
}

func (ts *ticketStore) add(t *ticket) (string, error) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	now := time.Now()
	for len(ts.queue) > 0 && now.Sub(ts.queue[0].created) > ticketTTL {
		delete(ts.byID, ts.queue[0].id)
		ts.queue = ts.queue[1:]
	}
	if len(ts.byID) >= ts.maxSize {
		return "", fmt.Errorf("too many outstanding async results (%d)", len(ts.byID))
	}
	buf := make([]byte, 12)
	if _, err := cryptorand.Read(buf); err != nil {
		return "", err
	}
	id := hex.EncodeToString(buf)
	ts.byID[id] = t
	ts.queue = append(ts.queue, ticketAge{id: id, created: now})
	return id, nil
}

func (ts *ticketStore) get(id string) (*ticket, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.byID[id]
	return t, ok
}

func (ts *ticketStore) remove(id string) {
	ts.mu.Lock()
	delete(ts.byID, id)
	ts.mu.Unlock()
}
