package serve

import (
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/query"
)

// Config configures a sampling daemon.
type Config struct {
	// Population is the resident relation queries sample from. Required.
	Population *dataset.Relation
	// Slaves is the simulated cluster width per pass (as in the CLI's
	// -slaves). Defaults to 4.
	Slaves int
	// Splits is the number of partition splits; 0 means Slaves*2, matching
	// "strata sample".
	Splits int
	// Layout partitions the population across splits. The zero value is
	// dataset.RoundRobin; "strata serve" passes its -layout flag (default
	// contiguous, matching "strata sample").
	Layout dataset.Partitioning
	// PartitionSeed seeds layout randomization (shuffled layouts) — use the
	// same value as the CLI's -seed to reproduce its partitioning.
	PartitionSeed int64

	// Window is the batching window: queries arriving within it coalesce
	// into one pass. Zero runs one pass per query (no batching).
	Window time.Duration
	// MaxBatch fires a batch early once it holds this many distinct
	// queries. Defaults to 64.
	MaxBatch int
	// CacheSize bounds the result cache (answers). Defaults to 1024.
	CacheSize int
	// QuotaQPS and QuotaBurst configure the per-tenant token bucket
	// (tokens/second and bucket capacity). QuotaQPS <= 0 disables quotas.
	QuotaQPS   float64
	QuotaBurst int
	// NoPrune disables box-decomposition split pre-filtering.
	NoPrune bool

	// NewCluster builds the per-pass cluster; the CLI injects its
	// observability-wired factory here. Defaults to mapreduce.NewCluster.
	NewCluster func(slaves int) *mapreduce.Cluster
	// OnMetrics, when set, receives each pass's engine metrics (the CLI
	// routes them to the global /metrics accumulator).
	OnMetrics func(mapreduce.Metrics)
	// Tracer, when set and enabled, receives the daemon's own spans —
	// request, window, cache, batch, pass, demux — and threads a
	// TraceContext into every pass cluster so the engine's distributed spans
	// join the same trace. Nil (the default) keeps the request path free of
	// span work; trace ids are still minted and echoed so clients can
	// correlate requests either way.
	Tracer mapreduce.Tracer
}

// Server is the resident sampling daemon: it keeps a partitioned population
// in memory and answers SSD sampling queries over HTTP, coalescing
// concurrent queries into shared MapReduce passes.
//
// Endpoints:
//
//	POST /v1/sample  submit a query ({"query": "cond : freq ; ...",
//	                 "seed": 1}); blocks for the answer unless "wait": false,
//	                 which returns {"id": ...} for later polling
//	GET  /v1/result  poll an async answer (?id=...)
//	GET  /v1/stats   service counters as JSON
//	POST /v1/epoch   bump the population epoch (invalidates the cache)
//	GET  /metrics    engine + service metrics, Prometheus text format
//	GET  /healthz    liveness: population size, epoch, draining flag
type Server struct {
	cfg     Config
	schema  *dataset.Schema
	splits  []dataset.Split
	stats   *Stats
	cache   *resultCache
	quotas  *quotaTable
	batcher *batcher
	mux     *http.ServeMux

	epoch    atomic.Int64
	draining atomic.Bool
	started  time.Time

	metMu sync.Mutex
	met   mapreduce.Metrics

	tickets *ticketStore
}

// NewServer partitions the population, indexes split bounds for pruning, and
// returns a ready daemon. It does not listen; mount Handler() on an
// http.Server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Population == nil {
		return nil, fmt.Errorf("serve: Config.Population is required")
	}
	if cfg.Slaves <= 0 {
		cfg.Slaves = 4
	}
	if cfg.Splits <= 0 {
		cfg.Splits = cfg.Slaves * 2
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 1024
	}
	if cfg.NewCluster == nil {
		cfg.NewCluster = mapreduce.NewCluster
	}

	// Partition seeding mirrors "strata sample" (rand.New(rand.NewSource(seed)))
	// so a daemon started with the same parameters partitions identically and
	// singleton-pass answers match the one-shot CLI byte for byte.
	splits, err := dataset.Partition(cfg.Population, cfg.Splits, cfg.Layout, rand.New(rand.NewSource(cfg.PartitionSeed)))
	if err != nil {
		return nil, fmt.Errorf("serve: partitioning population: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		schema:  cfg.Population.Schema(),
		splits:  splits,
		stats:   newStats(),
		cache:   newResultCache(cfg.CacheSize),
		tickets: newTicketStore(),
		started: time.Now(),
	}
	if cfg.QuotaQPS > 0 {
		s.quotas = newQuotaTable(cfg.QuotaQPS, cfg.QuotaBurst)
	}
	s.epoch.Store(1)
	exec := &executor{
		schema:     s.schema,
		splits:     splits,
		bounds:     boundsOf(splits, s.schema),
		prune:      !cfg.NoPrune,
		slaves:     cfg.Slaves,
		newCluster: cfg.NewCluster,
		onMetrics:  s.recordMetrics,
		cache:      s.cache,
		stats:      s.stats,
		tracer:     cfg.Tracer,
		base:       s.started,
	}
	s.batcher = newBatcher(cfg.Window, cfg.MaxBatch, s.epoch.Load, exec, s.stats)

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sample", s.handleSample)
	mux.HandleFunc("/v1/result", s.handleResult)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/epoch", s.handleEpoch)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux = mux
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats exposes the service counters (for tests and the load generator).
func (s *Server) Stats() Snapshot { return s.stats.snapshot() }

// Epoch returns the current population epoch.
func (s *Server) Epoch() int64 { return s.epoch.Load() }

// BumpEpoch advances the population epoch and purges the result cache; every
// answer computed from now on carries the new epoch. It models a population
// mutation boundary.
func (s *Server) BumpEpoch() int64 {
	e := s.epoch.Add(1)
	s.cache.purge()
	return e
}

// BeginDrain makes every subsequent submission fail with 503 and fires the
// collecting batch immediately so blocked requests resolve fast.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.batcher.flush()
}

// Drain waits for every in-flight pass to finish. Call after BeginDrain and
// after the HTTP server stopped accepting connections.
func (s *Server) Drain() { s.batcher.drain() }

// recordMetrics accumulates pass metrics for /metrics and forwards them to
// the configured sink.
func (s *Server) recordMetrics(m mapreduce.Metrics) {
	s.metMu.Lock()
	s.met.Add(m)
	s.metMu.Unlock()
	if s.cfg.OnMetrics != nil {
		s.cfg.OnMetrics(m)
	}
}

// sampleRequest is the JSON body of POST /v1/sample. The query can be given
// either as the CLI text form ("query") or as structured strata; "seed"
// defaults to 1, matching "strata sample".
type sampleRequest struct {
	Name   string `json:"name,omitempty"`
	Query  string `json:"query,omitempty"`
	Strata []struct {
		Cond string `json:"cond"`
		Freq int    `json:"freq"`
	} `json:"strata,omitempty"`
	Seed    *int64 `json:"seed,omitempty"`
	Wait    *bool  `json:"wait,omitempty"`
	NoCache bool   `json:"nocache,omitempty"`
}

// stratumResult is one stratum of an answer.
type stratumResult struct {
	Stratum     int      `json:"stratum"` // 1-based, like the CLI output
	Cond        string   `json:"cond"`
	Freq        int      `json:"freq"`
	Count       int      `json:"count"`
	Individuals []string `json:"individuals"`
}

// sampleResponse is the JSON answer of POST /v1/sample and GET /v1/result.
type sampleResponse struct {
	Name      string          `json:"name"`
	Seed      int64           `json:"seed"`
	Epoch     int64           `json:"epoch"`
	Cached    bool            `json:"cached"`
	Trace     string          `json:"trace,omitempty"`
	Strata    []stratumResult `json:"strata"`
	ElapsedUS int64           `json:"elapsed_us"`
}

// newTraceID mints a random 64-bit trace id in hex. Collisions across a
// daemon's lifetime are astronomically unlikely at any realistic query rate.
func newTraceID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return "t-0" // never in practice; keeps the request path infallible
	}
	return hex.EncodeToString(b[:])
}

// requestSpanID is the root span id of one request's trace.
func requestSpanID(trace string) uint64 {
	return mapreduce.SpanID(trace, "req", "serve", "request", "0", "0")
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req sampleRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	q, err := s.buildQuery(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tenant := r.Header.Get("X-Strata-Tenant")
	if s.quotas != nil && !s.quotas.allow(tenant) {
		s.stats.addRejected(tenant)
		httpError(w, http.StatusTooManyRequests, "tenant %q over quota", tenant)
		return
	}
	seed := int64(1)
	if req.Seed != nil {
		seed = *req.Seed
	}
	canon, err := canonicalSSD(q, s.schema)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.stats.addQuery()
	start := time.Now()
	epoch := s.epoch.Load()

	// Every request gets a trace id — the client's own (X-Strata-Trace) or a
	// fresh one — echoed in the response header and body so a caller can
	// always correlate an answer with the daemon's span file.
	trace := r.Header.Get("X-Strata-Trace")
	if trace == "" {
		trace = newTraceID()
	}
	w.Header().Set("X-Strata-Trace", trace)
	reqSpan := requestSpanID(trace)

	var cacheDur time.Duration
	if !req.NoCache {
		t0 := time.Now()
		ans, ok := s.cache.get(cacheKey{canon: canon, seed: seed, epoch: epoch})
		cacheDur = time.Since(t0)
		if ok {
			s.stats.addCacheHit()
			s.respond(w, q, seed, epoch, trace, ans, true, start)
			s.emitRequestTrace(trace, reqSpan, start, cacheDur, nil)
			return
		}
		s.stats.addCacheMiss()
	}

	e := s.batcher.submit(q, canon, seed, trace, reqSpan)
	if req.Wait != nil && !*req.Wait {
		id, err := s.tickets.add(&ticket{entry: e, q: q, seed: seed, epoch: epoch, start: start, trace: trace})
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": id, "status": "pending", "trace": trace})
		return
	}
	<-e.done
	if e.err != nil {
		httpError(w, http.StatusInternalServerError, "%v", e.err)
		return
	}
	s.stats.observeAttribution(e.firedAt.Sub(start), e.passStart.Sub(e.firedAt), e.passEnd.Sub(e.passStart))
	s.respond(w, q, seed, epoch, trace, e.ans, false, start)
	s.emitRequestTrace(trace, reqSpan, start, cacheDur, e)
}

// emitRequestTrace emits the request-level spans once the answer went out:
// the request root span, its cache-lookup child, and (for requests that rode
// a batch) the window child covering admission-to-fire. Batch, pass and
// engine spans are emitted by the batcher's executor under the same trace.
func (s *Server) emitRequestTrace(trace string, reqSpan uint64, start time.Time, cacheDur time.Duration, e *entry) {
	tr := s.cfg.Tracer
	if tr == nil || !tr.Enabled() || trace == "" {
		return
	}
	startOff := start.Sub(s.started)
	if cacheDur > 0 {
		tr.Emit(mapreduce.Span{
			Job: "serve", Phase: "cache", Trace: trace, Run: "req",
			ID:     mapreduce.SpanID(trace, "req", "serve", "cache", "0", "0"),
			Parent: reqSpan, Start: startOff, Wall: cacheDur,
		})
	}
	if e != nil && !e.firedAt.IsZero() {
		tr.Emit(mapreduce.Span{
			Job: "serve", Phase: "window", Trace: trace, Run: "req",
			ID:     mapreduce.SpanID(trace, "req", "serve", "window", "0", "0"),
			Parent: reqSpan, Start: startOff, Wall: e.firedAt.Sub(start),
		})
	}
	tr.Emit(mapreduce.Span{
		Job: "serve", Phase: "request", Trace: trace, Run: "req",
		ID: reqSpan, Start: startOff, Wall: time.Since(start),
	})
}

// buildQuery assembles and validates the SSD from either request form.
func (s *Server) buildQuery(req *sampleRequest) (*query.SSD, error) {
	name := req.Name
	if name == "" {
		name = "Q"
	}
	var q *query.SSD
	switch {
	case req.Query != "" && len(req.Strata) > 0:
		return nil, fmt.Errorf(`give either "query" or "strata", not both`)
	case req.Query != "":
		var err error
		q, err = query.ParseSSD(name, req.Query)
		if err != nil {
			return nil, err
		}
	case len(req.Strata) > 0:
		spec, err := json.Marshal(map[string]any{"name": name, "strata": req.Strata})
		if err != nil {
			return nil, err
		}
		q = new(query.SSD)
		if err := json.Unmarshal(spec, q); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf(`missing query: set "query" (text form) or "strata"`)
	}
	if err := q.Validate(s.schema); err != nil {
		return nil, err
	}
	return q, nil
}

func (s *Server) respond(w http.ResponseWriter, q *query.SSD, seed, epoch int64, trace string, ans *query.Answer, cached bool, start time.Time) {
	resp := &sampleResponse{
		Name: q.Name, Seed: seed, Epoch: epoch, Cached: cached, Trace: trace,
		Strata:    make([]stratumResult, len(q.Strata)),
		ElapsedUS: time.Since(start).Microseconds(),
	}
	for k, st := range q.Strata {
		individuals := make([]string, len(ans.Strata[k]))
		for i, t := range ans.Strata[k] {
			individuals[i] = t.String()
		}
		resp.Strata[k] = stratumResult{
			Stratum: k + 1, Cond: st.Cond.String(), Freq: st.Freq,
			Count: len(individuals), Individuals: individuals,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	t0 := time.Now()
	json.NewEncoder(w).Encode(resp)
	// Encode-and-write time is the "wire" share of the answer's latency.
	s.stats.observeWire(time.Since(t0))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		httpError(w, http.StatusBadRequest, "missing id")
		return
	}
	t, ok := s.tickets.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown or already-collected id %q", id)
		return
	}
	select {
	case <-t.entry.done:
	default:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": id, "status": "pending"})
		return
	}
	s.tickets.remove(id)
	w.Header().Set("X-Strata-Trace", t.trace)
	if t.entry.err != nil {
		httpError(w, http.StatusInternalServerError, "%v", t.entry.err)
		return
	}
	e := t.entry
	s.stats.observeAttribution(e.firedAt.Sub(t.start), e.passStart.Sub(e.firedAt), e.passEnd.Sub(e.passStart))
	s.respond(w, t.q, t.seed, t.epoch, t.trace, e.ans, false, t.start)
	// The async request span closes at collection time: its Wall covers
	// submission through pickup, which is what the client experienced.
	s.emitRequestTrace(t.trace, requestSpanID(t.trace), t.start, 0, e)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.stats.WriteJSON(w); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	e := s.BumpEpoch()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int64{"epoch": e})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metMu.Lock()
	var m mapreduce.Metrics
	m.Add(s.met)
	s.metMu.Unlock()
	m.Job = "serve"
	if err := m.WritePrometheus(w); err != nil {
		return
	}
	if err := s.stats.WritePrometheus(w); err != nil {
		return
	}
	WriteBuildInfo(w, s.started)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":     "ok",
		"population": s.cfg.Population.Len(),
		"splits":     len(s.splits),
		"epoch":      s.epoch.Load(),
		"draining":   s.draining.Load(),
	})
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// ticketStore holds async submissions awaiting collection. Tickets are
// deleted on first successful read; uncollected tickets expire after
// ticketTTL. The store caps outstanding tickets so an abandoning client
// cannot grow it without bound.
type ticketStore struct {
	mu      sync.Mutex
	byID    map[string]*ticket
	queue   []ticketAge // insertion order, for expiry
	maxSize int
}

type ticket struct {
	entry *entry
	q     *query.SSD
	seed  int64
	epoch int64
	start time.Time
	trace string
}

type ticketAge struct {
	id      string
	created time.Time
}

const ticketTTL = 10 * time.Minute

func newTicketStore() *ticketStore {
	return &ticketStore{byID: make(map[string]*ticket), maxSize: 4096}
}

func (ts *ticketStore) add(t *ticket) (string, error) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	now := time.Now()
	for len(ts.queue) > 0 && now.Sub(ts.queue[0].created) > ticketTTL {
		delete(ts.byID, ts.queue[0].id)
		ts.queue = ts.queue[1:]
	}
	if len(ts.byID) >= ts.maxSize {
		return "", fmt.Errorf("too many outstanding async results (%d)", len(ts.byID))
	}
	buf := make([]byte, 12)
	if _, err := cryptorand.Read(buf); err != nil {
		return "", err
	}
	id := hex.EncodeToString(buf)
	ts.byID[id] = t
	ts.queue = append(ts.queue, ticketAge{id: id, created: now})
	return id, nil
}

func (ts *ticketStore) get(id string) (*ticket, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.byID[id]
	return t, ok
}

func (ts *ticketStore) remove(id string) {
	ts.mu.Lock()
	delete(ts.byID, id)
	ts.mu.Unlock()
}
