package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/mapreduce"
	"repro/internal/query"
	"repro/internal/stratified"
)

// testDaemon wraps a Server with an httptest listener and a job-name
// recorder, so tests can assert exactly which engine jobs each scenario ran.
type testDaemon struct {
	s   *Server
	ts  *httptest.Server
	mu  sync.Mutex
	job []string
}

func newTestDaemon(t *testing.T, cfg Config) *testDaemon {
	t.Helper()
	d := &testDaemon{}
	cfg.OnMetrics = func(m mapreduce.Metrics) {
		d.mu.Lock()
		d.job = append(d.job, m.Job)
		d.mu.Unlock()
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.s = s
	d.ts = httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		d.s.BeginDrain()
		d.s.Drain()
		d.ts.Close()
	})
	return d
}

func (d *testDaemon) jobs() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.job...)
}

// post submits a sample request and decodes the response.
func (d *testDaemon) post(t *testing.T, body map[string]any) (*sampleResponse, int) {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(d.ts.URL+"/v1/sample", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out sampleResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

// directSQE computes the one-shot CLI answer ("strata sample") for the query
// with matching population parameters, rendered like the daemon renders it.
func directSQE(t *testing.T, pop *dataset.Relation, spec string, slaves int, seed int64) [][]string {
	t.Helper()
	q, err := query.ParseSSD("Q", spec)
	if err != nil {
		t.Fatal(err)
	}
	splits, err := dataset.Partition(pop, dataset.DefaultSplits(slaves), dataset.Contiguous, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	ans, _, err := stratified.RunSQE(mapreduce.NewCluster(slaves), q, pop.Schema(), splits, stratified.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]string, len(ans.Strata))
	for k, st := range ans.Strata {
		out[k] = make([]string, len(st))
		for i, tp := range st {
			out[k][i] = tp.String()
		}
	}
	return out
}

func respIndividuals(r *sampleResponse) [][]string {
	out := make([][]string, len(r.Strata))
	for i, s := range r.Strata {
		out[i] = s.Individuals
	}
	return out
}

// TestCoalescingIdenticalQueries is the coalescing proof: k concurrent
// identical queries produce exactly one engine job, and every client's
// answer is byte-identical to the one-shot "strata sample" answer for the
// same population parameters and seed.
func TestCoalescingIdenticalQueries(t *testing.T) {
	const (
		popN   = 3000
		slaves = 4
		seed   = int64(7)
		k      = 8
		spec   = "nop >= 50 : 5 ; nop < 50 : 8"
	)
	pop := gen.Population(popN, seed)
	d := newTestDaemon(t, Config{
		Population: pop, Slaves: slaves, Layout: dataset.Contiguous,
		PartitionSeed: seed, Window: 30 * time.Second, // fired explicitly below
	})

	var wg sync.WaitGroup
	responses := make([]*sampleResponse, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, code := d.post(t, map[string]any{"query": spec, "seed": seed, "nocache": true})
			if code != http.StatusOK {
				t.Errorf("client %d: status %d", i, code)
				return
			}
			responses[i] = r
		}(i)
	}
	// Wait until all k requests attached to the collecting batch, then fire
	// it without waiting out the window.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := d.s.Stats()
		if snap.SingleFlight == k-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests attached in time", snap.SingleFlight+1, k)
		}
		time.Sleep(time.Millisecond)
	}
	d.s.batcher.flush()
	wg.Wait()

	snap := d.s.Stats()
	if snap.Passes != 1 {
		t.Fatalf("passes = %d, want exactly 1", snap.Passes)
	}
	if snap.Coalesced != k-1 {
		t.Errorf("coalesced = %d, want %d", snap.Coalesced, k-1)
	}
	if jobs := d.jobs(); len(jobs) != 1 || jobs[0] != "mr-sqe:Q" {
		t.Errorf("engine jobs = %v, want exactly [mr-sqe:Q]", jobs)
	}

	want := directSQE(t, pop, spec, slaves, seed)
	for i, r := range responses {
		if r == nil {
			continue
		}
		if got := respIndividuals(r); !reflect.DeepEqual(got, want) {
			t.Errorf("client %d answer differs from one-shot strata sample:\ngot  %v\nwant %v", i, got, want)
		}
	}
}

// TestDistinctQueriesOneMQEPass: distinct queries arriving in one window run
// as a single MR-MQE job.
func TestDistinctQueriesOneMQEPass(t *testing.T) {
	pop := gen.Population(2000, 1)
	d := newTestDaemon(t, Config{
		Population: pop, Slaves: 2, Layout: dataset.Contiguous,
		PartitionSeed: 1, Window: 30 * time.Second, MaxBatch: 3,
	})
	specs := []string{
		"nop >= 100 : 3",
		"nop >= 50 : 4",
		"ayp >= 5 : 2",
	}
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec string) {
			defer wg.Done()
			if _, code := d.post(t, map[string]any{"name": fmt.Sprintf("Q%d", i), "query": spec}); code != http.StatusOK {
				t.Errorf("query %d: status %d", i, code)
			}
		}(i, spec)
	}
	// MaxBatch=3 fires the batch as the third distinct query arrives.
	wg.Wait()

	snap := d.s.Stats()
	if snap.Passes != 1 {
		t.Fatalf("passes = %d, want 1", snap.Passes)
	}
	if snap.PassQueries != 3 {
		t.Errorf("pass queries = %d, want 3", snap.PassQueries)
	}
	if snap.BatchMax != 3 {
		t.Errorf("batch occupancy max = %d, want 3", snap.BatchMax)
	}
	if jobs := d.jobs(); len(jobs) != 1 || jobs[0] != "mr-mqe" {
		t.Errorf("engine jobs = %v, want exactly [mr-mqe]", jobs)
	}
}

// TestCacheSharedAcrossTextualVariants: two textually different but
// semantically identical queries share one cache entry, and an epoch bump
// invalidates it.
func TestCacheSharedAcrossTextualVariants(t *testing.T) {
	pop := gen.Population(1500, 1)
	d := newTestDaemon(t, Config{
		Population: pop, Slaves: 2, Layout: dataset.Contiguous,
		PartitionSeed: 1, Window: 0, // one pass per query
	})

	r1, code := d.post(t, map[string]any{"query": "nop >= 100 : 5"})
	if code != http.StatusOK {
		t.Fatalf("first: status %d", code)
	}
	if r1.Cached {
		t.Error("first answer claims cached")
	}

	// Semantically identical, textually different.
	r2, code := d.post(t, map[string]any{"query": "not (nop < 100) : 5"})
	if code != http.StatusOK {
		t.Fatalf("variant: status %d", code)
	}
	if !r2.Cached {
		t.Error("semantically identical variant missed the cache")
	}
	if !reflect.DeepEqual(respIndividuals(r1), respIndividuals(r2)) {
		t.Error("cached variant answer differs from original")
	}
	if snap := d.s.Stats(); snap.Passes != 1 {
		t.Errorf("passes = %d, want 1 (variant must not recompute)", snap.Passes)
	}

	// Epoch bump invalidates: same query recomputes under the new epoch.
	resp, err := http.Post(d.ts.URL+"/v1/epoch", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	r3, code := d.post(t, map[string]any{"query": "nop >= 100 : 5"})
	if code != http.StatusOK {
		t.Fatalf("post-bump: status %d", code)
	}
	if r3.Cached {
		t.Error("post-bump answer served from stale cache")
	}
	if r3.Epoch != 2 {
		t.Errorf("post-bump epoch = %d, want 2", r3.Epoch)
	}
	if snap := d.s.Stats(); snap.Passes != 2 {
		t.Errorf("passes = %d, want 2 after epoch bump", snap.Passes)
	}
}

// TestCacheKeyIncludesSeed: same query text, different seed → different
// entry (and different sample).
func TestCacheKeyIncludesSeed(t *testing.T) {
	pop := gen.Population(1500, 1)
	d := newTestDaemon(t, Config{
		Population: pop, Slaves: 2, Layout: dataset.Contiguous, PartitionSeed: 1, Window: 0,
	})
	r1, _ := d.post(t, map[string]any{"query": "nop >= 30 : 5", "seed": 1})
	r2, _ := d.post(t, map[string]any{"query": "nop >= 30 : 5", "seed": 2})
	if r2.Cached {
		t.Error("different seed hit the cache")
	}
	if reflect.DeepEqual(respIndividuals(r1), respIndividuals(r2)) {
		t.Error("different seeds produced identical samples (suspicious)")
	}
}

func TestQuotaRejectsOverBudgetTenant(t *testing.T) {
	pop := gen.Population(800, 1)
	d := newTestDaemon(t, Config{
		Population: pop, Slaves: 2, Layout: dataset.Contiguous, PartitionSeed: 1,
		Window: 0, QuotaQPS: 0.0001, QuotaBurst: 1, // one token, negligible refill
	})
	do := func(tenant string) int {
		raw, _ := json.Marshal(map[string]any{"query": "nop >= 30 : 2"})
		req, _ := http.NewRequest(http.MethodPost, d.ts.URL+"/v1/sample", bytes.NewReader(raw))
		req.Header.Set("X-Strata-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := do("alice"); code != http.StatusOK {
		t.Fatalf("first alice query: status %d", code)
	}
	if code := do("alice"); code != http.StatusTooManyRequests {
		t.Fatalf("second alice query: status %d, want 429", code)
	}
	// Independent tenant has its own bucket.
	if code := do("bob"); code != http.StatusOK {
		t.Fatalf("first bob query: status %d", code)
	}
	snap := d.s.Stats()
	if snap.Rejected["alice"] != 1 {
		t.Errorf("rejected[alice] = %d, want 1", snap.Rejected["alice"])
	}
}

func TestAsyncSubmitAndPoll(t *testing.T) {
	pop := gen.Population(1000, 1)
	d := newTestDaemon(t, Config{
		Population: pop, Slaves: 2, Layout: dataset.Contiguous, PartitionSeed: 1, Window: 0,
	})
	raw, _ := json.Marshal(map[string]any{"query": "nop >= 30 : 3", "wait": false})
	resp, err := http.Post(d.ts.URL+"/v1/sample", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", resp.StatusCode)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(d.ts.URL + "/v1/result?id=" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var out sampleResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if len(out.Strata) != 1 || out.Strata[0].Count != 3 {
				t.Fatalf("async answer malformed: %+v", out)
			}
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("async result never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The ticket is collected on read.
	resp2, err := http.Get(d.ts.URL + "/v1/result?id=" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("re-poll after collection: status %d, want 404", resp2.StatusCode)
	}
}

func TestDrainRejectsNewQueries(t *testing.T) {
	pop := gen.Population(500, 1)
	d := newTestDaemon(t, Config{
		Population: pop, Slaves: 2, Layout: dataset.Contiguous, PartitionSeed: 1, Window: 0,
	})
	d.s.BeginDrain()
	d.s.Drain()
	if _, code := d.post(t, map[string]any{"query": "nop >= 30 : 2"}); code != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: status %d, want 503", code)
	}
}

func TestRejectsInvalidQueries(t *testing.T) {
	pop := gen.Population(500, 1)
	d := newTestDaemon(t, Config{
		Population: pop, Slaves: 2, Layout: dataset.Contiguous, PartitionSeed: 1, Window: 0,
	})
	for _, body := range []map[string]any{
		{"query": "broken ::"},
		{"query": "nop < 10 : 1 ; nop < 20 : 1"}, // overlapping strata
		{},                                       // no query at all
		{"query": "nop >= 1 : 1", "strata": []map[string]any{{"cond": "nop >= 1", "freq": 1}}}, // both forms
	} {
		raw, _ := json.Marshal(body)
		resp, err := http.Post(d.ts.URL+"/v1/sample", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %v: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestStructuredStrataForm: the JSON strata form is accepted and matches the
// text form's cache entry.
func TestStructuredStrataForm(t *testing.T) {
	pop := gen.Population(1000, 1)
	d := newTestDaemon(t, Config{
		Population: pop, Slaves: 2, Layout: dataset.Contiguous, PartitionSeed: 1, Window: 0,
	})
	r1, code := d.post(t, map[string]any{"query": "nop >= 100 : 4"})
	if code != http.StatusOK {
		t.Fatalf("text form: status %d", code)
	}
	r2, code := d.post(t, map[string]any{
		"strata": []map[string]any{{"cond": "nop >= 100", "freq": 4}},
	})
	if code != http.StatusOK {
		t.Fatalf("strata form: status %d", code)
	}
	if !r2.Cached {
		t.Error("structured form missed the cache entry of the identical text form")
	}
	if !reflect.DeepEqual(respIndividuals(r1), respIndividuals(r2)) {
		t.Error("structured form answer differs")
	}
}
