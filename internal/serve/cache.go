package serve

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/query"
)

// cacheKey identifies one answer: the canonical query form (see canon.go),
// the sampling seed, and the population epoch at the time the answer was
// computed. Bumping the epoch therefore invalidates every earlier entry
// without touching them: their keys can simply never be asked for again, and
// the bump also purges eagerly to release memory.
type cacheKey struct {
	canon string
	seed  int64
	epoch int64
}

func (k cacheKey) String() string {
	return fmt.Sprintf("%s|seed=%d|epoch=%d", k.canon, k.seed, k.epoch)
}

// resultCache is a mutex-guarded LRU of computed answers. Answers are
// immutable once published (the batcher never mutates an answer after
// closing the entry), so the cache hands out shared pointers.
type resultCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	ans *query.Answer
}

func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{max: max, order: list.New(), byKey: make(map[cacheKey]*list.Element)}
}

// get returns the cached answer for the key, refreshing its recency.
func (c *resultCache) get(k cacheKey) (*query.Answer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).ans, true
}

// put stores an answer, evicting the least recently used entry when full.
func (c *resultCache) put(k cacheKey, ans *query.Answer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		el.Value.(*cacheEntry).ans = ans
		c.order.MoveToFront(el)
		return
	}
	c.byKey[k] = c.order.PushFront(&cacheEntry{key: k, ans: ans})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// purge drops every entry (used on epoch bump) and reports how many were
// dropped, so invalidation is observable in the daemon's counters.
func (c *resultCache) purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.order.Len()
	c.order.Init()
	c.byKey = make(map[cacheKey]*list.Element)
	return n
}

// len reports the number of cached answers.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
