package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/live"
	"repro/internal/mapreduce"
)

// Stats is the daemon's service-level counter set, exported as JSON at
// /v1/stats and as Prometheus text at /metrics (alongside the accumulated
// engine metrics). All methods are safe for concurrent use.
type Stats struct {
	mu sync.Mutex

	queries     int64 // admitted queries (past quota, before cache)
	cacheHits   int64
	cacheMisses int64
	passes      int64 // engine passes executed
	passQueries int64 // distinct queries across all passes
	coalesced   int64 // requests beyond the first in their batch
	singleFlown int64 // requests that attached to an already-batched identical query
	pruned      int64 // splits skipped by box pre-filtering, across passes
	errors      int64 // passes or submissions that failed
	adaptive    int64 // batches fired immediately by the adaptive idle window

	rejected map[string]int64 // per-tenant quota rejections

	// Cache-invalidation observability (satellite of the live subsystem):
	// epoch bumps and the entries each bump dropped.
	cachePurges int64
	cachePurged int64

	// Live-mode counters: queries answered warm from standing reservoirs,
	// standing-query pushes delivered to subscribers (with trigger-to-publish
	// latency), and the current subscription count.
	liveHits    int64
	pushes      int64
	subscribers int64
	pushNanos   mapreduce.Histogram

	// batchOccupancy observes the number of distinct queries per engine
	// pass; windowNanos observes request time-in-batcher (admission to
	// answer) for non-cached requests.
	batchOccupancy mapreduce.Histogram
	windowNanos    mapreduce.Histogram

	// Per-query latency attribution — where an answered request's time went:
	// waiting for its batch window to fire, queued behind sibling passes,
	// inside its own engine pass, and encoding the answer onto the wire.
	// Always on (a handful of clock reads per request), independent of the
	// tracer.
	attrWindow mapreduce.Histogram
	attrQueue  mapreduce.Histogram
	attrPass   mapreduce.Histogram
	attrWire   mapreduce.Histogram
}

func newStats() *Stats {
	return &Stats{rejected: make(map[string]int64)}
}

func (s *Stats) addQuery() {
	s.mu.Lock()
	s.queries++
	s.mu.Unlock()
}

func (s *Stats) addCacheHit() {
	s.mu.Lock()
	s.cacheHits++
	s.mu.Unlock()
}

func (s *Stats) addCacheMiss() {
	s.mu.Lock()
	s.cacheMisses++
	s.mu.Unlock()
}

func (s *Stats) addRejected(tenant string) {
	s.mu.Lock()
	s.rejected[tenant]++
	s.mu.Unlock()
}

// addCachePurge records one epoch bump and the cache entries it dropped.
func (s *Stats) addCachePurge(entries int) {
	s.mu.Lock()
	s.cachePurges++
	s.cachePurged += int64(entries)
	s.mu.Unlock()
}

func (s *Stats) addLiveHit() {
	s.mu.Lock()
	s.liveHits++
	s.mu.Unlock()
}

func (s *Stats) addSubscriber(delta int64) {
	s.mu.Lock()
	s.subscribers += delta
	s.mu.Unlock()
}

// observePush records one standing-query push: the time from the mutation (or
// timer tick) that triggered it to the event's publication.
func (s *Stats) observePush(d time.Duration) {
	s.mu.Lock()
	s.pushes++
	s.pushNanos.Observe(max(d.Nanoseconds(), 0))
	s.mu.Unlock()
}

func (s *Stats) addError() {
	s.mu.Lock()
	s.errors++
	s.mu.Unlock()
}

func (s *Stats) addSingleFlight() {
	s.mu.Lock()
	s.singleFlown++
	s.mu.Unlock()
}

// addAdaptiveFire records a batch the idle heuristic fired without waiting
// out its window.
func (s *Stats) addAdaptiveFire() {
	s.mu.Lock()
	s.adaptive++
	s.mu.Unlock()
}

// addPass records one executed engine pass: how many distinct queries it
// answered, how many requests rode it, and how many splits were pruned.
func (s *Stats) addPass(distinct, requests, pruned int) {
	s.mu.Lock()
	s.passes++
	s.passQueries += int64(distinct)
	if requests > 1 {
		s.coalesced += int64(requests - 1)
	}
	s.pruned += int64(pruned)
	s.batchOccupancy.Observe(int64(distinct))
	s.mu.Unlock()
}

func (s *Stats) observeWindow(nanos int64) {
	s.mu.Lock()
	s.windowNanos.Observe(nanos)
	s.mu.Unlock()
}

// observeAttribution records one answered request's latency split. Negative
// components (clock steps, zero-window batches) clamp to zero.
func (s *Stats) observeAttribution(window, queue, pass time.Duration) {
	s.mu.Lock()
	s.attrWindow.Observe(max(window.Nanoseconds(), 0))
	s.attrQueue.Observe(max(queue.Nanoseconds(), 0))
	s.attrPass.Observe(max(pass.Nanoseconds(), 0))
	s.mu.Unlock()
}

// observeWire records one answer's encode-and-write time.
func (s *Stats) observeWire(d time.Duration) {
	s.mu.Lock()
	s.attrWire.Observe(max(d.Nanoseconds(), 0))
	s.mu.Unlock()
}

// Snapshot is the JSON shape of /v1/stats.
type Snapshot struct {
	Queries       int64            `json:"queries"`
	CacheHits     int64            `json:"cache_hits"`
	CacheMisses   int64            `json:"cache_misses"`
	Passes        int64            `json:"passes"`
	PassQueries   int64            `json:"pass_queries"`
	Coalesced     int64            `json:"coalesced"`
	SingleFlight  int64            `json:"single_flight"`
	PrunedSplits  int64            `json:"pruned_splits"`
	Errors        int64            `json:"errors"`
	AdaptiveFires int64            `json:"adaptive_fires,omitempty"`
	Rejected      map[string]int64 `json:"rejected_by_tenant,omitempty"`
	BatchMean     float64          `json:"batch_occupancy_mean"`
	BatchMax      int64            `json:"batch_occupancy_max"`
	WindowP50Usec int64            `json:"window_latency_p50_us"`
	WindowP99Usec int64            `json:"window_latency_p99_us"`
	// Attribution answers "where did my latency go" per component, keyed
	// window/queue/pass/wire; present once any request has been attributed.
	Attribution map[string]AttrQuantiles `json:"latency_attribution,omitempty"`

	// Cache-invalidation observability: epoch bumps and entries dropped.
	CachePurges int64 `json:"cache_purges,omitempty"`
	CachePurged int64 `json:"cache_purged_entries,omitempty"`

	// Live-mode counters; Live itself is the live subsystem's own snapshot,
	// attached by the server when running with a mutable population.
	LiveHits      int64       `json:"live_hits,omitempty"`
	Pushes        int64       `json:"pushes,omitempty"`
	Subscriptions int64       `json:"subscriptions,omitempty"`
	PushP50Usec   int64       `json:"push_latency_p50_us,omitempty"`
	PushP99Usec   int64       `json:"push_latency_p99_us,omitempty"`
	Live          *live.Stats `json:"live,omitempty"`
}

// AttrQuantiles is one latency-attribution component's summary.
type AttrQuantiles struct {
	P50Usec int64 `json:"p50_us"`
	P99Usec int64 `json:"p99_us"`
}

// snapshot copies the counters.
func (s *Stats) snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	rej := make(map[string]int64, len(s.rejected))
	for k, v := range s.rejected {
		rej[k] = v
	}
	snap := Snapshot{
		Queries: s.queries, CacheHits: s.cacheHits, CacheMisses: s.cacheMisses,
		Passes: s.passes, PassQueries: s.passQueries, Coalesced: s.coalesced,
		SingleFlight: s.singleFlown, PrunedSplits: s.pruned, Errors: s.errors,
		AdaptiveFires: s.adaptive,
		Rejected:      rej,
		CachePurges:   s.cachePurges, CachePurged: s.cachePurged,
		LiveHits: s.liveHits, Pushes: s.pushes, Subscriptions: s.subscribers,
	}
	if s.pushNanos.Count() > 0 {
		snap.PushP50Usec = s.pushNanos.Quantile(0.5) / 1000
		snap.PushP99Usec = s.pushNanos.Quantile(0.99) / 1000
	}
	if s.batchOccupancy.Count() > 0 {
		snap.BatchMean = s.batchOccupancy.Mean()
		snap.BatchMax = s.batchOccupancy.Max()
	}
	if s.windowNanos.Count() > 0 {
		snap.WindowP50Usec = s.windowNanos.Quantile(0.5) / 1000
		snap.WindowP99Usec = s.windowNanos.Quantile(0.99) / 1000
	}
	attr := map[string]*mapreduce.Histogram{
		"window": &s.attrWindow, "queue": &s.attrQueue,
		"pass": &s.attrPass, "wire": &s.attrWire,
	}
	for name, h := range attr {
		if h.Count() == 0 {
			continue
		}
		if snap.Attribution == nil {
			snap.Attribution = make(map[string]AttrQuantiles)
		}
		snap.Attribution[name] = AttrQuantiles{
			P50Usec: h.Quantile(0.5) / 1000,
			P99Usec: h.Quantile(0.99) / 1000,
		}
	}
	return snap
}

// WriteJSON renders the snapshot as indented JSON.
func (s *Stats) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.snapshot())
}

// WritePrometheus renders the service counters in the Prometheus text
// exposition format under the strata_serve_* namespace.
func (s *Stats) WritePrometheus(w io.Writer) error {
	snap := s.snapshot()
	s.mu.Lock()
	occ := s.batchOccupancy
	win := s.windowNanos
	push := s.pushNanos
	attrs := []struct {
		name string
		h    mapreduce.Histogram
	}{
		{"window", s.attrWindow}, {"queue", s.attrQueue},
		{"pass", s.attrPass}, {"wire", s.attrWire},
	}
	s.mu.Unlock()

	counters := []struct {
		name, help string
		v          int64
	}{
		{"strata_serve_queries_total", "Admitted sampling queries.", snap.Queries},
		{"strata_serve_cache_hits_total", "Queries answered from the result cache.", snap.CacheHits},
		{"strata_serve_cache_misses_total", "Queries that missed the result cache.", snap.CacheMisses},
		{"strata_serve_passes_total", "Engine passes executed.", snap.Passes},
		{"strata_serve_pass_queries_total", "Distinct queries across all passes.", snap.PassQueries},
		{"strata_serve_coalesced_total", "Requests that shared a pass with an earlier request.", snap.Coalesced},
		{"strata_serve_single_flight_total", "Requests deduplicated onto an identical in-batch query.", snap.SingleFlight},
		{"strata_serve_pruned_splits_total", "Splits skipped by box pre-filtering.", snap.PrunedSplits},
		{"strata_serve_errors_total", "Failed passes or submissions.", snap.Errors},
		{"strata_serve_adaptive_fires_total", "Batches fired immediately by the adaptive idle window.", snap.AdaptiveFires},
		{"strata_serve_cache_purges_total", "Epoch bumps that purged the result cache.", snap.CachePurges},
		{"strata_serve_cache_purged_total", "Result-cache entries dropped by epoch bumps.", snap.CachePurged},
		{"strata_serve_live_hits_total", "Queries answered warm from standing reservoirs.", snap.LiveHits},
		{"strata_serve_pushes_total", "Standing-query pushes delivered to subscribers.", snap.Pushes},
	}
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v); err != nil {
			return err
		}
	}
	tenants := make([]string, 0, len(snap.Rejected))
	for t := range snap.Rejected {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	if len(tenants) > 0 {
		if _, err := fmt.Fprintf(w, "# HELP strata_serve_rejected_total Queries rejected by per-tenant quota.\n# TYPE strata_serve_rejected_total counter\n"); err != nil {
			return err
		}
		for _, t := range tenants {
			if _, err := fmt.Fprintf(w, "strata_serve_rejected_total{tenant=%q} %d\n", t, snap.Rejected[t]); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP strata_serve_subscriptions Active standing-query subscriptions.\n# TYPE strata_serve_subscriptions gauge\nstrata_serve_subscriptions %d\n", snap.Subscriptions); err != nil {
		return err
	}
	if err := writePromHistogram(w, "strata_serve_batch_occupancy", "Distinct queries per engine pass.", occ); err != nil {
		return err
	}
	if err := writePromHistogram(w, "strata_serve_push_nanos", "Standing-query push latency, trigger to publication (ns).", push); err != nil {
		return err
	}
	if err := writePromHistogram(w, "strata_serve_window_latency_nanos", "Request time from admission to answer (ns).", win); err != nil {
		return err
	}
	for _, a := range attrs {
		name := "strata_serve_attr_" + a.name + "_nanos"
		if err := writePromHistogram(w, name, "Per-request latency attributed to the "+a.name+" component (ns).", a.h); err != nil {
			return err
		}
	}
	return nil
}

// WriteBuildInfo writes the strata_build_info and strata_uptime_seconds
// gauges in Prometheus text format: build metadata (Go version, VCS revision
// when the binary was built from a checkout) and seconds since start. Both
// the serve daemon's /metrics and the CLI's -debug-addr endpoint expose them,
// so a scrape can always tell which build produced the numbers next to it.
func WriteBuildInfo(w io.Writer, start time.Time) {
	goVersion, revision, modified := "unknown", "", "false"
	if bi, ok := debug.ReadBuildInfo(); ok {
		goVersion = bi.GoVersion
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				revision = kv.Value
			case "vcs.modified":
				modified = kv.Value
			}
		}
	}
	fmt.Fprintf(w, "# HELP strata_build_info Build metadata; the value is always 1.\n# TYPE strata_build_info gauge\n")
	fmt.Fprintf(w, "strata_build_info{go_version=%q,revision=%q,modified=%q} 1\n", goVersion, revision, modified)
	fmt.Fprintf(w, "# HELP strata_uptime_seconds Seconds since the process started serving.\n# TYPE strata_uptime_seconds gauge\n")
	fmt.Fprintf(w, "strata_uptime_seconds %.3f\n", time.Since(start).Seconds())
}

func writePromHistogram(w io.Writer, name, help string, h mapreduce.Histogram) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	cum := int64(0)
	for _, b := range h.Buckets() {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.Le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum(), name, h.Count())
	return err
}
