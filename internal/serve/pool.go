package serve

import (
	"sync"

	"repro/internal/mapreduce"
)

// clusterPool keeps warm per-pass Cluster objects. A pass used to build a
// fresh cluster through the factory every time; pooling them keeps whatever
// the factory wired — tracer, progress tracker, and above all the Executor
// handle — alive across passes. For remote backends (subprocess/tcp worker
// pools) the executor handle is the dialed, handshaken connection pool, so
// reuse is the daemon's warm keep-alive: no re-dial, no re-handshake, no
// codec re-negotiation per pass. Clusters are handed out exclusively (get/put
// pairs), so a pooled cluster is never shared between concurrent passes, and
// the pool never closes an executor — it outlives every pass by design.
type clusterPool struct {
	mu      sync.Mutex
	free    []*mapreduce.Cluster
	slaves  int
	factory func(slaves int) *mapreduce.Cluster
}

func newClusterPool(slaves int, factory func(slaves int) *mapreduce.Cluster) *clusterPool {
	return &clusterPool{slaves: slaves, factory: factory}
}

// get returns a warm cluster, building one through the factory when the pool
// is empty. The caller owns it until put.
func (p *clusterPool) get() *mapreduce.Cluster {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return c
	}
	p.mu.Unlock()
	return p.factory(p.slaves)
}

// put returns a cluster to the pool, clearing the per-pass trace context so
// a later pass cannot inherit a stale trace identity.
func (p *clusterPool) put(c *mapreduce.Cluster) {
	c.TraceContext = nil
	p.mu.Lock()
	p.free = append(p.free, c)
	p.mu.Unlock()
}
