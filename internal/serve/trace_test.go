package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/mapreduce"
)

// tracedPost submits a sample request with an explicit X-Strata-Trace header
// and returns the decoded response plus the echoed trace header.
func tracedPost(t *testing.T, d *testDaemon, trace string, body map[string]any) (*sampleResponse, string) {
	t.Helper()
	raw, _ := json.Marshal(body)
	req, err := http.NewRequest(http.MethodPost, d.ts.URL+"/v1/sample", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if trace != "" {
		req.Header.Set("X-Strata-Trace", trace)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out sampleResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.Header.Get("X-Strata-Trace")
}

// TestRequestTracing locks the serve daemon's request causality contract: a
// client-supplied trace id is echoed in header and body, and the span stream
// links request → batch → pass → engine job into one tree under that id.
func TestRequestTracing(t *testing.T) {
	const trace = "cafe0123aa55aa55"
	pop := gen.Population(1500, 1)
	tr := mapreduce.NewMemTracer()
	d := newTestDaemon(t, Config{
		Population: pop, Slaves: 2, Layout: dataset.Contiguous,
		PartitionSeed: 1, Window: 0, // one pass per query
		Tracer: tr,
	})

	body := map[string]any{"query": "nop >= 50 : 3 ; nop < 50 : 4", "seed": int64(1)}
	resp, echoed := tracedPost(t, d, trace, body)
	if echoed != trace {
		t.Errorf("X-Strata-Trace echoed %q, want %q", echoed, trace)
	}
	if resp.Trace != trace {
		t.Errorf("response body trace %q, want %q", resp.Trace, trace)
	}

	spans := tr.Spans()
	byPhase := map[string][]mapreduce.Span{}
	for _, s := range spans {
		if s.Trace != trace {
			t.Fatalf("span %s/%s carries trace %q, want %q", s.Job, s.Phase, s.Trace, trace)
		}
		byPhase[s.Phase] = append(byPhase[s.Phase], s)
	}
	for _, phase := range []string{"request", "window", "cache", "batch", "pass", "demux", mapreduce.PhaseJob} {
		if len(byPhase[phase]) == 0 {
			t.Fatalf("no %q span; got phases %v", phase, phaseNames(byPhase))
		}
	}

	request := byPhase["request"][0]
	if request.Parent != 0 {
		t.Errorf("request span has parent %d, want root", request.Parent)
	}
	if got := requestSpanID(trace); request.ID != got {
		t.Errorf("request span id %d, want %d", request.ID, got)
	}
	batch := byPhase["batch"][0]
	if batch.Parent != request.ID {
		t.Errorf("batch span parent %d, want request id %d", batch.Parent, request.ID)
	}
	if batch.Run != "b1" {
		t.Errorf("batch run %q, want b1", batch.Run)
	}
	pass := byPhase["pass"][0]
	if pass.Parent != batch.ID {
		t.Errorf("pass span parent %d, want batch id %d", pass.Parent, batch.ID)
	}
	if pass.Run != "b1.p0" {
		t.Errorf("pass run %q, want b1.p0", pass.Run)
	}
	if demux := byPhase["demux"][0]; demux.Parent != pass.ID {
		t.Errorf("demux span parent %d, want pass id %d", demux.Parent, pass.ID)
	}
	for _, job := range byPhase[mapreduce.PhaseJob] {
		if job.Parent != pass.ID {
			t.Errorf("engine job span %q parent %d, want pass id %d", job.Job, job.Parent, pass.ID)
		}
		if job.Run != "b1.p0" {
			t.Errorf("engine job span run %q, want b1.p0", job.Run)
		}
	}
	if win := byPhase["window"][0]; win.Parent != request.ID {
		t.Errorf("window span parent %d, want request id %d", win.Parent, request.ID)
	}

	// A repeat of the same query answers from the cache: its trace gets a
	// request span but opens no new batch.
	tr.Reset()
	resp2, _ := tracedPost(t, d, "feed5678feed5678", body)
	if !resp2.Cached {
		t.Fatalf("second identical query not served from cache")
	}
	for _, s := range tr.Spans() {
		if s.Phase == "batch" || s.Phase == "pass" {
			t.Errorf("cache hit emitted a %q span", s.Phase)
		}
		if s.Trace != "feed5678feed5678" {
			t.Errorf("cache-hit span %s carries trace %q", s.Phase, s.Trace)
		}
	}

	// Attribution histograms populate independently of the tracer.
	snap := d.s.Stats()
	for _, k := range []string{"window", "queue", "pass", "wire"} {
		if _, ok := snap.Attribution[k]; !ok {
			t.Errorf("stats attribution missing %q component: %+v", k, snap.Attribution)
		}
	}
}

func phaseNames(m map[string][]mapreduce.Span) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
