package serve

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/predicate"
	"repro/internal/query"
)

// Query canonicalization. The result cache and the batcher's single-flight
// dedup key queries by *meaning*, not by text: two submissions whose stratum
// conditions select the same individuals with the same frequencies must share
// one cache entry and one slot in a coalesced pass. The canonical form is the
// box decomposition of each stratum condition (predicate.Boxes: the formula's
// DNF over attribute intervals, clipped to the schema's domains), normalized
// and rendered deterministically.
//
// Normalization is union-preserving, so the mapping is sound: equal canonical
// strings imply the conditions select exactly the same tuples over every
// population conforming to the schema. Together with the engine's
// representation-independent execution (stratum predicates only gate mapper
// emission; RNG streams are keyed by task index and stratum index, never by
// the formula text or the query name) this makes answers byte-identical
// across textual variants, which is what lets the cache substitute one
// variant's answer for another. The mapping is not complete — some equivalent
// formula pairs normalize differently and merely miss the cache, which is
// safe.

// canonicalSSD returns the canonical cache/dedup key of an SSD query over the
// schema. The query's name is deliberately excluded: it labels the survey but
// does not change its answer. Stratum order is preserved, because answers are
// indexed by stratum position.
func canonicalSSD(q *query.SSD, schema *dataset.Schema) (string, error) {
	var sb strings.Builder
	for i, s := range q.Strata {
		if i > 0 {
			sb.WriteByte(';')
		}
		boxes, err := predicate.Boxes(s.Cond, schema)
		if err != nil {
			return "", fmt.Errorf("serve: stratum %d: %w", i, err)
		}
		sb.WriteString(canonicalBoxes(boxes, schema))
		fmt.Fprintf(&sb, "=%d", s.Freq)
	}
	return sb.String(), nil
}

// canonicalBoxes normalizes a box union and renders it deterministically:
// full-domain intervals are dropped (an unconstrained attribute carries no
// information), subsumed boxes are removed, and pairs of boxes that differ in
// a single attribute with touching intervals are merged, to a fixpoint. Every
// step preserves the union of the boxes.
func canonicalBoxes(boxes []predicate.Box, schema *dataset.Schema) string {
	norm := make([]predicate.Box, 0, len(boxes))
	for _, b := range boxes {
		norm = append(norm, dropFullDomain(b, schema))
	}
	norm = simplifyUnion(norm, schema)

	if len(norm) == 0 {
		return "∅" // unsatisfiable stratum: matches nothing over this schema
	}
	parts := make([]string, len(norm))
	for i, b := range norm {
		parts[i] = b.String() // sorted by attribute, deterministic
	}
	sort.Strings(parts)
	// Dedup identical renders (identical boxes).
	out := parts[:0]
	for _, p := range parts {
		if len(out) == 0 || out[len(out)-1] != p {
			out = append(out, p)
		}
	}
	return strings.Join(out, "|")
}

// dropFullDomain removes interval constraints that span the attribute's whole
// domain: "nop >= 1" over nop ∈ [1,699] constrains nothing.
func dropFullDomain(b predicate.Box, schema *dataset.Schema) predicate.Box {
	out := make(predicate.Box, len(b))
	for attr, iv := range b {
		if dom, ok := domainOf(schema, attr); ok && iv.Lo <= dom.Lo && iv.Hi >= dom.Hi {
			continue
		}
		out[attr] = iv
	}
	return out
}

func domainOf(schema *dataset.Schema, attr string) (predicate.Interval, bool) {
	idx, ok := schema.Index(attr)
	if !ok {
		return predicate.Interval{}, false
	}
	f := schema.Field(idx)
	return predicate.Interval{Lo: f.Min, Hi: f.Max}, true
}

// simplifyUnion removes boxes contained in another box and merges box pairs
// that differ only in one attribute whose intervals overlap or are adjacent,
// iterating to a fixpoint. Union-preserving by construction.
func simplifyUnion(boxes []predicate.Box, schema *dataset.Schema) []predicate.Box {
	for iter := 0; iter < 100; iter++ {
		changed := false

		// Containment: drop any box whose region lies inside another
		// surviving box. On mutual containment (equal regions) the earlier
		// box survives.
		drop := make([]bool, len(boxes))
		for i, b := range boxes {
			for j, o := range boxes {
				if i == j || drop[j] {
					continue
				}
				if boxContains(o, b, schema) && !(boxContains(b, o, schema) && j > i) {
					drop[i] = true
					changed = true
					break
				}
			}
		}
		kept := make([]predicate.Box, 0, len(boxes))
		for i, b := range boxes {
			if !drop[i] {
				kept = append(kept, b)
			}
		}
		boxes = kept

		// Pairwise 1-D merge.
	merge:
		for i := 0; i < len(boxes); i++ {
			for j := i + 1; j < len(boxes); j++ {
				if m, ok := mergeBoxes(boxes[i], boxes[j], schema); ok {
					boxes[i] = m
					boxes = append(boxes[:j], boxes[j+1:]...)
					changed = true
					break merge
				}
			}
		}
		if !changed {
			return boxes
		}
	}
	return boxes
}

// boxContains reports whether outer's region contains inner's, treating
// absent attributes as the full domain.
func boxContains(outer, inner predicate.Box, schema *dataset.Schema) bool {
	for attr, oiv := range outer {
		iiv, ok := inner[attr]
		if !ok {
			var found bool
			iiv, found = domainOf(schema, attr)
			if !found {
				return false
			}
		}
		if iiv.Lo < oiv.Lo || iiv.Hi > oiv.Hi {
			return false
		}
	}
	return true
}

// mergeBoxes merges two boxes that agree on every attribute except one whose
// intervals overlap or are adjacent ([1,50] + [51,99] → [1,99]). The merged
// box covers exactly the union of the two.
func mergeBoxes(a, b predicate.Box, schema *dataset.Schema) (predicate.Box, bool) {
	attrs := make(map[string]struct{}, len(a)+len(b))
	for k := range a {
		attrs[k] = struct{}{}
	}
	for k := range b {
		attrs[k] = struct{}{}
	}
	diff := ""
	for attr := range attrs {
		aiv, aok := intervalOf(a, attr, schema)
		biv, bok := intervalOf(b, attr, schema)
		if !aok || !bok {
			return nil, false
		}
		if aiv == biv {
			continue
		}
		if diff != "" {
			return nil, false // differ in more than one attribute
		}
		diff = attr
	}
	if diff == "" {
		return a, true // identical boxes
	}
	aiv, _ := intervalOf(a, diff, schema)
	biv, _ := intervalOf(b, diff, schema)
	if aiv.Lo > biv.Lo {
		aiv, biv = biv, aiv
	}
	if biv.Lo > aiv.Hi+1 {
		return nil, false // disjoint with a gap: union is not an interval
	}
	merged := make(predicate.Box, len(a))
	for k, v := range a {
		merged[k] = v
	}
	hi := aiv.Hi
	if biv.Hi > hi {
		hi = biv.Hi
	}
	iv := predicate.Interval{Lo: aiv.Lo, Hi: hi}
	if dom, ok := domainOf(schema, diff); ok && iv.Lo <= dom.Lo && iv.Hi >= dom.Hi {
		delete(merged, diff) // merged back to the full domain
	} else {
		merged[diff] = iv
	}
	return merged, true
}

func intervalOf(b predicate.Box, attr string, schema *dataset.Schema) (predicate.Interval, bool) {
	if iv, ok := b[attr]; ok {
		return iv, true
	}
	return domainOf(schema, attr)
}
