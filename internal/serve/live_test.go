package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/live"
)

// livePopulation builds a small two-field relation (gender 0/1 alternating,
// income) — easy to assert stratum counts against.
func livePopulation(n int) *dataset.Relation {
	r := dataset.NewRelation(dataset.MustSchema(
		dataset.Field{Name: "gender", Min: 0, Max: 1},
		dataset.Field{Name: "income", Min: 0, Max: 1000},
	))
	for id := int64(0); id < int64(n); id++ {
		r.MustAdd(dataset.Tuple{ID: id, Attrs: []int64{(id + 1) % 2, id % 1001}})
	}
	return r
}

func newLiveDaemon(t *testing.T, n int) *testDaemon {
	t.Helper()
	return newTestDaemon(t, Config{
		Population: livePopulation(n), Slaves: 2, Layout: dataset.RoundRobin,
		Window: 0, Live: true, StalenessBound: 8,
	})
}

// postJSON posts a body to a path and decodes the JSON reply into out (when
// non-nil), returning the status code.
func (d *testDaemon) postJSON(t *testing.T, path string, body any, out any) int {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(d.ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestLiveSubscribeMutatePush(t *testing.T) {
	d := newLiveDaemon(t, 200)
	q := "gender = 1 : 5 ; gender = 0 : 5"

	var subResp struct {
		Subscription string `json:"subscription"`
		Version      int64  `json:"version"`
	}
	if code := d.postJSON(t, "/v1/subscribe", map[string]any{
		"query": q, "seed": 2, "every_mutations": 3,
	}, &subResp); code != http.StatusOK {
		t.Fatalf("subscribe: status %d", code)
	}
	if subResp.Subscription == "" {
		t.Fatal("no subscription id")
	}

	// The same query+seed now answers warm from the standing reservoirs.
	ans, code := d.post(t, map[string]any{"query": q, "seed": 2})
	if code != http.StatusOK || !ans.Live {
		t.Fatalf("warm sample: status %d live %v", code, ans != nil && ans.Live)
	}
	if len(ans.LiveMeta) != 2 || ans.LiveMeta[0].Members != 100 || ans.LiveMeta[1].Members != 100 {
		t.Fatalf("warm meta %+v, want 100/100 members", ans.LiveMeta)
	}
	if len(ans.Strata[0].Individuals) != 5 || len(ans.Strata[1].Individuals) != 5 {
		t.Fatalf("warm sample sizes %d/%d, want 5/5", ans.Strata[0].Count, ans.Strata[1].Count)
	}
	// A different seed is an ad-hoc query: engine pass, not the warm path.
	if ans2, _ := d.post(t, map[string]any{"query": q, "seed": 99}); ans2.Live {
		t.Fatal("ad-hoc seed answered from the warm path")
	}
	snap := d.s.Stats()
	if snap.LiveHits != 1 || snap.Subscriptions != 1 {
		t.Fatalf("live hits %d subscriptions %d, want 1/1", snap.LiveHits, snap.Subscriptions)
	}

	// Three mutations reach the every_mutations=3 trigger: a push publishes
	// before /v1/mutate returns.
	var applied live.Applied
	if code := d.postJSON(t, "/v1/mutate", map[string]any{"mutations": []map[string]any{
		{"op": "insert", "id": 9000, "attrs": []int64{1, 10}},
		{"op": "insert", "id": 9001, "attrs": []int64{1, 11}},
		{"op": "delete", "id": 1}, // id 1 is a woman ((1+1)%2 = 0)
	}}, &applied); code != http.StatusOK {
		t.Fatalf("mutate: status %d", code)
	}
	if applied.Applied != 3 || applied.Inserts != 2 || applied.Deletes != 1 {
		t.Fatalf("applied %+v", applied)
	}

	resp, err := http.Get(d.ts.URL + "/v1/next?id=" + subResp.Subscription + "&after=0&timeout_ms=5000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("next: status %d", resp.StatusCode)
	}
	var ev pushEvent
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 1 || ev.MutationSeq != 3 {
		t.Fatalf("push seq %d mutation_seq %d, want 1/3", ev.Seq, ev.MutationSeq)
	}
	if ev.Meta[0].Members != 102 || ev.Meta[1].Members != 99 {
		t.Fatalf("push members %+v, want 102 men / 99 women", ev.Meta)
	}

	// Nothing new: the long-poll times out with 204.
	resp2, err := http.Get(d.ts.URL + "/v1/next?id=" + subResp.Subscription + "&after=1&timeout_ms=100")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("idle next: status %d, want 204", resp2.StatusCode)
	}

	// Unsubscribe; the id stops resolving and a second delete 404s.
	req, _ := http.NewRequest(http.MethodDelete, d.ts.URL+"/v1/subscribe?id="+subResp.Subscription, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("unsubscribe: %v %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double unsubscribe: %v %d, want 404", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// The standing query remains registered: warm sampling still works.
	if ans3, _ := d.post(t, map[string]any{"query": q, "seed": 2}); !ans3.Live {
		t.Fatal("warm path lost after unsubscribe")
	}
}

func TestLiveStalenessRepairOverHTTP(t *testing.T) {
	d := newLiveDaemon(t, 200) // StalenessBound 8
	q := "gender = 1 : 10 ; gender = 0 : 10"
	var subResp struct {
		Subscription string `json:"subscription"`
	}
	if code := d.postJSON(t, "/v1/subscribe", map[string]any{"query": q, "seed": 1}, &subResp); code != http.StatusOK {
		t.Fatalf("subscribe: status %d", code)
	}
	// Delete 40 men (even ids are men): five repairs at bound 8, staleness
	// never past the bound.
	muts := make([]map[string]any, 0, 40)
	for id := int64(0); id < 80; id += 2 {
		muts = append(muts, map[string]any{"op": "delete", "id": id})
	}
	var applied live.Applied
	if code := d.postJSON(t, "/v1/mutate", map[string]any{"mutations": muts}, &applied); code != http.StatusOK {
		t.Fatalf("mutate: status %d", code)
	}
	if applied.Repairs != 5 {
		t.Fatalf("repairs %d, want 5", applied.Repairs)
	}
	snap := d.s.Stats()
	if snap.Live == nil || snap.Live.Repairs != 5 || snap.Live.MaxStaleness > 8 {
		t.Fatalf("live stats %+v, want 5 repairs within bound 8", snap.Live)
	}
	if snap.Pushes == 0 || snap.PushP99Usec < 0 {
		t.Fatalf("pushes %d, want > 0", snap.Pushes)
	}
}

func TestLiveSSEStream(t *testing.T) {
	d := newLiveDaemon(t, 100)
	var subResp struct {
		Subscription string `json:"subscription"`
	}
	if code := d.postJSON(t, "/v1/subscribe", map[string]any{
		"query": "gender = 1 : 4 ; gender = 0 : 4", "seed": 3, "every_mutations": 1,
	}, &subResp); code != http.StatusOK {
		t.Fatalf("subscribe: status %d", code)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, d.ts.URL+"/v1/stream?id="+subResp.Subscription, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	events := make(chan pushEvent, 4)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev pushEvent
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev) == nil {
				events <- ev
			}
		}
		close(events)
	}()

	if code := d.postJSON(t, "/v1/mutate", map[string]any{
		"op": "insert", "id": 7000, "attrs": []int64{1, 5},
	}, nil); code != http.StatusOK {
		t.Fatalf("mutate: status %d", code)
	}
	ev, ok := <-events
	if !ok {
		t.Fatal("stream closed before the push arrived")
	}
	if ev.Seq != 1 || ev.Meta[0].Members != 51 {
		t.Fatalf("push %+v, want seq 1 with 51 men", ev)
	}
}

func TestLiveAdHocCacheInvalidatedByMutation(t *testing.T) {
	d := newLiveDaemon(t, 300)
	q := map[string]any{"query": "income >= 500 : 6 ; income < 500 : 6", "seed": 4}
	first, _ := d.post(t, q)
	second, _ := d.post(t, q)
	if first.Cached || !second.Cached {
		t.Fatalf("cache priming wrong: first %v second %v", first.Cached, second.Cached)
	}
	if code := d.postJSON(t, "/v1/mutate", map[string]any{
		"op": "delete", "id": 7,
	}, nil); code != http.StatusOK {
		t.Fatalf("mutate: status %d", code)
	}
	third, _ := d.post(t, q)
	if third.Cached {
		t.Fatal("mutation did not invalidate the ad-hoc cache")
	}
	if third.Epoch <= second.Epoch {
		t.Fatalf("effective epoch did not advance: %d -> %d", second.Epoch, third.Epoch)
	}
	// The fresh pass must not see the deleted member: sample again with many
	// seeds cheaply by checking population via healthz instead.
	resp, err := http.Get(d.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Population  int   `json:"population"`
		Live        bool  `json:"live"`
		MutationSeq int64 `json:"mutation_seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if !hz.Live || hz.Population != 299 || hz.MutationSeq != 1 {
		t.Fatalf("healthz %+v, want live population 299 at seq 1", hz)
	}
}

func TestEpochReturnsPurgedCount(t *testing.T) {
	pop := gen.Population(500, 1)
	d := newTestDaemon(t, Config{Population: pop, Slaves: 2, Layout: dataset.Contiguous, Window: 0})
	// Two distinct cached answers.
	for _, spec := range []string{"nop >= 100 : 5 ; nop < 100 : 5", "nop >= 200 : 5 ; nop < 200 : 5"} {
		if _, code := d.post(t, map[string]any{"query": spec}); code != http.StatusOK {
			t.Fatalf("sample: status %d", code)
		}
	}
	var bump struct {
		Epoch  int64 `json:"epoch"`
		Purged int64 `json:"purged"`
	}
	if code := d.postJSON(t, "/v1/epoch", map[string]any{}, &bump); code != http.StatusOK {
		t.Fatalf("epoch: status %d", code)
	}
	if bump.Epoch != 2 || bump.Purged != 2 {
		t.Fatalf("bump %+v, want epoch 2 purging 2 entries", bump)
	}
	snap := d.s.Stats()
	if snap.CachePurges != 1 || snap.CachePurged != 2 {
		t.Fatalf("purge counters %d/%d, want 1/2", snap.CachePurges, snap.CachePurged)
	}
}

func TestLiveEndpointsRejectWithoutLiveMode(t *testing.T) {
	pop := gen.Population(200, 1)
	d := newTestDaemon(t, Config{Population: pop, Slaves: 2, Window: 0})
	for _, path := range []string{"/v1/mutate", "/v1/subscribe"} {
		code := d.postJSON(t, path, map[string]any{"op": "delete", "id": 1}, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("%s without -live: status %d, want 400", path, code)
		}
	}
	for _, path := range []string{"/v1/stream", "/v1/next"} {
		resp, err := http.Get(d.ts.URL + path + "?id=x")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s without -live: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestLiveMetricsExposition(t *testing.T) {
	d := newLiveDaemon(t, 100)
	if code := d.postJSON(t, "/v1/subscribe", map[string]any{
		"query": "gender = 1 : 3 ; gender = 0 : 3", "seed": 1,
	}, nil); code != http.StatusOK {
		t.Fatalf("subscribe: status %d", code)
	}
	if code := d.postJSON(t, "/v1/mutate", map[string]any{"op": "delete", "id": 2}, nil); code != http.StatusOK {
		t.Fatalf("mutate: status %d", code)
	}
	resp, err := http.Get(d.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"strata_live_mutations_total{op=\"delete\"} 1",
		"strata_live_population 99",
		"strata_live_staleness_bound 8",
		"strata_serve_subscriptions 1",
		"strata_serve_pushes_total 1",
		"strata_serve_cache_purged_total 0",
		"strata_serve_push_nanos_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("metrics body:\n%s", body)
	}
}
