package serve

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/query"
)

// lineRelation builds a population whose single attribute x equals the tuple
// index, so a contiguous partition gives each split a narrow bounding box —
// the friendly case for box pre-filtering.
func lineRelation(t *testing.T, n int) *dataset.Relation {
	t.Helper()
	schema := dataset.MustSchema(dataset.Field{Name: "x", Min: 0, Max: int64(n - 1), Desc: "index"})
	rel := dataset.NewRelation(schema)
	for i := 0; i < n; i++ {
		rel.MustAdd(dataset.Tuple{ID: int64(i), Attrs: []int64{int64(i)}})
	}
	return rel
}

func TestPruneSkipsIrrelevantSplits(t *testing.T) {
	rel := lineRelation(t, 100)
	schema := rel.Schema()
	splits, err := dataset.Partition(rel, 10, dataset.Contiguous, nil)
	if err != nil {
		t.Fatal(err)
	}
	bounds := boundsOf(splits, schema)

	q, err := query.ParseSSD("Q", "x >= 90 : 5")
	if err != nil {
		t.Fatal(err)
	}
	boxes, ok := queryBoxes([]*query.SSD{q}, schema)
	if !ok {
		t.Fatal("queryBoxes failed")
	}
	pruned, n := pruneSplits(splits, bounds, boxes, schema)
	if n != 9 {
		t.Fatalf("pruned %d splits, want 9 (only x∈[90,99] is relevant)", n)
	}
	if pruned[9] == nil || len(pruned[9]) != 10 {
		t.Fatal("the relevant split was pruned")
	}
	for i := 0; i < 9; i++ {
		if pruned[i] != nil {
			t.Errorf("split %d should be pruned", i)
		}
	}
	if len(pruned) != len(splits) {
		t.Errorf("pruning changed the split count: %d vs %d (must be index-preserving)", len(pruned), len(splits))
	}
}

// TestPrunePreservesAnswerBytes: a daemon with pruning on returns exactly
// the same sample as one with pruning off, because pruning is
// index-preserving and only drops splits that cannot contribute.
func TestPrunePreservesAnswerBytes(t *testing.T) {
	rel := lineRelation(t, 200)
	run := func(noPrune bool) ([][]string, int64) {
		d := newTestDaemon(t, Config{
			Population: rel, Slaves: 5, Layout: dataset.Contiguous,
			PartitionSeed: 3, Window: 0, NoPrune: noPrune,
		})
		r, code := d.post(t, map[string]any{"query": "x >= 150 : 7 ; x < 20 : 4", "seed": 3})
		if code != 200 {
			t.Fatalf("status %d", code)
		}
		return respIndividuals(r), d.s.Stats().PrunedSplits
	}
	withPrune, prunedOn := run(false)
	withoutPrune, prunedOff := run(true)
	if prunedOn == 0 {
		t.Error("pruning enabled but no splits pruned on a contiguous line population")
	}
	if prunedOff != 0 {
		t.Errorf("NoPrune daemon pruned %d splits", prunedOff)
	}
	if !reflect.DeepEqual(withPrune, withoutPrune) {
		t.Errorf("pruned answer differs from unpruned:\npruned   %v\nunpruned %v", withPrune, withoutPrune)
	}
}

// TestPruneAgainstAuthorPopulation: pruning must never change answers on the
// realistic population either, where bounding boxes are wide and little or
// nothing is prunable.
func TestPruneAgainstAuthorPopulation(t *testing.T) {
	pop := gen.Population(1200, 1)
	answers := make([][][]string, 2)
	for i, noPrune := range []bool{false, true} {
		d := newTestDaemon(t, Config{
			Population: pop, Slaves: 3, Layout: dataset.Contiguous,
			PartitionSeed: 1, Window: time.Millisecond, NoPrune: noPrune,
		})
		r, code := d.post(t, map[string]any{"query": "nop >= 100 : 5 ; nop < 100 : 10", "seed": 1})
		if code != 200 {
			t.Fatalf("status %d", code)
		}
		answers[i] = respIndividuals(r)
	}
	if !reflect.DeepEqual(answers[0], answers[1]) {
		t.Error("pruned answer differs from unpruned on the author population")
	}
}
