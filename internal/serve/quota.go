package serve

import (
	"sync"
	"time"
)

// quotaTable enforces per-tenant admission quotas with one token bucket per
// tenant: a bucket holds up to burst tokens, refills at rate tokens/second,
// and every admitted query spends one. A zero rate disables quotas entirely.
//
// Buckets are created on first sight of a tenant, so the table's memory is
// proportional to the number of distinct tenants; maxTenants caps that
// against unbounded tenant-name cardinality (beyond the cap, unknown tenants
// share one overflow bucket, which fails closed under pressure rather than
// open).
type quotaTable struct {
	rate  float64 // tokens per second; <= 0 disables
	burst float64

	mu      sync.Mutex
	buckets map[string]*tokenBucket

	now func() time.Time // injectable for tests
}

const maxTenants = 10000

// overflowTenant is the shared bucket used once maxTenants distinct tenants
// have been seen.
const overflowTenant = "\x00overflow"

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newQuotaTable(rate float64, burst int) *quotaTable {
	if burst < 1 {
		burst = 1
	}
	return &quotaTable{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*tokenBucket),
		now:     time.Now,
	}
}

// allow spends one token from the tenant's bucket, reporting whether the
// query is admitted.
func (q *quotaTable) allow(tenant string) bool {
	if q == nil || q.rate <= 0 {
		return true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[tenant]
	if !ok {
		if len(q.buckets) >= maxTenants {
			tenant = overflowTenant
			b = q.buckets[tenant]
		}
		if b == nil {
			b = &tokenBucket{tokens: q.burst, last: q.now()}
			q.buckets[tenant] = b
		}
	}
	now := q.now()
	b.tokens += now.Sub(b.last).Seconds() * q.rate
	b.last = now
	if b.tokens > q.burst {
		b.tokens = q.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
