package serve

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/query"
)

// canonOf parses the text query and canonicalizes it over the author schema.
func canonOf(t *testing.T, spec string) string {
	t.Helper()
	q, err := query.ParseSSD("Q", spec)
	if err != nil {
		t.Fatalf("parsing %q: %v", spec, err)
	}
	c, err := canonicalSSD(q, gen.AuthorSchema())
	if err != nil {
		t.Fatalf("canonicalizing %q: %v", spec, err)
	}
	return c
}

func TestCanonicalEquivalentForms(t *testing.T) {
	// Each group lists textually different but semantically identical
	// queries over the author schema (nop ∈ [1,699], ayp ∈ [0,40]); every
	// member must share one canonical form.
	groups := [][]string{
		// Negation normalization.
		{"nop >= 100 : 5", "not (nop < 100) : 5", "not nop < 100 : 5"},
		// Conjunct order and redundant full-domain bounds.
		{
			"nop >= 100 and ayp < 10 : 7",
			"ayp < 10 and nop >= 100 : 7",
			"ayp < 10 and nop >= 100 and nop >= 1 : 7",
		},
		// Subsumed disjunct.
		{"nop >= 50 : 3", "nop >= 50 or nop >= 100 : 3", "nop >= 100 or nop >= 50 : 3"},
		// Adjacent intervals merge; tautology collapses to the full domain.
		{"nop >= 1 : 2", "nop <= 50 or nop > 50 : 2", "nop < 10 or nop >= 10 : 2"},
		// Multi-stratum query, variant conditions per stratum.
		{
			"nop >= 100 : 5 ; nop < 100 : 10",
			"not (nop < 100) : 5 ; nop <= 99 : 10",
		},
	}
	for gi, g := range groups {
		want := canonOf(t, g[0])
		for _, spec := range g[1:] {
			if got := canonOf(t, spec); got != want {
				t.Errorf("group %d: canonical(%q) = %q, want %q (from %q)", gi, spec, got, want, g[0])
			}
		}
	}
}

func TestCanonicalDistinguishes(t *testing.T) {
	// Pairs that must NOT share a canonical form: different selections,
	// different frequencies, or different stratum order.
	pairs := [][2]string{
		{"nop >= 100 : 5", "nop >= 101 : 5"},
		{"nop >= 100 : 5", "nop >= 100 : 6"},
		{"nop >= 100 : 5 ; nop < 100 : 10", "nop < 100 : 10 ; nop >= 100 : 5"},
		{"nop >= 100 : 5", "ayp >= 10 : 5"},
	}
	for _, p := range pairs {
		a, b := canonOf(t, p[0]), canonOf(t, p[1])
		if a == b {
			t.Errorf("canonical(%q) == canonical(%q) == %q; want distinct", p[0], p[1], a)
		}
	}
}

func TestCanonicalIgnoresName(t *testing.T) {
	schema := gen.AuthorSchema()
	q1, _ := query.ParseSSD("Alpha", "nop >= 100 : 5")
	q2, _ := query.ParseSSD("Beta", "nop >= 100 : 5")
	c1, err := canonicalSSD(q1, schema)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := canonicalSSD(q2, schema)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("canonical form depends on query name: %q vs %q", c1, c2)
	}
}

func TestCanonicalUnsatisfiableStratum(t *testing.T) {
	// nop > 699 is empty over the schema's domain [1,699].
	got := canonOf(t, "nop > 699 : 5")
	if got != "∅=5" {
		t.Errorf("unsatisfiable stratum canonicalized to %q, want ∅=5", got)
	}
}
