package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/gen"
)

// TestConcurrentPassesByteIdentical is the determinism contract of concurrent
// pass scheduling: the same batch of queries answered under -max-passes 1
// (fully serial) and -max-passes 8 (seed groups racing through the semaphore)
// produces byte-identical answer sections per query. Concurrency may reorder
// which pass finishes first, but each pass owns its seed, its query order and
// its cluster, so the sampled individuals cannot change.
func TestConcurrentPassesByteIdentical(t *testing.T) {
	const (
		popN  = 3000
		seedA = int64(3)
		seedB = int64(11)
	)
	specs := []string{
		"nop >= 100 : 3",
		"nop >= 50 : 4",
		"ayp >= 5 : 2",
		"nop < 50 : 6",
	}
	pop := gen.Population(popN, 1)

	// collect answers one daemon's worth at a time: 8 distinct entries
	// (4 specs x 2 seeds) submitted asynchronously IN ORDER — batch arrival
	// order fixes the MQE query indexes, so it must be identical across the
	// two daemons for the comparison to isolate the scheduler — into one
	// long-window batch that MaxBatch=8 fires as the last entry arrives. Two
	// seed groups -> two passes, concurrent when the semaphore allows it.
	collect := func(maxPasses int) map[string][]byte {
		d := newTestDaemon(t, Config{
			Population: pop, Slaves: 2, Layout: dataset.Contiguous,
			PartitionSeed: 1, Window: 30 * time.Second, MaxBatch: 8,
			MaxPasses: maxPasses,
		})
		type pending struct {
			key    string
			ticket string
		}
		var tickets []pending
		for _, seed := range []int64{seedA, seedB} {
			for _, spec := range specs {
				raw, _ := json.Marshal(map[string]any{"query": spec, "seed": seed, "nocache": true, "wait": false})
				resp, err := http.Post(d.ts.URL+"/v1/sample", "application/json", bytes.NewReader(raw))
				if err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode != http.StatusAccepted {
					t.Fatalf("seed %d %q: status %d, want 202", seed, spec, resp.StatusCode)
				}
				var sub struct {
					ID string `json:"id"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				tickets = append(tickets, pending{key: fmt.Sprintf("%d|%s", seed, spec), ticket: sub.ID})
			}
		}
		answers := make(map[string][]byte)
		deadline := time.Now().Add(10 * time.Second)
		for _, p := range tickets {
			for {
				resp, err := http.Get(d.ts.URL + "/v1/result?id=" + p.ticket)
				if err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode == http.StatusOK {
					var out sampleResponse
					if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
						t.Fatal(err)
					}
					resp.Body.Close()
					raw, err := json.Marshal(out.Strata)
					if err != nil {
						t.Fatal(err)
					}
					answers[p.key] = raw
					break
				}
				resp.Body.Close()
				if time.Now().After(deadline) {
					t.Fatalf("result for %s never became ready", p.key)
				}
				time.Sleep(time.Millisecond)
			}
		}
		if snap := d.s.Stats(); snap.Passes != 2 {
			t.Errorf("max-passes %d: passes = %d, want 2 (one per seed group)", maxPasses, snap.Passes)
		}
		return answers
	}

	serial := collect(1)
	concurrent := collect(8)
	if len(serial) != len(specs)*2 || len(concurrent) != len(serial) {
		t.Fatalf("collected %d serial vs %d concurrent answers, want %d", len(serial), len(concurrent), len(specs)*2)
	}
	for k, want := range serial {
		if got := concurrent[k]; string(got) != string(want) {
			t.Errorf("%s: concurrent answer differs from serial\nserial     %s\nconcurrent %s", k, want, got)
		}
	}
}

// TestOverlappingBatchesLiveMutationsRace stress-tests the warm-path daemon
// under the race detector: short-window batches overlap through the pass
// semaphore while a mutator rewrites the live population underneath them.
// Every request must succeed; the race detector checks the rest (pass reads
// under AcquireSplits vs. Apply writes, pool handoff, inflight accounting).
func TestOverlappingBatchesLiveMutationsRace(t *testing.T) {
	d := newTestDaemon(t, Config{
		Population: livePopulation(500), Slaves: 2, Layout: dataset.RoundRobin,
		Window: time.Millisecond, MaxBatch: 4, MaxPasses: 4,
		AdaptiveWindow: true, Live: true, StalenessBound: 8,
	})
	// A standing query keeps the subscriber-maintenance path in the mix.
	if code := d.postJSON(t, "/v1/subscribe", map[string]any{
		"query": "gender = 1 : 5 ; gender = 0 : 5", "seed": 2,
	}, nil); code != http.StatusOK {
		t.Fatalf("subscribe: status %d", code)
	}

	specs := []string{
		"gender = 1 : 4 ; gender = 0 : 4",
		"income >= 500 : 3 ; income < 500 : 3",
	}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				spec := specs[(c+i)%len(specs)]
				if _, code := d.post(t, map[string]any{"query": spec, "seed": int64(1 + i%3), "nocache": true}); code != http.StatusOK {
					t.Errorf("client %d query %d: status %d", c, i, code)
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			id := int64(10000 + i*2)
			muts := []map[string]any{
				{"op": "insert", "id": id, "attrs": []int64{id % 2, id % 1001}},
				{"op": "insert", "id": id + 1, "attrs": []int64{(id + 1) % 2, (id + 1) % 1001}},
				{"op": "delete", "id": int64(i * 7 % 500)},
				{"op": "update", "id": id, "attrs": []int64{id % 2, (id + 13) % 1001}},
			}
			if code := d.postJSON(t, "/v1/mutate", map[string]any{"mutations": muts}, nil); code != http.StatusOK {
				t.Errorf("mutation batch %d: status %d", i, code)
				return
			}
		}
	}()
	wg.Wait()

	// An epoch bump after the churn exercises live-split rebalancing too.
	resp, err := http.Post(d.ts.URL+"/v1/epoch", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out["rebalanced"] == 0 {
		t.Error("epoch bump after live churn rebalanced nothing")
	}
	if _, code := d.post(t, map[string]any{"query": specs[0], "seed": 5, "nocache": true}); code != http.StatusOK {
		t.Errorf("post-rebalance query: status %d", code)
	}
}
