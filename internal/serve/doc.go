// Package serve implements the resident sampling daemon behind
// "strata serve": it loads a population once, keeps it partitioned in
// memory, and answers stratified-sampling (SSD) queries from many
// concurrent clients over HTTP.
//
// The core idea is that the paper's own multi-query machinery is a batcher.
// MR-MQE (Section 5.1, internal/stratified) answers a whole set of SSD
// queries in one MapReduce pass over the population, so the daemon's
// admission control simply holds arriving queries for a short window (or
// until a size cap) and lowers the whole batch onto a single pass, then
// demultiplexes the per-(query, stratum) samples back to their clients. A
// batch with one distinct query runs as MR-SQE — the |Q|=1 degenerate of
// MR-MQE — which keeps its answer byte-identical to the one-shot
// "strata sample" CLI path for matching parameters.
//
// Around the batcher sit four service layers:
//
//   - Canonicalization (canon.go): queries are keyed by the box
//     decomposition of their stratum conditions (internal/predicate), so
//     textually different but semantically identical submissions share one
//     cache entry and one slot in a coalesced pass.
//   - Result cache (cache.go): an LRU keyed on (canonical query, seed,
//     population epoch). Bumping the epoch — the population-mutation
//     boundary — invalidates every prior entry.
//   - Pre-filtering (prune.go): per-split bounding boxes let a pass skip
//     splits that provably contain no tuple any batched stratum can match;
//     pruning is index-preserving, so answers are byte-identical with it on
//     or off.
//   - Quotas (quota.go): per-tenant token buckets reject over-quota
//     submissions with 429 before they reach the batcher.
//
// Observability rides the existing stack: each pass runs on a cluster built
// by the configured factory (the CLI injects its -trace/-progress-wired
// one), pass metrics accumulate behind /metrics in Prometheus text form,
// and service counters — batch occupancy, window latency, cache hit rate,
// per-tenant rejections, pruned splits — are exported both there and as
// JSON at /v1/stats. DESIGN.md §12 documents the request lifecycle, the
// window state machine, and the fallback matrix.
package serve
