package serve

import (
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/live"
	"repro/internal/mapreduce"
	"repro/internal/query"
)

// The live-mode HTTP surface: mutation ingest and standing-query
// subscriptions. A subscription registers an SSD query with the live
// population (which maintains per-stratum reservoirs incrementally) and a
// push trigger — "every N mutations that touch the query" and/or "every T
// seconds". Pushes are delivered over SSE (GET /v1/stream) or long-poll
// (GET /v1/next); a slow consumer only ever sees the latest event
// (latest-wins), never an unbounded backlog.

// liveKey names a standing query inside the live population: the canonical
// query form plus the sampling seed, the same identity the result cache and
// single-flight batching use for ad-hoc queries.
func liveKey(canon string, seed int64) string {
	return fmt.Sprintf("%s|seed=%d", canon, seed)
}

// wireMutation is one mutation in the POST /v1/mutate body.
type wireMutation struct {
	Op    string  `json:"op"`              // insert, delete, update
	ID    int64   `json:"id"`              // required for delete; the tuple id otherwise
	Name  string  `json:"name,omitempty"`  // optional label (insert/update)
	Attrs []int64 `json:"attrs,omitempty"` // schema-ordered attributes (insert/update)
}

// mutateRequest is the POST /v1/mutate body: a single mutation's fields
// inline, or a batch under "mutations".
type mutateRequest struct {
	wireMutation
	Mutations []wireMutation `json:"mutations,omitempty"`
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.lp == nil {
		httpError(w, http.StatusBadRequest, "live mode disabled (start the daemon with -live)")
		return
	}
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req mutateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	wire := req.Mutations
	if len(wire) == 0 {
		if req.Op == "" {
			httpError(w, http.StatusBadRequest, `missing mutations: set "op" or "mutations"`)
			return
		}
		wire = []wireMutation{req.wireMutation}
	}
	muts := make([]live.Mutation, len(wire))
	for i, m := range wire {
		op, err := live.ParseOp(m.Op)
		if err != nil {
			httpError(w, http.StatusBadRequest, "mutation %d: %v", i, err)
			return
		}
		muts[i] = live.Mutation{
			Op:    op,
			ID:    m.ID,
			Tuple: dataset.Tuple{ID: m.ID, Name: m.Name, Attrs: m.Attrs},
		}
	}
	trace := r.Header.Get("X-Strata-Trace")
	if trace == "" {
		trace = newTraceID()
	}
	w.Header().Set("X-Strata-Trace", trace)

	res := s.lp.Apply(muts)
	// The batch is applied; subscriptions whose mutation trigger is now due
	// push before the response goes out, so a client that mutates and then
	// long-polls observes its own write.
	s.hub.kick()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// subscribeRequest is the POST /v1/subscribe body: a query (same forms as
// /v1/sample) plus the push trigger. EveryMutations counts mutations that
// touched the query's strata; EverySeconds pushes on a timer when anything
// changed since the last push. Both zero defaults to EveryMutations=1.
type subscribeRequest struct {
	sampleRequest
	EveryMutations int64   `json:"every_mutations,omitempty"`
	EverySeconds   float64 `json:"every_seconds,omitempty"`
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if s.lp == nil {
		httpError(w, http.StatusBadRequest, "live mode disabled (start the daemon with -live)")
		return
	}
	switch r.Method {
	case http.MethodDelete:
		id := r.URL.Query().Get("id")
		if id == "" {
			httpError(w, http.StatusBadRequest, "missing id")
			return
		}
		if !s.hub.unsubscribe(id) {
			httpError(w, http.StatusNotFound, "unknown subscription %q", id)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"unsubscribed": id})
		return
	case http.MethodPost:
	default:
		httpError(w, http.StatusMethodNotAllowed, "POST or DELETE only")
		return
	}
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req subscribeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	q, err := s.buildQuery(&req.sampleRequest)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	seed := int64(1)
	if req.Seed != nil {
		seed = *req.Seed
	}
	canon, err := canonicalSSD(q, s.schema)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.EveryMutations < 0 || req.EverySeconds < 0 {
		httpError(w, http.StatusBadRequest, "negative push trigger")
		return
	}
	if req.EveryMutations == 0 && req.EverySeconds == 0 {
		req.EveryMutations = 1
	}
	key := liveKey(canon, seed)
	if _, err := s.lp.Register(key, q, seed); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	trace := r.Header.Get("X-Strata-Trace")
	if trace == "" {
		trace = newTraceID()
	}
	w.Header().Set("X-Strata-Trace", trace)

	sub, err := s.hub.add(key, q, seed, trace, req.EveryMutations, time.Duration(req.EverySeconds*float64(time.Second)))
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"subscription":    sub.id,
		"trace":           trace,
		"every_mutations": req.EveryMutations,
		"every_seconds":   req.EverySeconds,
		"version":         s.lp.QueryVersion(key),
	})
}

// handleStream serves a subscription as Server-Sent Events: each push is one
// "data:" frame holding a pushEvent; idle periods carry comment heartbeats so
// intermediaries keep the connection alive. ?after= resumes past a known push
// sequence (default 0: the latest unseen push arrives immediately).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if s.lp == nil {
		httpError(w, http.StatusBadRequest, "live mode disabled (start the daemon with -live)")
		return
	}
	sub, after, ok := s.hub.lookup(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Strata-Trace", sub.trace)
	w.WriteHeader(http.StatusOK)
	if canFlush {
		fl.Flush()
	}
	enc := json.NewEncoder(w)
	for {
		ev, status := sub.wait(r.Context(), after, 15*time.Second)
		switch status {
		case waitEvent:
			if _, err := fmt.Fprintf(w, "data: "); err != nil {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "\n"); err != nil {
				return
			}
			after = ev.Seq
		case waitTimeout:
			// Heartbeat comment; also detects a dead client via write error.
			if _, err := fmt.Fprintf(w, ": heartbeat\n\n"); err != nil {
				return
			}
		case waitClosed:
			fmt.Fprintf(w, "event: close\ndata: {}\n\n")
			if canFlush {
				fl.Flush()
			}
			return
		case waitGone:
			return
		}
		if canFlush {
			fl.Flush()
		}
	}
}

// handleNext long-polls one push: it returns the first push with sequence
// greater than ?after= (default 0), waiting up to ?timeout_ms= (default
// 30000) before answering 204 No Content. A closed subscription answers 410.
func (s *Server) handleNext(w http.ResponseWriter, r *http.Request) {
	if s.lp == nil {
		httpError(w, http.StatusBadRequest, "live mode disabled (start the daemon with -live)")
		return
	}
	sub, after, ok := s.hub.lookup(w, r)
	if !ok {
		return
	}
	timeout := 30 * time.Second
	if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
		var v int64
		if _, err := fmt.Sscanf(ms, "%d", &v); err != nil || v <= 0 || v > 120_000 {
			httpError(w, http.StatusBadRequest, "bad timeout_ms %q", ms)
			return
		}
		timeout = time.Duration(v) * time.Millisecond
	}
	w.Header().Set("X-Strata-Trace", sub.trace)
	ev, status := sub.wait(r.Context(), after, timeout)
	switch status {
	case waitEvent:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ev)
	case waitClosed:
		httpError(w, http.StatusGone, "subscription closed")
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

// pushEvent is one standing-query push, as delivered on the wire.
type pushEvent struct {
	Subscription string             `json:"subscription"`
	Seq          int64              `json:"seq"`     // push sequence, per subscription
	Version      int64              `json:"version"` // standing-query version at snapshot
	MutationSeq  int64              `json:"mutation_seq"`
	Trace        string             `json:"trace,omitempty"`
	Name         string             `json:"name"`
	Seed         int64              `json:"seed"`
	Strata       []stratumResult    `json:"strata"`
	Meta         []live.StratumMeta `json:"meta"`
}

// subscription is one registered push consumer over a standing query.
type subscription struct {
	id        string
	key       string
	q         *query.SSD
	seed      int64
	trace     string
	everyMuts int64
	every     time.Duration

	mu      sync.Mutex
	lastVer int64 // standing-query version at the last push
	seq     int64
	latest  *pushEvent
	wake    chan struct{} // closed and replaced on each publish (and on close)
	stop    chan struct{} // closes the timer goroutine
	closed  bool
}

type waitStatus int

const (
	waitEvent   waitStatus = iota // a push newer than `after` is available
	waitTimeout                   // nothing new within the timeout
	waitClosed                    // the subscription was closed
	waitGone                      // the client went away
)

// wait blocks until a push with Seq > after exists, the timeout elapses, the
// subscription closes, or the request context ends.
func (sub *subscription) wait(ctx interface{ Done() <-chan struct{} }, after int64, timeout time.Duration) (*pushEvent, waitStatus) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		sub.mu.Lock()
		ev, wake, closed := sub.latest, sub.wake, sub.closed
		sub.mu.Unlock()
		if ev != nil && ev.Seq > after {
			return ev, waitEvent
		}
		if closed {
			return nil, waitClosed
		}
		select {
		case <-wake:
		case <-deadline.C:
			return nil, waitTimeout
		case <-ctx.Done():
			return nil, waitGone
		}
	}
}

// subHub owns the daemon's subscriptions: registration, mutation-triggered
// pushes (kick), timer-triggered pushes, and teardown on drain.
type subHub struct {
	s *Server

	mu     sync.Mutex
	subs   map[string]*subscription
	closed bool
}

const maxSubscriptions = 1024

func newSubHub(s *Server) *subHub {
	return &subHub{s: s, subs: make(map[string]*subscription)}
}

func (h *subHub) add(key string, q *query.SSD, seed int64, trace string, everyMuts int64, every time.Duration) (*subscription, error) {
	buf := make([]byte, 8)
	if _, err := cryptorand.Read(buf); err != nil {
		return nil, err
	}
	sub := &subscription{
		id: hex.EncodeToString(buf), key: key, q: q, seed: seed, trace: trace,
		everyMuts: everyMuts, every: every,
		lastVer: h.s.lp.QueryVersion(key),
		wake:    make(chan struct{}),
		stop:    make(chan struct{}),
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, fmt.Errorf("draining")
	}
	if len(h.subs) >= maxSubscriptions {
		h.mu.Unlock()
		return nil, fmt.Errorf("too many subscriptions (%d)", maxSubscriptions)
	}
	h.subs[sub.id] = sub
	h.mu.Unlock()
	h.s.stats.addSubscriber(1)
	if sub.every > 0 {
		go h.timerLoop(sub)
	}
	return sub, nil
}

// lookup resolves the ?id= and ?after= query params of a delivery endpoint,
// writing the error response itself when they don't resolve.
func (h *subHub) lookup(w http.ResponseWriter, r *http.Request) (*subscription, int64, bool) {
	id := r.URL.Query().Get("id")
	if id == "" {
		httpError(w, http.StatusBadRequest, "missing id")
		return nil, 0, false
	}
	h.mu.Lock()
	sub, ok := h.subs[id]
	h.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown subscription %q", id)
		return nil, 0, false
	}
	after := int64(0)
	if a := r.URL.Query().Get("after"); a != "" {
		if _, err := fmt.Sscanf(a, "%d", &after); err != nil {
			httpError(w, http.StatusBadRequest, "bad after %q", a)
			return nil, 0, false
		}
	}
	return sub, after, true
}

func (h *subHub) unsubscribe(id string) bool {
	h.mu.Lock()
	sub, ok := h.subs[id]
	delete(h.subs, id)
	h.mu.Unlock()
	if !ok {
		return false
	}
	h.closeSub(sub)
	h.s.stats.addSubscriber(-1)
	// The standing query itself stays registered: other subscribers (and warm
	// /v1/sample hits) may share it, and keeping it maintained is O(sample)
	// per mutation.
	return true
}

// closeSub marks the subscription closed and releases every waiter.
func (h *subHub) closeSub(sub *subscription) {
	sub.mu.Lock()
	if !sub.closed {
		sub.closed = true
		close(sub.wake)
		sub.wake = make(chan struct{})
		close(sub.stop)
	}
	sub.mu.Unlock()
}

// close tears down every subscription (drain).
func (h *subHub) close() {
	h.mu.Lock()
	h.closed = true
	subs := make([]*subscription, 0, len(h.subs))
	for _, sub := range h.subs {
		subs = append(subs, sub)
	}
	h.subs = make(map[string]*subscription)
	h.mu.Unlock()
	for _, sub := range subs {
		h.closeSub(sub)
		h.s.stats.addSubscriber(-1)
	}
}

// kick runs after every applied mutation batch: each subscription whose
// mutation trigger is due publishes a fresh snapshot.
func (h *subHub) kick() {
	h.mu.Lock()
	subs := make([]*subscription, 0, len(h.subs))
	for _, sub := range h.subs {
		subs = append(subs, sub)
	}
	h.mu.Unlock()
	for _, sub := range subs {
		h.maybePush(sub, false)
	}
}

// timerLoop publishes on the subscription's period whenever the query changed
// since the last push.
func (h *subHub) timerLoop(sub *subscription) {
	t := time.NewTicker(sub.every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			h.maybePush(sub, true)
		case <-sub.stop:
			return
		}
	}
}

// maybePush publishes a snapshot when the subscription's trigger is due:
// timed pushes fire on any change since the last push, mutation-triggered
// pushes once the standing query's version advanced by everyMuts. Publication
// is latest-wins: the new event replaces the previous one and every waiter is
// woken. The push latency recorded is trigger-to-publication.
func (h *subHub) maybePush(sub *subscription, timed bool) {
	start := time.Now()
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		return
	}
	ver := h.s.lp.QueryVersion(sub.key)
	if ver <= sub.lastVer {
		return
	}
	if !timed && (sub.everyMuts <= 0 || ver-sub.lastVer < sub.everyMuts) {
		return
	}
	ans, metas, ver, ok := h.s.lp.Snapshot(sub.key)
	if !ok { // standing query vanished (not expected in practice)
		return
	}
	sub.seq++
	sub.latest = &pushEvent{
		Subscription: sub.id,
		Seq:          sub.seq,
		Version:      ver,
		MutationSeq:  h.s.lp.Seq(),
		Trace:        sub.trace,
		Name:         sub.q.Name,
		Seed:         sub.seed,
		Strata:       renderStrata(sub.q, ans),
		Meta:         metas,
	}
	sub.lastVer = ver
	close(sub.wake)
	sub.wake = make(chan struct{})
	h.s.stats.observePush(time.Since(start))
	h.emitPushTrace(sub, start)
}

// emitPushTrace emits one span per push under the subscription's trace — the
// same threading /v1/sample requests get, so a merged trace shows pushes next
// to the mutations that caused them.
func (h *subHub) emitPushTrace(sub *subscription, start time.Time) {
	tr := h.s.cfg.Tracer
	if tr == nil || !tr.Enabled() || sub.trace == "" {
		return
	}
	run := fmt.Sprintf("push%d", sub.seq)
	tr.Emit(mapreduce.Span{
		Job: "serve", Phase: "push", Trace: sub.trace, Run: run,
		ID:     mapreduce.SpanID(sub.trace, run, "serve", "push", "0", "0"),
		Parent: requestSpanID(sub.trace),
		Start:  start.Sub(h.s.started),
		Wall:   time.Since(start),
	})
}
