package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/stats"
)

func TestDistributionQuantileInvertsCDF(t *testing.T) {
	dagum := Dagum{K: 0.68, Alpha: 0.52, Beta: 0.89, Gamma: 1}
	burr := Burr{K: 0.47, Alpha: 2.96, Beta: 3.05, Gamma: 0}
	for _, u := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		// Dagum CDF at quantile must return u.
		x := dagum.Quantile(u)
		cdf := math.Pow(1+math.Pow((x-dagum.Gamma)/dagum.Beta, -dagum.Alpha), -dagum.K)
		if math.Abs(cdf-u) > 1e-9 {
			t.Fatalf("Dagum CDF(Q(%g)) = %g", u, cdf)
		}
		y := burr.Quantile(u)
		bcdf := 1 - math.Pow(1+math.Pow((y-burr.Gamma)/burr.Beta, burr.Alpha), -burr.K)
		if math.Abs(bcdf-u) > 1e-9 {
			t.Fatalf("Burr CDF(Q(%g)) = %g", u, bcdf)
		}
	}
}

func TestPowerFuncRange(t *testing.T) {
	p := PowerFunc{Alpha: 7.75, A: 1936, B: 2013}
	rng := rand.New(rand.NewSource(1))
	var below2000 int
	for i := 0; i < 5000; i++ {
		x := p.Sample(rng)
		if x < 1936 || x > 2013 {
			t.Fatalf("power sample %g out of range", x)
		}
		if x < 2000 {
			below2000++
		}
	}
	// α = 7.75 skews strongly recent: P(x < 2000) = ((2000-1936)/77)^7.75 ≈ 0.24.
	frac := float64(below2000) / 5000
	if frac < 0.15 || frac > 0.33 {
		t.Fatalf("P(year<2000) = %.3f, want ≈ 0.24", frac)
	}
}

// TestQuickQuantileMonotone: all quantile functions are monotone in u.
func TestQuickQuantileMonotone(t *testing.T) {
	dists := []Distribution{
		Dagum{K: 0.24, Alpha: 0.87, Beta: 0.66, Gamma: 1},
		Burr{K: 0.32, Alpha: 2.92, Beta: 2.83, Gamma: 0},
		PowerFunc{Alpha: 11.83, A: 1936, B: 2013},
		UniformInt{Min: 0, Max: 100},
	}
	f := func(a, b float64) bool {
		u1 := math.Abs(math.Mod(a, 1))
		u2 := math.Abs(math.Mod(b, 1))
		if u1 == 0 || u2 == 0 || u1 == u2 {
			return true
		}
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		for _, d := range dists {
			if d.Quantile(u1) > d.Quantile(u2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestClampInt(t *testing.T) {
	if ClampInt(5.4, 0, 10) != 5 || ClampInt(5.6, 0, 10) != 6 {
		t.Fatal("rounding wrong")
	}
	if ClampInt(-3, 0, 10) != 0 || ClampInt(99, 0, 10) != 10 {
		t.Fatal("clamping wrong")
	}
}

func TestPopulationValidAndDeterministic(t *testing.T) {
	p1 := Population(500, 42)
	p2 := Population(500, 42)
	if p1.Len() != 500 {
		t.Fatalf("Len = %d", p1.Len())
	}
	for i := 0; i < p1.Len(); i++ {
		a, b := p1.Tuple(i), p2.Tuple(i)
		if a.ID != b.ID {
			t.Fatal("IDs differ across identical seeds")
		}
		for j := range a.Attrs {
			if a.Attrs[j] != b.Attrs[j] {
				t.Fatal("attributes differ across identical seeds")
			}
		}
	}
	p3 := Population(500, 43)
	same := true
	for i := 0; i < 500 && same; i++ {
		for j := range p1.Tuple(i).Attrs {
			if p1.Tuple(i).Attrs[j] != p3.Tuple(i).Attrs[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical populations")
	}
}

func TestPopulationYearsConsistent(t *testing.T) {
	p := Population(2000, 7)
	schema := p.Schema()
	fy, _ := schema.Index("fy")
	ly, _ := schema.Index("ly")
	for i := 0; i < p.Len(); i++ {
		tp := p.Tuple(i)
		if tp.Attrs[ly] < tp.Attrs[fy] {
			t.Fatalf("author %d: ly %d < fy %d", tp.ID, tp.Attrs[ly], tp.Attrs[fy])
		}
	}
}

func TestPopulationIsCorrelated(t *testing.T) {
	p := Population(5000, 11)
	schema := p.Schema()
	nop, _ := schema.Index("nop")
	cc, _ := schema.Index("cc")
	xs := make([]float64, p.Len())
	ys := make([]float64, p.Len())
	for i := 0; i < p.Len(); i++ {
		xs[i] = float64(p.Tuple(i).Attrs[nop])
		ys[i] = float64(p.Tuple(i).Attrs[cc])
	}
	if corr := stats.PearsonCorr(xs, ys); corr < 0.15 {
		t.Fatalf("nop/cc correlation %.3f, want clearly positive", corr)
	}
}

func TestPopulationIsHeavyTailed(t *testing.T) {
	p := Population(5000, 13)
	schema := p.Schema()
	nop, _ := schema.Index("nop")
	one := 0
	for i := 0; i < p.Len(); i++ {
		if p.Tuple(i).Attrs[nop] <= 2 {
			one++
		}
	}
	// Dagum(0.68, 0.52, 0.89)+1: most authors have very few papers.
	frac := float64(one) / float64(p.Len())
	if frac < 0.4 {
		t.Fatalf("fraction of ≤2-paper authors %.3f; distribution lost its head", frac)
	}
}

func TestUniformPopulationUncorrelated(t *testing.T) {
	p := UniformPopulation(5000, 17)
	schema := p.Schema()
	nop, _ := schema.Index("nop")
	cc, _ := schema.Index("cc")
	xs := make([]float64, p.Len())
	ys := make([]float64, p.Len())
	for i := 0; i < p.Len(); i++ {
		xs[i] = float64(p.Tuple(i).Attrs[nop])
		ys[i] = float64(p.Tuple(i).Attrs[cc])
	}
	if corr := math.Abs(stats.PearsonCorr(xs, ys)); corr > 0.05 {
		t.Fatalf("uniform population correlated: %.3f", corr)
	}
}

func TestQueryGroupShapeAndValidity(t *testing.T) {
	pop := Population(2000, 3)
	rng := rand.New(rand.NewSource(3))
	for _, params := range Groups() {
		queries, err := QueryGroup(params, pop, 100, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(queries) != params.N {
			t.Fatalf("%s: %d queries, want %d", params.Name, len(queries), params.N)
		}
		for _, q := range queries {
			if len(q.Strata) != params.StrataPerSSD() {
				t.Fatalf("%s %s: %d strata, want %d", params.Name, q.Name, len(q.Strata), params.StrataPerSSD())
			}
			if q.TotalFreq() != 100 {
				t.Fatalf("%s %s: total freq %d, want 100", params.Name, q.Name, q.TotalFreq())
			}
		}
	}
}

func TestQueryGroupStrataDisjointAndValid(t *testing.T) {
	// Full pairwise validation is O(m²) box checks; Small is cheap enough.
	pop := Population(2000, 4)
	schema := pop.Schema()
	rng := rand.New(rand.NewSource(4))
	queries, err := QueryGroup(Small, pop, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if err := q.Validate(schema); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
	}
}

func TestQueryGroupStrataCoverDomain(t *testing.T) {
	// Every tuple must fall in exactly one stratum of each SSD (subranges
	// partition the domains).
	pop := Population(300, 21)
	schema := pop.Schema()
	rng := rand.New(rand.NewSource(5))
	queries, err := QueryGroup(Small, pop, 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		preds, err := q.Compile(schema)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pop.Len(); i++ {
			tp := pop.Tuple(i)
			matches := 0
			for _, p := range preds {
				if p(&tp) {
					matches++
				}
			}
			if matches != 1 {
				t.Fatalf("%s: tuple %d matches %d strata, want exactly 1", q.Name, tp.ID, matches)
			}
		}
	}
}

func TestQueryGroupTooManyAttrs(t *testing.T) {
	pop := dataset.NewRelation(dataset.MustSchema(dataset.Field{Name: "only", Min: 0, Max: 9}))
	pop.MustAdd(dataset.Tuple{ID: 1, Attrs: []int64{5}})
	rng := rand.New(rand.NewSource(6))
	if _, err := QueryGroup(Small, pop, 10, rng); err == nil {
		t.Fatal("want error when mc exceeds attribute count")
	}
}

func TestSpread(t *testing.T) {
	got := spread(10, 4)
	want := []int{3, 3, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("spread = %v", got)
		}
	}
	total := 0
	for _, v := range spread(100, 7) {
		total += v
	}
	if total != 100 {
		t.Fatalf("spread loses mass: %d", total)
	}
}

func TestPenaltyTable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pc := PenaltyTable(6, 4, 10, 1.0, rng) // every pair penalised
	if err := pc.ValidatePenalties(6); err != nil {
		t.Fatal(err)
	}
	if len(pc.Penalties) != 15 { // C(6,2)
		t.Fatalf("%d penalties, want 15", len(pc.Penalties))
	}
	none := PenaltyTable(6, 4, 10, 0, rng)
	if len(none.Penalties) != 0 {
		t.Fatal("prob 0 must produce no penalties")
	}
	def := DefaultPenaltyTable(4, rng)
	if def.Interview != DefaultInterviewCost {
		t.Fatalf("interview cost %g", def.Interview)
	}
	if err := def.ValidatePenalties(4); err != nil {
		t.Fatal(err)
	}
	_ = query.Tau(0) // keep import if penalties empty
}
