package gen

import (
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// gofBins draws n samples and counts how many land in each of k
// equal-probability bins (delimited by the analytic quantiles); for a
// correct sampler the counts are uniform.
func gofBins(t *testing.T, d Distribution, n, k int, seed int64) []int64 {
	t.Helper()
	bounds := make([]float64, k-1)
	for i := 1; i < k; i++ {
		bounds[i-1] = d.Quantile(float64(i) / float64(k))
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int64, k)
	for i := 0; i < n; i++ {
		x := d.Sample(rng)
		bin := 0
		for bin < k-1 && x > bounds[bin] {
			bin++
		}
		counts[bin]++
	}
	return counts
}

// TestSamplersMatchTheirCDFs: every Table 1 law's sampler agrees with its
// analytic quantile function (chi-square over equal-probability bins).
func TestSamplersMatchTheirCDFs(t *testing.T) {
	dists := map[string]Distribution{
		"dagum-nop":   Dagum{K: 0.68, Alpha: 0.52, Beta: 0.89, Gamma: 1},
		"dagum-accpp": Dagum{K: 0.98, Alpha: 3.41, Beta: 3.42, Gamma: 0},
		"burr-cc":     Burr{K: 0.47, Alpha: 2.96, Beta: 3.05, Gamma: 0},
		"burr-ndcc":   Burr{K: 0.32, Alpha: 2.92, Beta: 2.83, Gamma: 0},
		"power-fy":    PowerFunc{Alpha: 7.75, A: 1936, B: 2013},
		"power-ly":    PowerFunc{Alpha: 11.83, A: 1936, B: 2013},
		"uniform":     UniformInt{Min: 0, Max: 999},
	}
	for name, d := range dists {
		counts := gofBins(t, d, 20000, 20, 42)
		p, err := stats.ChiSquareUniformP(counts)
		if err != nil {
			t.Fatal(err)
		}
		if p < 1e-4 {
			t.Fatalf("%s: sampler disagrees with quantile function, p = %g (counts %v)", name, p, counts)
		}
	}
}

// TestPopulationMarginalsMatchTable1: the generated population's nop column
// follows the Dagum law of Table 1 (up to clamping into the finite domain),
// despite the copula correlation machinery.
func TestPopulationMarginalsMatchTable1(t *testing.T) {
	pop := Population(20000, 9)
	idx, _ := pop.Schema().Index("nop")
	d := Dagum{K: 0.68, Alpha: 0.52, Beta: 0.89, Gamma: 1}
	const k = 10
	// The attribute is integer-valued while the Dagum head is concentrated
	// on 1–2 papers, so several decile boundaries round to the same
	// integer; pool bins that become indistinguishable.
	type pooled struct {
		upper  int64 // inclusive integer upper bound; last bin has none
		expect float64
	}
	var bins []pooled
	perDecile := float64(pop.Len()) / k
	for i := 1; i < k; i++ {
		// Values ≤ round(quantile) fall below decile i.
		b := int64(d.Quantile(float64(i)/float64(k)) + 0.5)
		if len(bins) > 0 && bins[len(bins)-1].upper == b {
			bins[len(bins)-1].expect += perDecile
			continue
		}
		bins = append(bins, pooled{upper: b, expect: perDecile})
	}
	bins = append(bins, pooled{upper: 1 << 62, expect: perDecile})
	counts := make([]int64, len(bins))
	for i := 0; i < pop.Len(); i++ {
		x := pop.Tuple(i).Attrs[idx]
		for bi := range bins {
			if x <= bins[bi].upper {
				counts[bi]++
				break
			}
		}
	}
	// Rounding still shifts mass between adjacent pooled bins; require
	// every pooled bin within a factor 2 of its expectation.
	for bi, c := range counts {
		if float64(c) < bins[bi].expect/2 || float64(c) > bins[bi].expect*2 {
			t.Fatalf("nop pooled bin %d (≤%d) holds %d of expected %.0f (counts %v)",
				bi, bins[bi].upper, c, bins[bi].expect, counts)
		}
	}
}
