package gen

import (
	"math/rand"

	"repro/internal/query"
)

// Default experiment cost parameters (Section 6.1.2): a $4 interview — the
// optimal survey-participation incentive the paper cites — and a $10 penalty
// on randomly chosen SSD pairs, so that undesired sharing costs more than
// two separate interviews.
const (
	DefaultInterviewCost = 4.0
	DefaultPenalty       = 10.0
)

// PenaltyTable builds the experiments' shared-survey cost function over n
// SSDs: sharing any set of surveys costs one interview, and each penalised
// pair {i,j} ⊆ τ adds its penalty. Every pair is penalised independently
// with probability pairProb.
func PenaltyTable(n int, interview, penalty, pairProb float64, rng *rand.Rand) query.PenaltyCosts {
	penalties := make(map[query.Tau]float64)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < pairProb {
				penalties[query.NewTau(i, j)] = penalty
			}
		}
	}
	return query.PenaltyCosts{Interview: interview, Penalties: penalties}
}

// DefaultPenalisedPairs returns how many pairs DefaultPenaltyTable
// penalises for an n-survey MSSD: n−1. The paper penalises "randomly chosen
// pairs" without giving a count; a count growing linearly in n (so the
// penalised fraction of the quadratic pair space *falls* with group size)
// reproduces Table 2's trend: the Small group (2 of 3 pairs penalised)
// blocks most sharing (62%), while Large (8 of 36) leaves penalty-free
// cliques (47%). It also keeps Figure 6 possible — individuals shared
// across up to 9 surveys require penalty-free cliques.
func DefaultPenalisedPairs(n int) int { return n - 1 }

// PenaltyTableFixed penalises exactly `count` distinct pairs chosen
// uniformly (all pairs when count exceeds the number of pairs).
func PenaltyTableFixed(n int, interview, penalty float64, count int, rng *rand.Rand) query.PenaltyCosts {
	var pairs []query.Tau
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, query.NewTau(i, j))
		}
	}
	rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
	if count > len(pairs) {
		count = len(pairs)
	}
	penalties := make(map[query.Tau]float64, count)
	for _, p := range pairs[:count] {
		penalties[p] = penalty
	}
	return query.PenaltyCosts{Interview: interview, Penalties: penalties}
}

// DefaultPenaltyTable is PenaltyTableFixed with the paper's $4/$10
// parameters and DefaultPenalisedPairs(n) penalised pairs.
func DefaultPenaltyTable(n int, rng *rand.Rand) query.PenaltyCosts {
	return PenaltyTableFixed(n, DefaultInterviewCost, DefaultPenalty, DefaultPenalisedPairs(n), rng)
}
