package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/predicate"
	"repro/internal/query"
)

// GroupParams parameterises a query group as in Section 6.1.2: n SSD
// queries, each over mc attributes partitioned into msr subranges, yielding
// m = msr^mc pairwise-disjoint strata per SSD.
//
// The paper describes a stratum as a combination of subrange formulas with
// m = (msr)^mc; the only construction yielding that many pairwise-disjoint
// strata is the cartesian product of per-attribute subranges, i.e. each
// stratum is the conjunction of one subrange per chosen attribute (see
// DESIGN.md).
type GroupParams struct {
	Name string
	N    int // number of SSDs
	MSR  int // subranges per attribute
	MC   int // attributes combined per stratum
}

// StrataPerSSD returns m = msr^mc.
func (p GroupParams) StrataPerSSD() int {
	m := 1
	for i := 0; i < p.MC; i++ {
		m *= p.MSR
	}
	return m
}

// The paper's three query groups.
var (
	Small  = GroupParams{Name: "Small", N: 3, MSR: 4, MC: 2}  // m = 16
	Medium = GroupParams{Name: "Medium", N: 6, MSR: 4, MC: 3} // m = 64
	Large  = GroupParams{Name: "Large", N: 9, MSR: 4, MC: 4}  // m = 256
)

// Groups lists the paper's query groups in size order.
func Groups() []GroupParams { return []GroupParams{Small, Medium, Large} }

// QueryGroup generates the group's SSD queries over the population. totalSample
// is the required sample size of each SSD (the paper uses 100, 1000 and
// 10000); it is spread over the SSD's strata as evenly as integrality
// allows. The construction is deterministic in rng.
//
// All SSDs of a group stratify the same mc attributes; each SSD partitions
// them with its own ±10%-jittered boundaries — the paper's "error of 10
// percent, to create diversity". Aligned-but-not-identical strata across
// surveys are what make sharing individuals between surveys possible at all:
// two surveys can only share individuals whose stratum-selection frequencies
// co-occur, which requires the surveys' strata to overlap substantially.
//
// "Ranges of equal size" is implemented as equal *population* size
// (jittered quantile boundaries). Equal-width ranges over the heavy-tailed
// attributes of Table 1 leave most strata nearly empty, which forces both
// MR-MQE and MR-CPS to select the same few tail individuals — a regime
// flatly contradicted by the paper's measurement that MR-MQE's incidental
// sharing never exceeded 4% (see DESIGN.md).
func QueryGroup(p GroupParams, pop *dataset.Relation, totalSample int, rng *rand.Rand) ([]*query.SSD, error) {
	schema := pop.Schema()
	if p.MC > schema.NumFields() {
		return nil, fmt.Errorf("gen: group %s needs %d attributes, schema has %d", p.Name, p.MC, schema.NumFields())
	}
	attrs := pickAttrs(schema, p.MC, rng)
	sorted := make(map[int][]int64, p.MC)
	for _, attr := range attrs {
		sorted[attr] = sortedAttrValues(pop, attr)
	}
	queries := make([]*query.SSD, p.N)
	for qi := 0; qi < p.N; qi++ {
		cuts := make([][]predicate.Expr, p.MC)
		for ai, attr := range attrs {
			cuts[ai] = subrangeFormulas(schema.Field(attr), sorted[attr], p.MSR, rng)
		}
		m := p.StrataPerSSD()
		freqs := spread(totalSample, m)
		strata := make([]query.Stratum, 0, m)
		// Enumerate the cartesian product of subranges.
		idx := make([]int, p.MC)
		for s := 0; s < m; s++ {
			parts := make([]predicate.Expr, p.MC)
			for ai := range idx {
				parts[ai] = cuts[ai][idx[ai]]
			}
			strata = append(strata, query.Stratum{
				Cond: predicate.AndAll(parts...),
				Freq: freqs[s],
			})
			for ai := p.MC - 1; ai >= 0; ai-- {
				idx[ai]++
				if idx[ai] < p.MSR {
					break
				}
				idx[ai] = 0
			}
		}
		queries[qi] = query.NewSSD(fmt.Sprintf("%s-Q%d", p.Name, qi+1), strata...)
	}
	return queries, nil
}

// pickAttrs chooses mc distinct attribute indexes.
func pickAttrs(schema *dataset.Schema, mc int, rng *rand.Rand) []int {
	perm := rng.Perm(schema.NumFields())
	return perm[:mc]
}

// sortedAttrValues extracts and sorts the attribute column; quantile
// boundaries are read from it.
func sortedAttrValues(pop *dataset.Relation, attr int) []int64 {
	vals := make([]int64, pop.Len())
	for i := 0; i < pop.Len(); i++ {
		vals[i] = pop.Tuple(i).Attrs[attr]
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	return vals
}

// subrangeFormulas cuts the field's domain into msr disjoint subranges of
// near-equal population size, with ±10% jitter on the interior quantile
// positions ("an error of 10 percent, to create diversity"), returning one
// range formula per subrange. The union of the subranges covers the whole
// domain. Integer-valued attributes can concentrate many individuals on one
// value, so realised bin populations are equal only approximately.
func subrangeFormulas(f dataset.Field, sorted []int64, msr int, rng *rand.Rand) []predicate.Expr {
	bounds := make([]int64, msr+1)
	bounds[0] = f.Min
	bounds[msr] = f.Max + 1
	binFrac := 1.0 / float64(msr)
	for i := 1; i < msr; i++ {
		q := binFrac * float64(i)
		q += (rng.Float64()*2 - 1) * 0.10 * binFrac
		idx := int(q * float64(len(sorted)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		b := sorted[idx] + 1 // boundary just above the quantile value
		if b <= bounds[i-1] {
			b = bounds[i-1] + 1
		}
		if b > f.Max {
			b = f.Max
		}
		bounds[i] = b
	}
	out := make([]predicate.Expr, msr)
	for i := 0; i < msr; i++ {
		lo, hi := bounds[i], bounds[i+1]-1
		out[i] = predicate.And{
			L: predicate.Compare{Attr: f.Name, Op: predicate.Ge, Value: lo},
			R: predicate.Compare{Attr: f.Name, Op: predicate.Le, Value: hi},
		}
	}
	return out
}

// spread distributes total over m slots as evenly as possible.
func spread(total, m int) []int {
	out := make([]int, m)
	base := total / m
	rem := total % m
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}
