package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// AttrSpec binds one schema attribute to its marginal distribution and its
// loading on the latent "productivity" factor used to induce realistic
// cross-attribute correlations (a Gaussian copula: the marginals stay exactly
// the laws of Table 1, while ranks correlate through the shared factor).
type AttrSpec struct {
	Field dataset.Field
	Dist  Distribution
	// Rho is the copula loading in [-1, 1]: how strongly the attribute's
	// rank follows the author's latent productivity.
	Rho float64
}

// AuthorAttrs returns the attribute specifications of Table 1: names,
// domains, distributions and parameters exactly as printed, plus copula
// loadings reflecting the paper's remark that columns are correlated
// ("as in almost any realistic dataset").
func AuthorAttrs() []AttrSpec {
	return []AttrSpec{
		{
			Field: dataset.Field{Name: "nop", Min: 1, Max: 699, Desc: "Total number of papers"},
			Dist:  Dagum{K: 0.68, Alpha: 0.52, Beta: 0.89, Gamma: 1},
			Rho:   0.85,
		},
		{
			Field: dataset.Field{Name: "ayp", Min: 0, Max: 40, Desc: "Average number of papers per year"},
			Dist:  Dagum{K: 0.24, Alpha: 0.87, Beta: 0.66, Gamma: 1},
			Rho:   0.75,
		},
		{
			Field: dataset.Field{Name: "myp", Min: 0, Max: 140, Desc: "Maximum number of papers per year"},
			Dist:  Dagum{K: 0.16, Alpha: 0.86, Beta: 0.78, Gamma: 1},
			Rho:   0.75,
		},
		{
			Field: dataset.Field{Name: "fy", Min: 1936, Max: 2013, Desc: "Year of first publication"},
			Dist:  PowerFunc{Alpha: 7.75, A: 1936, B: 2013},
			Rho:   -0.45, // prolific authors started earlier
		},
		{
			Field: dataset.Field{Name: "ly", Min: 1936, Max: 2013, Desc: "Year of last publication"},
			Dist:  PowerFunc{Alpha: 11.83, A: 1936, B: 2013},
			Rho:   0.30,
		},
		{
			Field: dataset.Field{Name: "cc", Min: 1, Max: 1000, Desc: "Distinct coauthors for all papers"},
			Dist:  Burr{K: 0.47, Alpha: 2.96, Beta: 3.05, Gamma: 0},
			Rho:   0.70,
		},
		{
			Field: dataset.Field{Name: "ndcc", Min: 1, Max: 2500, Desc: "Non distinct coauthors"},
			Dist:  Burr{K: 0.32, Alpha: 2.92, Beta: 2.83, Gamma: 0},
			Rho:   0.70,
		},
		{
			Field: dataset.Field{Name: "accpp", Min: 0, Max: 129, Desc: "Average number of coauthors per paper"},
			Dist:  Dagum{K: 0.98, Alpha: 3.41, Beta: 3.42, Gamma: 0},
			Rho:   0.40,
		},
	}
}

// AuthorSchema returns the schema of the author dataset (Table 1 without the
// free-text id and name columns, which live on the Tuple itself).
func AuthorSchema() *dataset.Schema {
	specs := AuthorAttrs()
	fields := make([]dataset.Field, len(specs))
	for i, s := range specs {
		fields[i] = s.Field
	}
	return dataset.MustSchema(fields...)
}

// Population generates n authors with the Table 1 marginals and correlated
// ranks (Gaussian copula over a per-author latent factor). The generation is
// deterministic in the seed. Publication-year sanity (ly ≥ fy) is enforced.
func Population(n int, seed int64) *dataset.Relation {
	specs := AuthorAttrs()
	schema := AuthorSchema()
	rel := dataset.NewRelation(schema)
	rng := rand.New(rand.NewSource(seed))
	fyIdx, _ := schema.Index("fy")
	lyIdx, _ := schema.Index("ly")
	for id := 0; id < n; id++ {
		latent := rng.NormFloat64()
		attrs := make([]int64, len(specs))
		for j, s := range specs {
			z := s.Rho*latent + math.Sqrt(1-s.Rho*s.Rho)*rng.NormFloat64()
			u := stdNormalCDF(z)
			if u <= 0 {
				u = 1e-12
			}
			if u >= 1 {
				u = 1 - 1e-12
			}
			attrs[j] = ClampInt(s.Dist.Quantile(u), s.Field.Min, s.Field.Max)
		}
		if attrs[lyIdx] < attrs[fyIdx] {
			attrs[fyIdx], attrs[lyIdx] = attrs[lyIdx], attrs[fyIdx]
		}
		rel.MustAdd(dataset.Tuple{
			ID:    int64(id),
			Name:  fmt.Sprintf("author-%07d", id),
			Attrs: attrs,
		})
	}
	return rel
}

// UniformPopulation generates n authors over the same schema with every
// attribute independently uniform on its domain — the synthetic
// no-correlation dataset of Section 6.2.1 used to test whether value
// distributions affect cost savings.
func UniformPopulation(n int, seed int64) *dataset.Relation {
	schema := AuthorSchema()
	rel := dataset.NewRelation(schema)
	rng := rand.New(rand.NewSource(seed))
	numFields := schema.NumFields()
	for id := 0; id < n; id++ {
		attrs := make([]int64, numFields)
		for j := 0; j < numFields; j++ {
			f := schema.Field(j)
			attrs[j] = f.Min + rng.Int63n(f.Width())
		}
		rel.MustAdd(dataset.Tuple{
			ID:    int64(id),
			Name:  fmt.Sprintf("author-%07d", id),
			Attrs: attrs,
		})
	}
	return rel
}

// stdNormalCDF is Φ(z), computed from the error function.
func stdNormalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}
