// Package gen generates the experimental workload of Section 6.1: a
// synthetic author population with the attribute schema and marginal
// distributions of Table 1 (Dagum, Burr XII and Power-function laws, sampled
// by inverse CDF), the Small/Medium/Large query groups of Section 6.1.2, and
// the penalty-based shared-survey cost tables the experiments use.
package gen

import (
	"math"
	"math/rand"
)

// Distribution draws values by inverting a CDF at a uniform variate.
type Distribution interface {
	// Sample draws one value.
	Sample(rng *rand.Rand) float64
	// Quantile returns the value at cumulative probability u ∈ (0, 1).
	Quantile(u float64) float64
}

// Dagum is the Dagum distribution with shape parameters K and Alpha, scale
// Beta and location Gamma, as parameterised in Table 1. Its CDF is
// F(x) = (1 + ((x-γ)/β)^(-α))^(-k); the quantile function inverts it in
// closed form. Dagum laws are commonly used to model income — the paper uses
// them for paper-count attributes.
type Dagum struct {
	K     float64
	Alpha float64
	Beta  float64
	Gamma float64
}

// Quantile returns γ + β (u^(-1/k) − 1)^(-1/α).
func (d Dagum) Quantile(u float64) float64 {
	return d.Gamma + d.Beta*math.Pow(math.Pow(u, -1/d.K)-1, -1/d.Alpha)
}

// Sample draws one value.
func (d Dagum) Sample(rng *rand.Rand) float64 { return d.Quantile(openUniform(rng)) }

// Burr is the Burr type XII distribution with shape parameters K and Alpha,
// scale Beta and location Gamma. Its CDF is
// F(x) = 1 − (1 + ((x-γ)/β)^α)^(-k).
type Burr struct {
	K     float64
	Alpha float64
	Beta  float64
	Gamma float64
}

// Quantile returns γ + β ((1−u)^(-1/k) − 1)^(1/α).
func (b Burr) Quantile(u float64) float64 {
	return b.Gamma + b.Beta*math.Pow(math.Pow(1-u, -1/b.K)-1, 1/b.Alpha)
}

// Sample draws one value.
func (b Burr) Sample(rng *rand.Rand) float64 { return b.Quantile(openUniform(rng)) }

// PowerFunc is the power-function distribution on [A, B] with exponent
// Alpha: F(x) = ((x−a)/(b−a))^α. With α > 1 mass concentrates near B — the
// paper uses it for first/last publication years, which skew recent.
type PowerFunc struct {
	Alpha float64
	A     float64
	B     float64
}

// Quantile returns a + (b−a) u^(1/α).
func (p PowerFunc) Quantile(u float64) float64 {
	return p.A + (p.B-p.A)*math.Pow(u, 1/p.Alpha)
}

// Sample draws one value.
func (p PowerFunc) Sample(rng *rand.Rand) float64 { return p.Quantile(openUniform(rng)) }

// UniformInt draws integers uniformly from [Min, Max]; the synthetic
// no-correlation dataset of Section 6.2.1 uses it for every attribute.
type UniformInt struct {
	Min, Max int64
}

// Quantile maps u linearly onto the domain.
func (d UniformInt) Quantile(u float64) float64 {
	return float64(d.Min) + u*float64(d.Max-d.Min)
}

// Sample draws one value.
func (d UniformInt) Sample(rng *rand.Rand) float64 {
	return float64(d.Min + rng.Int63n(d.Max-d.Min+1))
}

// openUniform returns a uniform variate in the open interval (0, 1), safe
// for quantile functions that diverge at the endpoints.
func openUniform(rng *rand.Rand) float64 {
	for {
		u := rng.Float64()
		if u > 0 && u < 1 {
			return u
		}
	}
}

// ClampInt rounds x and clamps it into [min, max] — attribute domains are
// finite while the laws of Table 1 have unbounded tails.
func ClampInt(x float64, min, max int64) int64 {
	v := int64(math.Round(x))
	if v < min {
		return min
	}
	if v > max {
		return max
	}
	return v
}
