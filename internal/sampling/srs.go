package sampling

import "math/rand"

// SRS draws a simple random sample of n items from the slice without
// replacement. When n >= len(items) a copy of all items is returned. The
// input slice is not modified. Every subset of size n has equal probability
// (partial Fisher–Yates over a copy).
func SRS[T any](items []T, n int, rng *rand.Rand) []T {
	if n < 0 {
		n = 0
	}
	if n >= len(items) {
		out := make([]T, len(items))
		copy(out, items)
		return out
	}
	work := make([]T, len(items))
	copy(work, items)
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(work)-i)
		work[i], work[j] = work[j], work[i]
	}
	return work[:n:n]
}

// SRSIndexes draws n distinct indexes uniformly from [0, total). When
// n >= total all indexes are returned. The result is in random order.
//
// For small n relative to total it uses Floyd's algorithm (O(n) memory,
// no O(total) allocation), which is how Algorithm 1 "uniformly selects n
// indexes from 1..N" without materialising the virtual index range.
func SRSIndexes(total int64, n int, rng *rand.Rand) []int64 {
	if n < 0 {
		n = 0
	}
	if int64(n) >= total {
		out := make([]int64, total)
		for i := range out {
			out[i] = int64(i)
		}
		return out
	}
	// Floyd's algorithm: for j = total-n .. total-1, draw t in [0, j];
	// insert t if unseen, else insert j.
	chosen := make(map[int64]struct{}, n)
	out := make([]int64, 0, n)
	for j := total - int64(n); j < total; j++ {
		t := rng.Int63n(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// DrawWithoutReplacement removes and returns n uniformly chosen items from
// the slice, returning the drawn items and the remaining items. The input
// slice is consumed (its backing array is reused).
func DrawWithoutReplacement[T any](items []T, n int, rng *rand.Rand) (drawn, rest []T) {
	if n < 0 {
		n = 0
	}
	if n >= len(items) {
		return items, nil
	}
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(items)-i)
		items[i], items[j] = items[j], items[i]
	}
	return items[:n:n], items[n:]
}
