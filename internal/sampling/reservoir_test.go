package sampling

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestReservoirSizeSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewReservoir[int](5, rng)
	for i := 0; i < 3; i++ {
		r.Add(i)
	}
	if len(r.Sample()) != 3 || r.Seen() != 3 {
		t.Fatalf("after 3 adds: sample %d, seen %d", len(r.Sample()), r.Seen())
	}
	for i := 3; i < 100; i++ {
		r.Add(i)
	}
	if len(r.Sample()) != 5 {
		t.Fatalf("sample size %d, want 5", len(r.Sample()))
	}
	if r.Seen() != 100 {
		t.Fatalf("seen %d, want 100", r.Seen())
	}
	seen := map[int]bool{}
	for _, v := range r.Sample() {
		if v < 0 || v >= 100 {
			t.Fatalf("sampled value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("value %d sampled twice", v)
		}
		seen[v] = true
	}
}

func TestReservoirZeroCapacity(t *testing.T) {
	r := NewReservoir[int](0, rand.New(rand.NewSource(1)))
	for i := 0; i < 10; i++ {
		r.Add(i)
	}
	if len(r.Sample()) != 0 {
		t.Fatal("zero-capacity reservoir must stay empty")
	}
}

func TestReservoirPanics(t *testing.T) {
	mustPanic(t, func() { NewReservoir[int](-1, rand.New(rand.NewSource(1))) })
	mustPanic(t, func() { NewReservoir[int](1, nil) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

// TestReservoirUniform: over many runs, each of N items appears in the
// k-sample with frequency k/N; chi-square goodness of fit must not reject.
func TestReservoirUniform(t *testing.T) {
	const n, k, runs = 20, 5, 20000
	rng := rand.New(rand.NewSource(7))
	counts := make([]int64, n)
	for run := 0; run < runs; run++ {
		r := NewReservoir[int](k, rng)
		for i := 0; i < n; i++ {
			r.Add(i)
		}
		for _, v := range r.Sample() {
			counts[v]++
		}
	}
	p, err := stats.ChiSquareUniformP(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("reservoir inclusion not uniform: p = %g, counts = %v", p, counts)
	}
}

// TestReservoirSkipUniform is the Algorithm L counterpart of
// TestReservoirUniform: it streams items through the AddSlice/Skip fast path
// (which consumes whole rejected runs in O(1)) and checks, over well more
// than 10k trials, that per-item inclusion is still uniform at k/N by
// chi-square goodness of fit.
func TestReservoirSkipUniform(t *testing.T) {
	const n, k, runs = 24, 6, 20000
	rng := rand.New(rand.NewSource(19))
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	counts := make([]int64, n)
	for run := 0; run < runs; run++ {
		r := NewReservoir[int](k, rng)
		r.AddSlice(items)
		for _, v := range r.Sample() {
			counts[v]++
		}
	}
	p, err := stats.ChiSquareUniformP(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("skip-path inclusion not uniform: p = %g, counts = %v", p, counts)
	}
}

// TestReservoirAddSliceMatchesAdd: AddSlice must consume the RNG exactly like
// an Add loop, so the two forms produce byte-identical reservoirs for the
// same seed — including when the stream arrives in several chunks.
func TestReservoirAddSliceMatchesAdd(t *testing.T) {
	items := make([]int, 5000)
	for i := range items {
		items[i] = i
	}
	for _, k := range []int{0, 1, 7, 100} {
		a := NewReservoir[int](k, rand.New(rand.NewSource(23)))
		for _, v := range items {
			a.Add(v)
		}
		b := NewReservoir[int](k, rand.New(rand.NewSource(23)))
		b.AddSlice(items[:1500])
		b.AddSlice(items[1500:1501])
		b.AddSlice(items[1501:])
		if a.Seen() != b.Seen() {
			t.Fatalf("k=%d: seen %d vs %d", k, a.Seen(), b.Seen())
		}
		as, bs := a.Sample(), b.Sample()
		if len(as) != len(bs) {
			t.Fatalf("k=%d: sample sizes %d vs %d", k, len(as), len(bs))
		}
		for i := range as {
			if as[i] != bs[i] {
				t.Fatalf("k=%d: sample[%d] = %d vs %d", k, i, as[i], bs[i])
			}
		}
	}
}

// TestReservoirSkipSemantics pins the Skip contract: zero while filling, at
// most the requested count, never past the next acceptance, and a k=0
// reservoir consumes everything.
func TestReservoirSkipSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	r := NewReservoir[int](4, rng)
	if got := r.Skip(10); got != 0 {
		t.Fatalf("Skip while filling returned %d, want 0", got)
	}
	for i := 0; i < 4; i++ {
		r.Add(i)
	}
	var skipped int64
	for pos := int64(4); pos < 10000; {
		s := r.Skip(10000 - pos)
		if s < 0 || s > 10000-pos {
			t.Fatalf("Skip returned %d with %d remaining", s, 10000-pos)
		}
		skipped += s
		pos += s
		if pos == 10000 {
			break
		}
		// Skip stopped short of the request, so this position is accepted.
		r.Add(int(pos))
		pos++
	}
	if r.Seen() != 10000 {
		t.Fatalf("seen %d, want 10000", r.Seen())
	}
	if skipped == 0 {
		t.Fatal("Algorithm L skipped nothing over 10k items")
	}
	if got := r.Skip(0); got != 0 {
		t.Fatal("Skip(0) must return 0")
	}
	if got := r.Skip(-5); got != 0 {
		t.Fatal("Skip(negative) must return 0")
	}
	z := NewReservoir[int](0, rng)
	if got := z.Skip(42); got != 42 || z.Seen() != 42 {
		t.Fatalf("k=0 Skip consumed %d (seen %d), want 42", got, z.Seen())
	}
}

func TestReservoirTakeSampleResets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := NewReservoir[int](3, rng)
	for i := 0; i < 10; i++ {
		r.Add(i)
	}
	s := r.TakeSample()
	if len(s) != 3 {
		t.Fatalf("TakeSample returned %d items", len(s))
	}
	if r.Seen() != 0 || len(r.Sample()) != 0 {
		t.Fatal("TakeSample must reset the reservoir")
	}
	// Regression: the returned slice must be detached — refilling the
	// reservoir (past the point where Algorithm L's skip state from the
	// previous epoch could suppress replacements) must not alias it, and
	// the second epoch must behave like a fresh reservoir.
	got := append([]int(nil), s...)
	for i := 100; i < 500; i++ {
		r.Add(i)
	}
	for i, v := range s {
		if v != got[i] {
			t.Fatalf("TakeSample slice mutated by later Adds: %v -> %v", got, s)
		}
	}
	if r.Seen() != 400 || len(r.Sample()) != 3 {
		t.Fatalf("second epoch: seen %d sample %d", r.Seen(), len(r.Sample()))
	}
	for _, v := range r.Sample() {
		if v < 100 || v >= 500 {
			t.Fatalf("second-epoch sample holds stale value %d", v)
		}
	}
}

func TestSRSSizeAndDistinctness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := make([]int, 50)
	for i := range items {
		items[i] = i
	}
	s := SRS(items, 10, rng)
	if len(s) != 10 {
		t.Fatalf("SRS returned %d items, want 10", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	// Oversized and degenerate requests.
	if got := SRS(items, 100, rng); len(got) != 50 {
		t.Fatalf("oversized SRS returned %d", len(got))
	}
	if got := SRS(items, -1, rng); len(got) != 0 {
		t.Fatalf("negative SRS returned %d", len(got))
	}
	// Input must be untouched.
	for i, v := range items {
		if v != i {
			t.Fatal("SRS mutated its input")
		}
	}
}

func TestSRSUniform(t *testing.T) {
	const n, k, runs = 12, 4, 15000
	rng := rand.New(rand.NewSource(11))
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	counts := make([]int64, n)
	for run := 0; run < runs; run++ {
		for _, v := range SRS(items, k, rng) {
			counts[v]++
		}
	}
	p, err := stats.ChiSquareUniformP(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("SRS inclusion not uniform: p = %g", p)
	}
}

// TestQuickSRSIndexes: indexes are distinct and in range for arbitrary
// (total, n).
func TestQuickSRSIndexes(t *testing.T) {
	f := func(seed int64, totalRaw uint16, nRaw uint8) bool {
		total := int64(totalRaw%1000) + 1
		n := int(nRaw) % 50
		rng := rand.New(rand.NewSource(seed))
		idx := SRSIndexes(total, n, rng)
		wantLen := n
		if int64(n) >= total {
			wantLen = int(total)
		}
		if len(idx) != wantLen {
			return false
		}
		seen := map[int64]bool{}
		for _, v := range idx {
			if v < 0 || v >= total || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSRSIndexesUniform(t *testing.T) {
	const total, n, runs = 15, 5, 15000
	rng := rand.New(rand.NewSource(13))
	counts := make([]int64, total)
	for run := 0; run < runs; run++ {
		for _, v := range SRSIndexes(total, n, rng) {
			counts[v]++
		}
	}
	p, err := stats.ChiSquareUniformP(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("SRSIndexes not uniform: p = %g", p)
	}
}

func TestDrawWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	items := []int{1, 2, 3, 4, 5}
	drawn, rest := DrawWithoutReplacement(append([]int(nil), items...), 2, rng)
	if len(drawn) != 2 || len(rest) != 3 {
		t.Fatalf("drawn %d rest %d", len(drawn), len(rest))
	}
	all := append(append([]int(nil), drawn...), rest...)
	seen := map[int]bool{}
	for _, v := range all {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("partition lost items: %v", all)
	}
	drawn, rest = DrawWithoutReplacement([]int{1, 2}, 5, rng)
	if len(drawn) != 2 || rest != nil {
		t.Fatal("over-draw should return everything")
	}
}

// TestForgetKeepsUniformity is the deletion-correctness proof for dynamic
// sets: fill a reservoir over N members, Forget a fixed set of deleted
// members, and check over many trials that every survivor is included
// equally often. Removing a specific member from a simple random sample
// must leave a simple random sample of the survivors.
func TestForgetKeepsUniformity(t *testing.T) {
	const (
		n      = 40
		k      = 10
		trials = 4000
	)
	deleted := map[int]bool{}
	for _, d := range []int{0, 5, 11, 17, 23, 29, 31, 38} {
		deleted[d] = true
	}
	rng := rand.New(rand.NewSource(42))
	survivors := make([]int, 0, n-len(deleted))
	for v := 0; v < n; v++ {
		if !deleted[v] {
			survivors = append(survivors, v)
		}
	}
	counts := make([]int64, len(survivors))
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir[int](k, rng)
		for v := 0; v < n; v++ {
			r.Add(v)
		}
		for d := range deleted {
			r.Forget(func(v int) bool { return v == d })
		}
		for _, v := range r.Sample() {
			if deleted[v] {
				t.Fatalf("forgotten value %d still sampled", v)
			}
		}
		for i, s := range survivors {
			for _, v := range r.Sample() {
				if v == s {
					counts[i]++
				}
			}
		}
	}
	p, err := stats.ChiSquareUniformP(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("survivor inclusion not uniform after Forget: p = %g, counts %v", p, counts)
	}
}

// TestReadmitCompensationUniform runs the random-pairing loop the live
// package uses — delete marks a hole (d1) or a miss (d2), the next insert
// fills the hole with probability d1/(d1+d2) via Readmit — and checks the
// final sample is uniform over the final membership.
func TestReadmitCompensationUniform(t *testing.T) {
	const (
		n      = 30 // initial members 0..n-1
		k      = 8
		trials = 4000
	)
	rng := rand.New(rand.NewSource(7))
	// Deterministic script: delete 6 of the originals, insert 6 newcomers.
	dels := []int{2, 9, 14, 20, 25, 28}
	inserts := []int{100, 101, 102, 103, 104, 105}
	final := make([]int, 0, n)
	isDel := map[int]bool{}
	for _, d := range dels {
		isDel[d] = true
	}
	for v := 0; v < n; v++ {
		if !isDel[v] {
			final = append(final, v)
		}
	}
	final = append(final, inserts...)
	counts := make([]int64, len(final))
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir[int](k, rng)
		for v := 0; v < n; v++ {
			r.Add(v)
		}
		d1, d2 := 0, 0
		for i, d := range dels {
			if r.Forget(func(v int) bool { return v == d }) {
				d1++
			} else {
				d2++
			}
			// Interleave: one insert after every delete (random pairing).
			ins := inserts[i]
			if d1+d2 > 0 {
				if rng.Intn(d1+d2) < d1 {
					r.Readmit(ins)
					d1--
				} else {
					d2--
				}
			} else {
				r.Add(ins)
			}
		}
		for i, m := range final {
			for _, v := range r.Sample() {
				if v == m {
					counts[i]++
				}
			}
		}
	}
	p, err := stats.ChiSquareUniformP(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("random-pairing sample not uniform: p = %g, counts %v", p, counts)
	}
}

func TestForgetReplaceReadmitSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := NewReservoir[int](4, rng)
	for v := 1; v <= 4; v++ {
		r.Add(v)
	}
	if r.Forget(func(v int) bool { return v == 99 }) {
		t.Fatal("Forget matched a value not in the sample")
	}
	if !r.Forget(func(v int) bool { return v == 2 }) {
		t.Fatal("Forget missed a sampled value")
	}
	if len(r.Sample()) != 3 {
		t.Fatalf("sample size %d after Forget, want 3", len(r.Sample()))
	}
	if !r.Replace(func(v int) bool { return v == 3 }, 33) {
		t.Fatal("Replace missed a sampled value")
	}
	found := false
	for _, v := range r.Sample() {
		if v == 33 {
			found = true
		}
		if v == 3 || v == 2 {
			t.Fatalf("stale value %d still sampled", v)
		}
	}
	if !found {
		t.Fatal("Replace did not install the new value")
	}
	r.Readmit(5)
	if len(r.Sample()) != 4 {
		t.Fatalf("sample size %d after Readmit, want 4", len(r.Sample()))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Readmit into a full reservoir did not panic")
		}
	}()
	r.Readmit(6)
}
