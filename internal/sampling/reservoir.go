// Package sampling provides the random-selection primitives of the paper:
// Algorithm R reservoir sampling (Vitter 1985), simple random sampling
// without replacement, weighted intermediate samples (the combiner output of
// MR-SQE), and the unified-sampler of Algorithm 1, which merges intermediate
// samples drawn from sets of different sizes into an unbiased final sample.
package sampling

import "math/rand"

// Reservoir maintains a uniform simple random sample of size at most k over
// a stream of items, using Algorithm R: the (i+1)-st item replaces a random
// reservoir slot with probability k/(i+1). At every point of the stream the
// reservoir holds a simple random sample of the items seen so far.
type Reservoir[T any] struct {
	k     int
	seen  int64
	items []T
	rng   *rand.Rand
}

// NewReservoir creates a reservoir of capacity k drawing randomness from rng.
// It panics if k is negative or rng is nil.
func NewReservoir[T any](k int, rng *rand.Rand) *Reservoir[T] {
	if k < 0 {
		panic("sampling: negative reservoir capacity")
	}
	if rng == nil {
		panic("sampling: nil rand source")
	}
	return &Reservoir[T]{k: k, items: make([]T, 0, k), rng: rng}
}

// Add offers one stream item to the reservoir.
func (r *Reservoir[T]) Add(item T) {
	r.seen++
	if len(r.items) < r.k {
		r.items = append(r.items, item)
		return
	}
	if r.k == 0 {
		return
	}
	// Replace a uniformly chosen slot with probability k/seen.
	j := r.rng.Int63n(r.seen)
	if j < int64(r.k) {
		r.items[j] = item
	}
}

// Seen returns the number of items offered so far.
func (r *Reservoir[T]) Seen() int64 { return r.seen }

// Cap returns the reservoir capacity k.
func (r *Reservoir[T]) Cap() int { return r.k }

// Sample returns the current sample. The returned slice is owned by the
// reservoir; callers that keep it past further Add calls must copy it.
func (r *Reservoir[T]) Sample() []T { return r.items }

// TakeSample returns the current sample and detaches it from the reservoir,
// which is reset to empty.
func (r *Reservoir[T]) TakeSample() []T {
	s := r.items
	r.items = make([]T, 0, r.k)
	r.seen = 0
	return s
}
