// Package sampling provides the random-selection primitives of the paper:
// reservoir sampling (Algorithm L, Li 1994 — distribution-identical to the
// Algorithm R of Vitter 1985 that the paper cites, but with geometric skip
// counts so RNG work is O(k(1+log(n/k))) instead of O(n)), simple random
// sampling without replacement, weighted intermediate samples (the combiner
// output of MR-SQE), and the unified-sampler of Algorithm 1, which merges
// intermediate samples drawn from sets of different sizes into an unbiased
// final sample.
package sampling

import (
	"math"
	"math/rand"
)

// Reservoir maintains a uniform simple random sample of size at most k over
// a stream of items. At every point of the stream the reservoir holds a
// simple random sample of the items seen so far — the same guarantee as
// Algorithm R, where the (i+1)-st item replaces a random reservoir slot with
// probability k/(i+1).
//
// Internally it runs Algorithm L: once the reservoir is full it draws, from
// the same k/(i+1) acceptance law, the geometrically distributed count of
// upcoming items that will all be rejected. Those items cost one counter
// decrement each — no RNG call — and the Skip fast path lets batch callers
// consume a whole run of rejected items in O(1).
type Reservoir[T any] struct {
	k     int
	seen  int64
	items []T
	rng   *rand.Rand

	// Algorithm L state, valid only while the reservoir is full: w is the
	// running estimate of the largest "priority" in the reservoir and skip
	// is how many further items will be rejected before one is accepted.
	w    float64
	skip int64
}

// NewReservoir creates a reservoir of capacity k drawing randomness from rng.
// It panics if k is negative or rng is nil.
func NewReservoir[T any](k int, rng *rand.Rand) *Reservoir[T] {
	if k < 0 {
		panic("sampling: negative reservoir capacity")
	}
	if rng == nil {
		panic("sampling: nil rand source")
	}
	return &Reservoir[T]{k: k, items: make([]T, 0, k), rng: rng}
}

// Add offers one stream item to the reservoir.
func (r *Reservoir[T]) Add(item T) {
	r.seen++
	if len(r.items) < r.k {
		r.items = append(r.items, item)
		if len(r.items) == r.k {
			r.w = 1
			r.advance()
		}
		return
	}
	if r.k == 0 {
		return
	}
	if r.skip > 0 {
		r.skip--
		return
	}
	r.items[r.rng.Intn(r.k)] = item
	r.advance()
}

// AddSlice offers every item of the slice in order, equivalent to calling
// Add on each (it consumes the RNG identically, so the two forms produce
// byte-identical reservoirs), but consumes runs of rejected items through
// the Skip fast path in O(1) per run.
func (r *Reservoir[T]) AddSlice(items []T) {
	i := 0
	for i < len(items) && len(r.items) < r.k {
		r.Add(items[i])
		i++
	}
	if i == len(items) {
		return
	}
	if r.k == 0 {
		r.seen += int64(len(items) - i)
		return
	}
	for i < len(items) {
		i += int(r.Skip(int64(len(items) - i)))
		if i == len(items) {
			return
		}
		// items[i] is the next accepted item.
		r.seen++
		r.items[r.rng.Intn(r.k)] = items[i]
		r.advance()
		i++
	}
}

// Skip consumes up to n upcoming stream positions that the reservoir would
// reject anyway and returns how many it consumed (their items need not be
// materialized — this is the sublinear fast path for callers that can seek
// within their data). It never consumes a position whose item would be
// accepted, and returns 0 while the reservoir is still filling, so callers
// must offer the position it stopped at via Add or AddSlice.
func (r *Reservoir[T]) Skip(n int64) int64 {
	if n <= 0 {
		return 0
	}
	if r.k == 0 {
		r.seen += n
		return n
	}
	if len(r.items) < r.k {
		return 0
	}
	m := n
	if r.skip < m {
		m = r.skip
	}
	r.skip -= m
	r.seen += m
	return m
}

// advance draws the next acceptance gap of Algorithm L: shrink w by a
// U^(1/k) factor, then draw the geometric count of rejections until the
// next acceptance.
func (r *Reservoir[T]) advance() {
	r.w *= math.Exp(math.Log(r.uniform()) / float64(r.k))
	s := math.Floor(math.Log(r.uniform()) / math.Log1p(-r.w))
	if s >= math.MaxInt64 || math.IsNaN(s) {
		r.skip = math.MaxInt64
		return
	}
	r.skip = int64(s)
}

// uniform draws from the open interval (0, 1); Algorithm L's logarithms
// need a nonzero variate.
func (r *Reservoir[T]) uniform() float64 {
	for {
		if v := r.rng.Float64(); v > 0 {
			return v
		}
	}
}

// Forget removes the first item satisfying match from the reservoir and
// reports whether one was removed. The slot is back-filled with the last
// item (sample order is irrelevant to a simple random sample), the stream
// count is untouched, and the Algorithm L skip state stays valid for the
// continuation of the stream.
//
// Statistically, removing a specific population member from a simple random
// sample leaves a simple random sample of the remaining population: if the
// member was sampled, the k−1 survivors are an SRS of size k−1 over the
// other members; if it was not, the untouched sample already is one.
// TestForgetKeepsUniformity proves the inclusion probabilities stay uniform.
// Forget is the deletion half of dynamic-set maintenance (see internal/live);
// the insertion half compensates the hole via Readmit. A caller that instead
// offers further stream items with Add after a Forget gets refill-on-arrival
// semantics (the reservoir looks under-full, so the next items are accepted
// outright), which over-represents them — dynamic sets must pair Forget with
// Readmit-based compensation to stay uniform.
func (r *Reservoir[T]) Forget(match func(T) bool) bool {
	for i := range r.items {
		if match(r.items[i]) {
			last := len(r.items) - 1
			r.items[i] = r.items[last]
			var zero T
			r.items[last] = zero
			r.items = r.items[:last]
			return true
		}
	}
	return false
}

// Replace swaps the first item satisfying match for item, in place, and
// reports whether a swap happened. It exists for attribute updates that keep
// the member in the same stratum: the member's identity (and hence the
// sample's distribution) is unchanged, only its payload is refreshed.
func (r *Reservoir[T]) Replace(match func(T) bool, item T) bool {
	for i := range r.items {
		if match(r.items[i]) {
			r.items[i] = item
			return true
		}
	}
	return false
}

// Readmit appends an item into a hole left by Forget without consuming the
// stream position or the Algorithm L skip state — the random-pairing
// compensation step: a caller that pairs each insertion against an earlier
// uncompensated deletion (choosing the in-sample branch with probability
// d1/(d1+d2)) keeps the reservoir a uniform sample of the evolving set.
// It panics when the reservoir is already at capacity, which would mean the
// caller's deletion/insertion bookkeeping is broken.
func (r *Reservoir[T]) Readmit(item T) {
	if len(r.items) >= r.k {
		panic("sampling: Readmit into a full reservoir")
	}
	r.items = append(r.items, item)
}

// Seen returns the number of items offered so far.
func (r *Reservoir[T]) Seen() int64 { return r.seen }

// Cap returns the reservoir capacity k.
func (r *Reservoir[T]) Cap() int { return r.k }

// Sample returns the current sample. The returned slice is owned by the
// reservoir: a later Add may overwrite its elements in place. Callers that
// keep it past further Add calls must copy it (or use TakeSample, which
// detaches the slice).
func (r *Reservoir[T]) Sample() []T { return r.items }

// TakeSample returns the current sample and detaches it from the reservoir:
// the reservoir is reset to an empty state (fresh k-capacity backing array,
// zero Seen, cleared skip state), so later Add calls can never alias or
// overwrite the returned slice.
func (r *Reservoir[T]) TakeSample() []T {
	s := r.items
	r.items = make([]T, 0, r.k)
	r.seen = 0
	r.w = 0
	r.skip = 0
	return s
}
