package sampling

// Weighted is an intermediate sample S = (S̄, N̄): the sample itself and the
// size of the set it was drawn from. It is the value type flowing between
// the combine and reduce phases of MR-SQE and MR-MQE; a single raw tuple is
// represented as ({t}, 1), matching the map output of MR-MQE in the paper.
type Weighted[T any] struct {
	Sample []T
	N      int64
}

// Singleton wraps one item as the weighted sample ({item}, 1).
func Singleton[T any](item T) Weighted[T] {
	return Weighted[T]{Sample: []T{item}, N: 1}
}

// TotalN sums the source-set sizes of the weighted samples.
func TotalN[T any](parts []Weighted[T]) int64 {
	var n int64
	for _, p := range parts {
		n += p.N
	}
	return n
}

// TotalSampled sums the intermediate sample sizes Σ|S̄_i|.
func TotalSampled[T any](parts []Weighted[T]) int {
	n := 0
	for _, p := range parts {
		n += len(p.Sample)
	}
	return n
}

// Sizer lets the MapReduce shuffle account bytes for weighted samples whose
// element type reports its own size.
type Sizer interface {
	ByteSize() int
}

// ByteSize reports the approximate wire size of the weighted sample: 8 bytes
// for N plus the element sizes (or 8 bytes per element when the element type
// does not implement Sizer).
func (w Weighted[T]) ByteSize() int {
	n := 8
	for _, item := range w.Sample {
		if s, ok := any(item).(Sizer); ok {
			n += s.ByteSize()
		} else {
			n += 8
		}
	}
	return n
}
