package sampling

import (
	"math/rand"
	"sort"
)

// UnifiedSample implements Algorithm 1 of the paper (unified-sampler): given
// K intermediate samples S̄_1..S̄_K drawn from disjoint sets of sizes N_1..N_K,
// it selects n items such that the result is a simple random sample of the
// union of the source sets.
//
// It first virtually selects n indexes uniformly from [1, ΣN_i]; the count of
// indexes falling into block i determines how many items are drawn (uniformly,
// without replacement) from S̄_i. When Σ|S̄_i| < n the union of all samples is
// returned, per line 2 of Algorithm 1.
//
// Correctness requires |S̄_i| == min(N_i, n) for every part — i.e. each
// intermediate sample either kept everything (|S̄_i| = N_i) or holds at least
// n items, which the MR-SQE combiner guarantees (its reservoirs have
// capacity n). The function panics if a block is asked for more items than
// its intermediate sample holds, which indicates a violated precondition.
func UnifiedSample[T any](parts []Weighted[T], n int, rng *rand.Rand) []T {
	if n <= 0 {
		return nil
	}
	if TotalSampled(parts) < n {
		out := make([]T, 0, TotalSampled(parts))
		for _, p := range parts {
			out = append(out, p.Sample...)
		}
		return out
	}
	total := TotalN(parts)
	idx := SRSIndexes(total, n, rng)
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })

	out := make([]T, 0, n)
	var lo int64 // block i covers virtual indexes [lo, lo+N_i)
	p := 0       // cursor into the sorted index list
	for _, part := range parts {
		hi := lo + part.N
		c := 0
		for p < len(idx) && idx[p] < hi {
			c++
			p++
		}
		if c > 0 {
			if c > len(part.Sample) {
				panic("sampling: unified-sampler precondition violated: block sample smaller than its draw count")
			}
			drawn, _ := DrawWithoutReplacement(append([]T(nil), part.Sample...), c, rng)
			out = append(out, drawn...)
		}
		lo = hi
	}
	return out
}
