package sampling

import (
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// TestUnifiedSampleExactSize: the result has min(Σ|S̄_i|, n) items.
func TestUnifiedSampleExactSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	parts := []Weighted[int]{
		{Sample: []int{1, 2, 3}, N: 10},
		{Sample: []int{4, 5, 6}, N: 20},
	}
	if got := UnifiedSample(parts, 4, rng); len(got) != 4 {
		t.Fatalf("got %d items, want 4", len(got))
	}
	if got := UnifiedSample(parts, 10, rng); len(got) != 6 {
		t.Fatalf("insufficient case: got %d, want all 6", len(got))
	}
	if got := UnifiedSample(parts, 0, rng); len(got) != 0 {
		t.Fatalf("n=0: got %d", len(got))
	}
}

// TestUnifiedSampleSection42Example reproduces the paper's Section 4.2
// walk-through: S1 holds 2 males of 4, S2 holds 2 males of 8; selecting 2
// males overall must give every one of the 12 males probability 2/12 = 1/6 —
// so a male of S1's *intermediate sample* appears with probability
// (1/6)/(1/2) = 1/3 and one of S2's with (1/6)/(1/4) = 2/3.
func TestUnifiedSampleSection42Example(t *testing.T) {
	const runs = 60000
	rng := rand.New(rand.NewSource(2))
	var fromS1 int64
	for run := 0; run < runs; run++ {
		parts := []Weighted[string]{
			{Sample: []string{"s1a", "s1b"}, N: 4},
			{Sample: []string{"s2a", "s2b"}, N: 8},
		}
		for _, v := range UnifiedSample(parts, 2, rng) {
			if v == "s1a" || v == "s1b" {
				fromS1++
			}
		}
	}
	// E[selected from block 1] per run = 2 * 4/12 = 2/3.
	got := float64(fromS1) / runs
	if got < 0.64 || got > 0.70 {
		t.Fatalf("mean draws from S1 = %.4f, want ≈ 2/3", got)
	}
}

// TestUnifiedSampleUniformOverVirtualPopulation: with exhaustive blocks
// (samples = whole sets), every element of the union must be included
// uniformly.
func TestUnifiedSampleUniformOverVirtualPopulation(t *testing.T) {
	const runs = 20000
	rng := rand.New(rand.NewSource(3))
	counts := make([]int64, 9)
	for run := 0; run < runs; run++ {
		parts := []Weighted[int]{
			{Sample: []int{0, 1}, N: 2},
			{Sample: []int{2, 3, 4, 5}, N: 4},
			{Sample: []int{6, 7, 8}, N: 3},
		}
		for _, v := range UnifiedSample(parts, 3, rng) {
			counts[v]++
		}
	}
	p, err := stats.ChiSquareUniformP(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("unified sample not uniform: p = %g, counts = %v", p, counts)
	}
}

// TestUnifiedSampleSubsampledBlocksUnbiased: blocks hold intermediate
// samples of capacity n (as the MR-SQE combiner produces); inclusion must
// still be uniform over the *source* population. Block sizes differ to
// expose the 1/4-vs-1/8 bias the paper warns about.
func TestUnifiedSampleSubsampledBlocksUnbiased(t *testing.T) {
	const runs = 30000
	const n = 2
	rng := rand.New(rand.NewSource(4))
	// Source sets: block A = {0..3}, block B = {4..11}.
	counts := make([]int64, 12)
	for run := 0; run < runs; run++ {
		a := SRS([]int{0, 1, 2, 3}, n, rng)
		b := SRS([]int{4, 5, 6, 7, 8, 9, 10, 11}, n, rng)
		parts := []Weighted[int]{
			{Sample: a, N: 4},
			{Sample: b, N: 8},
		}
		for _, v := range UnifiedSample(parts, n, rng) {
			counts[v]++
		}
	}
	p, err := stats.ChiSquareUniformP(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("end-to-end inclusion biased: p = %g, counts = %v", p, counts)
	}
}

func TestUnifiedSamplePreconditionPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	defer func() {
		if recover() == nil {
			t.Fatal("want panic when a block's sample is smaller than its draw count")
		}
	}()
	// Block claims N=100 but only has 1 sampled item while the other block
	// is tiny — with n=3 the virtual draw will demand >1 from block 1.
	parts := []Weighted[int]{
		{Sample: []int{1}, N: 100},
		{Sample: []int{2, 3}, N: 2},
	}
	for i := 0; i < 100; i++ {
		UnifiedSample(parts, 3, rng)
	}
}

func TestWeightedHelpers(t *testing.T) {
	w := Singleton(42)
	if w.N != 1 || len(w.Sample) != 1 || w.Sample[0] != 42 {
		t.Fatalf("Singleton = %+v", w)
	}
	parts := []Weighted[int]{{Sample: []int{1}, N: 5}, {Sample: []int{2, 3}, N: 7}}
	if TotalN(parts) != 12 {
		t.Fatalf("TotalN = %d", TotalN(parts))
	}
	if TotalSampled(parts) != 3 {
		t.Fatalf("TotalSampled = %d", TotalSampled(parts))
	}
	if w.ByteSize() != 16 { // 8 for N + 8 default per int element
		t.Fatalf("ByteSize = %d", w.ByteSize())
	}
}
