package sampling_test

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sampling"
)

// A reservoir holds a uniform sample of a stream without knowing its length
// in advance.
func ExampleReservoir() {
	rng := rand.New(rand.NewSource(42))
	r := sampling.NewReservoir[int](3, rng)
	for i := 0; i < 1000; i++ {
		r.Add(i)
	}
	fmt.Println("seen:", r.Seen(), "sample size:", len(r.Sample()))
	// Output:
	// seen: 1000 sample size: 3
}

// The unified sampler merges per-machine samples of *different-sized* source
// sets without bias — the key to MR-SQE's correctness.
func ExampleUnifiedSample() {
	rng := rand.New(rand.NewSource(7))
	parts := []sampling.Weighted[string]{
		{Sample: []string{"a1", "a2"}, N: 4}, // 2 sampled from a set of 4
		{Sample: []string{"b1", "b2"}, N: 8}, // 2 sampled from a set of 8
	}
	final := sampling.UnifiedSample(parts, 2, rng)
	sort.Strings(final)
	fmt.Println("final sample size:", len(final))
	// Output:
	// final sample size: 2
}
