package sampling

import (
	"math/rand"
	"testing"
)

func BenchmarkReservoirAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	r := NewReservoir[int](100, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Add(i)
	}
}

// BenchmarkReservoirSkip streams a large slice through the reservoir in one
// call, the path the MR-SQE combiner uses for full-split scans. With
// Algorithm L's geometric skips the per-item cost is a counter decrement;
// with Algorithm R it is one RNG draw per item.
func BenchmarkReservoirSkip(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := make([]int, 100_000)
	for i := range items {
		items[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh reservoir per iteration: one full-split combiner scan.
		r := NewReservoir[int](100, rng)
		r.AddSlice(items)
	}
}

func BenchmarkSRS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := make([]int, 10000)
	for i := range items {
		items[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SRS(items, 100, rng)
	}
}

func BenchmarkSRSIndexes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SRSIndexes(1_000_000, 100, rng)
	}
}

func BenchmarkUnifiedSample(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	parts := make([]Weighted[int], 20)
	v := 0
	for p := range parts {
		sample := make([]int, 50)
		for i := range sample {
			sample[i] = v
			v++
		}
		parts[p] = Weighted[int]{Sample: sample, N: int64(1000 + p*100)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnifiedSample(parts, 50, rng)
	}
}
