package lp

import (
	"math"
	"testing"
)

// warmProb is a small production-shaped problem: equality rows with 0/1
// coefficients and a capacity row, the structure of a CPS block.
func warmProb(f1, f2, limit float64) *Problem {
	p := NewProblem(3)
	p.Obj = []float64{1, 2, 3}
	p.AddConstraint([]float64{1, 0, 1}, EQ, f1)
	p.AddConstraint([]float64{0, 1, 1}, EQ, f2)
	p.AddConstraint([]float64{1, 1, 1}, LE, limit)
	return p
}

func TestSolveRecordsBasis(t *testing.T) {
	sol, err := Solve(warmProb(3, 4, 10))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if len(sol.Basis) != 3 {
		t.Fatalf("Basis = %v, want one entry per constraint row", sol.Basis)
	}
}

// TestSolveFromMatchesCold: warm-starting from the previous optimum — both on
// the identical problem and after the right-hand sides moved — reaches the
// same optimum as a cold solve, bit for bit on this integral data.
func TestSolveFromMatchesCold(t *testing.T) {
	first, err := Solve(warmProb(3, 4, 10))
	if err != nil {
		t.Fatal(err)
	}
	for _, rhs := range [][3]float64{{3, 4, 10}, {5, 2, 9}, {1, 1, 2}, {0, 6, 6}} {
		p := warmProb(rhs[0], rhs[1], rhs[2])
		cold, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := SolveFrom(p, first.Basis)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("rhs %v: warm %v, cold %v", rhs, warm.Status, cold.Status)
		}
		if warm.Objective != cold.Objective {
			t.Errorf("rhs %v: warm objective %x, cold %x", rhs, warm.Objective, cold.Objective)
		}
	}
}

// TestSolveFromBadBasis: every malformed basis silently degrades to a cold
// solve rather than failing.
func TestSolveFromBadBasis(t *testing.T) {
	p := warmProb(3, 4, 10)
	cold, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, basis := range [][]int{
		nil,           // wrong length
		{0, 1},        // wrong length
		{0, 1, 99},    // out of range
		{1, 1, 2},     // duplicate
		{0, 1, -1},    // negative
		{0, 0 + 1, 3}, // slack of an EQ row does not exist; 3 is x-col limit edge
	} {
		sol, err := SolveFrom(p, basis)
		if err != nil {
			t.Fatalf("basis %v: %v", basis, err)
		}
		if sol.Status != Optimal || sol.Objective != cold.Objective {
			t.Errorf("basis %v: %v obj %g, want cold optimum %g", basis, sol.Status, sol.Objective, cold.Objective)
		}
	}
}

// TestSolveFromInfeasibleBasis: a basis whose vertex violates x ≥ 0 under new
// right-hand sides is rejected at install time and the cold path answers.
func TestSolveFromInfeasibleBasis(t *testing.T) {
	// min -x s.t. x ≤ 5: optimum x=5 with the structural column basic.
	p := NewProblem(1)
	p.Obj = []float64{-1}
	p.AddConstraint([]float64{1}, LE, 5)
	sol, err := Solve(p)
	if err != nil || sol.Status != Optimal || sol.X[0] != 5 {
		t.Fatalf("cold: %v %+v", err, sol)
	}
	// Same structure, negative capacity after flip: the old basis cannot be
	// feasible, so SolveFrom must fall back and agree with Solve.
	q := NewProblem(1)
	q.Obj = []float64{-1}
	q.AddConstraint([]float64{1}, GE, 7) // old slack basis now infeasible at 0
	cold, err := Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := SolveFrom(q, []int{1}) // slack basic ⇒ x=0 ⇒ violates ≥ 7
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != cold.Status || warm.Objective != cold.Objective {
		t.Errorf("warm %+v, cold %+v", warm, cold)
	}
	if warm.Status == Optimal && math.Abs(warm.X[0]-7) > 1e-9 {
		t.Errorf("x = %v, want 7", warm.X)
	}
}
