package lp_test

import (
	"fmt"

	"repro/internal/lp"
)

// Solve a small sharing block: two surveys need 3 and 5 individuals of the
// same kind; sharing one individual between both costs one interview.
func ExampleSolve() {
	p := lp.NewProblem(3) // X{1}, X{2}, X{1,2}
	p.Obj = []float64{4, 4, 4}
	p.AddConstraint([]float64{1, 0, 1}, lp.EQ, 3)  // survey 1 total
	p.AddConstraint([]float64{0, 1, 1}, lp.EQ, 5)  // survey 2 total
	p.AddConstraint([]float64{1, 1, 1}, lp.LE, 20) // population limit
	sol, _ := lp.Solve(p)
	fmt.Printf("status=%v cost=$%.0f shared=%.0f\n", sol.Status, sol.Objective, sol.X[2])
	// Output:
	// status=optimal cost=$20 shared=3
}

// Branch and bound yields exact integer optima for the same blocks.
func ExampleSolveInteger() {
	p := lp.NewProblem(1)
	p.Obj = []float64{1}
	p.AddConstraint([]float64{2}, lp.GE, 3) // 2x >= 3 → x >= 1.5 → x = 2
	sol, _ := lp.SolveInteger(p, 0)
	fmt.Printf("x=%.0f\n", sol.X[0])
	// Output:
	// x=2
}
