package lp

import (
	"math/rand"
	"testing"
)

// sharingBlock builds a Figure 3 per-σ block for n surveys with random
// frequencies: 2^n−1 variables, n+1 constraints.
func sharingBlock(n int, rng *rand.Rand) *Problem {
	nv := (1 << n) - 1
	p := NewProblem(nv)
	for v := 0; v < nv; v++ {
		p.Obj[v] = float64(rng.Intn(10) + 1)
	}
	var total float64
	for i := 0; i < n; i++ {
		row := make([]float64, nv)
		for v := 0; v < nv; v++ {
			if (v+1)&(1<<i) != 0 {
				row[v] = 1
			}
		}
		f := float64(rng.Intn(20) + 1)
		total += f
		_ = p.AddConstraint(row, EQ, f)
	}
	row := make([]float64, nv)
	for v := range row {
		row[v] = 1
	}
	_ = p.AddConstraint(row, LE, total)
	return p
}

func BenchmarkSimplexSharingBlock(b *testing.B) {
	for _, n := range []int{3, 6, 9} {
		b.Run(itoa(n)+"-surveys", func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			probs := make([]*Problem, 16)
			for i := range probs {
				probs[i] = sharingBlock(n, rng)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol, err := Solve(probs[i%len(probs)])
				if err != nil || sol.Status != Optimal {
					b.Fatalf("%v %v", sol, err)
				}
			}
		})
	}
}

func BenchmarkBranchAndBoundSharingBlock(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	probs := make([]*Problem, 16)
	for i := range probs {
		probs[i] = sharingBlock(4, rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveInteger(probs[i%len(probs)], 0); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
