package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveIntegerSimple(t *testing.T) {
	// min -x - y s.t. 2x + 3y <= 12, x <= 4 with fractional LP optimum.
	p := NewProblem(2)
	p.Obj = []float64{-1, -1}
	mustAdd(t, p, []float64{2, 3}, LE, 12)
	mustAdd(t, p, []float64{1, 0}, LE, 4)
	sol, err := SolveInteger(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	// Integer optimum: x=4, y=1 → obj -5 (LP relaxation would give
	// x=4, y=4/3 → -16/3 ≈ -5.33).
	if !approx(sol.Objective, -5) {
		t.Fatalf("objective %g, want -5", sol.Objective)
	}
	for _, v := range sol.X {
		if math.Abs(v-math.Round(v)) > 1e-9 {
			t.Fatalf("non-integral solution %v", sol.X)
		}
	}
}

func TestSolveIntegerInfeasible(t *testing.T) {
	// 2x = 3 has no integer solution (x=1.5 LP-feasible).
	p := NewProblem(1)
	p.Obj = []float64{1}
	mustAdd(t, p, []float64{2}, EQ, 3)
	sol, err := SolveInteger(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestSolveIntegerAlreadyIntegral(t *testing.T) {
	p := NewProblem(2)
	p.Obj = []float64{1, 1}
	mustAdd(t, p, []float64{1, 1}, EQ, 4)
	sol, err := SolveInteger(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 4) {
		t.Fatalf("objective %g", sol.Objective)
	}
}

func TestSolveIntegerNodeLimit(t *testing.T) {
	// Root relaxation is fractional (x = 1.5), so branching is required
	// and a 1-node budget must error out.
	p := NewProblem(1)
	p.Obj = []float64{1}
	mustAdd(t, p, []float64{2}, EQ, 3)
	if _, err := SolveInteger(p, 1); err == nil {
		t.Fatal("want node-limit error")
	}
}

// bruteForceSharing computes the optimal integral sharing assignment for a
// 2-survey Figure 3 block by enumeration.
func bruteForceSharing(f1, f2, limit int64, c1, c2, c12 float64) float64 {
	best := math.Inf(1)
	for share := int64(0); share <= min64(f1, f2); share++ {
		x1 := f1 - share
		x2 := f2 - share
		if x1+x2+share > limit {
			continue
		}
		cost := float64(x1)*c1 + float64(x2)*c2 + float64(share)*c12
		if cost < best {
			best = cost
		}
	}
	return best
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TestQuickIntegerSharingMatchesBruteForce: random 2-survey blocks; branch
// and bound must match exhaustive search.
func TestQuickIntegerSharingMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f1 := rng.Int63n(8) + 1
		f2 := rng.Int63n(8) + 1
		limit := max64(f1, f2) + rng.Int63n(6)
		c1 := float64(rng.Intn(9) + 1)
		c2 := float64(rng.Intn(9) + 1)
		c12 := float64(rng.Intn(25) + 1)

		p := NewProblem(3) // X{1}, X{2}, X{1,2}
		p.Obj = []float64{c1, c2, c12}
		_ = p.AddConstraint([]float64{1, 0, 1}, EQ, float64(f1))
		_ = p.AddConstraint([]float64{0, 1, 1}, EQ, float64(f2))
		_ = p.AddConstraint([]float64{1, 1, 1}, LE, float64(limit))
		sol, err := SolveInteger(p, 0)
		if err != nil || sol.Status != Optimal {
			return false
		}
		want := bruteForceSharing(f1, f2, limit, c1, c2, c12)
		return math.Abs(sol.Objective-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestQuickLPLowerBoundsIP: on random feasible blocks, C_LP ≤ C_IP — the
// ordering the optimality analysis of Section 6.2.2 relies on.
func TestQuickLPLowerBoundsIP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := rng.Intn(4) + 2
		p := NewProblem(nv)
		for j := 0; j < nv; j++ {
			p.Obj[j] = float64(rng.Intn(10) + 1)
		}
		row := make([]float64, nv)
		for j := range row {
			row[j] = 1
		}
		_ = p.AddConstraint(row, GE, float64(rng.Intn(10)+1))
		lpSol, err := Solve(p)
		if err != nil || lpSol.Status != Optimal {
			return false
		}
		ipSol, err := SolveInteger(p, 0)
		if err != nil || ipSol.Status != Optimal {
			return false
		}
		return lpSol.Objective <= ipSol.Objective+1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusAndRelStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("Status.String wrong")
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Fatal("Rel.String wrong")
	}
}
