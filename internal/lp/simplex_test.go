package lp

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSolveSimpleLE(t *testing.T) {
	// min -x - 2y s.t. x + y <= 4, x <= 2  → x=0, y=4, obj=-8.
	p := NewProblem(2)
	p.Obj = []float64{-1, -2}
	mustAdd(t, p, []float64{1, 1}, LE, 4)
	mustAdd(t, p, []float64{1, 0}, LE, 2)
	sol := mustSolve(t, p)
	if !approx(sol.Objective, -8) {
		t.Fatalf("objective %g, want -8", sol.Objective)
	}
	if !approx(sol.X[1], 4) {
		t.Fatalf("y = %g, want 4", sol.X[1])
	}
}

func TestSolveWithEquality(t *testing.T) {
	// min x + y s.t. x + y = 3, x - y <= 1 → any point on x+y=3 has obj 3.
	p := NewProblem(2)
	p.Obj = []float64{1, 1}
	mustAdd(t, p, []float64{1, 1}, EQ, 3)
	mustAdd(t, p, []float64{1, -1}, LE, 1)
	sol := mustSolve(t, p)
	if !approx(sol.Objective, 3) {
		t.Fatalf("objective %g, want 3", sol.Objective)
	}
	if !approx(sol.X[0]+sol.X[1], 3) {
		t.Fatalf("x+y = %g, want 3", sol.X[0]+sol.X[1])
	}
}

func TestSolveWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 2 → x=10? check: y=0, x=10 obj 20;
	// or x=2,y=8 obj 28. Optimal x=10, y=0, obj=20.
	p := NewProblem(2)
	p.Obj = []float64{2, 3}
	mustAdd(t, p, []float64{1, 1}, GE, 10)
	mustAdd(t, p, []float64{1, 0}, GE, 2)
	sol := mustSolve(t, p)
	if !approx(sol.Objective, 20) {
		t.Fatalf("objective %g, want 20", sol.Objective)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.Obj = []float64{1}
	mustAdd(t, p, []float64{1}, GE, 5)
	mustAdd(t, p, []float64{1}, LE, 3)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.Obj = []float64{-1}
	mustAdd(t, p, []float64{1}, GE, 0)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", sol.Status)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -5 (i.e. x >= 5) → x=5.
	p := NewProblem(1)
	p.Obj = []float64{1}
	mustAdd(t, p, []float64{-1}, LE, -5)
	sol := mustSolve(t, p)
	if !approx(sol.X[0], 5) {
		t.Fatalf("x = %g, want 5", sol.X[0])
	}
}

func TestSolveDegenerate(t *testing.T) {
	// A classic degenerate vertex; Bland's rule must terminate.
	p := NewProblem(3)
	p.Obj = []float64{-0.75, 150, -0.02}
	mustAdd(t, p, []float64{0.25, -60, -0.04}, LE, 0)
	mustAdd(t, p, []float64{0.5, -90, -0.02}, LE, 0)
	mustAdd(t, p, []float64{0, 0, 1}, LE, 1)
	sol := mustSolve(t, p)
	if !approx(sol.Objective, -0.05) {
		t.Fatalf("objective %g, want -0.05", sol.Objective)
	}
}

func TestSolveZeroVariables(t *testing.T) {
	p := NewProblem(0)
	sol := mustSolve(t, p)
	if sol.Objective != 0 {
		t.Fatalf("objective %g", sol.Objective)
	}
}

func TestSolveRedundantEqualities(t *testing.T) {
	// x + y = 2 stated twice must not break phase 1.
	p := NewProblem(2)
	p.Obj = []float64{1, 2}
	mustAdd(t, p, []float64{1, 1}, EQ, 2)
	mustAdd(t, p, []float64{1, 1}, EQ, 2)
	sol := mustSolve(t, p)
	if !approx(sol.Objective, 2) { // x=2, y=0
		t.Fatalf("objective %g, want 2", sol.Objective)
	}
}

// TestSolveSharingShape solves the Figure 3 block for the paper's Example 6
// intuition: two surveys both want individuals of a selection with
// F1=3, F2=5, L=6; sharing costs one interview ($4). Optimal: share 3
// (X{1,2}=3), 2 alone for survey 2, cost 3·4 + 2·4 = 20.
func TestSolveSharingShape(t *testing.T) {
	// Variables: X{1}, X{2}, X{1,2}.
	p := NewProblem(3)
	p.Obj = []float64{4, 4, 4}
	mustAdd(t, p, []float64{1, 0, 1}, EQ, 3) // survey 1
	mustAdd(t, p, []float64{0, 1, 1}, EQ, 5) // survey 2
	mustAdd(t, p, []float64{1, 1, 1}, LE, 6) // L(σ)
	sol := mustSolve(t, p)
	if !approx(sol.Objective, 20) {
		t.Fatalf("objective %g, want 20", sol.Objective)
	}
	if !approx(sol.X[2], 3) {
		t.Fatalf("X{1,2} = %g, want 3", sol.X[2])
	}
}

func TestProblemHelpers(t *testing.T) {
	p := NewProblem(2)
	p.Obj = []float64{1, 4}
	p.Names = []string{"a", "b"}
	mustAdd(t, p, []float64{1}, LE, 3) // short row zero-extends
	if err := p.AddConstraint([]float64{1, 2, 3}, LE, 1); err == nil {
		t.Fatal("want error for too-long coefficient row")
	}
	cl := p.Clone()
	cl.Obj[0] = 99
	cl.Cons[0].Coeffs[0] = 99
	if p.Obj[0] != 1 || p.Cons[0].Coeffs[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
	s := p.String()
	if s == "" || p.NumVars() != 2 {
		t.Fatal("String/NumVars broken")
	}
}

func mustAdd(t *testing.T, p *Problem, coeffs []float64, rel Rel, b float64) {
	t.Helper()
	if err := p.AddConstraint(coeffs, rel, b); err != nil {
		t.Fatal(err)
	}
}

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v, want optimal", sol.Status)
	}
	return sol
}
