package lp

import (
	"fmt"
	"math"
)

// eps is the numeric tolerance of the solver.
const eps = 1e-9

// Solve runs the two-phase Simplex method on the problem and returns its
// status, an optimal vertex (when Optimal), and the objective value. The
// implementation is a dense tableau with Bland's smallest-index rule, which
// guarantees termination (no cycling) at the cost of some speed — acceptable
// for the query-sized LPs of MR-CPS.
func Solve(p *Problem) (*Solution, error) {
	n := p.NumVars()
	m := len(p.Cons)
	if n == 0 {
		return &Solution{Status: Optimal, X: nil, Objective: 0}, nil
	}

	// Count auxiliary columns: slack for LE, surplus for GE, artificial
	// for GE and EQ rows.
	numSlack := 0
	numArt := 0
	for _, c := range p.Cons {
		rel, b := c.Rel, c.B
		if b < 0 {
			rel = flip(rel)
		}
		switch rel {
		case LE:
			numSlack++
		case GE:
			numSlack++ // surplus
			numArt++
		case EQ:
			numArt++
		}
	}

	cols := n + numSlack + numArt + 1 // +1 for RHS
	t := newTableau(m, cols, n, numSlack)

	slackIdx := n
	artIdx := n + numSlack
	for i, c := range p.Cons {
		coeffs := c.Coeffs
		b := c.B
		rel := c.Rel
		sign := 1.0
		if b < 0 {
			sign = -1.0
			b = -b
			rel = flip(rel)
		}
		for j := 0; j < n; j++ {
			t.a[i][j] = sign * coeffs[j]
		}
		t.a[i][cols-1] = b
		switch rel {
		case LE:
			t.a[i][slackIdx] = 1
			t.basis[i] = slackIdx
			slackIdx++
		case GE:
			t.a[i][slackIdx] = -1
			slackIdx++
			t.a[i][artIdx] = 1
			t.basis[i] = artIdx
			t.artificial[artIdx] = true
			artIdx++
		case EQ:
			t.a[i][artIdx] = 1
			t.basis[i] = artIdx
			t.artificial[artIdx] = true
			artIdx++
		}
	}

	// Phase 1: minimise the sum of artificial variables.
	if numArt > 0 {
		phase1 := make([]float64, cols-1)
		for j := range phase1 {
			if t.artificial[j] {
				phase1[j] = 1
			}
		}
		t.setObjective(phase1)
		if status := t.iterate(); status == Unbounded {
			return nil, fmt.Errorf("lp: phase-1 unbounded (internal error)")
		}
		if t.objectiveValue() > 1e-7 {
			return &Solution{Status: Infeasible}, nil
		}
		if err := t.driveOutArtificials(); err != nil {
			return nil, err
		}
	}

	// Phase 2: minimise the real objective (artificial columns frozen).
	phase2 := make([]float64, cols-1)
	copy(phase2, p.Obj)
	t.setObjective(phase2)
	t.banArtificials()
	if status := t.iterate(); status == Unbounded {
		return &Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for i, bv := range t.basis {
		if bv < n {
			x[bv] = t.a[i][cols-1]
		}
	}
	var obj float64
	for j := 0; j < n; j++ {
		obj += p.Obj[j] * x[j]
	}
	return &Solution{
		Status:    Optimal,
		X:         x,
		Objective: obj,
		Basis:     append([]int(nil), t.basis...),
	}, nil
}

func flip(r Rel) Rel {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// tableau is a dense Simplex tableau: m constraint rows, one objective row,
// and a basis bookkeeping array.
type tableau struct {
	a          [][]float64 // m rows × cols (last col = RHS)
	obj        []float64   // reduced-cost row, length cols (last = -objective value)
	basis      []int       // basis[i] = column basic in row i
	artificial map[int]bool
	banned     map[int]bool
	numVars    int
	numSlack   int
	cols       int
}

func newTableau(m, cols, numVars, numSlack int) *tableau {
	t := &tableau{
		a:          make([][]float64, m),
		obj:        make([]float64, cols),
		basis:      make([]int, m),
		artificial: make(map[int]bool),
		banned:     make(map[int]bool),
		numVars:    numVars,
		numSlack:   numSlack,
		cols:       cols,
	}
	for i := range t.a {
		t.a[i] = make([]float64, cols)
	}
	return t
}

// setObjective installs a cost vector and prices out the current basis so
// reduced costs of basic variables are zero.
func (t *tableau) setObjective(cost []float64) {
	for j := 0; j < t.cols-1; j++ {
		t.obj[j] = cost[j]
	}
	t.obj[t.cols-1] = 0
	for i, bv := range t.basis {
		if c := t.obj[bv]; c != 0 {
			for j := 0; j < t.cols; j++ {
				t.obj[j] -= c * t.a[i][j]
			}
		}
	}
}

// objectiveValue returns the current objective (we store its negation in the
// RHS slot of the objective row).
func (t *tableau) objectiveValue() float64 { return -t.obj[t.cols-1] }

// banArtificials prevents artificial columns from re-entering the basis in
// phase 2.
func (t *tableau) banArtificials() {
	for j := range t.artificial {
		t.banned[j] = true
	}
}

// iterate runs Simplex pivots with Bland's rule until optimal or unbounded.
func (t *tableau) iterate() Status {
	for {
		// Entering column: smallest index with negative reduced cost.
		enter := -1
		for j := 0; j < t.cols-1; j++ {
			if t.banned[j] {
				continue
			}
			if t.obj[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Leaving row: min ratio, ties by smallest basis index (Bland).
		leave := -1
		best := math.Inf(1)
		for i := range t.a {
			if t.a[i][enter] > eps {
				ratio := t.a[i][t.cols-1] / t.a[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
}

// pivot makes column `enter` basic in row `leave`.
func (t *tableau) pivot(leave, enter int) {
	row := t.a[leave]
	pv := row[enter]
	for j := 0; j < t.cols; j++ {
		row[j] /= pv
	}
	for i := range t.a {
		if i == leave {
			continue
		}
		if f := t.a[i][enter]; f != 0 {
			for j := 0; j < t.cols; j++ {
				t.a[i][j] -= f * row[j]
			}
		}
	}
	if f := t.obj[enter]; f != 0 {
		for j := 0; j < t.cols; j++ {
			t.obj[j] -= f * row[j]
		}
	}
	t.basis[leave] = enter
}

// driveOutArtificials pivots remaining basic artificial variables out of the
// basis after a successful phase 1 (they must have value ~0). Rows that
// cannot pivot (all-zero) are redundant and left as-is.
func (t *tableau) driveOutArtificials() error {
	for i, bv := range t.basis {
		if !t.artificial[bv] {
			continue
		}
		if math.Abs(t.a[i][t.cols-1]) > 1e-7 {
			return fmt.Errorf("lp: artificial basic with nonzero value after phase 1")
		}
		pivoted := false
		for j := 0; j < t.numVars+t.numSlack; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		_ = pivoted // a redundant row may remain basic in the artificial at value 0
	}
	return nil
}
