package lp

import "math"

// SolveFrom solves the problem starting from a previously optimal basis
// instead of running phase 1. When the basis still identifies a feasible
// vertex of the (possibly re-parameterised) problem, the solve reduces to
// phase-2 pivots from that vertex — typically zero or a handful when only the
// right-hand sides moved, against a full two-phase solve from scratch. The
// basis must index structural or slack/surplus columns of a problem with the
// same constraint structure (see Solution.Basis for the column numbering).
//
// SolveFrom never fails where Solve would succeed: any basis it cannot use —
// wrong length, out-of-range or duplicate entries, singular after
// installation, or infeasible for the new right-hand sides — silently falls
// back to a cold Solve.
func SolveFrom(p *Problem, basis []int) (*Solution, error) {
	t, ok := installBasis(p, basis)
	if !ok {
		return Solve(p)
	}
	n := p.NumVars()
	phase2 := make([]float64, t.cols-1)
	copy(phase2, p.Obj)
	t.setObjective(phase2)
	if status := t.iterate(); status == Unbounded {
		return &Solution{Status: Unbounded}, nil
	}
	x := make([]float64, n)
	for i, bv := range t.basis {
		if bv < n {
			x[bv] = t.a[i][t.cols-1]
		}
	}
	var obj float64
	for j := 0; j < n; j++ {
		obj += p.Obj[j] * x[j]
	}
	return &Solution{
		Status:    Optimal,
		X:         x,
		Objective: obj,
		Basis:     append([]int(nil), t.basis...),
	}, nil
}

// installBasis builds the phase-2 tableau (structural + slack columns, no
// artificials) and makes basis[i] basic in row i by Gaussian elimination. It
// reports false — cold solve required — when the basis is malformed, a pivot
// element vanishes, or the resulting basic solution violates x ≥ 0.
func installBasis(p *Problem, basis []int) (*tableau, bool) {
	n := p.NumVars()
	m := len(p.Cons)
	if n == 0 || len(basis) != m {
		return nil, false
	}
	numSlack := 0
	for _, c := range p.Cons {
		rel := c.Rel
		if c.B < 0 {
			rel = flip(rel)
		}
		if rel == LE || rel == GE {
			numSlack++
		}
	}
	limit := n + numSlack
	seen := make(map[int]bool, m)
	for _, bv := range basis {
		if bv < 0 || bv >= limit || seen[bv] {
			return nil, false
		}
		seen[bv] = true
	}

	cols := limit + 1
	t := newTableau(m, cols, n, numSlack)
	slackIdx := n
	for i, c := range p.Cons {
		b := c.B
		rel := c.Rel
		sign := 1.0
		if b < 0 {
			sign = -1.0
			b = -b
			rel = flip(rel)
		}
		for j := 0; j < n; j++ {
			t.a[i][j] = sign * c.Coeffs[j]
		}
		t.a[i][cols-1] = b
		switch rel {
		case LE:
			t.a[i][slackIdx] = 1
			slackIdx++
		case GE:
			t.a[i][slackIdx] = -1
			slackIdx++
		}
	}
	for i, bv := range basis {
		if math.Abs(t.a[i][bv]) <= eps {
			return nil, false
		}
		t.pivot(i, bv)
	}
	for i := range t.a {
		if t.a[i][cols-1] < -eps {
			return nil, false
		}
	}
	return t, true
}
