package lp

import (
	"fmt"
	"math"
)

// intTol is the tolerance within which a value counts as integral.
const intTol = 1e-6

// SolveInteger solves the problem with all variables restricted to
// non-negative integers, by branch-and-bound over LP relaxations. maxNodes
// bounds the search (0 means a generous default); exceeding it returns an
// error rather than a silently suboptimal answer.
//
// The CPS optimality analysis (Section 6.2.2) uses this as the exact IP
// reference that the paper's LP relaxation is compared against.
func SolveInteger(p *Problem, maxNodes int) (*Solution, error) {
	if maxNodes <= 0 {
		maxNodes = 100000
	}
	best := &Solution{Status: Infeasible, Objective: math.Inf(1)}
	nodes := 0

	var search func(prob *Problem) error
	search = func(prob *Problem) error {
		nodes++
		if nodes > maxNodes {
			return fmt.Errorf("lp: branch-and-bound exceeded %d nodes", maxNodes)
		}
		sol, err := Solve(prob)
		if err != nil {
			return err
		}
		if sol.Status == Infeasible {
			return nil
		}
		if sol.Status == Unbounded {
			return fmt.Errorf("lp: integer program relaxation unbounded")
		}
		if best.Status == Optimal && sol.Objective >= best.Objective-intTol {
			return nil // bound: cannot beat incumbent
		}
		frac := mostFractional(sol.X)
		if frac < 0 {
			// Integral solution; it beats the incumbent (checked above).
			x := make([]float64, len(sol.X))
			for j, v := range sol.X {
				x[j] = math.Round(v)
			}
			best = &Solution{Status: Optimal, X: x, Objective: sol.Objective}
			return nil
		}
		v := sol.X[frac]
		down := prob.Clone()
		coef := unitRow(prob.NumVars(), frac)
		if err := down.AddConstraint(coef, LE, math.Floor(v)); err != nil {
			return err
		}
		if err := search(down); err != nil {
			return err
		}
		up := prob.Clone()
		if err := up.AddConstraint(coef, GE, math.Ceil(v)); err != nil {
			return err
		}
		return search(up)
	}

	if err := search(p); err != nil {
		return nil, err
	}
	if best.Status != Optimal {
		return &Solution{Status: Infeasible}, nil
	}
	return best, nil
}

// mostFractional returns the index of the variable farthest from an integer,
// or -1 if all are integral within tolerance.
func mostFractional(x []float64) int {
	best := -1
	bestDist := intTol
	for j, v := range x {
		f := math.Abs(v - math.Round(v))
		if f > bestDist {
			bestDist = f
			best = j
		}
	}
	return best
}

func unitRow(n, j int) []float64 {
	row := make([]float64, n)
	row[j] = 1
	return row
}
