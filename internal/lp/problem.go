// Package lp provides a self-contained linear-programming toolkit: a dense
// two-phase Simplex solver with Bland's anti-cycling rule, and a
// branch-and-bound integer solver layered on top of it. It replaces the
// Apache Commons Math Simplex used by the paper's implementation (the repo is
// stdlib-only) and additionally enables the LP-vs-IP optimality analysis of
// Section 6.2.2.
//
// Problems are minimisation problems over non-negative variables with
// ≤, ≥ and = constraints.
package lp

import (
	"fmt"
	"strings"
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // Σ a_j x_j ≤ b
	GE            // Σ a_j x_j ≥ b
	EQ            // Σ a_j x_j = b
)

// String renders the relation symbol.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Constraint is one linear constraint over the problem's variables. Coeffs
// may be shorter than the number of variables; missing entries are zero.
type Constraint struct {
	Coeffs []float64
	Rel    Rel
	B      float64
}

// Problem is: minimise Obj·x subject to the constraints, x ≥ 0.
type Problem struct {
	// Obj holds the objective coefficients; its length is the number of
	// variables.
	Obj []float64
	// Cons are the constraints.
	Cons []Constraint
	// Names optionally labels variables for debugging.
	Names []string
}

// NewProblem creates a minimisation problem with n variables.
func NewProblem(n int) *Problem {
	return &Problem{Obj: make([]float64, n)}
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.Obj) }

// AddConstraint appends a constraint. Coefficient vectors shorter than the
// variable count are zero-extended; longer ones are an error.
func (p *Problem) AddConstraint(coeffs []float64, rel Rel, b float64) error {
	if len(coeffs) > len(p.Obj) {
		return fmt.Errorf("lp: constraint has %d coefficients, problem has %d variables", len(coeffs), len(p.Obj))
	}
	c := make([]float64, len(p.Obj))
	copy(c, coeffs)
	p.Cons = append(p.Cons, Constraint{Coeffs: c, Rel: rel, B: b})
	return nil
}

// Clone deep-copies the problem, so branch-and-bound can add bound
// constraints without sharing state.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		Obj:   append([]float64(nil), p.Obj...),
		Cons:  make([]Constraint, len(p.Cons)),
		Names: append([]string(nil), p.Names...),
	}
	for i, c := range p.Cons {
		q.Cons[i] = Constraint{
			Coeffs: append([]float64(nil), c.Coeffs...),
			Rel:    c.Rel,
			B:      c.B,
		}
	}
	return q
}

// String renders the problem in a compact algebraic form for debugging.
func (p *Problem) String() string {
	var b strings.Builder
	b.WriteString("min ")
	b.WriteString(linComb(p.Obj, p.Names))
	b.WriteString("\ns.t.\n")
	for _, c := range p.Cons {
		fmt.Fprintf(&b, "  %s %s %g\n", linComb(c.Coeffs, p.Names), c.Rel, c.B)
	}
	b.WriteString("  x >= 0\n")
	return b.String()
}

func linComb(coeffs []float64, names []string) string {
	var b strings.Builder
	first := true
	for j, c := range coeffs {
		if c == 0 {
			continue
		}
		name := fmt.Sprintf("x%d", j)
		if j < len(names) && names[j] != "" {
			name = names[j]
		}
		if !first {
			b.WriteString(" + ")
		}
		first = false
		if c == 1 {
			b.WriteString(name)
		} else {
			fmt.Fprintf(&b, "%g*%s", c, name)
		}
	}
	if first {
		b.WriteString("0")
	}
	return b.String()
}

// Status describes a solve outcome.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of solving a problem.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Basis records the optimal basis (Basis[i] = column basic in constraint
	// row i, counting structural variables first, then slack/surplus columns
	// in constraint order). It is filled only for Optimal solutions and is
	// the seed SolveFrom warm-starts from. A redundant row may leave an
	// artificial column basic at value zero; SolveFrom detects that and
	// falls back to a cold solve.
	Basis []int
}
