package graph

import (
	"fmt"
	"math/rand"
)

// Crawling-based sampling baselines from the paper's related work: BFS
// crawling (Kurant, Markopoulou, Thiran, ITC 2010 — "On the bias of BFS"),
// simple random walks, and the Metropolis–Hastings correction used by
// multigraph sampling work (Gjoka et al.). These operate on the network
// topology only — the access model of a crawler that cannot enumerate the
// population — and are biased toward high-degree nodes, which is exactly why
// the paper's stratified sampling assumes dataset access instead.

// Adjacency is the coauthor graph: Adj[a] lists the distinct coauthors of a.
type Adjacency [][]int

// Adjacency materialises the coauthorship graph's adjacency lists (distinct
// coauthors, no self-loops).
func (g *Coauthorship) Adjacency() Adjacency {
	sets := make([]map[int]struct{}, g.N)
	for _, p := range g.Papers {
		for _, a := range p.Authors {
			for _, b := range p.Authors {
				if a == b {
					continue
				}
				if sets[a] == nil {
					sets[a] = make(map[int]struct{})
				}
				sets[a][b] = struct{}{}
			}
		}
	}
	adj := make(Adjacency, g.N)
	for a, s := range sets {
		for b := range s {
			adj[a] = append(adj[a], b)
		}
	}
	return adj
}

// Degree returns the number of distinct coauthors of node a.
func (adj Adjacency) Degree(a int) int { return len(adj[a]) }

// MeanDegree returns the average degree over all nodes.
func (adj Adjacency) MeanDegree() float64 {
	var sum int
	for _, nbrs := range adj {
		sum += len(nbrs)
	}
	return float64(sum) / float64(len(adj))
}

// BFSSample crawls the graph breadth-first from start and returns the first
// n distinct nodes reached (fewer if the component is smaller). Neighbour
// order is randomised so repeated runs differ. BFS samples are biased toward
// high-degree nodes and toward the seed's community.
func BFSSample(adj Adjacency, start, n int, rng *rand.Rand) ([]int, error) {
	if err := checkWalkArgs(adj, start, n); err != nil {
		return nil, err
	}
	visited := map[int]struct{}{start: {}}
	queue := []int{start}
	out := []int{start}
	for len(queue) > 0 && len(out) < n {
		node := queue[0]
		queue = queue[1:]
		nbrs := append([]int(nil), adj[node]...)
		rng.Shuffle(len(nbrs), func(i, j int) { nbrs[i], nbrs[j] = nbrs[j], nbrs[i] })
		for _, b := range nbrs {
			if _, seen := visited[b]; seen {
				continue
			}
			visited[b] = struct{}{}
			out = append(out, b)
			queue = append(queue, b)
			if len(out) == n {
				break
			}
		}
	}
	return out, nil
}

// RandomWalkSample runs a simple random walk from start, collecting distinct
// visited nodes until n are found or maxSteps transitions happen. Stationary
// visit probability is proportional to degree, so the sample over-represents
// hubs.
func RandomWalkSample(adj Adjacency, start, n, maxSteps int, rng *rand.Rand) ([]int, error) {
	if err := checkWalkArgs(adj, start, n); err != nil {
		return nil, err
	}
	visited := map[int]struct{}{start: {}}
	out := []int{start}
	node := start
	for steps := 0; len(out) < n && steps < maxSteps; steps++ {
		nbrs := adj[node]
		if len(nbrs) == 0 {
			break // dangling node: the walk is stuck
		}
		node = nbrs[rng.Intn(len(nbrs))]
		if _, seen := visited[node]; !seen {
			visited[node] = struct{}{}
			out = append(out, node)
		}
	}
	return out, nil
}

// MetropolisHastingsSample runs a degree-corrected random walk whose
// stationary distribution is uniform over nodes: a move to neighbour b is
// accepted with probability min(1, deg(a)/deg(b)). It removes the degree
// bias at the cost of slower mixing.
func MetropolisHastingsSample(adj Adjacency, start, n, maxSteps int, rng *rand.Rand) ([]int, error) {
	if err := checkWalkArgs(adj, start, n); err != nil {
		return nil, err
	}
	visited := map[int]struct{}{start: {}}
	out := []int{start}
	node := start
	for steps := 0; len(out) < n && steps < maxSteps; steps++ {
		nbrs := adj[node]
		if len(nbrs) == 0 {
			break
		}
		cand := nbrs[rng.Intn(len(nbrs))]
		if rng.Float64() <= float64(len(adj[node]))/float64(len(adj[cand])) {
			node = cand
			if _, seen := visited[node]; !seen {
				visited[node] = struct{}{}
				out = append(out, node)
			}
		}
	}
	return out, nil
}

func checkWalkArgs(adj Adjacency, start, n int) error {
	if start < 0 || start >= len(adj) {
		return fmt.Errorf("graph: start node %d outside [0, %d)", start, len(adj))
	}
	if n < 1 {
		return fmt.Errorf("graph: sample size %d", n)
	}
	return nil
}

// SampleMeanDegree is a convenience for bias measurements: the mean degree
// of the sampled nodes.
func SampleMeanDegree(adj Adjacency, sample []int) float64 {
	if len(sample) == 0 {
		return 0
	}
	var sum int
	for _, a := range sample {
		sum += len(adj[a])
	}
	return float64(sum) / float64(len(sample))
}
