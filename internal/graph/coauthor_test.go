package graph

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
)

func TestGenerateShape(t *testing.T) {
	g, err := Generate(DefaultParams(500, 1))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 500 {
		t.Fatalf("N = %d", g.N)
	}
	if len(g.Papers) != 850 {
		t.Fatalf("papers = %d, want 850", len(g.Papers))
	}
	for _, p := range g.Papers {
		if len(p.Authors) < 1 || len(p.Authors) > 12 {
			t.Fatalf("paper has %d authors", len(p.Authors))
		}
		if p.Year < 1936 || p.Year > 2013 {
			t.Fatalf("paper year %d", p.Year)
		}
		seen := map[int]bool{}
		for _, a := range p.Authors {
			if a < 0 || a >= g.N {
				t.Fatalf("author index %d out of range", a)
			}
			if seen[a] {
				t.Fatal("duplicate author on one paper")
			}
			seen[a] = true
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Params{Authors: 0, Papers: 1}); err == nil {
		t.Fatal("want error for zero authors")
	}
	if _, err := Generate(Params{Authors: 1, Papers: 0}); err == nil {
		t.Fatal("want error for zero papers")
	}
}

func TestStatsConsistent(t *testing.T) {
	g, err := Generate(DefaultParams(300, 2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	stats := g.Stats(rng)
	if len(stats) != g.N {
		t.Fatalf("stats for %d authors", len(stats))
	}
	// Recompute nop independently and cross-check.
	nop := make([]int, g.N)
	for _, p := range g.Papers {
		for _, a := range p.Authors {
			nop[a]++
		}
	}
	for a, s := range stats {
		if nop[a] > 0 && s.NOP != nop[a] {
			t.Fatalf("author %d: NOP %d, want %d", a, s.NOP, nop[a])
		}
		if s.LY < s.FY {
			t.Fatalf("author %d: LY %d < FY %d", a, s.LY, s.FY)
		}
		if s.MYP < 1 || s.MYP > s.NOP {
			t.Fatalf("author %d: MYP %d with NOP %d", a, s.MYP, s.NOP)
		}
		if s.CC < 1 || s.NDCC < s.CC {
			t.Fatalf("author %d: CC %d NDCC %d", a, s.CC, s.NDCC)
		}
	}
}

func TestPopulationValidAgainstSchema(t *testing.T) {
	g, err := Generate(DefaultParams(400, 3))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := g.Population(3)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 400 {
		t.Fatalf("population %d", rel.Len())
	}
	if rel.Schema().NumFields() != gen.AuthorSchema().NumFields() {
		t.Fatal("schema mismatch")
	}
	// Relation.Add already validated domains; spot-check ly >= fy.
	fy, _ := rel.Schema().Index("fy")
	ly, _ := rel.Schema().Index("ly")
	for i := 0; i < rel.Len(); i++ {
		tp := rel.Tuple(i)
		if tp.Attrs[ly] < tp.Attrs[fy] {
			t.Fatalf("author %d: ly < fy", tp.ID)
		}
	}
}

func TestPreferentialAttachmentIsHeavyTailed(t *testing.T) {
	g, err := Generate(DefaultParams(1000, 4))
	if err != nil {
		t.Fatal(err)
	}
	hist := g.DegreeHistogram(20)
	// Most authors have few papers; a nontrivial tail has many.
	low := hist[0] + hist[1] + hist[2]
	tail := hist[19]
	if low < 400 {
		t.Fatalf("only %d authors with <3 papers; head missing", low)
	}
	if tail == 0 {
		t.Fatal("no prolific authors; preferential attachment broken")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(DefaultParams(200, 9))
	b, _ := Generate(DefaultParams(200, 9))
	if len(a.Papers) != len(b.Papers) {
		t.Fatal("paper counts differ")
	}
	for i := range a.Papers {
		if a.Papers[i].Year != b.Papers[i].Year || len(a.Papers[i].Authors) != len(b.Papers[i].Authors) {
			t.Fatal("papers differ across identical seeds")
		}
	}
}
