package graph

import (
	"math/rand"
	"testing"
)

func walkGraph(t *testing.T) (*Coauthorship, Adjacency) {
	t.Helper()
	g, err := Generate(DefaultParams(2000, 11))
	if err != nil {
		t.Fatal(err)
	}
	return g, g.Adjacency()
}

// hubStart picks a well-connected start node so crawls don't stall in a
// tiny component.
func hubStart(adj Adjacency) int {
	best := 0
	for a := range adj {
		if len(adj[a]) > len(adj[best]) {
			best = a
		}
	}
	return best
}

func TestAdjacencySymmetricNoSelfLoops(t *testing.T) {
	_, adj := walkGraph(t)
	back := make([]map[int]bool, len(adj))
	for a := range adj {
		back[a] = map[int]bool{}
		for _, b := range adj[a] {
			if b == a {
				t.Fatalf("self loop at %d", a)
			}
			back[a][b] = true
		}
	}
	for a := range adj {
		for _, b := range adj[a] {
			if !back[b][a] {
				t.Fatalf("edge %d→%d not symmetric", a, b)
			}
		}
	}
}

func TestBFSSampleShape(t *testing.T) {
	_, adj := walkGraph(t)
	rng := rand.New(rand.NewSource(1))
	start := hubStart(adj)
	s, err := BFSSample(adj, start, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 100 {
		t.Fatalf("BFS returned %d nodes", len(s))
	}
	seen := map[int]bool{}
	for _, a := range s {
		if seen[a] {
			t.Fatalf("duplicate node %d", a)
		}
		seen[a] = true
	}
	if s[0] != start {
		t.Fatal("sample must start at the seed")
	}
}

func TestWalkErrors(t *testing.T) {
	_, adj := walkGraph(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := BFSSample(adj, -1, 5, rng); err == nil {
		t.Fatal("want bad-start error")
	}
	if _, err := RandomWalkSample(adj, 0, 0, 10, rng); err == nil {
		t.Fatal("want bad-n error")
	}
	if _, err := MetropolisHastingsSample(adj, len(adj), 5, 10, rng); err == nil {
		t.Fatal("want bad-start error")
	}
}

// TestCrawlBiasTowardHubs is the related-work point (Kurant et al., "On the
// bias of BFS"): BFS and random-walk samples over-represent high-degree
// nodes, while the Metropolis–Hastings walk corrects the bias.
func TestCrawlBiasTowardHubs(t *testing.T) {
	_, adj := walkGraph(t)
	popMean := adj.MeanDegree()
	start := hubStart(adj)

	const n, runs = 150, 30
	var bfsMean, rwMean, mhMean float64
	for run := 0; run < runs; run++ {
		rng := rand.New(rand.NewSource(int64(run) + 100))
		bfs, err := BFSSample(adj, start, n, rng)
		if err != nil {
			t.Fatal(err)
		}
		bfsMean += SampleMeanDegree(adj, bfs)
		rw, err := RandomWalkSample(adj, start, n, 200000, rng)
		if err != nil {
			t.Fatal(err)
		}
		rwMean += SampleMeanDegree(adj, rw)
		mh, err := MetropolisHastingsSample(adj, start, n, 400000, rng)
		if err != nil {
			t.Fatal(err)
		}
		mhMean += SampleMeanDegree(adj, mh)
	}
	bfsMean /= runs
	rwMean /= runs
	mhMean /= runs

	if bfsMean < popMean*1.3 {
		t.Fatalf("BFS sample mean degree %.2f not clearly above population %.2f", bfsMean, popMean)
	}
	if rwMean < popMean*1.3 {
		t.Fatalf("random-walk sample mean degree %.2f not clearly above population %.2f", rwMean, popMean)
	}
	if mhMean > rwMean*0.9 {
		t.Fatalf("MH mean degree %.2f should sit well below the raw walk's %.2f", mhMean, rwMean)
	}
}

func TestRandomWalkStuckOnIsolatedNode(t *testing.T) {
	adj := Adjacency{{}, {}} // two isolated nodes
	rng := rand.New(rand.NewSource(1))
	s, err := RandomWalkSample(adj, 0, 5, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 1 {
		t.Fatalf("stuck walk returned %d nodes", len(s))
	}
}
