// Package graph generates a synthetic coauthorship network — the social
// network substrate behind the paper's DBLP dataset. Instead of drawing the
// coauthor attributes of Table 1 from closed-form laws, this package builds
// actual papers with author sets (preferential attachment, so productivity
// and degree follow the heavy-tailed shapes seen in DBLP) and derives every
// attribute of the author schema from the network structure itself.
//
// The experiments use the distribution-driven generator of internal/gen; the
// graph generator exists so examples and tests can exercise the sampling
// pipeline on a population whose attributes truly "relate to edges of the
// network" (Section 3.1).
package graph

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/gen"
)

// Paper is one publication: its year and its author list (node indexes).
type Paper struct {
	Year    int
	Authors []int
}

// Coauthorship is a coauthorship hypergraph: authors 0..N-1 and papers.
type Coauthorship struct {
	N      int
	Papers []Paper
}

// Params tunes the generator.
type Params struct {
	// Authors is the number of author nodes.
	Authors int
	// Papers is the number of publications to generate.
	Papers int
	// MeanAuthorsPerPaper controls paper sizes (geometric, mean ≈ this,
	// at least 1). DBLP-like values are 2–4.
	MeanAuthorsPerPaper float64
	// FirstYear and LastYear bound publication years; years skew recent
	// with the power-function law of Table 1.
	FirstYear, LastYear int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultParams returns DBLP-flavoured parameters scaled to n authors.
func DefaultParams(n int, seed int64) Params {
	return Params{
		Authors:             n,
		Papers:              n * 17 / 10, // DBLP: 1.7M papers / 1M authors
		MeanAuthorsPerPaper: 2.8,
		FirstYear:           1936,
		LastYear:            2013,
		Seed:                seed,
	}
}

// Generate builds a coauthorship network: paper author-sets are filled by
// preferential attachment on current paper counts, so a few authors become
// very prolific while most stay occasional — the DBLP shape.
func Generate(p Params) (*Coauthorship, error) {
	if p.Authors < 1 || p.Papers < 1 {
		return nil, fmt.Errorf("graph: need at least 1 author and 1 paper, got %d/%d", p.Authors, p.Papers)
	}
	if p.MeanAuthorsPerPaper < 1 {
		p.MeanAuthorsPerPaper = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	yearDist := gen.PowerFunc{Alpha: 7.75, A: float64(p.FirstYear), B: float64(p.LastYear)}

	g := &Coauthorship{N: p.Authors, Papers: make([]Paper, 0, p.Papers)}
	// ballot holds author indexes weighted by paper count + 1 for
	// preferential attachment (the +1 keeps newcomers reachable).
	ballot := make([]int, 0, p.Authors+p.Papers*3)
	for a := 0; a < p.Authors; a++ {
		ballot = append(ballot, a)
	}
	pGeom := 1 / p.MeanAuthorsPerPaper
	for i := 0; i < p.Papers; i++ {
		size := 1
		for rng.Float64() > pGeom {
			size++
			if size >= 12 {
				break
			}
		}
		authors := make([]int, 0, size)
		seen := make(map[int]struct{}, size)
		for len(authors) < size {
			a := ballot[rng.Intn(len(ballot))]
			if _, dup := seen[a]; dup {
				// Dense collaborations may not find enough distinct
				// authors quickly; fall back to a uniform draw.
				a = rng.Intn(p.Authors)
				if _, dup2 := seen[a]; dup2 {
					continue
				}
			}
			seen[a] = struct{}{}
			authors = append(authors, a)
		}
		year := int(yearDist.Quantile(openUnit(rng)))
		g.Papers = append(g.Papers, Paper{Year: year, Authors: authors})
		ballot = append(ballot, authors...)
	}
	return g, nil
}

func openUnit(rng *rand.Rand) float64 {
	for {
		if u := rng.Float64(); u > 0 && u < 1 {
			return u
		}
	}
}

// AuthorStats aggregates per-author structural attributes.
type AuthorStats struct {
	NOP   int         // papers
	FY    int         // first publication year
	LY    int         // last publication year
	MYP   int         // max papers in one year
	CC    int         // distinct coauthors
	NDCC  int         // non-distinct coauthors
	ACCPP int         // average coauthors per paper (rounded)
	years map[int]int // papers per year (internal)
}

// Stats derives the Table 1 attributes for every author from the network.
// Authors with no papers get a minimal default career (nop clamped to the
// schema minimum of 1 paper at a uniformly chosen year).
func (g *Coauthorship) Stats(rng *rand.Rand) []AuthorStats {
	stats := make([]AuthorStats, g.N)
	coauthors := make([]map[int]struct{}, g.N)
	for i := range stats {
		stats[i].FY = 1 << 30
		stats[i].years = make(map[int]int)
	}
	for _, p := range g.Papers {
		for _, a := range p.Authors {
			s := &stats[a]
			s.NOP++
			if p.Year < s.FY {
				s.FY = p.Year
			}
			if p.Year > s.LY {
				s.LY = p.Year
			}
			s.years[p.Year]++
			s.NDCC += len(p.Authors) - 1
			if coauthors[a] == nil {
				coauthors[a] = make(map[int]struct{})
			}
			for _, b := range p.Authors {
				if b != a {
					coauthors[a][b] = struct{}{}
				}
			}
		}
	}
	for a := range stats {
		s := &stats[a]
		if s.NOP == 0 {
			s.NOP = 1
			y := 1936 + rng.Intn(2013-1936+1)
			s.FY, s.LY = y, y
			s.MYP = 1
			s.CC, s.NDCC, s.ACCPP = 1, 1, 1
			s.years = nil
			continue
		}
		for _, c := range s.years {
			if c > s.MYP {
				s.MYP = c
			}
		}
		s.CC = len(coauthors[a])
		if s.CC == 0 {
			s.CC = 1 // schema domain starts at 1
		}
		if s.NDCC == 0 {
			s.NDCC = 1
		}
		s.ACCPP = (s.NDCC + s.NOP/2) / s.NOP
		s.years = nil
	}
	return stats
}

// Population converts the network into a relation over the author schema,
// with every attribute derived from graph structure.
func (g *Coauthorship) Population(seed int64) (*dataset.Relation, error) {
	rng := rand.New(rand.NewSource(seed))
	schema := gen.AuthorSchema()
	rel := dataset.NewRelation(schema)
	idx := func(name string) int {
		i, ok := schema.Index(name)
		if !ok {
			panic("graph: schema missing " + name)
		}
		return i
	}
	nop, ayp, myp := idx("nop"), idx("ayp"), idx("myp")
	fy, ly, cc, ndcc, accpp := idx("fy"), idx("ly"), idx("cc"), idx("ndcc"), idx("accpp")

	for a, s := range g.Stats(rng) {
		attrs := make([]int64, schema.NumFields())
		years := int64(s.LY - s.FY + 1)
		attrs[nop] = clampField(schema.Field(nop), int64(s.NOP))
		attrs[ayp] = clampField(schema.Field(ayp), int64(s.NOP)/years)
		attrs[myp] = clampField(schema.Field(myp), int64(s.MYP))
		attrs[fy] = clampField(schema.Field(fy), int64(s.FY))
		attrs[ly] = clampField(schema.Field(ly), int64(s.LY))
		attrs[cc] = clampField(schema.Field(cc), int64(s.CC))
		attrs[ndcc] = clampField(schema.Field(ndcc), int64(s.NDCC))
		attrs[accpp] = clampField(schema.Field(accpp), int64(s.ACCPP))
		if err := rel.Add(dataset.Tuple{
			ID:    int64(a),
			Name:  fmt.Sprintf("author-%07d", a),
			Attrs: attrs,
		}); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

func clampField(f dataset.Field, v int64) int64 {
	if v < f.Min {
		return f.Min
	}
	if v > f.Max {
		return f.Max
	}
	return v
}

// DegreeHistogram returns how many authors have each paper count, capped at
// the last bucket; useful for eyeballing the heavy tail.
func (g *Coauthorship) DegreeHistogram(buckets int) []int {
	counts := make([]int, g.N)
	for _, p := range g.Papers {
		for _, a := range p.Authors {
			counts[a]++
		}
	}
	hist := make([]int, buckets)
	for _, c := range counts {
		if c >= buckets {
			c = buckets - 1
		}
		hist[c]++
	}
	return hist
}
