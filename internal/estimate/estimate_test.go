package estimate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/sampling"
	"repro/internal/stratified"
)

// twoGroupPop builds a population with a common group (value ≈ low) and a
// rare, very different group (value ≈ high) — the "individuals above 70 have
// unique behaviour" setting of the paper's introduction.
func twoGroupPop(nCommon, nRare int, seed int64) (*dataset.Relation, float64) {
	schema := dataset.MustSchema(
		dataset.Field{Name: "group", Min: 0, Max: 1},
		dataset.Field{Name: "activity", Min: 0, Max: 10000},
	)
	rng := rand.New(rand.NewSource(seed))
	r := dataset.NewRelation(schema)
	var sum float64
	id := int64(0)
	for i := 0; i < nCommon; i++ {
		v := int64(100 + rng.Intn(21)) // 100..120: homogeneous
		sum += float64(v)
		r.MustAdd(dataset.Tuple{ID: id, Attrs: []int64{0, v}})
		id++
	}
	for i := 0; i < nRare; i++ {
		v := int64(5000 + rng.Intn(1001)) // 5000..6000: rare and far away
		sum += float64(v)
		r.MustAdd(dataset.Tuple{ID: id, Attrs: []int64{1, v}})
		id++
	}
	return r, sum / float64(nCommon+nRare)
}

func activityValues(ts []dataset.Tuple) []float64 {
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = float64(t.Attrs[1])
	}
	return out
}

func TestStratifiedMeanMatchesHandComputation(t *testing.T) {
	strata := []StratumSummary{
		{PopSize: 80, Values: []float64{10, 12, 14}}, // mean 12
		{PopSize: 20, Values: []float64{100, 104}},   // mean 102
	}
	m, err := StratifiedMean(strata)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.8*12 + 0.2*102
	if math.Abs(m.Estimate-want) > 1e-12 {
		t.Fatalf("estimate %g, want %g", m.Estimate, want)
	}
	if m.SampleSize != 5 {
		t.Fatalf("n = %d", m.SampleSize)
	}
	// Hand variance: W1²(1-3/80)·s1²/3 + W2²(1-2/20)·s2²/2, s1²=4, s2²=8.
	v1 := 0.64 * (1 - 3.0/80) * 4 / 3
	v2 := 0.04 * (1 - 0.1) * 8 / 2
	if math.Abs(m.StdErr-math.Sqrt(v1+v2)) > 1e-12 {
		t.Fatalf("stderr %g, want %g", m.StdErr, math.Sqrt(v1+v2))
	}
}

func TestEstimatorErrors(t *testing.T) {
	if _, err := StratifiedMean([]StratumSummary{{PopSize: 2, Values: []float64{1, 2, 3}}}); err == nil {
		t.Fatal("want oversample error")
	}
	if _, err := StratifiedMean([]StratumSummary{{PopSize: 5, Values: nil}}); err == nil {
		t.Fatal("want empty-stratum error")
	}
	if _, err := StratifiedMean(nil); err == nil {
		t.Fatal("want empty-population error")
	}
	if _, err := SRSMean(nil, 10); err == nil {
		t.Fatal("want empty-sample error")
	}
	if _, err := SRSMean([]float64{1, 2}, 1); err == nil {
		t.Fatal("want oversample error")
	}
}

// TestStratifiedBeatsSRS is the paper's Example 1 in numbers: with a rare
// heterogeneous subgroup, the stratified mean estimator at equal sample size
// has far lower error than simple random sampling — and the SRS often misses
// the subgroup entirely.
func TestStratifiedBeatsSRS(t *testing.T) {
	const n = 40
	const runs = 400
	r, truth := twoGroupPop(4900, 100, 1)
	q := query.NewSSD("groups",
		query.Stratum{Cond: predicate.MustParse("group = 0"), Freq: n - 10},
		query.Stratum{Cond: predicate.MustParse("group = 1"), Freq: 10},
	)
	rng := rand.New(rand.NewSource(2))

	var stratSE, srsSE float64 // empirical squared errors
	for run := 0; run < runs; run++ {
		ans, err := stratified.Sequential(q, r, rng)
		if err != nil {
			t.Fatal(err)
		}
		sums, err := FromAnswer(ans, q, r, "activity")
		if err != nil {
			t.Fatal(err)
		}
		sm, err := StratifiedMean(sums)
		if err != nil {
			t.Fatal(err)
		}
		stratSE += (sm.Estimate - truth) * (sm.Estimate - truth)

		srs := sampling.SRS(r.Tuples(), n, rng)
		rm, err := SRSMean(activityValues(srs), int64(r.Len()))
		if err != nil {
			t.Fatal(err)
		}
		srsSE += (rm.Estimate - truth) * (rm.Estimate - truth)
	}
	if stratSE*4 > srsSE {
		t.Fatalf("stratified MSE %.1f not clearly below SRS MSE %.1f", stratSE/runs, srsSE/runs)
	}
}

// TestEstimatorsUnbiased: both estimators' empirical means converge on the
// true population mean.
func TestEstimatorsUnbiased(t *testing.T) {
	const n = 50
	const runs = 600
	r, truth := twoGroupPop(2000, 200, 3)
	q := query.NewSSD("groups",
		query.Stratum{Cond: predicate.MustParse("group = 0"), Freq: 30},
		query.Stratum{Cond: predicate.MustParse("group = 1"), Freq: 20},
	)
	rng := rand.New(rand.NewSource(4))
	var stratSum, srsSum float64
	for run := 0; run < runs; run++ {
		ans, _ := stratified.Sequential(q, r, rng)
		sums, _ := FromAnswer(ans, q, r, "activity")
		sm, _ := StratifiedMean(sums)
		stratSum += sm.Estimate
		srs := sampling.SRS(r.Tuples(), n, rng)
		rm, _ := SRSMean(activityValues(srs), int64(r.Len()))
		srsSum += rm.Estimate
	}
	for name, got := range map[string]float64{"stratified": stratSum / runs, "srs": srsSum / runs} {
		if math.Abs(got-truth)/truth > 0.02 {
			t.Fatalf("%s estimator biased: %.1f vs truth %.1f", name, got, truth)
		}
	}
}

// TestStdErrCalibrated: the reported standard error predicts the empirical
// error distribution (within a factor reflecting estimation noise).
func TestStdErrCalibrated(t *testing.T) {
	const runs = 400
	r, truth := twoGroupPop(3000, 300, 5)
	q := query.NewSSD("groups",
		query.Stratum{Cond: predicate.MustParse("group = 0"), Freq: 25},
		query.Stratum{Cond: predicate.MustParse("group = 1"), Freq: 25},
	)
	rng := rand.New(rand.NewSource(6))
	var sqErr, claimed float64
	for run := 0; run < runs; run++ {
		ans, _ := stratified.Sequential(q, r, rng)
		sums, _ := FromAnswer(ans, q, r, "activity")
		sm, _ := StratifiedMean(sums)
		sqErr += (sm.Estimate - truth) * (sm.Estimate - truth)
		claimed += sm.StdErr * sm.StdErr
	}
	ratio := sqErr / claimed
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("claimed variance off by %.2fx from empirical", ratio)
	}
}

func TestAllocations(t *testing.T) {
	pops := []int64{800, 150, 50}
	prop := Proportional(pops, 100)
	if sum(prop) != 100 {
		t.Fatalf("proportional sums to %d", sum(prop))
	}
	if !(prop[0] > prop[1] && prop[1] > prop[2]) {
		t.Fatalf("proportional %v not ordered by population", prop)
	}
	// Neyman shifts budget to the high-variance stratum.
	ney := Neyman(pops, []float64{1, 1, 50}, 100)
	if sum(ney) != 100 {
		t.Fatalf("neyman sums to %d", sum(ney))
	}
	if int64(ney[2]) != pops[2] { // tiny but wild stratum: take as much as exists
		t.Fatalf("neyman %v should exhaust the high-variance stratum", ney)
	}
	// Degenerate cases.
	if got := Proportional([]int64{0, 0}, 10); sum(got) != 0 {
		t.Fatalf("empty population allocation %v", got)
	}
	if got := Proportional(pops, 0); sum(got) != 0 {
		t.Fatalf("zero budget allocation %v", got)
	}
	// A non-empty stratum always gets at least one slot.
	small := Proportional([]int64{10000, 3}, 20)
	if small[1] < 1 {
		t.Fatalf("tiny stratum unrepresented: %v", small)
	}
}

func TestAllocationToSSD(t *testing.T) {
	conds := []query.Stratum{
		{Cond: predicate.MustParse("group = 0")},
		{Cond: predicate.MustParse("group = 1")},
	}
	q, err := Allocation{3, 7}.ToSSD("alloc", conds)
	if err != nil {
		t.Fatal(err)
	}
	if q.TotalFreq() != 10 || q.Strata[1].Freq != 7 {
		t.Fatalf("built %+v", q)
	}
	if _, err := (Allocation{1}).ToSSD("bad", conds); err == nil {
		t.Fatal("want arity error")
	}
}

func TestDesignEffect(t *testing.T) {
	d := DesignEffect(Mean{StdErr: 1}, Mean{StdErr: 2})
	if math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("deff = %g", d)
	}
	if !math.IsInf(DesignEffect(Mean{StdErr: 1}, Mean{StdErr: 0}), 1) {
		t.Fatal("zero SRS stderr must give +Inf")
	}
}

func TestFromAnswerUnknownAttr(t *testing.T) {
	r, _ := twoGroupPop(10, 10, 7)
	q := query.NewSSD("g", query.Stratum{Cond: predicate.MustParse("group = 0"), Freq: 2})
	ans, _ := stratified.Sequential(q, r, rand.New(rand.NewSource(1)))
	if _, err := FromAnswer(ans, q, r, "nope"); err == nil {
		t.Fatal("want unknown-attribute error")
	}
}

func sum(a Allocation) int {
	n := 0
	for _, v := range a {
		n += v
	}
	return n
}
