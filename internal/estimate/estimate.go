// Package estimate provides the survey-statistics layer that motivates
// stratified sampling in the paper's Example 1: estimating population
// quantities from a stratified sample, comparing the estimator's precision
// with simple random sampling, and allocating sample sizes to strata
// (proportional and Neyman-optimal allocation). This is what lets "the
// sample be as small as possible, yet representative" — a smaller stratified
// sample matches the precision of a larger simple random sample whenever
// strata are internally homogeneous.
package estimate

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/stats"
)

// StratumSummary describes one stratum for estimation: its population size
// N_k and the sampled values drawn from it.
type StratumSummary struct {
	PopSize int64
	Values  []float64
}

// Mean is an estimate with its standard error.
type Mean struct {
	Estimate float64
	// StdErr is the estimated standard error, with finite-population
	// correction.
	StdErr float64
	// SampleSize is the total number of sampled individuals used.
	SampleSize int
}

// String renders the estimate as "x ± 2·se".
func (m Mean) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", m.Estimate, 2*m.StdErr, m.SampleSize)
}

// StratifiedMean estimates the population mean from a stratified sample:
// x̄_st = Σ W_k x̄_k with W_k = N_k/N, and variance Σ W_k² (1−f_k) s_k²/n_k
// (f_k the sampling fraction). Strata with fewer than one sampled value are
// an error; strata with a single value contribute zero variance (their
// within-stratum variance is unidentifiable).
func StratifiedMean(strata []StratumSummary) (Mean, error) {
	var totalPop int64
	for _, s := range strata {
		if s.PopSize < int64(len(s.Values)) {
			return Mean{}, fmt.Errorf("estimate: stratum samples %d exceed population %d", len(s.Values), s.PopSize)
		}
		totalPop += s.PopSize
	}
	if totalPop == 0 {
		return Mean{}, fmt.Errorf("estimate: empty population")
	}
	var est, variance float64
	n := 0
	for _, s := range strata {
		if s.PopSize == 0 {
			continue
		}
		if len(s.Values) == 0 {
			return Mean{}, fmt.Errorf("estimate: stratum with population %d has no sampled values", s.PopSize)
		}
		w := float64(s.PopSize) / float64(totalPop)
		est += w * stats.Mean(s.Values)
		n += len(s.Values)
		if len(s.Values) > 1 {
			f := float64(len(s.Values)) / float64(s.PopSize)
			variance += w * w * (1 - f) * stats.Variance(s.Values) / float64(len(s.Values))
		}
	}
	return Mean{Estimate: est, StdErr: math.Sqrt(variance), SampleSize: n}, nil
}

// SRSMean estimates the population mean from a simple random sample of a
// population of size popSize: x̄ with variance (1−f) s²/n.
func SRSMean(values []float64, popSize int64) (Mean, error) {
	if len(values) == 0 {
		return Mean{}, fmt.Errorf("estimate: empty sample")
	}
	if popSize < int64(len(values)) {
		return Mean{}, fmt.Errorf("estimate: sample %d exceeds population %d", len(values), popSize)
	}
	f := float64(len(values)) / float64(popSize)
	variance := (1 - f) * stats.Variance(values) / float64(len(values))
	return Mean{Estimate: stats.Mean(values), StdErr: math.Sqrt(variance), SampleSize: len(values)}, nil
}

// FromAnswer converts a query answer into stratum summaries for the named
// attribute, using the relation to count each stratum's population.
func FromAnswer(ans *query.Answer, q *query.SSD, r *dataset.Relation, attr string) ([]StratumSummary, error) {
	idx, ok := r.Schema().Index(attr)
	if !ok {
		return nil, fmt.Errorf("estimate: unknown attribute %q", attr)
	}
	preds, err := q.Compile(r.Schema())
	if err != nil {
		return nil, err
	}
	out := make([]StratumSummary, len(q.Strata))
	for k := range q.Strata {
		out[k].PopSize = int64(r.Count(preds[k]))
		for _, t := range ans.Strata[k] {
			out[k].Values = append(out[k].Values, float64(t.Attrs[idx]))
		}
	}
	return out, nil
}

// Allocation assigns per-stratum sample sizes for a total budget n.
type Allocation []int

// Proportional allocates n_k ∝ N_k (at least 1 per non-empty stratum).
func Proportional(popSizes []int64, n int) Allocation {
	return allocate(popSizes, nil, n)
}

// Neyman allocates n_k ∝ N_k·S_k, the variance-minimising allocation for a
// fixed total sample size (Neyman 1934); stdevs are per-stratum standard
// deviations, typically from a pilot sample.
func Neyman(popSizes []int64, stdevs []float64, n int) Allocation {
	return allocate(popSizes, stdevs, n)
}

func allocate(popSizes []int64, stdevs []float64, n int) Allocation {
	weights := make([]float64, len(popSizes))
	var total float64
	for k, N := range popSizes {
		w := float64(N)
		if stdevs != nil {
			w *= stdevs[k]
		}
		weights[k] = w
		total += w
	}
	alloc := make(Allocation, len(popSizes))
	if total == 0 || n <= 0 {
		return alloc
	}
	assigned := 0
	type rem struct {
		k    int
		frac float64
	}
	var rems []rem
	for k, w := range weights {
		exact := float64(n) * w / total
		alloc[k] = int(exact)
		if popSizes[k] > 0 && alloc[k] == 0 {
			alloc[k] = 1 // every non-empty stratum stays represented
		}
		if int64(alloc[k]) > popSizes[k] {
			alloc[k] = int(popSizes[k])
		}
		assigned += alloc[k]
		rems = append(rems, rem{k, exact - math.Floor(exact)})
	}
	// Distribute the remainder by largest fractional part.
	for assigned < n {
		best := -1
		for i, r := range rems {
			if int64(alloc[r.k]) >= popSizes[r.k] {
				continue
			}
			if best < 0 || r.frac > rems[best].frac {
				best = i
			}
		}
		if best < 0 {
			break // every stratum exhausted
		}
		alloc[rems[best].k]++
		rems[best].frac = -1
		assigned++
	}
	return alloc
}

// ToSSD attaches the allocation to the conditions of a template query,
// producing a runnable SSD.
func (a Allocation) ToSSD(name string, conds []query.Stratum) (*query.SSD, error) {
	if len(a) != len(conds) {
		return nil, fmt.Errorf("estimate: allocation has %d strata, template has %d", len(a), len(conds))
	}
	strata := make([]query.Stratum, len(a))
	for k := range a {
		strata[k] = query.Stratum{Cond: conds[k].Cond, Freq: a[k]}
	}
	return query.NewSSD(name, strata...), nil
}

// DesignEffect is Var(stratified)/Var(SRS) at equal sample size: below 1
// means stratification pays (Kish's deff, inverted convention kept explicit
// in the name).
func DesignEffect(stratified, srs Mean) float64 {
	if srs.StdErr == 0 {
		return math.Inf(1)
	}
	r := stratified.StdErr / srs.StdErr
	return r * r
}
