package estimate_test

import (
	"fmt"

	"repro/internal/estimate"
)

// Estimate a population mean from a stratified sample: strata are weighted
// by their population shares, so a small guaranteed quota for a rare group
// suffices.
func ExampleStratifiedMean() {
	strata := []estimate.StratumSummary{
		{PopSize: 9000, Values: []float64{10, 11, 9, 10}},     // common group
		{PopSize: 1000, Values: []float64{100, 104, 96, 100}}, // rare group
	}
	m, _ := estimate.StratifiedMean(strata)
	fmt.Printf("mean ≈ %.1f from n=%d\n", m.Estimate, m.SampleSize)
	// Output:
	// mean ≈ 19.0 from n=8
}

// Neyman allocation splits an interview budget by N_k·S_k: volatile strata
// get more interviews.
func ExampleNeyman() {
	popSizes := []int64{8000, 2000}
	stdevs := []float64{1, 20} // the small stratum varies wildly
	fmt.Println(estimate.Neyman(popSizes, stdevs, 48))
	// Output:
	// [8 40]
}
