package stats

import "math"

// HypergeometricPMF returns P(Y = y) for a hypergeometric law: drawing x
// items without replacement from a population of r items of which c are
// marked, y of the drawn being marked. This is the distribution Remark 1 of
// the paper derives for the sampled tuples found in a prefix of a
// sub-relation:
//
//	P(y) = C(c, y) · C(r−c, x−y) / C(r, x)
func HypergeometricPMF(r, c, x, y int64) float64 {
	if y < 0 || y > c || x-y < 0 || x-y > r-c || x > r {
		return 0
	}
	return math.Exp(lnChoose(c, y) + lnChoose(r-c, x-y) - lnChoose(r, x))
}

// HypergeometricMean is E[Y] = x·c/r.
func HypergeometricMean(r, c, x int64) float64 {
	return float64(x) * float64(c) / float64(r)
}

// HypergeometricVar is Var[Y] = x·(c/r)·(1−c/r)·(r−x)/(r−1).
func HypergeometricVar(r, c, x int64) float64 {
	p := float64(c) / float64(r)
	return float64(x) * p * (1 - p) * float64(r-x) / float64(r-1)
}

// lnChoose returns ln C(n, k).
func lnChoose(n, k int64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	ln2, _ := math.Lgamma(float64(k + 1))
	ln3, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - ln2 - ln3
}
