package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestChiSquarePKnownValues(t *testing.T) {
	// Reference values (e.g. R: pchisq(x, df, lower.tail=FALSE)).
	cases := []struct {
		chi2 float64
		df   int
		want float64
	}{
		{0, 1, 1},
		{3.841459, 1, 0.05},
		{5.991465, 2, 0.05},
		{16.918978, 9, 0.05},
		{2.705543, 1, 0.10},
		{23.209251, 10, 0.01},
	}
	for _, c := range cases {
		got := ChiSquareP(c.chi2, c.df)
		if math.Abs(got-c.want) > 2e-4 {
			t.Fatalf("ChiSquareP(%g, %d) = %g, want %g", c.chi2, c.df, got, c.want)
		}
	}
}

func TestChiSquareStatErrors(t *testing.T) {
	if _, err := ChiSquareStat([]int64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want length-mismatch error")
	}
	if _, err := ChiSquareStat([]int64{1}, []float64{0}); err == nil {
		t.Fatal("want non-positive expected error")
	}
}

func TestChiSquareUniformPAcceptsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := make([]int64, 10)
	for i := 0; i < 100000; i++ {
		counts[rng.Intn(10)]++
	}
	p, err := ChiSquareUniformP(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-3 {
		t.Fatalf("uniform counts rejected: p = %g", p)
	}
}

func TestChiSquareUniformPRejectsSkew(t *testing.T) {
	counts := []int64{1000, 100, 100, 100}
	p, err := ChiSquareUniformP(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Fatalf("clearly skewed counts accepted: p = %g", p)
	}
}

func TestChiSquareUniformPDegenerate(t *testing.T) {
	if p, _ := ChiSquareUniformP([]int64{0, 0}); p != 1 {
		t.Fatalf("empty counts: p = %g", p)
	}
	if p, _ := ChiSquareUniformP([]int64{5}); p != 1 {
		t.Fatalf("single cell: p = %g", p)
	}
}

func TestHypergeometricPMFSumsToOne(t *testing.T) {
	const r, c, x = 30, 12, 7
	var sum float64
	for y := int64(0); y <= c; y++ {
		sum += HypergeometricPMF(r, c, x, y)
	}
	if math.Abs(sum-1) > 1e-10 {
		t.Fatalf("pmf sums to %g", sum)
	}
}

func TestHypergeometricKnownValue(t *testing.T) {
	// P(Y=1) drawing 2 from 5 with 2 marked: C(2,1)C(3,1)/C(5,2) = 6/10.
	got := HypergeometricPMF(5, 2, 2, 1)
	if math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("pmf = %g, want 0.6", got)
	}
	if HypergeometricPMF(5, 2, 2, 3) != 0 {
		t.Fatal("impossible outcome must have probability 0")
	}
}

func TestHypergeometricMoments(t *testing.T) {
	const r, c, x = 50, 20, 10
	mean := HypergeometricMean(r, c, x)
	if math.Abs(mean-4) > 1e-12 {
		t.Fatalf("mean = %g, want 4", mean)
	}
	variance := HypergeometricVar(r, c, x)
	// Cross-check against the pmf.
	var m, v float64
	for y := int64(0); y <= c; y++ {
		p := HypergeometricPMF(r, c, x, y)
		m += float64(y) * p
	}
	for y := int64(0); y <= c; y++ {
		p := HypergeometricPMF(r, c, x, y)
		v += (float64(y) - m) * (float64(y) - m) * p
	}
	if math.Abs(m-mean) > 1e-9 || math.Abs(v-variance) > 1e-9 {
		t.Fatalf("moments disagree: pmf (%g, %g) vs closed form (%g, %g)", m, v, mean, variance)
	}
}

func TestMoments(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Mean(xs) != 3 {
		t.Fatalf("Mean = %g", Mean(xs))
	}
	if math.Abs(Variance(xs)-2.5) > 1e-12 {
		t.Fatalf("Variance = %g", Variance(xs))
	}
	if math.Abs(StdDev(xs)-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("StdDev = %g", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate moments wrong")
	}
}

func TestPearsonCorr(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if c := PearsonCorr(xs, ys); math.Abs(c-1) > 1e-12 {
		t.Fatalf("perfect correlation = %g", c)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if c := PearsonCorr(xs, neg); math.Abs(c+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %g", c)
	}
	if c := PearsonCorr(xs, []float64{1, 1, 1, 1, 1}); c != 0 {
		t.Fatalf("degenerate correlation = %g", c)
	}
	if c := PearsonCorr(xs, []float64{1}); c != 0 {
		t.Fatalf("mismatched lengths = %g", c)
	}
}
