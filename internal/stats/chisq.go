// Package stats provides the statistical machinery the test suite and the
// experiment harness use to check that samplers are unbiased: a chi-square
// goodness-of-fit test (with a regularized incomplete-gamma CDF implemented
// from scratch), the hypergeometric distribution of Remark 1, and simple
// moment helpers.
package stats

import (
	"fmt"
	"math"
)

// ChiSquareStat computes the chi-square statistic Σ (obs−exp)²/exp. Expected
// counts must be positive.
func ChiSquareStat(observed []int64, expected []float64) (float64, error) {
	if len(observed) != len(expected) {
		return 0, fmt.Errorf("stats: %d observed vs %d expected cells", len(observed), len(expected))
	}
	var chi2 float64
	for i := range observed {
		if expected[i] <= 0 {
			return 0, fmt.Errorf("stats: non-positive expected count %g in cell %d", expected[i], i)
		}
		d := float64(observed[i]) - expected[i]
		chi2 += d * d / expected[i]
	}
	return chi2, nil
}

// ChiSquareUniformP tests observed counts against a uniform expectation and
// returns the p-value (probability of a statistic at least as extreme under
// the null).
func ChiSquareUniformP(observed []int64) (float64, error) {
	var total int64
	for _, o := range observed {
		total += o
	}
	if total == 0 || len(observed) < 2 {
		return 1, nil
	}
	expected := make([]float64, len(observed))
	for i := range expected {
		expected[i] = float64(total) / float64(len(observed))
	}
	chi2, err := ChiSquareStat(observed, expected)
	if err != nil {
		return 0, err
	}
	return ChiSquareP(chi2, len(observed)-1), nil
}

// ChiSquareP returns P(X ≥ chi2) for a chi-square law with df degrees of
// freedom: the upper regularized incomplete gamma Q(df/2, chi2/2).
func ChiSquareP(chi2 float64, df int) float64 {
	if chi2 <= 0 {
		return 1
	}
	return gammaQ(float64(df)/2, chi2/2)
}

// gammaQ is the upper regularized incomplete gamma function Q(a, x), via the
// series for x < a+1 and the continued fraction otherwise (Numerical Recipes
// style, but written from the definitions).
func gammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinued(a, x)
}

// gammaPSeries computes the lower regularized P(a, x) by its power series.
func gammaPSeries(a, x float64) float64 {
	const maxIter = 500
	const tol = 1e-14
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*tol {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinued computes the upper regularized Q(a, x) by a modified
// Lentz continued fraction.
func gammaQContinued(a, x float64) float64 {
	const maxIter = 500
	const tol = 1e-14
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < tol {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
