package stats

import "math"

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than 2 values).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// PearsonCorr returns the sample Pearson correlation of two equal-length
// series (0 when degenerate).
func PearsonCorr(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
