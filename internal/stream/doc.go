// Package stream implements simple random sampling from k distributed
// streams with a coordinator — the related-work baseline the paper contrasts
// itself against (Cormode, Muthukrishnan, Yi and Zhang, PODS 2010; Tirthapura
// and Woodruff, DISC 2011). Sites observe items and forward a random subset
// to a coordinator, which continuously maintains a uniform sample of the
// union of all streams using far less communication than forwarding
// everything.
//
// The protocol is the binary-row sampling scheme: every item draws a
// geometric "level" (the number of tails before the first heads); the
// coordinator keeps only items at or above a global level L, raising L (and
// telling the sites) whenever its buffer overflows. Conditioned on being
// retained, items are uniform, so a fixed-size sample drawn from the buffer
// is a simple random sample of everything observed so far.
//
// Section 2 of the paper explains why this machinery cannot answer
// stratified-sampling queries: the partition into strata is only known at
// query time and typically differs from the partition into streams, so
// per-stratum sample-size guarantees are impossible — small strata appear in
// the maintained sample only in proportion to their population share. The
// test suite demonstrates exactly that, measuring how far the per-stratum
// counts of a maintained sample drift from an SSD's requested frequencies on
// the same population that MR-SQE answers exactly.
//
// Package live (internal/live) is this package's counterpart on the other
// side of that argument: where stream maintains one uniform sample of
// append-only streams with bounded communication, live maintains
// per-stratum reservoirs for registered SSD queries over a mutable resident
// population — insert, delete, and stratum migration — giving exactly the
// per-stratum guarantees the streams model cannot. The division of labor:
// stream is the right tool when data arrives distributed and append-only
// and any uniform sample will do; live is the right tool when the
// population is resident (strata serve) and queries are standing. See
// DESIGN.md §14.
package stream
