package stream

import (
	"math/rand"
	"testing"

	"repro/internal/stats"
)

func TestSampleSizeAndDistinctness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewCoordinator[int](10, rng)
	sites := []*Site[int]{c.NewSite(2), c.NewSite(3), c.NewSite(4)}
	for i := 0; i < 3000; i++ {
		sites[i%3].Observe(i)
	}
	s := c.Sample()
	if len(s) != 10 {
		t.Fatalf("sample size %d, want 10", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 3000 || seen[v] {
			t.Fatalf("bad sample element %d", v)
		}
		seen[v] = true
	}
	if c.Seen() != 3000 {
		t.Fatalf("Seen = %d", c.Seen())
	}
}

func TestSmallUnionReturnsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewCoordinator[int](50, rng)
	site := c.NewSite(1)
	for i := 0; i < 7; i++ {
		site.Observe(i)
	}
	if got := len(c.Sample()); got != 7 {
		t.Fatalf("sample of tiny union has %d items, want all 7", got)
	}
}

// TestUniformAcrossSites: inclusion probability must not depend on which
// site observed the item or where in the stream it appeared.
func TestUniformAcrossSites(t *testing.T) {
	const n, s, runs = 60, 6, 8000
	counts := make([]int64, n)
	for run := 0; run < runs; run++ {
		rng := rand.New(rand.NewSource(int64(run)))
		c := NewCoordinator[int](s, rng)
		// Site 0 sees 10 items, site 1 sees 50 — skewed on purpose.
		a, b := c.NewSite(int64(run)*2+1), c.NewSite(int64(run)*2+2)
		for i := 0; i < 10; i++ {
			a.Observe(i)
		}
		for i := 10; i < n; i++ {
			b.Observe(i)
		}
		for _, v := range c.Sample() {
			counts[v]++
		}
	}
	p, err := stats.ChiSquareUniformP(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("stream sample biased: p = %g, counts = %v", p, counts)
	}
}

// TestCommunicationSublinear: the protocol's reason to exist — messages stay
// far below the stream length.
func TestCommunicationSublinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewCoordinator[int](20, rng)
	sites := make([]*Site[int], 4)
	for i := range sites {
		sites[i] = c.NewSite(int64(i) + 10)
	}
	const n = 200000
	for i := 0; i < n; i++ {
		sites[i%4].Observe(i)
	}
	if c.Messages() > n/10 {
		t.Fatalf("messages %d for %d items; protocol not sublinear", c.Messages(), n)
	}
	if c.Retained() > 4*20 {
		t.Fatalf("coordinator retains %d items, cap is 80", c.Retained())
	}
	if c.Level() == 0 {
		t.Fatal("level never rose over a 200k stream")
	}
}

// TestCannotGuaranteeStratumCounts demonstrates the paper's Section 2
// argument: a maintained simple random sample represents a small stratum
// only in proportion to its population share, so a query-time stratum
// requirement ("give me 10 individuals over 70") routinely fails — which is
// why stratified sampling needs its own distributed machinery.
func TestCannotGuaranteeStratumCounts(t *testing.T) {
	const n, s, rare, want = 2000, 40, 40, 10 // rare stratum: 2% of items
	const runs = 300
	failures := 0
	for run := 0; run < runs; run++ {
		rng := rand.New(rand.NewSource(int64(run) + 50))
		c := NewCoordinator[int](s, rng)
		site := c.NewSite(int64(run) + 5000)
		for i := 0; i < n; i++ {
			site.Observe(i)
		}
		inRare := 0
		for _, v := range c.Sample() {
			if v < rare {
				inRare++
			}
		}
		if inRare < want {
			failures++
		}
	}
	// E[rare in sample] = 40·(40/2000) = 0.8 ≪ 10; essentially every run
	// must fail the stratum requirement.
	if failures < runs*9/10 {
		t.Fatalf("only %d/%d runs under-represent the rare stratum; expected nearly all", failures, runs)
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCoordinator[int](0, rand.New(rand.NewSource(1))) },
		func() { NewCoordinator[int](5, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
