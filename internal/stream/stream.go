package stream

import (
	"math/rand"

	"repro/internal/sampling"
)

// entry is a retained item with its sampled level.
type entry[T any] struct {
	item  T
	level int
}

// Coordinator maintains a uniform sample of the union of all sites' streams.
type Coordinator[T any] struct {
	sampleSize int
	capacity   int
	level      int
	buf        []entry[T]
	rng        *rand.Rand
	seen       int64
	upMsgs     int64 // site → coordinator item messages
	downMsgs   int64 // coordinator → site level broadcasts
	sites      int
}

// NewCoordinator creates a coordinator maintaining samples of size s. The
// internal buffer holds up to 4·s items before the level rises.
func NewCoordinator[T any](s int, rng *rand.Rand) *Coordinator[T] {
	if s < 1 {
		panic("stream: sample size must be positive")
	}
	if rng == nil {
		panic("stream: nil rand source")
	}
	return &Coordinator[T]{sampleSize: s, capacity: 4 * s, rng: rng}
}

// Site is one distributed observer feeding the coordinator.
type Site[T any] struct {
	coord *Coordinator[T]
	rng   *rand.Rand
	level int // last threshold received from the coordinator
	sent  int64
}

// NewSite registers a new observer with its own randomness.
func (c *Coordinator[T]) NewSite(seed int64) *Site[T] {
	c.sites++
	return &Site[T]{coord: c, rng: rand.New(rand.NewSource(seed)), level: c.level}
}

// Observe offers one stream item to the site. The item is forwarded to the
// coordinator only when its level reaches the current threshold, which is
// what keeps communication sublinear in the stream length.
func (s *Site[T]) Observe(item T) {
	s.coord.seen++
	// Geometric level: number of tails before the first heads.
	level := 0
	for s.rng.Intn(2) == 0 {
		level++
	}
	if level < s.level {
		return
	}
	s.coord.upMsgs++
	s.sent++
	s.coord.receive(entry[T]{item: item, level: level})
	// The site learns the current threshold with the coordinator's ack;
	// modelled as reading it directly (already counted in downMsgs when
	// it changed).
	s.level = s.coord.level
}

// receive stores a forwarded item, raising the level when the buffer is full.
func (c *Coordinator[T]) receive(e entry[T]) {
	if e.level < c.level {
		return // raced with a level increase; drop
	}
	c.buf = append(c.buf, e)
	for len(c.buf) > c.capacity {
		c.level++
		c.downMsgs += int64(c.sites) // broadcast the new threshold
		kept := c.buf[:0]
		for _, be := range c.buf {
			if be.level >= c.level {
				kept = append(kept, be)
			}
		}
		c.buf = kept
	}
}

// Sample draws a simple random sample of the configured size from everything
// observed so far (fewer items if the union is smaller).
func (c *Coordinator[T]) Sample() []T {
	items := make([]T, len(c.buf))
	for i, e := range c.buf {
		items[i] = e.item
	}
	return sampling.SRS(items, c.sampleSize, c.rng)
}

// Seen returns the total number of items observed across all sites.
func (c *Coordinator[T]) Seen() int64 { return c.seen }

// Level returns the current retention threshold.
func (c *Coordinator[T]) Level() int { return c.level }

// Retained returns how many items the coordinator currently stores.
func (c *Coordinator[T]) Retained() int { return len(c.buf) }

// Messages returns the total protocol messages exchanged: item forwards plus
// threshold broadcasts. The point of the protocol is that this stays far
// below Seen().
func (c *Coordinator[T]) Messages() int64 { return c.upMsgs + c.downMsgs }
