// Package stream implements simple random sampling from k distributed
// streams with a coordinator — the related-work baseline the paper contrasts
// itself against (Cormode, Muthukrishnan, Yi and Zhang, PODS 2010; Tirthapura
// and Woodruff, DISC 2011). Sites observe items and forward a random subset
// to a coordinator, which continuously maintains a uniform sample of the
// union of all streams using far less communication than forwarding
// everything.
//
// The protocol is the binary-row sampling scheme: every item draws a
// geometric "level" (the number of tails before the first heads); the
// coordinator keeps only items at or above a global level L, raising L (and
// telling the sites) whenever its buffer overflows. Conditioned on being
// retained, items are uniform, so a fixed-size sample drawn from the buffer
// is a simple random sample of everything observed so far.
//
// Section 2 of the paper explains why this machinery cannot answer
// stratified-sampling queries: the partition into strata is only known at
// query time and typically differs from the partition into streams, so
// per-stratum sample-size guarantees are impossible — small strata appear in
// the maintained sample only in proportion to their population share. The
// test suite demonstrates exactly that.
package stream

import (
	"math/rand"

	"repro/internal/sampling"
)

// entry is a retained item with its sampled level.
type entry[T any] struct {
	item  T
	level int
}

// Coordinator maintains a uniform sample of the union of all sites' streams.
type Coordinator[T any] struct {
	sampleSize int
	capacity   int
	level      int
	buf        []entry[T]
	rng        *rand.Rand
	seen       int64
	upMsgs     int64 // site → coordinator item messages
	downMsgs   int64 // coordinator → site level broadcasts
	sites      int
}

// NewCoordinator creates a coordinator maintaining samples of size s. The
// internal buffer holds up to 4·s items before the level rises.
func NewCoordinator[T any](s int, rng *rand.Rand) *Coordinator[T] {
	if s < 1 {
		panic("stream: sample size must be positive")
	}
	if rng == nil {
		panic("stream: nil rand source")
	}
	return &Coordinator[T]{sampleSize: s, capacity: 4 * s, rng: rng}
}

// Site is one distributed observer feeding the coordinator.
type Site[T any] struct {
	coord *Coordinator[T]
	rng   *rand.Rand
	level int // last threshold received from the coordinator
	sent  int64
}

// NewSite registers a new observer with its own randomness.
func (c *Coordinator[T]) NewSite(seed int64) *Site[T] {
	c.sites++
	return &Site[T]{coord: c, rng: rand.New(rand.NewSource(seed)), level: c.level}
}

// Observe offers one stream item to the site. The item is forwarded to the
// coordinator only when its level reaches the current threshold, which is
// what keeps communication sublinear in the stream length.
func (s *Site[T]) Observe(item T) {
	s.coord.seen++
	// Geometric level: number of tails before the first heads.
	level := 0
	for s.rng.Intn(2) == 0 {
		level++
	}
	if level < s.level {
		return
	}
	s.coord.upMsgs++
	s.sent++
	s.coord.receive(entry[T]{item: item, level: level})
	// The site learns the current threshold with the coordinator's ack;
	// modelled as reading it directly (already counted in downMsgs when
	// it changed).
	s.level = s.coord.level
}

// receive stores a forwarded item, raising the level when the buffer is full.
func (c *Coordinator[T]) receive(e entry[T]) {
	if e.level < c.level {
		return // raced with a level increase; drop
	}
	c.buf = append(c.buf, e)
	for len(c.buf) > c.capacity {
		c.level++
		c.downMsgs += int64(c.sites) // broadcast the new threshold
		kept := c.buf[:0]
		for _, be := range c.buf {
			if be.level >= c.level {
				kept = append(kept, be)
			}
		}
		c.buf = kept
	}
}

// Sample draws a simple random sample of the configured size from everything
// observed so far (fewer items if the union is smaller).
func (c *Coordinator[T]) Sample() []T {
	items := make([]T, len(c.buf))
	for i, e := range c.buf {
		items[i] = e.item
	}
	return sampling.SRS(items, c.sampleSize, c.rng)
}

// Seen returns the total number of items observed across all sites.
func (c *Coordinator[T]) Seen() int64 { return c.seen }

// Level returns the current retention threshold.
func (c *Coordinator[T]) Level() int { return c.level }

// Retained returns how many items the coordinator currently stores.
func (c *Coordinator[T]) Retained() int { return len(c.buf) }

// Messages returns the total protocol messages exchanged: item forwards plus
// threshold broadcasts. The point of the protocol is that this stays far
// below Seen().
func (c *Coordinator[T]) Messages() int64 { return c.upMsgs + c.downMsgs }
