package audit

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/mapreduce"
)

// phaseOrder is the rendering order of engine phases.
var phaseOrder = []string{
	mapreduce.PhaseMap,
	mapreduce.PhaseCombine,
	mapreduce.PhaseShuffleSend,
	mapreduce.PhaseShuffleRecv,
	mapreduce.PhaseReduce,
}

// PhaseProgress is the live state of one phase of one job.
type PhaseProgress struct {
	Phase string `json:"phase"`
	// Done counts finished units (task attempts that succeeded, or shuffle
	// legs); Total is the expected unit count, 0 when unknown (no
	// JobObserver announcement was seen).
	Done  int `json:"done"`
	Total int `json:"total,omitempty"`
	// Failed counts fault-injected attempts that had to be re-executed.
	Failed  int   `json:"failed,omitempty"`
	Records int64 `json:"records,omitempty"`
	Bytes   int64 `json:"bytes,omitempty"`
}

// Straggler flags one task attempt whose simulated duration is an outlier
// against its phase's median — the speculative-execution candidates of the
// MapReduce fault model.
type Straggler struct {
	Phase     string        `json:"phase"`
	Task      int           `json:"task"`
	Attempt   int           `json:"attempt"`
	Simulated time.Duration `json:"sim_ns"`
	// Factor is Simulated over the phase median.
	Factor float64 `json:"factor"`
}

// JobProgress is the live state of one job (keyed by job name; re-runs of
// the same name reset the counters and bump Runs).
type JobProgress struct {
	Job string `json:"job"`
	// Runs counts how many times this job name has started; the phase
	// counters always describe the latest run.
	Runs int  `json:"runs"`
	Done bool `json:"done"`
	// Phases lists per-phase progress in execution order; phases that have
	// produced no spans yet appear with Done 0 once totals are known.
	Phases []PhaseProgress `json:"phases"`
	// ShuffleBytes accumulates the run's shuffle-send volume.
	ShuffleBytes int64 `json:"shuffle_bytes"`
	// Stragglers lists attempt-latency outliers of the latest run.
	Stragglers []Straggler `json:"stragglers,omitempty"`
}

// ProgressReport is the full snapshot served at /progress.
type ProgressReport struct {
	Jobs []JobProgress `json:"jobs"`
}

// attemptRec remembers one map/reduce attempt for straggler detection.
type attemptRec struct {
	phase   string
	task    int
	attempt int
	sim     time.Duration
}

type trackedJob struct {
	name      string
	runs      int
	mapTotal  int
	redTotal  int
	done      bool
	phases    map[string]*PhaseProgress
	attempts  []attemptRec
	shufBytes int64
}

func (j *trackedJob) phase(name string) *PhaseProgress {
	p := j.phases[name]
	if p == nil {
		p = &PhaseProgress{Phase: name}
		j.phases[name] = p
	}
	return p
}

func (j *trackedJob) reset() {
	j.phases = make(map[string]*PhaseProgress, len(phaseOrder))
	j.attempts = j.attempts[:0]
	j.shufBytes = 0
	j.done = false
}

// Tracker is a streaming Tracer consumer that aggregates the engine's span
// stream into live per-phase progress. It implements mapreduce.Tracer and
// mapreduce.JobObserver; install it on a cluster (alone or inside a
// TeeTracer next to a span-file writer) and read Snapshot — or serve it,
// it is an http.Handler returning the snapshot as JSON.
//
// The engine emits task spans from its serial accounting sections, so
// mid-phase the tracker shows the announced totals with a zero done-count;
// multi-job pipelines (MR-CPS runs four jobs) and repeated audit runs
// progress job by job.
type Tracker struct {
	// StragglerFactor flags attempts at least this many times slower than
	// their phase median (default 4; straggler detection also needs at
	// least 4 attempts in the phase).
	StragglerFactor float64

	mu    sync.Mutex
	jobs  []*trackedJob
	index map[string]*trackedJob
}

// NewTracker returns an empty progress tracker.
func NewTracker() *Tracker {
	return &Tracker{index: make(map[string]*trackedJob)}
}

// Enabled reports true: a installed tracker wants the span stream.
func (t *Tracker) Enabled() bool { return true }

func (t *Tracker) job(name string) *trackedJob {
	j := t.index[name]
	if j == nil {
		j = &trackedJob{name: name}
		j.reset()
		t.index[name] = j
		t.jobs = append(t.jobs, j)
	}
	return j
}

// JobStarted implements mapreduce.JobObserver: it announces a run's task
// totals before any span exists. A re-announcement of a finished job name
// starts a fresh run of that job.
func (t *Tracker) JobStarted(job string, mapTasks, reduceTasks int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j := t.job(job)
	if j.done || j.runs == 0 {
		j.reset()
	}
	j.runs++
	j.mapTotal, j.redTotal = mapTasks, reduceTasks
}

// Emit implements mapreduce.Tracer.
func (t *Tracker) Emit(s mapreduce.Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j := t.job(s.Job)
	if s.Phase == mapreduce.PhaseJob {
		j.done = true
		return
	}
	p := j.phase(s.Phase)
	switch s.Phase {
	case mapreduce.PhaseMap, mapreduce.PhaseReduce:
		if s.Failed {
			p.Failed++
		} else {
			p.Done++
		}
		j.attempts = append(j.attempts, attemptRec{s.Phase, s.Task, s.Attempt, s.Simulated})
	default:
		p.Done++
	}
	p.Records += s.Records
	p.Bytes += s.Bytes
	if s.Phase == mapreduce.PhaseShuffleSend {
		j.shufBytes += s.Bytes
	}
}

func (t *Tracker) stragglerFactor() float64 {
	if t.StragglerFactor > 0 {
		return t.StragglerFactor
	}
	return 4
}

// stragglers computes the attempt-latency outliers of one job: attempts at
// least factor× their phase's median simulated duration, when the phase has
// enough attempts for a median to mean anything.
func (j *trackedJob) stragglers(factor float64) []Straggler {
	var out []Straggler
	for _, phase := range []string{mapreduce.PhaseMap, mapreduce.PhaseReduce} {
		var sims []time.Duration
		for _, a := range j.attempts {
			if a.phase == phase {
				sims = append(sims, a.sim)
			}
		}
		if len(sims) < 4 {
			continue
		}
		sorted := append([]time.Duration(nil), sims...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		median := sorted[len(sorted)/2]
		if median <= 0 {
			continue
		}
		for _, a := range j.attempts {
			if a.phase != phase {
				continue
			}
			if f := float64(a.sim) / float64(median); f >= factor {
				out = append(out, Straggler{
					Phase: a.phase, Task: a.task, Attempt: a.attempt,
					Simulated: a.sim, Factor: f,
				})
			}
		}
	}
	return out
}

// totals fills the expected unit count of each phase from the announced
// task counts: map-side phases have one unit per map task, reduce-side one
// per reducer. Map/reduce totals ignore fault re-attempts (Done counts only
// successful attempts, so done==total still marks phase completion).
func (j *trackedJob) totalFor(phase string) int {
	switch phase {
	case mapreduce.PhaseMap, mapreduce.PhaseCombine, mapreduce.PhaseShuffleSend:
		return j.mapTotal
	case mapreduce.PhaseShuffleRecv, mapreduce.PhaseReduce:
		return j.redTotal
	}
	return 0
}

// Snapshot returns the current progress of every job seen, in first-start
// order.
func (t *Tracker) Snapshot() ProgressReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	rep := ProgressReport{}
	for _, j := range t.jobs {
		jp := JobProgress{
			Job: j.name, Runs: j.runs, Done: j.done, ShuffleBytes: j.shufBytes,
		}
		for _, phase := range phaseOrder {
			p, seen := j.phases[phase]
			total := j.totalFor(phase)
			if !seen {
				if total == 0 || phase == mapreduce.PhaseCombine {
					// Unknown totals, or a combiner the job may not have:
					// only report phases that produced spans.
					continue
				}
				p = &PhaseProgress{Phase: phase}
			}
			cp := *p
			cp.Total = total
			jp.Phases = append(jp.Phases, cp)
		}
		jp.Stragglers = j.stragglers(t.stragglerFactor())
		rep.Jobs = append(rep.Jobs, jp)
	}
	return rep
}

// ServeHTTP serves the snapshot as JSON — the /progress endpoint.
func (t *Tracker) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(t.Snapshot())
}

// Line renders a one-line terminal summary: the latest job's per-phase
// done/total counts plus the finished-job tally — the CLI's -progress
// ticker output.
func (t *Tracker) Line() string {
	rep := t.Snapshot()
	if len(rep.Jobs) == 0 {
		return "progress: waiting for first job"
	}
	doneJobs := 0
	for _, j := range rep.Jobs {
		if j.Done {
			doneJobs++
		}
	}
	j := rep.Jobs[len(rep.Jobs)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "progress: %s", j.Job)
	if j.Runs > 1 {
		fmt.Fprintf(&b, " (run %d)", j.Runs)
	}
	for _, p := range j.Phases {
		short := p.Phase
		switch p.Phase {
		case mapreduce.PhaseShuffleSend:
			short = "send"
		case mapreduce.PhaseShuffleRecv:
			short = "recv"
		case mapreduce.PhaseCombine:
			short = "combine"
		}
		if p.Total > 0 {
			fmt.Fprintf(&b, " %s %d/%d", short, p.Done, p.Total)
		} else {
			fmt.Fprintf(&b, " %s %d", short, p.Done)
		}
	}
	if j.ShuffleBytes > 0 {
		fmt.Fprintf(&b, " %dB shuffled", j.ShuffleBytes)
	}
	if n := len(j.Stragglers); n > 0 {
		fmt.Fprintf(&b, " [%d straggler(s)]", n)
	}
	fmt.Fprintf(&b, " — %d job(s) finished", doneJobs)
	return b.String()
}
