// Package audit is the domain-level observability layer: where package
// mapreduce instruments the *engine* (spans, task latencies, shuffle bytes),
// this package observes the *statistics* the paper actually promises — and
// turns every MR-SQE, MR-MQE or MR-CPS run into an auditable quality report.
//
// Four audit dimensions, one per report section:
//
//   - Fill: did each stratum receive its required frequency f_k? Achieved
//     vs required counts, fill rate against the feasible target
//     min(f_k, |σ_k(R)|), shortfall and overdraw (Section 3's SSD
//     semantics).
//   - Bias: is per-stratum inclusion uniform? Repeated runs under varying
//     seeds accumulate per-individual inclusion counts, tested with the
//     chi-square machinery of internal/stats — the continuous version of
//     the test suite's unbiasedness checks (Section 4.2.3). Per-run
//     intermediate-sample histograms aggregate across runs via
//     Histogram.Merge, without re-bucketing.
//   - CPS: did the rounded plan deliver near the LP lower bound? Realized
//     cost c_τ(A*) vs the relaxation optimum C_LP, planned vs residual
//     top-up slots, and per-survey cost attribution derived from the solved
//     X_τ(σ) assignments (Section 6.2.2's optimality accounting).
//   - Estimator: is the sample statistically useful? Stratified-mean
//     standard error and the design effect against simple random sampling,
//     from internal/estimate (Example 1's motivation).
//
// The package also provides Tracker, a streaming mapreduce.Tracer consumer
// that aggregates the PR 2 span stream into live per-phase job progress
// (tasks done/total, bytes shuffled, straggler flags) — served by cmd/strata
// on the -debug-addr server at /progress and rendered as a -progress
// terminal line.
//
// Everything here is pull-based and allocation-free for the engine: audits
// run outside the job hot path, and Tracker only sees spans when a tracer is
// enabled, so the audit path is zero-cost when disabled.
package audit
