package audit

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/query"
)

// FillRow grades one stratum of one run: achieved sample size against the
// required frequency f_k, with the stratum's population size for
// feasibility-aware judgement.
type FillRow struct {
	// Stratum is the stratum's display label (its condition, or "Qi/sk").
	Stratum string `json:"stratum"`
	// Required is the query's frequency f_k.
	Required int `json:"required"`
	// Achieved is the number of tuples the answer holds for the stratum.
	Achieved int `json:"achieved"`
	// Population is |σ_k(R)|, or -1 when unknown.
	Population int64 `json:"population"`
}

// Target is the feasible requirement min(f_k, |σ_k(R)|): a stratum with
// fewer members than f_k can only ever deliver all of them (the paper's SSD
// semantics). With an unknown population the target is f_k itself.
func (r FillRow) Target() int {
	if r.Population >= 0 && r.Population < int64(r.Required) {
		return int(r.Population)
	}
	return r.Required
}

// FillRate is Achieved/Target, 1 for an empty target.
func (r FillRow) FillRate() float64 {
	t := r.Target()
	if t == 0 {
		return 1
	}
	return float64(r.Achieved) / float64(t)
}

// Shortfall is how many tuples short of the target the stratum is (0 when
// met or exceeded).
func (r FillRow) Shortfall() int {
	if d := r.Target() - r.Achieved; d > 0 {
		return d
	}
	return 0
}

// Overdraw is how many tuples beyond the required frequency were delivered —
// always a bug in the sampler, never a rounding artefact.
func (r FillRow) Overdraw() int {
	if d := r.Achieved - r.Required; d > 0 {
		return d
	}
	return 0
}

// FillReport collects the per-stratum fill rows of one run.
type FillReport struct {
	// Query names the audited query (or query set).
	Query string    `json:"query"`
	Rows  []FillRow `json:"rows"`
}

// Passed reports whether every stratum met its feasible target exactly:
// no shortfall and no overdraw.
func (f *FillReport) Passed() bool {
	for _, r := range f.Rows {
		if r.Shortfall() > 0 || r.Overdraw() > 0 {
			return false
		}
	}
	return true
}

// MinFillRate returns the worst fill rate across strata (1 when empty).
func (f *FillReport) MinFillRate() float64 {
	min := 1.0
	for _, r := range f.Rows {
		if fr := r.FillRate(); fr < min {
			min = fr
		}
	}
	return min
}

// AuditFill grades a single-query answer: one row per stratum, labelled by
// the stratum condition. pops supplies |σ_k(R)| per stratum (nil when
// unknown; StratumPopulations computes it from the splits).
func AuditFill(q *query.SSD, ans *query.Answer, pops []int64) (*FillReport, error) {
	if len(ans.Strata) != len(q.Strata) {
		return nil, fmt.Errorf("audit: answer has %d strata, query %s has %d", len(ans.Strata), q.Name, len(q.Strata))
	}
	rep := &FillReport{Query: q.Name}
	for k, s := range q.Strata {
		pop := int64(-1)
		if pops != nil {
			pop = pops[k]
		}
		rep.Rows = append(rep.Rows, FillRow{
			Stratum:    fmt.Sprint(s.Cond),
			Required:   s.Freq,
			Achieved:   len(ans.Strata[k]),
			Population: pop,
		})
	}
	return rep, nil
}

// AuditFillMulti grades a multi-query answer set (an MR-MQE or MR-CPS
// result): one row per (query, stratum), labelled "Qi: cond".
func AuditFillMulti(queries []*query.SSD, answers query.MultiAnswer, pops [][]int64) (*FillReport, error) {
	if len(answers) != len(queries) {
		return nil, fmt.Errorf("audit: %d answers for %d queries", len(answers), len(queries))
	}
	rep := &FillReport{Query: fmt.Sprintf("%d-query MSSD", len(queries))}
	for qi, q := range queries {
		var qpops []int64
		if pops != nil {
			qpops = pops[qi]
		}
		one, err := AuditFill(q, answers[qi], qpops)
		if err != nil {
			return nil, err
		}
		for _, row := range one.Rows {
			row.Stratum = fmt.Sprintf("Q%d: %s", qi+1, row.Stratum)
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// StratumPopulations counts |σ_k(R)| per stratum over the distributed
// splits — the denominator of the fill target and of the bias audit's
// expected inclusion rate.
func StratumPopulations(q *query.SSD, schema *dataset.Schema, splits []dataset.Split) ([]int64, error) {
	preds, err := q.Compile(schema)
	if err != nil {
		return nil, err
	}
	pops := make([]int64, len(q.Strata))
	for _, split := range splits {
		for i := range split {
			if k := query.MatchStratum(preds, &split[i]); k >= 0 {
				pops[k]++
			}
		}
	}
	return pops, nil
}
