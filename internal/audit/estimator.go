package audit

import (
	"repro/internal/dataset"
	"repro/internal/estimate"
	"repro/internal/query"
)

// EstimatorReport is the estimator-health section of a quality report: is
// the delivered sample statistically useful for the attribute it will
// estimate? It carries the stratified-mean estimate with its standard error
// and the design effect against a same-size simple random sample — below 1
// means the stratification is buying precision (Example 1's promise).
type EstimatorReport struct {
	// Attr is the audited numeric attribute.
	Attr string `json:"attr"`
	// Stratified is the stratified estimate x̄_st ± se from the sample.
	Stratified estimate.Mean `json:"stratified"`
	// SRS is the simple-random-sampling benchmark at the same sample size,
	// with the pooled sample standing in for an SRS draw (the standard
	// design-effect denominator approximation).
	SRS estimate.Mean `json:"srs"`
	// DesignEffect is Var(stratified)/Var(SRS) at equal size (Kish's deff).
	DesignEffect float64 `json:"design_effect"`
}

// AuditEstimator grades the answer's usefulness for estimating the mean of
// attr over the population r.
func AuditEstimator(ans *query.Answer, q *query.SSD, r *dataset.Relation, attr string) (*EstimatorReport, error) {
	sums, err := estimate.FromAnswer(ans, q, r, attr)
	if err != nil {
		return nil, err
	}
	strat, err := estimate.StratifiedMean(sums)
	if err != nil {
		return nil, err
	}
	var pooled []float64
	var totalPop int64
	for _, s := range sums {
		pooled = append(pooled, s.Values...)
		totalPop += s.PopSize
	}
	srs, err := estimate.SRSMean(pooled, totalPop)
	if err != nil {
		return nil, err
	}
	return &EstimatorReport{
		Attr:         attr,
		Stratified:   strat,
		SRS:          srs,
		DesignEffect: estimate.DesignEffect(strat, srs),
	}, nil
}
