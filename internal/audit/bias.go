package audit

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/stratified"
)

// BiasStratum is the bias verdict for one stratum: the chi-square test of
// "every member of σ_k(R) is included equally often" over repeated runs.
type BiasStratum struct {
	// Stratum is the stratum's display label.
	Stratum string `json:"stratum"`
	// Members is |σ_k(R)|, the number of test cells.
	Members int `json:"members"`
	// Required is the per-run sample frequency f_k.
	Required int `json:"required"`
	// Chi2 is the statistic Σ (obs−exp)²/exp over member inclusion counts.
	Chi2 float64 `json:"chi2"`
	// P is the probability of a statistic at least as extreme under the
	// unbiasedness null; a tiny P (say < 1e-4) flags a biased sampler.
	P float64 `json:"p"`
	// Inclusions is the distribution of per-member inclusion counts — under
	// the null, hypergeometric-thin around runs·f_k/N_k.
	Inclusions mapreduce.Histogram `json:"inclusions"`
}

// BiasReport is the inclusion-uniformity audit of a sampler over repeated
// runs with varying seeds.
type BiasReport struct {
	Query string `json:"query"`
	// Runs is how many independent runs were accumulated.
	Runs   int           `json:"runs"`
	Strata []BiasStratum `json:"strata"`
	// ReservoirSizes aggregates the per-run "reservoir_size" histograms of
	// the combiner's intermediate samples (merged with Histogram.Merge, no
	// re-bucketing) — the paper's intermediate-sample-size measurement,
	// accumulated across the whole audit.
	ReservoirSizes mapreduce.Histogram `json:"reservoir_sizes"`
}

// MinP is the worst per-stratum p-value (1 when no strata were testable).
func (b *BiasReport) MinP() float64 {
	min := 1.0
	for _, s := range b.Strata {
		if s.P < min {
			min = s.P
		}
	}
	return min
}

// Passed reports whether no stratum's p-value falls below alpha.
func (b *BiasReport) Passed(alpha float64) bool { return b.MinP() >= alpha }

// BiasAccumulator folds repeated sampling runs into per-member inclusion
// counts. Build one with NewBiasAccumulator, feed each run's answer (and
// metrics) with AddRun, and finish with Report.
type BiasAccumulator struct {
	q          *query.SSD
	members    [][]int64         // per stratum, the IDs of σ_k(R) in split order
	counts     []map[int64]int64 // per stratum, ID → inclusion count
	runs       int
	reservoirs mapreduce.Histogram
}

// NewBiasAccumulator indexes the stratum membership of the population so
// that members never sampled still count as zero-inclusion cells.
func NewBiasAccumulator(q *query.SSD, schema *dataset.Schema, splits []dataset.Split) (*BiasAccumulator, error) {
	preds, err := q.Compile(schema)
	if err != nil {
		return nil, err
	}
	a := &BiasAccumulator{
		q:       q,
		members: make([][]int64, len(q.Strata)),
		counts:  make([]map[int64]int64, len(q.Strata)),
	}
	for k := range a.counts {
		a.counts[k] = make(map[int64]int64)
	}
	for _, split := range splits {
		for i := range split {
			if k := query.MatchStratum(preds, &split[i]); k >= 0 {
				a.members[k] = append(a.members[k], split[i].ID)
			}
		}
	}
	return a, nil
}

// AddRun accumulates one run: each sampled tuple bumps its inclusion count,
// and the run's intermediate-sample histogram (Metrics.Custom's
// "reservoir_size" series, when present) merges into the audit aggregate.
func (a *BiasAccumulator) AddRun(ans *query.Answer, met mapreduce.Metrics) error {
	if len(ans.Strata) != len(a.q.Strata) {
		return fmt.Errorf("audit: answer has %d strata, query %s has %d", len(ans.Strata), a.q.Name, len(a.q.Strata))
	}
	for k := range ans.Strata {
		for i := range ans.Strata[k] {
			a.counts[k][ans.Strata[k][i].ID]++
		}
	}
	if h := met.Custom["reservoir_size"]; h != nil {
		a.reservoirs.Merge(*h)
	}
	a.runs++
	return nil
}

// Report runs the chi-square test per stratum. Strata whose per-run sample
// is exhaustive (f_k ≥ |σ_k(R)|) or empty carry p = 1: every member is
// included always (or never), which is trivially unbiased.
func (a *BiasAccumulator) Report() (*BiasReport, error) {
	rep := &BiasReport{Query: a.q.Name, Runs: a.runs, ReservoirSizes: a.reservoirs}
	for k, s := range a.q.Strata {
		row := BiasStratum{
			Stratum:  fmt.Sprint(s.Cond),
			Members:  len(a.members[k]),
			Required: s.Freq,
			P:        1,
		}
		observed := make([]int64, len(a.members[k]))
		for i, id := range a.members[k] {
			observed[i] = a.counts[k][id]
			row.Inclusions.Observe(observed[i])
		}
		// Only a proper subset draw discriminates members; exhaustive or
		// empty strata have one possible outcome.
		if len(a.members[k]) > 1 && s.Freq > 0 && s.Freq < len(a.members[k]) && a.runs > 0 {
			var total int64
			for _, o := range observed {
				total += o
			}
			if total > 0 {
				expected := make([]float64, len(observed))
				for i := range expected {
					expected[i] = float64(total) / float64(len(observed))
				}
				chi2, err := stats.ChiSquareStat(observed, expected)
				if err != nil {
					return nil, err
				}
				row.Chi2 = chi2
				row.P = stats.ChiSquareP(chi2, len(observed)-1)
			}
		}
		rep.Strata = append(rep.Strata, row)
	}
	return rep, nil
}

// BiasAuditSQE runs MR-SQE `runs` times — seeds opts.Seed, opts.Seed+1, … —
// and audits per-stratum inclusion uniformity. The returned metrics
// accumulate every run (the CLI folds them into the process /metrics
// export).
func BiasAuditSQE(c *mapreduce.Cluster, q *query.SSD, schema *dataset.Schema, splits []dataset.Split, opts stratified.Options, runs int) (*BiasReport, mapreduce.Metrics, error) {
	if runs < 1 {
		return nil, mapreduce.Metrics{}, fmt.Errorf("audit: bias audit needs at least 1 run, got %d", runs)
	}
	acc, err := NewBiasAccumulator(q, schema, splits)
	if err != nil {
		return nil, mapreduce.Metrics{}, err
	}
	var all mapreduce.Metrics
	all.Job = "audit:" + q.Name
	for run := 0; run < runs; run++ {
		ro := opts
		ro.Seed = opts.Seed + int64(run)
		ans, met, err := stratified.RunSQE(c, q, schema, splits, ro)
		if err != nil {
			return nil, mapreduce.Metrics{}, fmt.Errorf("audit: bias run %d: %w", run, err)
		}
		if err := acc.AddRun(ans, met); err != nil {
			return nil, mapreduce.Metrics{}, err
		}
		all.Add(met)
	}
	rep, err := acc.Report()
	if err != nil {
		return nil, mapreduce.Metrics{}, err
	}
	all.Job = "audit:" + q.Name
	return rep, all, nil
}
