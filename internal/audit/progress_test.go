package audit

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/stratified"
)

// gatedJob is a tiny identity job whose mappers block on a channel, so a
// test can observe the tracker mid-run.
func gatedJob(gate <-chan struct{}) *mapreduce.Job[int, int, int, int] {
	return &mapreduce.Job[int, int, int, int]{
		Name: "gated",
		Seed: 1,
		Mapper: mapreduce.MapperFunc[int, int, int](func(_ *mapreduce.TaskContext, in int, emit func(int, int)) {
			<-gate
			emit(in%2, in)
		}),
		Reducer: mapreduce.ReducerFunc[int, int, int](func(_ *mapreduce.TaskContext, _ int, vs []int, emit func(int)) {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			emit(sum)
		}),
		NumReducers: 2,
	}
}

// TestProgressLiveDuringRun is the acceptance check for the live endpoint:
// while a job's mappers are still blocked, GET /progress already reports the
// announced per-phase task totals with a zero done-count; after the run it
// reports every phase complete.
func TestProgressLiveDuringRun(t *testing.T) {
	tracker := NewTracker()
	c := mapreduce.NewCluster(4)
	c.Cost = mapreduce.ZeroCostModel()
	c.Tracer = tracker

	srv := httptest.NewServer(tracker)
	defer srv.Close()

	getReport := func() ProgressReport {
		t.Helper()
		resp, err := http.Get(srv.URL + "/progress")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type %q", ct)
		}
		var rep ProgressReport
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}

	gate := make(chan struct{})
	splits := [][]int{{1, 2}, {3, 4}, {5, 6}}
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := mapreduce.Run(c, gatedJob(gate), splits)
		done <- err
	}()
	<-started

	// Spin until JobStarted has fired (the goroutine races us to Run).
	var rep ProgressReport
	for i := 0; ; i++ {
		rep = getReport()
		if len(rep.Jobs) > 0 {
			break
		}
		if i > 10000 {
			t.Fatal("JobStarted never observed")
		}
	}
	j := rep.Jobs[0]
	if j.Job != "gated" || j.Done {
		t.Fatalf("mid-run job state: %+v", j)
	}
	findPhase := func(jp JobProgress, phase string) *PhaseProgress {
		for i := range jp.Phases {
			if jp.Phases[i].Phase == phase {
				return &jp.Phases[i]
			}
		}
		return nil
	}
	mp := findPhase(j, mapreduce.PhaseMap)
	if mp == nil {
		t.Fatalf("mid-run snapshot has no map phase: %+v", j.Phases)
	}
	if mp.Total != 3 || mp.Done != 0 {
		t.Fatalf("mid-run map progress %d/%d, want 0/3", mp.Done, mp.Total)
	}
	rp := findPhase(j, mapreduce.PhaseReduce)
	if rp == nil || rp.Total != 2 || rp.Done != 0 {
		t.Fatalf("mid-run reduce progress %+v, want 0/2", rp)
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	rep = getReport()
	j = rep.Jobs[0]
	if !j.Done {
		t.Fatal("job not marked done after run")
	}
	mp, rp = findPhase(j, mapreduce.PhaseMap), findPhase(j, mapreduce.PhaseReduce)
	if mp.Done != mp.Total || mp.Done != 3 {
		t.Fatalf("final map progress %d/%d", mp.Done, mp.Total)
	}
	if rp.Done != rp.Total || rp.Done != 2 {
		t.Fatalf("final reduce progress %d/%d", rp.Done, rp.Total)
	}
	if sp := findPhase(j, mapreduce.PhaseShuffleSend); sp == nil || sp.Done != 3 {
		t.Fatalf("final shuffle-send progress %+v", sp)
	}
	if j.ShuffleBytes <= 0 {
		t.Fatal("no shuffle bytes accumulated")
	}
	if line := tracker.Line(); !strings.Contains(line, "gated") || !strings.Contains(line, "map 3/3") {
		t.Fatalf("terminal line %q", line)
	}
}

// TestProgressFlagsStragglers is the acceptance check for straggler
// detection: under FaultModel{StragglerStdDev: 1.5} the lognormal slowdowns
// make some attempts far slower than their phase median, and the tracker
// must flag at least one.
func TestProgressFlagsStragglers(t *testing.T) {
	tracker := NewTracker()
	c := mapreduce.NewCluster(4)
	c.Tracer = tracker
	c.Faults = &mapreduce.FaultModel{StragglerStdDev: 1.5, Seed: 9}

	r := genderPop(120, 120)
	splits := splitsOf(t, r, 24)
	q := genderSSD(10, 10)
	if _, _, err := stratified.RunSQE(c, q, r.Schema(), splits, stratified.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}

	rep := tracker.Snapshot()
	if len(rep.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(rep.Jobs))
	}
	st := rep.Jobs[0].Stragglers
	if len(st) == 0 {
		t.Fatal("no straggler flagged under StragglerStdDev 1.5")
	}
	for _, s := range st {
		if s.Factor < 4 {
			t.Fatalf("flagged straggler below threshold: %+v", s)
		}
		if s.Simulated <= 0 {
			t.Fatalf("straggler without simulated duration: %+v", s)
		}
		if s.Phase != mapreduce.PhaseMap && s.Phase != mapreduce.PhaseReduce {
			t.Fatalf("straggler in unexpected phase: %+v", s)
		}
	}
}

// TestProgressNoStragglersWithoutFaults: a fault-free run of equal-size
// tasks has no 4× outliers to flag.
func TestProgressNoStragglersWithoutFaults(t *testing.T) {
	tracker := NewTracker()
	c := mapreduce.NewCluster(4)
	c.Tracer = tracker

	r := genderPop(60, 60)
	splits := splitsOf(t, r, 12)
	q := genderSSD(5, 5)
	if _, _, err := stratified.RunSQE(c, q, r.Schema(), splits, stratified.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if st := tracker.Snapshot().Jobs[0].Stragglers; len(st) != 0 {
		t.Fatalf("fault-free run flagged stragglers: %+v", st)
	}
}

// TestProgressRepeatedRuns: re-running the same job name (the bias audit
// does this dozens of times) resets the counters and bumps Runs.
func TestProgressRepeatedRuns(t *testing.T) {
	tracker := NewTracker()
	c := zeroCluster(2)
	c.Tracer = tracker

	r := genderPop(20, 20)
	splits := splitsOf(t, r, 2)
	q := genderSSD(3, 3)
	for run := 0; run < 3; run++ {
		if _, _, err := stratified.RunSQE(c, q, r.Schema(), splits, stratified.Options{Seed: int64(run)}); err != nil {
			t.Fatal(err)
		}
	}
	rep := tracker.Snapshot()
	if len(rep.Jobs) != 1 {
		t.Fatalf("jobs = %d, want 1 (same name)", len(rep.Jobs))
	}
	j := rep.Jobs[0]
	if j.Runs != 3 || !j.Done {
		t.Fatalf("runs = %d done = %v, want 3/true", j.Runs, j.Done)
	}
	for _, p := range j.Phases {
		if p.Phase == mapreduce.PhaseMap && (p.Done != 2 || p.Total != 2) {
			t.Fatalf("latest-run map progress %d/%d, want 2/2 (reset per run)", p.Done, p.Total)
		}
	}
	if line := tracker.Line(); !strings.Contains(line, "(run 3)") {
		t.Fatalf("terminal line %q missing run counter", line)
	}
}

// BenchmarkTrackerEmit prices the progress consumer's per-span cost — the
// overhead a -progress run adds on top of span assembly.
func BenchmarkTrackerEmit(b *testing.B) {
	tracker := NewTracker()
	tracker.JobStarted("bench", 8, 4)
	span := mapreduce.Span{Job: "bench", Phase: mapreduce.PhaseMap, Task: 3, Attempt: 1, Records: 100, Simulated: 1000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tracker.Emit(span)
	}
}

// TestTrackerInsideTee: the tracker composes with a span-file writer via
// TeeTracer — JobStarted reaches the tracker through the tee, spans reach
// both consumers.
func TestTrackerInsideTee(t *testing.T) {
	tracker := NewTracker()
	mem := mapreduce.NewMemTracer()
	c := zeroCluster(2)
	c.Tracer = mapreduce.NewTeeTracer(mem, tracker, nil)

	r := genderPop(10, 10)
	splits := splitsOf(t, r, 2)
	q := genderSSD(2, 2)
	if _, _, err := stratified.RunSQE(c, q, r.Schema(), splits, stratified.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	rep := tracker.Snapshot()
	if len(rep.Jobs) != 1 || !rep.Jobs[0].Done {
		t.Fatalf("tracker behind tee saw %+v", rep.Jobs)
	}
	// Totals prove JobStarted was forwarded, not just spans.
	foundTotal := false
	for _, p := range rep.Jobs[0].Phases {
		if p.Phase == mapreduce.PhaseMap && p.Total == 2 {
			foundTotal = true
		}
	}
	if !foundTotal {
		t.Fatal("JobStarted not forwarded through TeeTracer")
	}
	if len(mem.Spans()) == 0 {
		t.Fatal("memory tracer behind tee saw no spans")
	}
}
