package audit

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"repro/internal/mapreduce"
)

// Report is one run's complete quality scorecard. Sections are optional:
// a plain MR-SQE audit carries Fill+Bias (and possibly Estimator), an
// MR-CPS audit adds CPS.
type Report struct {
	Fill      *FillReport      `json:"fill,omitempty"`
	Bias      *BiasReport      `json:"bias,omitempty"`
	CPS       *CPSReport       `json:"cps,omitempty"`
	Estimator *EstimatorReport `json:"estimator,omitempty"`
}

// Passed aggregates the per-section verdicts: full fill, no bias p-value
// below alpha.
func (r *Report) Passed(alpha float64) bool {
	if r.Fill != nil && !r.Fill.Passed() {
		return false
	}
	if r.Bias != nil && !r.Bias.Passed(alpha) {
		return false
	}
	return true
}

// Render writes the human-readable quality scorecard: the per-stratum fill
// table with the chi-square bias column, then the CPS cost accounting and
// estimator health when present.
func (r *Report) Render(w io.Writer) {
	if r.Fill != nil {
		fmt.Fprintf(w, "quality scorecard — %s\n", r.Fill.Query)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		header := "stratum\trequired\tachieved\tfill\tshortfall\toverdraw"
		if r.Bias != nil {
			header += "\tbias χ²\tbias p"
		}
		fmt.Fprintln(tw, header)
		for i, row := range r.Fill.Rows {
			line := fmt.Sprintf("%s\t%d\t%d\t%.1f%%\t%d\t%d",
				row.Stratum, row.Required, row.Achieved, 100*row.FillRate(),
				row.Shortfall(), row.Overdraw())
			if r.Bias != nil && i < len(r.Bias.Strata) {
				b := r.Bias.Strata[i]
				line += fmt.Sprintf("\t%.1f\t%.4f", b.Chi2, b.P)
			}
			fmt.Fprintln(tw, line)
		}
		tw.Flush()
	}
	if r.Bias != nil {
		fmt.Fprintf(w, "bias audit: %d runs, min p = %.4f", r.Bias.Runs, r.Bias.MinP())
		if r.Bias.ReservoirSizes.Count() > 0 {
			fmt.Fprintf(w, "; intermediate samples %s", r.Bias.ReservoirSizes.String())
		}
		fmt.Fprintln(w)
	}
	if r.CPS != nil {
		c := r.CPS
		fmt.Fprintf(w, "\nCPS cost accounting (%d surveys)\n", c.Surveys)
		fmt.Fprintf(w, "  LP objective C_LP:  $%.2f\n", c.LPObjective)
		fmt.Fprintf(w, "  realized cost:      $%.2f  (%.3f× the LP bound)\n", c.RealizedCost, c.CostRatio())
		fmt.Fprintf(w, "  MQE baseline cost:  $%.2f  (CPS saves %.1f%%)\n", c.InitialCost, 100*c.Savings())
		fmt.Fprintf(w, "  planned individuals: %d   residual top-ups: %d (%.2f%% of delivered)\n",
			c.PlannedTuples, c.ResidualTuples, 100*c.ResidualFraction())
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  survey\trequired\tachieved\tplanned\tresidual\tplan cost\tresidual cost")
		for _, s := range c.PerSurvey {
			fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%d\t$%.2f\t$%.2f\n",
				s.Name, s.Required, s.Achieved, s.PlannedSlots, s.ResidualSlots, s.PlanCost, s.ResidualCost)
		}
		tw.Flush()
	}
	if r.Estimator != nil {
		e := r.Estimator
		fmt.Fprintf(w, "\nestimator health — mean %s\n", e.Attr)
		fmt.Fprintf(w, "  stratified: %s\n", e.Stratified)
		fmt.Fprintf(w, "  SRS (same size): %s\n", e.SRS)
		verdict := "stratification pays"
		if e.DesignEffect >= 1 {
			verdict = "stratification does not pay for this attribute"
		}
		fmt.Fprintf(w, "  design effect: %.3f (%s)\n", e.DesignEffect, verdict)
	}
}

// Histograms exports the audit's distributions in the engine's histogram
// form, keyed like Metrics.Custom series: fold them into the process
// metrics (Metrics.Add) and they travel the existing JSON and Prometheus
// export paths unchanged.
func (r *Report) Histograms() map[string]*mapreduce.Histogram {
	out := make(map[string]*mapreduce.Histogram)
	if r.Fill != nil {
		h := &mapreduce.Histogram{}
		for _, row := range r.Fill.Rows {
			h.Observe(int64(1000 * row.FillRate())) // permille, log₂ buckets
		}
		out["audit_fill_permille"] = h
	}
	if r.Bias != nil {
		inc := &mapreduce.Histogram{}
		for _, s := range r.Bias.Strata {
			inc.Merge(s.Inclusions)
		}
		if inc.Count() > 0 {
			out["audit_inclusion_count"] = inc
		}
		if r.Bias.ReservoirSizes.Count() > 0 {
			rs := r.Bias.ReservoirSizes
			out["audit_reservoir_size"] = &rs
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// WritePrometheus renders the report as gauges in the Prometheus text
// exposition format — the body of the CLI's /quality endpoint. Output order
// is deterministic.
func (r *Report) WritePrometheus(w io.Writer) error {
	var err error
	printf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	gauge := func(name, help string) {
		printf("# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	if r.Fill != nil {
		q := promLabel(r.Fill.Query)
		gauge("strata_audit_fill_rate", "Achieved/feasible-required sample size per stratum.")
		for _, row := range r.Fill.Rows {
			printf("strata_audit_fill_rate{query=%q,stratum=%q} %g\n", q, promLabel(row.Stratum), row.FillRate())
		}
		gauge("strata_audit_achieved", "Achieved sample size per stratum.")
		for _, row := range r.Fill.Rows {
			printf("strata_audit_achieved{query=%q,stratum=%q} %d\n", q, promLabel(row.Stratum), row.Achieved)
		}
		gauge("strata_audit_required", "Required frequency f_k per stratum.")
		for _, row := range r.Fill.Rows {
			printf("strata_audit_required{query=%q,stratum=%q} %d\n", q, promLabel(row.Stratum), row.Required)
		}
	}
	if r.Bias != nil {
		q := promLabel(r.Bias.Query)
		gauge("strata_audit_bias_p", "Chi-square p-value of per-stratum inclusion uniformity.")
		for _, s := range r.Bias.Strata {
			printf("strata_audit_bias_p{query=%q,stratum=%q} %g\n", q, promLabel(s.Stratum), s.P)
		}
		gauge("strata_audit_bias_runs", "Runs accumulated by the bias audit.")
		printf("strata_audit_bias_runs{query=%q} %d\n", q, r.Bias.Runs)
	}
	if r.CPS != nil {
		gauge("strata_audit_lp_objective", "C_LP, the constraint-program lower bound.")
		printf("strata_audit_lp_objective %g\n", r.CPS.LPObjective)
		gauge("strata_audit_realized_cost", "Realized survey cost of the delivered answer set.")
		printf("strata_audit_realized_cost %g\n", r.CPS.RealizedCost)
		gauge("strata_audit_residual_tuples", "Individuals added by the residual phase.")
		printf("strata_audit_residual_tuples %d\n", r.CPS.ResidualTuples)
		gauge("strata_audit_planned_tuples", "Individuals delivered by the rounded plan.")
		printf("strata_audit_planned_tuples %d\n", r.CPS.PlannedTuples)
		gauge("strata_audit_survey_plan_cost", "Equal-split plan cost attributed to one survey.")
		for _, s := range r.CPS.PerSurvey {
			printf("strata_audit_survey_plan_cost{survey=%q} %g\n", promLabel(s.Name), s.PlanCost)
		}
		gauge("strata_audit_survey_residual_slots", "Residual top-up slots per survey.")
		for _, s := range r.CPS.PerSurvey {
			printf("strata_audit_survey_residual_slots{survey=%q} %d\n", promLabel(s.Name), s.ResidualSlots)
		}
	}
	if r.Estimator != nil {
		gauge("strata_audit_stratified_stderr", "Standard error of the stratified mean estimator.")
		printf("strata_audit_stratified_stderr{attr=%q} %g\n", promLabel(r.Estimator.Attr), r.Estimator.Stratified.StdErr)
		gauge("strata_audit_design_effect", "Var(stratified)/Var(SRS) at equal sample size.")
		printf("strata_audit_design_effect{attr=%q} %g\n", promLabel(r.Estimator.Attr), r.Estimator.DesignEffect)
	}
	return err
}

// promLabel strips newlines and control bytes from a label value; %q at the
// call sites supplies the quoting and escaping the exposition format needs.
func promLabel(s string) string {
	return strings.Map(func(r rune) rune {
		if r < 0x20 || r == 0x7f {
			return '.'
		}
		return r
	}, s)
}
