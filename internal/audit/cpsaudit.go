package audit

import (
	"math"

	"repro/internal/cps"
	"repro/internal/query"
)

// SurveyCost attributes the CPS plan to one survey: how its interview slots
// were filled and what they cost.
type SurveyCost struct {
	// Survey is the 0-based survey index; Name its SSD name.
	Survey int    `json:"survey"`
	Name   string `json:"name"`
	// Required is the survey's total frequency Σ_k f_{i,k}; Achieved the
	// delivered answer size.
	Required int `json:"required"`
	Achieved int `json:"achieved"`
	// PlannedSlots counts slots filled by dealt X_τ(σ) tuples,
	// ResidualSlots the rounding deficits topped up by the residual phase.
	PlannedSlots  int `json:"planned_slots"`
	ResidualSlots int `json:"residual_slots"`
	// PlanCost is the survey's equal-split share of the solved plan's
	// objective: Σ_{σ} Σ_{τ∋i} X_τ(σ)·c_τ/|τ|. Shares sum to the rounded
	// plan's cost across surveys.
	PlanCost float64 `json:"plan_cost"`
	// ResidualCost prices the top-up slots at the unshared rate c_{{i}} —
	// residual individuals are never shared, which is exactly why rounding
	// deficits are costed above the LP bound.
	ResidualCost float64 `json:"residual_cost"`
}

// CPSReport is the cost-optimality audit of one MR-CPS run: how close the
// realized answer set came to the LP lower bound, and where the gap
// (rounding, residual top-ups) went.
type CPSReport struct {
	Surveys int `json:"surveys"`
	// LPObjective is C_LP, the relaxation optimum — a lower bound on any
	// integral answer's cost.
	LPObjective float64 `json:"lp_objective"`
	// RealizedCost is c_τ(A*), the cost of the delivered answer set.
	RealizedCost float64 `json:"realized_cost"`
	// InitialCost is c_τ(A) of the representative MR-MQE answer of step 1 —
	// the baseline CPS is meant to undercut.
	InitialCost float64 `json:"initial_cost"`
	// PlannedTuples and ResidualTuples are the §6.2.2 counters: individuals
	// delivered by the rounded plan vs added to cover rounding deficits.
	PlannedTuples  int `json:"planned_tuples"`
	ResidualTuples int `json:"residual_tuples"`
	// PerSurvey attributes slots and cost per survey.
	PerSurvey []SurveyCost `json:"per_survey"`
}

// CostRatio is RealizedCost/LPObjective — 1 means the rounding and residual
// phases cost nothing over the LP bound (+Inf for a zero objective with
// positive realized cost).
func (r *CPSReport) CostRatio() float64 {
	if r.LPObjective == 0 {
		if r.RealizedCost == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return r.RealizedCost / r.LPObjective
}

// ResidualFraction is the share of delivered individuals that came from the
// residual phase rather than the plan (0 when nothing was delivered).
func (r *CPSReport) ResidualFraction() float64 {
	total := r.PlannedTuples + r.ResidualTuples
	if total == 0 {
		return 0
	}
	return float64(r.ResidualTuples) / float64(total)
}

// Savings is 1 − RealizedCost/InitialCost: the fraction of the naive
// (MQE) survey cost that CPS's sharing saved.
func (r *CPSReport) Savings() float64 {
	if r.InitialCost == 0 {
		return 0
	}
	return 1 - r.RealizedCost/r.InitialCost
}

// AuditCPS accounts one MR-CPS (or sequential CPS) result against the MSSD
// that produced it.
func AuditCPS(m *query.MSSD, res *cps.Result) *CPSReport {
	n := len(m.Queries)
	rep := &CPSReport{
		Surveys:        n,
		LPObjective:    res.LP.Objective,
		RealizedCost:   res.Answers.Cost(m.Costs),
		InitialCost:    res.Initial.Cost(m.Costs),
		PlannedTuples:  res.PlannedTuples,
		ResidualTuples: res.ResidualTuples,
	}
	rep.PerSurvey = make([]SurveyCost, n)
	for i, q := range m.Queries {
		rep.PerSurvey[i] = SurveyCost{
			Survey:   i,
			Name:     q.Name,
			Required: q.TotalFreq(),
		}
		if res.Answers != nil && res.Answers[i] != nil {
			rep.PerSurvey[i].Achieved = res.Answers[i].Size()
		}
		if i < len(res.PlannedPerSurvey) {
			rep.PerSurvey[i].PlannedSlots = res.PlannedPerSurvey[i]
		}
		if i < len(res.ResidualPerSurvey) {
			rep.PerSurvey[i].ResidualSlots = res.ResidualPerSurvey[i]
			rep.PerSurvey[i].ResidualCost = float64(res.ResidualPerSurvey[i]) * m.Costs.Cost(query.NewTau(i))
		}
	}
	// Equal-split plan-cost attribution from the solved X_τ(σ): one
	// individual asked the surveys of τ costs c_τ once; each member survey
	// carries an equal share, so the shares reconstruct the plan objective.
	if res.Plan != nil {
		for _, byTau := range res.Plan.Assign {
			for tau, x := range byTau {
				if x <= 0 || tau.Empty() {
					continue
				}
				share := float64(x) * m.Costs.Cost(tau) / float64(tau.Size())
				for _, i := range tau.Indexes() {
					rep.PerSurvey[i].PlanCost += share
				}
			}
		}
	}
	return rep
}
