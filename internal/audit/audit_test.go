package audit

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cps"
	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/stratified"
)

func testSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Field{Name: "gender", Min: 0, Max: 1},
		dataset.Field{Name: "income", Min: 0, Max: 1000},
	)
}

// genderPop builds a population with `men` men then `women` women. Incomes
// differ by gender so the stratification has something to buy the estimator.
func genderPop(men, women int) *dataset.Relation {
	r := dataset.NewRelation(testSchema())
	id := int64(0)
	for i := 0; i < men; i++ {
		r.MustAdd(dataset.Tuple{ID: id, Attrs: []int64{1, 600 + id%200}})
		id++
	}
	for i := 0; i < women; i++ {
		r.MustAdd(dataset.Tuple{ID: id, Attrs: []int64{0, 100 + id%200}})
		id++
	}
	return r
}

func genderSSD(fMen, fWomen int) *query.SSD {
	return query.NewSSD("gender",
		query.Stratum{Cond: predicate.MustParse("gender = 1"), Freq: fMen},
		query.Stratum{Cond: predicate.MustParse("gender = 0"), Freq: fWomen},
	)
}

func zeroCluster(slaves int) *mapreduce.Cluster {
	return &mapreduce.Cluster{Slaves: slaves, SlotsPerSlave: 1, Cost: mapreduce.ZeroCostModel()}
}

func splitsOf(t *testing.T, r *dataset.Relation, k int) []dataset.Split {
	t.Helper()
	splits, err := dataset.Partition(r, k, dataset.Contiguous, nil)
	if err != nil {
		t.Fatal(err)
	}
	return splits
}

func TestAuditFillCleanRun(t *testing.T) {
	r := genderPop(30, 34)
	splits := splitsOf(t, r, 2)
	q := genderSSD(5, 6)
	ans, _, err := stratified.RunSQE(zeroCluster(2), q, r.Schema(), splits, stratified.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pops, err := StratumPopulations(q, r.Schema(), splits)
	if err != nil {
		t.Fatal(err)
	}
	if pops[0] != 30 || pops[1] != 34 {
		t.Fatalf("populations = %v, want [30 34]", pops)
	}
	rep, err := AuditFill(q, ans, pops)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("clean run failed fill audit: %+v", rep.Rows)
	}
	if rep.MinFillRate() != 1 {
		t.Fatalf("min fill rate = %v, want 1", rep.MinFillRate())
	}
	for _, row := range rep.Rows {
		if row.Achieved != row.Required {
			t.Fatalf("stratum %s achieved %d, required %d", row.Stratum, row.Achieved, row.Required)
		}
	}
}

// TestAuditFillExhaustiveStratum: requesting more than the stratum holds is
// feasible-by-definition (take all), so the fill target shrinks to the
// population and the audit still passes.
func TestAuditFillExhaustiveStratum(t *testing.T) {
	r := genderPop(3, 10)
	splits := splitsOf(t, r, 2)
	q := genderSSD(5, 2) // only 3 men exist
	ans, _, err := stratified.RunSQE(zeroCluster(2), q, r.Schema(), splits, stratified.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pops, err := StratumPopulations(q, r.Schema(), splits)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AuditFill(q, ans, pops)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("exhaustive stratum should pass: %+v", rep.Rows)
	}
	if got := rep.Rows[0].Target(); got != 3 {
		t.Fatalf("feasible target = %d, want 3", got)
	}
}

func TestFillRowVerdicts(t *testing.T) {
	short := FillRow{Stratum: "s", Required: 5, Achieved: 3, Population: 10}
	if short.Shortfall() != 2 || short.FillRate() != 0.6 {
		t.Fatalf("shortfall row: shortfall=%d rate=%v", short.Shortfall(), short.FillRate())
	}
	over := FillRow{Stratum: "s", Required: 5, Achieved: 7, Population: 10}
	if over.Overdraw() != 2 || over.Shortfall() != 0 {
		t.Fatalf("overdraw row: overdraw=%d", over.Overdraw())
	}
	unknown := FillRow{Stratum: "s", Required: 5, Achieved: 5, Population: -1}
	if unknown.Target() != 5 || unknown.FillRate() != 1 {
		t.Fatalf("unknown-population row: target=%d", unknown.Target())
	}
	rep := &FillReport{Rows: []FillRow{short}}
	if rep.Passed() {
		t.Fatal("report with shortfall must not pass")
	}
}

func TestBiasAuditSQEUnbiased(t *testing.T) {
	r := genderPop(12, 16)
	splits := splitsOf(t, r, 2)
	q := genderSSD(3, 4)
	rep, met, err := BiasAuditSQE(zeroCluster(2), q, r.Schema(), splits, stratified.Options{Seed: 7}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 40 {
		t.Fatalf("runs = %d, want 40", rep.Runs)
	}
	if len(rep.Strata) != 2 {
		t.Fatalf("strata = %d, want 2", len(rep.Strata))
	}
	if rep.Strata[0].Members != 12 || rep.Strata[1].Members != 16 {
		t.Fatalf("members = %d/%d, want 12/16", rep.Strata[0].Members, rep.Strata[1].Members)
	}
	// Algorithm 1 is uniform per stratum; across 40 independent runs the
	// inclusion chi-square should not reject at any sane threshold.
	if rep.MinP() < 1e-4 {
		t.Fatalf("unbiased sampler flagged: min p = %v", rep.MinP())
	}
	if !rep.Passed(1e-4) {
		t.Fatal("Passed(1e-4) = false for unbiased sampler")
	}
	// Each member is one inclusion-count observation.
	if got := rep.Strata[0].Inclusions.Count(); got != 12 {
		t.Fatalf("inclusion histogram count = %d, want 12", got)
	}
	// The combiner's reservoir_size series merged across runs: 3 non-empty
	// (task, stratum) reservoirs per run (the contiguous second split holds
	// only women) × 40 runs.
	if got := rep.ReservoirSizes.Count(); got != 120 {
		t.Fatalf("reservoir size observations = %d, want 120", got)
	}
	if met.Job != "audit:gender" {
		t.Fatalf("metrics job = %q", met.Job)
	}
	// 40 runs over 28 tuples on 2 splits.
	if met.MapInputRecords != 40*28 {
		t.Fatalf("accumulated map input = %d, want %d", met.MapInputRecords, 40*28)
	}
}

// TestBiasAuditDetectsBias: a deliberately skewed inclusion pattern (member 0
// always chosen, the rest evenly) must produce a tiny p-value.
func TestBiasAuditDetectsBias(t *testing.T) {
	r := genderPop(10, 0)
	splits := splitsOf(t, r, 1)
	q := query.NewSSD("biased",
		query.Stratum{Cond: predicate.MustParse("gender = 1"), Freq: 2},
	)
	acc, err := NewBiasAccumulator(q, r.Schema(), splits)
	if err != nil {
		t.Fatal(err)
	}
	// 60 fake runs: {0, 1+run%9} — member 0 in every draw.
	for run := 0; run < 60; run++ {
		ans := &query.Answer{Strata: [][]dataset.Tuple{{
			{ID: 0}, {ID: int64(1 + run%9)},
		}}}
		if err := acc.AddRun(ans, mapreduce.Metrics{}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := acc.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MinP() > 1e-6 {
		t.Fatalf("skewed inclusions not flagged: p = %v", rep.MinP())
	}
	if rep.Passed(1e-4) {
		t.Fatal("Passed must fail for a biased sampler")
	}
}

// TestBiasExhaustiveStratumTrivial: f_k ≥ |σ_k(R)| has one possible outcome,
// so the stratum is trivially unbiased (p = 1).
func TestBiasExhaustiveStratumTrivial(t *testing.T) {
	r := genderPop(3, 8)
	splits := splitsOf(t, r, 2)
	q := genderSSD(5, 2)
	rep, _, err := BiasAuditSQE(zeroCluster(2), q, r.Schema(), splits, stratified.Options{Seed: 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strata[0].P != 1 || rep.Strata[0].Chi2 != 0 {
		t.Fatalf("exhaustive stratum p = %v chi2 = %v, want 1 / 0", rep.Strata[0].P, rep.Strata[0].Chi2)
	}
}

func exampleMSSD(f1m, f1f, f2lo, f2hi int) *query.MSSD {
	q1 := query.NewSSD("Q1",
		query.Stratum{Cond: predicate.MustParse("gender = 1"), Freq: f1m},
		query.Stratum{Cond: predicate.MustParse("gender = 0"), Freq: f1f},
	)
	q2 := query.NewSSD("Q2",
		query.Stratum{Cond: predicate.MustParse("income < 500"), Freq: f2lo},
		query.Stratum{Cond: predicate.MustParse("income >= 500"), Freq: f2hi},
	)
	return query.NewMSSD(query.PenaltyCosts{Interview: 1}, q1, q2)
}

func TestAuditCPS(t *testing.T) {
	r := genderPop(60, 60)
	splits := splitsOf(t, r, 3)
	m := exampleMSSD(6, 6, 6, 6)
	res, err := cps.Run(zeroCluster(3), m, r.Schema(), splits, cps.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rep := AuditCPS(m, res)
	if rep.Surveys != 2 {
		t.Fatalf("surveys = %d", rep.Surveys)
	}
	// The LP objective lower-bounds any integral answer set.
	if rep.RealizedCost < rep.LPObjective-1e-9 {
		t.Fatalf("realized %.4f below LP bound %.4f", rep.RealizedCost, rep.LPObjective)
	}
	if rep.CostRatio() < 1-1e-9 {
		t.Fatalf("cost ratio %v < 1", rep.CostRatio())
	}
	// Sharing must not cost more than the naive per-survey baseline.
	if rep.RealizedCost > rep.InitialCost+1e-9 {
		t.Fatalf("realized %.4f exceeds MQE baseline %.4f", rep.RealizedCost, rep.InitialCost)
	}
	if rep.Savings() < 0 {
		t.Fatalf("negative savings %v", rep.Savings())
	}
	for i, s := range rep.PerSurvey {
		if s.Achieved != s.Required {
			t.Fatalf("survey %d achieved %d, required %d", i, s.Achieved, s.Required)
		}
		if s.PlannedSlots+s.ResidualSlots != s.Achieved {
			t.Fatalf("survey %d slots %d+%d != achieved %d",
				i, s.PlannedSlots, s.ResidualSlots, s.Achieved)
		}
	}
	// Equal-split plan shares reconstruct the rounded plan's total cost;
	// plan + residual pricing reconstructs the realized cost.
	var planCost, residCost float64
	for _, s := range rep.PerSurvey {
		planCost += s.PlanCost
		residCost += s.ResidualCost
	}
	if diff := planCost + residCost - rep.RealizedCost; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("attributed cost %.6f + %.6f != realized %.6f",
			planCost, residCost, rep.RealizedCost)
	}
	if frac := rep.ResidualFraction(); frac < 0 || frac > 1 {
		t.Fatalf("residual fraction %v out of range", frac)
	}
}

func TestAuditEstimator(t *testing.T) {
	r := genderPop(200, 200)
	splits := splitsOf(t, r, 2)
	q := genderSSD(20, 20)
	ans, _, err := stratified.RunSQE(zeroCluster(2), q, r.Schema(), splits, stratified.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AuditEstimator(ans, q, r, "income")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attr != "income" {
		t.Fatalf("attr = %q", rep.Attr)
	}
	if rep.Stratified.SampleSize != 40 || rep.SRS.SampleSize != 40 {
		t.Fatalf("estimator sample sizes %d/%d, want 40/40", rep.Stratified.SampleSize, rep.SRS.SampleSize)
	}
	// Incomes are bimodal by gender (100–299 vs 600–799): stratifying on
	// gender removes the between-group variance, so the design effect must
	// show a clear win.
	if rep.DesignEffect >= 1 {
		t.Fatalf("design effect %v, want < 1 for gender-separated incomes", rep.DesignEffect)
	}
	if rep.Stratified.StdErr <= 0 || rep.Stratified.StdErr >= rep.SRS.StdErr {
		t.Fatalf("stratified stderr %v should be positive and below SRS %v",
			rep.Stratified.StdErr, rep.SRS.StdErr)
	}
}

func TestReportRenderAndPassed(t *testing.T) {
	r := genderPop(30, 34)
	splits := splitsOf(t, r, 2)
	q := genderSSD(5, 6)
	pops, err := StratumPopulations(q, r.Schema(), splits)
	if err != nil {
		t.Fatal(err)
	}
	bias, _, err := BiasAuditSQE(zeroCluster(2), q, r.Schema(), splits, stratified.Options{Seed: 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	ans, _, err := stratified.RunSQE(zeroCluster(2), q, r.Schema(), splits, stratified.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fill, err := AuditFill(q, ans, pops)
	if err != nil {
		t.Fatal(err)
	}
	est, err := AuditEstimator(ans, q, r, "income")
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{Fill: fill, Bias: bias, Estimator: est}
	if !rep.Passed(1e-4) {
		t.Fatal("clean report must pass")
	}

	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, want := range []string{
		"quality scorecard", "stratum", "required", "achieved", "fill",
		"bias p", "bias audit: 10 runs", "estimator health", "design effect",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}

	// The report must survive a JSON round trip (it is the /quality payload
	// seed and the scorecard attachment).
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fill.Rows[0].Achieved != fill.Rows[0].Achieved || back.Bias.Runs != 10 {
		t.Fatal("JSON round trip lost report data")
	}

	hists := rep.Histograms()
	if hists["audit_fill_permille"] == nil || hists["audit_fill_permille"].Count() != 2 {
		t.Fatalf("fill histogram missing or wrong: %v", hists)
	}
	if hists["audit_inclusion_count"] == nil {
		t.Fatal("inclusion histogram missing")
	}
	if hists["audit_reservoir_size"] == nil {
		t.Fatal("reservoir histogram missing")
	}
}

func TestReportWritePrometheus(t *testing.T) {
	rep := &Report{
		Fill: &FillReport{Query: "q", Rows: []FillRow{
			{Stratum: "gender = 1", Required: 5, Achieved: 5, Population: 30},
		}},
		CPS: &CPSReport{
			Surveys: 1, LPObjective: 10, RealizedCost: 12,
			PlannedTuples: 9, ResidualTuples: 3,
			PerSurvey: []SurveyCost{{Survey: 0, Name: "Q1", PlanCost: 9, ResidualSlots: 3}},
		},
	}
	var a, b bytes.Buffer
	if err := rep.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := rep.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("prometheus rendering not deterministic")
	}
	out := a.String()
	for _, want := range []string{
		`strata_audit_fill_rate{query="q",stratum="gender = 1"} 1`,
		"strata_audit_lp_objective 10",
		"strata_audit_realized_cost 12",
		`strata_audit_survey_residual_slots{survey="Q1"} 3`,
		"# TYPE strata_audit_fill_rate gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if promLabel("a\nb\x01c") != "a.b.c" {
		t.Fatalf("promLabel = %q", promLabel("a\nb\x01c"))
	}
}
