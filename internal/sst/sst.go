// Package sst implements the stratum-selection trie of Section 5.2.5.1
// (Figure 5): a fixed-depth trie whose level i branches on the stratum
// constraint (if any) that query Q_i contributes to a stratum selection σ,
// with instance counts at the leaves. MR-CPS uses SSTs to derive the set of
// relevant stratum selections [[Q]]* and the frequencies F(A_i, σ) without
// enumerating the exponentially large [[Q]].
package sst

import (
	"fmt"
	"sort"
	"strings"
)

// None is the branch label for "query contributes no stratum" at some level.
const None = -1

// Trie is a stratum-selection trie of fixed depth. A path is a stratum
// selection: path[i] is the stratum index of query i, or None. The zero
// value is not usable; call New.
type Trie struct {
	depth int
	root  *node
	leafs int
	total int64
}

type node struct {
	children map[int]*node
	count    int64 // leaf instance count (only at depth == t.depth)
}

// New creates a trie for selections over `depth` queries.
func New(depth int) *Trie {
	if depth < 0 {
		panic("sst: negative depth")
	}
	return &Trie{depth: depth, root: &node{}}
}

// Depth returns the number of levels (queries).
func (t *Trie) Depth() int { return t.depth }

// Len returns the number of distinct selections inserted.
func (t *Trie) Len() int { return t.leafs }

// Total returns the sum of all instance counts.
func (t *Trie) Total() int64 { return t.total }

// Insert adds `delta` instances of the selection. It panics when the path
// length does not match the trie depth or delta is negative.
func (t *Trie) Insert(path []int, delta int64) {
	if len(path) != t.depth {
		panic(fmt.Sprintf("sst: path length %d, trie depth %d", len(path), t.depth))
	}
	if delta < 0 {
		panic("sst: negative delta")
	}
	n := t.root
	for _, b := range path {
		if n.children == nil {
			n.children = make(map[int]*node)
		}
		child, ok := n.children[b]
		if !ok {
			child = &node{}
			n.children[b] = child
		}
		n = child
	}
	if n.count == 0 && delta > 0 {
		t.leafs++
	}
	n.count += delta
	t.total += delta
}

// Count returns the instance count of the selection (0 when absent).
func (t *Trie) Count(path []int) int64 {
	if len(path) != t.depth {
		panic(fmt.Sprintf("sst: path length %d, trie depth %d", len(path), t.depth))
	}
	n := t.root
	for _, b := range path {
		child, ok := n.children[b]
		if !ok {
			return 0
		}
		n = child
	}
	return n.count
}

// String renders the trie's leaves like Figure 5 of the paper: one line per
// stored selection with its instance count, in deterministic order.
func (t *Trie) String() string {
	type leaf struct {
		path  []int
		count int64
	}
	var leaves []leaf
	t.Walk(func(path []int, count int64) {
		leaves = append(leaves, leaf{append([]int(nil), path...), count})
	})
	sort.Slice(leaves, func(a, b int) bool {
		for i := range leaves[a].path {
			if leaves[a].path[i] != leaves[b].path[i] {
				return leaves[a].path[i] < leaves[b].path[i]
			}
		}
		return false
	})
	var b strings.Builder
	for _, l := range leaves {
		for i, v := range l.path {
			if i > 0 {
				b.WriteByte(' ')
			}
			if v == None {
				b.WriteByte('-')
			} else {
				fmt.Fprintf(&b, "s%d", v+1)
			}
		}
		fmt.Fprintf(&b, ": %d\n", l.count)
	}
	return b.String()
}

// Walk visits every selection with a positive count. The path slice passed
// to fn is reused between calls; copy it to retain it.
func (t *Trie) Walk(fn func(path []int, count int64)) {
	path := make([]int, t.depth)
	var rec func(n *node, level int)
	rec = func(n *node, level int) {
		if level == t.depth {
			if n.count > 0 {
				fn(path, n.count)
			}
			return
		}
		for b, child := range n.children {
			path[level] = b
			rec(child, level+1)
		}
	}
	rec(t.root, 0)
}
