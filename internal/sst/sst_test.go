package sst

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertAndCount(t *testing.T) {
	tr := New(3)
	tr.Insert([]int{0, None, 2}, 1)
	tr.Insert([]int{0, None, 2}, 2)
	tr.Insert([]int{1, 1, None}, 5)
	if got := tr.Count([]int{0, None, 2}); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	if got := tr.Count([]int{1, 1, None}); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := tr.Count([]int{9, 9, 9}); got != 0 {
		t.Fatalf("absent Count = %d, want 0", got)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if tr.Total() != 8 {
		t.Fatalf("Total = %d, want 8", tr.Total())
	}
	if tr.Depth() != 3 {
		t.Fatalf("Depth = %d", tr.Depth())
	}
}

func TestWalkVisitsAll(t *testing.T) {
	tr := New(2)
	paths := [][]int{{0, 0}, {0, 1}, {None, 3}}
	for i, p := range paths {
		tr.Insert(p, int64(i+1))
	}
	var got [][]int
	var counts []int64
	tr.Walk(func(path []int, count int64) {
		got = append(got, append([]int(nil), path...))
		counts = append(counts, count)
	})
	if len(got) != 3 {
		t.Fatalf("Walk visited %d leaves, want 3", len(got))
	}
	sort.Slice(got, func(i, j int) bool {
		if got[i][0] != got[j][0] {
			return got[i][0] < got[j][0]
		}
		return got[i][1] < got[j][1]
	})
	want := [][]int{{None, 3}, {0, 0}, {0, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Walk paths = %v, want %v", got, want)
	}
}

func TestZeroDeltaDoesNotCreateLeaf(t *testing.T) {
	tr := New(1)
	tr.Insert([]int{0}, 0)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after zero insert", tr.Len())
	}
	visits := 0
	tr.Walk(func([]int, int64) { visits++ })
	if visits != 0 {
		t.Fatal("Walk must skip zero-count leaves")
	}
}

func TestPanics(t *testing.T) {
	tr := New(2)
	for _, fn := range []func(){
		func() { tr.Insert([]int{1}, 1) },
		func() { tr.Count([]int{1, 2, 3}) },
		func() { tr.Insert([]int{1, 2}, -1) },
		func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDepthZero(t *testing.T) {
	tr := New(0)
	tr.Insert(nil, 4)
	if tr.Count(nil) != 4 || tr.Len() != 1 {
		t.Fatal("depth-0 trie should hold a single root leaf")
	}
}

// TestQuickTrieMatchesMap: a trie over random insertions agrees with a map
// keyed by the path.
func TestQuickTrieMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := rng.Intn(4) + 1
		tr := New(depth)
		oracle := map[string]int64{}
		key := func(p []int) string {
			b := make([]byte, depth)
			for i, v := range p {
				b[i] = byte(v + 1)
			}
			return string(b)
		}
		for i := 0; i < 100; i++ {
			p := make([]int, depth)
			for j := range p {
				p[j] = rng.Intn(4) - 1 // None..2
			}
			d := int64(rng.Intn(3))
			tr.Insert(p, d)
			if d > 0 {
				oracle[key(p)] += d
			}
		}
		// Every oracle entry matches, and Walk covers exactly the oracle.
		walked := map[string]int64{}
		tr.Walk(func(p []int, c int64) { walked[key(p)] = c })
		if len(walked) != len(oracle) || tr.Len() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			if walked[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	tr := New(2)
	tr.Insert([]int{0, None}, 2)
	tr.Insert([]int{1, 3}, 1)
	got := tr.String()
	want := "s1 -: 2\ns2 s4: 1\n"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
