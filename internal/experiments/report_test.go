package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Header:  []string{"col", "longer-column"},
		Rows:    [][]string{{"a-very-long-cell", "b"}, {"c", "d"}},
		Caption: "caption line",
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	got := buf.String()
	want := "== demo ==\n" +
		"col               longer-column\n" +
		"----------------  -------------\n" +
		"a-very-long-cell  b\n" +
		"c                 d\n" +
		"caption line\n\n"
	if got != want {
		t.Fatalf("render mismatch:\n got %q\nwant %q", got, want)
	}
}

func TestTableRenderNoCaption(t *testing.T) {
	tab := &Table{Title: "x", Header: []string{"h"}, Rows: [][]string{{"v"}}}
	var buf bytes.Buffer
	tab.Render(&buf)
	if strings.Count(buf.String(), "\n") != 5 { // title, header, sep, row, trailing blank
		t.Fatalf("unexpected line count in %q", buf.String())
	}
}

func TestFormatHelpers(t *testing.T) {
	if pct(0.62) != "62%" || pct1(0.055) != "5.5%" {
		t.Fatal("pct helpers wrong")
	}
	if money(1234.4) != "$1234" || num(1.234) != "1.23" {
		t.Fatal("money/num helpers wrong")
	}
	if seconds(0.5) != "0.500s" || seconds(12.345) != "12.35s" {
		t.Fatal("seconds helper wrong")
	}
}
