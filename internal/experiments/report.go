package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a generic printable result table shared by all experiments.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(w, "%s\n", t.Caption)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func pct(x float64) string   { return fmt.Sprintf("%.0f%%", x*100) }
func pct1(x float64) string  { return fmt.Sprintf("%.1f%%", x*100) }
func money(x float64) string { return fmt.Sprintf("$%.0f", x) }
func num(x float64) string   { return fmt.Sprintf("%.2f", x) }
func seconds(x float64) string {
	if x < 1 {
		return fmt.Sprintf("%.3fs", x)
	}
	return fmt.Sprintf("%.2fs", x)
}
