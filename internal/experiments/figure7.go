package experiments

import (
	"fmt"
	"time"

	"repro/internal/mapreduce"
)

// Figure7Cell is one (algorithm, slaves, group, sample-size) measurement.
type Figure7Cell struct {
	Algorithm  string // "MQE" or "CPS"
	Slaves     int
	Group      string
	SampleSize int
	Simulated  time.Duration // virtual-clock makespan
	MapFrac    float64       // fraction of simulated work in the map phase
	CombFrac   float64
	ReduceFrac float64
}

// Figure7Result reproduces Figure 7: running times for the query groups on
// cluster configurations of 1, 5 and 10 slaves, with the paper's companion
// observation that ≈70%/28%/1% of time goes to map/combine/reduce.
type Figure7Result struct {
	SlaveSweep []int
	Cells      []Figure7Cell
}

// Figure7 runs the efficiency/scalability experiment. Runs are averaged.
func Figure7(cfg Config) (*Figure7Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pop := cfg.population()
	res := &Figure7Result{SlaveSweep: []int{1, 5, 10}}
	for _, slaves := range res.SlaveSweep {
		for _, group := range cfg.groups() {
			for _, sampleSize := range cfg.SampleSizes {
				w, err := buildWorkload(cfg, pop, group, sampleSize, slaves)
				if err != nil {
					return nil, err
				}
				var mqeSim, cpsSim time.Duration
				var mqeAgg, cpsAgg mapreduce.Metrics
				for run := 0; run < cfg.Runs; run++ {
					seed := cfg.Seed + int64(run)*6151
					_, met, err := w.runMQE(seed)
					if err != nil {
						return nil, fmt.Errorf("figure7 MQE %s: %w", group.Name, err)
					}
					mqeSim += met.SimulatedTotal()
					mqeAgg.Add(met)
					cpsRes, err := w.runCPS(seed, defaultSolve())
					if err != nil {
						return nil, fmt.Errorf("figure7 CPS %s: %w", group.Name, err)
					}
					cpsSim += cpsRes.Metrics.SimulatedTotal() +
						cpsRes.LP.FormulateTime + cpsRes.LP.SolveTime
					cpsAgg.Add(cpsRes.Metrics)
				}
				mapF, combF, redF := phaseSplit(mqeAgg, w.cluster.Cost)
				res.Cells = append(res.Cells, Figure7Cell{
					Algorithm: "MQE", Slaves: slaves, Group: group.Name, SampleSize: sampleSize,
					Simulated: mqeSim / time.Duration(cfg.Runs),
					MapFrac:   mapF, CombFrac: combF, ReduceFrac: redF,
				})
				mapF, combF, redF = phaseSplit(cpsAgg, w.cluster.Cost)
				res.Cells = append(res.Cells, Figure7Cell{
					Algorithm: "CPS", Slaves: slaves, Group: group.Name, SampleSize: sampleSize,
					Simulated: cpsSim / time.Duration(cfg.Runs),
					MapFrac:   mapF, CombFrac: combF, ReduceFrac: redF,
				})
			}
		}
	}
	return res, nil
}

// phaseSplit recomputes, from measured record counts and the cost model, the
// fraction of per-record work done in the map, combine and reduce phases —
// the paper's 70/28/1 observation.
func phaseSplit(m mapreduce.Metrics, cost mapreduce.CostModel) (mapFrac, combFrac, reduceFrac float64) {
	mapW := float64(m.MapInputRecords) * float64(cost.MapPerRecord)
	combW := float64(m.CombineInputRecs) * float64(cost.CombinePerRecord)
	redW := float64(m.ReduceInputRecs) * float64(cost.ReducePerRecord)
	total := mapW + combW + redW
	if total == 0 {
		return 0, 0, 0
	}
	return mapW / total, combW / total, redW / total
}

// Speedup returns simulated-time(1 slave)/simulated-time(n slaves) for the
// algorithm and group at the first sample size — the scalability headline.
func (r *Figure7Result) Speedup(algorithm, group string, slaves int) float64 {
	var t1, tn time.Duration
	for _, c := range r.Cells {
		if c.Algorithm != algorithm || c.Group != group {
			continue
		}
		if c.Slaves == 1 && t1 == 0 {
			t1 = c.Simulated
		}
		if c.Slaves == slaves && tn == 0 {
			tn = c.Simulated
		}
	}
	if tn == 0 {
		return 0
	}
	return float64(t1) / float64(tn)
}

// Table renders the result.
func (r *Figure7Result) Table() *Table {
	t := &Table{
		Title:  "Figure 7: running times (virtual cluster clock)",
		Header: []string{"Alg[slaves]", "Group", "Sample", "Simulated", "map/comb/red"},
		Caption: "Paper: near-linear speed-up in slaves; ≈70%/28%/1% of the time in\n" +
			"the Mapper/Combiner/Reducer phases; CPS ≈ 3× MQE.",
	}
	for _, c := range r.Cells {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s[%d]", c.Algorithm, c.Slaves),
			c.Group,
			fmt.Sprintf("%d", c.SampleSize),
			seconds(c.Simulated.Seconds()),
			fmt.Sprintf("%s/%s/%s", pct(c.MapFrac), pct(c.CombFrac), pct(c.ReduceFrac)),
		})
	}
	return t
}
