// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on the simulated substrate:
//
//   - Table 2   — survey cost of MR-CPS as a percentage of MR-MQE, per
//     query group (Small/Medium/Large).
//   - Figure 6  — percentage of individuals assigned to i surveys by MR-CPS.
//   - Figure 7  — running times per query group on clusters of 1, 5 and 10
//     slaves (virtual clock), plus the map/combine/reduce phase split.
//   - Figure 8  — time spent formulating and solving the LP.
//   - §6.2.2    — optimality analysis: residual fraction and the
//     C_LP ≤ C_IP ≤ C_A ordering.
//   - §6.2.1    — the uniform-synthetic-dataset comparison.
//
// Scale is configurable; the defaults are laptop-sized (the paper used a
// 100 GB dataset on 11 EC2 VMs — see DESIGN.md for the substitution notes).
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cps"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/mapreduce"
	"repro/internal/query"
	"repro/internal/stratified"
)

// Config scales an experiment run.
type Config struct {
	// PopulationSize is |R| (the paper's dataset holds >1M authors; the
	// default here is laptop-sized).
	PopulationSize int
	// SampleSizes are the per-SSD sample sizes; the paper uses 100, 1000
	// and 10000 (0.01%, 0.1% and 1% of the population).
	SampleSizes []int
	// Runs is how many times randomized measurements are repeated and
	// averaged (the paper averages 100 runs for costs, 10 for times).
	Runs int
	// Slaves is the cluster size used where the experiment doesn't sweep
	// it.
	Slaves int
	// Seed drives all randomness.
	Seed int64
	// Uniform switches the population to the no-correlation synthetic
	// dataset of Section 6.2.1.
	Uniform bool
	// Groups restricts which query groups run (default: all three).
	Groups []gen.GroupParams
}

// DefaultConfig returns a configuration that finishes in seconds while
// preserving the paper's proportions (sample ≈ 0.1%–1% of the population).
func DefaultConfig() Config {
	return Config{
		PopulationSize: 20000,
		SampleSizes:    []int{100, 1000},
		Runs:           10,
		Slaves:         10,
		Seed:           1,
	}
}

func (c Config) groups() []gen.GroupParams {
	if len(c.Groups) > 0 {
		return c.Groups
	}
	return gen.Groups()
}

func (c Config) population() *dataset.Relation {
	if c.Uniform {
		return gen.UniformPopulation(c.PopulationSize, c.Seed)
	}
	return gen.Population(c.PopulationSize, c.Seed)
}

// workload bundles everything one query-group experiment needs.
type workload struct {
	group   gen.GroupParams
	mssd    *query.MSSD
	schema  *dataset.Schema
	splits  []dataset.Split
	cluster *mapreduce.Cluster
}

// buildWorkload generates the population once (per config) and the group's
// queries and costs. sampleSize is the per-SSD sample size.
func buildWorkload(cfg Config, pop *dataset.Relation, group gen.GroupParams, sampleSize int, slaves int) (*workload, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(group.N)*1000 + int64(sampleSize)))
	queries, err := gen.QueryGroup(group, pop, sampleSize, rng)
	if err != nil {
		return nil, err
	}
	costs := gen.DefaultPenaltyTable(group.N, rng)
	// The data layout is fixed (HDFS-style blocks), independent of the
	// cluster size the job runs on — 20 splits covers the paper's largest
	// configuration (10 slaves × 2 slots).
	splits, err := dataset.Partition(pop, 20, dataset.Contiguous, nil)
	if err != nil {
		return nil, err
	}
	return &workload{
		group:   group,
		mssd:    query.NewMSSD(costs, queries...),
		schema:  pop.Schema(),
		splits:  splits,
		cluster: mapreduce.NewCluster(slaves),
	}, nil
}

// runMQE runs MR-MQE on the workload.
func (w *workload) runMQE(seed int64) (query.MultiAnswer, mapreduce.Metrics, error) {
	return stratified.RunMQE(w.cluster, w.mssd.Queries, w.schema, w.splits, stratified.Options{Seed: seed})
}

// runCPS runs MR-CPS on the workload. The generated query groups are valid
// by construction, so validation is skipped (it is O(m²) disjointness checks
// that the timing experiments must not measure).
func (w *workload) runCPS(seed int64, solve cps.SolveOptions) (*cps.Result, error) {
	return cps.RunUnvalidated(w.cluster, w.mssd, w.schema, w.splits, cps.Options{Seed: seed, Solve: solve})
}

// defaultSolve is the MR-CPS production configuration: per-σ decomposed LP.
func defaultSolve() cps.SolveOptions { return cps.SolveOptions{} }

func (c Config) validate() error {
	if c.PopulationSize < 1 {
		return fmt.Errorf("experiments: population size %d", c.PopulationSize)
	}
	if len(c.SampleSizes) == 0 {
		return fmt.Errorf("experiments: no sample sizes")
	}
	if c.Runs < 1 {
		return fmt.Errorf("experiments: runs %d", c.Runs)
	}
	if c.Slaves < 1 {
		return fmt.Errorf("experiments: slaves %d", c.Slaves)
	}
	return nil
}
