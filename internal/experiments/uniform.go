package experiments

// UniformRow compares one group's cost ratio on the real-shaped (correlated,
// Table 1 marginals) population vs the uniform no-correlation synthetic one.
type UniformRow struct {
	Group        string
	RealRatio    float64
	UniformRatio float64
}

// UniformResult reproduces the Section 6.2.1 robustness check: "for a random
// set of queries, the distributions of values had no effect on the cost
// saving".
type UniformResult struct {
	Rows []UniformRow
}

// UniformComparison runs Table 2 on both populations and pairs the ratios.
func UniformComparison(cfg Config) (*UniformResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	real := cfg
	real.Uniform = false
	realRes, err := Table2(real)
	if err != nil {
		return nil, err
	}
	uni := cfg
	uni.Uniform = true
	uniRes, err := Table2(uni)
	if err != nil {
		return nil, err
	}
	res := &UniformResult{}
	for i, row := range realRes.Rows {
		res.Rows = append(res.Rows, UniformRow{
			Group:        row.Group,
			RealRatio:    row.Ratio,
			UniformRatio: uniRes.Rows[i].Ratio,
		})
	}
	return res, nil
}

// Table renders the result.
func (r *UniformResult) Table() *Table {
	t := &Table{
		Title:  "Section 6.2.1: value-distribution robustness",
		Header: []string{"Group", "ratio (Table-1 data)", "ratio (uniform data)"},
		Caption: "Paper: results on the uniform synthetic dataset are similar to the\n" +
			"real dataset — distributions had no effect on the cost saving.",
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Group, pct(row.RealRatio), pct(row.UniformRatio)})
	}
	return t
}
