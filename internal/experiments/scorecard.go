package experiments

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/stratified"
)

// ScoreRow grades one reproduced claim against the paper.
type ScoreRow struct {
	Claim    string
	Paper    string
	Measured string
	Pass     bool
}

// ScorecardResult is the one-glance reproduction summary: every headline
// claim of the evaluation section with its measured counterpart and a
// pass/fail verdict against generous shape bands (the substrate is a
// simulator; shapes and factors must hold, absolute numbers need not).
type ScorecardResult struct {
	Rows []ScoreRow
}

// Passed reports whether every claim passed.
func (r *ScorecardResult) Passed() bool {
	for _, row := range r.Rows {
		if !row.Pass {
			return false
		}
	}
	return true
}

// Scorecard runs the headline experiments at the given configuration and
// grades them.
func Scorecard(cfg Config) (*ScorecardResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &ScorecardResult{}
	add := func(claim, paper, measured string, pass bool) {
		res.Rows = append(res.Rows, ScoreRow{Claim: claim, Paper: paper, Measured: measured, Pass: pass})
	}

	t2, err := Table2(cfg)
	if err != nil {
		return nil, err
	}
	for _, row := range t2.Rows {
		pass := row.Ratio < 0.9 && row.Ratio > 0.2 &&
			row.Ratio > row.PaperPct-0.20 && row.Ratio < row.PaperPct+0.20
		add(
			fmt.Sprintf("Table 2 %s: cost CPS/MQE", row.Group),
			pct(row.PaperPct), pct(row.Ratio), pass,
		)
	}

	f6, err := Figure6(cfg)
	if err != nil {
		return nil, err
	}
	for _, row := range f6.Rows {
		add(
			fmt.Sprintf("Figure 6 %s: surveys per CPS individual", row.Group),
			"≈2", num(row.MeanSurveys),
			row.MeanSurveys > 1.15 && row.MeanSurveys < 4,
		)
	}
	// MQE sharing is incidental and scales as sample/population: the
	// paper's ≤4% holds at |R| > 1M. What must hold at any scale is that
	// it stays far below CPS's engineered sharing.
	worstMQE, worstCPSShared := 0.0, 1.0
	for _, row := range f6.Rows {
		if row.MQEShared > worstMQE {
			worstMQE = row.MQEShared
		}
		if shared := 1 - row.Share[0]; shared < worstCPSShared {
			worstCPSShared = shared
		}
	}
	add("Figure 6: MR-MQE sharing ≪ MR-CPS sharing", "incidental (≤4% at 1M)",
		fmt.Sprintf("%s vs %s", pct1(worstMQE), pct1(worstCPSShared)),
		worstMQE < 0.6*worstCPSShared)

	f7cfg := cfg
	f7cfg.Runs = 1
	f7, err := Figure7(f7cfg)
	if err != nil {
		return nil, err
	}
	group := cfg.groups()[0].Name
	speedup := f7.Speedup("MQE", group, 10)
	add("Figure 7: speed-up 1→10 slaves", "≈linear (≈10×)", fmt.Sprintf("%.1f×", speedup), speedup > 5)
	var mqe10, cps10 float64
	for _, c := range f7.Cells {
		if c.Slaves == 10 && c.Group == group && c.SampleSize == cfg.SampleSizes[0] {
			if c.Algorithm == "MQE" {
				mqe10 = c.Simulated.Seconds()
			} else {
				cps10 = c.Simulated.Seconds()
			}
		}
	}
	ratio := cps10 / mqe10
	add("Figure 7: CPS/MQE running-time factor", "≈3×", fmt.Sprintf("%.1f×", ratio), ratio > 1.5 && ratio < 5)

	f8, err := Figure8(cfg)
	if err != nil {
		return nil, err
	}
	worstLPShare := 0.0
	for _, row := range f8.Rows {
		share := (row.Formulate + row.Solve).Seconds() / row.PipelineSimulated.Seconds()
		if share > worstLPShare {
			worstLPShare = share
		}
	}
	add("Figure 8: LP share of pipeline time", "≈1%", pct1(worstLPShare), worstLPShare < 0.25)

	// Audit section: the paper's statistical contract, graded by
	// internal/audit on the smallest group — required frequencies met
	// exactly, per-stratum inclusion unbiased, CPS cost at or above (but
	// near) the LP lower bound.
	w, err := buildWorkload(cfg, cfg.population(), cfg.groups()[0], cfg.SampleSizes[0], cfg.Slaves)
	if err != nil {
		return nil, err
	}
	biasRuns := cfg.Runs
	if biasRuns < 5 {
		biasRuns = 5
	}
	bias, _, err := audit.BiasAuditSQE(w.cluster, w.mssd.Queries[0], w.schema, w.splits,
		stratified.Options{Seed: cfg.Seed}, biasRuns)
	if err != nil {
		return nil, err
	}
	add("Audit: per-stratum inclusion uniformity", "unbiased (p ≥ 1e-4)",
		fmt.Sprintf("min p = %.3f over %d runs", bias.MinP(), bias.Runs), bias.Passed(1e-4))

	cpsRes, err := w.runCPS(cfg.Seed, defaultSolve())
	if err != nil {
		return nil, err
	}
	pops := make([][]int64, len(w.mssd.Queries))
	for i, q := range w.mssd.Queries {
		if pops[i], err = audit.StratumPopulations(q, w.schema, w.splits); err != nil {
			return nil, err
		}
	}
	fill, err := audit.AuditFillMulti(w.mssd.Queries, cpsRes.Answers, pops)
	if err != nil {
		return nil, err
	}
	add("Audit: required frequencies f_k met", "100% fill, no overdraw",
		pct(fill.MinFillRate()), fill.Passed())

	crep := audit.AuditCPS(w.mssd, cpsRes)
	add("Audit: CPS realized cost vs LP bound", "≥1×, near 1×",
		fmt.Sprintf("%.3f× (residual %s)", crep.CostRatio(), pct1(crep.ResidualFraction())),
		crep.CostRatio() >= 1-1e-9 && crep.CostRatio() < 1.3)

	return res, nil
}

// Table renders the scorecard.
func (r *ScorecardResult) Table() *Table {
	t := &Table{
		Title:  "Reproduction scorecard",
		Header: []string{"Claim", "paper", "measured", "verdict"},
	}
	for _, row := range r.Rows {
		verdict := "PASS"
		if !row.Pass {
			verdict = "FAIL"
		}
		t.Rows = append(t.Rows, []string{row.Claim, row.Paper, row.Measured, verdict})
	}
	if r.Passed() {
		t.Caption = "All headline claims reproduced."
	} else {
		t.Caption = "Some claims did not reproduce at this scale; see EXPERIMENTS.md."
	}
	return t
}
