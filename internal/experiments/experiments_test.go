package experiments

import (
	"bytes"
	"testing"

	"repro/internal/gen"
)

// quickConfig is a fast configuration for CI-sized runs.
func quickConfig() Config {
	return Config{
		PopulationSize: 12000,
		SampleSizes:    []int{60},
		Runs:           3,
		Slaves:         4,
		Seed:           5,
		Groups:         []gen.GroupParams{gen.Small, gen.Medium},
	}
}

func TestTable2ShowsSavings(t *testing.T) {
	res, err := Table2(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Ratio >= 1 {
			t.Fatalf("%s: CPS did not save cost (ratio %.2f)", row.Group, row.Ratio)
		}
		if row.Ratio < 0.2 {
			t.Fatalf("%s: ratio %.2f implausibly low", row.Group, row.Ratio)
		}
	}
	// More surveys → more sharing opportunities → at least as much saving.
	if res.Rows[1].Ratio > res.Rows[0].Ratio+0.10 {
		t.Fatalf("Medium ratio %.2f much worse than Small %.2f", res.Rows[1].Ratio, res.Rows[0].Ratio)
	}
	var buf bytes.Buffer
	res.Table().Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestFigure6SharingProfile(t *testing.T) {
	res, err := Figure6(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		var sum float64
		for _, s := range row.Share {
			sum += s
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s: shares sum to %.3f", row.Group, sum)
		}
		if row.MeanSurveys <= 1.0 {
			t.Fatalf("%s: CPS mean surveys %.2f; no sharing happened", row.Group, row.MeanSurveys)
		}
		// CPS engineers sharing; MQE's is incidental. At this reduced
		// scale (sample/population = 0.5%, vs the paper's 0.01–1% of 1M)
		// incidental overlap is larger than the paper's <4%, but must
		// stay clearly below CPS's engineered sharing.
		if row.MQESurveyAvg > row.MeanSurveys-0.2 {
			t.Fatalf("%s: MQE average %.2f not clearly below CPS %.2f",
				row.Group, row.MQESurveyAvg, row.MeanSurveys)
		}
	}
	var buf bytes.Buffer
	res.Table().Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestFigure7Scales(t *testing.T) {
	cfg := quickConfig()
	cfg.PopulationSize = 20000
	cfg.Runs = 1
	cfg.Groups = []gen.GroupParams{gen.Small}
	res, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := res.Speedup("MQE", "Small", 10)
	if sp < 4 {
		t.Fatalf("speedup 1→10 slaves = %.2f, want near-linear", sp)
	}
	// CPS runs a multi-job pipeline; it must be slower than MQE but within
	// a small factor (paper: ≈3×).
	var mqe, cpsT float64
	for _, c := range res.Cells {
		if c.Slaves != 10 {
			continue
		}
		if c.Algorithm == "MQE" {
			mqe = c.Simulated.Seconds()
		} else {
			cpsT = c.Simulated.Seconds()
		}
	}
	if cpsT <= mqe {
		t.Fatalf("CPS (%.3fs) not slower than MQE (%.3fs)", cpsT, mqe)
	}
	if cpsT > 8*mqe {
		t.Fatalf("CPS (%.3fs) more than 8x MQE (%.3fs)", cpsT, mqe)
	}
	var buf bytes.Buffer
	res.Table().Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestFigure7PhaseSplitShape(t *testing.T) {
	cfg := quickConfig()
	cfg.Runs = 1
	cfg.Groups = []gen.GroupParams{gen.Small}
	res, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.MapFrac < 0.5 {
			t.Fatalf("map fraction %.2f; paper reports the map phase dominates (≈70%%)", c.MapFrac)
		}
		if c.ReduceFrac > 0.10 {
			t.Fatalf("reduce fraction %.2f; paper reports ≈1%%", c.ReduceFrac)
		}
	}
}

func TestFigure8LPNegligible(t *testing.T) {
	cfg := quickConfig()
	cfg.Runs = 2
	res, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		lp := row.Formulate + row.Solve
		if lp.Seconds() > 0.5*row.PipelineSimulated.Seconds() {
			t.Fatalf("%s: LP time %v not negligible vs pipeline %v", row.Group, lp, row.PipelineSimulated)
		}
		if row.Vars == 0 || row.Constraints == 0 || row.Selections == 0 {
			t.Fatalf("%s: empty LP stats %+v", row.Group, row)
		}
	}
}

func TestOptimalityOrdering(t *testing.T) {
	cfg := quickConfig()
	cfg.Groups = []gen.GroupParams{gen.Small}
	cfg.Runs = 2
	res, err := Optimality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.CLp > row.CIp+1e-6 {
			t.Fatalf("%s: C_LP %.2f > C_IP %.2f", row.Group, row.CLp, row.CIp)
		}
		if row.CIp > row.CA+1e-6 {
			t.Fatalf("%s: C_IP %.2f > C_A %.2f", row.Group, row.CIp, row.CA)
		}
		if row.ResidualFrac > 0.30 {
			t.Fatalf("%s: residual fraction %.3f", row.Group, row.ResidualFrac)
		}
	}
}

func TestUniformComparisonSimilar(t *testing.T) {
	cfg := quickConfig()
	cfg.Groups = []gen.GroupParams{gen.Small}
	res, err := UniformComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.UniformRatio >= 1 || row.RealRatio >= 1 {
			t.Fatalf("%s: no savings (real %.2f, uniform %.2f)", row.Group, row.RealRatio, row.UniformRatio)
		}
		diff := row.RealRatio - row.UniformRatio
		if diff < -0.25 || diff > 0.25 {
			t.Fatalf("%s: ratios diverge (real %.2f, uniform %.2f)", row.Group, row.RealRatio, row.UniformRatio)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{PopulationSize: 0, SampleSizes: []int{1}, Runs: 1, Slaves: 1},
		{PopulationSize: 1, SampleSizes: nil, Runs: 1, Slaves: 1},
		{PopulationSize: 1, SampleSizes: []int{1}, Runs: 0, Slaves: 1},
		{PopulationSize: 1, SampleSizes: []int{1}, Runs: 1, Slaves: 0},
	}
	for i, cfg := range bad {
		if _, err := Table2(cfg); err == nil {
			t.Fatalf("config %d should fail validation", i)
		}
	}
	def := DefaultConfig()
	if err := def.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDataScalingLinear(t *testing.T) {
	cfg := quickConfig()
	// Large enough that per-record work dominates the fixed task overheads,
	// as in the paper's 10–100 GB regime; otherwise the constant terms
	// flatten the ratios.
	cfg.PopulationSize = 100000
	cfg.Runs = 1
	cfg.Groups = []gen.GroupParams{gen.Small}
	res, err := DataScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, alg := range []string{"MQE", "CPS"} {
		// time(100%)/time(50%) should be near 2; overheads pull it down.
		r2 := res.LinearityRatio(alg, 0.5)
		if r2 < 1.5 || r2 > 2.3 {
			t.Fatalf("%s: full/half ratio %.2f, want ≈2 (linear)", alg, r2)
		}
		r10 := res.LinearityRatio(alg, 0.1)
		if r10 < 4 || r10 > 11 {
			t.Fatalf("%s: full/tenth ratio %.2f, want ≈10 (linear, minus fixed overheads)", alg, r10)
		}
	}
	var buf bytes.Buffer
	res.Table().Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestScorecardPassesAtModerateScale(t *testing.T) {
	cfg := Config{
		PopulationSize: 30000,
		SampleSizes:    []int{300},
		Runs:           2,
		Slaves:         10,
		Seed:           3,
	}
	res, err := Scorecard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !row.Pass {
			t.Errorf("claim %q: paper %s, measured %s — FAIL", row.Claim, row.Paper, row.Measured)
		}
	}
	var buf bytes.Buffer
	res.Table().Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}
