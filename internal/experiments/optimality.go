package experiments

import (
	"fmt"

	"repro/internal/cps"
)

// OptimalityRow is one group's optimality analysis.
type OptimalityRow struct {
	Group string
	// ResidualFrac is residual tuples / all assigned tuples — the paper
	// reports at most 5.5%.
	ResidualFrac float64
	// CLp ≤ CIp ≤ CA must hold (Section 6.2.2).
	CLp float64 // LP relaxation optimum
	CIp float64 // exact IP optimum (branch and bound)
	CA  float64 // realised cost of the MR-CPS answer
	// GapFrac is (CA − CIp)/CA, the paper's ≤ 0.055 bound estimate.
	GapFrac float64
}

// OptimalityResult reproduces the analysis of Section 6.2.2.
type OptimalityResult struct {
	Rows []OptimalityRow
}

// Optimality runs MR-CPS with the LP relaxation, re-solves the same
// constraint program exactly with branch-and-bound, and compares costs. The
// IP is tractable thanks to the per-σ decomposition (see DESIGN.md).
func Optimality(cfg Config) (*OptimalityResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pop := cfg.population()
	res := &OptimalityResult{}
	sampleSize := cfg.SampleSizes[0]
	for _, group := range cfg.groups() {
		w, err := buildWorkload(cfg, pop, group, sampleSize, cfg.Slaves)
		if err != nil {
			return nil, err
		}
		var resid, total float64
		var cLp, cIp, cA float64
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + int64(run)*911
			lpRes, err := w.runCPS(seed, cps.SolveOptions{})
			if err != nil {
				return nil, fmt.Errorf("optimality %s (LP): %w", group.Name, err)
			}
			ipRes, err := w.runCPS(seed, cps.SolveOptions{Integer: true})
			if err != nil {
				return nil, fmt.Errorf("optimality %s (IP): %w", group.Name, err)
			}
			resid += float64(lpRes.ResidualTuples)
			total += float64(lpRes.PlannedTuples + lpRes.ResidualTuples)
			cLp += lpRes.LP.Objective
			cIp += ipRes.LP.Objective
			cA += lpRes.Answers.Cost(w.mssd.Costs)
		}
		n := float64(cfg.Runs)
		row := OptimalityRow{
			Group:        group.Name,
			ResidualFrac: resid / total,
			CLp:          cLp / n,
			CIp:          cIp / n,
			CA:           cA / n,
		}
		if row.CA > 0 {
			row.GapFrac = (row.CA - row.CIp) / row.CA
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the result.
func (r *OptimalityResult) Table() *Table {
	t := &Table{
		Title:  "Section 6.2.2: optimality analysis (C_LP <= C_IP <= C_A)",
		Header: []string{"Group", "C_LP", "C_IP", "C_A", "(C_A-C_IP)/C_A", "residual"},
		Caption: "Paper: residual answers were at most 5.5% of the MR-CPS answers, so\n" +
			"the provided answer costs at most 5.5% more than the optimum.",
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Group, money(row.CLp), money(row.CIp), money(row.CA),
			pct1(row.GapFrac), pct1(row.ResidualFrac),
		})
	}
	return t
}
