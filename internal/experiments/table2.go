package experiments

import "fmt"

// Table2Row is one query group's cost comparison.
type Table2Row struct {
	Group     string
	MQECost   float64 // mean over runs
	CPSCost   float64 // mean over runs
	Ratio     float64 // CPSCost / MQECost — the paper's reported percentage
	PaperPct  float64 // the value Table 2 of the paper reports
	Runs      int
	SampleSum int // per-SSD sample size used
}

// Table2Result reproduces Table 2: "Survey cost when using MR-CPS as the
// percentage of the survey cost when using MR-MQE" (paper: 62%, 51%, 47%).
type Table2Result struct {
	Rows []Table2Row
}

// paperTable2 holds the published values for side-by-side reporting.
var paperTable2 = map[string]float64{"Small": 0.62, "Medium": 0.51, "Large": 0.47}

// Table2 runs the cost-effectiveness experiment of Section 6.2.1. The first
// sample size of the config is used (costs are size-normalised ratios; the
// paper aggregates per group).
func Table2(cfg Config) (*Table2Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pop := cfg.population()
	res := &Table2Result{}
	sampleSize := cfg.SampleSizes[0]
	for _, group := range cfg.groups() {
		w, err := buildWorkload(cfg, pop, group, sampleSize, cfg.Slaves)
		if err != nil {
			return nil, err
		}
		var mqeSum, cpsSum float64
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + int64(run)*7919
			cpsRes, err := w.runCPS(seed, defaultSolve())
			if err != nil {
				return nil, fmt.Errorf("table2 %s run %d: %w", group.Name, run, err)
			}
			// The CPS pipeline's step-1 answer IS an MR-MQE answer, so it
			// doubles as the benchmark (as in the paper, MR-MQE selects
			// individuals independently per survey).
			mqeSum += cpsRes.Initial.Cost(w.mssd.Costs)
			cpsSum += cpsRes.Answers.Cost(w.mssd.Costs)
		}
		mqe := mqeSum / float64(cfg.Runs)
		cpsC := cpsSum / float64(cfg.Runs)
		res.Rows = append(res.Rows, Table2Row{
			Group:     group.Name,
			MQECost:   mqe,
			CPSCost:   cpsC,
			Ratio:     cpsC / mqe,
			PaperPct:  paperTable2[group.Name],
			Runs:      cfg.Runs,
			SampleSum: sampleSize,
		})
	}
	return res, nil
}

// Table renders the result.
func (r *Table2Result) Table() *Table {
	t := &Table{
		Title:  "Table 2: cost CPS / cost MQE",
		Header: []string{"Dataset", "MQE cost", "CPS cost", "cost CPS/cost MQE", "paper"},
		Caption: "Survey cost when using MR-CPS as the percentage of the survey cost\n" +
			"when using MR-MQE (paper: 62% / 51% / 47%).",
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Group, money(row.MQECost), money(row.CPSCost), pct(row.Ratio), pct(row.PaperPct),
		})
	}
	return t
}
