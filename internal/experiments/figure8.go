package experiments

import (
	"fmt"
	"time"
)

// Figure8Row is the LP cost of one (group, sample size) configuration.
type Figure8Row struct {
	Group       string
	SampleSize  int
	Formulate   time.Duration // building [[Q]]*, SSTs and limits bookkeeping
	Solve       time.Duration // Simplex time
	Vars        int
	Constraints int
	Selections  int
	// PipelineSimulated is the whole MR-CPS virtual-clock time, to show
	// the LP share is negligible (the paper: <1% of the running time).
	PipelineSimulated time.Duration
}

// Figure8Result reproduces Figure 8: "The average running times, in seconds,
// for formulating and solving the LP (log scale)".
type Figure8Result struct {
	Rows []Figure8Row
}

// Figure8 measures LP formulation and solve times per group and sample size.
// Unlike the virtual cluster clock, these are real measured durations — the
// LP runs on one machine in both the paper and this reproduction.
func Figure8(cfg Config) (*Figure8Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pop := cfg.population()
	res := &Figure8Result{}
	for _, group := range cfg.groups() {
		for _, sampleSize := range cfg.SampleSizes {
			w, err := buildWorkload(cfg, pop, group, sampleSize, cfg.Slaves)
			if err != nil {
				return nil, err
			}
			var form, solve, pipeline time.Duration
			var vars, cons, sels int
			for run := 0; run < cfg.Runs; run++ {
				seed := cfg.Seed + int64(run)*3571
				cpsRes, err := w.runCPS(seed, defaultSolve())
				if err != nil {
					return nil, fmt.Errorf("figure8 %s: %w", group.Name, err)
				}
				form += cpsRes.LP.FormulateTime
				solve += cpsRes.LP.SolveTime
				pipeline += cpsRes.Metrics.SimulatedTotal()
				vars += cpsRes.LP.Vars
				cons += cpsRes.LP.Constraints
				sels += cpsRes.LP.Selections
			}
			n := time.Duration(cfg.Runs)
			res.Rows = append(res.Rows, Figure8Row{
				Group:             group.Name,
				SampleSize:        sampleSize,
				Formulate:         form / n,
				Solve:             solve / n,
				Vars:              vars / cfg.Runs,
				Constraints:       cons / cfg.Runs,
				Selections:        sels / cfg.Runs,
				PipelineSimulated: pipeline / n,
			})
		}
	}
	return res, nil
}

// Table renders the result.
func (r *Figure8Result) Table() *Table {
	t := &Table{
		Title:  "Figure 8: LP formulate+solve times",
		Header: []string{"Group", "Sample", "|[[Q]]*|", "vars", "cons", "formulate", "solve", "pipeline(sim)"},
		Caption: "Paper: LP times are seconds at most — insignificant next to the\n" +
			"MapReduce pipeline; one node suffices for the LP.",
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Group,
			fmt.Sprintf("%d", row.SampleSize),
			fmt.Sprintf("%d", row.Selections),
			fmt.Sprintf("%d", row.Vars),
			fmt.Sprintf("%d", row.Constraints),
			seconds(row.Formulate.Seconds()),
			seconds(row.Solve.Seconds()),
			seconds(row.PipelineSimulated.Seconds()),
		})
	}
	return t
}
