package experiments

import (
	"fmt"
	"time"

	"repro/internal/gen"
)

// ScalingRow is one (data size, algorithm) measurement.
type ScalingRow struct {
	Algorithm string
	// Fraction of the full population (the paper uses 10 GB, 50 GB and
	// 100 GB subsets of its dataset).
	Fraction  float64
	PopSize   int
	Simulated time.Duration
}

// ScalingResult reproduces the Section 6.2.3 claim that "the size of the
// data has a linear effect on the running time", verified there on 10 GB,
// 50 GB and 100 GB subsets.
type ScalingResult struct {
	Rows []ScalingRow
}

// DataScaling measures simulated running time of MR-MQE and MR-CPS on the
// full population and on 1/2 and 1/10 subsets (the paper's proportions).
func DataScaling(cfg Config) (*ScalingResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &ScalingResult{}
	group := cfg.groups()[0]
	sampleSize := cfg.SampleSizes[0]
	for _, fraction := range []float64{0.1, 0.5, 1.0} {
		size := int(float64(cfg.PopulationSize) * fraction)
		sub := cfg
		sub.PopulationSize = size
		pop := sub.population()
		w, err := buildWorkload(sub, pop, group, sampleSize, cfg.Slaves)
		if err != nil {
			return nil, err
		}
		var mqeSim, cpsSim time.Duration
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + int64(run)*7
			_, met, err := w.runMQE(seed)
			if err != nil {
				return nil, fmt.Errorf("scaling MQE at %d: %w", size, err)
			}
			mqeSim += met.SimulatedTotal()
			cpsRes, err := w.runCPS(seed, defaultSolve())
			if err != nil {
				return nil, fmt.Errorf("scaling CPS at %d: %w", size, err)
			}
			cpsSim += cpsRes.Metrics.SimulatedTotal()
		}
		n := time.Duration(cfg.Runs)
		res.Rows = append(res.Rows,
			ScalingRow{Algorithm: "MQE", Fraction: fraction, PopSize: size, Simulated: mqeSim / n},
			ScalingRow{Algorithm: "CPS", Fraction: fraction, PopSize: size, Simulated: cpsSim / n},
		)
	}
	return res, nil
}

// LinearityRatio returns time(full)/time(fraction) for the algorithm; for a
// perfectly linear algorithm it equals 1/fraction (up to fixed overheads).
func (r *ScalingResult) LinearityRatio(algorithm string, fraction float64) float64 {
	var full, part time.Duration
	for _, row := range r.Rows {
		if row.Algorithm != algorithm {
			continue
		}
		if row.Fraction == 1.0 {
			full = row.Simulated
		}
		if row.Fraction == fraction {
			part = row.Simulated
		}
	}
	if part == 0 {
		return 0
	}
	return float64(full) / float64(part)
}

// Table renders the result.
func (r *ScalingResult) Table() *Table {
	t := &Table{
		Title:  "Section 6.2.3: data-size scaling (" + gen.Groups()[0].Name + " group)",
		Header: []string{"Alg", "fraction", "population", "simulated"},
		Caption: "Paper: running the tests on the 100 GB dataset and on 50 GB and 10 GB\n" +
			"subsets confirmed the almost linear increase in running time.",
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Algorithm,
			fmt.Sprintf("%.0f%%", row.Fraction*100),
			fmt.Sprintf("%d", row.PopSize),
			seconds(row.Simulated.Seconds()),
		})
	}
	return t
}
