package experiments

import "fmt"

// Figure6Row is one query group's sharing profile: Share[i-1] is the
// fraction of individuals assigned to exactly i surveys (i = 1..9), averaged
// over runs; MQEShared is the fraction of individuals MR-MQE incidentally
// assigned to more than one survey (the paper reports it never exceeded 4%).
type Figure6Row struct {
	Group        string
	Share        []float64
	MeanSurveys  float64 // average number of surveys per selected individual
	MQEShared    float64
	MQESurveyAvg float64
}

// Figure6Result reproduces Figure 6: "For 1 ≤ i ≤ 9, the percentage of
// individuals assigned to i surveys by MR-CPS".
type Figure6Result struct {
	MaxSurveys int
	Rows       []Figure6Row
}

// Figure6 runs the sharing-profile experiment.
func Figure6(cfg Config) (*Figure6Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pop := cfg.population()
	maxN := 0
	for _, g := range cfg.groups() {
		if g.N > maxN {
			maxN = g.N
		}
	}
	res := &Figure6Result{MaxSurveys: maxN}
	sampleSize := cfg.SampleSizes[0]
	for _, group := range cfg.groups() {
		w, err := buildWorkload(cfg, pop, group, sampleSize, cfg.Slaves)
		if err != nil {
			return nil, err
		}
		counts := make([]float64, maxN+1)
		var totalIndividuals, totalAssignments float64
		var mqeShared, mqeIndividuals, mqeAssignments float64
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + int64(run)*104729
			cpsRes, err := w.runCPS(seed, defaultSolve())
			if err != nil {
				return nil, fmt.Errorf("figure6 %s run %d: %w", group.Name, run, err)
			}
			hist := cpsRes.Answers.SharingHistogram()
			for i := 1; i < len(hist) && i <= maxN; i++ {
				counts[i] += float64(hist[i])
				totalIndividuals += float64(hist[i])
				totalAssignments += float64(i * hist[i])
			}
			mqeHist := cpsRes.Initial.SharingHistogram()
			for i := 1; i < len(mqeHist); i++ {
				mqeIndividuals += float64(mqeHist[i])
				mqeAssignments += float64(i * mqeHist[i])
				if i > 1 {
					mqeShared += float64(mqeHist[i])
				}
			}
		}
		row := Figure6Row{Group: group.Name, Share: make([]float64, maxN)}
		for i := 1; i <= maxN; i++ {
			row.Share[i-1] = counts[i] / totalIndividuals
		}
		row.MeanSurveys = totalAssignments / totalIndividuals
		row.MQEShared = mqeShared / mqeIndividuals
		row.MQESurveyAvg = mqeAssignments / mqeIndividuals
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the result.
func (r *Figure6Result) Table() *Table {
	header := []string{"Group"}
	for i := 1; i <= r.MaxSurveys; i++ {
		header = append(header, fmt.Sprintf("i=%d", i))
	}
	header = append(header, "mean", "MQE shared")
	t := &Table{
		Title:  "Figure 6: % of individuals assigned to i surveys by MR-CPS",
		Header: header,
		Caption: "Paper: MR-CPS assigns each individual to ≈2 surveys on average;\n" +
			"MR-MQE's incidental sharing never exceeded 4%.",
	}
	for _, row := range r.Rows {
		cells := []string{row.Group}
		for _, s := range row.Share {
			cells = append(cells, pct(s))
		}
		cells = append(cells, num(row.MeanSurveys), pct1(row.MQEShared))
		t.Rows = append(t.Rows, cells)
	}
	return t
}
