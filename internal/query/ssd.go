package query

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/predicate"
)

// Stratum is one stratum constraint s_k = (φ_k, f_k): a propositional
// condition defining the stratum and the required sample frequency.
type Stratum struct {
	// Cond is the stratum's propositional formula φ_k.
	Cond predicate.Expr
	// Freq is the required sample frequency f_k ≥ 0.
	Freq int
}

// String renders the constraint as "(φ, f)".
func (s Stratum) String() string { return fmt.Sprintf("(%s, %d)", s.Cond, s.Freq) }

// SSD is a stratified-sample-design query: a named set of stratum constraints
// whose conditions must be pairwise disjoint.
type SSD struct {
	// Name identifies the survey, e.g. "Q1".
	Name string
	// Strata are the query's stratum constraints.
	Strata []Stratum
}

// NewSSD builds an SSD query.
func NewSSD(name string, strata ...Stratum) *SSD {
	return &SSD{Name: name, Strata: strata}
}

// TotalFreq returns Σ f_k, the size of a full answer.
func (q *SSD) TotalFreq() int {
	n := 0
	for _, s := range q.Strata {
		n += s.Freq
	}
	return n
}

// Compile resolves every stratum condition against the schema, returning one
// predicate per stratum.
func (q *SSD) Compile(schema *dataset.Schema) ([]predicate.Pred, error) {
	preds := make([]predicate.Pred, len(q.Strata))
	for i, s := range q.Strata {
		p, err := predicate.Compile(s.Cond, schema)
		if err != nil {
			return nil, fmt.Errorf("query %s stratum %d: %w", q.Name, i, err)
		}
		preds[i] = p
	}
	return preds, nil
}

// MatchStratum returns the index of the stratum whose condition the tuple
// satisfies, or -1. Disjointness guarantees at most one stratum matches;
// preds must come from Compile.
func MatchStratum(preds []predicate.Pred, t *dataset.Tuple) int {
	for i, p := range preds {
		if p(t) {
			return i
		}
	}
	return -1
}

// Validate checks the SSD is well formed over the schema: frequencies are
// non-negative, conditions compile, and every pair of stratum conditions is
// disjoint (the paper's validity requirement σ_φk1(R) ∩ σ_φk2(R) = ∅ for all
// populations R over the schema's domains).
func (q *SSD) Validate(schema *dataset.Schema) error {
	for i, s := range q.Strata {
		if s.Freq < 0 {
			return fmt.Errorf("query %s stratum %d: negative frequency %d", q.Name, i, s.Freq)
		}
		if _, err := predicate.Compile(s.Cond, schema); err != nil {
			return fmt.Errorf("query %s stratum %d: %w", q.Name, i, err)
		}
	}
	for i := 0; i < len(q.Strata); i++ {
		for j := i + 1; j < len(q.Strata); j++ {
			ok, err := predicate.Disjoint(q.Strata[i].Cond, q.Strata[j].Cond, schema)
			if err != nil {
				return fmt.Errorf("query %s: disjointness of strata %d,%d: %w", q.Name, i, j, err)
			}
			if !ok {
				return fmt.Errorf("query %s: strata %d and %d overlap: %s vs %s",
					q.Name, i, j, q.Strata[i].Cond, q.Strata[j].Cond)
			}
		}
	}
	return nil
}

// CoverageFormula returns the disjunction of all stratum conditions — the
// part of the population the query covers. Its negation is the propositional
// projection of a stratum selection that skips this query (Section 5.2.2).
func (q *SSD) CoverageFormula() predicate.Expr {
	conds := make([]predicate.Expr, len(q.Strata))
	for i, s := range q.Strata {
		conds[i] = s.Cond
	}
	return predicate.OrAll(conds...)
}
