package query

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/predicate"
)

func TestSSDJSONRoundTrip(t *testing.T) {
	q := NewSSD("Q1",
		Stratum{Cond: predicate.MustParse("gender = 1 and income < 50000"), Freq: 50},
		Stratum{Cond: predicate.MustParse("gender = 0 or income > 100000"), Freq: 100},
	)
	data, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	var back SSD
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "Q1" || len(back.Strata) != 2 {
		t.Fatalf("decoded %+v", back)
	}
	for i := range q.Strata {
		if !predicate.Equal(q.Strata[i].Cond, back.Strata[i].Cond) {
			t.Fatalf("stratum %d cond %q != %q", i, q.Strata[i].Cond, back.Strata[i].Cond)
		}
		if q.Strata[i].Freq != back.Strata[i].Freq {
			t.Fatalf("stratum %d freq differs", i)
		}
	}
}

func TestSSDJSONBadCondition(t *testing.T) {
	var q SSD
	err := json.Unmarshal([]byte(`{"name":"x","strata":[{"cond":"((","freq":1}]}`), &q)
	if err == nil {
		t.Fatal("want parse error")
	}
}

func TestMSSDJSONPenaltyRoundTrip(t *testing.T) {
	m := NewMSSD(
		PenaltyCosts{Interview: 4, Penalties: map[Tau]float64{NewTau(0, 2): 10}},
		NewSSD("A", Stratum{Cond: predicate.MustParse("a = 1"), Freq: 1}),
		NewSSD("B", Stratum{Cond: predicate.MustParse("a = 2"), Freq: 1}),
		NewSSD("C", Stratum{Cond: predicate.MustParse("a = 3"), Freq: 1}),
	)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"surveys":[1,3]`) {
		t.Fatalf("penalty pair not 1-based: %s", data)
	}
	var back MSSD
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	pc, ok := back.Costs.(PenaltyCosts)
	if !ok {
		t.Fatalf("decoded costs %T", back.Costs)
	}
	if pc.Penalties[NewTau(0, 2)] != 10 {
		t.Fatalf("penalties %v", pc.Penalties)
	}
	if got := back.Costs.Cost(NewTau(0, 2)); got != 14 {
		t.Fatalf("cost = %g", got)
	}
}

func TestMSSDJSONTableAndDefault(t *testing.T) {
	m := NewMSSD(
		TableCosts{Interview: []float64{20, 4}, Shared: map[Tau]float64{NewTau(0, 1): 20}},
		NewSSD("A", Stratum{Cond: predicate.MustParse("a = 1"), Freq: 1}),
		NewSSD("B", Stratum{Cond: predicate.MustParse("a = 2"), Freq: 1}),
	)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back MSSD
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	// The paper's Example 4: face-to-face $20, phone $4, shared $20.
	if back.Costs.Cost(NewTau(0, 1)) != 20 || back.Costs.Cost(NewTau(1)) != 4 {
		t.Fatal("table costs decoded wrong")
	}

	d := NewMSSD(DefaultCosts{Interview: []float64{1, 2}},
		NewSSD("A", Stratum{Cond: predicate.MustParse("a = 1"), Freq: 1}),
		NewSSD("B", Stratum{Cond: predicate.MustParse("a = 2"), Freq: 1}),
	)
	data, err = json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back2 MSSD
	if err := json.Unmarshal(data, &back2); err != nil {
		t.Fatal(err)
	}
	if back2.Costs.Cost(NewTau(0, 1)) != 3 {
		t.Fatal("default costs decoded wrong")
	}
}

func TestMSSDJSONErrors(t *testing.T) {
	var m MSSD
	if err := json.Unmarshal([]byte(`{"queries":[],"costs":{"type":"nope"}}`), &m); err == nil {
		t.Fatal("want unknown-cost-type error")
	}
	if err := json.Unmarshal([]byte(`{"queries":[],"costs":{"type":"penalty","penalties":[{"surveys":[0,1],"penalty":1}]}}`), &m); err == nil {
		t.Fatal("want 1-based index error")
	}
	if err := json.Unmarshal([]byte(`{"queries":[],"costs":{"type":"penalty","penalties":[{"surveys":[1],"penalty":1}]}}`), &m); err == nil {
		t.Fatal("want non-pair penalty error")
	}
}
