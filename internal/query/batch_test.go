package query

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/predicate"
)

// TestBatchClassifierAgreesWithMatchStratum: for every in-domain tuple, the
// interval-box classifier and the closure-tree predicates assign the same
// stratum — across conditions exercising every operator, negation,
// disjunction, unsatisfiable strata, and literal-true coverage.
func TestBatchClassifierAgreesWithMatchStratum(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Field{Name: "gender", Min: 0, Max: 1},
		dataset.Field{Name: "age", Min: 0, Max: 120},
		dataset.Field{Name: "income", Min: -500, Max: 10000},
	)
	queries := []*SSD{
		NewSSD("ops",
			Stratum{Cond: predicate.MustParse("gender = 0 and age < 30"), Freq: 1},
			Stratum{Cond: predicate.MustParse("gender = 0 and age >= 30"), Freq: 1},
			Stratum{Cond: predicate.MustParse("gender = 1 and income != 0"), Freq: 1},
		),
		NewSSD("negation",
			Stratum{Cond: predicate.MustParse("not (age <= 40 or income > 5000)"), Freq: 1},
		),
		NewSSD("unsat-then-match",
			Stratum{Cond: predicate.MustParse("age > 120"), Freq: 1}, // empty over the domain
			Stratum{Cond: predicate.MustParse("income >= -500"), Freq: 1},
		),
		NewSSD("bounds",
			Stratum{Cond: predicate.MustParse("age >= 0 and age <= 120 and gender <= 0"), Freq: 1},
			Stratum{Cond: predicate.MustParse("income = -500 or income = 10000"), Freq: 1},
		),
	}
	rng := rand.New(rand.NewSource(7))
	tuples := make([]dataset.Tuple, 0, 500)
	for i := 0; i < 500; i++ {
		attrs := make([]int64, schema.NumFields())
		for a := 0; a < schema.NumFields(); a++ {
			f := schema.Field(a)
			attrs[a] = f.Min + rng.Int63n(f.Width())
		}
		tuples = append(tuples, dataset.Tuple{ID: int64(i), Attrs: attrs})
	}
	// Domain corners matter most for the clipping semantics.
	for _, g := range []int64{0, 1} {
		for _, age := range []int64{0, 120} {
			for _, inc := range []int64{-500, 0, 10000} {
				tuples = append(tuples, dataset.Tuple{Attrs: []int64{g, age, inc}})
			}
		}
	}

	for _, q := range queries {
		preds, err := q.Compile(schema)
		if err != nil {
			t.Fatal(err)
		}
		cls, err := NewBatchClassifier(q, schema)
		if err != nil {
			t.Fatalf("query %s: %v", q.Name, err)
		}
		got := cls.ClassifyTuples(tuples, nil)
		for i := range tuples {
			want := MatchStratum(preds, &tuples[i])
			if got[i] != want {
				t.Errorf("query %s tuple %v: classifier says %d, MatchStratum says %d",
					q.Name, tuples[i].Attrs, got[i], want)
			}
		}

		// The columnar path must agree with the per-tuple path.
		batch, ok := dataset.BatchOfTuples(tuples)
		if !ok {
			t.Fatal("uniform tuples did not batch")
		}
		viaBatch := cls.Classify(&batch, nil)
		for i := range got {
			if viaBatch[i] != got[i] {
				t.Errorf("query %s row %d: batch path %d, tuple path %d", q.Name, i, viaBatch[i], got[i])
			}
		}
	}
}

func TestBatchClassifierReusesOut(t *testing.T) {
	schema := dataset.MustSchema(dataset.Field{Name: "x", Min: 0, Max: 9})
	q := NewSSD("r", Stratum{Cond: predicate.MustParse("x < 5"), Freq: 1})
	cls, err := NewBatchClassifier(q, schema)
	if err != nil {
		t.Fatal(err)
	}
	ts := []dataset.Tuple{{Attrs: []int64{1}}, {Attrs: []int64{7}}}
	out := cls.ClassifyTuples(ts, nil)
	again := cls.ClassifyTuples(ts[:1], out)
	if &again[0] != &out[0] {
		t.Error("classifier reallocated a sufficient out slice")
	}
	if again[0] != 0 {
		t.Errorf("classify = %d, want 0", again[0])
	}
}
