package query

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/predicate"
)

// ParseSSD parses the CLI/HTTP text form of an SSD query —
//
//	"cond : freq ; cond : freq ; ..."
//
// e.g. "nop >= 100 : 5 ; nop < 100 : 10" — into an SSD named name. Empty
// segments are skipped, so a trailing semicolon is fine. It is the shared
// parser behind "strata sample -query" and the daemon's JSON "query" field.
func ParseSSD(name, spec string) (*SSD, error) {
	var strata []Stratum
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		i := strings.LastIndex(part, ":")
		if i < 0 {
			return nil, fmt.Errorf("stratum %q: want \"<condition> : <frequency>\"", part)
		}
		cond, err := predicate.Parse(strings.TrimSpace(part[:i]))
		if err != nil {
			return nil, err
		}
		freq, err := strconv.Atoi(strings.TrimSpace(part[i+1:]))
		if err != nil {
			return nil, fmt.Errorf("stratum %q: bad frequency: %v", part, err)
		}
		strata = append(strata, Stratum{Cond: cond, Freq: freq})
	}
	if len(strata) == 0 {
		return nil, fmt.Errorf("empty SSD query")
	}
	return NewSSD(name, strata...), nil
}
