package query

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/predicate"
)

// JSON wire formats, so survey designs can live in files:
//
//	{"name": "Q1", "strata": [
//	    {"cond": "gender = 1 and income < 50000", "freq": 50},
//	    {"cond": "gender = 0", "freq": 100}]}
//
// and an MSSD:
//
//	{"queries": [...SSDs...],
//	 "costs": {"type": "penalty", "interview": 4,
//	           "penalties": [{"surveys": [1, 2], "penalty": 10}]}}
//
// Survey indexes in cost entries are 1-based, matching the paper's notation.

type stratumJSON struct {
	Cond string `json:"cond"`
	Freq int    `json:"freq"`
}

type ssdJSON struct {
	Name   string        `json:"name"`
	Strata []stratumJSON `json:"strata"`
}

// MarshalJSON encodes the SSD with conditions in the textual formula syntax.
func (q *SSD) MarshalJSON() ([]byte, error) {
	out := ssdJSON{Name: q.Name, Strata: make([]stratumJSON, len(q.Strata))}
	for i, s := range q.Strata {
		out.Strata[i] = stratumJSON{Cond: s.Cond.String(), Freq: s.Freq}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes an SSD, parsing each stratum condition.
func (q *SSD) UnmarshalJSON(data []byte) error {
	var in ssdJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	q.Name = in.Name
	q.Strata = make([]Stratum, len(in.Strata))
	for i, s := range in.Strata {
		cond, err := predicate.Parse(s.Cond)
		if err != nil {
			return fmt.Errorf("query %s stratum %d: %w", in.Name, i, err)
		}
		q.Strata[i] = Stratum{Cond: cond, Freq: s.Freq}
	}
	return nil
}

type penaltyJSON struct {
	Surveys []int   `json:"surveys"` // 1-based pair
	Penalty float64 `json:"penalty"`
}

type sharedJSON struct {
	Surveys []int   `json:"surveys"` // 1-based index set
	Cost    float64 `json:"cost"`
}

type costsJSON struct {
	Type       string        `json:"type"` // "penalty", "table" or "default"
	Interview  float64       `json:"interview,omitempty"`
	Interviews []float64     `json:"interviews,omitempty"`
	Penalties  []penaltyJSON `json:"penalties,omitempty"`
	Shared     []sharedJSON  `json:"shared,omitempty"`
}

type mssdJSON struct {
	Queries []*SSD     `json:"queries"`
	Costs   *costsJSON `json:"costs"`
}

// MarshalJSON encodes the MSSD. Only the exported cost function types
// (PenaltyCosts, TableCosts, DefaultCosts) can be encoded.
func (m *MSSD) MarshalJSON() ([]byte, error) {
	out := mssdJSON{Queries: m.Queries}
	switch c := m.Costs.(type) {
	case PenaltyCosts:
		cj := &costsJSON{Type: "penalty", Interview: c.Interview}
		keys := make([]Tau, 0, len(c.Penalties))
		for tau := range c.Penalties {
			keys = append(keys, tau)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, tau := range keys {
			cj.Penalties = append(cj.Penalties, penaltyJSON{
				Surveys: oneBased(tau),
				Penalty: c.Penalties[tau],
			})
		}
		out.Costs = cj
	case TableCosts:
		cj := &costsJSON{Type: "table", Interviews: c.Interview}
		keys := make([]Tau, 0, len(c.Shared))
		for tau := range c.Shared {
			keys = append(keys, tau)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, tau := range keys {
			cj.Shared = append(cj.Shared, sharedJSON{Surveys: oneBased(tau), Cost: c.Shared[tau]})
		}
		out.Costs = cj
	case DefaultCosts:
		out.Costs = &costsJSON{Type: "default", Interviews: c.Interview}
	case nil:
		out.Costs = nil
	default:
		return nil, fmt.Errorf("query: cannot encode cost function of type %T", m.Costs)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the MSSD and reconstructs its cost function.
func (m *MSSD) UnmarshalJSON(data []byte) error {
	var in mssdJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	m.Queries = in.Queries
	m.Costs = nil
	if in.Costs == nil {
		return nil
	}
	switch in.Costs.Type {
	case "penalty":
		pc := PenaltyCosts{Interview: in.Costs.Interview, Penalties: map[Tau]float64{}}
		for _, p := range in.Costs.Penalties {
			tau, err := fromOneBased(p.Surveys)
			if err != nil {
				return err
			}
			pc.Penalties[tau] = p.Penalty
		}
		if err := pc.ValidatePenalties(len(m.Queries)); err != nil {
			return err
		}
		m.Costs = pc
	case "table":
		tc := TableCosts{Interview: in.Costs.Interviews, Shared: map[Tau]float64{}}
		for _, s := range in.Costs.Shared {
			tau, err := fromOneBased(s.Surveys)
			if err != nil {
				return err
			}
			tc.Shared[tau] = s.Cost
		}
		m.Costs = tc
	case "default":
		m.Costs = DefaultCosts{Interview: in.Costs.Interviews}
	default:
		return fmt.Errorf("query: unknown cost type %q", in.Costs.Type)
	}
	return nil
}

func oneBased(tau Tau) []int {
	idx := tau.Indexes()
	for i := range idx {
		idx[i]++
	}
	return idx
}

func fromOneBased(surveys []int) (Tau, error) {
	var tau Tau
	for _, s := range surveys {
		if s < 1 || s > MaxQueries {
			return 0, fmt.Errorf("query: survey index %d outside 1..%d", s, MaxQueries)
		}
		tau = tau.With(s - 1)
	}
	return tau, nil
}
