package query_test

import (
	"fmt"

	"repro/internal/predicate"
	"repro/internal/query"
)

// Shared-survey costs: the paper's Example 4 — a $20 face-to-face survey and
// a $4 phone survey; surveying one individual for both costs max(20, 4).
func ExampleTableCosts() {
	costs := query.TableCosts{
		Interview: []float64{20, 4},
		Shared:    map[query.Tau]float64{query.NewTau(0, 1): 20},
	}
	fmt.Println(costs.Cost(query.NewTau(0)), costs.Cost(query.NewTau(1)), costs.Cost(query.NewTau(0, 1)))
	// Output:
	// 20 4 20
}

// Penalty-based costs: sharing usually saves an interview, but penalised
// pairs make undesired sharing not pay off.
func ExamplePenaltyCosts() {
	costs := query.PenaltyCosts{
		Interview: 4,
		Penalties: map[query.Tau]float64{query.NewTau(0, 1): 10},
	}
	fmt.Println(costs.Cost(query.NewTau(0, 2)), costs.Cost(query.NewTau(0, 1)))
	// Output:
	// 4 14
}

// An SSD query is a set of disjoint stratum constraints.
func ExampleSSD() {
	q := query.NewSSD("ages",
		query.Stratum{Cond: predicate.MustParse("age < 30"), Freq: 10},
		query.Stratum{Cond: predicate.MustParse("age >= 30 and age < 70"), Freq: 10},
		query.Stratum{Cond: predicate.MustParse("age >= 70"), Freq: 5},
	)
	fmt.Println(q.Name, len(q.Strata), q.TotalFreq())
	// Output:
	// ages 3 25
}
