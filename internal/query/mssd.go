package query

import (
	"fmt"

	"repro/internal/dataset"
)

// MSSD is a multi-stratified-sample-design query (Q, C): a set of SSD queries
// conducted in parallel plus a shared-survey cost function.
type MSSD struct {
	Queries []*SSD
	Costs   Coster
}

// NewMSSD builds an MSSD query.
func NewMSSD(costs Coster, queries ...*SSD) *MSSD {
	return &MSSD{Queries: queries, Costs: costs}
}

// Validate checks the MSSD: at most MaxQueries SSDs, each valid over the
// schema, and a cost function present.
func (m *MSSD) Validate(schema *dataset.Schema) error {
	if len(m.Queries) == 0 {
		return fmt.Errorf("query: MSSD has no SSD queries")
	}
	if len(m.Queries) > MaxQueries {
		return fmt.Errorf("query: MSSD has %d SSDs, max %d", len(m.Queries), MaxQueries)
	}
	if m.Costs == nil {
		return fmt.Errorf("query: MSSD has no cost function")
	}
	for _, q := range m.Queries {
		if err := q.Validate(schema); err != nil {
			return err
		}
	}
	return nil
}

// TotalFreq returns the number of interview slots across all surveys
// (Σ_i Σ_k f_{i,k}) — the answer size when no sharing happens.
func (m *MSSD) TotalFreq() int {
	n := 0
	for _, q := range m.Queries {
		n += q.TotalFreq()
	}
	return n
}

// Answer is an answer to one SSD query: the sampled tuples per stratum index.
type Answer struct {
	// Strata holds, for stratum k of the query, the tuples selected for it.
	Strata [][]dataset.Tuple
}

// NewAnswer allocates an answer with one empty slot per stratum.
func NewAnswer(numStrata int) *Answer {
	return &Answer{Strata: make([][]dataset.Tuple, numStrata)}
}

// Union returns all tuples of the answer (the A_i = ∪_k A_{i,k} of the
// paper). Strata are disjoint, so no deduplication is needed.
func (a *Answer) Union() []dataset.Tuple {
	var out []dataset.Tuple
	for _, s := range a.Strata {
		out = append(out, s...)
	}
	return out
}

// Size returns the number of tuples in the answer.
func (a *Answer) Size() int {
	n := 0
	for _, s := range a.Strata {
		n += len(s)
	}
	return n
}

// Satisfies checks the answer against the query over the population: every
// stratum k holds exactly min(f_k, |σ_φk(R)|) tuples and each satisfies φ_k.
func (a *Answer) Satisfies(q *SSD, r *dataset.Relation) error {
	preds, err := q.Compile(r.Schema())
	if err != nil {
		return err
	}
	if len(a.Strata) != len(q.Strata) {
		return fmt.Errorf("query: answer has %d strata, query %s has %d", len(a.Strata), q.Name, len(q.Strata))
	}
	for k := range q.Strata {
		want := q.Strata[k].Freq
		if avail := r.Count(preds[k]); avail < want {
			want = avail
		}
		if got := len(a.Strata[k]); got != want {
			return fmt.Errorf("query %s stratum %d: got %d tuples, want %d", q.Name, k, got, want)
		}
		seen := make(map[int64]struct{}, len(a.Strata[k]))
		for i := range a.Strata[k] {
			t := &a.Strata[k][i]
			if !preds[k](t) {
				return fmt.Errorf("query %s stratum %d: tuple #%d does not satisfy %s", q.Name, k, t.ID, q.Strata[k].Cond)
			}
			if _, dup := seen[t.ID]; dup {
				return fmt.Errorf("query %s stratum %d: tuple #%d selected twice", q.Name, k, t.ID)
			}
			seen[t.ID] = struct{}{}
		}
	}
	return nil
}

// MultiAnswer is an answer set A = {A_1..A_n} for an MSSD query, indexed as
// the MSSD's Queries slice.
type MultiAnswer []*Answer

// Assignments computes τ(t) for every individual in union(A): the set of
// surveys each tuple ID is assigned to.
func (ma MultiAnswer) Assignments() map[int64]Tau {
	taus := make(map[int64]Tau)
	for qi, a := range ma {
		if a == nil {
			continue
		}
		for _, stratum := range a.Strata {
			for _, t := range stratum {
				taus[t.ID] = taus[t.ID].With(qi)
			}
		}
	}
	return taus
}

// Cost evaluates the total survey cost c_τ(A) = Σ_{t∈union(A)} c_{τ(t)}.
func (ma MultiAnswer) Cost(c Coster) float64 {
	var sum float64
	for _, tau := range ma.Assignments() {
		sum += c.Cost(tau)
	}
	return sum
}

// SharingHistogram returns, for i = 1..n, the number of individuals assigned
// to exactly i surveys — the data behind Figure 6 of the paper.
func (ma MultiAnswer) SharingHistogram() []int {
	hist := make([]int, len(ma)+1) // hist[i] = individuals in exactly i surveys; index 0 unused
	for _, tau := range ma.Assignments() {
		hist[tau.Size()]++
	}
	return hist
}

// UniqueIndividuals returns |union(A)|.
func (ma MultiAnswer) UniqueIndividuals() int {
	return len(ma.Assignments())
}
