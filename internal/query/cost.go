package query

import "fmt"

// Coster assigns the shared survey cost c_τ to every non-empty index set τ:
// the cost of surveying one individual assigned to exactly the surveys in τ.
type Coster interface {
	Cost(tau Tau) float64
}

// DefaultCosts is the indifference-to-sharing cost function: c_τ = Σ_{i∈τ} c_i
// (the paper's default shared cost dc_τ).
type DefaultCosts struct {
	// Interview holds the per-survey interview cost c_i.
	Interview []float64
}

// Cost returns Σ_{i∈τ} Interview[i].
func (d DefaultCosts) Cost(tau Tau) float64 {
	var sum float64
	for _, i := range tau.Indexes() {
		sum += d.Interview[i]
	}
	return sum
}

// TableCosts combines explicit shared-cost entries with the default
// indifference cost for index sets not listed — exactly the paper's
// semantics for an MSSD's cost set C.
type TableCosts struct {
	// Interview holds the per-survey interview cost c_i used for defaults.
	Interview []float64
	// Shared holds the explicit entries c_τ ∈ C.
	Shared map[Tau]float64
}

// Cost returns the explicit entry when present, else the default dc_τ.
func (t TableCosts) Cost(tau Tau) float64 {
	if c, ok := t.Shared[tau]; ok {
		return c
	}
	return DefaultCosts{t.Interview}.Cost(tau)
}

// PenaltyCosts is the cost structure of the paper's experiments
// (Section 6.1.2): a flat interview cost, sharing an individual between any
// set of surveys costs a single interview, and a penalty p_{i,j} is added for
// every penalised pair {i,j} ⊆ τ. Penalties make undesired sharing not pay
// off (a $10 penalty exceeds two $4 interviews).
type PenaltyCosts struct {
	// Interview is the flat interview cost (the paper uses $4).
	Interview float64
	// Penalties maps a 2-element Tau to its penalty p_{i,j}.
	Penalties map[Tau]float64
}

// Cost returns Interview + Σ penalties over pairs contained in τ; an empty τ
// costs 0.
func (p PenaltyCosts) Cost(tau Tau) float64 {
	if tau.Empty() {
		return 0
	}
	cost := p.Interview
	tau.Pairs(func(i, j int) {
		if pen, ok := p.Penalties[NewTau(i, j)]; ok {
			cost += pen
		}
	})
	return cost
}

// ValidatePenalties checks every penalty key is a pair within n queries.
func (p PenaltyCosts) ValidatePenalties(n int) error {
	for tau := range p.Penalties {
		if tau.Size() != 2 {
			return fmt.Errorf("query: penalty key %v is not a pair", tau)
		}
		for _, i := range tau.Indexes() {
			if i >= n {
				return fmt.Errorf("query: penalty key %v references query %d of %d", tau, i+1, n)
			}
		}
	}
	return nil
}
