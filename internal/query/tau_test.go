package query

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTauBasics(t *testing.T) {
	tau := NewTau(0, 2, 5)
	if tau.Size() != 3 {
		t.Fatalf("Size = %d", tau.Size())
	}
	if !tau.Contains(2) || tau.Contains(1) {
		t.Fatal("Contains wrong")
	}
	if got := tau.Indexes(); !reflect.DeepEqual(got, []int{0, 2, 5}) {
		t.Fatalf("Indexes = %v", got)
	}
	if tau.String() != "{1,3,6}" {
		t.Fatalf("String = %q", tau.String())
	}
	if tau.Without(2).Contains(2) {
		t.Fatal("Without failed")
	}
	if !NewTau().Empty() || tau.Empty() {
		t.Fatal("Empty wrong")
	}
	if !NewTau(0, 2).SubsetOf(tau) || tau.SubsetOf(NewTau(0, 2)) {
		t.Fatal("SubsetOf wrong")
	}
	if tau.Union(NewTau(1)).Size() != 4 || tau.Intersect(NewTau(2, 3)).Size() != 1 {
		t.Fatal("Union/Intersect wrong")
	}
}

func TestTauWithPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range index")
		}
	}()
	NewTau(64)
}

func TestTauSubsetsEnumeratesAll(t *testing.T) {
	tau := NewTau(0, 1, 3)
	var got []Tau
	tau.Subsets(func(s Tau) bool {
		got = append(got, s)
		return true
	})
	if len(got) != 7 { // 2^3 - 1 non-empty subsets
		t.Fatalf("enumerated %d subsets, want 7", len(got))
	}
	seen := map[Tau]bool{}
	for _, s := range got {
		if s.Empty() || !s.SubsetOf(tau) || seen[s] {
			t.Fatalf("bad subset %v", s)
		}
		seen[s] = true
	}
}

func TestTauSubsetsEarlyStop(t *testing.T) {
	n := 0
	NewTau(0, 1, 2).Subsets(func(Tau) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("visited %d, want 3", n)
	}
}

func TestTauSubsetsEmpty(t *testing.T) {
	called := false
	NewTau().Subsets(func(Tau) bool { called = true; return true })
	if called {
		t.Fatal("empty Tau has no non-empty subsets")
	}
}

func TestQuickTauSubsetCount(t *testing.T) {
	f := func(mask uint16) bool {
		tau := Tau(mask)
		n := 0
		tau.Subsets(func(s Tau) bool {
			n++
			return true
		})
		want := (1 << tau.Size()) - 1
		return n == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTauPairs(t *testing.T) {
	var pairs [][2]int
	NewTau(1, 4, 6).Pairs(func(i, j int) { pairs = append(pairs, [2]int{i, j}) })
	want := [][2]int{{1, 4}, {1, 6}, {4, 6}}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("Pairs = %v", pairs)
	}
}

func TestCosters(t *testing.T) {
	d := DefaultCosts{Interview: []float64{4, 6, 10}}
	if got := d.Cost(NewTau(0, 2)); got != 14 {
		t.Fatalf("DefaultCosts = %g", got)
	}
	tc := TableCosts{
		Interview: []float64{4, 6, 10},
		Shared:    map[Tau]float64{NewTau(0, 1): 7},
	}
	if got := tc.Cost(NewTau(0, 1)); got != 7 {
		t.Fatalf("explicit entry = %g", got)
	}
	if got := tc.Cost(NewTau(1, 2)); got != 16 {
		t.Fatalf("fallback = %g", got)
	}
}

func TestPenaltyCosts(t *testing.T) {
	pc := PenaltyCosts{
		Interview: 4,
		Penalties: map[Tau]float64{NewTau(0, 1): 10},
	}
	if got := pc.Cost(NewTau(2)); got != 4 {
		t.Fatalf("single survey = %g", got)
	}
	if got := pc.Cost(NewTau(0, 2)); got != 4 {
		t.Fatalf("unpenalised pair = %g", got)
	}
	if got := pc.Cost(NewTau(0, 1)); got != 14 {
		t.Fatalf("penalised pair = %g", got)
	}
	if got := pc.Cost(NewTau(0, 1, 2)); got != 14 {
		t.Fatalf("triple containing penalised pair = %g", got)
	}
	if got := pc.Cost(NewTau()); got != 0 {
		t.Fatalf("empty = %g", got)
	}
}

func TestValidatePenalties(t *testing.T) {
	ok := PenaltyCosts{Interview: 4, Penalties: map[Tau]float64{NewTau(0, 1): 10}}
	if err := ok.ValidatePenalties(2); err != nil {
		t.Fatal(err)
	}
	bad1 := PenaltyCosts{Penalties: map[Tau]float64{NewTau(0): 10}}
	if err := bad1.ValidatePenalties(2); err == nil {
		t.Fatal("want error for non-pair key")
	}
	bad2 := PenaltyCosts{Penalties: map[Tau]float64{NewTau(0, 5): 10}}
	if err := bad2.ValidatePenalties(2); err == nil {
		t.Fatal("want error for out-of-range index")
	}
}

// TestQuickPenaltySharingBeatsDefault: for penalty-free pairs, sharing via
// PenaltyCosts is never more expensive than surveying separately.
func TestQuickPenaltySharingBeatsDefault(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pc := PenaltyCosts{Interview: 4}
		n := rng.Intn(5) + 2
		var tau Tau
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				tau = tau.With(i)
			}
		}
		if tau.Empty() {
			return true
		}
		separate := float64(tau.Size()) * pc.Interview
		return pc.Cost(tau) <= separate
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
