// Package query defines the query model of the paper: SSD queries (stratified
// sample designs made of disjoint stratum constraints), MSSD queries (sets of
// SSDs plus a shared-survey cost function), answers, and cost evaluation.
package query

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxQueries bounds the number of SSDs in an MSSD so that τ index sets fit a
// 64-bit mask.
const MaxQueries = 64

// Tau is a set of SSD indexes (0-based), represented as a bitmask — the τ of
// the paper: the set of surveys an individual is assigned to, or the index
// set of a shared-cost entry.
type Tau uint64

// NewTau builds a Tau from 0-based query indexes.
func NewTau(indexes ...int) Tau {
	var t Tau
	for _, i := range indexes {
		t = t.With(i)
	}
	return t
}

// With returns the set with index i added. It panics for indexes outside
// [0, MaxQueries).
func (t Tau) With(i int) Tau {
	if i < 0 || i >= MaxQueries {
		panic(fmt.Sprintf("query: tau index %d out of range", i))
	}
	return t | 1<<uint(i)
}

// Without returns the set with index i removed.
func (t Tau) Without(i int) Tau { return t &^ (1 << uint(i)) }

// Contains reports whether index i is in the set.
func (t Tau) Contains(i int) bool { return t&(1<<uint(i)) != 0 }

// Size returns |τ|.
func (t Tau) Size() int { return bits.OnesCount64(uint64(t)) }

// Empty reports whether the set is empty.
func (t Tau) Empty() bool { return t == 0 }

// Indexes returns the 0-based indexes in ascending order.
func (t Tau) Indexes() []int {
	out := make([]int, 0, t.Size())
	for v := uint64(t); v != 0; {
		i := bits.TrailingZeros64(v)
		out = append(out, i)
		v &^= 1 << uint(i)
	}
	return out
}

// SubsetOf reports whether t ⊆ o.
func (t Tau) SubsetOf(o Tau) bool { return t&^o == 0 }

// Union returns t ∪ o.
func (t Tau) Union(o Tau) Tau { return t | o }

// Intersect returns t ∩ o.
func (t Tau) Intersect(o Tau) Tau { return t & o }

// String renders the set as "{1,3}" using 1-based indexes, matching the
// paper's notation.
func (t Tau) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for n, i := range t.Indexes() {
		if n > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", i+1)
	}
	b.WriteByte('}')
	return b.String()
}

// Subsets calls fn for every non-empty subset of t, in ascending mask order.
// If fn returns false, enumeration stops.
func (t Tau) Subsets(fn func(Tau) bool) {
	// Standard submask enumeration.
	for s := Tau(0); ; {
		s = (s - t) & t // next submask after s
		if s == 0 {
			return
		}
		if !fn(s) {
			return
		}
		if s == t {
			return
		}
	}
}

// Pairs calls fn for every 2-element subset {i, j} of t (i < j).
func (t Tau) Pairs(fn func(i, j int)) {
	idx := t.Indexes()
	for a := 0; a < len(idx); a++ {
		for b := a + 1; b < len(idx); b++ {
			fn(idx[a], idx[b])
		}
	}
}
