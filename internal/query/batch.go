package query

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/predicate"
)

// BatchClassifier assigns tuples to strata without walking a closure tree per
// tuple. Each stratum condition is lowered once, via predicate.Boxes, to its
// DNF over attribute intervals; classification is then a flat scan of
// (attribute, lo, hi) triples — branch-predictable, allocation-free, and
// directly applicable to the columnar rows of a dataset.TupleBatch.
//
// Semantics match MatchStratum over Compile'd predicates for every tuple whose
// attributes lie in the schema's domains (the invariant Relation.Add
// enforces): Boxes clips intervals to the domains, so out-of-domain values —
// impossible for tuples that came out of a Relation — are the only inputs on
// which the two could disagree.
type BatchClassifier struct {
	strata  [][]classBox
	maxAttr int // highest attribute index any interval touches, -1 if none
}

// classBox is one DNF disjunct: a conjunction of interval constraints over
// attribute positions. Unconstrained attributes simply do not appear.
type classBox []attrInterval

type attrInterval struct {
	attr   int
	lo, hi int64
}

// NewBatchClassifier lowers every stratum condition of the query to interval
// boxes over the schema. It fails where Boxes fails: unknown attributes, or a
// DNF expansion past predicate.MaxBoxes — callers keep compiled predicates as
// the fallback.
func NewBatchClassifier(q *SSD, schema *dataset.Schema) (*BatchClassifier, error) {
	c := &BatchClassifier{strata: make([][]classBox, len(q.Strata)), maxAttr: -1}
	for k, s := range q.Strata {
		boxes, err := predicate.Boxes(s.Cond, schema)
		if err != nil {
			return nil, fmt.Errorf("query %s stratum %d: %w", q.Name, k, err)
		}
		lowered := make([]classBox, 0, len(boxes))
		for _, b := range boxes {
			cb := make(classBox, 0, len(b))
			// Walk schema order so equal boxes lower identically regardless
			// of map iteration order.
			for idx := 0; idx < schema.NumFields(); idx++ {
				name := schema.Field(idx).Name
				iv, ok := b[name]
				if !ok {
					continue
				}
				cb = append(cb, attrInterval{attr: idx, lo: iv.Lo, hi: iv.Hi})
				if idx > c.maxAttr {
					c.maxAttr = idx
				}
			}
			lowered = append(lowered, cb)
		}
		c.strata[k] = lowered
	}
	return c, nil
}

// matchRow reports the first stratum some box of which contains the row —
// the same first-match rule as MatchStratum (disjointness makes the order
// irrelevant for valid queries, but ill-formed ones degrade identically).
func (c *BatchClassifier) matchRow(attrs []int64) int {
	for k, boxes := range c.strata {
		for _, b := range boxes {
			hit := true
			for _, iv := range b {
				if v := attrs[iv.attr]; v < iv.lo || v > iv.hi {
					hit = false
					break
				}
			}
			if hit {
				return k
			}
		}
	}
	return -1
}

// ClassifyTuples writes each tuple's stratum index (or -1) into out, growing
// it as needed, and returns it. It panics, as a compiled predicate would, if
// a tuple has fewer attributes than a condition references.
func (c *BatchClassifier) ClassifyTuples(ts []dataset.Tuple, out []int) []int {
	out = growClass(out, len(ts))
	for i := range ts {
		out[i] = c.matchRow(ts[i].Attrs)
	}
	return out
}

// Classify writes each batch row's stratum index (or -1) into out, growing it
// as needed, and returns it. Rows are classified in place over the columnar
// attribute block — no per-row Tuple is materialized.
func (c *BatchClassifier) Classify(b *dataset.TupleBatch, out []int) []int {
	if b.Stride <= c.maxAttr {
		panic(fmt.Sprintf("query: batch stride %d but conditions reference attribute %d", b.Stride, c.maxAttr))
	}
	n := b.Len()
	out = growClass(out, n)
	if b.Stride == 0 {
		for i := 0; i < n; i++ {
			out[i] = c.matchRow(nil)
		}
		return out
	}
	for i := 0; i < n; i++ {
		out[i] = c.matchRow(b.Attrs[i*b.Stride : (i+1)*b.Stride])
	}
	return out
}

func growClass(out []int, n int) []int {
	if cap(out) < n {
		return make([]int, n)
	}
	return out[:n]
}
