package query

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/predicate"
)

func demoSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Field{Name: "gender", Min: 0, Max: 1},
		dataset.Field{Name: "income", Min: 0, Max: 500000},
		dataset.Field{Name: "age", Min: 0, Max: 120},
	)
}

func demoSSD() *SSD {
	return NewSSD("Q1",
		Stratum{Cond: predicate.MustParse("gender = 0"), Freq: 2},
		Stratum{Cond: predicate.MustParse("gender = 1"), Freq: 3},
	)
}

func TestSSDValidateAccepts(t *testing.T) {
	if err := demoSSD().Validate(demoSchema()); err != nil {
		t.Fatal(err)
	}
}

func TestSSDValidateRejectsOverlap(t *testing.T) {
	q := NewSSD("bad",
		Stratum{Cond: predicate.MustParse("income < 100"), Freq: 1},
		Stratum{Cond: predicate.MustParse("income < 200"), Freq: 1},
	)
	err := q.Validate(demoSchema())
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("want overlap error, got %v", err)
	}
}

func TestSSDValidateRejectsNegativeFreqAndBadAttr(t *testing.T) {
	q := NewSSD("bad", Stratum{Cond: predicate.MustParse("gender = 0"), Freq: -1})
	if err := q.Validate(demoSchema()); err == nil {
		t.Fatal("want negative-frequency error")
	}
	q2 := NewSSD("bad2", Stratum{Cond: predicate.MustParse("nope = 0"), Freq: 1})
	if err := q2.Validate(demoSchema()); err == nil {
		t.Fatal("want unknown-attribute error")
	}
}

func TestSSDTotalFreqAndCoverage(t *testing.T) {
	q := demoSSD()
	if q.TotalFreq() != 5 {
		t.Fatalf("TotalFreq = %d", q.TotalFreq())
	}
	cover := q.CoverageFormula()
	// gender=0 or gender=1 covers everything in this schema.
	ok, err := predicate.Satisfiable(predicate.Not{X: cover}, demoSchema())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("coverage of a gender partition should be total")
	}
}

func TestMatchStratum(t *testing.T) {
	schema := demoSchema()
	preds, err := demoSSD().Compile(schema)
	if err != nil {
		t.Fatal(err)
	}
	male := dataset.Tuple{Attrs: []int64{1, 0, 0}}
	female := dataset.Tuple{Attrs: []int64{0, 0, 0}}
	if k := MatchStratum(preds, &female); k != 0 {
		t.Fatalf("female stratum %d, want 0", k)
	}
	if k := MatchStratum(preds, &male); k != 1 {
		t.Fatalf("male stratum %d, want 1", k)
	}
}

func popOf(t *testing.T, n int) *dataset.Relation {
	t.Helper()
	r := dataset.NewRelation(demoSchema())
	for i := int64(0); i < int64(n); i++ {
		r.MustAdd(dataset.Tuple{ID: i, Attrs: []int64{i % 2, (i * 1000) % 500001, i % 121}})
	}
	return r
}

func TestAnswerSatisfies(t *testing.T) {
	r := popOf(t, 20)
	q := demoSSD()
	preds, _ := q.Compile(r.Schema())
	ans := NewAnswer(2)
	for i := range r.Tuples() {
		tp := r.Tuple(i)
		k := MatchStratum(preds, &tp)
		if k == 0 && len(ans.Strata[0]) < 2 {
			ans.Strata[0] = append(ans.Strata[0], tp)
		}
		if k == 1 && len(ans.Strata[1]) < 3 {
			ans.Strata[1] = append(ans.Strata[1], tp)
		}
	}
	if err := ans.Satisfies(q, r); err != nil {
		t.Fatal(err)
	}
	if ans.Size() != 5 || len(ans.Union()) != 5 {
		t.Fatalf("Size/Union wrong: %d/%d", ans.Size(), len(ans.Union()))
	}

	// Wrong count.
	short := NewAnswer(2)
	short.Strata[0] = ans.Strata[0][:1]
	short.Strata[1] = ans.Strata[1]
	if err := short.Satisfies(q, r); err == nil {
		t.Fatal("want count error")
	}
	// Wrong stratum membership.
	wrong := NewAnswer(2)
	wrong.Strata[0] = ans.Strata[1][:2]
	wrong.Strata[1] = ans.Strata[1]
	if err := wrong.Satisfies(q, r); err == nil {
		t.Fatal("want membership error")
	}
	// Duplicate tuple.
	dup := NewAnswer(2)
	dup.Strata[0] = []dataset.Tuple{ans.Strata[0][0], ans.Strata[0][0]}
	dup.Strata[1] = ans.Strata[1]
	if err := dup.Satisfies(q, r); err == nil {
		t.Fatal("want duplicate error")
	}
}

func TestAnswerSatisfiesSmallPopulation(t *testing.T) {
	// Only 1 male exists but freq asks 3: answer with that 1 male is valid.
	r := dataset.NewRelation(demoSchema())
	r.MustAdd(dataset.Tuple{ID: 1, Attrs: []int64{1, 0, 0}})
	r.MustAdd(dataset.Tuple{ID: 2, Attrs: []int64{0, 0, 0}})
	q := NewSSD("Q", Stratum{Cond: predicate.MustParse("gender = 1"), Freq: 3})
	ans := NewAnswer(1)
	ans.Strata[0] = []dataset.Tuple{r.Tuple(0)}
	if err := ans.Satisfies(q, r); err != nil {
		t.Fatal(err)
	}
}

func TestMultiAnswerAssignmentsAndCost(t *testing.T) {
	t1 := dataset.Tuple{ID: 1, Attrs: []int64{0, 0, 0}}
	t2 := dataset.Tuple{ID: 2, Attrs: []int64{1, 0, 0}}
	a1 := NewAnswer(1)
	a1.Strata[0] = []dataset.Tuple{t1, t2}
	a2 := NewAnswer(1)
	a2.Strata[0] = []dataset.Tuple{t1}
	ma := MultiAnswer{a1, a2}

	taus := ma.Assignments()
	if taus[1] != NewTau(0, 1) || taus[2] != NewTau(0) {
		t.Fatalf("Assignments = %v", taus)
	}
	pc := PenaltyCosts{Interview: 4}
	// t1 shared (one interview), t2 alone: total $8.
	if got := ma.Cost(pc); got != 8 {
		t.Fatalf("Cost = %g", got)
	}
	hist := ma.SharingHistogram()
	if hist[1] != 1 || hist[2] != 1 {
		t.Fatalf("SharingHistogram = %v", hist)
	}
	if ma.UniqueIndividuals() != 2 {
		t.Fatalf("UniqueIndividuals = %d", ma.UniqueIndividuals())
	}
}

func TestMSSDValidate(t *testing.T) {
	schema := demoSchema()
	m := NewMSSD(PenaltyCosts{Interview: 4}, demoSSD())
	if err := m.Validate(schema); err != nil {
		t.Fatal(err)
	}
	if m.TotalFreq() != 5 {
		t.Fatalf("TotalFreq = %d", m.TotalFreq())
	}
	if err := (&MSSD{}).Validate(schema); err == nil {
		t.Fatal("want error for empty MSSD")
	}
	noCost := &MSSD{Queries: []*SSD{demoSSD()}}
	if err := noCost.Validate(schema); err == nil {
		t.Fatal("want error for missing costs")
	}
}
