package predicate_test

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/predicate"
)

// Parse a stratum condition, compile it against a schema, and evaluate it.
func ExampleParse() {
	schema := dataset.MustSchema(
		dataset.Field{Name: "gender", Min: 0, Max: 1},
		dataset.Field{Name: "yearly_income", Min: 0, Max: 1000000},
	)
	// The paper's example stratum: men under 50k or women over 100k.
	cond := predicate.MustParse(
		"(gender = 1 and yearly_income < 50000) or (gender = 0 and yearly_income > 100000)")
	pred := predicate.MustCompile(cond, schema)

	poorMan := dataset.Tuple{Attrs: []int64{1, 30000}}
	richMan := dataset.Tuple{Attrs: []int64{1, 200000}}
	fmt.Println(pred(&poorMan), pred(&richMan))
	// Output:
	// true false
}

// Disjoint decides whether two stratum conditions can ever overlap — the
// validity requirement on SSD queries.
func ExampleDisjoint() {
	schema := dataset.MustSchema(dataset.Field{Name: "age", Min: 0, Max: 120})
	young := predicate.MustParse("age < 30")
	old := predicate.MustParse("age >= 30")
	mid := predicate.MustParse("age > 20 and age < 40")
	d1, _ := predicate.Disjoint(young, old, schema)
	d2, _ := predicate.Disjoint(young, mid, schema)
	fmt.Println(d1, d2)
	// Output:
	// true false
}
