package predicate

import (
	"fmt"
	"strings"
)

// Op is a comparison operator between an attribute and an integer constant.
type Op int

// Comparison operators.
const (
	Lt Op = iota // <
	Le           // <=
	Gt           // >
	Ge           // >=
	Eq           // =
	Ne           // !=
)

// String renders the operator in the textual syntax.
func (o Op) String() string {
	switch o {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "="
	case Ne:
		return "!="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Negate returns the complementary operator: ¬(a < v) ≡ a >= v, etc.
func (o Op) Negate() Op {
	switch o {
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	case Ge:
		return Lt
	case Eq:
		return Ne
	case Ne:
		return Eq
	default:
		panic(fmt.Sprintf("predicate: bad op %d", int(o)))
	}
}

// Holds evaluates "x o v".
func (o Op) Holds(x, v int64) bool {
	switch o {
	case Lt:
		return x < v
	case Le:
		return x <= v
	case Gt:
		return x > v
	case Ge:
		return x >= v
	case Eq:
		return x == v
	case Ne:
		return x != v
	default:
		panic(fmt.Sprintf("predicate: bad op %d", int(o)))
	}
}

// Expr is a propositional formula over tuple attributes.
type Expr interface {
	// String renders the formula in the textual syntax accepted by Parse.
	String() string
	precedence() int
}

// Compare is an atomic comparison "attr op value".
type Compare struct {
	Attr  string
	Op    Op
	Value int64
}

// And is the conjunction of two formulas.
type And struct{ L, R Expr }

// Or is the disjunction of two formulas.
type Or struct{ L, R Expr }

// Not is the negation of a formula.
type Not struct{ X Expr }

// Literal is the constant true or false formula. It appears when projecting
// stratum selections for queries without a matching stratum and as a parser
// convenience.
type Literal bool

// True and False are the constant formulas.
const (
	True  Literal = true
	False Literal = false
)

func (c Compare) String() string  { return fmt.Sprintf("%s %s %d", c.Attr, c.Op, c.Value) }
func (c Compare) precedence() int { return 4 }

func (a And) String() string {
	return fmt.Sprintf("%s and %s", paren(a.L, 2), paren(a.R, 2))
}
func (a And) precedence() int { return 2 }

func (o Or) String() string {
	return fmt.Sprintf("%s or %s", paren(o.L, 1), paren(o.R, 1))
}
func (o Or) precedence() int { return 1 }

func (n Not) String() string  { return "not " + paren(n.X, 3) }
func (n Not) precedence() int { return 3 }

func (l Literal) String() string {
	if bool(l) {
		return "true"
	}
	return "false"
}
func (l Literal) precedence() int { return 4 }

func paren(e Expr, ctx int) string {
	if e.precedence() < ctx {
		return "(" + e.String() + ")"
	}
	return e.String()
}

// AndAll folds a conjunction over the given formulas. It returns True for an
// empty list and skips constant-true operands.
func AndAll(exprs ...Expr) Expr {
	var acc Expr
	for _, e := range exprs {
		if e == nil || e == True {
			continue
		}
		if e == False {
			return False
		}
		if acc == nil {
			acc = e
		} else {
			acc = And{acc, e}
		}
	}
	if acc == nil {
		return True
	}
	return acc
}

// OrAll folds a disjunction over the given formulas. It returns False for an
// empty list and skips constant-false operands.
func OrAll(exprs ...Expr) Expr {
	var acc Expr
	for _, e := range exprs {
		if e == nil || e == False {
			continue
		}
		if e == True {
			return True
		}
		if acc == nil {
			acc = e
		} else {
			acc = Or{acc, e}
		}
	}
	if acc == nil {
		return False
	}
	return acc
}

// Attrs returns the set of attribute names referenced by the formula, in
// first-appearance order.
func Attrs(e Expr) []string {
	var names []string
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case Compare:
			if !seen[x.Attr] {
				seen[x.Attr] = true
				names = append(names, x.Attr)
			}
		case And:
			walk(x.L)
			walk(x.R)
		case Or:
			walk(x.L)
			walk(x.R)
		case Not:
			walk(x.X)
		case Literal:
		default:
			panic(fmt.Sprintf("predicate: unknown expr %T", e))
		}
	}
	walk(e)
	return names
}

// Equal reports structural equality of two formulas.
func Equal(a, b Expr) bool {
	return strings.Compare(a.String(), b.String()) == 0
}
