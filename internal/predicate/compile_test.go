package predicate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func predSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Field{Name: "a", Min: 0, Max: 100},
		dataset.Field{Name: "b", Min: -50, Max: 50},
		dataset.Field{Name: "c", Min: 0, Max: 10},
	)
}

func TestCompileMatchesEval(t *testing.T) {
	schema := predSchema()
	exprs := []string{
		"a < 50",
		"b >= 0 and c = 5",
		"not (a > 10 or b < -10)",
		"a != 7 or (b <= 3 and not c > 2)",
		"true",
		"false",
	}
	rng := rand.New(rand.NewSource(42))
	for _, src := range exprs {
		e := MustParse(src)
		pred, err := Compile(e, schema)
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		for i := 0; i < 200; i++ {
			tp := dataset.Tuple{Attrs: []int64{rng.Int63n(101), rng.Int63n(101) - 50, rng.Int63n(11)}}
			want, err := Eval(e, schema, &tp)
			if err != nil {
				t.Fatalf("Eval(%q): %v", src, err)
			}
			if got := pred(&tp); got != want {
				t.Fatalf("Compile/Eval disagree on %q for %v: %v vs %v", src, tp.Attrs, got, want)
			}
		}
	}
}

func TestCompileUnknownAttr(t *testing.T) {
	schema := predSchema()
	if _, err := Compile(MustParse("zzz < 3"), schema); err == nil {
		t.Fatal("want error for unknown attribute")
	}
	if _, err := Eval(MustParse("zzz < 3"), schema, &dataset.Tuple{Attrs: []int64{0, 0, 0}}); err == nil {
		t.Fatal("Eval: want error for unknown attribute")
	}
}

// randomExpr builds a random formula over attributes a, b, c with the given
// node budget — the generator for the property-based tests.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		attrs := []string{"a", "b", "c"}
		ops := []Op{Lt, Le, Gt, Ge, Eq, Ne}
		return Compare{
			Attr:  attrs[rng.Intn(len(attrs))],
			Op:    ops[rng.Intn(len(ops))],
			Value: rng.Int63n(120) - 55,
		}
	}
	switch rng.Intn(3) {
	case 0:
		return And{randomExpr(rng, depth-1), randomExpr(rng, depth-1)}
	case 1:
		return Or{randomExpr(rng, depth-1), randomExpr(rng, depth-1)}
	default:
		return Not{randomExpr(rng, depth-1)}
	}
}

func randomTuple(rng *rand.Rand) dataset.Tuple {
	return dataset.Tuple{Attrs: []int64{rng.Int63n(101), rng.Int63n(101) - 50, rng.Int63n(11)}}
}

// TestQuickCompileAgreesWithEval is a property test: for random formulas and
// random tuples, the compiled predicate and the direct evaluator agree.
func TestQuickCompileAgreesWithEval(t *testing.T) {
	schema := predSchema()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 4)
		pred, err := Compile(e, schema)
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			tp := randomTuple(rng)
			want, err := Eval(e, schema, &tp)
			if err != nil || pred(&tp) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParseStringRoundTrip: String() of any random formula re-parses to
// a structurally equal formula.
func TestQuickParseStringRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 5)
		again, err := Parse(e.String())
		return err == nil && Equal(e, again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
