package predicate

import (
	"fmt"

	"repro/internal/dataset"
)

// Pred is a compiled formula: a fast predicate over tuples of a particular
// schema. Attribute names have been resolved to positions.
type Pred func(*dataset.Tuple) bool

// Compile resolves the formula's attribute names against the schema and
// returns a closure-tree evaluator. It returns an error for references to
// unknown attributes.
func Compile(e Expr, schema *dataset.Schema) (Pred, error) {
	switch x := e.(type) {
	case Literal:
		v := bool(x)
		return func(*dataset.Tuple) bool { return v }, nil
	case Compare:
		idx, ok := schema.Index(x.Attr)
		if !ok {
			return nil, fmt.Errorf("predicate: unknown attribute %q", x.Attr)
		}
		op, val := x.Op, x.Value
		switch op {
		case Lt:
			return func(t *dataset.Tuple) bool { return t.Attrs[idx] < val }, nil
		case Le:
			return func(t *dataset.Tuple) bool { return t.Attrs[idx] <= val }, nil
		case Gt:
			return func(t *dataset.Tuple) bool { return t.Attrs[idx] > val }, nil
		case Ge:
			return func(t *dataset.Tuple) bool { return t.Attrs[idx] >= val }, nil
		case Eq:
			return func(t *dataset.Tuple) bool { return t.Attrs[idx] == val }, nil
		case Ne:
			return func(t *dataset.Tuple) bool { return t.Attrs[idx] != val }, nil
		default:
			return nil, fmt.Errorf("predicate: bad operator %v", op)
		}
	case And:
		l, err := Compile(x.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := Compile(x.R, schema)
		if err != nil {
			return nil, err
		}
		return func(t *dataset.Tuple) bool { return l(t) && r(t) }, nil
	case Or:
		l, err := Compile(x.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := Compile(x.R, schema)
		if err != nil {
			return nil, err
		}
		return func(t *dataset.Tuple) bool { return l(t) || r(t) }, nil
	case Not:
		inner, err := Compile(x.X, schema)
		if err != nil {
			return nil, err
		}
		return func(t *dataset.Tuple) bool { return !inner(t) }, nil
	default:
		return nil, fmt.Errorf("predicate: unknown expression type %T", e)
	}
}

// MustCompile is like Compile but panics on error.
func MustCompile(e Expr, schema *dataset.Schema) Pred {
	p, err := Compile(e, schema)
	if err != nil {
		panic(err)
	}
	return p
}

// Eval interprets the formula directly on a tuple, resolving names through
// the schema on every visit. Compile is faster for repeated evaluation; Eval
// is convenient for one-off checks and as a test oracle for Compile.
func Eval(e Expr, schema *dataset.Schema, t *dataset.Tuple) (bool, error) {
	switch x := e.(type) {
	case Literal:
		return bool(x), nil
	case Compare:
		idx, ok := schema.Index(x.Attr)
		if !ok {
			return false, fmt.Errorf("predicate: unknown attribute %q", x.Attr)
		}
		return x.Op.Holds(t.Attrs[idx], x.Value), nil
	case And:
		l, err := Eval(x.L, schema, t)
		if err != nil || !l {
			return false, err
		}
		return Eval(x.R, schema, t)
	case Or:
		l, err := Eval(x.L, schema, t)
		if err != nil || l {
			return l, err
		}
		return Eval(x.R, schema, t)
	case Not:
		v, err := Eval(x.X, schema, t)
		return !v, err
	default:
		return false, fmt.Errorf("predicate: unknown expression type %T", e)
	}
}
