package predicate

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"age < 30",
		"age <= 30",
		"age > 30",
		"age >= 30",
		"age = 30",
		"age != 30",
		"age < 30 and income > 1000",
		"age < 30 or income > 1000",
		"not age < 30",
		"(age < 30 or age > 60) and gender = 1",
		"true",
		"false",
	}
	for _, src := range cases {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		again, err := Parse(e.String())
		if err != nil {
			t.Fatalf("re-Parse(%q from %q): %v", e.String(), src, err)
		}
		if !Equal(e, again) {
			t.Fatalf("round trip of %q: %q != %q", src, e, again)
		}
	}
}

func TestParseSymbolicOperators(t *testing.T) {
	a, err := Parse("x < 1 ∧ ¬(y > 2 ∨ z = 3)")
	if err != nil {
		t.Fatalf("unicode operators: %v", err)
	}
	b := MustParse("x < 1 and !(y > 2 or z = 3)")
	if !Equal(a, b) {
		t.Fatalf("unicode and ascii forms differ: %q vs %q", a, b)
	}
	if c := MustParse("x == 5"); !Equal(c, Compare{"x", Eq, 5}) {
		t.Fatalf("== parse: %q", c)
	}
	if c := MustParse("x <> 5"); !Equal(c, Compare{"x", Ne, 5}) {
		t.Fatalf("<> parse: %q", c)
	}
}

func TestParsePrecedence(t *testing.T) {
	// "a=1 or b=1 and c=1" must parse as a=1 or (b=1 and c=1).
	e := MustParse("a = 1 or b = 1 and c = 1")
	or, ok := e.(Or)
	if !ok {
		t.Fatalf("top level is %T, want Or", e)
	}
	if _, ok := or.R.(And); !ok {
		t.Fatalf("right of Or is %T, want And", or.R)
	}
	// not binds tighter than and.
	e2 := MustParse("not a = 1 and b = 1")
	and, ok := e2.(And)
	if !ok {
		t.Fatalf("top level is %T, want And", e2)
	}
	if _, ok := and.L.(Not); !ok {
		t.Fatalf("left of And is %T, want Not", and.L)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	e := MustParse("balance < -100")
	if !Equal(e, Compare{"balance", Lt, -100}) {
		t.Fatalf("got %q", e)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"age <",
		"age 30",
		"(age < 30",
		"age < 30)",
		"age < 30 and",
		"and age < 30",
		"age # 30",
		"< 30",
		"age < abc",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("((")
}

func TestAttrs(t *testing.T) {
	e := MustParse("a < 1 and (b > 2 or a = 3) and not c != 4")
	got := Attrs(e)
	want := []string{"a", "b", "c"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Attrs = %v, want %v", got, want)
	}
}

func TestAndAllOrAll(t *testing.T) {
	a := Compare{"x", Lt, 1}
	b := Compare{"y", Gt, 2}
	if e := AndAll(); e != True {
		t.Fatalf("AndAll() = %v", e)
	}
	if e := OrAll(); e != False {
		t.Fatalf("OrAll() = %v", e)
	}
	if e := AndAll(a, True, b); !Equal(e, And{a, b}) {
		t.Fatalf("AndAll skips True: %v", e)
	}
	if e := AndAll(a, False, b); e != False {
		t.Fatalf("AndAll short-circuits False: %v", e)
	}
	if e := OrAll(a, False, b); !Equal(e, Or{a, b}) {
		t.Fatalf("OrAll skips False: %v", e)
	}
	if e := OrAll(a, True); e != True {
		t.Fatalf("OrAll short-circuits True: %v", e)
	}
}

func TestOpNegateAndHolds(t *testing.T) {
	pairs := map[Op]Op{Lt: Ge, Le: Gt, Gt: Le, Ge: Lt, Eq: Ne, Ne: Eq}
	for op, want := range pairs {
		if got := op.Negate(); got != want {
			t.Fatalf("%v.Negate() = %v, want %v", op, got, want)
		}
		// Negated operator must hold exactly when the original does not.
		for x := int64(-2); x <= 2; x++ {
			if op.Holds(x, 0) == op.Negate().Holds(x, 0) {
				t.Fatalf("%v and its negation agree at %d", op, x)
			}
		}
	}
}
