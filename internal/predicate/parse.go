package predicate

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses the textual formula syntax:
//
//	expr   := term { ("or" | "∨") term }
//	term   := factor { ("and" | "∧") factor }
//	factor := ("not" | "¬" | "!") factor | "(" expr ")" | atom | "true" | "false"
//	atom   := ident op integer
//	op     := "<" | "<=" | ">" | ">=" | "=" | "==" | "!=" | "<>"
//
// Identifiers are letters, digits and underscores starting with a letter.
// Keywords are case-insensitive.
func Parse(input string) (Expr, error) {
	p := &parser{toks: nil, pos: 0}
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p.toks = toks
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("predicate: trailing input at %q", p.toks[p.pos].text)
	}
	return e, nil
}

// MustParse is like Parse but panics on error; for statically known formulas.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokOp // comparison operator
	tokLParen
	tokRParen
	tokAnd
	tokOr
	tokNot
	tokTrue
	tokFalse
)

type token struct {
	kind tokKind
	text string
	op   Op
	num  int64
}

func lex(input string) ([]token, error) {
	var toks []token
	rs := []rune(input)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(':
			toks = append(toks, token{kind: tokLParen, text: "("})
			i++
		case r == ')':
			toks = append(toks, token{kind: tokRParen, text: ")"})
			i++
		case r == '∧':
			toks = append(toks, token{kind: tokAnd, text: "∧"})
			i++
		case r == '∨':
			toks = append(toks, token{kind: tokOr, text: "∨"})
			i++
		case r == '¬':
			toks = append(toks, token{kind: tokNot, text: "¬"})
			i++
		case r == '<':
			if i+1 < len(rs) && rs[i+1] == '=' {
				toks = append(toks, token{kind: tokOp, text: "<=", op: Le})
				i += 2
			} else if i+1 < len(rs) && rs[i+1] == '>' {
				toks = append(toks, token{kind: tokOp, text: "<>", op: Ne})
				i += 2
			} else {
				toks = append(toks, token{kind: tokOp, text: "<", op: Lt})
				i++
			}
		case r == '>':
			if i+1 < len(rs) && rs[i+1] == '=' {
				toks = append(toks, token{kind: tokOp, text: ">=", op: Ge})
				i += 2
			} else {
				toks = append(toks, token{kind: tokOp, text: ">", op: Gt})
				i++
			}
		case r == '=':
			if i+1 < len(rs) && rs[i+1] == '=' {
				i += 2
			} else {
				i++
			}
			toks = append(toks, token{kind: tokOp, text: "=", op: Eq})
		case r == '!':
			if i+1 < len(rs) && rs[i+1] == '=' {
				toks = append(toks, token{kind: tokOp, text: "!=", op: Ne})
				i += 2
			} else {
				toks = append(toks, token{kind: tokNot, text: "!"})
				i++
			}
		case r == '-' || unicode.IsDigit(r):
			j := i + 1
			for j < len(rs) && unicode.IsDigit(rs[j]) {
				j++
			}
			text := string(rs[i:j])
			n, err := strconv.ParseInt(text, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("predicate: bad number %q: %v", text, err)
			}
			toks = append(toks, token{kind: tokNumber, text: text, num: n})
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i + 1
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			word := string(rs[i:j])
			switch strings.ToLower(word) {
			case "and":
				toks = append(toks, token{kind: tokAnd, text: word})
			case "or":
				toks = append(toks, token{kind: tokOr, text: word})
			case "not":
				toks = append(toks, token{kind: tokNot, text: word})
			case "true":
				toks = append(toks, token{kind: tokTrue, text: word})
			case "false":
				toks = append(toks, token{kind: tokFalse, text: word})
			default:
				toks = append(toks, token{kind: tokIdent, text: word})
			}
			i = j
		default:
			return nil, fmt.Errorf("predicate: unexpected character %q", string(r))
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokOr {
			return left, nil
		}
		p.pos++
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Or{left, right}
	}
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokAnd {
			return left, nil
		}
		p.pos++
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = And{left, right}
	}
}

func (p *parser) parseFactor() (Expr, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("predicate: unexpected end of input")
	}
	switch t.kind {
	case tokNot:
		p.pos++
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Not{x}, nil
	case tokLParen:
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		t2, ok := p.peek()
		if !ok || t2.kind != tokRParen {
			return nil, fmt.Errorf("predicate: missing closing parenthesis")
		}
		p.pos++
		return e, nil
	case tokTrue:
		p.pos++
		return True, nil
	case tokFalse:
		p.pos++
		return False, nil
	case tokIdent:
		return p.parseAtom()
	default:
		return nil, fmt.Errorf("predicate: unexpected token %q", t.text)
	}
}

func (p *parser) parseAtom() (Expr, error) {
	ident := p.toks[p.pos]
	p.pos++
	opTok, ok := p.peek()
	if !ok || opTok.kind != tokOp {
		return nil, fmt.Errorf("predicate: expected comparison operator after %q", ident.text)
	}
	p.pos++
	numTok, ok := p.peek()
	if !ok || numTok.kind != tokNumber {
		return nil, fmt.Errorf("predicate: expected integer after %q %s", ident.text, opTok.text)
	}
	p.pos++
	return Compare{Attr: ident.text, Op: opTok.op, Value: numTok.num}, nil
}
