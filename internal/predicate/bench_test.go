package predicate

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func BenchmarkParse(b *testing.B) {
	const src = "(nop >= 100 and cc < 50) or not (fy > 2000 or ayp = 3)"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompiledEval(b *testing.B) {
	schema := dataset.MustSchema(
		dataset.Field{Name: "a", Min: 0, Max: 1000},
		dataset.Field{Name: "b", Min: 0, Max: 1000},
	)
	pred := MustCompile(MustParse("(a >= 100 and a < 500) or (b > 900 and a != 7)"), schema)
	rng := rand.New(rand.NewSource(1))
	tuples := make([]dataset.Tuple, 1024)
	for i := range tuples {
		tuples[i] = dataset.Tuple{Attrs: []int64{rng.Int63n(1001), rng.Int63n(1001)}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred(&tuples[i%len(tuples)])
	}
}

func BenchmarkDisjoint(b *testing.B) {
	schema := dataset.MustSchema(
		dataset.Field{Name: "a", Min: 0, Max: 1000},
		dataset.Field{Name: "b", Min: 0, Max: 1000},
	)
	p := MustParse("(a >= 100 and a < 500) or (b > 900)")
	q := MustParse("(a >= 500 and b <= 900) or (a < 100 and b <= 900)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Disjoint(p, q, schema); err != nil {
			b.Fatal(err)
		}
	}
}
