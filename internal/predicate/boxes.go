package predicate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
)

// Interval is an inclusive integer range [Lo, Hi]. An empty interval has
// Lo > Hi.
type Interval struct {
	Lo, Hi int64
}

// Empty reports whether the interval contains no integers.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(o Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	return Interval{lo, hi}
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int64) bool { return v >= iv.Lo && v <= iv.Hi }

// Width returns the number of integers in the interval (0 if empty).
func (iv Interval) Width() int64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// Box is a conjunction of per-attribute intervals: attributes not present are
// unconstrained (their full domain). A formula's box set is its DNF where
// every disjunct is a box; the formula holds iff some box contains the tuple.
type Box map[string]Interval

// Empty reports whether any interval in the box is empty.
func (b Box) Empty() bool {
	for _, iv := range b {
		if iv.Empty() {
			return true
		}
	}
	return false
}

// Intersect returns the conjunction of two boxes, or an empty=true flag when
// the conjunction is unsatisfiable.
func (b Box) Intersect(o Box) (Box, bool) {
	out := make(Box, len(b)+len(o))
	for a, iv := range b {
		out[a] = iv
	}
	for a, iv := range o {
		if cur, ok := out[a]; ok {
			iv = cur.Intersect(iv)
		}
		if iv.Empty() {
			return nil, false
		}
		out[a] = iv
	}
	return out, true
}

// Overlaps reports whether two boxes have a common point, given each absent
// attribute is unconstrained.
func (b Box) Overlaps(o Box) bool {
	_, ok := b.Intersect(o)
	return ok
}

// String renders the box deterministically for debugging.
func (b Box) String() string {
	attrs := make([]string, 0, len(b))
	for a := range b {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, a := range attrs {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s∈[%d,%d]", a, b[a].Lo, b[a].Hi)
	}
	sb.WriteByte('}')
	return sb.String()
}

// MaxBoxes bounds the DNF expansion performed by Boxes; formulas whose
// disjunctive normal form exceeds it are rejected rather than allowed to
// consume unbounded memory. Stratum constraints in practice are tiny.
const MaxBoxes = 1 << 16

// Boxes converts the formula to a union of boxes (its DNF over attribute
// intervals), clipping every interval to the attribute's domain in the
// schema. The returned set may be empty, meaning the formula is
// unsatisfiable over the schema's domains.
func Boxes(e Expr, schema *dataset.Schema) ([]Box, error) {
	n, err := toNNF(e, false)
	if err != nil {
		return nil, err
	}
	boxes, err := nnfBoxes(n, schema)
	if err != nil {
		return nil, err
	}
	out := boxes[:0]
	for _, b := range boxes {
		if !b.Empty() {
			out = append(out, b)
		}
	}
	return out, nil
}

// toNNF pushes negations to the leaves and eliminates Ne atoms (rewritten as
// a disjunction of Lt and Gt) so every atom maps to a single interval.
func toNNF(e Expr, neg bool) (Expr, error) {
	switch x := e.(type) {
	case Literal:
		if neg {
			return Literal(!bool(x)), nil
		}
		return x, nil
	case Compare:
		if neg {
			x = Compare{Attr: x.Attr, Op: x.Op.Negate(), Value: x.Value}
		}
		if x.Op == Ne {
			return Or{
				Compare{Attr: x.Attr, Op: Lt, Value: x.Value},
				Compare{Attr: x.Attr, Op: Gt, Value: x.Value},
			}, nil
		}
		return x, nil
	case Not:
		return toNNF(x.X, !neg)
	case And:
		l, err := toNNF(x.L, neg)
		if err != nil {
			return nil, err
		}
		r, err := toNNF(x.R, neg)
		if err != nil {
			return nil, err
		}
		if neg {
			return Or{l, r}, nil
		}
		return And{l, r}, nil
	case Or:
		l, err := toNNF(x.L, neg)
		if err != nil {
			return nil, err
		}
		r, err := toNNF(x.R, neg)
		if err != nil {
			return nil, err
		}
		if neg {
			return And{l, r}, nil
		}
		return Or{l, r}, nil
	default:
		return nil, fmt.Errorf("predicate: unknown expression type %T", e)
	}
}

func nnfBoxes(e Expr, schema *dataset.Schema) ([]Box, error) {
	switch x := e.(type) {
	case Literal:
		if bool(x) {
			return []Box{{}}, nil
		}
		return nil, nil
	case Compare:
		iv, err := compareInterval(x, schema)
		if err != nil {
			return nil, err
		}
		if iv.Empty() {
			return nil, nil
		}
		return []Box{{x.Attr: iv}}, nil
	case And:
		ls, err := nnfBoxes(x.L, schema)
		if err != nil {
			return nil, err
		}
		rs, err := nnfBoxes(x.R, schema)
		if err != nil {
			return nil, err
		}
		if len(ls)*len(rs) > MaxBoxes {
			return nil, fmt.Errorf("predicate: DNF expansion exceeds %d boxes", MaxBoxes)
		}
		var out []Box
		for _, l := range ls {
			for _, r := range rs {
				if m, ok := l.Intersect(r); ok {
					out = append(out, m)
				}
			}
		}
		return out, nil
	case Or:
		ls, err := nnfBoxes(x.L, schema)
		if err != nil {
			return nil, err
		}
		rs, err := nnfBoxes(x.R, schema)
		if err != nil {
			return nil, err
		}
		if len(ls)+len(rs) > MaxBoxes {
			return nil, fmt.Errorf("predicate: DNF expansion exceeds %d boxes", MaxBoxes)
		}
		return append(ls, rs...), nil
	default:
		return nil, fmt.Errorf("predicate: non-NNF expression %T", e)
	}
}

func compareInterval(c Compare, schema *dataset.Schema) (Interval, error) {
	idx, ok := schema.Index(c.Attr)
	if !ok {
		return Interval{}, fmt.Errorf("predicate: unknown attribute %q", c.Attr)
	}
	f := schema.Field(idx)
	dom := Interval{f.Min, f.Max}
	switch c.Op {
	case Lt:
		return dom.Intersect(Interval{f.Min, c.Value - 1}), nil
	case Le:
		return dom.Intersect(Interval{f.Min, c.Value}), nil
	case Gt:
		return dom.Intersect(Interval{c.Value + 1, f.Max}), nil
	case Ge:
		return dom.Intersect(Interval{c.Value, f.Max}), nil
	case Eq:
		return dom.Intersect(Interval{c.Value, c.Value}), nil
	default:
		return Interval{}, fmt.Errorf("predicate: %v has no single interval", c.Op)
	}
}

// Satisfiable reports whether the formula holds for at least one assignment
// of attribute values within the schema's domains.
func Satisfiable(e Expr, schema *dataset.Schema) (bool, error) {
	boxes, err := Boxes(e, schema)
	if err != nil {
		return false, err
	}
	return len(boxes) > 0, nil
}

// Disjoint reports whether no assignment of attribute values within the
// schema's domains satisfies both formulas — the requirement the paper places
// on every pair of stratum constraints of a valid SSD query.
func Disjoint(a, b Expr, schema *dataset.Schema) (bool, error) {
	as, err := Boxes(a, schema)
	if err != nil {
		return false, err
	}
	bs, err := Boxes(b, schema)
	if err != nil {
		return false, err
	}
	for _, ba := range as {
		for _, bb := range bs {
			if ba.Overlaps(bb) {
				return false, nil
			}
		}
	}
	return true, nil
}
