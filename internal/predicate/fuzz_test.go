package predicate

import "testing"

// FuzzParse: whatever the input, Parse must never panic, and any formula it
// accepts must round-trip through String unchanged.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"a < 1",
		"a >= 3 and b <= 7",
		"not (x = 1 or y != 2)",
		"gender = 1 ∧ ¬(income > 100000 ∨ income < 50000)",
		"true or false",
		"(((a<1)))",
		"a < -9223372036854775808",
		"_x1 <> 42",
		"a == 5 and b < 6 or not c >= 7",
		"))((",
		"and and",
		"a <",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		e, err := Parse(input)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		again, err := Parse(e.String())
		if err != nil {
			t.Fatalf("String() of accepted input %q does not re-parse: %q: %v", input, e.String(), err)
		}
		if !Equal(e, again) {
			t.Fatalf("round trip changed %q: %q vs %q", input, e, again)
		}
	})
}
