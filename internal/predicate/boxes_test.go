package predicate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

// matchesBoxes is the semantics of a box set: some box contains the tuple.
func matchesBoxes(boxes []Box, schema *dataset.Schema, tp *dataset.Tuple) bool {
	for _, b := range boxes {
		ok := true
		for attr, iv := range b {
			idx, _ := schema.Index(attr)
			if !iv.Contains(tp.Attrs[idx]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestQuickBoxesEquivalentToEval: the DNF box set of a random formula
// matches exactly the tuples the formula matches.
func TestQuickBoxesEquivalentToEval(t *testing.T) {
	schema := predSchema()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 4)
		boxes, err := Boxes(e, schema)
		if err != nil {
			return false
		}
		for i := 0; i < 30; i++ {
			tp := randomTuple(rng)
			want, err := Eval(e, schema, &tp)
			if err != nil {
				return false
			}
			if matchesBoxes(boxes, schema, &tp) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxesClipToDomain(t *testing.T) {
	schema := predSchema()
	boxes, err := Boxes(MustParse("a > 1000"), schema) // outside [0,100]
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 0 {
		t.Fatalf("unsatisfiable formula produced %d boxes", len(boxes))
	}
	ok, err := Satisfiable(MustParse("a > 1000"), schema)
	if err != nil || ok {
		t.Fatalf("Satisfiable = %v, %v; want false", ok, err)
	}
	ok, err = Satisfiable(MustParse("a >= 0"), schema)
	if err != nil || !ok {
		t.Fatalf("Satisfiable = %v, %v; want true", ok, err)
	}
}

func TestDisjointBasics(t *testing.T) {
	schema := predSchema()
	cases := []struct {
		p, q string
		want bool
	}{
		{"a < 50", "a >= 50", true},
		{"a < 50", "a > 40", false},
		{"a = 3", "a != 3", true},
		{"a < 10 and b > 0", "a < 10 and b <= 0", true},
		{"a < 10 and b > 0", "a < 5", false},
		{"c = 1 or c = 2", "c = 3 or c = 4", true},
		{"c = 1 or c = 2", "c = 2 or c = 3", false},
		{"not (a < 50)", "a < 50", true},
		{"true", "a = 1", false},
		{"false", "a = 1", true},
	}
	for _, c := range cases {
		got, err := Disjoint(MustParse(c.p), MustParse(c.q), schema)
		if err != nil {
			t.Fatalf("Disjoint(%q, %q): %v", c.p, c.q, err)
		}
		if got != c.want {
			t.Fatalf("Disjoint(%q, %q) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

// TestQuickDisjointConsistent: if Disjoint says two random formulas are
// disjoint, no random tuple satisfies both.
func TestQuickDisjointConsistent(t *testing.T) {
	schema := predSchema()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomExpr(rng, 3)
		q := randomExpr(rng, 3)
		disjoint, err := Disjoint(p, q, schema)
		if err != nil {
			return false
		}
		if !disjoint {
			return true // nothing to check
		}
		for i := 0; i < 50; i++ {
			tp := randomTuple(rng)
			pv, _ := Eval(p, schema, &tp)
			qv, _ := Eval(q, schema, &tp)
			if pv && qv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalOps(t *testing.T) {
	a := Interval{0, 10}
	b := Interval{5, 20}
	if got := a.Intersect(b); got != (Interval{5, 10}) {
		t.Fatalf("Intersect = %+v", got)
	}
	if !(Interval{5, 4}).Empty() {
		t.Fatal("inverted interval should be empty")
	}
	if (Interval{5, 4}).Width() != 0 || a.Width() != 11 {
		t.Fatal("Width wrong")
	}
}

func TestBoxIntersectAndString(t *testing.T) {
	b1 := Box{"a": {0, 10}}
	b2 := Box{"a": {5, 20}, "b": {1, 2}}
	m, ok := b1.Intersect(b2)
	if !ok || m["a"] != (Interval{5, 10}) || m["b"] != (Interval{1, 2}) {
		t.Fatalf("Intersect = %v, %v", m, ok)
	}
	b3 := Box{"a": {11, 20}}
	if _, ok := b1.Intersect(b3); ok {
		t.Fatal("disjoint boxes intersected")
	}
	if b2.String() != "{a∈[5,20], b∈[1,2]}" {
		t.Fatalf("String = %q", b2.String())
	}
}
