// Package predicate implements the propositional-formula language of SSD
// stratum constraints (Section 3.2.1 of the paper): comparisons between an
// attribute and a constant, combined with conjunction, disjunction and
// negation, in the style of domain relational calculus selection conditions.
//
// The package provides:
//
//   - an AST (Formula, Cmp, And, Or, Not) with a String rendering;
//   - a parser for a small textual syntax, e.g.
//     "gender = 1 and (income < 50000 or income > 100000)";
//   - compilation of a formula against a dataset.Schema into a fast tuple
//     predicate (Compile), used by the mappers on every tuple;
//   - box decomposition (Boxes): a formula lowered to a union of axis-aligned
//     boxes — disjunctive normal form over per-attribute integer intervals,
//     clipped to the schema's declared domains;
//   - a decision procedure for pairwise disjointness of formulas (Disjoint),
//     built on box decomposition — SSD validation requires it of every pair
//     of stratum constraints.
//
// Box decomposition is the package's semantic workhorse: two formulas are
// disjoint iff their box unions do not intersect, and the serve daemon
// reuses the same geometry for query canonicalization (equivalent formulas
// normalize to the same boxes) and for split pre-filtering (a split whose
// bounding box misses every query box cannot contribute a tuple). Boxes are
// exact for this language — every formula over integer attributes with
// bounded domains denotes a finite union of boxes — so decisions made on
// boxes are decisions about the formulas themselves.
package predicate
