package worker_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/worker"
)

// newTCP starts a TCP executor with n local workers attached.
func newTCP(t testing.TB, n int, cfg worker.TCPConfig) *worker.TCPExecutor {
	t.Helper()
	exec, err := worker.NewTCPExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exec.SpawnLocal(n)
	if err := exec.AwaitWorkers(n, 10*time.Second); err != nil {
		exec.Close()
		t.Fatal(err)
	}
	return exec
}

// TestDirectShuffleZeroRoutedBytes pins the tentpole contract: with direct
// shuffle engaged (the tcp default), the job's answer and metrics are
// byte-identical to the in-process engine, yet the coordinator carries zero
// bucket payload bytes — everything travels worker-to-worker.
func TestDirectShuffleZeroRoutedBytes(t *testing.T) {
	splits := testPopulation(t)
	want, wantMet := runSQE(t, nil, splits)

	exec := newTCP(t, 3, worker.TCPConfig{})
	defer exec.Close()
	got, gotMet := runSQE(t, exec, splits)

	if !reflect.DeepEqual(want, got) {
		t.Errorf("direct-shuffle answer differs from in-process:\n in: %v\nout: %v", want, got)
	}
	if !reflect.DeepEqual(wantMet, gotMet) {
		t.Errorf("direct-shuffle metrics differ from in-process:\n in: %+v\nout: %+v", wantMet, gotMet)
	}
	st := exec.ShuffleStats()
	if st.RoutedBucketBytes != 0 {
		t.Errorf("coordinator carried %d bucket bytes on the direct path, want 0", st.RoutedBucketBytes)
	}
	if st.DirectBytes == 0 {
		t.Error("DirectBytes = 0: no bucket traveled worker-to-worker")
	}
	if st.Lost != 0 {
		t.Errorf("Lost = %d direct shuffles on a healthy pool, want 0", st.Lost)
	}
}

// TestRoutedShuffleEscapeHatch: with RoutedShuffle set the executor plans no
// direct sessions — the answer is unchanged and every bucket byte is
// coordinator-carried, mirroring the subprocess backend.
func TestRoutedShuffleEscapeHatch(t *testing.T) {
	splits := testPopulation(t)
	want, wantMet := runSQE(t, nil, splits)

	exec := newTCP(t, 3, worker.TCPConfig{RoutedShuffle: true})
	defer exec.Close()
	got, gotMet := runSQE(t, exec, splits)

	if !reflect.DeepEqual(want, got) {
		t.Errorf("routed answer differs from in-process:\n in: %v\nout: %v", want, got)
	}
	if !reflect.DeepEqual(wantMet, gotMet) {
		t.Errorf("routed metrics differ from in-process:\n in: %+v\nout: %+v", wantMet, gotMet)
	}
	st := exec.ShuffleStats()
	if st.DirectBytes != 0 {
		t.Errorf("DirectBytes = %d with RoutedShuffle set, want 0", st.DirectBytes)
	}
	if st.RoutedBucketBytes == 0 {
		t.Error("RoutedBucketBytes = 0 on the routed path, want > 0")
	}
}

// Subprocess workers have no peer listener, so their shuffle must always be
// coordinator-routed regardless of the direct data plane existing.
func TestSubprocessShuffleAlwaysRouted(t *testing.T) {
	splits := testPopulation(t)
	exec := newSubprocess(t, 2, nil)
	defer exec.Close()
	runSQE(t, exec, splits)

	st := exec.ShuffleStats()
	if st.DirectBytes != 0 {
		t.Errorf("subprocess DirectBytes = %d, want 0", st.DirectBytes)
	}
	if st.RoutedBucketBytes == 0 {
		t.Error("subprocess RoutedBucketBytes = 0, want > 0")
	}
}

// TestDirectShuffleCrashFallback kills a direct-shuffle worker on its first
// task: map re-execution, lost-shuffle detection and the routed replay path
// must still converge on the in-process answer.
func TestDirectShuffleCrashFallback(t *testing.T) {
	splits := testPopulation(t)
	want, _ := runSQE(t, nil, splits)

	exec, err := worker.NewTCPExecutor(worker.TCPConfig{
		ShuffleTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	exec.SpawnLocalOpts(1, worker.ServeOptions{ExitAfter: 1})
	exec.SpawnLocalOpts(2, worker.ServeOptions{})
	if err := exec.AwaitWorkers(3, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	got, _ := runSQE(t, exec, splits)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("answer after mid-shuffle crash differs from in-process:\n in: %v\nout: %v", want, got)
	}
	if len(got.Strata[0]) != 7 || len(got.Strata[1]) != 9 {
		t.Errorf("per-stratum fill %d/%d after crash, want 7/9",
			len(got.Strata[0]), len(got.Strata[1]))
	}
}

// BenchmarkShuffleDirectVsRouted runs the same MR-SQE job on one tcp pool
// with the direct data plane on and off: the wall-clock delta is the cost of
// hauling every bucket through the coordinator, and the reported
// coordinator-bytes metric shows what the direct path removes from it.
func BenchmarkShuffleDirectVsRouted(b *testing.B) {
	for _, size := range []int{1, 50} {
		splits := scaledPopulation(b, size)
		bench := func(b *testing.B, cfg worker.TCPConfig) {
			exec := newTCP(b, 3, cfg)
			defer exec.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runSQE(b, exec, splits)
			}
			st := exec.ShuffleStats()
			b.ReportMetric(float64(st.RoutedBucketBytes)/float64(b.N), "coordB/op")
			b.ReportMetric(float64(st.DirectBytes)/float64(b.N), "directB/op")
		}
		b.Run(fmt.Sprintf("pop=%d/shuffle=direct", size*900), func(b *testing.B) {
			bench(b, worker.TCPConfig{})
		})
		b.Run(fmt.Sprintf("pop=%d/shuffle=routed", size*900), func(b *testing.B) {
			bench(b, worker.TCPConfig{RoutedShuffle: true})
		})
	}
}

// scaledPopulation is testPopulation's distribution at size× the tuples, so
// the shuffle benchmark can show both the tiny-bucket and the heavy-bucket
// regime.
func scaledPopulation(t testing.TB, size int) []dataset.Split {
	t.Helper()
	r := dataset.NewRelation(testSchema())
	id := int64(0)
	for i := 0; i < 400*size; i++ {
		r.MustAdd(dataset.Tuple{ID: id, Attrs: []int64{1, id % 1001}})
		id++
	}
	for i := 0; i < 500*size; i++ {
		r.MustAdd(dataset.Tuple{ID: id, Attrs: []int64{0, id % 1001}})
		id++
	}
	splits, err := dataset.Partition(r, 6, dataset.Contiguous, nil)
	if err != nil {
		t.Fatal(err)
	}
	return splits
}

// TestDirectShuffleMixedPool: a pool where one worker opted out of the data
// plane (routed-only) still completes with the in-process answer — the plan
// simply never places reducers on the opted-out worker, and any bucket
// pushed to a planless destination stays coordinator-carried.
func TestDirectShuffleMixedPool(t *testing.T) {
	splits := testPopulation(t)
	want, _ := runSQE(t, nil, splits)

	exec, err := worker.NewTCPExecutor(worker.TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	exec.SpawnLocalOpts(1, worker.ServeOptions{RoutedShuffle: true})
	exec.SpawnLocalOpts(2, worker.ServeOptions{})
	if err := exec.AwaitWorkers(3, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	got, _ := runSQE(t, exec, splits)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("mixed-pool answer differs from in-process:\n in: %v\nout: %v", want, got)
	}
}
