package worker

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/wire"
)

// The direct shuffle data plane: every TCP worker runs a shuffleReceiver — a
// loopback listener speaking TCPTransport-style length-prefixed frames — and
// map attempts push each bucket straight to the endpoint of the reducer that
// will consume it. The coordinator never touches the bytes; it only hands out
// the (worker, endpoint) assignment in a ShufflePlan and keeps the routed path
// as fallback for buckets that could not be delivered or were lost with a
// crashed worker.

// shuffle frame header: session length, map task, reducer, payload length —
// four big-endian int32s, followed by the session string and the payload. The
// session field is what the engine's TCPTransport framing lacks: one worker
// pool serves many job runs back to back, so buckets must be namespaced per
// run to never mix payloads.
const shuffleHeaderSize = 16

// maxShuffleSessions bounds how many job runs' buckets one receiver retains
// at a time. Completed reducers free their buckets eagerly; the LRU eviction
// here is the backstop for sessions that never complete on this worker (a
// fallback took over), so an abandoned shuffle cannot grow worker memory
// without bound.
const maxShuffleSessions = 4

// shuffleSession holds one job run's received buckets: reducer → map task →
// payload.
type shuffleSession struct {
	buckets map[int]map[int][]byte
}

// shuffleReceiver accepts bucket pushes from peer workers and hands them to
// this worker's reduce attempts. Re-sends overwrite (last write wins): a
// re-executed map attempt produces byte-identical buckets, so duplicate
// delivery is harmless.
type shuffleReceiver struct {
	ln net.Listener

	mu       sync.Mutex
	cond     *sync.Cond
	sessions map[string]*shuffleSession
	order    []string // LRU order, most recently used last
	closed   bool

	wg      sync.WaitGroup
	closing chan struct{}
}

// newShuffleReceiver starts a loopback listener and its accept loop. Loopback
// matches the rest of the repo's single-machine cluster model; a worker on
// another machine would announce an address its peers cannot dial, sends to it
// would fail, and the engine's routed fallback still completes the job.
func newShuffleReceiver() (*shuffleReceiver, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("worker: starting shuffle receiver: %w", err)
	}
	s := &shuffleReceiver{
		ln:       ln,
		sessions: make(map[string]*shuffleSession),
		closing:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// addr is the endpoint peers dial, announced in the worker's hello frame.
func (s *shuffleReceiver) addr() string { return s.ln.Addr().String() }

func (s *shuffleReceiver) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serve(conn)
	}
}

// serve reads bucket frames off one peer connection until it closes. A
// malformed frame only drops this connection: the sender sees the write fail,
// retains the bucket, and the routed fallback covers it.
func (s *shuffleReceiver) serve(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	header := make([]byte, shuffleHeaderSize)
	for {
		if _, err := io.ReadFull(conn, header); err != nil {
			return
		}
		sessLen := int(int32(binary.BigEndian.Uint32(header[0:])))
		task := int(int32(binary.BigEndian.Uint32(header[4:])))
		reducer := int(int32(binary.BigEndian.Uint32(header[8:])))
		size := int(int32(binary.BigEndian.Uint32(header[12:])))
		if sessLen <= 0 || sessLen > 1<<10 || size < 0 || size > maxFrameSize {
			return
		}
		body := make([]byte, sessLen+size)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		s.store(string(body[:sessLen]), task, reducer, body[sessLen:])
	}
}

// store files one received bucket and wakes waiting reduce attempts.
func (s *shuffleReceiver) store(session string, task, reducer int, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	sess := s.touch(session)
	if sess.buckets[reducer] == nil {
		sess.buckets[reducer] = make(map[int][]byte)
	}
	sess.buckets[reducer][task] = payload
	s.cond.Broadcast()
}

// touch returns the session, creating it (and evicting the least recently
// used one beyond maxShuffleSessions) as needed. Callers hold s.mu.
func (s *shuffleReceiver) touch(session string) *shuffleSession {
	if sess, ok := s.sessions[session]; ok {
		for i, name := range s.order {
			if name == session {
				s.order = append(append(s.order[:i:i], s.order[i+1:]...), session)
				break
			}
		}
		return sess
	}
	for len(s.order) >= maxShuffleSessions {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.sessions, oldest)
	}
	sess := &shuffleSession{buckets: make(map[int]map[int][]byte)}
	s.sessions[session] = sess
	s.order = append(s.order, session)
	return sess
}

// receive blocks until every map task listed in need has delivered reducer's
// bucket for the session, then returns them. On deadline expiry it returns a
// *mapreduce.ReceiveTimeoutError naming the first missing map task, which the
// serve loop reports as a lost shuffle (the coordinator then falls back to
// the routed path).
func (s *shuffleReceiver) receive(session string, reducer int, need []int, timeout time.Duration) (map[int][]byte, error) {
	if timeout <= 0 {
		timeout = 15 * time.Second
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	expired := false
	timer := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		expired = true
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()
	for {
		sess := s.sessions[session]
		missing := -1
		for _, t := range need {
			if sess == nil || sess.buckets[reducer][t] == nil {
				missing = t
				break
			}
		}
		if missing < 0 {
			got := make(map[int][]byte, len(need))
			for _, t := range need {
				got[t] = sess.buckets[reducer][t]
			}
			return got, nil
		}
		if s.closed {
			return nil, fmt.Errorf("worker: shuffle receiver closed while reducer %d waited for map task %d", reducer, missing)
		}
		if expired {
			return nil, &mapreduce.ReceiveTimeoutError{Reducer: reducer, Task: missing, Timeout: timeout}
		}
		s.cond.Wait()
	}
}

// forget drops a completed reducer's buckets (and its session once empty), so
// a long-lived worker's memory tracks in-flight work, not job history.
func (s *shuffleReceiver) forget(session string, reducer int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[session]
	if sess == nil {
		return
	}
	delete(sess.buckets, reducer)
	if len(sess.buckets) == 0 {
		delete(s.sessions, session)
		for i, name := range s.order {
			if name == session {
				s.order = append(s.order[:i:i], s.order[i+1:]...)
				break
			}
		}
	}
}

// close stops the listener, fails waiting receives and releases all buckets.
func (s *shuffleReceiver) close() {
	s.mu.Lock()
	s.closed = true
	s.sessions = make(map[string]*shuffleSession)
	s.order = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

// appendShuffleFrame renders one bucket push into buf: header, session,
// payload.
func appendShuffleFrame(buf []byte, session string, task, reducer int, payload []byte) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, shuffleHeaderSize)...)
	binary.BigEndian.PutUint32(buf[start+0:], uint32(len(session)))
	binary.BigEndian.PutUint32(buf[start+4:], uint32(task))
	binary.BigEndian.PutUint32(buf[start+8:], uint32(reducer))
	binary.BigEndian.PutUint32(buf[start+12:], uint32(len(payload)))
	buf = append(buf, session...)
	return append(buf, payload...)
}

// shuffleSendGroup dials one peer and streams all of a map attempt's buckets
// destined for it over the single connection — one dial per destination
// worker, not per bucket, and one pooled scratch buffer reused across all
// its frames. It returns the reducers whose frames were fully written and
// the wire bytes moved; on an error the unwritten buckets stay with the
// caller, which retains them for the routed fallback.
func shuffleSendGroup(endpoint, session string, task int, reducers []int, buckets [][]byte) (sent []int, n int, err error) {
	conn, err := net.Dial("tcp", endpoint)
	if err != nil {
		return nil, 0, fmt.Errorf("worker: dialing shuffle endpoint %s: %w", endpoint, err)
	}
	defer conn.Close()
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	for _, r := range reducers {
		buf = appendShuffleFrame(buf[:0], session, task, r, buckets[r])
		if _, werr := conn.Write(buf); werr != nil {
			return sent, n, fmt.Errorf("worker: pushing bucket to %s: %w", endpoint, werr)
		}
		n += len(buf)
		sent = append(sent, r)
	}
	return sent, n, nil
}
