package worker_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/stratified"
	"repro/internal/worker"
)

// TestMain doubles as the worker entry point: the subprocess executor in
// these tests re-executes the test binary itself, and the environment flag
// flips the child into a protocol worker before any test machinery runs
// (the same trick as the strata CLI's "worker -stdio" subcommand).
func TestMain(m *testing.M) {
	if os.Getenv("STRATA_TEST_WORKER") == "1" {
		worker.ServeStdio(worker.ServeOptions{}) // never returns
	}
	os.Exit(m.Run())
}

// newSubprocess starts a pool of worker children running this test binary.
// extra plants additional environment entries on the i-th worker (the chaos
// hook).
func newSubprocess(t testing.TB, workers int, extra func(i int) []string) *worker.SubprocessExecutor {
	t.Helper()
	exec, err := worker.NewSubprocessExecutor(worker.SubprocessConfig{
		Workers: workers,
		Command: []string{os.Args[0]},
		ExtraEnv: func(i int) []string {
			env := []string{"STRATA_TEST_WORKER=1"}
			if extra != nil {
				env = append(env, extra(i)...)
			}
			return env
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return exec
}

func testSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Field{Name: "gender", Min: 0, Max: 1},
		dataset.Field{Name: "income", Min: 0, Max: 1000},
	)
}

// testPopulation builds 400 men and 500 women over 6 splits.
func testPopulation(t testing.TB) []dataset.Split {
	t.Helper()
	r := dataset.NewRelation(testSchema())
	id := int64(0)
	for i := 0; i < 400; i++ {
		r.MustAdd(dataset.Tuple{ID: id, Attrs: []int64{1, id % 1001}})
		id++
	}
	for i := 0; i < 500; i++ {
		r.MustAdd(dataset.Tuple{ID: id, Attrs: []int64{0, id % 1001}})
		id++
	}
	splits, err := dataset.Partition(r, 6, dataset.Contiguous, nil)
	if err != nil {
		t.Fatal(err)
	}
	return splits
}

func testQuery() *query.SSD {
	return query.NewSSD("workers",
		query.Stratum{Cond: predicate.MustParse("gender = 1"), Freq: 7},
		query.Stratum{Cond: predicate.MustParse("gender = 0"), Freq: 9},
	)
}

// testCluster freezes the clock so wall-time fields can't differ between
// backends; exec == nil is the in-process reference.
func testCluster(exec mapreduce.Executor) *mapreduce.Cluster {
	return &mapreduce.Cluster{
		Slaves: 3, SlotsPerSlave: 2,
		Cost:     mapreduce.DefaultCostModel(),
		Clock:    mapreduce.FrozenClock(time.Unix(0, 0)),
		Executor: exec,
	}
}

func runSQE(t testing.TB, exec mapreduce.Executor, splits []dataset.Split) (*query.Answer, mapreduce.Metrics) {
	t.Helper()
	ans, met, err := stratified.RunSQE(testCluster(exec), testQuery(), testSchema(), splits,
		stratified.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return ans, met
}

// TestSubprocessMatchesInproc: the same job on worker child processes
// produces the identical sample and metrics as the in-process engine.
func TestSubprocessMatchesInproc(t *testing.T) {
	splits := testPopulation(t)
	want, wantMet := runSQE(t, nil, splits)

	exec := newSubprocess(t, 3, nil)
	defer exec.Close()
	got, gotMet := runSQE(t, exec, splits)

	if !reflect.DeepEqual(want, got) {
		t.Errorf("subprocess answer differs from in-process:\n in: %v\nout: %v", want, got)
	}
	if !reflect.DeepEqual(wantMet, gotMet) {
		t.Errorf("subprocess metrics differ from in-process:\n in: %+v\nout: %+v", wantMet, gotMet)
	}
}

// TestTCPMatchesInproc: workers registered over TCP produce the identical
// sample.
func TestTCPMatchesInproc(t *testing.T) {
	splits := testPopulation(t)
	want, _ := runSQE(t, nil, splits)

	exec, err := worker.NewTCPExecutor(worker.TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	exec.SpawnLocal(2)
	if err := exec.AwaitWorkers(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	got, _ := runSQE(t, exec, splits)

	if !reflect.DeepEqual(want, got) {
		t.Errorf("tcp answer differs from in-process:\n in: %v\nout: %v", want, got)
	}
}

// TestWorkerCrashRecovery kills a worker mid-job and checks the coordinator
// reassigns its lease without changing the sample: worker 0 aborts on its
// first leased task, so the job must finish on the survivors with exactly
// one extra attempt, and the per-stratum fill must still be exact.
func TestWorkerCrashRecovery(t *testing.T) {
	splits := testPopulation(t)
	want, _ := runSQE(t, nil, splits)

	exec := newSubprocess(t, 2, func(i int) []string {
		if i == 0 {
			return []string{worker.ChaosExitEnv + "=1"}
		}
		return nil
	})
	defer exec.Close()
	got, met := runSQE(t, exec, splits)

	if !reflect.DeepEqual(want, got) {
		t.Errorf("answer after crash recovery differs from in-process:\n in: %v\nout: %v", want, got)
	}
	if len(got.Strata[0]) != 7 || len(got.Strata[1]) != 9 {
		t.Errorf("per-stratum fill %d/%d after recovery, want 7/9",
			len(got.Strata[0]), len(got.Strata[1]))
	}
	tasks := int64(met.MapTasks + met.ReduceTasks)
	attempts := met.MapAttempts + met.ReduceAttempts
	if attempts != tasks+1 {
		t.Errorf("attempts = %d over %d tasks, want exactly one reassignment (%d)",
			attempts, tasks, tasks+1)
	}
}

// TestGoldenSpansAcrossBackends locks the cross-backend determinism
// contract end to end: under a frozen clock and a fixed seed, all three
// backends produce the identical answer and, up to the worker id tag, the
// byte-identical span file.
func TestGoldenSpansAcrossBackends(t *testing.T) {
	splits := testPopulation(t)

	run := func(exec mapreduce.Executor) (*query.Answer, []byte) {
		var buf bytes.Buffer
		c := testCluster(exec)
		tr := mapreduce.NewJSONLTracer(&buf)
		c.Tracer = tr
		ans, _, err := stratified.RunSQE(c, testQuery(), testSchema(), splits,
			stratified.Options{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return ans, buf.Bytes()
	}

	inprocAns, inprocSpans := run(nil)

	sub := newSubprocess(t, 2, nil)
	defer sub.Close()
	subAns, subSpans := run(sub)

	tcp, err := worker.NewTCPExecutor(worker.TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	tcp.SpawnLocal(2)
	if err := tcp.AwaitWorkers(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	tcpAns, tcpSpans := run(tcp)

	if !reflect.DeepEqual(inprocAns, subAns) || !reflect.DeepEqual(inprocAns, tcpAns) {
		t.Errorf("answers differ across backends")
	}
	golden := stripWorker(t, inprocSpans)
	for _, b := range []struct {
		name  string
		spans []byte
	}{{"subprocess", subSpans}, {"tcp", tcpSpans}} {
		if got := stripWorker(t, b.spans); !bytes.Equal(golden, got) {
			t.Errorf("%s span file differs from in-process (after dropping worker ids):\n--- inproc ---\n%s\n--- %s ---\n%s",
				b.name, golden, b.name, got)
		}
	}
}

// TestGoldenSpansMixedWirePool runs the golden-span contract on a mixed
// pool: one worker forced to the gob wire format (STRATA_WIRE=gob, so it
// announces wire version 0 and encodes gob payloads) alongside a
// binary-codec worker. Answers, metrics and spans must stay byte-identical
// to the in-process run — the payload format tag and per-connection
// negotiation keep the two formats interoperable within one job.
func TestGoldenSpansMixedWirePool(t *testing.T) {
	splits := testPopulation(t)

	run := func(exec mapreduce.Executor) (*query.Answer, mapreduce.Metrics, []byte) {
		var buf bytes.Buffer
		c := testCluster(exec)
		tr := mapreduce.NewJSONLTracer(&buf)
		c.Tracer = tr
		ans, met, err := stratified.RunSQE(c, testQuery(), testSchema(), splits,
			stratified.Options{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return ans, met, buf.Bytes()
	}

	wantAns, wantMet, wantSpans := run(nil)

	mixed := newSubprocess(t, 2, func(i int) []string {
		if i == 0 {
			return []string{"STRATA_WIRE=gob"}
		}
		return nil
	})
	defer mixed.Close()
	gotAns, gotMet, gotSpans := run(mixed)

	if !reflect.DeepEqual(wantAns, gotAns) {
		t.Errorf("mixed-wire answer differs from in-process:\n in: %v\nout: %v", wantAns, gotAns)
	}
	if !reflect.DeepEqual(wantMet, gotMet) {
		t.Errorf("mixed-wire metrics differ from in-process:\n in: %+v\nout: %+v", wantMet, gotMet)
	}
	if golden, got := stripWorker(t, wantSpans), stripWorker(t, gotSpans); !bytes.Equal(golden, got) {
		t.Errorf("mixed-wire span file differs from in-process (after dropping worker ids):\n--- inproc ---\n%s\n--- mixed ---\n%s",
			golden, got)
	}
}

// TestGoldenDistributedSpans locks the distributed-tracing determinism
// contract on the remote backends: with a TraceContext installed under a
// frozen clock, repeated runs on one pool produce byte-identical span files
// (up to worker ids), every span carries the trace identity, and the remote
// attempts decompose into the expected worker-side child phases — decode and
// exec everywhere, push and recv on the direct-shuffle tcp path.
func TestGoldenDistributedSpans(t *testing.T) {
	splits := testPopulation(t)

	run := func(exec mapreduce.Executor) []byte {
		var buf bytes.Buffer
		c := testCluster(exec)
		c.TraceContext = &mapreduce.TraceContext{Trace: "t-golden", Run: "r1"}
		tr := mapreduce.NewJSONLTracer(&buf)
		c.Tracer = tr
		if _, _, err := stratified.RunSQE(c, testQuery(), testSchema(), splits,
			stratified.Options{Seed: 42}); err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	backends := []struct {
		name       string
		workerSide []string // phases only a worker can emit
		make       func() mapreduce.Executor
	}{
		{"subprocess", []string{mapreduce.PhaseDecode, mapreduce.PhaseExec},
			func() mapreduce.Executor { return newSubprocess(t, 2, nil) }},
		{"tcp", []string{mapreduce.PhaseDecode, mapreduce.PhaseExec, mapreduce.PhasePush, mapreduce.PhaseRecv},
			func() mapreduce.Executor {
				exec, err := worker.NewTCPExecutor(worker.TCPConfig{})
				if err != nil {
					t.Fatal(err)
				}
				exec.SpawnLocal(2)
				if err := exec.AwaitWorkers(2, 10*time.Second); err != nil {
					t.Fatal(err)
				}
				return exec
			}},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			exec := b.make()
			defer exec.Close()
			first, second := run(exec), run(exec)
			if g, s := stripWorker(t, first), stripWorker(t, second); !bytes.Equal(g, s) {
				t.Errorf("traced span file differs between identical runs (after dropping worker ids):\n--- first ---\n%s\n--- second ---\n%s", g, s)
			}

			spans, err := mapreduce.ReadSpans(bytes.NewReader(first))
			if err != nil {
				t.Fatal(err)
			}
			phases := map[string]int{}
			for _, s := range spans {
				phases[s.Phase]++
				if s.Trace != "t-golden" || s.Run != "r1" {
					t.Fatalf("span %s/%s carries trace %q run %q, want t-golden/r1", s.Phase, s.Job, s.Trace, s.Run)
				}
				if s.ID == 0 {
					t.Fatalf("span %s task %d has no id", s.Phase, s.Task)
				}
				if s.Phase != mapreduce.PhaseJob && s.Parent == 0 {
					t.Fatalf("span %s task %d has no parent", s.Phase, s.Task)
				}
			}
			for _, p := range append([]string{mapreduce.PhaseQueue, mapreduce.PhaseWire}, b.workerSide...) {
				if phases[p] == 0 {
					t.Errorf("no %q spans in traced %s run; phases: %v", p, b.name, phases)
				}
			}
		})
	}
}

// stripWorker re-renders a JSONL span stream with the worker tag removed —
// the only field allowed to differ between backends.
func stripWorker(t testing.TB, spans []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	for _, line := range bytes.Split(bytes.TrimSpace(spans), []byte("\n")) {
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		delete(m, "worker")
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	return out.Bytes()
}

// BenchmarkEngine compares one full MR-SQE job on the in-process engine
// against the subprocess worker pool: the difference is the executor seam's
// serialization plus the frame protocol round-trips.
func BenchmarkEngine(b *testing.B) {
	splits := testPopulation(b)
	bench := func(b *testing.B, exec mapreduce.Executor) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := &mapreduce.Cluster{
				Slaves: 3, SlotsPerSlave: 2,
				Cost:     mapreduce.ZeroCostModel(),
				Executor: exec,
			}
			_, _, err := stratified.RunSQE(c, testQuery(), testSchema(), splits,
				stratified.Options{Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("backend=inproc", func(b *testing.B) { bench(b, nil) })
	b.Run("backend=subprocess", func(b *testing.B) {
		exec := newSubprocess(b, 3, nil)
		defer exec.Close()
		b.ResetTimer()
		bench(b, exec)
	})
	b.Run(fmt.Sprintf("backend=tcp/workers=%d", 3), func(b *testing.B) {
		exec, err := worker.NewTCPExecutor(worker.TCPConfig{})
		if err != nil {
			b.Fatal(err)
		}
		defer exec.Close()
		exec.SpawnLocal(3)
		if err := exec.AwaitWorkers(3, 10*time.Second); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		bench(b, exec)
	})
}
