package worker

import (
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/stratified"
)

// These tests live in the worker package (not worker_test) because the evil
// peer below speaks the raw frame protocol: a hand-rolled "worker" that
// completes the gob hello handshake, leases a task, and then poisons the
// stream — an oversized length prefix in one variant, a mid-frame cut in
// the other. The contract under test is the satellite requirement: frame
// violations are worker death (drop + reassign to a survivor), never a
// deterministic task failure.

func frameErrSplits(t testing.TB) []dataset.Split {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.Field{Name: "gender", Min: 0, Max: 1},
		dataset.Field{Name: "income", Min: 0, Max: 1000},
	)
	r := dataset.NewRelation(schema)
	for id := int64(0); id < 900; id++ {
		g := int64(1)
		if id >= 400 {
			g = 0
		}
		r.MustAdd(dataset.Tuple{ID: id, Attrs: []int64{g, id % 1001}})
	}
	splits, err := dataset.Partition(r, 6, dataset.Contiguous, nil)
	if err != nil {
		t.Fatal(err)
	}
	return splits
}

func frameErrRun(t testing.TB, exec mapreduce.Executor, splits []dataset.Split) (*query.Answer, mapreduce.Metrics) {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.Field{Name: "gender", Min: 0, Max: 1},
		dataset.Field{Name: "income", Min: 0, Max: 1000},
	)
	q := query.NewSSD("workers",
		query.Stratum{Cond: predicate.MustParse("gender = 1"), Freq: 7},
		query.Stratum{Cond: predicate.MustParse("gender = 0"), Freq: 9},
	)
	c := &mapreduce.Cluster{
		Slaves: 3, SlotsPerSlave: 2,
		Cost:     mapreduce.DefaultCostModel(),
		Clock:    mapreduce.FrozenClock(time.Unix(0, 0)),
		Executor: exec,
	}
	ans, met, err := stratified.RunSQE(c, q, schema, splits, stratified.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return ans, met
}

// evilWorker registers over TCP with a well-formed gob hello, then answers
// its first leased task by calling poison on the raw connection.
func evilWorker(t *testing.T, addr string, poison func(net.Conn)) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := newFrameConn(conn, conn)
	if err := fc.write(&envelope{Kind: msgHello, ID: "evil", WireVersion: wireVersion}); err != nil {
		t.Fatal(err)
	}
	go func() {
		defer conn.Close()
		if _, err := fc.read(); err != nil {
			return // dropped before a task arrived
		}
		poison(conn)
		// Linger so the close is the coordinator's decision, proving the
		// drop came from the frame error, not our hang-up.
		time.Sleep(5 * time.Second)
	}()
}

func testFramePoison(t *testing.T, poison func(net.Conn)) {
	splits := frameErrSplits(t)
	want, _ := frameErrRun(t, nil, splits)

	exec, err := NewTCPExecutor(TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	exec.SpawnLocal(1)
	if err := exec.AwaitWorkers(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	evilWorker(t, exec.Addr(), poison)
	if err := exec.AwaitWorkers(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// The map phase submits 6 tasks at once, so the evil worker's idle
	// lease loop is guaranteed to pull exactly one before it is dropped.
	got, met := frameErrRun(t, exec, splits)

	if !reflect.DeepEqual(want, got) {
		t.Errorf("answer after frame error differs from in-process:\n in: %v\nout: %v", want, got)
	}
	tasks := int64(met.MapTasks + met.ReduceTasks)
	attempts := met.MapAttempts + met.ReduceAttempts
	if attempts != tasks+1 {
		t.Errorf("attempts = %d over %d tasks, want exactly one reassignment (%d): frame error must be worker death, not task failure",
			attempts, tasks, tasks+1)
	}
}

// TestOversizedFrameIsWorkerDeath: a length prefix past maxFrameSize
// (*FrameSizeError) drops the worker and reassigns its task.
func TestOversizedFrameIsWorkerDeath(t *testing.T) {
	testFramePoison(t, func(conn net.Conn) {
		conn.Write([]byte{0x7F, 0xFF, 0xFF, 0xFF}) // 2 GiB claim, binary bit clear
	})
}

// TestTruncatedFrameIsWorkerDeath: a stream cut mid-frame
// (*FrameTruncatedError) drops the worker and reassigns its task.
func TestTruncatedFrameIsWorkerDeath(t *testing.T) {
	testFramePoison(t, func(conn net.Conn) {
		conn.Write([]byte{0x00, 0x00, 0x01, 0x00, 0xAB}) // claims 256 bytes, sends 1
		conn.Close()
	})
}
