package worker_test

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/query"
	"repro/internal/stratified"
)

func runSQEerr(t testing.TB, c *mapreduce.Cluster, splits []dataset.Split) (*query.Answer, mapreduce.Metrics, error) {
	return stratified.RunSQE(c, testQuery(), testSchema(), splits, stratified.Options{Seed: 42})
}
