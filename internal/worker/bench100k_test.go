package worker_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/stratified"
	"repro/internal/worker"
)

// bigPopulation builds a pop=n population over 12 splits with the test
// schema's gender/income shape — the PR 6 wire-codec budget workload
// (pop=10^5), where split and bucket payload serialization dominates the
// remote backends.
func bigPopulation(t testing.TB, n int) []dataset.Split {
	t.Helper()
	r := dataset.NewRelation(testSchema())
	for id := int64(0); id < int64(n); id++ {
		r.MustAdd(dataset.Tuple{ID: id, Attrs: []int64{id % 2, id % 1001}})
	}
	splits, err := dataset.Partition(r, 12, dataset.Contiguous, nil)
	if err != nil {
		t.Fatal(err)
	}
	return splits
}

// BenchmarkEngine100k is BenchmarkEngine at pop=10^5: one full MR-SQE job
// per op on each backend. At this volume the remote backends are dominated
// by moving 100k tuples into map tasks, which is exactly what the binary
// wire codec and columnar tuple batches target; A/B against the gob path by
// rerunning with STRATA_WIRE=gob (env reaches subprocess children and the
// in-process TCP workers alike).
func BenchmarkEngine100k(b *testing.B) {
	splits := bigPopulation(b, 100_000)
	bench := func(b *testing.B, exec mapreduce.Executor) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := &mapreduce.Cluster{
				Slaves: 3, SlotsPerSlave: 2,
				Cost:     mapreduce.ZeroCostModel(),
				Executor: exec,
			}
			_, _, err := stratified.RunSQE(c, testQuery(), testSchema(), splits,
				stratified.Options{Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("backend=inproc", func(b *testing.B) { bench(b, nil) })
	b.Run("backend=subprocess", func(b *testing.B) {
		exec := newSubprocess(b, 3, nil)
		defer exec.Close()
		b.ResetTimer()
		bench(b, exec)
	})
	b.Run(fmt.Sprintf("backend=tcp/workers=%d", 3), func(b *testing.B) {
		exec, err := worker.NewTCPExecutor(worker.TCPConfig{})
		if err != nil {
			b.Fatal(err)
		}
		defer exec.Close()
		exec.SpawnLocal(3)
		if err := exec.AwaitWorkers(3, 10*time.Second); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		bench(b, exec)
	})
}
