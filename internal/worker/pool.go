package worker

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mapreduce"
)

// Config tunes the coordinator pool shared by both executors. The zero
// value gets sensible defaults from fill().
type Config struct {
	// LeaseTimeout is how long a dispatched task may go without any frame
	// (heartbeat or result) from its worker before the coordinator declares
	// the lease expired, drops the worker and reassigns the task.
	// Default 15s.
	LeaseTimeout time.Duration
	// HeartbeatInterval is how often workers send keep-alive frames while
	// serving. Default LeaseTimeout/5.
	HeartbeatInterval time.Duration
	// MaxAttempts bounds how many workers a task is tried on before the
	// job fails. Default 3.
	MaxAttempts int
	// RetryBackoff delays a task's re-enqueue after a failed attempt,
	// scaled linearly by the attempt number. Default 50ms.
	RetryBackoff time.Duration
}

func (c Config) fill() Config {
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 15 * time.Second
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = c.LeaseTimeout / 5
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	return c
}

// taskReq is one task making its way through the pool: the spec, the
// attempts that already died on it, and the channel the final outcome is
// delivered on.
type taskReq struct {
	spec     *mapreduce.TaskSpec
	attempts []mapreduce.TaskAttempt
	done     chan taskOutcome
	// affine names the one worker this task must run on (shuffle affinity:
	// the worker holds the task's peer-delivered buckets). An affine task is
	// never reassigned — if its worker dies the outcome is a
	// *mapreduce.ShuffleLostError, and the engine falls back to the routed
	// path instead of retrying here.
	affine string
	// enqueuedAt (unix nanos) is set at submit time for traced, non-frozen
	// specs; serveWorker turns it into the result's queue-wait attribution.
	enqueuedAt int64
}

// markEnqueued stamps the queue-entry time on traced requests. Untraced and
// frozen-clock specs skip the clock read entirely.
func (req *taskReq) markEnqueued() {
	if req.spec.Trace != "" && !req.spec.Frozen {
		req.enqueuedAt = time.Now().UnixNano()
	}
}

type taskOutcome struct {
	res *mapreduce.TaskResult
	err error
}

// pool is the coordinator: a central task queue drained by one lease loop
// per connected worker. It implements the Execute half of
// mapreduce.Executor; SubprocessExecutor and TCPExecutor own worker
// lifecycle (spawning, accepting, killing) and delegate the rest here.
type pool struct {
	cfg   Config
	queue chan *taskReq
	quit  chan struct{}

	mu      sync.Mutex
	live    int
	closed  bool
	workers map[string]*workerHandle // attached workers by id, for affinity
	wg      sync.WaitGroup           // worker lease loops

	// Shuffle data-plane accounting (see ShuffleStats): bucket bytes the
	// coordinator carried inside task/result frames vs bytes the workers
	// moved edge-to-edge, and how many direct attempts were lost.
	routedBucketBytes atomic.Int64
	directBytes       atomic.Int64
	shuffleLost       atomic.Int64
}

func newPool(cfg Config) *pool {
	return &pool{
		cfg: cfg.fill(),
		// The buffer bounds nothing semantically — the engine has at most
		// its worker-pool width of Executes in flight — it only keeps
		// requeues from ever blocking a dying worker's loop.
		queue:   make(chan *taskReq, 4096),
		quit:    make(chan struct{}),
		workers: make(map[string]*workerHandle),
	}
}

// execute queues one task and waits for a worker to complete it (possibly
// after reassignments). It fails fast when no workers remain.
func (p *pool) execute(spec *mapreduce.TaskSpec) (*mapreduce.TaskResult, error) {
	req := &taskReq{spec: spec, done: make(chan taskOutcome, 1)}
	if err := p.submit(req); err != nil {
		return nil, err
	}
	out := <-req.done
	return out.res, out.err
}

func (p *pool) submit(req *taskReq) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("worker: pool is closed")
	}
	if p.live == 0 {
		return fmt.Errorf("worker: no live workers (all crashed or none attached)")
	}
	req.markEnqueued()
	p.queue <- req
	return nil
}

// executeOn queues one task for a specific worker (shuffle affinity) and
// waits for it. Unlike execute it never reassigns: when the worker is not
// attached, its affinity queue is saturated, or it dies mid-attempt, the
// error is a *mapreduce.ShuffleLostError and the caller falls back to the
// routed path.
func (p *pool) executeOn(worker string, spec *mapreduce.TaskSpec) (*mapreduce.TaskResult, error) {
	req := &taskReq{spec: spec, done: make(chan taskOutcome, 1), affine: worker}
	req.markEnqueued()
	p.mu.Lock()
	w := p.workers[worker]
	if p.closed || w == nil {
		p.mu.Unlock()
		p.shuffleLost.Add(1)
		return nil, &mapreduce.ShuffleLostError{
			Worker: worker, Reducer: spec.Task, Reason: "worker no longer attached",
		}
	}
	select {
	case w.affine <- req:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		p.shuffleLost.Add(1)
		return nil, &mapreduce.ShuffleLostError{
			Worker: worker, Reducer: spec.Task, Reason: "affinity queue saturated",
		}
	}
	out := <-req.done
	return out.res, out.err
}

// liveWorkers reports how many workers are currently attached.
func (p *pool) liveWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

// shufflePeers lists the attached workers that announced a shuffle-receiver
// endpoint, sorted by id so plans are stable for a given pool membership.
func (p *pool) shufflePeers() (ids, endpoints []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, w := range p.workers {
		if w.shuffleAddr != "" {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		endpoints = append(endpoints, p.workers[id].shuffleAddr)
	}
	return ids, endpoints
}

// frameOrErr is one read-loop delivery: a frame, or the read error that
// ended the stream.
type frameOrErr struct {
	env *envelope
	err error
}

// helloInfo is what awaitHello extracts from a worker's hello frame: its
// identity, shuffle endpoint, announced wire version, and the clock-offset
// estimate (worker clock − coordinator clock) from the hello's WallNanos
// sample. clockOK distinguishes a real estimate from an old build that sent
// no clock sample.
type helloInfo struct {
	id          string
	shuffleAddr string
	version     uint8
	clockOff    int64
	clockOK     bool
}

type workerHandle struct {
	id          string
	shuffleAddr string // the worker's shuffle-receiver endpoint, "" if none
	version     uint8  // wire version the worker's hello announced
	clockOff    int64  // estimated worker−coordinator clock offset (nanos)
	clockOK     bool   // whether clockOff is a real estimate
	conn        *frameConn
	closeConn   func()
	closeOnce   sync.Once
	seq         uint64
	frames      chan frameOrErr
	affine      chan *taskReq // tasks pinned to this worker (shuffle affinity)
	gone        chan struct{} // closed by workerGone; unblocks the read loop
}

// attach registers a connected worker (its hello already consumed, described
// by h) and starts its lease loop. closeConn force-closes the underlying
// stream or process when the worker is dropped or the pool drains.
func (p *pool) attach(h helloInfo, conn *frameConn, closeConn func()) {
	w := &workerHandle{
		id: h.id, shuffleAddr: h.shuffleAddr, conn: conn, closeConn: closeConn,
		version: h.version, clockOff: h.clockOff, clockOK: h.clockOK,
		frames: make(chan frameOrErr),
		// The affinity queue is deep enough for any realistic reducer count;
		// executeOn turns a saturated queue into a lost shuffle rather than
		// blocking the engine.
		affine: make(chan *taskReq, 1024),
		gone:   make(chan struct{}),
	}
	p.mu.Lock()
	p.live++
	// Latest registration wins a contended id; the previous holder keeps
	// running tasks from the shared queue but is no longer an affinity target.
	p.workers[w.id] = w
	p.wg.Add(1)
	p.mu.Unlock()
	go w.readLoop()
	go p.serveWorker(w)
}

// readLoop is the single reader of this worker's stream: it forwards frames
// (and the terminal read error) to whoever is waiting in do or drain, and
// unwinds when the worker is discarded.
func (w *workerHandle) readLoop() {
	for {
		env, err := w.conn.read()
		select {
		case w.frames <- frameOrErr{env, err}:
		case <-w.gone:
			return
		}
		if err != nil {
			return
		}
	}
}

// workerGone is called once per attached worker, when its lease loop ends.
// Removing the registry entry under the same lock executeOn enqueues under
// means every affine task either reached the queue before removal — and is
// failed by the drain below — or finds the worker missing; none are stranded.
func (p *pool) workerGone(w *workerHandle) {
	w.closeOnce.Do(w.closeConn)
	close(w.gone)
	p.mu.Lock()
	p.live--
	if p.workers[w.id] == w {
		delete(p.workers, w.id)
	}
	if p.live == 0 {
		// The last worker just died: fail everything still queued. No loop
		// remains to pick these up, and submit (which shares this lock)
		// rejects new work until another worker attaches — without this
		// drain, tasks queued before the death would hang forever.
		for {
			select {
			case req := <-p.queue:
				req.done <- taskOutcome{err: fmt.Errorf(
					"worker: no live workers left for %s task %d (all crashed before it ran)",
					req.spec.Phase, req.spec.Task)}
				continue
			default:
			}
			break
		}
	}
	p.mu.Unlock()
	for {
		select {
		case req := <-w.affine:
			p.shuffleLost.Add(1)
			req.done <- taskOutcome{err: &mapreduce.ShuffleLostError{
				Worker: w.id, Reducer: req.spec.Task, Reason: "worker died before its affine task ran",
			}}
		default:
			p.wg.Done()
			return
		}
	}
}

// serveWorker leases tasks to one worker until the pool closes or the
// worker fails. Any transport-level failure (broken pipe, lease expiry,
// malformed frame) is treated as a worker death: the in-flight task is
// reassigned and this worker is never used again. Task-level failures
// reported by a healthy worker are deterministic and fail the task
// immediately — retrying them would fail identically.
func (p *pool) serveWorker(w *workerHandle) {
	defer p.workerGone(w)
	for {
		var req *taskReq
		select {
		case <-p.quit:
			w.drain(p.cfg.LeaseTimeout)
			return
		case req = <-w.affine:
		case req = <-p.queue:
		}
		for _, b := range req.spec.Buckets {
			p.routedBucketBytes.Add(int64(len(b)))
		}
		res, taskErr, workerErr := w.do(req, p.cfg.LeaseTimeout)
		switch {
		case workerErr != nil:
			slog.Warn("worker: attempt failed, dropping worker",
				"worker", w.id, "job", req.spec.Job, "phase", req.spec.Phase,
				"task", req.spec.Task, "affine", req.affine != "", "err", workerErr)
			if req.affine != "" {
				// An affine task cannot move: no other worker holds its
				// peer-delivered buckets. Report the shuffle lost so the
				// engine replays it over the routed path.
				p.shuffleLost.Add(1)
				req.done <- taskOutcome{err: &mapreduce.ShuffleLostError{
					Worker: w.id, Reducer: req.spec.Task, Reason: workerErr.Error(),
				}}
				return
			}
			req.attempts = append(req.attempts, mapreduce.TaskAttempt{
				Worker: w.id, Err: workerErr.Error(),
			})
			p.retryOrFail(req)
			return
		case taskErr != nil:
			var lost *mapreduce.ShuffleLostError
			if errors.As(taskErr, &lost) {
				p.shuffleLost.Add(1)
			}
			req.done <- taskOutcome{err: taskErr}
		default:
			res.Worker = w.id
			res.FailedAttempts = req.attempts
			for _, b := range res.Buckets {
				p.routedBucketBytes.Add(int64(len(b)))
			}
			p.directBytes.Add(res.DirectBytes)
			req.done <- taskOutcome{res: res}
		}
	}
}

// retryOrFail re-enqueues a task whose attempt died, after backoff, unless
// its attempt budget is spent or no workers remain.
func (p *pool) retryOrFail(req *taskReq) {
	last := req.attempts[len(req.attempts)-1]
	if len(req.attempts) >= p.cfg.MaxAttempts {
		req.done <- taskOutcome{err: fmt.Errorf(
			"worker: %s task %d failed after %d attempts, last on %s: %s",
			req.spec.Phase, req.spec.Task, len(req.attempts), last.Worker, last.Err)}
		return
	}
	backoff := time.Duration(len(req.attempts)) * p.cfg.RetryBackoff
	// Requeue from a fresh goroutine: this one belongs to a dead worker
	// and must unwind so the pool's live count stays truthful.
	go func() {
		timer := time.NewTimer(backoff)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-p.quit:
			req.done <- taskOutcome{err: fmt.Errorf(
				"worker: pool closed while retrying %s task %d", req.spec.Phase, req.spec.Task)}
			return
		}
		if err := p.submit(req); err != nil {
			req.done <- taskOutcome{err: fmt.Errorf(
				"worker: cannot reassign %s task %d (attempt %d died on %s: %s): %w",
				req.spec.Phase, req.spec.Task, len(req.attempts), last.Worker, last.Err, err)}
		}
	}()
}

// do runs one attempt on the worker: send the task frame, then consume
// frames until the matching result, treating heartbeats as lease renewals.
// The returned taskErr is a deterministic task failure reported by a
// healthy worker; workerErr means the worker itself is gone (or silent past
// its lease) and the attempt should be reassigned.
func (w *workerHandle) do(req *taskReq, lease time.Duration) (res *mapreduce.TaskResult, taskErr, workerErr error) {
	w.seq++
	seq := w.seq
	spec := req.spec
	if spec.Trace != "" && w.version < traceMinVersion {
		// The worker predates the trace extensions. Its binary decoder
		// would reject the spec's trailing trace section, so send a
		// stripped copy (gob peers would merely ignore the fields, but one
		// rule for both codecs keeps the capability signal simple: the
		// hello version). The task runs fine — just untraced on this worker.
		stripped := *spec
		stripped.Trace, stripped.TraceRun, stripped.TraceParent = "", "", 0
		spec = &stripped
	}
	traced := req.spec.Trace != "" && !req.spec.Frozen
	var sentAt int64
	if traced {
		sentAt = time.Now().UnixNano()
	}
	if err := w.conn.write(&envelope{Kind: msgTask, Seq: seq, Spec: spec}); err != nil {
		return nil, nil, err
	}
	timer := time.NewTimer(lease)
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
			// Lease expired: the worker went silent mid-attempt. Close the
			// connection so its read loop unblocks, and reassign.
			w.closeOnce.Do(w.closeConn)
			return nil, nil, fmt.Errorf("lease expired after %v without heartbeat", lease)
		case f := <-w.frames:
			if f.err != nil {
				if f.err == io.EOF {
					return nil, nil, fmt.Errorf("worker exited mid-task")
				}
				return nil, nil, f.err
			}
			switch f.env.Kind {
			case msgHeartbeat:
				if !timer.Stop() {
					<-timer.C
				}
				timer.Reset(lease)
			case msgResult:
				if f.env.Seq != seq {
					return nil, nil, fmt.Errorf("result for task seq %d, want %d", f.env.Seq, seq)
				}
				if f.env.Err != "" {
					if f.env.ShuffleLost {
						// The worker is healthy but the attempt's peer
						// buckets are gone; surface the typed error so the
						// engine can fall back to the routed path.
						return nil, &mapreduce.ShuffleLostError{
							Worker: w.id, Reducer: req.spec.Task, Reason: f.env.Err,
						}, nil
					}
					return nil, fmt.Errorf("worker %s: %s", w.id, f.env.Err), nil
				}
				if f.env.Result == nil {
					return nil, nil, fmt.Errorf("result frame without payload")
				}
				if traced {
					// Coordinator-local attribution for the engine's child
					// spans: queue wait, send/receive stamps, and the
					// worker's hello clock-offset estimate.
					r := f.env.Result
					r.RecvAtNanos = time.Now().UnixNano()
					r.SentAtNanos = sentAt
					if req.enqueuedAt != 0 && sentAt > req.enqueuedAt {
						r.QueueNanos = sentAt - req.enqueuedAt
					}
					r.ClockOffsetNanos = w.clockOff
					r.ClockOffsetOK = w.clockOK
				}
				return f.env.Result, nil, nil
			default:
				return nil, nil, fmt.Errorf("unexpected %v frame while awaiting result", f.env.Kind)
			}
		}
	}
}

// drain asks an idle worker to exit and waits briefly for it to acknowledge
// by closing its end of the stream.
func (w *workerHandle) drain(wait time.Duration) {
	defer w.closeOnce.Do(w.closeConn)
	if err := w.conn.write(&envelope{Kind: msgDrain}); err != nil {
		return
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		select {
		case f := <-w.frames:
			if f.err != nil {
				return // stream closed: worker acknowledged the drain
			}
		case <-timer.C:
			return
		}
	}
}

// ShuffleStats reports where a pool's shuffle bucket bytes traveled — the
// observable half of the direct-shuffle optimization. On a healthy direct
// run RoutedBucketBytes is zero: no bucket payload ever crossed a
// coordinator frame, in either direction.
type ShuffleStats struct {
	// DirectBytes are wire bytes workers pushed edge-to-edge (shuffle frame
	// header + session + payload), bypassing the coordinator.
	DirectBytes int64
	// RoutedBucketBytes are bucket payload bytes the coordinator carried
	// inside task and result frames: the whole shuffle for routed backends,
	// only retained stragglers and fallback replays for direct ones.
	RoutedBucketBytes int64
	// Lost counts direct attempts that ended in a ShuffleLostError and fell
	// back to the routed path.
	Lost int64
}

func (p *pool) shuffleStats() ShuffleStats {
	return ShuffleStats{
		DirectBytes:       p.directBytes.Load(),
		RoutedBucketBytes: p.routedBucketBytes.Load(),
		Lost:              p.shuffleLost.Load(),
	}
}

// close drains the pool: no new tasks are accepted, every idle worker gets
// a drain frame, and the call returns when all lease loops have unwound.
func (p *pool) close() {
	p.mu.Lock()
	alreadyClosed := p.closed
	p.closed = true
	p.mu.Unlock()
	if !alreadyClosed {
		close(p.quit)
	}
	p.wg.Wait()
}
