package worker

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"repro/internal/mapreduce"
)

// The wire protocol: length-prefixed gob frames, each a single envelope.
// A fresh gob encoder per frame keeps frames self-contained (no stream
// state), so a coordinator can safely resynchronize after dropping a worker
// mid-frame and the same framing serves pipes and sockets alike.

// msgKind discriminates envelope frames.
type msgKind uint8

const (
	// msgHello is the first frame a worker sends: it announces the worker
	// id under which results and failed attempts are reported.
	msgHello msgKind = iota + 1
	// msgTask carries one task attempt, coordinator → worker.
	msgTask
	// msgResult answers a task frame (matching Seq), worker → coordinator.
	msgResult
	// msgHeartbeat keeps the worker's lease alive while it executes.
	msgHeartbeat
	// msgDrain asks the worker to finish up and exit cleanly.
	msgDrain
)

// envelope is one protocol frame. Only the fields relevant to Kind are set.
type envelope struct {
	Kind msgKind
	// ID is the worker id (hello frames).
	ID string
	// ShuffleAddr is the worker's shuffle-receiver endpoint (hello frames):
	// the address peer workers push this worker's reduce buckets to. Empty
	// when the worker cannot receive directly (stdio workers, direct shuffle
	// disabled); the coordinator then keeps that worker off shuffle plans.
	ShuffleAddr string
	// Seq correlates a result with its task frame.
	Seq uint64
	// Spec is the task attempt to execute (task frames).
	Spec *mapreduce.TaskSpec
	// Result is the executed attempt's outcome (result frames)...
	Result *mapreduce.TaskResult
	// ...or Err the reason it could not be produced. A non-empty Err is a
	// task-level failure (bad payload, unregistered job maker): it is
	// deterministic, so the coordinator fails the task instead of retrying.
	Err string
	// ShuffleLost marks an Err as a lost direct shuffle (result frames): the
	// peer-delivered buckets this reduce attempt needed never arrived or are
	// unreachable. Unlike other task errors it is recoverable — the
	// coordinator replays the buckets over the routed path.
	ShuffleLost bool
}

// maxFrameSize bounds a single frame, as a guard against a corrupted or
// malicious length prefix allocating unbounded memory. 1 GiB comfortably
// exceeds any real task payload.
const maxFrameSize = 1 << 30

// frameConn reads and writes envelope frames over an arbitrary byte stream.
// Writes are mutex-guarded so a worker's heartbeat ticker and its result
// writes can share the connection; reads have a single owner by design (the
// coordinator's per-worker receive loop, or the worker's serve loop).
type frameConn struct {
	r  io.Reader
	w  io.Writer
	mu sync.Mutex // guards w
}

func newFrameConn(r io.Reader, w io.Writer) *frameConn {
	return &frameConn{r: r, w: w}
}

// write sends one frame: 4-byte big-endian payload length, then the gob
// payload.
func (c *frameConn) write(env *envelope) error {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return fmt.Errorf("worker: encoding %v frame: %w", env.Kind, err)
	}
	frame := buf.Bytes()
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(frame); err != nil {
		return fmt.Errorf("worker: writing %v frame: %w", env.Kind, err)
	}
	return nil
}

// read receives the next frame. It returns io.EOF unwrapped when the stream
// ends cleanly between frames, so callers can distinguish a graceful close
// from a mid-frame cut.
func (c *frameConn) read() (*envelope, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(c.r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("worker: reading frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("worker: frame of %d bytes exceeds limit %d", n, maxFrameSize)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return nil, fmt.Errorf("worker: reading %d-byte frame: %w", n, err)
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&env); err != nil {
		return nil, fmt.Errorf("worker: decoding frame: %w", err)
	}
	return &env, nil
}

// String names the message kind in errors and logs.
func (k msgKind) String() string {
	switch k {
	case msgHello:
		return "hello"
	case msgTask:
		return "task"
	case msgResult:
		return "result"
	case msgHeartbeat:
		return "heartbeat"
	case msgDrain:
		return "drain"
	default:
		return fmt.Sprintf("msgKind(%d)", uint8(k))
	}
}
