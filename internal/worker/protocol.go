package worker

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/wire"
)

// The wire protocol: length-prefixed frames, each a single envelope. Two
// frame encodings share the stream, discriminated by the top bit of the
// length word (safe: maxFrameSize is 1<<30, so real lengths never set it):
//
//   - gob frames (bit clear) — the v0 format, one fresh gob encoder per
//     frame. Hello frames always use it, carrying the worker's announced
//     WireVersion; it remains the fallback for old peers and `-wire gob`.
//   - binary frames (bit set) — the hand-rolled codec (wire.go), used once
//     the coordinator has seen a hello with WireVersion ≥ 1. The worker
//     flips to binary sends upon receiving its first binary frame, so
//     negotiation costs no extra round trip.
//
// Both framings are self-contained per frame, so a coordinator can safely
// resynchronize after dropping a worker mid-frame and the same framing
// serves pipes and sockets alike.

// msgKind discriminates envelope frames.
type msgKind uint8

const (
	// msgHello is the first frame a worker sends: it announces the worker
	// id under which results and failed attempts are reported.
	msgHello msgKind = iota + 1
	// msgTask carries one task attempt, coordinator → worker.
	msgTask
	// msgResult answers a task frame (matching Seq), worker → coordinator.
	msgResult
	// msgHeartbeat keeps the worker's lease alive while it executes.
	msgHeartbeat
	// msgDrain asks the worker to finish up and exit cleanly.
	msgDrain
)

// envelope is one protocol frame. Only the fields relevant to Kind are set.
type envelope struct {
	Kind msgKind
	// WireVersion is the binary frame version the sender speaks (hello
	// frames; see wireVersion). Old builds neither set nor read it — gob
	// silently drops unknown fields, so their hellos decode here as
	// version 0 and stay on gob frames.
	WireVersion uint8
	// ID is the worker id (hello frames).
	ID string
	// ShuffleAddr is the worker's shuffle-receiver endpoint (hello frames):
	// the address peer workers push this worker's reduce buckets to. Empty
	// when the worker cannot receive directly (stdio workers, direct shuffle
	// disabled); the coordinator then keeps that worker off shuffle plans.
	ShuffleAddr string
	// WallNanos is the worker's wall clock when it sent its hello, in unix
	// nanoseconds. The coordinator subtracts its own receive time to get a
	// clock-offset estimate, used to align worker-side trace spans to the
	// coordinator's timeline. Zero from old builds (gob drops unknown
	// fields) means "unknown". Hello-only, so it needs no binary-frame
	// encoding — hellos always travel as gob.
	WallNanos int64
	// Seq correlates a result with its task frame.
	Seq uint64
	// Spec is the task attempt to execute (task frames).
	Spec *mapreduce.TaskSpec
	// Result is the executed attempt's outcome (result frames)...
	Result *mapreduce.TaskResult
	// ...or Err the reason it could not be produced. A non-empty Err is a
	// task-level failure (bad payload, unregistered job maker): it is
	// deterministic, so the coordinator fails the task instead of retrying.
	Err string
	// ShuffleLost marks an Err as a lost direct shuffle (result frames): the
	// peer-delivered buckets this reduce attempt needed never arrived or are
	// unreachable. Unlike other task errors it is recoverable — the
	// coordinator replays the buckets over the routed path.
	ShuffleLost bool
}

// maxFrameSize bounds a single frame, as a guard against a corrupted or
// malicious length prefix allocating unbounded memory. 1 GiB comfortably
// exceeds any real task payload — and leaves the length word's top bit free
// to mark binary frames.
const maxFrameSize = 1 << 30

// binaryFrameFlag marks a binary-codec frame in the length word.
const binaryFrameFlag = uint32(1) << 31

// FrameSizeError is the named error for a frame whose length prefix exceeds
// maxFrameSize — a corrupted stream or a hostile peer, never a real task.
// The pool treats it like any other stream failure: the worker is dropped
// and its in-flight task reassigned, because nothing after an oversized
// length prefix can be trusted.
type FrameSizeError struct {
	// Size is the length the prefix claimed.
	Size uint32
	// Max is the maxFrameSize limit it exceeded.
	Max uint32
}

// Error renders the violation.
func (e *FrameSizeError) Error() string {
	return fmt.Sprintf("worker: frame of %d bytes exceeds limit %d", e.Size, e.Max)
}

// FrameTruncatedError is the named error for a stream that ended mid-frame:
// the length prefix or payload was cut short. It wraps the underlying read
// error (usually io.ErrUnexpectedEOF). A clean close between frames is NOT
// a FrameTruncatedError — that surfaces as bare io.EOF.
type FrameTruncatedError struct {
	// Want is how many bytes the truncated read needed.
	Want int
	// Err is the underlying read error.
	Err error
}

// Error renders the truncation.
func (e *FrameTruncatedError) Error() string {
	return fmt.Sprintf("worker: stream cut mid-frame (wanted %d bytes): %v", e.Want, e.Err)
}

// Unwrap exposes the underlying read error for errors.Is.
func (e *FrameTruncatedError) Unwrap() error { return e.Err }

// frameConn reads and writes envelope frames over an arbitrary byte stream.
// Writes are mutex-guarded so a worker's heartbeat ticker and its result
// writes can share the connection; reads have a single owner by design (the
// coordinator's per-worker receive loop, or the worker's serve loop).
type frameConn struct {
	r  io.Reader
	w  io.Writer
	mu sync.Mutex // guards w
	// binary switches writes to the binary frame codec. The coordinator
	// sets it after a hello announcing wireVersion ≥ binaryMinVersion; the
	// worker side sets it upon receiving its first binary frame. Atomic
	// because the reader flips it while writers (heartbeat ticker) read it.
	binary atomic.Bool
	// measureDecode makes read record each frame's decode timing below.
	// Only the worker's serve loop sets it (tracing lifts the numbers into
	// a decode span when a traced spec asks for one); the coordinator's
	// read loops stay free of the extra clock reads.
	measureDecode bool
	// decodeStart/decodeDur/decodeBytes describe the most recent frame's
	// decode: when it began (unix nanos), how long it took, and the frame
	// payload size. Valid only between read calls on the single-owner read
	// side, which is exactly how the serve loop consumes them.
	decodeStart int64
	decodeDur   time.Duration
	decodeBytes int64
}

func newFrameConn(r io.Reader, w io.Writer) *frameConn {
	return &frameConn{r: r, w: w}
}

// write sends one frame: 4-byte big-endian payload length (top bit marking
// the binary codec), then the payload. Hello frames always go as gob — they
// carry the version negotiation itself.
func (c *frameConn) write(env *envelope) error {
	if c.binary.Load() && env.Kind != msgHello {
		return c.writeBinary(env)
	}
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return fmt.Errorf("worker: encoding %v frame: %w", env.Kind, err)
	}
	frame := buf.Bytes()
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(frame); err != nil {
		return fmt.Errorf("worker: writing %v frame: %w", env.Kind, err)
	}
	return nil
}

// writeBinary sends one binary-codec frame from a pooled scratch buffer —
// the buffer is fully flushed to the stream before it returns to the pool,
// so steady-state sends allocate nothing.
func (c *frameConn) writeBinary(env *envelope) error {
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	buf = appendEnvelope(buf, env)
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4)|binaryFrameFlag)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(buf); err != nil {
		return fmt.Errorf("worker: writing %v frame: %w", env.Kind, err)
	}
	return nil
}

// read receives the next frame, auto-detecting its encoding from the length
// word. It returns io.EOF unwrapped when the stream ends cleanly between
// frames, so callers can distinguish a graceful close from a mid-frame cut
// (*FrameTruncatedError). The payload buffer is freshly allocated per frame
// and ownership passes to the decoded envelope — decoded specs/results hold
// zero-copy views into it.
func (c *frameConn) read() (*envelope, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(c.r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, &FrameTruncatedError{Want: len(lenBuf), Err: err}
	}
	word := binary.BigEndian.Uint32(lenBuf[:])
	isBinary := word&binaryFrameFlag != 0
	n := word &^ binaryFrameFlag
	if n > maxFrameSize {
		return nil, &FrameSizeError{Size: n, Max: maxFrameSize}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return nil, &FrameTruncatedError{Want: int(n), Err: err}
	}
	var t0 time.Time
	if c.measureDecode {
		t0 = time.Now()
		c.decodeStart = t0.UnixNano()
		c.decodeBytes = int64(n)
	}
	if isBinary {
		env, err := decodeEnvelope(payload)
		if err != nil {
			return nil, fmt.Errorf("worker: decoding frame: %w", err)
		}
		if c.measureDecode {
			c.decodeDur = time.Since(t0)
		}
		// The peer speaks binary, so answering in kind is always safe:
		// sends on this connection switch over (no-op once flipped).
		c.binary.Store(true)
		return env, nil
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&env); err != nil {
		return nil, fmt.Errorf("worker: decoding frame: %w", err)
	}
	if c.measureDecode {
		c.decodeDur = time.Since(t0)
	}
	return &env, nil
}

// String names the message kind in errors and logs.
func (k msgKind) String() string {
	switch k {
	case msgHello:
		return "hello"
	case msgTask:
		return "task"
	case msgResult:
		return "result"
	case msgHeartbeat:
		return "heartbeat"
	case msgDrain:
		return "drain"
	default:
		return fmt.Sprintf("msgKind(%d)", uint8(k))
	}
}
