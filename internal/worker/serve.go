package worker

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"strconv"
	"time"

	"repro/internal/mapreduce"
)

// ChaosExitEnv, when set to n > 0 in a worker's environment, makes the
// worker exit (status 3) upon receiving its n-th task, before executing it.
// The crash-recovery tests use it to kill a worker mid-job at a
// deterministic point; the coordinator sees the stream die, reassigns the
// leased task and the job still completes correctly.
const ChaosExitEnv = "STRATA_WORKER_EXIT_AFTER"

// ErrChaosExit is returned by Serve when the ChaosExitEnv crash point
// fires. Process-based servers (ServeStdio callers) should exit non-zero on
// it; in-process servers just let the connection close, which the
// coordinator handles identically to a process death.
var ErrChaosExit = errors.New("worker: chaos exit triggered by " + ChaosExitEnv)

// ServeOptions configures one worker's serve loop. The zero value works:
// the id defaults to the environment's STRATA_WORKER_ID or "pid-<pid>".
type ServeOptions struct {
	// ID is the worker id announced in the hello frame; it tags results,
	// failed attempts, and trace spans.
	ID string
	// HeartbeatInterval is how often the worker writes keep-alive frames.
	// It must stay well under the coordinator's lease timeout. Default 3s.
	HeartbeatInterval time.Duration
	// ExitAfter is the chaos crash point (see ChaosExitEnv, which fills it
	// when zero): receiving the n-th task aborts the loop.
	ExitAfter int
	// RoutedShuffle keeps a TCP worker from starting a shuffle receiver, so
	// all its buckets travel through the coordinator. Stdio workers are
	// always routed (their only channel is the coordinator pipe).
	RoutedShuffle bool

	// shuffle is the worker's direct-shuffle receiver, created by ServeTCP
	// and announced in the hello frame.
	shuffle *shuffleReceiver
}

func (o ServeOptions) fill() ServeOptions {
	if o.ID == "" {
		o.ID = os.Getenv("STRATA_WORKER_ID")
	}
	if o.ID == "" {
		o.ID = "pid-" + strconv.Itoa(os.Getpid())
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 3 * time.Second
	}
	if o.ExitAfter == 0 {
		o.ExitAfter, _ = strconv.Atoi(os.Getenv(ChaosExitEnv))
	}
	return o
}

// Serve runs one worker over a byte stream: announce the hello, then
// execute task frames serially through mapreduce.ExecuteTask until the
// coordinator drains the worker or the stream closes. A heartbeat ticker
// keeps the coordinator's lease alive while tasks execute.
//
// Anything else writing to w corrupts the frame stream, so process workers
// must keep their logging on stderr.
func Serve(r io.Reader, w io.Writer, opts ServeOptions) error {
	opts = opts.fill()
	conn := newFrameConn(r, w)
	// The serve loop is the read side that wants per-frame decode timing:
	// traced specs lift it into a decode span.
	conn.measureDecode = true
	hello := &envelope{Kind: msgHello, ID: opts.ID, WallNanos: time.Now().UnixNano()}
	if !mapreduce.WireGob() {
		// Announce binary support; the coordinator answers with binary
		// frames and this connection flips over on the first one received.
		hello.WireVersion = wireVersion
	}
	if opts.shuffle != nil {
		hello.ShuffleAddr = opts.shuffle.addr()
	}
	if err := conn.write(hello); err != nil {
		return err
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(opts.HeartbeatInterval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				// A failed heartbeat means the coordinator is gone; the
				// serve loop's next read reports it, so ignore it here.
				_ = conn.write(&envelope{Kind: msgHeartbeat})
			}
		}
	}()

	received := 0
	for {
		env, err := conn.read()
		if err != nil {
			if err == io.EOF {
				return nil // coordinator closed the stream: clean exit
			}
			return err
		}
		switch env.Kind {
		case msgTask:
			received++
			if opts.ExitAfter > 0 && received >= opts.ExitAfter {
				slog.Warn("worker: chaos exit", "worker", opts.ID, "task_number", received)
				return ErrChaosExit
			}
			reply := &envelope{Kind: msgResult, Seq: env.Seq}
			var rec *spanRecorder
			if env.Spec != nil && env.Spec.Trace != "" {
				// The spec carries a trace context, which also proves the
				// coordinator speaks wire version ≥ 2 and will decode the
				// trailing span section of the result.
				rec = &spanRecorder{frozen: env.Spec.Frozen}
				rec.addMeasured(mapreduce.PhaseDecode, conn.decodeStart, conn.decodeDur, conn.decodeBytes)
			}
			if env.Spec == nil {
				reply.Err = "task frame without spec"
			} else if res, lost, err := executeSpec(env.Spec, opts.shuffle, rec); err != nil {
				reply.Err = err.Error()
				reply.ShuffleLost = lost
			} else {
				if rec != nil {
					res.Spans = rec.spans
				}
				reply.Result = res
			}
			if err := conn.write(reply); err != nil {
				return err
			}
		case msgDrain:
			return nil
		case msgHeartbeat:
			// Coordinators don't send these today; tolerate them anyway.
		default:
			return fmt.Errorf("worker %s: unexpected %v frame", opts.ID, env.Kind)
		}
	}
}

// spanRecorder accumulates a traced attempt's worker-side measurements in
// deterministic emission order: decode, then recv (direct reduce), then
// exec, then push (direct map). A nil recorder is valid and records nothing,
// so untraced specs pay only nil checks; under a frozen coordinator clock
// the spans keep their identity (phase, bytes) but zero every time field.
type spanRecorder struct {
	frozen bool
	spans  []mapreduce.WorkerSpan
}

// start returns the measurement origin for add (zero when not recording).
func (rec *spanRecorder) start() time.Time {
	if rec == nil || rec.frozen {
		return time.Time{}
	}
	return time.Now()
}

// add records one span measured from t0 to now.
func (rec *spanRecorder) add(phase string, t0 time.Time, bytes int64) {
	if rec == nil {
		return
	}
	ws := mapreduce.WorkerSpan{Phase: phase, Bytes: bytes}
	if !rec.frozen {
		ws.Start = t0.UnixNano()
		ws.Dur = time.Since(t0)
	}
	rec.spans = append(rec.spans, ws)
}

// addMeasured records one span whose timing was captured elsewhere (the
// frame decode, measured inside frameConn.read).
func (rec *spanRecorder) addMeasured(phase string, startNanos int64, dur time.Duration, bytes int64) {
	if rec == nil {
		return
	}
	ws := mapreduce.WorkerSpan{Phase: phase, Bytes: bytes}
	if !rec.frozen {
		ws.Start = startNanos
		ws.Dur = dur
	}
	rec.spans = append(rec.spans, ws)
}

// executeSpec runs one task attempt, wrapping mapreduce.ExecuteTask with the
// direct-shuffle data plane when the spec carries a ShufflePlan: map attempts
// push their buckets straight to the reducers' endpoints, reduce attempts
// pull their missing buckets from this worker's receiver. lost=true flags a
// recoverable lost shuffle (the coordinator replays over the routed path);
// every other error is a deterministic task failure. rec, when non-nil,
// collects the attempt's worker-side spans.
func executeSpec(spec *mapreduce.TaskSpec, recv *shuffleReceiver, rec *spanRecorder) (res *mapreduce.TaskResult, lost bool, err error) {
	if spec.Shuffle == nil {
		t0 := rec.start()
		res, err = mapreduce.ExecuteTask(spec)
		if err == nil {
			rec.add(mapreduce.PhaseExec, t0, 0)
		}
		return res, false, err
	}
	switch spec.Phase {
	case "map":
		t0 := rec.start()
		res, err = mapreduce.ExecuteTask(spec)
		if err != nil {
			return nil, false, err
		}
		rec.add(mapreduce.PhaseExec, t0, 0)
		p0 := rec.start()
		deliverBuckets(spec, res)
		rec.add(mapreduce.PhasePush, p0, res.DirectBytes)
		return res, false, nil
	case "reduce":
		return executeDirectReduce(spec, recv, rec)
	default:
		t0 := rec.start()
		res, err = mapreduce.ExecuteTask(spec)
		if err == nil {
			rec.add(mapreduce.PhaseExec, t0, 0)
		}
		return res, false, err
	}
}

// deliverBuckets pushes a map attempt's buckets to their reducers' endpoints,
// grouped so each destination worker is dialed once per attempt. Delivered
// buckets are nilled out of the result — the coordinator must not carry them —
// and their wire bytes accumulate in DirectBytes. A failed push (dead or
// unreachable endpoint) retains the undelivered payloads in the result, so
// the coordinator keeps them as the routed fallback for exactly those buckets.
func deliverBuckets(spec *mapreduce.TaskSpec, res *mapreduce.TaskResult) {
	plan := spec.Shuffle
	groups := make(map[string][]int)
	var order []string
	for r := range res.Buckets {
		if r >= len(plan.Endpoints) || plan.Endpoints[r] == "" {
			continue
		}
		ep := plan.Endpoints[r]
		if _, ok := groups[ep]; !ok {
			order = append(order, ep)
		}
		groups[ep] = append(groups[ep], r)
	}
	for _, ep := range order {
		sent, n, err := shuffleSendGroup(ep, plan.Session, spec.Task, groups[ep], res.Buckets)
		res.DirectBytes += int64(n)
		for _, r := range sent {
			res.Buckets[r] = nil
		}
		if err != nil {
			slog.Warn("worker: direct bucket push failed, retaining for routed fallback",
				"job", spec.Job, "map_task", spec.Task, "endpoint", ep,
				"delivered", len(sent), "retained", len(groups[ep])-len(sent), "err", err)
		}
	}
}

// executeDirectReduce waits for the reduce attempt's peer-delivered buckets,
// then runs the task core on the completed bucket set. Buckets the
// coordinator shipped inline (retained by a map attempt whose push failed)
// are used as-is; only true holes are awaited.
func executeDirectReduce(spec *mapreduce.TaskSpec, recv *shuffleReceiver, rec *spanRecorder) (*mapreduce.TaskResult, bool, error) {
	plan := spec.Shuffle
	if recv == nil {
		return nil, true, fmt.Errorf("worker: no shuffle receiver for direct reduce task %d", spec.Task)
	}
	buckets := make([][]byte, spec.NumMapTasks)
	copy(buckets, spec.Buckets)
	var need []int
	for t := range buckets {
		if len(buckets[t]) == 0 {
			need = append(need, t)
		}
	}
	var recvWall time.Duration
	if len(need) > 0 {
		start := time.Now()
		got, err := recv.receive(plan.Session, spec.Task, need, plan.Timeout())
		if err != nil {
			return nil, true, err
		}
		if !spec.Frozen {
			recvWall = time.Since(start)
		}
		var recvBytes int64
		for t, payload := range got {
			buckets[t] = payload
			recvBytes += int64(len(payload))
		}
		rec.addMeasured(mapreduce.PhaseRecv, start.UnixNano(), recvWall, recvBytes)
	}
	filled := *spec
	filled.Buckets = buckets
	filled.Shuffle = nil
	t0 := rec.start()
	res, err := mapreduce.ExecuteTask(&filled)
	if err != nil {
		return nil, false, err
	}
	rec.add(mapreduce.PhaseExec, t0, 0)
	res.Counters.RecvWall = recvWall
	recv.forget(plan.Session, spec.Task)
	return res, false, nil
}

// ServeStdio serves a subprocess worker over stdin/stdout — the loop the
// "strata worker -stdio" subcommand runs. The exit status is 0 for a clean
// drain, 3 for a chaos exit, 1 otherwise; it never returns.
func ServeStdio(opts ServeOptions) {
	err := Serve(os.Stdin, os.Stdout, opts)
	switch {
	case err == nil:
		os.Exit(0)
	case errors.Is(err, ErrChaosExit):
		os.Exit(3)
	default:
		slog.Error("worker: serve failed", "err", err)
		os.Exit(1)
	}
}

// ServeTCP dials a TCPExecutor's address and serves until drained. It is
// the loop behind "strata worker -connect addr" and TCPExecutor.SpawnLocal.
// Unless opts.RoutedShuffle is set, the worker starts an embedded shuffle
// receiver and announces its endpoint in the hello frame, which makes it
// eligible for direct worker-to-worker bucket delivery.
func ServeTCP(addr string, opts ServeOptions) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("worker: connecting to coordinator %s: %w", addr, err)
	}
	defer conn.Close()
	if !opts.RoutedShuffle {
		recv, err := newShuffleReceiver()
		if err != nil {
			slog.Warn("worker: direct shuffle unavailable, serving routed", "err", err)
		} else {
			defer recv.close()
			opts.shuffle = recv
		}
	}
	return Serve(conn, conn, opts)
}
