package worker

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"strconv"
	"time"

	"repro/internal/mapreduce"
)

// ChaosExitEnv, when set to n > 0 in a worker's environment, makes the
// worker exit (status 3) upon receiving its n-th task, before executing it.
// The crash-recovery tests use it to kill a worker mid-job at a
// deterministic point; the coordinator sees the stream die, reassigns the
// leased task and the job still completes correctly.
const ChaosExitEnv = "STRATA_WORKER_EXIT_AFTER"

// ErrChaosExit is returned by Serve when the ChaosExitEnv crash point
// fires. Process-based servers (ServeStdio callers) should exit non-zero on
// it; in-process servers just let the connection close, which the
// coordinator handles identically to a process death.
var ErrChaosExit = errors.New("worker: chaos exit triggered by " + ChaosExitEnv)

// ServeOptions configures one worker's serve loop. The zero value works:
// the id defaults to the environment's STRATA_WORKER_ID or "pid-<pid>".
type ServeOptions struct {
	// ID is the worker id announced in the hello frame; it tags results,
	// failed attempts, and trace spans.
	ID string
	// HeartbeatInterval is how often the worker writes keep-alive frames.
	// It must stay well under the coordinator's lease timeout. Default 3s.
	HeartbeatInterval time.Duration
	// ExitAfter is the chaos crash point (see ChaosExitEnv, which fills it
	// when zero): receiving the n-th task aborts the loop.
	ExitAfter int
}

func (o ServeOptions) fill() ServeOptions {
	if o.ID == "" {
		o.ID = os.Getenv("STRATA_WORKER_ID")
	}
	if o.ID == "" {
		o.ID = "pid-" + strconv.Itoa(os.Getpid())
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 3 * time.Second
	}
	if o.ExitAfter == 0 {
		o.ExitAfter, _ = strconv.Atoi(os.Getenv(ChaosExitEnv))
	}
	return o
}

// Serve runs one worker over a byte stream: announce the hello, then
// execute task frames serially through mapreduce.ExecuteTask until the
// coordinator drains the worker or the stream closes. A heartbeat ticker
// keeps the coordinator's lease alive while tasks execute.
//
// Anything else writing to w corrupts the frame stream, so process workers
// must keep their logging on stderr.
func Serve(r io.Reader, w io.Writer, opts ServeOptions) error {
	opts = opts.fill()
	conn := newFrameConn(r, w)
	if err := conn.write(&envelope{Kind: msgHello, ID: opts.ID}); err != nil {
		return err
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(opts.HeartbeatInterval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				// A failed heartbeat means the coordinator is gone; the
				// serve loop's next read reports it, so ignore it here.
				_ = conn.write(&envelope{Kind: msgHeartbeat})
			}
		}
	}()

	received := 0
	for {
		env, err := conn.read()
		if err != nil {
			if err == io.EOF {
				return nil // coordinator closed the stream: clean exit
			}
			return err
		}
		switch env.Kind {
		case msgTask:
			received++
			if opts.ExitAfter > 0 && received >= opts.ExitAfter {
				slog.Warn("worker: chaos exit", "worker", opts.ID, "task_number", received)
				return ErrChaosExit
			}
			reply := &envelope{Kind: msgResult, Seq: env.Seq}
			if env.Spec == nil {
				reply.Err = "task frame without spec"
			} else if res, err := mapreduce.ExecuteTask(env.Spec); err != nil {
				reply.Err = err.Error()
			} else {
				reply.Result = res
			}
			if err := conn.write(reply); err != nil {
				return err
			}
		case msgDrain:
			return nil
		case msgHeartbeat:
			// Coordinators don't send these today; tolerate them anyway.
		default:
			return fmt.Errorf("worker %s: unexpected %v frame", opts.ID, env.Kind)
		}
	}
}

// ServeStdio serves a subprocess worker over stdin/stdout — the loop the
// "strata worker -stdio" subcommand runs. The exit status is 0 for a clean
// drain, 3 for a chaos exit, 1 otherwise; it never returns.
func ServeStdio(opts ServeOptions) {
	err := Serve(os.Stdin, os.Stdout, opts)
	switch {
	case err == nil:
		os.Exit(0)
	case errors.Is(err, ErrChaosExit):
		os.Exit(3)
	default:
		slog.Error("worker: serve failed", "err", err)
		os.Exit(1)
	}
}

// ServeTCP dials a TCPExecutor's address and serves until drained. It is
// the loop behind "strata worker -connect addr" and TCPExecutor.SpawnLocal.
func ServeTCP(addr string, opts ServeOptions) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("worker: connecting to coordinator %s: %w", addr, err)
	}
	defer conn.Close()
	return Serve(conn, conn, opts)
}
