package worker

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"repro/internal/mapreduce"
)

func sampleHistogram() *mapreduce.Histogram {
	h := &mapreduce.Histogram{}
	for _, v := range []int64{0, 1, 5, 1 << 20, -3} {
		h.Observe(v)
	}
	return h
}

// sampleEnvelopes covers every envelope kind with representative payloads —
// the table for round-trip tests and the fuzz seed corpus.
func sampleEnvelopes() []*envelope {
	return []*envelope{
		{Kind: msgHello, ID: "tcp-1", ShuffleAddr: "127.0.0.1:4242", WireVersion: wireVersion},
		{Kind: msgHeartbeat},
		{Kind: msgDrain},
		{Kind: msgTask, Seq: 7, Spec: &mapreduce.TaskSpec{
			Job: "mr-sqe", Maker: "mr-sqe", Config: []byte(`{"q":1}`),
			Phase: "map", Task: 3, Seed: -42, NumReducers: 2,
			Split: []byte{1, 2, 3}, NumMapTasks: 6, Frozen: true,
		}},
		{Kind: msgTask, Seq: 8, Spec: &mapreduce.TaskSpec{
			Job: "mr-sqe", Maker: "mr-sqe", Phase: "reduce", Task: 0,
			NumReducers: 2, NumMapTasks: 3,
			Buckets:     [][]byte{{0x01, 0x00}, nil, {0x01, 0x02, 0x09}},
			CollectKeys: true,
			Shuffle: &mapreduce.ShufflePlan{
				Session:   "job#1",
				Workers:   []string{"tcp-1", "tcp-2"},
				Endpoints: []string{"127.0.0.1:1", "127.0.0.1:2"},
				TimeoutMs: 15000,
			},
		}},
		{Kind: msgResult, Seq: 7, Result: &mapreduce.TaskResult{
			Buckets:     [][]byte{{0x01, 0x00}, nil},
			DirectBytes: 123,
			Output:      []byte{0x00, 0xFF},
			Counters: mapreduce.TaskCounters{
				In: 100, Out: 50, CombineIn: 100, CombineOut: 50, Groups: 2,
				BucketSizes: []int64{10, 20},
				MapWall:     3 * time.Millisecond, CombineWall: time.Microsecond,
				RecvWall: time.Second,
			},
			Custom: map[string]*mapreduce.Histogram{"reservoir_size": sampleHistogram()},
			PerKey: map[string]mapreduce.KeyStats{
				"s000000": {Records: 3, Output: 1},
				"s000001": {Records: 4, Output: 2},
			},
			Worker:         "sp-0",
			FailedAttempts: []mapreduce.TaskAttempt{{Worker: "sp-1", Err: "lease expired"}},
		}},
		{Kind: msgResult, Seq: 9, Err: "no such maker", ShuffleLost: true},
	}
}

// TestEnvelopeBinaryRoundTrip: the binary codec must reproduce every
// envelope kind exactly as a gob round trip does.
func TestEnvelopeBinaryRoundTrip(t *testing.T) {
	for _, env := range sampleEnvelopes() {
		buf := appendEnvelope(nil, env)
		got, err := decodeEnvelope(buf)
		if err != nil {
			t.Fatalf("%v frame: %v", env.Kind, err)
		}
		// WireVersion travels only in the (gob) hello, not the binary body.
		want := *env
		want.WireVersion = 0
		if !reflect.DeepEqual(&want, got) {
			t.Errorf("%v frame round trip:\nwant %+v\n got %+v", env.Kind, &want, got)
		}
	}
}

// TestEnvelopeBinaryMatchesGob cross-checks the two codecs through the
// frameConn layer: the same envelope sent over a gob conn and a binary conn
// must decode to the same value.
func TestEnvelopeBinaryMatchesGob(t *testing.T) {
	for _, env := range sampleEnvelopes() {
		if env.Kind == msgHello {
			continue // hello always rides gob; nothing to cross-check
		}
		decodeVia := func(binary bool) *envelope {
			var buf bytes.Buffer
			c := newFrameConn(&buf, &buf)
			c.binary.Store(binary)
			if err := c.write(env); err != nil {
				t.Fatal(err)
			}
			got, err := c.read()
			if err != nil {
				t.Fatal(err)
			}
			return got
		}
		viaGob, viaBinary := decodeVia(false), decodeVia(true)
		// gob's nil/empty slice conflations are canonicalized by comparing
		// through the binary side's rendering.
		if !reflect.DeepEqual(appendEnvelope(nil, viaGob), appendEnvelope(nil, viaBinary)) {
			t.Errorf("%v frame decodes differently:\ngob    %+v\nbinary %+v", env.Kind, viaGob, viaBinary)
		}
	}
}

// TestFrameConnNegotiation: a conn flips to binary sends after receiving a
// binary frame, and never before.
func TestFrameConnNegotiation(t *testing.T) {
	var aToB, bToA bytes.Buffer
	a := newFrameConn(&bToA, &aToB)
	b := newFrameConn(&aToB, &bToA)

	if err := b.write(&envelope{Kind: msgHeartbeat}); err != nil { // b still gob
		t.Fatal(err)
	}
	if _, err := a.read(); err != nil {
		t.Fatal(err)
	}
	if a.binary.Load() {
		t.Fatal("gob frame flipped the receiver to binary")
	}

	a.binary.Store(true) // coordinator side: hello announced wireVersion
	if err := a.write(&envelope{Kind: msgTask, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.read(); err != nil {
		t.Fatal(err)
	}
	if !b.binary.Load() {
		t.Fatal("binary frame did not flip the receiver's send mode")
	}
}

// TestFrameErrorsNamed: oversized length prefixes and mid-frame cuts
// surface as the named error types, and a clean close stays bare io.EOF.
func TestFrameErrorsNamed(t *testing.T) {
	oversize := []byte{0x40, 0x00, 0x00, 0x01} // 1 GiB + 1, top bit clear
	_, err := newFrameConn(bytes.NewReader(oversize), io.Discard).read()
	var fse *FrameSizeError
	if !errors.As(err, &fse) {
		t.Errorf("oversized frame: %v, want *FrameSizeError", err)
	} else if fse.Size != maxFrameSize+1 {
		t.Errorf("FrameSizeError.Size = %d, want %d", fse.Size, maxFrameSize+1)
	}

	short := []byte{0x00, 0x00, 0x00, 0x10, 0xAA} // claims 16 bytes, has 1
	_, err = newFrameConn(bytes.NewReader(short), io.Discard).read()
	var fte *FrameTruncatedError
	if !errors.As(err, &fte) {
		t.Errorf("truncated frame: %v, want *FrameTruncatedError", err)
	} else if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("FrameTruncatedError does not unwrap to io.ErrUnexpectedEOF: %v", err)
	}

	cutPrefix := []byte{0x00, 0x00} // stream dies inside the length word
	_, err = newFrameConn(bytes.NewReader(cutPrefix), io.Discard).read()
	if !errors.As(err, &fte) {
		t.Errorf("cut length prefix: %v, want *FrameTruncatedError", err)
	}

	_, err = newFrameConn(bytes.NewReader(nil), io.Discard).read()
	if err != io.EOF {
		t.Errorf("clean close: %v, want bare io.EOF", err)
	}
}

// TestDecodeEnvelopeCorruptRejected: flipped bytes and truncations of valid
// frames decode to clean errors, never a panic.
func TestDecodeEnvelopeCorruptRejected(t *testing.T) {
	for _, env := range sampleEnvelopes() {
		buf := appendEnvelope(nil, env)
		for cut := 0; cut < len(buf); cut += 2 {
			if _, err := decodeEnvelope(buf[:cut]); err == nil {
				// Some prefixes of a valid frame are themselves valid frames
				// (trailing zero-valued fields); Done() catches the rest.
				t.Logf("%v frame: prefix %d/%d decoded cleanly", env.Kind, cut, len(buf))
			}
		}
		for i := range buf {
			mut := append([]byte(nil), buf...)
			mut[i] ^= 0xFF
			_, _ = decodeEnvelope(mut) // must not panic
		}
	}
}

func FuzzDecodeEnvelope(f *testing.F) {
	for _, env := range sampleEnvelopes() {
		f.Add(appendEnvelope(nil, env))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := decodeEnvelope(data)
		if err == nil {
			// Valid decodes must re-encode decodable (not necessarily
			// byte-identical: nil/empty maps conflate).
			if _, err := decodeEnvelope(appendEnvelope(nil, env)); err != nil {
				t.Fatalf("re-encode of valid decode failed: %v", err)
			}
		}
	})
}
