package worker

import (
	"fmt"

	"repro/internal/mapreduce"
	"repro/internal/wire"
)

// wireVersion is the binary frame format this build speaks. Version 0 is
// gob-only (pre-codec builds, and builds running with STRATA_WIRE=gob); a
// worker announces its version in the (always-gob) hello frame, and the
// coordinator switches the connection to binary frames only when the worker
// announced ≥ binaryMinVersion — old peers on either side interoperate via
// gob unchanged. Version 2 adds the trace-context extensions: the
// specHasTrace section of TaskSpec frames, the trailing worker-span section
// of TaskResult frames, and the WallNanos clock sample in hellos. The
// extensions are backward compatible on the read side (flag- or
// tail-gated), but a version-1 binary peer rejects unknown trailing bytes,
// so the pool strips trace fields from specs bound for workers that
// announced < traceMinVersion — those workers simply run untraced.
const (
	wireVersion      = 2
	binaryMinVersion = 1
	traceMinVersion  = 2
)

// envelope flag bits in the binary frame encoding.
const (
	envShuffleLost = 1 << 0
	envHasSpec     = 1 << 1
	envHasResult   = 1 << 2
)

// appendEnvelope appends the binary form of one frame body: kind byte, flag
// byte, identity strings, seq, error text, then the spec/result bodies when
// present. Hello frames never take this path (they are the negotiation
// carrier and stay gob), but the codec handles every kind anyway so the
// fuzz corpus covers the full envelope space.
func appendEnvelope(buf []byte, env *envelope) []byte {
	buf = append(buf, byte(env.Kind))
	var flags byte
	if env.ShuffleLost {
		flags |= envShuffleLost
	}
	if env.Spec != nil {
		flags |= envHasSpec
	}
	if env.Result != nil {
		flags |= envHasResult
	}
	buf = append(buf, flags)
	buf = wire.AppendString(buf, env.ID)
	buf = wire.AppendString(buf, env.ShuffleAddr)
	buf = wire.AppendUvarint(buf, env.Seq)
	buf = wire.AppendString(buf, env.Err)
	if env.Spec != nil {
		buf = mapreduce.AppendTaskSpec(buf, env.Spec)
	}
	if env.Result != nil {
		buf = mapreduce.AppendTaskResult(buf, env.Result)
	}
	return buf
}

// decodeEnvelope decodes one binary frame body. Byte-slice fields of the
// embedded spec/result alias payload, so the caller must hand over
// ownership of the buffer (the read path allocates a fresh buffer per
// frame for exactly this reason).
func decodeEnvelope(payload []byte) (*envelope, error) {
	r := wire.NewReader(payload)
	env := &envelope{}
	env.Kind = msgKind(r.Byte())
	flags := r.Byte()
	env.ShuffleLost = flags&envShuffleLost != 0
	env.ID = r.String()
	env.ShuffleAddr = r.String()
	env.Seq = r.Uvarint()
	env.Err = r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if flags&envHasSpec != 0 {
		spec, err := mapreduce.ReadTaskSpec(r)
		if err != nil {
			return nil, err
		}
		env.Spec = spec
	}
	if flags&envHasResult != 0 {
		res, err := mapreduce.ReadTaskResult(r)
		if err != nil {
			return nil, err
		}
		env.Result = res
	}
	if env.Kind < msgHello || env.Kind > msgDrain {
		return nil, fmt.Errorf("worker: frame with unknown kind %d: %w", env.Kind, wire.ErrCorrupt)
	}
	return env, r.Done()
}
