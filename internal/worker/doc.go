// Package worker is the distributed execution runtime behind the mapreduce
// Cluster API: a coordinator-side task pool plus worker processes that lease
// task attempts, execute them through the shared task cores, and stream the
// results back.
//
// Two executors implement mapreduce.Executor:
//
//   - SubprocessExecutor starts a fixed pool of child processes (by default
//     re-executing the current binary with "worker -stdio") and speaks the
//     wire protocol over their stdin/stdout pipes.
//   - TCPExecutor listens on a socket; workers — local goroutines via
//     SpawnLocal, or external processes via "strata worker -connect" — dial
//     in and register with a hello frame.
//
// Both share the same coordinator pool (pool.go): tasks queue centrally,
// idle workers lease them, heartbeats keep leases alive, and a worker that
// crashes or goes silent past the lease timeout forfeits its attempt — the
// task is re-enqueued with backoff, up to a bounded attempt budget, and the
// real failed attempts surface in the engine's trace as failed spans tagged
// with the worker id.
//
// The protocol (protocol.go) is deliberately small: length-prefixed gob
// frames carrying hello, task, result, heartbeat and drain messages. Task
// payloads reuse the engine's shuffle encoding, and workers execute specs
// through mapreduce.ExecuteTask, so a job's output — and, under a frozen
// clock, its span file — is byte-identical no matter which backend ran it.
package worker
