package worker

import (
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"repro/internal/mapreduce"
)

// TCPConfig configures a TCPExecutor.
type TCPConfig struct {
	// Config tunes lease, heartbeat and retry behavior of the pool.
	Config
	// Addr is the listen address. Default "127.0.0.1:0" (an ephemeral
	// loopback port, read back via Addr()).
	Addr string
}

// TCPExecutor runs task attempts on workers that register over TCP: each
// worker dials the coordinator's listen address, sends a hello frame, and
// leases tasks over the connection. Workers can be external processes
// ("strata worker -connect <addr>") or in-process goroutines (SpawnLocal).
// It implements mapreduce.Executor.
type TCPExecutor struct {
	pool *pool
	cfg  TCPConfig
	ln   net.Listener

	spawned sync.WaitGroup // SpawnLocal serve loops
	spawnN  int
}

// NewTCPExecutor starts listening and accepting worker registrations. It
// returns immediately: use SpawnLocal and/or AwaitWorkers to ensure
// capacity before submitting work — Execute fails fast while no worker is
// attached.
func NewTCPExecutor(cfg TCPConfig) (*TCPExecutor, error) {
	cfg.Config = cfg.Config.fill()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("worker: listening on %s: %w", cfg.Addr, err)
	}
	e := &TCPExecutor{pool: newPool(cfg.Config), cfg: cfg, ln: ln}
	go e.acceptLoop()
	return e, nil
}

func (e *TCPExecutor) acceptLoop() {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go func() {
			fc := newFrameConn(conn, conn)
			id, err := awaitHello(fc, e.cfg.LeaseTimeout)
			if err != nil {
				slog.Warn("worker: rejecting connection", "remote", conn.RemoteAddr(), "err", err)
				conn.Close()
				return
			}
			slog.Debug("worker: registered", "worker", id, "remote", conn.RemoteAddr())
			e.pool.attach(id, fc, func() { conn.Close() })
		}()
	}
}

// Addr is the coordinator's listen address, for workers to dial.
func (e *TCPExecutor) Addr() string { return e.ln.Addr().String() }

// SpawnLocal starts n in-process workers, each dialing the coordinator
// over a real loopback socket and serving until drained. The full protocol
// — registration, heartbeats, leases — is exercised; only process
// isolation is skipped.
func (e *TCPExecutor) SpawnLocal(n int) {
	addr := e.Addr()
	for i := 0; i < n; i++ {
		e.spawnN++
		id := fmt.Sprintf("tcp-%d", e.spawnN)
		e.spawned.Add(1)
		go func() {
			defer e.spawned.Done()
			if err := ServeTCP(addr, ServeOptions{
				ID:                id,
				HeartbeatInterval: e.cfg.HeartbeatInterval,
			}); err != nil {
				slog.Warn("worker: local tcp worker exited", "worker", id, "err", err)
			}
		}()
	}
}

// AwaitWorkers blocks until at least n workers are attached, or fails
// after timeout. Run it before the first job when worker placement matters
// (chaos tests, benchmarks), so tasks don't all land on the early joiners.
func (e *TCPExecutor) AwaitWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if live := e.pool.liveWorkers(); live >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("worker: %d of %d workers registered within %v",
				e.pool.liveWorkers(), n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Name reports "tcp".
func (e *TCPExecutor) Name() string { return "tcp" }

// Execute runs one task attempt on the pool, transparently reassigning it
// if its worker dies.
func (e *TCPExecutor) Execute(spec *mapreduce.TaskSpec) (*mapreduce.TaskResult, error) {
	return e.pool.execute(spec)
}

// Close drains attached workers, stops accepting registrations and waits
// for local workers to unwind.
func (e *TCPExecutor) Close() error {
	e.pool.close()
	err := e.ln.Close()
	e.spawned.Wait()
	return err
}
