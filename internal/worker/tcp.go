package worker

import (
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mapreduce"
)

// TCPConfig configures a TCPExecutor.
type TCPConfig struct {
	// Config tunes lease, heartbeat and retry behavior of the pool.
	Config
	// Addr is the listen address. Default "127.0.0.1:0" (an ephemeral
	// loopback port, read back via Addr()).
	Addr string
	// RoutedShuffle disables direct worker-to-worker shuffle planning:
	// PlanShuffle returns nil and every bucket travels through the
	// coordinator, as before the direct data plane existed. Useful as an
	// operational escape hatch and for routed-vs-direct comparisons.
	RoutedShuffle bool
	// ShuffleTimeout bounds how long a direct reduce attempt waits for its
	// peer-delivered buckets before reporting a lost shuffle. Default: the
	// pool's LeaseTimeout.
	ShuffleTimeout time.Duration
}

// TCPExecutor runs task attempts on workers that register over TCP: each
// worker dials the coordinator's listen address, sends a hello frame, and
// leases tasks over the connection. Workers can be external processes
// ("strata worker -connect <addr>") or in-process goroutines (SpawnLocal).
// It implements mapreduce.Executor.
type TCPExecutor struct {
	pool *pool
	cfg  TCPConfig
	ln   net.Listener

	spawned sync.WaitGroup // SpawnLocal serve loops
	spawnN  int
	planN   atomic.Int64 // shuffle sessions handed out
}

// NewTCPExecutor starts listening and accepting worker registrations. It
// returns immediately: use SpawnLocal and/or AwaitWorkers to ensure
// capacity before submitting work — Execute fails fast while no worker is
// attached.
func NewTCPExecutor(cfg TCPConfig) (*TCPExecutor, error) {
	cfg.Config = cfg.Config.fill()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("worker: listening on %s: %w", cfg.Addr, err)
	}
	e := &TCPExecutor{pool: newPool(cfg.Config), cfg: cfg, ln: ln}
	go e.acceptLoop()
	return e, nil
}

func (e *TCPExecutor) acceptLoop() {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go func() {
			fc := newFrameConn(conn, conn)
			h, err := awaitHello(fc, e.cfg.LeaseTimeout)
			if err != nil {
				slog.Warn("worker: rejecting connection", "remote", conn.RemoteAddr(), "err", err)
				conn.Close()
				return
			}
			if h.version >= binaryMinVersion && !mapreduce.WireGob() {
				fc.binary.Store(true)
			}
			slog.Debug("worker: registered", "worker", h.id,
				"remote", conn.RemoteAddr(), "shuffle_addr", h.shuffleAddr, "wire_version", h.version)
			e.pool.attach(h, fc, func() { conn.Close() })
		}()
	}
}

// Addr is the coordinator's listen address, for workers to dial.
func (e *TCPExecutor) Addr() string { return e.ln.Addr().String() }

// SpawnLocal starts n in-process workers, each dialing the coordinator
// over a real loopback socket and serving until drained. The full protocol
// — registration, heartbeats, leases, the direct-shuffle data plane — is
// exercised; only process isolation is skipped.
func (e *TCPExecutor) SpawnLocal(n int) {
	e.SpawnLocalOpts(n, ServeOptions{})
}

// SpawnLocalOpts is SpawnLocal with explicit serve options: chaos tests use
// it to plant ExitAfter on a single worker, and comparisons can force
// RoutedShuffle per worker. ID and HeartbeatInterval are filled in.
func (e *TCPExecutor) SpawnLocalOpts(n int, opts ServeOptions) {
	addr := e.Addr()
	opts.HeartbeatInterval = e.cfg.HeartbeatInterval
	opts.RoutedShuffle = opts.RoutedShuffle || e.cfg.RoutedShuffle
	for i := 0; i < n; i++ {
		e.spawnN++
		id := fmt.Sprintf("tcp-%d", e.spawnN)
		e.spawned.Add(1)
		go func() {
			o := opts
			o.ID = id
			defer e.spawned.Done()
			if err := ServeTCP(addr, o); err != nil {
				slog.Warn("worker: local tcp worker exited", "worker", id, "err", err)
			}
		}()
	}
}

// AwaitWorkers blocks until at least n workers are attached, or fails
// after timeout. Run it before the first job when worker placement matters
// (chaos tests, benchmarks), so tasks don't all land on the early joiners.
func (e *TCPExecutor) AwaitWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if live := e.pool.liveWorkers(); live >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("worker: %d of %d workers registered within %v",
				e.pool.liveWorkers(), n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Name reports "tcp".
func (e *TCPExecutor) Name() string { return "tcp" }

// Execute runs one task attempt on the pool, transparently reassigning it
// if its worker dies.
func (e *TCPExecutor) Execute(spec *mapreduce.TaskSpec) (*mapreduce.TaskResult, error) {
	return e.pool.execute(spec)
}

// ExecuteOn runs one attempt pinned to the named worker (shuffle affinity).
// It implements mapreduce.DirectShuffler: a dead or unreachable worker
// yields a *mapreduce.ShuffleLostError, never a cross-worker reassignment.
func (e *TCPExecutor) ExecuteOn(worker string, spec *mapreduce.TaskSpec) (*mapreduce.TaskResult, error) {
	return e.pool.executeOn(worker, spec)
}

// PlanShuffle assigns a job run's reducers round-robin over the attached
// shuffle-capable workers and stamps the plan with a fresh session, so
// back-to-back runs on one pool never mix buckets. It returns nil — meaning
// "use the routed path" — when direct shuffle is disabled or no attached
// worker announced a receiver endpoint.
func (e *TCPExecutor) PlanShuffle(job string, numReducers int) *mapreduce.ShufflePlan {
	if e.cfg.RoutedShuffle || numReducers <= 0 {
		return nil
	}
	ids, endpoints := e.pool.shufflePeers()
	if len(ids) == 0 {
		return nil
	}
	timeout := e.cfg.ShuffleTimeout
	if timeout <= 0 {
		timeout = e.cfg.LeaseTimeout
	}
	plan := &mapreduce.ShufflePlan{
		Session:   fmt.Sprintf("%s#%d", job, e.planN.Add(1)),
		Workers:   make([]string, numReducers),
		Endpoints: make([]string, numReducers),
		TimeoutMs: timeout.Milliseconds(),
	}
	for r := 0; r < numReducers; r++ {
		plan.Workers[r] = ids[r%len(ids)]
		plan.Endpoints[r] = endpoints[r%len(ids)]
	}
	return plan
}

// LiveWorkers reports how many workers are attached; the engine's shuffle
// retry policy uses it to stop retrying once every sender is gone.
func (e *TCPExecutor) LiveWorkers() int { return e.pool.liveWorkers() }

// ShuffleStats reports where this executor's shuffle bytes traveled. On a
// healthy direct run RoutedBucketBytes is zero — the coordinator carried no
// bucket payloads at all.
func (e *TCPExecutor) ShuffleStats() ShuffleStats { return e.pool.shuffleStats() }

// Close drains attached workers, stops accepting registrations and waits
// for local workers to unwind.
func (e *TCPExecutor) Close() error {
	e.pool.close()
	err := e.ln.Close()
	e.spawned.Wait()
	return err
}
