package worker_test

import (
	"testing"
	"time"

	"repro/internal/worker"
)

// Probe: all workers crash while tasks are still queued.
func TestProbeAllWorkersDieWithQueuedTasks(t *testing.T) {
	splits := testPopulation(t)
	exec := newSubprocess(t, 1, func(i int) []string {
		return []string{worker.ChaosExitEnv + "=1"}
	})
	defer exec.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		c := testCluster(exec)
		_, _, _ = runSQEerr(t, c, splits)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("job hung: queued tasks never failed after all workers died")
	}
}
