package worker

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"

	"repro/internal/mapreduce"
)

// SubprocessConfig configures a SubprocessExecutor.
type SubprocessConfig struct {
	// Config tunes lease, heartbeat and retry behavior of the pool.
	Config
	// Workers is the number of child processes to start. Default 2.
	Workers int
	// Command is the worker command line; default re-executes the current
	// binary as "worker -stdio", which is correct for the strata CLI and
	// for test binaries with a matching helper-process hook.
	Command []string
	// ExtraEnv, when non-nil, returns extra environment entries for the
	// i-th worker (appended to os.Environ()). Chaos tests use it to plant
	// ChaosExitEnv on a single worker.
	ExtraEnv func(i int) []string
}

// SubprocessExecutor runs task attempts on a fixed pool of child worker
// processes, speaking the frame protocol over their stdio pipes. It
// implements mapreduce.Executor.
type SubprocessExecutor struct {
	pool *pool
	cfg  SubprocessConfig
	// procs is fixed at construction; index i is the i-th spawned worker.
	procs []*workerProc
}

type workerProc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
}

// NewSubprocessExecutor starts the worker processes and waits for every
// hello before returning, so the first Execute call finds the whole pool
// attached. Any spawn or handshake failure tears down what was started.
func NewSubprocessExecutor(cfg SubprocessConfig) (*SubprocessExecutor, error) {
	cfg.Config = cfg.Config.fill()
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if len(cfg.Command) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("worker: resolving own executable: %w", err)
		}
		cfg.Command = []string{exe, "worker", "-stdio"}
	}
	e := &SubprocessExecutor{pool: newPool(cfg.Config), cfg: cfg}
	for i := 0; i < cfg.Workers; i++ {
		if err := e.spawn(i); err != nil {
			e.Close()
			return nil, err
		}
	}
	return e, nil
}

func (e *SubprocessExecutor) spawn(i int) error {
	cmd := exec.Command(e.cfg.Command[0], e.cfg.Command[1:]...)
	cmd.Env = append(os.Environ(), fmt.Sprintf("STRATA_WORKER_ID=sp-%d", i))
	if mapreduce.WireGob() {
		// The escape hatch must cover payload encodings too, and workers
		// encode payloads themselves — propagate the coordinator's setting
		// even when it was flipped at runtime (the CLI's -wire flag) rather
		// than inherited from the environment.
		cmd.Env = append(cmd.Env, "STRATA_WIRE=gob")
	}
	if e.cfg.ExtraEnv != nil {
		cmd.Env = append(cmd.Env, e.cfg.ExtraEnv(i)...)
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return fmt.Errorf("worker sp-%d: %w", i, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("worker sp-%d: %w", i, err)
	}
	cmd.Stderr = os.Stderr // worker logs pass through; stdout is protocol-only
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("worker sp-%d: starting %q: %w", i, e.cfg.Command[0], err)
	}
	proc := &workerProc{cmd: cmd, stdin: stdin}
	e.procs = append(e.procs, proc)
	conn := newFrameConn(stdout, stdin)
	h, err := awaitHello(conn, e.cfg.LeaseTimeout)
	if err != nil {
		return fmt.Errorf("worker sp-%d: %w", i, err)
	}
	if h.version >= binaryMinVersion && !mapreduce.WireGob() {
		conn.binary.Store(true)
	}
	// Stdio workers never announce a shuffle receiver (their only channel is
	// the coordinator pipe), so this executor always shuffles routed.
	h.shuffleAddr = ""
	e.pool.attach(h, conn, func() {
		// Closing stdin EOFs the worker's serve loop; a healthy worker
		// exits on its own, a hung one is reaped (and killed) by Close.
		// Closing stdout too unblocks the pool's read loop before the
		// process is reaped (Wait invalidates the pipe).
		stdin.Close()
		stdout.Close()
	})
	return nil
}

// awaitHello reads the worker's hello frame, bounded by timeout. It returns
// the announced worker identity: id, shuffle-receiver endpoint ("" for
// routed-only workers), the binary wire version the worker speaks (0 for
// gob-only peers — old builds, or workers running with STRATA_WIRE=gob), and
// a clock-offset estimate from the hello's wall-clock sample (clockOK false
// when the worker predates WallNanos). The estimate folds the hello's
// one-way transit time into the offset, which is fine for its only use —
// aligning trace spans — since transit is microseconds on the loopback and
// pipe transports this protocol runs over.
func awaitHello(conn *frameConn, timeout time.Duration) (helloInfo, error) {
	type helloOrErr struct {
		env *envelope
		err error
	}
	ch := make(chan helloOrErr, 1)
	go func() {
		env, err := conn.read()
		ch <- helloOrErr{env, err}
	}()
	select {
	case <-time.After(timeout):
		return helloInfo{}, fmt.Errorf("timed out after %v waiting for hello", timeout)
	case h := <-ch:
		if h.err != nil {
			return helloInfo{}, fmt.Errorf("reading hello: %w", h.err)
		}
		if h.env.Kind != msgHello {
			return helloInfo{}, fmt.Errorf("expected hello, got %v frame", h.env.Kind)
		}
		info := helloInfo{
			id:          h.env.ID,
			shuffleAddr: h.env.ShuffleAddr,
			version:     h.env.WireVersion,
		}
		if h.env.WallNanos != 0 {
			info.clockOff = h.env.WallNanos - time.Now().UnixNano()
			info.clockOK = true
		}
		return info, nil
	}
}

// Name reports "subprocess".
func (e *SubprocessExecutor) Name() string { return "subprocess" }

// Execute runs one task attempt on the pool, transparently reassigning it
// if its worker dies.
func (e *SubprocessExecutor) Execute(spec *mapreduce.TaskSpec) (*mapreduce.TaskResult, error) {
	return e.pool.execute(spec)
}

// LiveWorkers reports how many worker processes are attached; the engine's
// shuffle retry policy uses it to stop retrying once every sender is gone.
func (e *SubprocessExecutor) LiveWorkers() int { return e.pool.liveWorkers() }

// ShuffleStats reports where this executor's shuffle bytes traveled. A
// subprocess pool always shuffles through the coordinator, so DirectBytes
// stays zero and RoutedBucketBytes counts the whole shuffle.
func (e *SubprocessExecutor) ShuffleStats() ShuffleStats { return e.pool.shuffleStats() }

// Kill force-kills the i-th worker process — a chaos hook for tests that
// need a worker to die at a point of their choosing.
func (e *SubprocessExecutor) Kill(i int) error {
	if i < 0 || i >= len(e.procs) {
		return fmt.Errorf("worker: no subprocess %d", i)
	}
	return e.procs[i].cmd.Process.Kill()
}

// Close drains the pool and reaps every worker process, killing any that
// has not exited within the lease timeout.
func (e *SubprocessExecutor) Close() error {
	e.pool.close()
	for _, proc := range e.procs {
		waitOrKill(proc.cmd, e.cfg.LeaseTimeout)
	}
	return nil
}

func waitOrKill(cmd *exec.Cmd, timeout time.Duration) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Exit status is uninteresting: drained workers exit 0, killed or
		// crashed ones don't, and the pool already accounted the failures.
		_ = cmd.Wait()
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		<-done
	}
}
