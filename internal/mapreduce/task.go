package mapreduce

import (
	"strconv"
	"time"
)

// This file holds the backend-independent task cores. The in-process engine
// (engine.go) and remote workers (via the registry in registry.go) both
// execute map and reduce attempts through these two functions; sharing the
// implementation — same seeding, same combine ordering, same partitioning,
// same per-key reduce RNG — is what keeps job output byte-identical across
// execution backends.

// Grouper is the emission sink a BatchMapper writes into. Emit is the exact
// equivalent of the per-record emit closure; Intern/Append split that into a
// one-time key registration and a per-record append, so a batch mapper that
// caches the interned index pays no map probe on the per-record path.
//
// Intern registers the key immediately (position in first-seen order, exactly
// as if Emit had delivered its first value), so callers must only intern a
// key when a value for it follows at once — interning speculatively would
// create an empty group and change combine/shuffle input.
type Grouper[K comparable, V any] struct {
	groups *keyGroups[K, V]
	out    int64
}

// Emit delivers one pair, identically to the per-record map emit.
func (g *Grouper[K, V]) Emit(k K, v V) {
	g.groups.add(k, v)
	g.out++
}

// Intern returns the dense group index of k, registering the key at its
// first-seen position. A value must be Appended immediately after a first
// Intern of a key.
func (g *Grouper[K, V]) Intern(k K) int {
	if i, ok := g.groups.index[k]; ok {
		return i
	}
	i := len(g.groups.lists)
	g.groups.index[k] = i
	g.groups.keyOrder = append(g.groups.keyOrder, k)
	g.groups.lists = append(g.groups.lists, make([]V, 0, 4))
	return i
}

// InternSized is Intern with a capacity hint for the key's value list: a
// batch mapper that has counted a key's values allocates the list exactly
// once instead of doubling it up from nothing.
func (g *Grouper[K, V]) InternSized(k K, capacity int) int {
	if i, ok := g.groups.index[k]; ok {
		return i
	}
	if capacity < 4 {
		capacity = 4
	}
	i := len(g.groups.lists)
	g.groups.index[k] = i
	g.groups.keyOrder = append(g.groups.keyOrder, k)
	g.groups.lists = append(g.groups.lists, make([]V, 0, capacity))
	return i
}

// Append delivers one value to a previously Interned key.
func (g *Grouper[K, V]) Append(idx int, v V) {
	g.groups.lists[idx] = append(g.groups.lists[idx], v)
	g.out++
}

// mapTaskRun is everything one map-task execution produced: per-reducer
// buckets, counters, custom histograms, and — when a clock was supplied —
// the offsets at which the map and combine stages finished.
type mapTaskRun[K comparable, V any] struct {
	buckets                        [][]Pair[K, V]
	in, out, combineIn, combineOut int64
	custom                         map[string]*Histogram
	mapDone, combineDone           time.Duration
}

// execMapTask runs the map (and optional combine) stage of one task over its
// split and partitions the output into per-reducer buckets. elapsed supplies
// stage-boundary timestamps for tracing and may be nil when nobody is
// watching (untraced runs, or remote attempts under a frozen clock).
func execMapTask[I any, K comparable, V any, O any](
	job *Job[I, K, V, O], seed int64, split []I, task, numReducers int,
	elapsed func() time.Duration,
) mapTaskRun[K, V] {
	var run mapTaskRun[K, V]
	id := strconv.Itoa(task)
	ctx := newTaskContext(job.Name, "map", task, taskSeed(seed, "map", id))
	ctx.observe = histObserver(&run.custom)
	// Buffer map output per key, preserving key first-seen order for
	// deterministic combiner invocation order.
	groups := newKeyGroups[K, V](len(split))
	if job.BatchMapper != nil {
		// Whole-split fast path: the batch mapper promises the same emission
		// stream as Mapper, so counters and grouping come out identical.
		g := &Grouper[K, V]{groups: groups}
		job.BatchMapper.MapSplit(ctx, split, g)
		run.in = int64(len(split))
		run.out = g.out
	} else {
		emit := func(k K, v V) {
			groups.add(k, v)
			run.out++
		}
		for i := range split {
			run.in++
			job.Mapper.Map(ctx, split[i], emit)
		}
	}
	if elapsed != nil {
		run.mapDone = elapsed()
	}

	buckets := make([][]Pair[K, V], numReducers)
	// Pre-cap each bucket near its expected share of this task's pairs so the
	// per-pair append path rarely grows: combiners typically emit about one
	// pair per key, the plain path forwards every map output.
	bucketCap := len(groups.keyOrder)/numReducers + 1
	if job.Combiner == nil {
		bucketCap = int(run.out)/numReducers + 1
	}
	for r := range buckets {
		buckets[r] = make([]Pair[K, V], 0, bucketCap)
	}
	if job.Combiner != nil {
		// Deterministic combine order: sort keys canonically so the task RNG
		// consumption is independent of map emission order.
		names := groups.sortByName(job.keyString)
		cctx := newTaskContext(job.Name, "combine", task, taskSeed(seed, "combine", id))
		cctx.observe = ctx.observe
		for i, k := range groups.keyOrder {
			vs := groups.lists[i]
			run.combineIn += int64(len(vs))
			p := job.partitionByName(k, names[i], numReducers)
			job.Combiner.Combine(cctx, k, vs, func(v V) {
				run.combineOut++
				buckets[p] = append(buckets[p], Pair[K, V]{k, v})
			})
		}
	} else {
		for i, k := range groups.keyOrder {
			p := job.partition(k, numReducers)
			for _, v := range groups.lists[i] {
				buckets[p] = append(buckets[p], Pair[K, V]{k, v})
			}
		}
	}
	if elapsed != nil {
		run.combineDone = elapsed()
	}
	run.buckets = buckets
	return run
}

// groupPairs concatenates the task-ordered bucket list of one reducer and
// groups it by key. Value order within a key is (task index, emission order):
// deterministic, so a parallel grouping is byte-identical to a serial one.
func groupPairs[K comparable, V any](parts [][]Pair[K, V]) *keyGroups[K, V] {
	var total int
	for _, pairs := range parts {
		total += len(pairs)
	}
	groups := newKeyGroups[K, V](total)
	for _, pairs := range parts {
		for i := range pairs {
			groups.add(pairs[i].Key, pairs[i].Value)
		}
	}
	return groups
}

// reduceTaskRun is everything one reduce-task execution produced.
type reduceTaskRun[O any] struct {
	out    []O
	inRecs int64
	custom map[string]*Histogram
	perKey map[string]KeyStats
}

// execReduceTask reduces one reducer's groups in canonical key order. groups
// must already be sorted by sortByName and names aligned with its key order
// (the names feed the per-key reduce seeds without re-rendering). collectKeys
// asks for per-key (per-stratum) input/output counters.
func execReduceTask[I any, K comparable, V any, O any](
	job *Job[I, K, V, O], seed int64, groups *keyGroups[K, V], names []string,
	task int, collectKeys bool,
) reduceTaskRun[O] {
	var run reduceTaskRun[O]
	emit := func(o O) { run.out = append(run.out, o) }
	// One context per reducer task, reseeded per key: the lazy source makes
	// the reseed a word store, where a fresh context per key paid three
	// allocations. Reduce code only sees ctx during its call.
	ctx := newTaskContext(job.Name, "reduce", task, 0)
	ctx.observe = histObserver(&run.custom)
	if collectKeys {
		run.perKey = make(map[string]KeyStats, len(groups.keyOrder))
	}
	for i, k := range groups.keyOrder {
		// Per-key RNG so the reduction of a key is reproducible no matter
		// which reducer task it lands on.
		ctx.Rand.Seed(taskSeed(seed, "reduce", names[i]))
		vs := groups.lists[i]
		run.inRecs += int64(len(vs))
		before := len(run.out)
		job.Reducer.Reduce(ctx, k, vs, emit)
		if collectKeys {
			ks := run.perKey[names[i]]
			ks.Records += int64(len(vs))
			ks.Output += int64(len(run.out) - before)
			run.perKey[names[i]] = ks
		}
	}
	return run
}
