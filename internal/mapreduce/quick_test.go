package mapreduce

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

// TestQuickCountingInvariant is a property test over the whole engine: for
// random inputs, random split boundaries, random cluster sizes and an
// optional combiner, a counting job always returns exactly the input
// multiset's counts.
func TestQuickCountingInvariant(t *testing.T) {
	f := func(seed int64, slavesRaw, splitsRaw uint8, withCombiner bool) bool {
		rng := rand.New(rand.NewSource(seed))
		slaves := int(slavesRaw)%6 + 1
		numSplits := int(splitsRaw)%7 + 1

		// Random input: values in a small key space so groups form.
		n := rng.Intn(500)
		values := make([]int, n)
		truth := map[int]int64{}
		for i := range values {
			values[i] = rng.Intn(13)
			truth[values[i]]++
		}
		// Random contiguous split boundaries.
		splits := make([][]int, numSplits)
		start := 0
		for s := 0; s < numSplits; s++ {
			end := start + rng.Intn(n-start+1)
			if s == numSplits-1 {
				end = n
			}
			splits[s] = values[start:end]
			start = end
		}

		job := &Job[int, int, int64, wcOut]{
			Name: "quick-count",
			Seed: seed,
			Mapper: MapperFunc[int, int, int64](func(_ *TaskContext, v int, emit func(int, int64)) {
				emit(v, 1)
			}),
			Reducer: ReducerFunc[int, int64, wcOut](func(_ *TaskContext, k int, vs []int64, emit func(wcOut)) {
				var sum int64
				for _, v := range vs {
					sum += v
				}
				emit(wcOut{strconv.Itoa(k), sum})
			}),
			KeyString: func(k int) string { return strconv.Itoa(k) },
		}
		if withCombiner {
			job.Combiner = CombinerFunc[int, int64](func(_ *TaskContext, _ int, vs []int64, emit func(int64)) {
				var sum int64
				for _, v := range vs {
					sum += v
				}
				emit(sum)
			})
		}
		cluster := &Cluster{Slaves: slaves, SlotsPerSlave: 1, Cost: ZeroCostModel()}
		res, err := Run(cluster, job, splits)
		if err != nil {
			return false
		}
		if len(res.Output) != len(truth) {
			return false
		}
		for _, out := range res.Output {
			k, _ := strconv.Atoi(out.Word)
			if truth[k] != out.Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
