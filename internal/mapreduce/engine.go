package mapreduce

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Result is the outcome of a job run: output records (in deterministic
// order: by reducer index, then key order within the reducer) and metrics.
type Result[O any] struct {
	Output  []O
	Metrics Metrics
}

// mapTaskOutput is what one map task contributes to one reducer.
type mapTaskOutput[K comparable, V any] struct {
	pairs []Pair[K, V]
}

// Run executes the job over the input splits on the cluster. Each split is
// one map task. The error is non-nil only for configuration problems; user
// code panics propagate.
func Run[I any, K comparable, V any, O any](c *Cluster, job *Job[I, K, V, O], splits [][]I) (*Result[O], error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if job.Mapper == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no mapper", job.Name)
	}
	if job.Reducer == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no reducer", job.Name)
	}
	numReducers := job.NumReducers
	if numReducers <= 0 {
		numReducers = c.Slaves
	}

	start := time.Now()
	var met Metrics
	met.Job = job.Name
	met.MapTasks = len(splits)
	met.ReduceTasks = numReducers

	// ---- Map phase (with per-task combine) ----
	type mapCounters struct {
		in, out, combineIn, combineOut int64
	}
	perTask := make([][]mapTaskOutput[K, V], len(splits)) // [task][reducer]
	taskCounts := make([]mapCounters, len(splits))

	runParallel(len(splits), c.workers(), func(task int) {
		ctx := newTaskContext(job.Name, "map", task, taskSeed(job.Seed, "map", fmt.Sprint(task)))
		// Buffer map output per key, preserving key first-seen order for
		// deterministic combiner invocation order.
		groups := make(map[K][]V)
		var keyOrder []K
		var cnt mapCounters
		emit := func(k K, v V) {
			if _, seen := groups[k]; !seen {
				keyOrder = append(keyOrder, k)
			}
			groups[k] = append(groups[k], v)
			cnt.out++
		}
		for i := range splits[task] {
			cnt.in++
			job.Mapper.Map(ctx, splits[task][i], emit)
		}

		buckets := make([]mapTaskOutput[K, V], numReducers)
		if job.Combiner != nil {
			// Deterministic combine order: sort keys canonically so the
			// task RNG consumption is independent of map emission order.
			sort.Slice(keyOrder, func(i, j int) bool {
				return job.keyString(keyOrder[i]) < job.keyString(keyOrder[j])
			})
			cctx := newTaskContext(job.Name, "combine", task, taskSeed(job.Seed, "combine", fmt.Sprint(task)))
			for _, k := range keyOrder {
				vs := groups[k]
				cnt.combineIn += int64(len(vs))
				p := job.partition(k, numReducers)
				job.Combiner.Combine(cctx, k, vs, func(v V) {
					cnt.combineOut++
					buckets[p].pairs = append(buckets[p].pairs, Pair[K, V]{k, v})
				})
			}
		} else {
			for _, k := range keyOrder {
				p := job.partition(k, numReducers)
				for _, v := range groups[k] {
					buckets[p].pairs = append(buckets[p].pairs, Pair[K, V]{k, v})
				}
			}
		}
		perTask[task] = buckets
		taskCounts[task] = cnt
	})

	mapDurations := make([]time.Duration, len(splits))
	for t, cnt := range taskCounts {
		met.MapInputRecords += cnt.in
		met.MapOutputRecords += cnt.out
		met.CombineInputRecs += cnt.combineIn
		met.CombineOutputRecs += cnt.combineOut
		base := c.Cost.TaskOverhead +
			time.Duration(cnt.in)*c.Cost.MapPerRecord +
			time.Duration(cnt.combineIn)*c.Cost.CombinePerRecord
		plan, err := c.Faults.plan("map", t)
		if err != nil {
			return nil, fmt.Errorf("job %q: %w", job.Name, err)
		}
		met.MapAttempts += int64(plan.attempts)
		mapDurations[t] = time.Duration(float64(base) * plan.factor)
	}
	met.SimulatedMap = makespan(mapDurations, c.Slots())

	// ---- Shuffle ----
	// For each reducer, concatenate task buckets in task order, then group
	// by key. Value order within a key is (task index, emission order):
	// deterministic. With a Transport installed, buckets travel serialized
	// (and, for TCPTransport, over real sockets) and ShuffleBytes are wire
	// bytes; otherwise they are estimated from the in-memory pairs.
	reducerInput := make([]map[K][]V, numReducers)
	reducerKeyOrder := make([][]K, numReducers)
	var shuffleRecords, shuffleBytes int64

	perReducerPairs := make([][][]Pair[K, V], numReducers) // [reducer][task order]
	if c.NewTransport != nil {
		transport, err := c.NewTransport()
		if err != nil {
			return nil, fmt.Errorf("job %q: %w", job.Name, err)
		}
		defer transport.Close()
		for t := range perTask {
			for r := 0; r < numReducers; r++ {
				payload, err := encodeBucket(perTask[t][r].pairs)
				if err != nil {
					return nil, err
				}
				n, err := transport.Send(t, r, payload)
				if err != nil {
					return nil, fmt.Errorf("job %q: %w", job.Name, err)
				}
				shuffleBytes += int64(n)
			}
		}
		for r := 0; r < numReducers; r++ {
			payloads, err := transport.Receive(r, len(splits))
			if err != nil {
				return nil, fmt.Errorf("job %q: %w", job.Name, err)
			}
			for _, payload := range payloads {
				pairs, err := decodeBucket[K, V](payload)
				if err != nil {
					return nil, err
				}
				perReducerPairs[r] = append(perReducerPairs[r], pairs)
			}
		}
	} else {
		for r := 0; r < numReducers; r++ {
			for t := range perTask {
				pairs := perTask[t][r].pairs
				perReducerPairs[r] = append(perReducerPairs[r], pairs)
				for _, p := range pairs {
					shuffleBytes += int64(approxSize(p.Key) + approxSize(p.Value))
				}
			}
		}
	}
	for r := 0; r < numReducers; r++ {
		groups := make(map[K][]V)
		var order []K
		for _, pairs := range perReducerPairs[r] {
			for _, p := range pairs {
				if _, seen := groups[p.Key]; !seen {
					order = append(order, p.Key)
				}
				groups[p.Key] = append(groups[p.Key], p.Value)
				shuffleRecords++
			}
		}
		// Deterministic reduce order within the reducer.
		sort.Slice(order, func(i, j int) bool {
			return job.keyString(order[i]) < job.keyString(order[j])
		})
		reducerInput[r] = groups
		reducerKeyOrder[r] = order
	}
	met.ShuffleRecords = shuffleRecords
	met.ShuffleBytes = shuffleBytes
	met.SimulatedShuffle = time.Duration(shuffleBytes) * c.Cost.ShufflePerByte

	// ---- Reduce phase ----
	outputs := make([][]O, numReducers)
	reduceCounts := make([]int64, numReducers)
	runParallel(numReducers, c.workers(), func(r int) {
		var out []O
		var inRecs int64
		for _, k := range reducerKeyOrder[r] {
			// Per-key RNG so the reduction of a key is reproducible no
			// matter which reducer task it lands on.
			ctx := newTaskContext(job.Name, "reduce", r, taskSeed(job.Seed, "reduce", job.keyString(k)))
			vs := reducerInput[r][k]
			inRecs += int64(len(vs))
			job.Reducer.Reduce(ctx, k, vs, func(o O) { out = append(out, o) })
		}
		outputs[r] = out
		reduceCounts[r] = inRecs
	})

	reduceDurations := make([]time.Duration, numReducers)
	var final []O
	for r := 0; r < numReducers; r++ {
		met.ReduceInputGroups += int64(len(reducerKeyOrder[r]))
		met.ReduceInputRecs += reduceCounts[r]
		met.OutputRecords += int64(len(outputs[r]))
		base := c.Cost.TaskOverhead + time.Duration(reduceCounts[r])*c.Cost.ReducePerRecord
		plan, err := c.Faults.plan("reduce", r)
		if err != nil {
			return nil, fmt.Errorf("job %q: %w", job.Name, err)
		}
		met.ReduceAttempts += int64(plan.attempts)
		reduceDurations[r] = time.Duration(float64(base) * plan.factor)
		final = append(final, outputs[r]...)
	}
	met.SimulatedReduce = makespan(reduceDurations, c.Slots())
	met.WallTime = time.Since(start)

	return &Result[O]{Output: final, Metrics: met}, nil
}

// runParallel runs fn(0..n-1) on at most `workers` goroutines and waits.
func runParallel(n, workers int, fn func(int)) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
