package mapreduce

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// nonPortableFallbacks counts jobs that were asked to run on a remote
// executor but silently stayed in-process because they carry no (Maker,
// Config) registration — bespoke closure jobs like RunKeyed and the CPS
// dealing/limit classifiers. The counter makes the fallback visible to
// operators (exported via NonPortableFallbacks and the strata debug vars)
// alongside the per-job warning log.
var nonPortableFallbacks atomic.Int64

// NonPortableFallbacks reports how many jobs fell back to in-process
// execution because they were not portable to the configured remote executor.
func NonPortableFallbacks() int64 { return nonPortableFallbacks.Load() }

// Result is the outcome of a job run: output records (in deterministic
// order: by reducer index, then key order within the reducer) and metrics.
type Result[O any] struct {
	Output  []O
	Metrics Metrics
}

// keyGroups accumulates values per key in first-seen key order with one map
// lookup per record: the map stores only an index into the parallel slices,
// so the per-record path is a read-probe plus a slice append (no map write
// after a key's first record). This is the grouping structure of both the
// map-side combine input and the reduce-side shuffle output.
type keyGroups[K comparable, V any] struct {
	index    map[K]int
	keyOrder []K
	lists    [][]V
}

func newKeyGroups[K comparable, V any](sizeHint int) *keyGroups[K, V] {
	// Cap the pre-size: the record count bounds the distinct-key count but
	// can exceed it by orders of magnitude (e.g. a naive shuffle of every
	// tuple under a handful of stratum keys), and an oversized table costs
	// more to zero than the first few growths it would have saved.
	if sizeHint > 256 {
		sizeHint = 256
	}
	return &keyGroups[K, V]{index: make(map[K]int, sizeHint)}
}

func (g *keyGroups[K, V]) add(k K, v V) {
	if i, ok := g.index[k]; ok {
		g.lists[i] = append(g.lists[i], v)
		return
	}
	g.index[k] = len(g.lists)
	g.keyOrder = append(g.keyOrder, k)
	// Start each value list with a little headroom: keys that group at all
	// usually collect several values, and skipping the 1→2→4 growth steps
	// measurably cuts allocation churn on the per-record path.
	list := make([]V, 1, 4)
	list[0] = v
	g.lists = append(g.lists, list)
}

// sortByName reorders the groups into canonical key order and returns the
// rendered names aligned with keyOrder/lists. It renders every key exactly
// once (the previous per-comparison keyString calls were O(n log n) renders).
func (g *keyGroups[K, V]) sortByName(name func(K) string) []string {
	names := make([]string, len(g.keyOrder))
	perm := make([]int, len(g.keyOrder))
	for i, k := range g.keyOrder {
		names[i] = name(k)
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return names[perm[a]] < names[perm[b]] })
	sortedKeys := make([]K, len(perm))
	sortedLists := make([][]V, len(perm))
	sortedNames := make([]string, len(perm))
	for out, in := range perm {
		sortedKeys[out] = g.keyOrder[in]
		sortedLists[out] = g.lists[in]
		sortedNames[out] = names[in]
	}
	g.keyOrder, g.lists = sortedKeys, sortedLists
	return sortedNames
}

// histObserver returns a TaskContext.Observe backend recording into *set,
// allocating the map and histograms on first use so untraced jobs that never
// observe pay only a nil-map check.
func histObserver(set *map[string]*Histogram) func(string, int64) {
	return func(name string, v int64) {
		if *set == nil {
			*set = make(map[string]*Histogram, 2)
		}
		h := (*set)[name]
		if h == nil {
			h = &Histogram{}
			(*set)[name] = h
		}
		h.Observe(v)
	}
}

// mergeCustom folds one task's observed histograms into Metrics.Custom.
func (m *Metrics) mergeCustom(custom map[string]*Histogram) {
	for name, h := range custom {
		if m.Custom == nil {
			m.Custom = make(map[string]*Histogram, len(custom))
		}
		if mine := m.Custom[name]; mine != nil {
			mine.Merge(*h)
		} else {
			cp := *h
			m.Custom[name] = &cp
		}
	}
}

// Run executes the job over the input splits on the cluster. Each split is
// one map task. The error is non-nil only for configuration problems or
// transport failures; user code panics propagate.
//
// Concurrency model: map tasks run on a bounded worker pool and — when a
// Transport is installed — each task encodes and sends its shuffle buckets
// as soon as it finishes mapping, so sends overlap the remaining map work
// (pipelined shuffle). The per-reducer receive, decode and group step then
// runs on the same pool, one unit per reducer, as does the reduce phase.
// Output is byte-identical to a serial shuffle: bucket concatenation is in
// map-task order, reduce order is canonical key order, and every map task
// and reduce key has a private deterministically-seeded random source.
//
// Observability: when the cluster carries an enabled Tracer, the engine
// measures per-task wall times and emits one Span per task attempt (fault
// re-executions included), per-task combine and shuffle-send spans,
// per-reducer shuffle-recv and reduce spans, and one job span — all from
// its serial accounting sections, so span order is deterministic. Histogram
// and counter collection on Metrics is always on; only span assembly and
// wall-clock reads are gated, which keeps the untraced hot path at its
// benchmarked speed.
func Run[I any, K comparable, V any, O any](c *Cluster, job *Job[I, K, V, O], splits [][]I) (*Result[O], error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if job.Mapper == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no mapper", job.Name)
	}
	if job.Reducer == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no reducer", job.Name)
	}
	numReducers := job.NumReducers
	if numReducers <= 0 {
		numReducers = c.Slaves
	}

	tr := c.tracer()
	if tr != nil && c.TraceContext != nil {
		// Distributed tracing: stamp every span of this run with the
		// cluster's trace identity. Ids are deterministic hashes of span
		// identity (SpanID), so no per-span coordination is needed and
		// frozen-clock runs stay byte-identical.
		tr = stampTracer(*c.TraceContext, tr)
	}
	perKey := c.PerKeyMetrics || tr != nil
	logDebug := slog.Default().Enabled(context.Background(), slog.LevelDebug)
	if jo, ok := tr.(JobObserver); ok {
		// Announce the run before any task executes so live-progress
		// consumers know the per-phase totals from the start.
		jo.JobStarted(job.Name, len(splits), numReducers)
	}

	now := c.now()
	start := now()
	elapsed := func() time.Duration { return now().Sub(start) }
	var met Metrics
	met.Job = job.Name
	met.MapTasks = len(splits)
	met.ReduceTasks = numReducers

	var transport Transport
	if c.NewTransport != nil {
		var err error
		transport, err = c.NewTransport()
		if err != nil {
			return nil, fmt.Errorf("job %q: %w", job.Name, err)
		}
		defer transport.Close()
	}

	// A remote executor (subprocess or TCP workers) takes over task
	// execution when the job is portable; the engine keeps all scheduling,
	// fault accounting and span emission so the observable behavior matches
	// the in-process path exactly. Non-portable jobs (no Maker registered)
	// stay in-process — real distribution needs code the worker binary can
	// reconstruct.
	if exec := c.remoteExecutor(); exec != nil {
		if job.Maker != "" {
			return runRemote(c, job, splits, numReducers, exec, transport, tr, &met, now, start)
		}
		nonPortableFallbacks.Add(1)
		slog.Warn("mapreduce: job is not portable, running in-process",
			"job", job.Name, "executor", exec.Name(), "reason", "no job maker registered",
			"fallbacks_total", nonPortableFallbacks.Load())
	}

	// ---- Map phase (with per-task combine and pipelined shuffle sends) ----
	// All counters are accumulated per task and folded into Metrics once
	// after the phase: nothing touches shared counters per record.
	type mapCounters struct {
		in, out, combineIn, combineOut, shuffleBytes int64
		bucketBytes                                  Histogram
		custom                                       map[string]*Histogram
		// Wall-clock trace points, as offsets from the run start; written
		// only when a tracer is enabled.
		startOff, mapDone, combineDone, sendDone time.Duration
	}
	perTask := make([][][]Pair[K, V], len(splits)) // [task][reducer]
	taskCounts := make([]mapCounters, len(splits))
	taskErrs := make([]error, len(splits))

	runParallel(len(splits), c.workers(), func(task int) {
		cnt := &taskCounts[task]
		if tr != nil {
			cnt.startOff = elapsed()
		}
		var stage func() time.Duration
		if tr != nil {
			stage = elapsed
		}
		run := execMapTask(job, job.Seed, splits[task], task, numReducers, stage)
		cnt.in, cnt.out = run.in, run.out
		cnt.combineIn, cnt.combineOut = run.combineIn, run.combineOut
		cnt.custom = run.custom
		cnt.mapDone, cnt.combineDone = run.mapDone, run.combineDone
		// Pipelined shuffle: this task's buckets leave the map worker as
		// soon as they exist, overlapping the remaining map tasks. Without
		// a transport the buckets stay in memory and only their approximate
		// wire size is accounted, one bucket at a time.
		if transport != nil {
			for r := range run.buckets {
				payload, err := encodeBucket(run.buckets[r])
				if err != nil {
					taskErrs[task] = err
					return
				}
				n, err := transport.Send(task, r, payload)
				if err != nil {
					taskErrs[task] = err
					return
				}
				cnt.shuffleBytes += int64(n)
				cnt.bucketBytes.Observe(int64(n))
			}
		} else {
			for r := range run.buckets {
				n := bucketApproxSize(run.buckets[r])
				cnt.shuffleBytes += n
				cnt.bucketBytes.Observe(n)
			}
		}
		if tr != nil {
			cnt.sendDone = elapsed()
		}
		perTask[task] = run.buckets
	})
	for _, err := range taskErrs {
		if err != nil {
			return nil, fmt.Errorf("job %q: %w", job.Name, err)
		}
	}

	mapDurations := make([]time.Duration, len(splits))
	for t := range taskCounts {
		cnt := &taskCounts[t]
		met.MapInputRecords += cnt.in
		met.MapOutputRecords += cnt.out
		met.CombineInputRecs += cnt.combineIn
		met.CombineOutputRecs += cnt.combineOut
		met.ShuffleBytes += cnt.shuffleBytes
		met.BucketBytes.Merge(cnt.bucketBytes)
		met.mergeCustom(cnt.custom)
		base := c.Cost.TaskOverhead +
			time.Duration(cnt.in)*c.Cost.MapPerRecord +
			time.Duration(cnt.combineIn)*c.Cost.CombinePerRecord
		plan, err := c.Faults.plan("map", t)
		if err != nil {
			return nil, fmt.Errorf("job %q: %w", job.Name, err)
		}
		met.MapAttempts += int64(plan.attempts)
		mapDurations[t] = time.Duration(float64(base) * plan.factor)
		met.MapTaskNanos.Observe(int64(mapDurations[t]))
		if tr != nil {
			sent := cnt.out
			if job.Combiner != nil {
				sent = cnt.combineOut
			}
			for a := 0; a < plan.attempts; a++ {
				s := Span{
					Job: job.Name, Phase: PhaseMap, Task: t, Attempt: a + 1,
					Failed:    a < plan.attempts-1,
					Start:     cnt.startOff,
					Simulated: time.Duration(float64(base) * plan.attemptFactor(a)),
					Records:   cnt.in, Out: cnt.out,
				}
				if a == plan.attempts-1 {
					s.Wall = cnt.mapDone - cnt.startOff
				}
				tr.Emit(s)
			}
			if job.Combiner != nil {
				tr.Emit(Span{
					Job: job.Name, Phase: PhaseCombine, Task: t,
					Start: cnt.mapDone, Wall: cnt.combineDone - cnt.mapDone,
					Records: cnt.combineIn, Out: cnt.combineOut,
				})
			}
			tr.Emit(Span{
				Job: job.Name, Phase: PhaseShuffleSend, Task: t,
				Start: cnt.combineDone, Wall: cnt.sendDone - cnt.combineDone,
				Records: sent, Bytes: cnt.shuffleBytes,
			})
		}
	}
	met.SimulatedMap = makespan(mapDurations, c.Slots())
	if logDebug {
		slog.Debug("mapreduce map phase done", "job", job.Name,
			"tasks", met.MapTasks, "attempts", met.MapAttempts,
			"records_in", met.MapInputRecords, "records_out", met.MapOutputRecords,
			"simulated", met.SimulatedMap, "wall", elapsed())
	}

	// ---- Shuffle: parallel per-reducer receive, decode and group ----
	// For each reducer, concatenate task buckets in task order, then group
	// by key. Value order within a key is (task index, emission order):
	// deterministic, so the parallel grouping is byte-identical to a serial
	// one. With a Transport installed, buckets travel serialized (and, for
	// TCPTransport, over real sockets) and ShuffleBytes are wire bytes;
	// otherwise they are estimated from the in-memory pairs.
	reducerGroups := make([]*keyGroups[K, V], numReducers)
	reducerNames := make([][]string, numReducers)
	shuffleRecs := make([]int64, numReducers)
	shuffleRetries := make([]int64, numReducers)
	reducerErrs := make([]error, numReducers)
	var recvStart, recvDur []time.Duration
	var recvBytes []int64
	if tr != nil {
		recvStart = make([]time.Duration, numReducers)
		recvDur = make([]time.Duration, numReducers)
		recvBytes = make([]int64, numReducers)
	}

	runParallel(numReducers, c.workers(), func(r int) {
		if tr != nil {
			recvStart[r] = elapsed()
		}
		var parts [][]Pair[K, V] // task-ordered bucket list for this reducer
		if transport != nil {
			payloads, retries, err := receiveRetrying(transport, r, len(splits), c.ShuffleRetry, nil)
			shuffleRetries[r] = retries
			if err != nil {
				reducerErrs[r] = fmt.Errorf("reducer %d: %w", r, err)
				return
			}
			parts = make([][]Pair[K, V], 0, len(payloads))
			for task, payload := range payloads {
				pairs, err := decodeBucket[K, V](payload)
				if err != nil {
					// Name the originating map task: payloads arrive in
					// map-task order, so the slice index is the task id.
					reducerErrs[r] = fmt.Errorf("reducer %d: bucket from map task %d: %w", r, task, err)
					return
				}
				if tr != nil {
					recvBytes[r] += int64(len(payload))
				}
				parts = append(parts, pairs)
			}
		} else {
			parts = make([][]Pair[K, V], len(perTask))
			for t := range perTask {
				parts[t] = perTask[t][r]
				if tr != nil {
					recvBytes[r] += bucketApproxSize(parts[t])
				}
			}
		}
		groups := groupPairs(parts)
		var total int64
		for _, pairs := range parts {
			total += int64(len(pairs))
		}
		shuffleRecs[r] = total
		// Deterministic reduce order within the reducer; the names feed the
		// per-key reduce seeds without re-rendering.
		reducerNames[r] = groups.sortByName(job.keyString)
		reducerGroups[r] = groups
		if tr != nil {
			recvDur[r] = elapsed() - recvStart[r]
		}
	})
	for _, err := range reducerErrs {
		if err != nil {
			return nil, fmt.Errorf("job %q: %w", job.Name, err)
		}
	}
	for r := 0; r < numReducers; r++ {
		met.ShuffleRecords += shuffleRecs[r]
		met.ShuffleRetries += shuffleRetries[r]
		if tr != nil {
			// Each recv leg carries its reducer's share of the simulated
			// transfer, so the legs sum to SimulatedShuffle (exactly with
			// the in-memory shuffle, minus framing overhead with a real
			// Transport); the send legs carry bytes only, to avoid double
			// counting.
			tr.Emit(Span{
				Job: job.Name, Phase: PhaseShuffleRecv, Task: r,
				Start: recvStart[r], Wall: recvDur[r],
				Simulated: time.Duration(recvBytes[r]) * c.Cost.ShufflePerByte,
				Records:   shuffleRecs[r], Bytes: recvBytes[r],
			})
		}
	}
	met.SimulatedShuffle = time.Duration(met.ShuffleBytes) * c.Cost.ShufflePerByte
	if logDebug {
		slog.Debug("mapreduce shuffle done", "job", job.Name,
			"records", met.ShuffleRecords, "bytes", met.ShuffleBytes,
			"simulated", met.SimulatedShuffle, "wall", elapsed())
	}

	// ---- Reduce phase ----
	outputs := make([][]O, numReducers)
	reduceCounts := make([]int64, numReducers)
	reduceCustom := make([]map[string]*Histogram, numReducers)
	var keyStats []map[string]KeyStats
	if perKey {
		keyStats = make([]map[string]KeyStats, numReducers)
	}
	var redStart, redDur []time.Duration
	if tr != nil {
		redStart = make([]time.Duration, numReducers)
		redDur = make([]time.Duration, numReducers)
	}
	runParallel(numReducers, c.workers(), func(r int) {
		if tr != nil {
			redStart[r] = elapsed()
		}
		run := execReduceTask(job, job.Seed, reducerGroups[r], reducerNames[r], r, perKey)
		outputs[r] = run.out
		reduceCounts[r] = run.inRecs
		reduceCustom[r] = run.custom
		if perKey {
			keyStats[r] = run.perKey
		}
		if tr != nil {
			redDur[r] = elapsed() - redStart[r]
		}
	})

	reduceDurations := make([]time.Duration, numReducers)
	var final []O
	for r := 0; r < numReducers; r++ {
		met.ReduceInputGroups += int64(len(reducerGroups[r].keyOrder))
		met.ReduceInputRecs += reduceCounts[r]
		met.OutputRecords += int64(len(outputs[r]))
		met.mergeCustom(reduceCustom[r])
		if perKey {
			if met.PerKey == nil {
				met.PerKey = make(map[string]KeyStats, len(keyStats[r]))
			}
			for key, ks := range keyStats[r] {
				// Accumulate rather than assign: distinct keys can render
				// to the same name under a lossy KeyString.
				acc := met.PerKey[key]
				acc.Records += ks.Records
				acc.Output += ks.Output
				met.PerKey[key] = acc
			}
		}
		base := c.Cost.TaskOverhead + time.Duration(reduceCounts[r])*c.Cost.ReducePerRecord
		plan, err := c.Faults.plan("reduce", r)
		if err != nil {
			return nil, fmt.Errorf("job %q: %w", job.Name, err)
		}
		met.ReduceAttempts += int64(plan.attempts)
		reduceDurations[r] = time.Duration(float64(base) * plan.factor)
		met.ReduceTaskNanos.Observe(int64(reduceDurations[r]))
		if tr != nil {
			for a := 0; a < plan.attempts; a++ {
				s := Span{
					Job: job.Name, Phase: PhaseReduce, Task: r, Attempt: a + 1,
					Failed:    a < plan.attempts-1,
					Start:     redStart[r],
					Simulated: time.Duration(float64(base) * plan.attemptFactor(a)),
					Records:   reduceCounts[r],
					Groups:    int64(len(reducerGroups[r].keyOrder)),
					Out:       int64(len(outputs[r])),
				}
				if a == plan.attempts-1 {
					s.Wall = redDur[r]
				}
				tr.Emit(s)
			}
		}
		final = append(final, outputs[r]...)
	}
	met.SimulatedReduce = makespan(reduceDurations, c.Slots())
	met.WallTime = elapsed()
	if tr != nil {
		tr.Emit(Span{
			Job: job.Name, Phase: PhaseJob,
			Wall: met.WallTime, Simulated: met.SimulatedTotal(),
			Records: met.MapInputRecords, Out: met.OutputRecords,
			Groups: met.ReduceInputGroups, Bytes: met.ShuffleBytes,
		})
	}
	if logDebug {
		slog.Debug("mapreduce job done", "job", job.Name,
			"output_records", met.OutputRecords, "groups", met.ReduceInputGroups,
			"attempts", met.MapAttempts+met.ReduceAttempts,
			"simulated", met.SimulatedTotal(), "wall", met.WallTime)
	}

	return &Result[O]{Output: final, Metrics: met}, nil
}

// runParallel runs fn(0..n-1) on at most `workers` goroutines and waits. The
// work channel is buffered to n and fully loaded before the workers start,
// so no goroutine ever blocks on the producer and the call site's only
// synchronization is the final Wait.
func runParallel(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	wg.Wait()
}
