package mapreduce

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// flakyTransport fails Receive with a *ReceiveTimeoutError a configured
// number of times, then delegates to a working in-memory transport. It
// models a slow sender: the bucket arrives, just after the first deadline.
type flakyTransport struct {
	Transport
	failures int64
	calls    atomic.Int64 // reducers receive concurrently under the engine
}

func (f *flakyTransport) Receive(reducer, expect int) ([][]byte, error) {
	if f.calls.Add(1) <= f.failures {
		return nil, &ReceiveTimeoutError{Reducer: reducer, Task: 0, Timeout: time.Millisecond}
	}
	return f.Transport.Receive(reducer, expect)
}

func flakyFixture(t *testing.T, failures int) *flakyTransport {
	t.Helper()
	mem := NewMemTransport()
	if _, err := mem.Send(0, 0, []byte("bucket-0")); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Send(1, 0, []byte("bucket-1")); err != nil {
		t.Fatal(err)
	}
	return &flakyTransport{Transport: mem, failures: int64(failures)}
}

func TestReceiveRetryingRecoversFromTransientTimeout(t *testing.T) {
	ft := flakyFixture(t, 2)
	pol := ShuffleRetryPolicy{MaxRetries: 3, Backoff: time.Millisecond}
	payloads, retries, err := receiveRetrying(ft, 0, 2, pol, nil)
	if err != nil {
		t.Fatalf("receive failed despite retry budget: %v", err)
	}
	if retries != 2 {
		t.Errorf("retries = %d, want 2", retries)
	}
	if len(payloads) != 2 || string(payloads[0]) != "bucket-0" || string(payloads[1]) != "bucket-1" {
		t.Errorf("unexpected payloads after retry: %q", payloads)
	}
}

func TestReceiveRetryingExhaustsBudget(t *testing.T) {
	ft := flakyFixture(t, 10)
	pol := ShuffleRetryPolicy{MaxRetries: 2, Backoff: time.Millisecond}
	_, retries, err := receiveRetrying(ft, 0, 2, pol, nil)
	var timeout *ReceiveTimeoutError
	if !errors.As(err, &timeout) {
		t.Fatalf("want *ReceiveTimeoutError after budget exhaustion, got %v", err)
	}
	if retries != 2 {
		t.Errorf("retries = %d, want 2 (the whole budget)", retries)
	}
	if n := ft.calls.Load(); n != 3 {
		t.Errorf("Receive called %d times, want 3 (initial + 2 retries)", n)
	}
}

func TestReceiveRetryingDisabled(t *testing.T) {
	ft := flakyFixture(t, 1)
	pol := ShuffleRetryPolicy{MaxRetries: -1, Backoff: time.Millisecond}
	_, retries, err := receiveRetrying(ft, 0, 2, pol, nil)
	var timeout *ReceiveTimeoutError
	if !errors.As(err, &timeout) {
		t.Fatalf("disabled policy must surface the first timeout, got %v", err)
	}
	if retries != 0 || ft.calls.Load() != 1 {
		t.Errorf("retries=%d calls=%d, want 0 and 1", retries, ft.calls.Load())
	}
}

func TestReceiveRetryingStopsWhenSendersDead(t *testing.T) {
	ft := flakyFixture(t, 10)
	pol := ShuffleRetryPolicy{MaxRetries: 5, Backoff: time.Millisecond}
	alive := func() bool { return false }
	_, retries, err := receiveRetrying(ft, 0, 2, pol, alive)
	var timeout *ReceiveTimeoutError
	if !errors.As(err, &timeout) {
		t.Fatalf("want timeout error when senders are dead, got %v", err)
	}
	if retries != 0 {
		t.Errorf("retried %d times with no live senders, want 0", retries)
	}
}

// brokenTransport always fails Receive with a permanent (non-timeout) error.
type brokenTransport struct {
	Transport
	calls int
}

func (b *brokenTransport) Receive(reducer, expect int) ([][]byte, error) {
	b.calls++
	return nil, errors.New("decode failure")
}

// Non-timeout errors must never be retried.
func TestReceiveRetryingOnlyRetriesTimeouts(t *testing.T) {
	bt := &brokenTransport{Transport: NewMemTransport()}
	pol := ShuffleRetryPolicy{MaxRetries: 5, Backoff: time.Millisecond}
	_, retries, err := receiveRetrying(bt, 0, 1, pol, nil)
	if err == nil || retries != 0 || bt.calls != 1 {
		t.Errorf("err=%v retries=%d calls=%d; want one failing call, no retries", err, retries, bt.calls)
	}
}

// The policy surfaces in end-to-end metrics: a transported run with an
// injected transient timeout completes and reports ShuffleRetries > 0.
func TestShuffleRetriesSurfaceInMetrics(t *testing.T) {
	splits := remoteTestSplits()
	want, err := Run(remoteTestCluster(), portableJob(11), splits)
	if err != nil {
		t.Fatal(err)
	}
	c := remoteTestCluster()
	c.ShuffleRetry = ShuffleRetryPolicy{MaxRetries: 3, Backoff: time.Millisecond}
	c.NewTransport = func() (Transport, error) {
		return &flakyTransport{Transport: NewMemTransport(), failures: 1}, nil
	}
	got, err := Run(c, portableJob(11), splits)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics.ShuffleRetries == 0 {
		t.Error("Metrics.ShuffleRetries = 0, want > 0 after an injected timeout")
	}
	if want.Output == nil || len(got.Output) != len(want.Output) {
		t.Errorf("retried run output differs: %d keys vs %d", len(got.Output), len(want.Output))
	}
}
