package mapreduce

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/wire"
)

func sampleSpec() *TaskSpec {
	return &TaskSpec{
		Job: "mr-sqe:workers", Maker: "mr-sqe", Config: []byte(`{"query":1}`),
		Phase: "reduce", Task: 1, Seed: -77, NumReducers: 2,
		Buckets:     [][]byte{{0x00, 0x01}, nil, {0x01, 0x00}},
		NumMapTasks: 3,
		Shuffle: &ShufflePlan{
			Session: "job#9", Workers: []string{"a", "b"},
			Endpoints: []string{"127.0.0.1:1", "127.0.0.1:2"}, TimeoutMs: 15000,
		},
		CollectKeys: true, Frozen: true,
		Trace: "3fa9c1d2e4b50607", TraceRun: "b3.p0", TraceParent: 0xdeadbeef,
	}
}

func sampleResult() *TaskResult {
	h := &Histogram{}
	for _, v := range []int64{1, 2, 1 << 33, 0, -5} {
		h.Observe(v)
	}
	return &TaskResult{
		Buckets:     [][]byte{nil, {0x01, 0x02}},
		DirectBytes: 9999,
		Output:      []byte{0x00, 0x2A},
		Counters: TaskCounters{
			In: 10, Out: 5, CombineIn: 10, CombineOut: 5, Groups: 2,
			BucketSizes: []int64{100, -1},
			MapWall:     2 * time.Second, CombineWall: time.Millisecond, RecvWall: time.Minute,
		},
		Custom:         map[string]*Histogram{"reservoir_size": h},
		PerKey:         map[string]KeyStats{"s000000": {Records: 5, Output: 1}},
		Worker:         "tcp-0",
		FailedAttempts: []TaskAttempt{{Worker: "tcp-1", Err: "boom"}},
		Spans: []WorkerSpan{
			{Phase: PhaseDecode, Start: 1700000000000000000, Dur: 1500, Bytes: 4096},
			{Phase: PhaseExec, Start: 1700000000000002000, Dur: 2 * time.Millisecond},
			{Phase: PhasePush, Dur: time.Microsecond, Bytes: 12345},
		},
	}
}

// TestTraceWireCompat: the trace extensions are strictly additive. A spec
// without a trace context encodes without the trace section and round-trips
// to empty fields, and a result without worker spans has no trailing section
// — the exact byte shapes a version-1 peer produces and expects.
func TestTraceWireCompat(t *testing.T) {
	spec := sampleSpec()
	spec.Trace, spec.TraceRun, spec.TraceParent = "", "", 0
	traced := sampleSpec()
	if plain, withTrace := AppendTaskSpec(nil, spec), AppendTaskSpec(nil, traced); len(plain) >= len(withTrace) {
		t.Errorf("untraced spec (%d bytes) not smaller than traced (%d bytes)", len(plain), len(withTrace))
	}
	got, err := ReadTaskSpec(wire.NewReader(AppendTaskSpec(nil, spec)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != "" || got.TraceRun != "" || got.TraceParent != 0 {
		t.Errorf("untraced spec decoded with trace fields: %+v", got)
	}

	res := sampleResult()
	res.Spans = nil
	buf := AppendTaskResult(nil, res)
	r := wire.NewReader(buf)
	if _, err := ReadTaskResult(r); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Errorf("span-free result left %d trailing bytes", r.Remaining())
	}
}

func TestTaskSpecWireRoundTrip(t *testing.T) {
	for _, s := range []*TaskSpec{sampleSpec(), {}} {
		buf := AppendTaskSpec(nil, s)
		got, err := ReadTaskSpec(wire.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s, got) {
			t.Errorf("spec round trip:\nwant %+v\n got %+v", s, got)
		}
	}
}

func TestTaskResultWireRoundTrip(t *testing.T) {
	for _, res := range []*TaskResult{sampleResult(), {}} {
		buf := AppendTaskResult(nil, res)
		got, err := ReadTaskResult(wire.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, got) {
			t.Errorf("result round trip:\nwant %+v\n got %+v", res, got)
		}
	}
}

// TestTaskWireMatchesGob: the binary codec must preserve exactly what a gob
// round trip preserves, for the same inputs.
func TestTaskWireMatchesGob(t *testing.T) {
	spec := sampleSpec()
	raw, err := gobEncode(spec)
	if err != nil {
		t.Fatal(err)
	}
	var viaGob TaskSpec
	if err := gobDecode(raw, &viaGob); err != nil {
		t.Fatal(err)
	}
	viaWire, err := ReadTaskSpec(wire.NewReader(AppendTaskSpec(nil, spec)))
	if err != nil {
		t.Fatal(err)
	}
	// Compare through the binary rendering: gob conflates nil and empty
	// slices, which the engine never distinguishes either.
	if !reflect.DeepEqual(AppendTaskSpec(nil, &viaGob), AppendTaskSpec(nil, viaWire)) {
		t.Errorf("wire and gob decode to different specs:\ngob  %+v\nwire %+v", &viaGob, viaWire)
	}
}

func TestTaskWireCorruptRejected(t *testing.T) {
	buf := AppendTaskResult(nil, sampleResult())
	for cut := 0; cut < len(buf); cut++ {
		_, err := ReadTaskResult(wire.NewReader(buf[:cut]))
		_ = err // any prefix must decode cleanly or error — never panic
	}
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0xFF
		_, _ = ReadTaskResult(wire.NewReader(mut))
	}
}

func TestHistogramWireRoundTrip(t *testing.T) {
	h := &Histogram{}
	for v := int64(-10); v < 100; v += 7 {
		h.Observe(v * v * 1000)
	}
	got, err := readHistogram(wire.NewReader(appendHistogram(nil, h)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, got) {
		t.Errorf("histogram round trip:\nwant %+v\n got %+v", h, got)
	}
	empty := &Histogram{}
	got, err = readHistogram(wire.NewReader(appendHistogram(nil, empty)))
	if err != nil || !reflect.DeepEqual(empty, got) {
		t.Errorf("empty histogram round trip: %v %+v", err, got)
	}
}

// TestBucketCodecRoundTripAndFallback: a registered pair codec round-trips
// through encodeBucket/decodeBucket, unregistered types fall back to gob,
// and the escape hatch forces gob even for registered types. All paths
// produce identical pair values.
func TestBucketCodecRoundTripAndFallback(t *testing.T) {
	type key struct{ A, B int }
	RegisterBucketCodec(BucketCodec[key, int64]{
		AppendPair: func(buf []byte, p Pair[key, int64]) []byte {
			buf = wire.AppendVarint(buf, int64(p.Key.A))
			buf = wire.AppendVarint(buf, int64(p.Key.B))
			return wire.AppendVarint(buf, p.Value)
		},
		ReadPair: func(r *wire.Reader) (Pair[key, int64], error) {
			var p Pair[key, int64]
			p.Key.A = int(r.Varint())
			p.Key.B = int(r.Varint())
			p.Value = r.Varint()
			return p, r.Err()
		},
	})
	pairs := []Pair[key, int64]{{Key: key{1, 2}, Value: -3}, {Key: key{4, 5}, Value: 1 << 40}}

	enc, err := encodeBucket(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if enc[0] != payloadBinary {
		t.Fatalf("registered type encoded with tag %#x, want binary", enc[0])
	}
	got, err := decodeBucket[key, int64](enc)
	if err != nil || !reflect.DeepEqual(pairs, got) {
		t.Errorf("binary bucket round trip: %v %+v", err, got)
	}

	// Unregistered pair type → gob tag, still round-trips.
	type other struct{ S string }
	opairs := []Pair[string, other]{{Key: "x", Value: other{"y"}}}
	oenc, err := encodeBucket(opairs)
	if err != nil {
		t.Fatal(err)
	}
	if oenc[0] != payloadGob {
		t.Fatalf("unregistered type encoded with tag %#x, want gob", oenc[0])
	}
	ogot, err := decodeBucket[string, other](oenc)
	if err != nil || !reflect.DeepEqual(opairs, ogot) {
		t.Errorf("gob bucket round trip: %v %+v", err, ogot)
	}

	// Escape hatch: registered types too must fall back to gob.
	SetWireGob(true)
	defer SetWireGob(false)
	henc, err := encodeBucket(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if henc[0] != payloadGob {
		t.Fatalf("escape hatch encoded with tag %#x, want gob", henc[0])
	}
	hgot, err := decodeBucket[key, int64](henc)
	if err != nil || !reflect.DeepEqual(pairs, hgot) {
		t.Errorf("escape-hatch bucket round trip: %v %+v", err, hgot)
	}

	// Empty buckets still carry their tag — never empty, the hole marker
	// invariant the direct shuffle depends on.
	empty, err := encodeBucket[key, int64](nil)
	if err != nil || len(empty) == 0 {
		t.Errorf("empty bucket must be non-empty payload: %v %v", empty, err)
	}
	egot, err := decodeBucket[key, int64](empty)
	if err != nil || len(egot) != 0 {
		t.Errorf("empty bucket round trip: %v %+v", err, egot)
	}
}

// TestSliceCodecFallback mirrors the bucket test for whole-slice payloads.
func TestSliceCodecFallback(t *testing.T) {
	type rec struct{ N int64 }
	// No codec registered for rec → gob tag.
	recs := []rec{{1}, {2}}
	enc, err := encodeSlice(recs)
	if err != nil {
		t.Fatal(err)
	}
	if enc[0] != payloadGob {
		t.Fatalf("tag %#x, want gob", enc[0])
	}
	got, err := decodeSlice[rec](enc)
	if err != nil || !reflect.DeepEqual(recs, got) {
		t.Errorf("slice round trip: %v %+v", err, got)
	}
	if _, err := decodeSlice[rec](nil); err == nil {
		t.Error("empty payload must be rejected")
	}
	if _, err := decodeSlice[rec]([]byte{0x77}); err == nil {
		t.Error("unknown tag must be rejected")
	}
}
