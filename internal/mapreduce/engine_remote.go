package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"
)

// runRemote executes a portable job through an Executor: map, combine and
// reduce attempts run on the executor's workers (subprocess pools, TCP
// workers, ...) while the coordinator — this function — keeps everything
// that defines the engine's observable behavior: scheduling, fault-model
// accounting, metric folding and span emission, in exactly the order the
// in-process path (Run) uses. Under a frozen clock and fixed seed the span
// stream and job output are byte-identical to in-process execution, modulo
// the Span.Worker tag; that is the contract the cross-backend golden test
// locks in.
//
// Differences from the in-process path are confined to genuine distribution
// effects: task payloads travel serialized (gob, the Transport wire format),
// and real worker failures surface as extra failed attempt spans — tagged
// with the worker that died — ahead of the deterministic fault-model
// attempts.
func runRemote[I any, K comparable, V any, O any](
	c *Cluster, job *Job[I, K, V, O], splits [][]I, numReducers int,
	exec Executor, transport Transport, tr Tracer, met *Metrics,
	now func() time.Time, start time.Time,
) (*Result[O], error) {
	elapsed := func() time.Duration { return now().Sub(start) }
	perKey := c.PerKeyMetrics || tr != nil
	logDebug := slog.Default().Enabled(context.Background(), slog.LevelDebug)
	// Any injected clock (FrozenClock above all) cannot be shared with a
	// worker process, so workers report zero wall durations and every
	// coordinator-side timestamp comes from the injected clock — which is
	// what keeps traced runs reproducible.
	frozen := c.Clock != nil

	// Distributed tracing: with a TraceContext (and an enabled tracer, in
	// which case tr arrives here already wrapped in the span stamper),
	// every TaskSpec carries the trace identity and every successful
	// attempt decomposes into queue/wire/decode/exec/push/recv child
	// spans from the pool's and the worker's own measurements.
	tctx := c.TraceContext
	if tr == nil {
		tctx = nil
	}
	var startUnix int64
	if tctx != nil && !frozen {
		startUnix = start.UnixNano()
	}
	stampSpec := func(spec *TaskSpec, phase string, task int) {
		if tctx == nil {
			return
		}
		spec.Trace = tctx.Trace
		spec.TraceRun = tctx.Run
		spec.TraceParent = attemptSpanID(*tctx, job.Name, phase, task, 1)
	}

	// ---- Direct shuffle plan (control plane only) ----
	// When the executor can move buckets worker-to-worker and no explicit
	// Transport was asked for, obtain a shuffle plan: the assignment of
	// reducers to workers plus the peer endpoints. From here on the
	// coordinator exchanges only this metadata; the bucket bytes themselves
	// flow between workers.
	var plan *ShufflePlan
	var ds DirectShuffler
	if transport == nil {
		if d, ok := exec.(DirectShuffler); ok {
			if p := d.PlanShuffle(job.Name, numReducers); p != nil {
				ds, plan = d, p
				if logDebug {
					slog.Debug("mapreduce direct shuffle planned", "job", job.Name,
						"backend", exec.Name(), "session", p.Session, "reducers", numReducers)
				}
			}
		}
	}

	// ---- Map phase (pipelined: each task's buckets ship as they exist) ----
	type remoteMapState struct {
		payloads                                 [][]byte // per-reducer payloads, retained without a transport
		counters                                 TaskCounters
		custom                                   map[string]*Histogram
		worker                                   string
		failed                                   []TaskAttempt
		shuffleBytes                             int64
		bucketBytes                              Histogram
		startOff, mapDone, combineDone, sendDone time.Duration
		attr                                     taskAttribution
	}
	states := make([]remoteMapState, len(splits))
	taskErrs := make([]error, len(splits))

	runParallel(len(splits), c.workers(), func(task int) {
		st := &states[task]
		if tr != nil {
			st.startOff = elapsed()
		}
		splitPayload, err := encodeSlice(splits[task])
		if err != nil {
			taskErrs[task] = fmt.Errorf("encoding split of map task %d: %w", task, err)
			return
		}
		spec := &TaskSpec{
			Job: job.Name, Maker: job.Maker, Config: job.Config,
			Phase: "map", Task: task, Seed: job.Seed,
			NumReducers: numReducers, NumMapTasks: len(splits),
			Split: splitPayload, Frozen: frozen, Shuffle: plan,
		}
		stampSpec(spec, PhaseMap, task)
		res, err := exec.Execute(spec)
		if err != nil {
			taskErrs[task] = fmt.Errorf("map task %d on %s executor: %w", task, exec.Name(), err)
			return
		}
		if tctx != nil {
			st.attr = attribution(res)
		}
		st.counters = res.Counters
		st.custom = res.Custom
		st.worker = res.Worker
		st.failed = res.FailedAttempts
		if tr != nil {
			st.mapDone = st.startOff + res.Counters.MapWall
			st.combineDone = st.mapDone + res.Counters.CombineWall
		}
		if transport != nil {
			for r, payload := range res.Buckets {
				n, err := transport.Send(task, r, payload)
				if err != nil {
					taskErrs[task] = err
					return
				}
				st.shuffleBytes += int64(n)
				st.bucketBytes.Observe(int64(n))
			}
		} else {
			// No transport: keep the payloads for the reduce phase and
			// account the same approximate sizes the in-process engine
			// would, so metrics agree across backends. Under a direct
			// shuffle plan Buckets is sparse — nil for every bucket the
			// worker already delivered to its peer — but the counters still
			// describe all of them, so the accounting is unchanged.
			st.payloads = res.Buckets
			for _, n := range res.Counters.BucketSizes {
				st.shuffleBytes += n
				st.bucketBytes.Observe(n)
			}
		}
		if tr != nil {
			st.sendDone = elapsed()
		}
	})
	for _, err := range taskErrs {
		if err != nil {
			return nil, fmt.Errorf("job %q: %w", job.Name, err)
		}
	}

	mapDurations := make([]time.Duration, len(splits))
	for t := range states {
		st := &states[t]
		met.MapInputRecords += st.counters.In
		met.MapOutputRecords += st.counters.Out
		met.CombineInputRecs += st.counters.CombineIn
		met.CombineOutputRecs += st.counters.CombineOut
		met.ShuffleBytes += st.shuffleBytes
		met.BucketBytes.Merge(st.bucketBytes)
		met.mergeCustom(st.custom)
		base := c.Cost.TaskOverhead +
			time.Duration(st.counters.In)*c.Cost.MapPerRecord +
			time.Duration(st.counters.CombineIn)*c.Cost.CombinePerRecord
		plan, err := c.Faults.plan("map", t)
		if err != nil {
			return nil, fmt.Errorf("job %q: %w", job.Name, err)
		}
		met.MapAttempts += int64(plan.attempts + len(st.failed))
		mapDurations[t] = time.Duration(float64(base) * plan.factor)
		met.MapTaskNanos.Observe(int64(mapDurations[t]))
		if tr != nil {
			sent := st.counters.Out
			if job.Combiner != nil {
				sent = st.counters.CombineOut
			}
			// Real failures first: a crashed worker or an expired lease is
			// an attempt that genuinely ran (partially) and died, so it
			// precedes the deterministic fault-model attempts. Without
			// failures this loop is empty and the stream matches in-process
			// execution exactly.
			attempt := 0
			for _, fa := range st.failed {
				attempt++
				tr.Emit(Span{
					Job: job.Name, Phase: PhaseMap, Task: t, Attempt: attempt,
					Failed: true, Start: st.startOff, Worker: fa.Worker,
				})
			}
			for a := 0; a < plan.attempts; a++ {
				s := Span{
					Job: job.Name, Phase: PhaseMap, Task: t, Attempt: attempt + a + 1,
					Failed:    a < plan.attempts-1,
					Start:     st.startOff,
					Simulated: time.Duration(float64(base) * plan.attemptFactor(a)),
					Records:   st.counters.In, Out: st.counters.Out,
					Worker: st.worker,
				}
				if a == plan.attempts-1 {
					s.Wall = st.mapDone - st.startOff
				}
				tr.Emit(s)
			}
			if tctx != nil {
				emitRemoteChildren(tr, *tctx, job.Name, PhaseMap, t,
					attempt+plan.attempts, st.startOff, &st.attr, st.worker,
					startUnix, frozen)
			}
			if job.Combiner != nil {
				tr.Emit(Span{
					Job: job.Name, Phase: PhaseCombine, Task: t,
					Start: st.mapDone, Wall: st.combineDone - st.mapDone,
					Records: st.counters.CombineIn, Out: st.counters.CombineOut,
					Worker: st.worker,
				})
			}
			tr.Emit(Span{
				Job: job.Name, Phase: PhaseShuffleSend, Task: t,
				Start: st.combineDone, Wall: st.sendDone - st.combineDone,
				Records: sent, Bytes: st.shuffleBytes,
				Worker: st.worker,
			})
		}
	}
	met.SimulatedMap = makespan(mapDurations, c.Slots())
	if logDebug {
		slog.Debug("mapreduce map phase done", "job", job.Name, "backend", exec.Name(),
			"tasks", met.MapTasks, "attempts", met.MapAttempts,
			"records_in", met.MapInputRecords, "records_out", met.MapOutputRecords,
			"simulated", met.SimulatedMap, "wall", elapsed())
	}

	// ---- Shuffle fetch + reduce phase (one worker round-trip per reducer) ----
	outputs := make([][]O, numReducers)
	redCounters := make([]TaskCounters, numReducers)
	redCustom := make([]map[string]*Histogram, numReducers)
	redPerKey := make([]map[string]KeyStats, numReducers)
	redWorker := make([]string, numReducers)
	redFailed := make([][]TaskAttempt, numReducers)
	var redAttr []taskAttribution
	if tctx != nil {
		redAttr = make([]taskAttribution, numReducers)
	}
	reducerErrs := make([]error, numReducers)
	shuffleRetries := make([]int64, numReducers)
	var recvStart, recvDur, redStart, redDur []time.Duration
	var recvBytes []int64
	if tr != nil {
		recvStart = make([]time.Duration, numReducers)
		recvDur = make([]time.Duration, numReducers)
		redStart = make([]time.Duration, numReducers)
		redDur = make([]time.Duration, numReducers)
		recvBytes = make([]int64, numReducers)
	}

	// Routed fallback for direct-shuffle reducers whose peer-held buckets
	// were lost (worker crash, missing receiver, peer receive timeout): the
	// coordinator rebuilds the reducer's bucket column and runs the reduce
	// routed, on any worker. Map re-execution is deterministic — the same
	// split, seed and task id produce byte-identical buckets — and memoized
	// under replayMu so several lost reducers share one replay per map task.
	var replayMu sync.Mutex
	replayed := make(map[int][][]byte)
	replayBuckets := func(t int) ([][]byte, error) {
		replayMu.Lock()
		defer replayMu.Unlock()
		if b, ok := replayed[t]; ok {
			return b, nil
		}
		splitPayload, err := encodeSlice(splits[t])
		if err != nil {
			return nil, err
		}
		res, err := exec.Execute(&TaskSpec{
			Job: job.Name, Maker: job.Maker, Config: job.Config,
			Phase: "map", Task: t, Seed: job.Seed,
			NumReducers: numReducers, NumMapTasks: len(splits),
			Split: splitPayload, Frozen: frozen,
		})
		if err != nil {
			return nil, err
		}
		replayed[t] = res.Buckets
		return res.Buckets, nil
	}
	directFallback := func(r int, spec *TaskSpec, lost *ShuffleLostError) (*TaskResult, error) {
		slog.Warn("mapreduce: direct shuffle lost, replaying buckets over the routed path",
			"job", job.Name, "reducer", r, "worker", lost.Worker, "reason", lost.Reason)
		payloads := make([][]byte, len(states))
		for t := range states {
			if bks := states[t].payloads; r < len(bks) && len(bks[r]) > 0 {
				payloads[t] = bks[r] // retained by the map phase, never left the coordinator
				continue
			}
			bks, err := replayBuckets(t)
			if err != nil {
				return nil, fmt.Errorf("replaying buckets of map task %d: %w", t, err)
			}
			if r < len(bks) {
				payloads[t] = bks[r]
			}
		}
		routed := *spec
		routed.Shuffle = nil
		routed.Buckets = payloads
		res, err := exec.Execute(&routed)
		if err != nil {
			return nil, err
		}
		// The lost direct attempt ran (at least partially) on a real worker
		// and died, so it precedes the successful routed attempt — the same
		// ordering crash recovery uses for re-executed tasks.
		res.FailedAttempts = append([]TaskAttempt{{Worker: lost.Worker, Err: lost.Reason}}, res.FailedAttempts...)
		return res, nil
	}

	runParallel(numReducers, c.workers(), func(r int) {
		if tr != nil {
			recvStart[r] = elapsed()
		}
		spec := &TaskSpec{
			Job: job.Name, Maker: job.Maker, Config: job.Config,
			Phase: "reduce", Task: r, Seed: job.Seed,
			NumReducers: numReducers, NumMapTasks: len(splits),
			CollectKeys: perKey, Frozen: frozen,
		}
		stampSpec(spec, PhaseReduce, r)
		var res *TaskResult
		var err error
		switch {
		case plan != nil:
			// Direct path: the reducer's worker already holds the buckets its
			// peers pushed. Ship only the stragglers the map phase had to
			// retain (a send to a dead endpoint keeps the payload on the
			// coordinator) and pin the reduce to the worker the plan named.
			spec.Shuffle = plan
			spec.Buckets = make([][]byte, len(states))
			for t := range states {
				if bks := states[t].payloads; r < len(bks) {
					spec.Buckets[t] = bks[r]
				}
			}
			res, err = ds.ExecuteOn(plan.Workers[r], spec)
			var lost *ShuffleLostError
			if err != nil && errors.As(err, &lost) {
				res, err = directFallback(r, spec, lost)
			}
			if tr != nil {
				// Same approximate sizes as the in-process engine, so recv
				// spans agree across backends.
				for t := range states {
					recvBytes[r] += states[t].counters.BucketSizes[r]
				}
			}
		case transport != nil:
			payloads, retries, rerr := receiveRetrying(transport, r, len(splits), c.ShuffleRetry, executorAlive(exec))
			shuffleRetries[r] = retries
			if rerr != nil {
				reducerErrs[r] = fmt.Errorf("reducer %d: %w", r, rerr)
				return
			}
			if tr != nil {
				for _, p := range payloads {
					recvBytes[r] += int64(len(p))
				}
				recvDur[r] = elapsed() - recvStart[r]
				redStart[r] = elapsed()
			}
			spec.Buckets = payloads
			res, err = exec.Execute(spec)
		default:
			payloads := make([][]byte, len(states))
			for t := range states {
				payloads[t] = states[t].payloads[r]
				if tr != nil {
					recvBytes[r] += states[t].counters.BucketSizes[r]
				}
			}
			if tr != nil {
				recvDur[r] = elapsed() - recvStart[r]
				redStart[r] = elapsed()
			}
			spec.Buckets = payloads
			res, err = exec.Execute(spec)
		}
		if err != nil {
			reducerErrs[r] = fmt.Errorf("reduce task %d on %s executor: %w", r, exec.Name(), err)
			return
		}
		if tctx != nil {
			redAttr[r] = attribution(res)
		}
		if plan != nil && tr != nil {
			// The receive happened inside the worker's task execution: split
			// the round-trip into the recv wall the worker measured and the
			// remainder as reduce work. Zero under a frozen clock, like every
			// other worker-side wall reading.
			recvDur[r] = res.Counters.RecvWall
			redStart[r] = recvStart[r] + recvDur[r]
		}
		out, err := DecodeTaskOutput[O](res.Output)
		if err != nil {
			reducerErrs[r] = fmt.Errorf("reducer %d: %w", r, err)
			return
		}
		outputs[r] = out
		redCounters[r] = res.Counters
		redCustom[r] = res.Custom
		redPerKey[r] = res.PerKey
		redWorker[r] = res.Worker
		redFailed[r] = res.FailedAttempts
		if tr != nil {
			redDur[r] = elapsed() - redStart[r]
		}
	})
	for _, err := range reducerErrs {
		if err != nil {
			return nil, fmt.Errorf("job %q: %w", job.Name, err)
		}
	}
	for r := 0; r < numReducers; r++ {
		met.ShuffleRecords += redCounters[r].In
		met.ShuffleRetries += shuffleRetries[r]
		if tr != nil {
			s := Span{
				Job: job.Name, Phase: PhaseShuffleRecv, Task: r,
				Start: recvStart[r], Wall: recvDur[r],
				Simulated: time.Duration(recvBytes[r]) * c.Cost.ShufflePerByte,
				Records:   redCounters[r].In, Bytes: recvBytes[r],
			}
			if plan != nil {
				// Direct mode: the receive ran on a worker, not here.
				s.Worker = redWorker[r]
			}
			tr.Emit(s)
		}
	}
	met.SimulatedShuffle = time.Duration(met.ShuffleBytes) * c.Cost.ShufflePerByte
	if logDebug {
		slog.Debug("mapreduce shuffle done", "job", job.Name, "backend", exec.Name(),
			"records", met.ShuffleRecords, "bytes", met.ShuffleBytes, "direct", plan != nil,
			"simulated", met.SimulatedShuffle, "wall", elapsed())
	}

	reduceDurations := make([]time.Duration, numReducers)
	var final []O
	for r := 0; r < numReducers; r++ {
		met.ReduceInputGroups += redCounters[r].Groups
		met.ReduceInputRecs += redCounters[r].In
		met.OutputRecords += int64(len(outputs[r]))
		met.mergeCustom(redCustom[r])
		if perKey {
			if met.PerKey == nil {
				met.PerKey = make(map[string]KeyStats, len(redPerKey[r]))
			}
			for key, ks := range redPerKey[r] {
				acc := met.PerKey[key]
				acc.Records += ks.Records
				acc.Output += ks.Output
				met.PerKey[key] = acc
			}
		}
		base := c.Cost.TaskOverhead + time.Duration(redCounters[r].In)*c.Cost.ReducePerRecord
		plan, err := c.Faults.plan("reduce", r)
		if err != nil {
			return nil, fmt.Errorf("job %q: %w", job.Name, err)
		}
		met.ReduceAttempts += int64(plan.attempts + len(redFailed[r]))
		reduceDurations[r] = time.Duration(float64(base) * plan.factor)
		met.ReduceTaskNanos.Observe(int64(reduceDurations[r]))
		if tr != nil {
			attempt := 0
			for _, fa := range redFailed[r] {
				attempt++
				tr.Emit(Span{
					Job: job.Name, Phase: PhaseReduce, Task: r, Attempt: attempt,
					Failed: true, Start: redStart[r], Worker: fa.Worker,
				})
			}
			for a := 0; a < plan.attempts; a++ {
				s := Span{
					Job: job.Name, Phase: PhaseReduce, Task: r, Attempt: attempt + a + 1,
					Failed:    a < plan.attempts-1,
					Start:     redStart[r],
					Simulated: time.Duration(float64(base) * plan.attemptFactor(a)),
					Records:   redCounters[r].In,
					Groups:    redCounters[r].Groups,
					Out:       int64(len(outputs[r])),
					Worker:    redWorker[r],
				}
				if a == plan.attempts-1 {
					s.Wall = redDur[r]
				}
				tr.Emit(s)
			}
			if tctx != nil {
				emitRemoteChildren(tr, *tctx, job.Name, PhaseReduce, r,
					attempt+plan.attempts, redStart[r], &redAttr[r], redWorker[r],
					startUnix, frozen)
			}
		}
		final = append(final, outputs[r]...)
	}
	met.SimulatedReduce = makespan(reduceDurations, c.Slots())
	met.WallTime = elapsed()
	if tr != nil {
		tr.Emit(Span{
			Job: job.Name, Phase: PhaseJob,
			Wall: met.WallTime, Simulated: met.SimulatedTotal(),
			Records: met.MapInputRecords, Out: met.OutputRecords,
			Groups: met.ReduceInputGroups, Bytes: met.ShuffleBytes,
		})
	}
	if logDebug {
		slog.Debug("mapreduce job done", "job", job.Name, "backend", exec.Name(),
			"output_records", met.OutputRecords, "groups", met.ReduceInputGroups,
			"attempts", met.MapAttempts+met.ReduceAttempts,
			"simulated", met.SimulatedTotal(), "wall", met.WallTime)
	}
	return &Result[O]{Output: final, Metrics: *met}, nil
}

// taskAttribution is the per-task latency attribution a traced remote
// attempt comes back with: the worker's own spans plus the pool's queue and
// round-trip timing and the worker's clock-offset estimate.
type taskAttribution struct {
	spans          []WorkerSpan
	queueNanos     int64
	sentAt, recvAt int64
	clockOff       int64
	clockOK        bool
}

func attribution(res *TaskResult) taskAttribution {
	return taskAttribution{
		spans:      res.Spans,
		queueNanos: res.QueueNanos,
		sentAt:     res.SentAtNanos,
		recvAt:     res.RecvAtNanos,
		clockOff:   res.ClockOffsetNanos,
		clockOK:    res.ClockOffsetOK,
	}
}

// emitRemoteChildren decomposes one successful remote attempt into child
// spans parented under the attempt span: the pool-measured queue wait, the
// derived wire time — (recv − send) − Σ worker-measured durations, which
// needs no clock alignment — and the worker's own decode/exec/push/recv
// measurements. Worker span starts are aligned to the coordinator timeline
// via the hello clock-offset estimate when available, else stacked
// sequentially after the wire span. Under a frozen clock every duration and
// start is zero and only the deterministic identity (phase, bytes, ids)
// remains, preserving byte-identical golden span files.
func emitRemoteChildren(
	tr Tracer, ctx TraceContext, job, phase string, task, attempt int,
	parentStart time.Duration, attr *taskAttribution, worker string,
	startUnix int64, frozen bool,
) {
	parent := attemptSpanID(ctx, job, phase, task, attempt)
	var queue time.Duration
	if !frozen && attr.queueNanos > 0 {
		queue = time.Duration(attr.queueNanos)
	}
	tr.Emit(Span{
		Job: job, Phase: PhaseQueue, Task: task,
		Start: parentStart, Wall: queue, Worker: worker,
		ID: childSpanID(ctx, job, phase, task, attempt, PhaseQueue), Parent: parent,
	})
	var wireDur time.Duration
	if !frozen && attr.recvAt > attr.sentAt {
		wireDur = time.Duration(attr.recvAt - attr.sentAt)
		for _, ws := range attr.spans {
			wireDur -= ws.Dur
		}
		if wireDur < 0 {
			wireDur = 0
		}
	}
	cursor := parentStart + queue
	tr.Emit(Span{
		Job: job, Phase: PhaseWire, Task: task,
		Start: cursor, Wall: wireDur, Worker: worker,
		ID: childSpanID(ctx, job, phase, task, attempt, PhaseWire), Parent: parent,
	})
	cursor += wireDur
	for _, ws := range attr.spans {
		s := Span{
			Job: job, Phase: ws.Phase, Task: task,
			Start: cursor, Wall: ws.Dur, Bytes: ws.Bytes, Worker: worker,
			ID: childSpanID(ctx, job, phase, task, attempt, ws.Phase), Parent: parent,
		}
		if !frozen && attr.clockOK && ws.Start != 0 {
			if rel := time.Duration(ws.Start - attr.clockOff - startUnix); rel > 0 {
				s.Start = rel
			}
		}
		tr.Emit(s)
		cursor = s.Start + ws.Dur
	}
}
