package mapreduce

import (
	"fmt"
	"math"
	"math/rand"
)

// FaultModel injects task-level failures and stragglers into the virtual
// cluster, following the MapReduce fault-tolerance model (Dean & Ghemawat):
// tasks are deterministic, so a failed attempt is simply re-executed and
// produces the same output — failures cost time, never correctness. The
// engine runs each task's user code once and charges the virtual clock for
// every attempt.
type FaultModel struct {
	// TaskFailureProb is the probability that one task attempt fails
	// (crashes, machine loss) and must be re-executed.
	TaskFailureProb float64
	// MaxAttempts is how many attempts a task gets before the whole job
	// aborts, as in Hadoop (default 4).
	MaxAttempts int
	// StragglerStdDev is the standard deviation of a lognormal slowdown
	// factor applied to each attempt's duration (0 = no stragglers).
	StragglerStdDev float64
	// Seed makes the injected faults reproducible.
	Seed int64
}

func (f *FaultModel) maxAttempts() int {
	if f.MaxAttempts <= 0 {
		return 4
	}
	return f.MaxAttempts
}

// attemptPlan describes what the virtual clock should charge for one task:
// the number of attempts made and the duration multiplier (sum over attempts
// of their slowdown factors; failed attempts are assumed to run to the point
// of failure, charged as full attempts). factors keeps the per-attempt
// slowdowns so the tracer can emit one span per attempt; it is nil for the
// fault-free single-attempt fast path (read it through attemptFactor).
type attemptPlan struct {
	attempts int
	factor   float64
	factors  []float64
}

// attemptFactor is the slowdown of the 0-based i-th attempt.
func (p attemptPlan) attemptFactor(i int) float64 {
	if p.factors == nil {
		return p.factor
	}
	return p.factors[i]
}

// plan rolls the fate of one task deterministically from the fault seed and
// the task identity. It returns an error when the task exhausts its attempts.
func (f *FaultModel) plan(phase string, task int) (attemptPlan, error) {
	if f == nil {
		return attemptPlan{attempts: 1, factor: 1}, nil
	}
	rng := rand.New(rand.NewSource(taskSeed(f.Seed, "fault/"+phase, fmt.Sprint(task))))
	p := attemptPlan{}
	for p.attempts < f.maxAttempts() {
		p.attempts++
		s := f.slowdown(rng)
		p.factor += s
		p.factors = append(p.factors, s)
		if rng.Float64() >= f.TaskFailureProb {
			return p, nil // this attempt succeeded
		}
	}
	return p, fmt.Errorf("mapreduce: %s task %d failed %d attempts", phase, task, p.attempts)
}

func (f *FaultModel) slowdown(rng *rand.Rand) float64 {
	if f.StragglerStdDev <= 0 {
		return 1
	}
	// Lognormal with median 1: exp(sigma * z).
	return math.Exp(f.StragglerStdDev * rng.NormFloat64())
}
