package mapreduce

import (
	"fmt"
	"time"
)

// Cluster models the distributed system the job runs on: a number of slave
// machines, each offering task slots, and a cost model for the virtual clock.
// The master is implicit. It corresponds to the paper's EC2 deployment of
// one master plus 1–10 slaves.
type Cluster struct {
	// Slaves is the number of worker machines (≥ 1).
	Slaves int
	// SlotsPerSlave is how many tasks a slave can run at once (≥ 1).
	SlotsPerSlave int
	// Cost converts measured task counters into simulated durations.
	Cost CostModel
	// Faults, when non-nil, injects task failures and stragglers into the
	// virtual clock (deterministic re-execution; see FaultModel).
	Faults *FaultModel
	// NewTransport, when non-nil, supplies a fresh shuffle Transport for
	// every job run; the shuffle then travels serialized (and, for
	// TCPTransport, over a real network stack) and ShuffleBytes report
	// wire bytes. Keys and values must be gob-encodable. The engine closes
	// the transport when the job finishes.
	NewTransport func() (Transport, error)
	// ShuffleRetry bounds re-attempts of a shuffle Receive that timed out
	// with a *ReceiveTimeoutError, instead of failing the job on the first
	// expiry. The zero value applies the default policy (2 retries, 50ms
	// linear backoff); MaxRetries < 0 restores fail-on-first-timeout.
	// Retries performed are counted in Metrics.ShuffleRetries.
	ShuffleRetry ShuffleRetryPolicy
	// MaxParallelism caps the real goroutine parallelism used to execute
	// tasks, independent of the simulated slot count. 0 means "as many as
	// slots"; negative values are a configuration error.
	MaxParallelism int
	// Executor, when non-nil, runs task attempts on an execution backend
	// instead of in-process goroutines: a pool of subprocess workers, TCP
	// workers, or any other Executor implementation. A nil Executor — or an
	// *InprocExecutor — keeps today's in-process engine path. Remote
	// executors require portable jobs (Job.Maker set); non-portable jobs
	// fall back to in-process execution with a warning log.
	Executor Executor
	// Tracer, when non-nil and enabled, receives one Span per task attempt,
	// combine, shuffle leg and job (see the Phase* constants). A nil or
	// disabled tracer keeps the engine's hot path free of span assembly and
	// wall-clock reads.
	Tracer Tracer
	// PerKeyMetrics asks the engine to fill Metrics.PerKey with per-key
	// (per-stratum) reduce counters. It is implied by an enabled Tracer;
	// off by default because a wide key space would make Metrics large.
	PerKeyMetrics bool
	// TraceContext, when non-nil and combined with an enabled Tracer,
	// threads a cross-process trace identity through the run: every span
	// is stamped with Trace/Run/ID/Parent, TaskSpecs shipped to remote
	// workers carry the context (wire version ≥ 2; old peers simply run
	// untraced), and each remote attempt decomposes into
	// queue/wire/decode/exec/push/recv child spans. Nil keeps the PR 2
	// span stream byte-for-byte unchanged.
	TraceContext *TraceContext
	// Clock, when non-nil, replaces time.Now for the engine's wall-clock
	// reads (Metrics.WallTime and the Start/Wall fields of spans). A
	// FrozenClock zeroes every wall measurement, which — together with a
	// fixed Job.Seed — makes JSONL span files byte-identical across runs:
	// the determinism audit replay depends on. Simulated durations never
	// come from this clock; they come from the cost model.
	Clock func() time.Time
}

// NewCluster returns a cluster with n slaves, one slot per slave, and the
// default cost model.
func NewCluster(n int) *Cluster {
	return &Cluster{Slaves: n, SlotsPerSlave: 1, Cost: DefaultCostModel()}
}

// Validate reports a configuration error, if any.
func (c *Cluster) Validate() error {
	if c.Slaves < 1 {
		return fmt.Errorf("mapreduce: cluster needs at least 1 slave, got %d", c.Slaves)
	}
	if c.SlotsPerSlave < 1 {
		return fmt.Errorf("mapreduce: cluster needs at least 1 slot per slave, got %d", c.SlotsPerSlave)
	}
	if c.MaxParallelism < 0 {
		return fmt.Errorf("mapreduce: cluster MaxParallelism must be >= 0, got %d", c.MaxParallelism)
	}
	if err := c.Cost.validate(); err != nil {
		return err
	}
	return nil
}

// Slots is the total number of simultaneous task slots.
func (c *Cluster) Slots() int { return c.Slaves * c.SlotsPerSlave }

func (c *Cluster) workers() int {
	if c.MaxParallelism > 0 {
		return c.MaxParallelism
	}
	return c.Slots()
}

// remoteExecutor returns the cluster's executor when it actually moves work
// off-process, else nil. An *InprocExecutor is deliberately treated as "no
// executor": it exists so callers can thread an Executor value
// unconditionally, and the closure-based engine path is both faster and the
// reference behavior.
func (c *Cluster) remoteExecutor() Executor {
	if c.Executor == nil {
		return nil
	}
	if _, ok := c.Executor.(*InprocExecutor); ok {
		return nil
	}
	return c.Executor
}

// tracer returns the cluster's tracer if spans are wanted, else nil — the
// single gate the engine checks per run.
func (c *Cluster) tracer() Tracer {
	if c.Tracer != nil && c.Tracer.Enabled() {
		return c.Tracer
	}
	return nil
}

// now returns the cluster's wall clock: Clock when set, time.Now otherwise.
func (c *Cluster) now() func() time.Time {
	if c.Clock != nil {
		return c.Clock
	}
	return time.Now
}

// FrozenClock returns a Clock stuck at t. Under a frozen clock every wall
// measurement is zero, so a traced run's span stream depends only on the
// job, seed, cluster and fault plan — byte-identical across runs and
// machines.
func FrozenClock(t time.Time) func() time.Time {
	return func() time.Time { return t }
}
