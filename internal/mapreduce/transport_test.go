package mapreduce

import (
	"reflect"
	"testing"
)

func withTransport(mk func() (Transport, error)) *Cluster {
	c := NewCluster(3)
	c.NewTransport = mk
	return c
}

func TestMemTransportShuffleMatchesInMemory(t *testing.T) {
	plain, err := Run(NewCluster(3), wordCountJob(4, true), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	viaMem, err := Run(withTransport(func() (Transport, error) { return NewMemTransport(), nil }),
		wordCountJob(4, true), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedWC(plain.Output), sortedWC(viaMem.Output)) {
		t.Fatal("serialized shuffle changed the output")
	}
	if viaMem.Metrics.ShuffleRecords != plain.Metrics.ShuffleRecords {
		t.Fatalf("record counts differ: %d vs %d",
			viaMem.Metrics.ShuffleRecords, plain.Metrics.ShuffleRecords)
	}
	if viaMem.Metrics.ShuffleBytes == 0 {
		t.Fatal("serialized shuffle reported zero bytes")
	}
}

func TestTCPTransportShuffle(t *testing.T) {
	cluster := withTransport(func() (Transport, error) { return NewTCPTransport() })
	res, err := Run(cluster, wordCountJob(4, true), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(NewCluster(3), wordCountJob(4, true), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedWC(plain.Output), sortedWC(res.Output)) {
		t.Fatal("TCP shuffle changed the output")
	}
	// Wire bytes include frame headers for every (task, reducer) pair.
	minBytes := int64(res.Metrics.MapTasks*res.Metrics.ReduceTasks) * frameHeaderSize
	if res.Metrics.ShuffleBytes < minBytes {
		t.Fatalf("wire bytes %d below frame-header floor %d", res.Metrics.ShuffleBytes, minBytes)
	}
}

func TestTCPTransportDirect(t *testing.T) {
	tr, err := NewTCPTransport()
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	payloads := map[int][]byte{0: []byte("task0"), 1: []byte("task-one"), 2: nil}
	for task, p := range payloads {
		n, err := tr.Send(task, 0, p)
		if err != nil {
			t.Fatal(err)
		}
		if n != frameHeaderSize+len(p) {
			t.Fatalf("Send reported %d bytes for %d-byte payload", n, len(p))
		}
	}
	got, err := tr.Receive(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("received %d buckets", len(got))
	}
	if string(got[0]) != "task0" || string(got[1]) != "task-one" || len(got[2]) != 0 {
		t.Fatalf("buckets out of task order: %q", got)
	}
}

func TestMemTransportRejectsShortfall(t *testing.T) {
	tr := NewMemTransport()
	if _, err := tr.Send(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Receive(1, 2); err == nil {
		t.Fatal("want shortfall error")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeBucket(t *testing.T) {
	pairs := []Pair[string, int64]{{"a", 1}, {"b", 2}}
	payload, err := encodeBucket(pairs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeBucket[string, int64](payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pairs, back) {
		t.Fatalf("round trip %v", back)
	}
	if _, err := decodeBucket[string, int64]([]byte("garbage")); err == nil {
		t.Fatal("want decode error")
	}
	empty, err := encodeBucket[string, int64](nil)
	if err != nil {
		t.Fatal(err)
	}
	backEmpty, err := decodeBucket[string, int64](empty)
	if err != nil || len(backEmpty) != 0 {
		t.Fatalf("empty round trip: %v, %v", backEmpty, err)
	}
}
