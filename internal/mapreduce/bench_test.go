package mapreduce

import (
	"fmt"
	"io"
	"strconv"
	"testing"

	"repro/internal/wire"
)

// The benchmark jobs use (int, int64) pairs and []int splits; registering
// codecs for them puts the benchmarks on the binary wire path, the way
// production jobs register theirs next to RegisterJobMaker.
func init() {
	RegisterBucketCodec(BucketCodec[int, int64]{
		AppendPair: func(buf []byte, p Pair[int, int64]) []byte {
			buf = wire.AppendVarint(buf, int64(p.Key))
			return wire.AppendVarint(buf, p.Value)
		},
		ReadPair: func(r *wire.Reader) (Pair[int, int64], error) {
			k := r.Varint()
			v := r.Varint()
			return Pair[int, int64]{Key: int(k), Value: v}, r.Err()
		},
	})
	RegisterSliceCodec(SliceCodec[int]{
		Append: func(buf []byte, v []int) []byte {
			buf = wire.AppendUvarint(buf, uint64(len(v)))
			for _, x := range v {
				buf = wire.AppendVarint(buf, int64(x))
			}
			return buf
		},
		Read: func(r *wire.Reader) ([]int, error) {
			n := r.Count(1)
			out := make([]int, n)
			for i := range out {
				out[i] = int(r.Varint())
			}
			return out, r.Err()
		},
	})
	RegisterSliceCodec(SliceCodec[int64]{
		Append: func(buf []byte, v []int64) []byte {
			buf = wire.AppendUvarint(buf, uint64(len(v)))
			for _, x := range v {
				buf = wire.AppendVarint(buf, x)
			}
			return buf
		},
		Read: func(r *wire.Reader) ([]int64, error) {
			n := r.Count(1)
			out := make([]int64, n)
			for i := range out {
				out[i] = r.Varint()
			}
			return out, r.Err()
		},
	})
}

// shuffleHeavyJob emits every record unchanged under a wide key space with
// no combiner, so nearly all engine time is spent moving, grouping and
// byte-accounting shuffle pairs rather than in map or reduce user code.
func shuffleHeavyJob() *Job[int, int, int64, int64] {
	return &Job[int, int, int64, int64]{
		Name: "shuffle-heavy",
		Mapper: MapperFunc[int, int, int64](func(_ *TaskContext, v int, emit func(int, int64)) {
			emit(v%997, int64(v))
		}),
		Reducer: ReducerFunc[int, int64, int64](func(_ *TaskContext, _ int, vs []int64, emit func(int64)) {
			emit(int64(len(vs)))
		}),
		KeyString: func(k int) string { return strconv.Itoa(k) },
	}
}

func benchShuffle(b *testing.B, mk func() (Transport, error), tr Tracer, rows int) {
	splits := make([][]int, 16)
	for s := range splits {
		split := make([]int, rows)
		for i := range split {
			split[i] = s*rows + i
		}
		splits[s] = split
	}
	cluster := &Cluster{Slaves: 4, SlotsPerSlave: 2, Cost: ZeroCostModel(), Tracer: tr}
	if mk != nil {
		cluster.NewTransport = mk
	}
	job := shuffleHeavyJob()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job.Seed = int64(i)
		res, err := Run(cluster, job, splits)
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics.ShuffleRecords != int64(16*rows) {
			b.Fatal("wrong shuffle record count")
		}
	}
}

// BenchmarkShuffle measures the in-memory shuffle: per-reducer grouping and
// approximate byte accounting over 16 tasks × 4000 records × 997 keys.
func BenchmarkShuffle(b *testing.B) { benchShuffle(b, nil, nil, 4000) }

// BenchmarkShuffleTraced is BenchmarkShuffle with a JSON-lines tracer
// enabled, bounding the span-assembly overhead on a shuffle-heavy job.
func BenchmarkShuffleTraced(b *testing.B) {
	benchShuffle(b, nil, NewJSONLTracer(io.Discard), 4000)
}

// BenchmarkShuffleTransport measures the serialized shuffle path: encode,
// Send/Receive through an in-process transport, decode, group — on the
// binary wire codec by default, on gob under STRATA_WIRE=gob.
func BenchmarkShuffleTransport(b *testing.B) {
	benchShuffle(b, func() (Transport, error) { return NewMemTransport(), nil }, nil, 4000)
}

// BenchmarkShuffleVolume scales the serialized shuffle's record volume to
// show how codec allocations grow with bytes moved — the allocs/op column is
// the budget the wire codec is held to (flat per record vs gob's per-value
// decoding; A/B with STRATA_WIRE=gob).
func BenchmarkShuffleVolume(b *testing.B) {
	for _, rows := range []int{4000, 16000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			benchShuffle(b, func() (Transport, error) { return NewMemTransport(), nil }, nil, rows)
		})
	}
}

// BenchmarkEngine runs a counting job over synthetic splits, measuring
// engine overhead per record with observability off (nil tracer).
func BenchmarkEngine(b *testing.B) { benchEngine(b, nil) }

// BenchmarkEngineTraced is BenchmarkEngine with a JSON-lines tracer enabled
// — the tracer-on cost of the same job (span assembly, wall-clock reads,
// per-key counters and JSON encoding to a discarded sink).
func BenchmarkEngineTraced(b *testing.B) {
	benchEngine(b, NewJSONLTracer(io.Discard))
}

func benchEngine(b *testing.B, tr Tracer) {
	splits := make([][]int, 16)
	for s := range splits {
		rows := make([]int, 2000)
		for i := range rows {
			rows[i] = s*2000 + i
		}
		splits[s] = rows
	}
	job := &Job[int, int, int64, int64]{
		Name: "mod-count",
		Mapper: MapperFunc[int, int, int64](func(_ *TaskContext, v int, emit func(int, int64)) {
			emit(v%64, 1)
		}),
		Combiner: CombinerFunc[int, int64](func(_ *TaskContext, _ int, vs []int64, emit func(int64)) {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			emit(sum)
		}),
		Reducer: ReducerFunc[int, int64, int64](func(_ *TaskContext, _ int, vs []int64, emit func(int64)) {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			emit(sum)
		}),
		KeyString: func(k int) string { return strconv.Itoa(k) },
	}
	cluster := &Cluster{Slaves: 4, SlotsPerSlave: 2, Cost: ZeroCostModel(), Tracer: tr}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job.Seed = int64(i)
		res, err := Run(cluster, job, splits)
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics.MapInputRecords != 32000 {
			b.Fatal("wrong input count")
		}
	}
}
