package mapreduce

import (
	"io"
	"strconv"
	"testing"
)

// shuffleHeavyJob emits every record unchanged under a wide key space with
// no combiner, so nearly all engine time is spent moving, grouping and
// byte-accounting shuffle pairs rather than in map or reduce user code.
func shuffleHeavyJob() *Job[int, int, int64, int64] {
	return &Job[int, int, int64, int64]{
		Name: "shuffle-heavy",
		Mapper: MapperFunc[int, int, int64](func(_ *TaskContext, v int, emit func(int, int64)) {
			emit(v%997, int64(v))
		}),
		Reducer: ReducerFunc[int, int64, int64](func(_ *TaskContext, _ int, vs []int64, emit func(int64)) {
			emit(int64(len(vs)))
		}),
		KeyString: func(k int) string { return strconv.Itoa(k) },
	}
}

func benchShuffle(b *testing.B, mk func() (Transport, error), tr Tracer) {
	splits := make([][]int, 16)
	for s := range splits {
		rows := make([]int, 4000)
		for i := range rows {
			rows[i] = s*4000 + i
		}
		splits[s] = rows
	}
	cluster := &Cluster{Slaves: 4, SlotsPerSlave: 2, Cost: ZeroCostModel(), Tracer: tr}
	if mk != nil {
		cluster.NewTransport = mk
	}
	job := shuffleHeavyJob()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job.Seed = int64(i)
		res, err := Run(cluster, job, splits)
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics.ShuffleRecords != 64000 {
			b.Fatal("wrong shuffle record count")
		}
	}
}

// BenchmarkShuffle measures the in-memory shuffle: per-reducer grouping and
// approximate byte accounting over 16 tasks × 4000 records × 997 keys.
func BenchmarkShuffle(b *testing.B) { benchShuffle(b, nil, nil) }

// BenchmarkShuffleTraced is BenchmarkShuffle with a JSON-lines tracer
// enabled, bounding the span-assembly overhead on a shuffle-heavy job.
func BenchmarkShuffleTraced(b *testing.B) {
	benchShuffle(b, nil, NewJSONLTracer(io.Discard))
}

// BenchmarkShuffleTransport measures the serialized shuffle path: gob
// encode, Send/Receive through an in-process transport, decode, group.
func BenchmarkShuffleTransport(b *testing.B) {
	benchShuffle(b, func() (Transport, error) { return NewMemTransport(), nil }, nil)
}

// BenchmarkEngine runs a counting job over synthetic splits, measuring
// engine overhead per record with observability off (nil tracer).
func BenchmarkEngine(b *testing.B) { benchEngine(b, nil) }

// BenchmarkEngineTraced is BenchmarkEngine with a JSON-lines tracer enabled
// — the tracer-on cost of the same job (span assembly, wall-clock reads,
// per-key counters and JSON encoding to a discarded sink).
func BenchmarkEngineTraced(b *testing.B) {
	benchEngine(b, NewJSONLTracer(io.Discard))
}

func benchEngine(b *testing.B, tr Tracer) {
	splits := make([][]int, 16)
	for s := range splits {
		rows := make([]int, 2000)
		for i := range rows {
			rows[i] = s*2000 + i
		}
		splits[s] = rows
	}
	job := &Job[int, int, int64, int64]{
		Name: "mod-count",
		Mapper: MapperFunc[int, int, int64](func(_ *TaskContext, v int, emit func(int, int64)) {
			emit(v%64, 1)
		}),
		Combiner: CombinerFunc[int, int64](func(_ *TaskContext, _ int, vs []int64, emit func(int64)) {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			emit(sum)
		}),
		Reducer: ReducerFunc[int, int64, int64](func(_ *TaskContext, _ int, vs []int64, emit func(int64)) {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			emit(sum)
		}),
		KeyString: func(k int) string { return strconv.Itoa(k) },
	}
	cluster := &Cluster{Slaves: 4, SlotsPerSlave: 2, Cost: ZeroCostModel(), Tracer: tr}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job.Seed = int64(i)
		res, err := Run(cluster, job, splits)
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics.MapInputRecords != 32000 {
			b.Fatal("wrong input count")
		}
	}
}
