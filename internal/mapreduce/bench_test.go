package mapreduce

import (
	"strconv"
	"testing"
)

// BenchmarkEngine runs a counting job over synthetic splits, measuring
// engine overhead per record.
func BenchmarkEngine(b *testing.B) {
	splits := make([][]int, 16)
	for s := range splits {
		rows := make([]int, 2000)
		for i := range rows {
			rows[i] = s*2000 + i
		}
		splits[s] = rows
	}
	job := &Job[int, int, int64, int64]{
		Name: "mod-count",
		Mapper: MapperFunc[int, int, int64](func(_ *TaskContext, v int, emit func(int, int64)) {
			emit(v%64, 1)
		}),
		Combiner: CombinerFunc[int, int64](func(_ *TaskContext, _ int, vs []int64, emit func(int64)) {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			emit(sum)
		}),
		Reducer: ReducerFunc[int, int64, int64](func(_ *TaskContext, _ int, vs []int64, emit func(int64)) {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			emit(sum)
		}),
		KeyString: func(k int) string { return strconv.Itoa(k) },
	}
	cluster := &Cluster{Slaves: 4, SlotsPerSlave: 2, Cost: ZeroCostModel()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job.Seed = int64(i)
		res, err := Run(cluster, job, splits)
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics.MapInputRecords != 32000 {
			b.Fatal("wrong input count")
		}
	}
}
