package mapreduce

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// MarshalJSONIndent renders the metrics as indented JSON. Histograms use
// their bucket wire form, so the output round-trips through
// encoding/json back into an equal Metrics value.
func (m Metrics) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// WriteJSON writes the metrics as one indented JSON object.
func (m Metrics) WriteJSON(w io.Writer) error {
	data, err := m.MarshalJSONIndent()
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WritePrometheus renders the metrics in the Prometheus text exposition
// format (counters, gauges and cumulative-bucket histograms), every series
// labelled with the job name. Map iteration is sorted, so the output is
// deterministic. cmd/strata serves the accumulated metrics of a process in
// this format at --debug-addr's /metrics endpoint.
func (m Metrics) WritePrometheus(w io.Writer) error {
	job := promEscape(m.Job)
	pw := &promWriter{w: w, job: job}

	pw.counter("strata_map_tasks_total", "Map tasks run.", float64(m.MapTasks))
	pw.counter("strata_reduce_tasks_total", "Reduce tasks run.", float64(m.ReduceTasks))
	pw.counter("strata_map_attempts_total", "Map task attempts, fault re-executions included.", float64(m.MapAttempts))
	pw.counter("strata_reduce_attempts_total", "Reduce task attempts, fault re-executions included.", float64(m.ReduceAttempts))
	pw.counter("strata_map_input_records_total", "Records read by the map phase.", float64(m.MapInputRecords))
	pw.counter("strata_map_output_records_total", "Pairs emitted by mappers.", float64(m.MapOutputRecords))
	pw.counter("strata_combine_input_records_total", "Pairs fed to combiners.", float64(m.CombineInputRecs))
	pw.counter("strata_combine_output_records_total", "Pairs emitted by combiners.", float64(m.CombineOutputRecs))
	pw.counter("strata_shuffle_records_total", "Pairs moved by the shuffle.", float64(m.ShuffleRecords))
	pw.counter("strata_shuffle_bytes_total", "Shuffle volume in bytes.", float64(m.ShuffleBytes))
	pw.counter("strata_shuffle_retries_total", "Shuffle receives retried after a transient timeout.", float64(m.ShuffleRetries))
	pw.counter("strata_reduce_input_groups_total", "Distinct keys reduced.", float64(m.ReduceInputGroups))
	pw.counter("strata_reduce_input_records_total", "Values fed to reducers.", float64(m.ReduceInputRecs))
	pw.counter("strata_output_records_total", "Final output records.", float64(m.OutputRecords))

	pw.gauge("strata_simulated_map_seconds", "Virtual-clock map makespan.", m.SimulatedMap.Seconds())
	pw.gauge("strata_simulated_shuffle_seconds", "Virtual-clock shuffle transfer time.", m.SimulatedShuffle.Seconds())
	pw.gauge("strata_simulated_reduce_seconds", "Virtual-clock reduce makespan.", m.SimulatedReduce.Seconds())
	pw.gauge("strata_wall_seconds", "Measured in-process run time.", m.WallTime.Seconds())

	pw.histogram("strata_map_task_duration_nanoseconds", "Simulated per-map-task durations.", m.MapTaskNanos, "")
	pw.histogram("strata_reduce_task_duration_nanoseconds", "Simulated per-reduce-task durations.", m.ReduceTaskNanos, "")
	pw.histogram("strata_shuffle_bucket_bytes", "Per (map task, reducer) shuffle bucket sizes.", m.BucketBytes, "")

	for _, name := range sortedKeys(m.Custom) {
		pw.histogram("strata_"+promName(name), "User-observed histogram "+name+".", *m.Custom[name], "")
	}
	if len(m.PerKey) > 0 {
		pw.help("strata_key_reduce_records_total", "Values reduced under one key (stratum).")
		pw.typ("strata_key_reduce_records_total", "counter")
		for _, key := range sortedKeys(m.PerKey) {
			pw.line("strata_key_reduce_records_total", `key="`+promEscape(key)+`"`, float64(m.PerKey[key].Records))
		}
		pw.help("strata_key_output_records_total", "Records emitted for one key (stratum).")
		pw.typ("strata_key_output_records_total", "counter")
		for _, key := range sortedKeys(m.PerKey) {
			pw.line("strata_key_output_records_total", `key="`+promEscape(key)+`"`, float64(m.PerKey[key].Output))
		}
	}
	return pw.err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promWriter accumulates exposition lines, remembering the first write error.
type promWriter struct {
	w   io.Writer
	job string
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) help(name, help string) { p.printf("# HELP %s %s\n", name, help) }
func (p *promWriter) typ(name, t string)     { p.printf("# TYPE %s %s\n", name, t) }

func (p *promWriter) line(name, extraLabels string, v float64) {
	labels := `job="` + p.job + `"`
	if extraLabels != "" {
		labels += "," + extraLabels
	}
	p.printf("%s{%s} %g\n", name, labels, v)
}

func (p *promWriter) counter(name, help string, v float64) {
	p.help(name, help)
	p.typ(name, "counter")
	p.line(name, "", v)
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.help(name, help)
	p.typ(name, "gauge")
	p.line(name, "", v)
}

func (p *promWriter) histogram(name, help string, h Histogram, extraLabels string) {
	p.help(name, help)
	p.typ(name, "histogram")
	var cum int64
	for _, b := range h.Buckets() {
		cum += b.Count
		le := fmt.Sprintf(`le="%d"`, b.Le)
		if extraLabels != "" {
			le = extraLabels + "," + le
		}
		p.line(name+"_bucket", le, float64(cum))
	}
	inf := `le="+Inf"`
	if extraLabels != "" {
		inf = extraLabels + "," + inf
	}
	p.line(name+"_bucket", inf, float64(h.Count()))
	p.line(name+"_sum", extraLabels, float64(h.Sum()))
	p.line(name+"_count", extraLabels, float64(h.Count()))
}

// promName maps an arbitrary histogram name onto the Prometheus metric-name
// alphabet.
func promName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			i > 0 && c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value: the format's three escapes, plus a
// hex rendering (\xNN, with the backslash itself escaped) for control bytes —
// compact binary shuffle keys like cps's Selection.Key must not leak raw
// bytes into a text exposition.
func promEscape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\\':
			b.WriteString(`\\`)
		case c == '"':
			b.WriteString(`\"`)
		case c == '\n':
			b.WriteString(`\n`)
		case c < 0x20 || c == 0x7f:
			fmt.Fprintf(&b, `\\x%02x`, c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// PhaseBreakdown returns the paper-style per-phase simulated time split
// (map, shuffle, reduce) as fractions of SimulatedTotal; all zeros when the
// total is zero.
func (m Metrics) PhaseBreakdown() (mapFrac, shuffleFrac, reduceFrac float64) {
	total := m.SimulatedTotal()
	if total <= 0 {
		return 0, 0, 0
	}
	return float64(m.SimulatedMap) / float64(total),
		float64(m.SimulatedShuffle) / float64(total),
		float64(m.SimulatedReduce) / float64(total)
}
