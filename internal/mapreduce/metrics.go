package mapreduce

import (
	"fmt"
	"time"
)

// Metrics reports what a job did. Record and byte counters are measured;
// the *Simulated* durations come from the cluster's cost model and virtual
// scheduler. Apart from WallTime — and the wall-clock spans an enabled
// Tracer sees — every field is deterministic for a given job, seed and
// cluster, so metrics can be compared across runs and machines.
type Metrics struct {
	// Job is the name of the job that produced these metrics.
	Job string

	MapTasks          int
	MapInputRecords   int64
	MapOutputRecords  int64
	CombineInputRecs  int64
	CombineOutputRecs int64
	ShuffleRecords    int64
	ShuffleBytes      int64
	ReduceTasks       int
	ReduceInputGroups int64
	ReduceInputRecs   int64
	OutputRecords     int64

	// MapAttempts and ReduceAttempts count task attempts including the
	// re-executions injected by the cluster's FaultModel; without faults
	// they equal MapTasks and ReduceTasks.
	MapAttempts    int64
	ReduceAttempts int64

	// ShuffleRetries counts shuffle Receive attempts that were retried after
	// a transient timeout (see Cluster.ShuffleRetry). Zero on a healthy run.
	ShuffleRetries int64

	// SimulatedMap includes per-task map and combine work scheduled over
	// the cluster's slots; SimulatedShuffle models the network transfer;
	// SimulatedReduce the reduce wave.
	SimulatedMap     time.Duration
	SimulatedShuffle time.Duration
	SimulatedReduce  time.Duration

	// WallTime is the real elapsed time of the in-process run.
	WallTime time.Duration

	// MapTaskNanos and ReduceTaskNanos are histograms of the simulated
	// per-task durations (in nanoseconds, fault attempts and straggler
	// factors included) — the per-phase latency distributions behind
	// SimulatedMap and SimulatedReduce.
	MapTaskNanos    Histogram
	ReduceTaskNanos Histogram
	// BucketBytes is a histogram of per-bucket shuffle sizes, one
	// observation per (map task, reducer) pair: wire bytes with a Transport
	// installed, approximated otherwise.
	BucketBytes Histogram

	// Custom holds histograms observed by user code through
	// TaskContext.Observe — e.g. the stratified combiner's
	// "reservoir_size" distribution of intermediate-sample sizes. Nil when
	// nothing was observed.
	Custom map[string]*Histogram

	// PerKey counts reduce input and output per key (for the paper's jobs:
	// per stratum). Collected only when the cluster asks for it
	// (Cluster.PerKeyMetrics, or any enabled Tracer); nil otherwise, so
	// wide key spaces cost nothing by default.
	PerKey map[string]KeyStats
}

// KeyStats is the per-key (per-stratum) slice of a job's reduce phase.
type KeyStats struct {
	// Records is the number of shuffled values reduced under this key.
	Records int64 `json:"records"`
	// Output is the number of records the key's reduction emitted.
	Output int64 `json:"output"`
}

// SimulatedTotal is the job's virtual makespan.
func (m Metrics) SimulatedTotal() time.Duration {
	return m.SimulatedMap + m.SimulatedShuffle + m.SimulatedReduce
}

// Add accumulates another job's metrics (used when an algorithm runs a
// pipeline of jobs).
func (m *Metrics) Add(o Metrics) {
	m.MapTasks += o.MapTasks
	m.MapInputRecords += o.MapInputRecords
	m.MapOutputRecords += o.MapOutputRecords
	m.CombineInputRecs += o.CombineInputRecs
	m.CombineOutputRecs += o.CombineOutputRecs
	m.ShuffleRecords += o.ShuffleRecords
	m.ShuffleBytes += o.ShuffleBytes
	m.ReduceTasks += o.ReduceTasks
	m.ReduceInputGroups += o.ReduceInputGroups
	m.ReduceInputRecs += o.ReduceInputRecs
	m.OutputRecords += o.OutputRecords
	m.MapAttempts += o.MapAttempts
	m.ReduceAttempts += o.ReduceAttempts
	m.ShuffleRetries += o.ShuffleRetries
	m.SimulatedMap += o.SimulatedMap
	m.SimulatedShuffle += o.SimulatedShuffle
	m.SimulatedReduce += o.SimulatedReduce
	m.WallTime += o.WallTime
	m.MapTaskNanos.Merge(o.MapTaskNanos)
	m.ReduceTaskNanos.Merge(o.ReduceTaskNanos)
	m.BucketBytes.Merge(o.BucketBytes)
	for name, h := range o.Custom {
		if m.Custom == nil {
			m.Custom = make(map[string]*Histogram, len(o.Custom))
		}
		if mine := m.Custom[name]; mine != nil {
			mine.Merge(*h)
		} else {
			cp := *h
			m.Custom[name] = &cp
		}
	}
	for key, ks := range o.PerKey {
		if m.PerKey == nil {
			m.PerKey = make(map[string]KeyStats, len(o.PerKey))
		}
		mine := m.PerKey[key]
		mine.Records += ks.Records
		mine.Output += ks.Output
		m.PerKey[key] = mine
	}
}

// String renders a one-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("%s: map %d recs -> %d pairs, shuffle %d recs/%dB, reduce %d groups -> %d out, sim %v",
		m.Job, m.MapInputRecords, m.MapOutputRecords, m.ShuffleRecords, m.ShuffleBytes,
		m.ReduceInputGroups, m.OutputRecords, m.SimulatedTotal().Round(time.Millisecond))
}

// approxSize estimates the wire size of a shuffled key or value. Types can
// take control by implementing interface{ ByteSize() int }.
func approxSize(v any) int {
	switch x := v.(type) {
	case interface{ ByteSize() int }:
		return x.ByteSize()
	case string:
		return len(x)
	case int, int64, uint64, float64:
		return 8
	case int32, uint32, float32:
		return 4
	case bool, int8, uint8:
		return 1
	case int16, uint16:
		return 2
	default:
		return 8
	}
}

// fixedApproxSize reports the approxSize shared by every value of v's
// dynamic type, or ok=false when the size is per-value (strings and ByteSize
// implementers). It lets the shuffle account a whole bucket of fixed-size
// pairs with one multiplication instead of two interface conversions per
// pair.
func fixedApproxSize(v any) (size int, ok bool) {
	switch v.(type) {
	case interface{ ByteSize() int }, string:
		return 0, false
	default:
		return approxSize(v), true
	}
}

// bucketApproxSize estimates the wire size of one shuffle bucket. The
// fixed-vs-variable decision is made once per bucket from the first pair
// (all pairs share the concrete key and value types), and the result is
// byte-identical to summing approxSize over every pair.
func bucketApproxSize[K comparable, V any](pairs []Pair[K, V]) int64 {
	if len(pairs) == 0 {
		return 0
	}
	keySize, keyFixed := fixedApproxSize(pairs[0].Key)
	valSize, valFixed := fixedApproxSize(pairs[0].Value)
	if keyFixed && valFixed {
		return int64(keySize+valSize) * int64(len(pairs))
	}
	var total int64
	for i := range pairs {
		k, v := keySize, valSize
		if !keyFixed {
			k = approxSize(pairs[i].Key)
		}
		if !valFixed {
			v = approxSize(pairs[i].Value)
		}
		total += int64(k + v)
	}
	return total
}
