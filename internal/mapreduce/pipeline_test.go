package mapreduce

import (
	"reflect"
	"strconv"
	"testing"
)

// TestPipelinedShuffleStress drives the pipelined shuffle hard — many map
// tasks racing to hand buckets to many reducers, with and without a
// transport — and checks the output is byte-identical to a fully serial
// (one-slot) run. Run under `go test -race ./internal/mapreduce/` this is
// the main concurrency check for the map→shuffle→reduce pipeline.
func TestPipelinedShuffleStress(t *testing.T) {
	splits := make([][]int, 32)
	for s := range splits {
		rows := make([]int, 300)
		for i := range rows {
			rows[i] = s*300 + i
		}
		splits[s] = rows
	}
	mkJob := func() *Job[int, int, int64, Pair[int, int64]] {
		return &Job[int, int, int64, Pair[int, int64]]{
			Name: "pipeline-stress",
			Seed: 42,
			Mapper: MapperFunc[int, int, int64](func(ctx *TaskContext, v int, emit func(int, int64)) {
				// Draw from the task RNG so determinism depends on correct
				// per-task seeding, not just on pure data flow.
				emit(v%101, int64(v)+ctx.Rand.Int63n(3))
			}),
			Reducer: ReducerFunc[int, int64, Pair[int, int64]](func(ctx *TaskContext, k int, vs []int64, emit func(Pair[int, int64])) {
				var sum int64
				for _, v := range vs {
					sum += v
				}
				emit(Pair[int, int64]{k, sum + ctx.Rand.Int63n(3)})
			}),
			NumReducers: 8,
			KeyString:   func(k int) string { return strconv.Itoa(k) },
		}
	}

	serial := &Cluster{Slaves: 1, SlotsPerSlave: 1, Cost: ZeroCostModel()}
	want, err := Run(serial, mkJob(), splits)
	if err != nil {
		t.Fatal(err)
	}

	wide := func(name string, transport bool) {
		c := &Cluster{Slaves: 8, SlotsPerSlave: 2, Cost: ZeroCostModel()}
		if transport {
			c.NewTransport = func() (Transport, error) { return NewMemTransport(), nil }
		}
		got, err := Run(c, mkJob(), splits)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got.Output, want.Output) {
			t.Fatalf("%s: output differs from serial run", name)
		}
		if got.Metrics.ShuffleRecords != want.Metrics.ShuffleRecords {
			t.Fatalf("%s: shuffle records %d, want %d", name,
				got.Metrics.ShuffleRecords, want.Metrics.ShuffleRecords)
		}
		if transport {
			// Transport runs count encoded wire bytes, not approxSize, so
			// only sanity-check them.
			if got.Metrics.ShuffleBytes <= 0 {
				t.Fatalf("%s: no shuffle bytes accounted", name)
			}
		} else if got.Metrics.ShuffleBytes != want.Metrics.ShuffleBytes {
			t.Fatalf("%s: shuffle bytes %d, want %d", name,
				got.Metrics.ShuffleBytes, want.Metrics.ShuffleBytes)
		}
	}
	wide("in-memory", false)
	wide("transport", true)
}
