package mapreduce

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
)

// Pair is a key-value pair.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// Mapper transforms one input record into zero or more key-value pairs.
type Mapper[I any, K comparable, V any] interface {
	Map(ctx *TaskContext, in I, emit func(K, V))
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc[I any, K comparable, V any] func(ctx *TaskContext, in I, emit func(K, V))

// Map calls the function.
func (f MapperFunc[I, K, V]) Map(ctx *TaskContext, in I, emit func(K, V)) { f(ctx, in, emit) }

// BatchMapper is an optional whole-split fast path for the map stage. A job
// that sets one must make MapSplit produce exactly the emissions the
// per-record Mapper would: the same (key, value) stream in the same order.
// The engine then skips the per-record emit closure and lets the batch
// mapper amortize allocations (value arenas, cached group indexes) across
// the split, while counters, combine ordering and output stay byte-identical
// to the per-record path — a correctness contract the engine cannot check,
// so it is pinned by tests in the packages that provide batch mappers.
type BatchMapper[I any, K comparable, V any] interface {
	MapSplit(ctx *TaskContext, split []I, out *Grouper[K, V])
}

// Combiner performs a partial, per-map-task aggregation of the values of one
// key before they are shuffled, as in Hadoop: its output value type equals
// its input value type.
type Combiner[K comparable, V any] interface {
	Combine(ctx *TaskContext, key K, values []V, emit func(V))
}

// CombinerFunc adapts a function to the Combiner interface.
type CombinerFunc[K comparable, V any] func(ctx *TaskContext, key K, values []V, emit func(V))

// Combine calls the function.
func (f CombinerFunc[K, V]) Combine(ctx *TaskContext, key K, values []V, emit func(V)) {
	f(ctx, key, values, emit)
}

// Reducer merges all values of one key into zero or more output records.
type Reducer[K comparable, V any, O any] interface {
	Reduce(ctx *TaskContext, key K, values []V, emit func(O))
}

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc[K comparable, V any, O any] func(ctx *TaskContext, key K, values []V, emit func(O))

// Reduce calls the function.
func (f ReducerFunc[K, V, O]) Reduce(ctx *TaskContext, key K, values []V, emit func(O)) {
	f(ctx, key, values, emit)
}

// Job describes one MapReduce program. Mapper and Reducer are required;
// Combiner, Partition, KeyString and NumReducers have sensible defaults.
type Job[I any, K comparable, V any, O any] struct {
	// Name labels the job in metrics and errors.
	Name string
	// Mapper processes each input record of each split.
	Mapper Mapper[I, K, V]
	// BatchMapper, when non-nil, replaces Mapper on the map stage with a
	// whole-split call. It must emit exactly what Mapper would (see the
	// interface contract); Mapper stays required as the semantic definition
	// and as the reference the batch path is tested against.
	BatchMapper BatchMapper[I, K, V]
	// Combiner, when non-nil, aggregates map output per task before the
	// shuffle.
	Combiner Combiner[K, V]
	// Reducer merges the values of each key.
	Reducer Reducer[K, V, O]
	// NumReducers is the number of reduce tasks (default: the cluster's
	// slave count, at least 1).
	NumReducers int
	// Partition routes a key to one of n reducers (default: FNV hash of
	// KeyString).
	Partition func(key K, n int) int
	// KeyString renders a key canonically; it drives default partitioning,
	// deterministic reduce ordering and per-key RNG seeding (default:
	// fmt.Sprint).
	KeyString func(K) string
	// Seed makes the job's task RNGs — and hence its output — reproducible.
	Seed int64
	// Maker names the job factory registered with RegisterJobMaker and
	// Config carries its serialized argument. Together they make the job
	// portable: a remote executor ships (Maker, Config) to worker processes
	// that rebuild the job locally. Jobs with an empty Maker run in-process
	// even when the cluster has a remote executor installed.
	Maker  string
	Config []byte
}

func (j *Job[I, K, V, O]) keyString(k K) string {
	if j.KeyString != nil {
		return j.KeyString(k)
	}
	return fmt.Sprint(k)
}

func (j *Job[I, K, V, O]) partition(k K, n int) int {
	return j.partitionByName(k, j.keyString(k), n)
}

// partitionByName is partition with the key's canonical string already
// computed, so callers that need the name anyway (combine ordering, reduce
// seeding) render each key only once.
func (j *Job[I, K, V, O]) partitionByName(k K, name string, n int) int {
	if j.Partition != nil {
		p := j.Partition(k, n)
		if p < 0 || p >= n {
			panic(fmt.Sprintf("mapreduce: job %q partitioner returned %d for %d reducers", j.Name, p, n))
		}
		return p
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(n))
}

// TaskContext carries per-task state into user map, combine and reduce code:
// a deterministic random source, the task's identity, and an Observe hook
// feeding the job's custom histograms.
type TaskContext struct {
	// Rand is the task's private random source; user code must use it
	// (not the global rand) so jobs are reproducible.
	Rand *rand.Rand
	// JobName is the name of the running job.
	JobName string
	// Phase is "map", "combine" or "reduce".
	Phase string
	// Task is the map-task index, or the reduce-task index.
	Task int

	// observe, when non-nil, records a named observation into the task's
	// local histogram set; the engine folds those into Metrics.Custom.
	observe func(name string, v int64)
}

// Observe records one value into the job's custom histogram named name,
// surfaced after the run as Metrics.Custom[name]. The stratified combiner
// uses it for intermediate reservoir sizes ("reservoir_size"); any map,
// combine or reduce code may add its own series. Observations are folded
// deterministically, and the call is a no-op outside an engine-run task.
// It is intended for per-key or per-task observations, not per-record ones.
func (ctx *TaskContext) Observe(name string, v int64) {
	if ctx.observe != nil {
		ctx.observe(name, v)
	}
}

// taskSeed derives a deterministic per-task seed: the FNV-1a hash of
// "<jobSeed>/<phase>/<id>", computed inline so the per-reduce-key path does
// not allocate. The value is bit-identical to hashing the formatted string.
func taskSeed(jobSeed int64, phase string, id string) int64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	var buf [20]byte
	for _, c := range strconv.AppendInt(buf[:0], jobSeed, 10) {
		h = (h ^ uint64(c)) * prime64
	}
	h = (h ^ '/') * prime64
	for i := 0; i < len(phase); i++ {
		h = (h ^ uint64(phase[i])) * prime64
	}
	h = (h ^ '/') * prime64
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * prime64
	}
	return int64(h)
}

func newTaskContext(jobName, phase string, task int, seed int64) *TaskContext {
	return &TaskContext{
		Rand:    newTaskRand(seed),
		JobName: jobName,
		Phase:   phase,
		Task:    task,
	}
}
