package mapreduce

import (
	"fmt"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// This file is the engine's side of the binary wire codec (PR 6): payload
// encodings for task splits, shuffle buckets and reduce outputs, plus the
// TaskSpec/TaskResult frame bodies the worker protocol embeds. gob remains
// as a tagged fallback — for types without a registered codec, and for the
// `-wire gob` escape hatch — so every payload stays decodable by every peer
// regardless of which side negotiated what.

// gobPayloads forces the gob fallback for every payload this process
// encodes, and keeps frame connections in gob mode. It is the `-wire gob`
// escape hatch (STRATA_WIRE=gob), for debugging codec suspicions in the
// field and for A/B benchmarking the two formats on one binary.
var gobPayloads atomic.Bool

func init() {
	if os.Getenv("STRATA_WIRE") == "gob" {
		gobPayloads.Store(true)
	}
}

// SetWireGob toggles the gob escape hatch at runtime (the CLI's -wire flag).
func SetWireGob(v bool) { gobPayloads.Store(v) }

// WireGob reports whether payloads are forced to gob.
func WireGob() bool { return gobPayloads.Load() }

// Every payload (split, bucket, output) starts with one tag byte, making it
// self-describing: direct shuffle ships buckets worker-to-worker, where the
// sender cannot know whether the consumer negotiated the binary format.
const (
	payloadGob    = 0x00
	payloadBinary = 0x01
)

// --- codec registries -------------------------------------------------------

// BucketCodec encodes/decodes one shuffle pair of a concrete (K, V)
// instantiation. AppendPair appends one pair's binary form; ReadPair
// reverses it. Registered codecs put their pair type on the binary fast
// path; unregistered pair types ride the gob fallback unchanged.
type BucketCodec[K comparable, V any] struct {
	AppendPair func(buf []byte, p Pair[K, V]) []byte
	ReadPair   func(r *wire.Reader) (Pair[K, V], error)
}

// SliceCodec encodes/decodes a whole []T payload (map splits, reduce
// outputs). Operating on the slice rather than per element lets a codec
// pick a columnar layout (dataset.TupleBatch).
type SliceCodec[T any] struct {
	Append func(buf []byte, v []T) []byte
	Read   func(r *wire.Reader) ([]T, error)
}

// codecs maps reflect.Type of *[]Pair[K,V] (buckets) or *[]T (slices) to
// the registered codec. sync.Map: written during init, read on the hot path.
var codecs sync.Map

// RegisterBucketCodec installs the binary codec for one pair type. Call it
// from an init function alongside RegisterJobMaker, so coordinator and
// worker binaries agree on the format.
func RegisterBucketCodec[K comparable, V any](c BucketCodec[K, V]) {
	codecs.Store(reflect.TypeOf((*[]Pair[K, V])(nil)), c)
}

// RegisterSliceCodec installs the binary codec for []T payloads.
func RegisterSliceCodec[T any](c SliceCodec[T]) {
	codecs.Store(reflect.TypeOf((*[]T)(nil)), c)
}

func lookupBucketCodec[K comparable, V any]() (BucketCodec[K, V], bool) {
	v, ok := codecs.Load(reflect.TypeOf((*[]Pair[K, V])(nil)))
	if !ok {
		return BucketCodec[K, V]{}, false
	}
	return v.(BucketCodec[K, V]), true
}

func lookupSliceCodec[T any]() (SliceCodec[T], bool) {
	v, ok := codecs.Load(reflect.TypeOf((*[]T)(nil)))
	if !ok {
		return SliceCodec[T]{}, false
	}
	return v.(SliceCodec[T]), true
}

// --- tagged slice payloads (splits, reduce outputs) -------------------------

// encodeSlice serializes a []T payload: binary when a codec is registered
// and the escape hatch is off, tagged gob otherwise.
func encodeSlice[T any](v []T) ([]byte, error) {
	if c, ok := lookupSliceCodec[T](); ok && !gobPayloads.Load() {
		buf := make([]byte, 1, 64)
		buf[0] = payloadBinary
		return c.Append(buf, v), nil
	}
	raw, err := gobEncode(v)
	if err != nil {
		return nil, err
	}
	return append([]byte{payloadGob}, raw...), nil
}

// decodeSlice reverses encodeSlice, dispatching on the tag byte — the
// decoder side never guesses, so mixed pools interoperate per payload.
func decodeSlice[T any](payload []byte) ([]T, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("mapreduce: empty slice payload: %w", wire.ErrTruncated)
	}
	switch payload[0] {
	case payloadGob:
		var v []T
		if err := gobDecode(payload[1:], &v); err != nil {
			return nil, err
		}
		return v, nil
	case payloadBinary:
		c, ok := lookupSliceCodec[T]()
		if !ok {
			return nil, fmt.Errorf("mapreduce: binary slice payload for unregistered type %T", ([]T)(nil))
		}
		r := wire.NewReader(payload[1:])
		v, err := c.Read(r)
		if err != nil {
			return nil, err
		}
		return v, r.Done()
	default:
		return nil, fmt.Errorf("mapreduce: unknown payload tag %#x: %w", payload[0], wire.ErrCorrupt)
	}
}

// --- histograms -------------------------------------------------------------

// appendHistogram encodes a histogram sparsely: summary varints, then only
// the non-zero buckets as (index, count) pairs — task histograms touch a
// handful of the 65 buckets.
func appendHistogram(buf []byte, h *Histogram) []byte {
	buf = wire.AppendVarint(buf, h.count)
	buf = wire.AppendVarint(buf, h.sum)
	buf = wire.AppendVarint(buf, h.min)
	buf = wire.AppendVarint(buf, h.max)
	nz := 0
	for _, c := range h.buckets {
		if c != 0 {
			nz++
		}
	}
	buf = wire.AppendUvarint(buf, uint64(nz))
	for i, c := range h.buckets {
		if c != 0 {
			buf = append(buf, byte(i))
			buf = wire.AppendVarint(buf, c)
		}
	}
	return buf
}

func readHistogram(r *wire.Reader) (*Histogram, error) {
	h := &Histogram{}
	h.count = r.Varint()
	h.sum = r.Varint()
	h.min = r.Varint()
	h.max = r.Varint()
	nz := r.Count(2)
	for i := 0; i < nz; i++ {
		idx := r.Byte()
		c := r.Varint()
		if r.Err() == nil && int(idx) >= histogramBuckets {
			return nil, fmt.Errorf("mapreduce: histogram bucket index %d: %w", idx, wire.ErrCorrupt)
		}
		if r.Err() == nil {
			h.buckets[idx] = c
		}
	}
	return h, r.Err()
}

// --- TaskSpec ---------------------------------------------------------------

// Spec/result flag bits.
const (
	specHasShuffle  = 1 << 0
	specCollectKeys = 1 << 1
	specFrozen      = 1 << 2
	// specHasTrace marks a trace-context extension after the shuffle
	// section: trace id, run id, parent span id. Introduced with wire
	// version 2 — the worker pool strips trace fields from specs bound for
	// older binary peers, whose decoders reject trailing bytes.
	specHasTrace = 1 << 3
)

// AppendTaskSpec appends the spec's binary frame body. The layout mirrors
// the struct field order; Config/Split/Buckets are embedded verbatim (they
// carry their own payload tags).
func AppendTaskSpec(buf []byte, s *TaskSpec) []byte {
	buf = wire.AppendString(buf, s.Job)
	buf = wire.AppendString(buf, s.Maker)
	buf = wire.AppendBytes(buf, s.Config)
	buf = wire.AppendString(buf, s.Phase)
	buf = wire.AppendUvarint(buf, uint64(s.Task))
	buf = wire.AppendVarint(buf, s.Seed)
	buf = wire.AppendUvarint(buf, uint64(s.NumReducers))
	buf = wire.AppendBytes(buf, s.Split)
	buf = wire.AppendUvarint(buf, uint64(len(s.Buckets)))
	for _, b := range s.Buckets {
		buf = wire.AppendBytes(buf, b)
	}
	buf = wire.AppendUvarint(buf, uint64(s.NumMapTasks))
	var flags byte
	if s.Shuffle != nil {
		flags |= specHasShuffle
	}
	if s.CollectKeys {
		flags |= specCollectKeys
	}
	if s.Frozen {
		flags |= specFrozen
	}
	if s.Trace != "" {
		flags |= specHasTrace
	}
	buf = append(buf, flags)
	if s.Shuffle != nil {
		buf = wire.AppendString(buf, s.Shuffle.Session)
		buf = wire.AppendUvarint(buf, uint64(len(s.Shuffle.Workers)))
		for _, w := range s.Shuffle.Workers {
			buf = wire.AppendString(buf, w)
		}
		buf = wire.AppendUvarint(buf, uint64(len(s.Shuffle.Endpoints)))
		for _, e := range s.Shuffle.Endpoints {
			buf = wire.AppendString(buf, e)
		}
		buf = wire.AppendVarint(buf, s.Shuffle.TimeoutMs)
	}
	if s.Trace != "" {
		buf = wire.AppendString(buf, s.Trace)
		buf = wire.AppendString(buf, s.TraceRun)
		buf = wire.AppendUvarint(buf, s.TraceParent)
	}
	return buf
}

// ReadTaskSpec decodes one AppendTaskSpec body. Byte-slice fields are views
// into the reader's buffer: the frame buffer must outlive the spec, which
// the worker runtime guarantees by never recycling read-path buffers.
func ReadTaskSpec(r *wire.Reader) (*TaskSpec, error) {
	s := &TaskSpec{}
	s.Job = r.String()
	s.Maker = r.String()
	s.Config = r.Bytes()
	s.Phase = r.String()
	s.Task = int(r.Uvarint())
	s.Seed = r.Varint()
	s.NumReducers = int(r.Uvarint())
	s.Split = r.Bytes()
	if n := r.Count(1); n > 0 {
		s.Buckets = make([][]byte, n)
		for i := range s.Buckets {
			s.Buckets[i] = r.Bytes()
		}
	}
	s.NumMapTasks = int(r.Uvarint())
	flags := r.Byte()
	s.CollectKeys = flags&specCollectKeys != 0
	s.Frozen = flags&specFrozen != 0
	if flags&specHasShuffle != 0 {
		p := &ShufflePlan{}
		p.Session = r.String()
		if n := r.Count(1); n > 0 {
			p.Workers = make([]string, n)
			for i := range p.Workers {
				p.Workers[i] = r.String()
			}
		}
		if n := r.Count(1); n > 0 {
			p.Endpoints = make([]string, n)
			for i := range p.Endpoints {
				p.Endpoints[i] = r.String()
			}
		}
		p.TimeoutMs = r.Varint()
		s.Shuffle = p
	}
	if flags&specHasTrace != 0 {
		s.Trace = r.String()
		s.TraceRun = r.String()
		s.TraceParent = r.Uvarint()
	}
	return s, r.Err()
}

// --- TaskResult -------------------------------------------------------------

// AppendTaskResult appends the result's binary frame body. Map-valued
// fields (Custom, PerKey) are sorted by key so the encoding is
// deterministic — frames are comparable in tests and re-sends are
// byte-identical.
func AppendTaskResult(buf []byte, t *TaskResult) []byte {
	buf = wire.AppendUvarint(buf, uint64(len(t.Buckets)))
	for _, b := range t.Buckets {
		buf = wire.AppendBytes(buf, b)
	}
	buf = wire.AppendVarint(buf, t.DirectBytes)
	buf = wire.AppendBytes(buf, t.Output)
	c := &t.Counters
	buf = wire.AppendVarint(buf, c.In)
	buf = wire.AppendVarint(buf, c.Out)
	buf = wire.AppendVarint(buf, c.CombineIn)
	buf = wire.AppendVarint(buf, c.CombineOut)
	buf = wire.AppendVarint(buf, c.Groups)
	buf = wire.AppendUvarint(buf, uint64(len(c.BucketSizes)))
	for _, v := range c.BucketSizes {
		buf = wire.AppendVarint(buf, v)
	}
	buf = wire.AppendVarint(buf, int64(c.MapWall))
	buf = wire.AppendVarint(buf, int64(c.CombineWall))
	buf = wire.AppendVarint(buf, int64(c.RecvWall))
	buf = wire.AppendUvarint(buf, uint64(len(t.Custom)))
	for _, name := range sortedKeys(t.Custom) {
		buf = wire.AppendString(buf, name)
		buf = appendHistogram(buf, t.Custom[name])
	}
	buf = wire.AppendUvarint(buf, uint64(len(t.PerKey)))
	for _, key := range sortedKeys(t.PerKey) {
		ks := t.PerKey[key]
		buf = wire.AppendString(buf, key)
		buf = wire.AppendVarint(buf, ks.Records)
		buf = wire.AppendVarint(buf, ks.Output)
	}
	buf = wire.AppendString(buf, t.Worker)
	buf = wire.AppendUvarint(buf, uint64(len(t.FailedAttempts)))
	for _, a := range t.FailedAttempts {
		buf = wire.AppendString(buf, a.Worker)
		buf = wire.AppendString(buf, a.Err)
	}
	// Trace extension (wire version ≥ 2): worker spans ride as a trailing
	// section. It is self-describing by position — the result body is
	// always the last thing in its frame, so its absence is simply "no
	// bytes left" — and a worker only emits it in reply to a spec that
	// carried a trace context, which proves the coordinator decodes it.
	if len(t.Spans) > 0 {
		buf = wire.AppendUvarint(buf, uint64(len(t.Spans)))
		for _, ws := range t.Spans {
			buf = wire.AppendString(buf, ws.Phase)
			buf = wire.AppendVarint(buf, ws.Start)
			buf = wire.AppendVarint(buf, int64(ws.Dur))
			buf = wire.AppendVarint(buf, ws.Bytes)
		}
	}
	return buf
}

// ReadTaskResult decodes one AppendTaskResult body. As with ReadTaskSpec,
// byte-slice fields alias the reader's buffer.
func ReadTaskResult(r *wire.Reader) (*TaskResult, error) {
	t := &TaskResult{}
	if n := r.Count(1); n > 0 {
		t.Buckets = make([][]byte, n)
		for i := range t.Buckets {
			t.Buckets[i] = r.Bytes()
		}
	}
	t.DirectBytes = r.Varint()
	t.Output = r.Bytes()
	c := &t.Counters
	c.In = r.Varint()
	c.Out = r.Varint()
	c.CombineIn = r.Varint()
	c.CombineOut = r.Varint()
	c.Groups = r.Varint()
	if n := r.Count(1); n > 0 {
		c.BucketSizes = make([]int64, n)
		for i := range c.BucketSizes {
			c.BucketSizes[i] = r.Varint()
		}
	}
	c.MapWall = time.Duration(r.Varint())
	c.CombineWall = time.Duration(r.Varint())
	c.RecvWall = time.Duration(r.Varint())
	if n := r.Count(5); n > 0 {
		t.Custom = make(map[string]*Histogram, n)
		for i := 0; i < n; i++ {
			name := r.String()
			h, err := readHistogram(r)
			if err != nil {
				return nil, err
			}
			t.Custom[name] = h
		}
	}
	if n := r.Count(3); n > 0 {
		t.PerKey = make(map[string]KeyStats, n)
		for i := 0; i < n; i++ {
			key := r.String()
			t.PerKey[key] = KeyStats{Records: r.Varint(), Output: r.Varint()}
		}
	}
	t.Worker = r.String()
	if n := r.Count(2); n > 0 {
		t.FailedAttempts = make([]TaskAttempt, n)
		for i := range t.FailedAttempts {
			t.FailedAttempts[i].Worker = r.String()
			t.FailedAttempts[i].Err = r.String()
		}
	}
	if r.Err() == nil && r.Remaining() > 0 {
		if n := r.Count(4); n > 0 {
			t.Spans = make([]WorkerSpan, n)
			for i := range t.Spans {
				t.Spans[i].Phase = r.String()
				t.Spans[i].Start = r.Varint()
				t.Spans[i].Dur = time.Duration(r.Varint())
				t.Spans[i].Bytes = r.Varint()
			}
		}
	}
	return t, r.Err()
}
