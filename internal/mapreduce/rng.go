package mapreduce

import "math/rand"

// lazySource defers the expensive seeding of the standard library's random
// source until the first draw. The engine creates one random source per map
// task and per reduce *key*, and seeding initializes a 607-word
// lagged-Fibonacci state each time (~30% of engine time under profiling for
// jobs that never sample). Most task contexts never touch ctx.Rand — any
// job without explicit randomness — so the lazy wrapper makes their seeding
// free while keeping the draw sequence of seeded contexts byte-identical to
// rand.NewSource: same seed, same stream, same samples.
type lazySource struct {
	seed int64
	src  rand.Source64
}

func (s *lazySource) force() rand.Source64 {
	if s.src == nil {
		s.src = rand.NewSource(s.seed).(rand.Source64)
	}
	return s.src
}

func (s *lazySource) Int63() int64   { return s.force().Int63() }
func (s *lazySource) Uint64() uint64 { return s.force().Uint64() }

func (s *lazySource) Seed(seed int64) {
	s.seed = seed
	s.src = nil
}

// newTaskRand returns a *rand.Rand whose seeding cost is paid on first use.
// Determinism is unchanged: equal seeds yield equal streams, and every
// stream is private to one task (or one reduce key), so output is
// reproducible regardless of goroutine interleaving.
func newTaskRand(seed int64) *rand.Rand {
	return rand.New(&lazySource{seed: seed})
}
