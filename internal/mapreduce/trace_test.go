package mapreduce

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func tracedCluster(tr Tracer) *Cluster {
	c := NewCluster(3)
	c.Tracer = tr
	return c
}

// countPhase tallies spans by phase.
func countPhase(spans []Span) map[string]int {
	out := make(map[string]int)
	for _, s := range spans {
		out[s.Phase]++
	}
	return out
}

// TestTracedSpansMatchAttempts is the acceptance check: under injected
// faults, the engine emits one map/reduce span per attempt, so the span
// counts reproduce Metrics.MapAttempts and Metrics.ReduceAttempts exactly.
func TestTracedSpansMatchAttempts(t *testing.T) {
	tr := NewMemTracer()
	c := tracedCluster(tr)
	c.Faults = &FaultModel{TaskFailureProb: 0.4, StragglerStdDev: 0.3, Seed: 11}
	res, err := Run(c, wordCountJob(5, true), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	byPhase := countPhase(spans)
	if got, want := int64(byPhase[PhaseMap]), res.Metrics.MapAttempts; got != want {
		t.Fatalf("map spans %d, MapAttempts %d", got, want)
	}
	if got, want := int64(byPhase[PhaseReduce]), res.Metrics.ReduceAttempts; got != want {
		t.Fatalf("reduce spans %d, ReduceAttempts %d", got, want)
	}
	if byPhase[PhaseCombine] != res.Metrics.MapTasks {
		t.Fatalf("combine spans %d, map tasks %d", byPhase[PhaseCombine], res.Metrics.MapTasks)
	}
	if byPhase[PhaseShuffleSend] != res.Metrics.MapTasks ||
		byPhase[PhaseShuffleRecv] != res.Metrics.ReduceTasks {
		t.Fatalf("shuffle spans %d send / %d recv, want %d / %d",
			byPhase[PhaseShuffleSend], byPhase[PhaseShuffleRecv],
			res.Metrics.MapTasks, res.Metrics.ReduceTasks)
	}
	if byPhase[PhaseJob] != 1 {
		t.Fatalf("job spans %d, want 1", byPhase[PhaseJob])
	}
	// Every non-final attempt is marked Failed and carries no wall time;
	// every final attempt succeeded.
	attempts := make(map[int]int)
	for _, s := range spans {
		if s.Phase != PhaseMap {
			continue
		}
		attempts[s.Task]++
		if s.Failed && s.Wall != 0 {
			t.Fatalf("failed attempt carries wall time: %+v", s)
		}
		if s.Attempt != attempts[s.Task] {
			t.Fatalf("attempt numbers of task %d not contiguous: %+v", s.Task, s)
		}
	}
	for task, n := range attempts {
		if n < 1 {
			t.Fatalf("task %d has no attempts", task)
		}
	}
	// Span record counts agree with the phase totals.
	var mapRecs, redRecs int64
	for _, s := range spans {
		if s.Phase == PhaseMap && !s.Failed {
			mapRecs += s.Records
		}
		if s.Phase == PhaseReduce && !s.Failed {
			redRecs += s.Records
		}
	}
	if mapRecs != res.Metrics.MapInputRecords {
		t.Fatalf("map span records %d, metrics %d", mapRecs, res.Metrics.MapInputRecords)
	}
	if redRecs != res.Metrics.ReduceInputRecs {
		t.Fatalf("reduce span records %d, metrics %d", redRecs, res.Metrics.ReduceInputRecs)
	}
}

// TestTracerOffMatchesOn: tracing must not change output or deterministic
// metrics, and a NopTracer must behave like no tracer at all.
func TestTracerOffMatchesOn(t *testing.T) {
	plain, err := Run(NewCluster(3), wordCountJob(2, true), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	nop, err := Run(tracedCluster(NopTracer{}), wordCountJob(2, true), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Run(tracedCluster(NewMemTracer()), wordCountJob(2, true), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedWC(plain.Output), sortedWC(nop.Output)) ||
		!reflect.DeepEqual(sortedWC(plain.Output), sortedWC(traced.Output)) {
		t.Fatal("tracer changed job output")
	}
	if nop.Metrics.PerKey != nil {
		t.Fatal("NopTracer triggered per-key collection")
	}
	if traced.Metrics.PerKey == nil {
		t.Fatal("enabled tracer did not trigger per-key collection")
	}
	if plain.Metrics.ShuffleBytes != traced.Metrics.ShuffleBytes ||
		plain.Metrics.MapOutputRecords != traced.Metrics.MapOutputRecords {
		t.Fatal("tracer changed deterministic counters")
	}
}

func TestJSONLTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	res, err := Run(tracedCluster(tr), wordCountJob(3, true), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byPhase := countPhase(spans)
	if int64(byPhase[PhaseMap]) != res.Metrics.MapAttempts || byPhase[PhaseJob] != 1 {
		t.Fatalf("span file lost spans: %v", byPhase)
	}
	for _, s := range spans {
		if s.Job != "wordcount" {
			t.Fatalf("span lost job name: %+v", s)
		}
	}
}

// TestPerKeyMetrics: the per-stratum counters must reproduce the word counts.
func TestPerKeyMetrics(t *testing.T) {
	c := NewCluster(3)
	c.PerKeyMetrics = true
	res, err := Run(c, wordCountJob(1, false), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]KeyStats{
		"a": {Records: 3, Output: 1},
		"b": {Records: 3, Output: 1},
		"c": {Records: 4, Output: 1},
	}
	if !reflect.DeepEqual(res.Metrics.PerKey, want) {
		t.Fatalf("PerKey = %v, want %v", res.Metrics.PerKey, want)
	}
}

// TestObserveFeedsCustomHistograms: TaskContext.Observe surfaces user
// histograms on Metrics.Custom, folded across tasks.
func TestObserveFeedsCustomHistograms(t *testing.T) {
	job := wordCountJob(1, true)
	base := job.Combiner
	job.Combiner = CombinerFunc[string, int64](func(ctx *TaskContext, k string, vs []int64, emit func(int64)) {
		ctx.Observe("combine_group_size", int64(len(vs)))
		base.Combine(ctx, k, vs, emit)
	})
	res, err := Run(NewCluster(3), job, wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Metrics.Custom["combine_group_size"]
	if h == nil {
		t.Fatal("custom histogram missing")
	}
	if h.Count() == 0 || h.Sum() != res.Metrics.CombineInputRecs {
		t.Fatalf("histogram %v does not cover the %d combine inputs", h, res.Metrics.CombineInputRecs)
	}
}

// TestMetricsHistogramsPopulated: the always-on engine histograms cover every
// task and bucket.
func TestMetricsHistogramsPopulated(t *testing.T) {
	res, err := Run(NewCluster(3), wordCountJob(1, true), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.MapTaskNanos.Count() != int64(m.MapTasks) {
		t.Fatalf("MapTaskNanos n=%d, want %d", m.MapTaskNanos.Count(), m.MapTasks)
	}
	if m.ReduceTaskNanos.Count() != int64(m.ReduceTasks) {
		t.Fatalf("ReduceTaskNanos n=%d, want %d", m.ReduceTaskNanos.Count(), m.ReduceTasks)
	}
	if want := int64(m.MapTasks * m.ReduceTasks); m.BucketBytes.Count() != want {
		t.Fatalf("BucketBytes n=%d, want %d", m.BucketBytes.Count(), want)
	}
	if m.BucketBytes.Sum() != m.ShuffleBytes {
		t.Fatalf("BucketBytes sum %d != ShuffleBytes %d", m.BucketBytes.Sum(), m.ShuffleBytes)
	}
}

// TestMetricsJSONRoundTrip: Metrics — histograms, custom series and per-key
// counters included — survives a JSON round trip unchanged.
func TestMetricsJSONRoundTrip(t *testing.T) {
	c := tracedCluster(NewMemTracer())
	c.Faults = &FaultModel{TaskFailureProb: 0.3, Seed: 7}
	job := wordCountJob(4, true)
	base := job.Combiner
	job.Combiner = CombinerFunc[string, int64](func(ctx *TaskContext, k string, vs []int64, emit func(int64)) {
		ctx.Observe("reservoir_size", int64(len(vs)))
		base.Combine(ctx, k, vs, emit)
	})
	res, err := Run(c, job, wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.Metrics.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back Metrics
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Metrics, back) {
		t.Fatalf("metrics changed across JSON round trip:\n got %+v\nwant %+v", back, res.Metrics)
	}
}

// TestMetricsAttemptAccounting: attempts on a fault-injected run exceed the
// task counts and match between a fresh run and an accumulated one.
func TestMetricsAttemptAccounting(t *testing.T) {
	c := NewCluster(4)
	c.Faults = &FaultModel{TaskFailureProb: 0.5, MaxAttempts: 6, Seed: 21}
	res, err := Run(c, wordCountJob(9, true), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.MapAttempts <= int64(m.MapTasks) && m.ReduceAttempts <= int64(m.ReduceTasks) {
		t.Fatalf("p=0.5 injected no retries: map %d/%d, reduce %d/%d",
			m.MapAttempts, m.MapTasks, m.ReduceAttempts, m.ReduceTasks)
	}
	var sum Metrics
	sum.Add(m)
	sum.Add(m)
	if sum.MapAttempts != 2*m.MapAttempts || sum.ReduceAttempts != 2*m.ReduceAttempts {
		t.Fatal("Add lost attempt counts")
	}
	if sum.MapTaskNanos.Count() != 2*m.MapTaskNanos.Count() {
		t.Fatal("Add lost histogram observations")
	}
}

func TestPrometheusExport(t *testing.T) {
	c := tracedCluster(NewMemTracer())
	res, err := Run(c, wordCountJob(1, false), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`strata_map_input_records_total{job="wordcount"} 4`,
		`strata_map_output_records_total{job="wordcount"} 10`,
		`strata_shuffle_records_total{job="wordcount"}`,
		`# TYPE strata_map_task_duration_nanoseconds histogram`,
		`strata_map_task_duration_nanoseconds_bucket{job="wordcount",le="+Inf"} 3`,
		`strata_shuffle_bucket_bytes_count{job="wordcount"} 9`,
		`strata_key_reduce_records_total{job="wordcount",key="a"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus text missing %q in:\n%s", want, text)
		}
	}
	// Deterministic output: two renders are identical.
	var again bytes.Buffer
	if err := res.Metrics.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != text {
		t.Fatal("prometheus output not deterministic")
	}
}

// corruptTransport wraps a Transport and corrupts the payloads sent by one
// map task, to prove decode failures name the originating task.
type corruptTransport struct {
	Transport
	task int
}

func (c *corruptTransport) Send(task, reducer int, payload []byte) (int, error) {
	if task == c.task && len(payload) > 0 {
		payload = append([]byte("garbage:"), payload...)
	}
	return c.Transport.Send(task, reducer, payload)
}

// TestDecodeErrorNamesOriginatingTask is the transport bugfix regression: a
// reducer that fails to decode a bucket must say which map task sent it.
func TestDecodeErrorNamesOriginatingTask(t *testing.T) {
	c := NewCluster(3)
	c.NewTransport = func() (Transport, error) {
		return &corruptTransport{Transport: NewMemTransport(), task: 1}, nil
	}
	_, err := Run(c, wordCountJob(1, true), wcSplits)
	if err == nil {
		t.Fatal("corrupted shuffle payload went unnoticed")
	}
	if !strings.Contains(err.Error(), "map task 1") {
		t.Fatalf("error does not name the originating map task: %v", err)
	}
}

// TestMemTransportNamesMissingTasks is the other half of the bugfix: a
// bucket shortfall lists exactly the absent map tasks.
func TestMemTransportNamesMissingTasks(t *testing.T) {
	tr := NewMemTransport()
	for _, task := range []int{0, 2} {
		if _, err := tr.Send(task, 7, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	_, err := tr.Receive(7, 4)
	if err == nil {
		t.Fatal("want shortfall error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "reducer 7") || !strings.Contains(msg, "[1 3]") {
		t.Fatalf("shortfall error does not name reducer and missing tasks: %v", err)
	}
}

func TestPromEscapeControlBytes(t *testing.T) {
	m := Metrics{Job: "j", PerKey: map[string]KeyStats{
		"\x00\x01ok": {Records: 2, Output: 1},
	}}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if want := `key="\\x00\\x01ok"`; !strings.Contains(out, want) {
		t.Fatalf("control bytes not escaped: output lacks %s", want)
	}
	for i := 0; i < len(out); i++ {
		if c := out[i]; c != '\n' && (c < 0x20 || c == 0x7f) {
			t.Fatalf("raw control byte %#x leaked at offset %d", c, i)
		}
	}
}
