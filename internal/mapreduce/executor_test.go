package mapreduce

import (
	"bytes"
	"log/slog"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

// The tests here pin the executor seam's core contract: a job routed
// through the portable path — (Maker, Config) registry, gob-serialized
// splits and buckets, TaskSpec/TaskResult round-trips — produces output,
// metrics and (under a frozen clock) span streams byte-identical to the
// in-process engine.

// remoteModCountJob is a portable test job exercising every seam the
// backends must agree on: a combiner (canonical combine order), a custom
// KeyString, per-key reducer randomness (per-key reseeding), and Observe
// (custom histogram transport).
func remoteModCountJob() *Job[int, int, int64, int64] {
	return &Job[int, int, int64, int64]{
		Name: "remote-modcount",
		Mapper: MapperFunc[int, int, int64](func(_ *TaskContext, v int, emit func(int, int64)) {
			emit(v%53, int64(v))
		}),
		Combiner: CombinerFunc[int, int64](func(ctx *TaskContext, _ int, vs []int64, emit func(int64)) {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			ctx.Observe("combine_in", int64(len(vs)))
			emit(sum)
		}),
		Reducer: ReducerFunc[int, int64, int64](func(ctx *TaskContext, k int, vs []int64, emit func(int64)) {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			// The random draw pins per-key RNG seeding: any backend that
			// seeds differently produces different output.
			emit(sum + ctx.Rand.Int63n(1000))
		}),
		KeyString: func(k int) string { return "k" + strconv.Itoa(k) },
	}
}

func init() {
	RegisterJobMaker("test-remote-modcount",
		func(config []byte) (*Job[int, int, int64, int64], error) {
			return remoteModCountJob(), nil
		})
}

// loopbackExecutor drives the full remote path (runRemote + registry +
// serialization) without processes: Execute is what a worker would run.
type loopbackExecutor struct{}

func (loopbackExecutor) Name() string                                { return "loopback" }
func (loopbackExecutor) Execute(spec *TaskSpec) (*TaskResult, error) { return ExecuteTask(spec) }
func (loopbackExecutor) Close() error                                { return nil }

func remoteTestSplits() [][]int {
	splits := make([][]int, 7)
	for s := range splits {
		rows := make([]int, 400+13*s)
		for i := range rows {
			rows[i] = s*1000 + i*3
		}
		splits[s] = rows
	}
	return splits
}

func remoteTestCluster() *Cluster {
	return &Cluster{
		Slaves: 3, SlotsPerSlave: 2, Cost: DefaultCostModel(),
		Clock: FrozenClock(time.Unix(0, 0)),
	}
}

func portableJob(seed int64) *Job[int, int, int64, int64] {
	job := remoteModCountJob()
	job.Seed = seed
	job.Maker = "test-remote-modcount"
	return job
}

func TestRemoteExecutorMatchesInproc(t *testing.T) {
	splits := remoteTestSplits()
	want, err := Run(remoteTestCluster(), portableJob(42), splits)
	if err != nil {
		t.Fatal(err)
	}
	remote := remoteTestCluster()
	remote.Executor = loopbackExecutor{}
	got, err := Run(remote, portableJob(42), splits)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Output, got.Output) {
		t.Errorf("remote output differs from in-process:\n in: %v\nout: %v", want.Output, got.Output)
	}
	if !reflect.DeepEqual(want.Metrics, got.Metrics) {
		t.Errorf("remote metrics differ from in-process:\n in: %+v\nout: %+v", want.Metrics, got.Metrics)
	}
}

func TestRemoteExecutorMatchesInprocWithTransport(t *testing.T) {
	splits := remoteTestSplits()
	inproc := remoteTestCluster()
	inproc.NewTransport = func() (Transport, error) { return NewMemTransport(), nil }
	want, err := Run(inproc, portableJob(7), splits)
	if err != nil {
		t.Fatal(err)
	}
	remote := remoteTestCluster()
	remote.NewTransport = func() (Transport, error) { return NewMemTransport(), nil }
	remote.Executor = loopbackExecutor{}
	got, err := Run(remote, portableJob(7), splits)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Output, got.Output) {
		t.Errorf("remote output differs from in-process over a transport")
	}
	if want.Metrics.ShuffleBytes != got.Metrics.ShuffleBytes {
		t.Errorf("wire shuffle bytes: in-process %d, remote %d",
			want.Metrics.ShuffleBytes, got.Metrics.ShuffleBytes)
	}
}

// TestRemoteGoldenSpans locks the executor seam's observability contract:
// under a frozen clock the remote path's span file is byte-identical to the
// in-process one (the loopback executor reports no worker id, so not even
// normalization is needed).
func TestRemoteGoldenSpans(t *testing.T) {
	splits := remoteTestSplits()
	faults := &FaultModel{TaskFailureProb: 0.3, Seed: 99}

	run := func(exec Executor) []byte {
		var buf bytes.Buffer
		c := remoteTestCluster()
		c.Faults = faults
		tr := NewJSONLTracer(&buf)
		c.Tracer = tr
		c.Executor = exec
		if _, err := Run(c, portableJob(11), splits); err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Fatal("no spans written")
		}
		return buf.Bytes()
	}
	inproc := run(nil)
	remote := run(loopbackExecutor{})
	if !bytes.Equal(inproc, remote) {
		t.Errorf("span files differ between in-process and remote execution:\n--- inproc ---\n%s\n--- remote ---\n%s", inproc, remote)
	}
}

// TestNonPortableJobFallsBack checks that a closure-only job (no Maker)
// still runs correctly when a remote executor is installed: the engine
// keeps it in-process instead of failing — and that the fallback is loud,
// not silent: the counter moves and a structured warning names the job.
func TestNonPortableJobFallsBack(t *testing.T) {
	splits := remoteTestSplits()
	want, err := Run(remoteTestCluster(), portableJob(5), splits)
	if err != nil {
		t.Fatal(err)
	}

	var logs bytes.Buffer
	prev := slog.Default()
	slog.SetDefault(slog.New(slog.NewTextHandler(&logs, &slog.HandlerOptions{Level: slog.LevelWarn})))
	defer slog.SetDefault(prev)
	before := NonPortableFallbacks()

	c := remoteTestCluster()
	c.Executor = loopbackExecutor{}
	job := remoteModCountJob() // no Maker set
	job.Seed = 5
	got, err := Run(c, job, splits)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Output, got.Output) {
		t.Errorf("fallback output differs from in-process run")
	}
	if d := NonPortableFallbacks() - before; d != 1 {
		t.Errorf("NonPortableFallbacks moved by %d, want 1", d)
	}
	out := logs.String()
	if !strings.Contains(out, "job is not portable") {
		t.Errorf("fallback warning missing from logs:\n%s", out)
	}
	if !strings.Contains(out, "job="+job.Name) {
		t.Errorf("fallback warning does not name job %q:\n%s", job.Name, out)
	}
	if !strings.Contains(out, "executor=loopback") {
		t.Errorf("fallback warning does not name the bypassed executor:\n%s", out)
	}
}

// TestInprocExecutorIsRecognized checks the engine treats an installed
// *InprocExecutor like no executor (the fast closure path), and that its
// Execute method still works standalone through the registry.
func TestInprocExecutorIsRecognized(t *testing.T) {
	c := remoteTestCluster()
	c.Executor = &InprocExecutor{}
	if c.remoteExecutor() != nil {
		t.Fatal("InprocExecutor must not be treated as a remote executor")
	}
	splits := remoteTestSplits()
	want, err := Run(remoteTestCluster(), portableJob(3), splits)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(c, portableJob(3), splits)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Output, got.Output) {
		t.Errorf("InprocExecutor cluster output differs")
	}
}

func TestExecuteTaskUnknownMaker(t *testing.T) {
	_, err := ExecuteTask(&TaskSpec{Job: "x", Maker: "no-such-maker", Phase: "map"})
	if err == nil {
		t.Fatal("want error for unregistered maker")
	}
}
