package mapreduce

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestClusterValidate(t *testing.T) {
	valid := func() *Cluster { return NewCluster(3) }
	cases := []struct {
		name    string
		mutate  func(*Cluster)
		wantErr string // substring; empty means valid
	}{
		{name: "default is valid", mutate: func(*Cluster) {}},
		{name: "zero cost model via constructor", mutate: func(c *Cluster) { c.Cost = ZeroCostModel() }},
		{name: "no slaves", mutate: func(c *Cluster) { c.Slaves = 0 }, wantErr: "at least 1 slave"},
		{name: "negative slaves", mutate: func(c *Cluster) { c.Slaves = -2 }, wantErr: "at least 1 slave"},
		{name: "no slots", mutate: func(c *Cluster) { c.SlotsPerSlave = 0 }, wantErr: "slot per slave"},
		{name: "negative parallelism", mutate: func(c *Cluster) { c.MaxParallelism = -1 }, wantErr: "MaxParallelism"},
		{name: "zero parallelism means as-many-as-slots", mutate: func(c *Cluster) { c.MaxParallelism = 0 }},
		{name: "forgotten cost model", mutate: func(c *Cluster) { c.Cost = CostModel{} }, wantErr: "no cost model"},
		{name: "negative map rate", mutate: func(c *Cluster) { c.Cost.MapPerRecord = -time.Millisecond }, wantErr: "MapPerRecord is negative"},
		{name: "negative shuffle rate", mutate: func(c *Cluster) { c.Cost.ShufflePerByte = -1 }, wantErr: "ShufflePerByte is negative"},
		{name: "negative overhead", mutate: func(c *Cluster) { c.Cost.TaskOverhead = -time.Second }, wantErr: "TaskOverhead is negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := valid()
			tc.mutate(c)
			err := c.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestRunRejectsInvalidCluster checks Run surfaces Validate errors before
// doing any work.
func TestRunRejectsInvalidCluster(t *testing.T) {
	c := NewCluster(2)
	c.MaxParallelism = -3
	_, err := Run(c, remoteModCountJob(), [][]int{{1, 2, 3}})
	if err == nil || !strings.Contains(err.Error(), "MaxParallelism") {
		t.Fatalf("Run = %v, want MaxParallelism validation error", err)
	}
}

// TestTCPTransportReceiveTimeout pins the named timeout error: a reducer
// whose map-side payloads never arrive fails with *ReceiveTimeoutError
// instead of blocking forever.
func TestTCPTransportReceiveTimeout(t *testing.T) {
	tr, err := NewTCPTransport()
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.ReceiveTimeout = 50 * time.Millisecond

	// Two map tasks expected; only task 0 ever sends to reducer 1.
	if _, err := tr.Send(0, 1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	_, err = tr.Receive(1, 2)
	if err == nil {
		t.Fatal("Receive returned without the missing bucket, want timeout")
	}
	var te *ReceiveTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("Receive error %T (%v), want *ReceiveTimeoutError", err, err)
	}
	if te.Reducer != 1 || te.Task != 1 {
		t.Errorf("timeout names reducer %d task %d, want reducer 1 task 1", te.Reducer, te.Task)
	}
	if want := "mapreduce: reducer 1 timed out waiting for task 1"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q, want prefix %q", err, want)
	}

	// A fully delivered reducer still receives normally under the deadline.
	if _, err := tr.Send(0, 0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Send(1, 0, []byte("b")); err != nil {
		t.Fatal(err)
	}
	payloads, err := tr.Receive(0, 2)
	if err != nil {
		t.Fatalf("Receive(0) = %v, want success", err)
	}
	if len(payloads) != 2 {
		t.Fatalf("Receive(0) returned %d payloads, want 2", len(payloads))
	}
}
