package mapreduce

import (
	"fmt"
	"sort"
	"time"
)

// CostModel converts task counters into simulated durations for the virtual
// clock. All rates are per record or per byte. The defaults are calibrated so
// the phase split of a sampling job resembles the paper's measurement —
// roughly 70% map, 28% combine, ~1% reduce — and so cluster scaling is
// dominated by per-record work rather than overheads.
type CostModel struct {
	// MapPerRecord is the simulated time to read and map one input record
	// (includes the I/O of scanning the split).
	MapPerRecord time.Duration
	// CombinePerRecord is the simulated time the combiner spends per
	// map-output record it consumes.
	CombinePerRecord time.Duration
	// ShufflePerByte is the simulated network transfer time per shuffled
	// byte.
	ShufflePerByte time.Duration
	// ReducePerRecord is the simulated time per reduce-input record.
	ReducePerRecord time.Duration
	// TaskOverhead is the fixed startup cost of every task (JVM spin-up,
	// scheduling, etc. in the real system).
	TaskOverhead time.Duration

	// zeroOK marks an intentionally all-zero model (ZeroCostModel). Without
	// it, Cluster.Validate rejects a zero-valued Cost, catching hand-built
	// clusters that forgot to install a model and would silently report
	// zero simulated durations.
	zeroOK bool
}

// DefaultCostModel returns the calibrated model described above. The map
// rate encodes that a record of the paper's dataset is ~100 KB on disk
// (1 ms at ~100 MB/s of scan bandwidth); combine and reduce handle small
// extracted tuples.
func DefaultCostModel() CostModel {
	return CostModel{
		MapPerRecord:     1 * time.Millisecond,
		CombinePerRecord: 60 * time.Microsecond,
		ShufflePerByte:   20 * time.Nanosecond,
		ReducePerRecord:  20 * time.Microsecond,
		TaskOverhead:     500 * time.Millisecond,
	}
}

// ZeroCostModel returns a model under which every simulated duration is zero;
// useful for tests that only care about outputs and counters. Unlike a plain
// zero CostModel value — which Cluster.Validate rejects as "no cost model" —
// the returned model is marked as intentionally zero.
func ZeroCostModel() CostModel { return CostModel{zeroOK: true} }

// validate reports a configuration error: negative rates, or an all-zero
// model that was not built with ZeroCostModel (a hand-assembled cluster that
// never set Cost).
func (m CostModel) validate() error {
	for _, f := range []struct {
		name string
		d    time.Duration
	}{
		{"MapPerRecord", m.MapPerRecord},
		{"CombinePerRecord", m.CombinePerRecord},
		{"ShufflePerByte", m.ShufflePerByte},
		{"ReducePerRecord", m.ReducePerRecord},
		{"TaskOverhead", m.TaskOverhead},
	} {
		if f.d < 0 {
			return fmt.Errorf("mapreduce: cost model %s is negative (%v)", f.name, f.d)
		}
	}
	if m == (CostModel{}) {
		return fmt.Errorf("mapreduce: cluster has no cost model (use DefaultCostModel or ZeroCostModel)")
	}
	return nil
}

// makespan schedules task durations on `slots` parallel slots using greedy
// longest-processing-time-first assignment and returns the finishing time of
// the last slot. It models a wave-scheduled MapReduce phase.
func makespan(durations []time.Duration, slots int) time.Duration {
	if len(durations) == 0 {
		return 0
	}
	if slots < 1 {
		slots = 1
	}
	sorted := make([]time.Duration, len(durations))
	copy(sorted, durations)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	loads := make([]time.Duration, slots)
	for _, d := range sorted {
		// Assign to the least-loaded slot.
		minIdx := 0
		for i := 1; i < slots; i++ {
			if loads[i] < loads[minIdx] {
				minIdx = i
			}
		}
		loads[minIdx] += d
	}
	var max time.Duration
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}
