package mapreduce

import (
	"reflect"
	"strings"
	"testing"
)

func faultCluster(f *FaultModel) *Cluster {
	c := NewCluster(4)
	c.Faults = f
	return c
}

// TestFaultsDoNotChangeOutput: deterministic re-execution means injected
// failures cost time, never correctness.
func TestFaultsDoNotChangeOutput(t *testing.T) {
	clean, err := Run(NewCluster(4), wordCountJob(7, true), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Run(faultCluster(&FaultModel{TaskFailureProb: 0.4, Seed: 1}), wordCountJob(7, true), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedWC(clean.Output), sortedWC(faulty.Output)) {
		t.Fatal("fault injection changed job output")
	}
	if faulty.Metrics.MapAttempts < int64(faulty.Metrics.MapTasks) {
		t.Fatalf("attempts %d below task count %d", faulty.Metrics.MapAttempts, faulty.Metrics.MapTasks)
	}
}

func TestFaultsChargeVirtualTime(t *testing.T) {
	// Big enough workload that retries dominate the comparison; high
	// failure probability guarantees extra attempts.
	splits := make([][]string, 12)
	for i := range splits {
		lines := make([]string, 200)
		for j := range lines {
			lines[j] = "a b c"
		}
		splits[i] = lines
	}
	clean, err := Run(NewCluster(4), wordCountJob(7, true), splits)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Run(faultCluster(&FaultModel{TaskFailureProb: 0.3, MaxAttempts: 8, Seed: 3}), wordCountJob(7, true), splits)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Metrics.MapAttempts <= int64(faulty.Metrics.MapTasks) {
		t.Fatalf("expected retries, attempts %d for %d tasks", faulty.Metrics.MapAttempts, faulty.Metrics.MapTasks)
	}
	if faulty.Metrics.SimulatedMap <= clean.Metrics.SimulatedMap {
		t.Fatalf("failures did not slow the virtual clock: %v vs %v",
			faulty.Metrics.SimulatedMap, clean.Metrics.SimulatedMap)
	}
}

func TestFaultsAbortAfterMaxAttempts(t *testing.T) {
	c := faultCluster(&FaultModel{TaskFailureProb: 1, MaxAttempts: 3, Seed: 1})
	_, err := Run(c, wordCountJob(1, false), wcSplits)
	if err == nil || !strings.Contains(err.Error(), "failed 3 attempts") {
		t.Fatalf("want max-attempts error, got %v", err)
	}
}

func TestFaultsDeterministic(t *testing.T) {
	f := &FaultModel{TaskFailureProb: 0.3, StragglerStdDev: 0.5, Seed: 9}
	a, err := Run(faultCluster(f), wordCountJob(2, true), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(faultCluster(f), wordCountJob(2, true), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.MapAttempts != b.Metrics.MapAttempts ||
		a.Metrics.SimulatedMap != b.Metrics.SimulatedMap {
		t.Fatal("fault injection not reproducible")
	}
}

func TestStragglersStretchMakespan(t *testing.T) {
	splits := make([][]string, 20)
	for i := range splits {
		splits[i] = []string{"x y z", "x"}
	}
	clean, err := Run(NewCluster(4), wordCountJob(5, true), splits)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(faultCluster(&FaultModel{StragglerStdDev: 1.5, Seed: 2}), wordCountJob(5, true), splits)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Metrics.MapAttempts != int64(slow.Metrics.MapTasks) {
		t.Fatal("stragglers alone must not add attempts")
	}
	if slow.Metrics.SimulatedMap == clean.Metrics.SimulatedMap {
		t.Fatal("straggler factors had no effect on the makespan")
	}
}

func TestNilFaultModelIsNoop(t *testing.T) {
	var f *FaultModel
	plan, err := f.plan("map", 0)
	if err != nil || plan.attempts != 1 || plan.factor != 1 {
		t.Fatalf("nil model plan = %+v, %v", plan, err)
	}
}
