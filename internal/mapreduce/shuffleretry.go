package mapreduce

import (
	"errors"
	"time"
)

// ShuffleRetryPolicy bounds re-attempts of a shuffle receive that timed out
// (*ReceiveTimeoutError). A timeout is transient when the sending side is
// merely slow — a map attempt being reassigned after a worker death, a
// congested link — so giving the transfer another bounded wait beats failing
// the whole job on the first expiry. Receives are only retried while the
// senders can still deliver (the alive check); decode errors and other
// transport failures are never retried.
type ShuffleRetryPolicy struct {
	// MaxRetries is how many extra Receive attempts follow a timeout.
	// 0 means the default (2); negative disables retries entirely.
	MaxRetries int
	// Backoff delays each retry, scaled linearly by the retry number.
	// Default 50ms.
	Backoff time.Duration
}

func (p ShuffleRetryPolicy) fill() ShuffleRetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 2
	}
	if p.Backoff <= 0 {
		p.Backoff = 50 * time.Millisecond
	}
	return p
}

// receiveRetrying wraps Transport.Receive with the policy: a
// *ReceiveTimeoutError is retried — after backoff — while attempts remain and
// alive() (when non-nil) still reports that the senders' side is up; the
// engine wires alive to the executor's live-worker count, so a shuffle whose
// senders all crashed fails fast instead of burning the retry budget. It
// returns the payloads, the number of retries it performed, and the final
// error.
func receiveRetrying(t Transport, reducer, expect int, pol ShuffleRetryPolicy, alive func() bool) ([][]byte, int64, error) {
	pol = pol.fill()
	var retries int64
	for {
		payloads, err := t.Receive(reducer, expect)
		if err == nil {
			return payloads, retries, nil
		}
		var timeout *ReceiveTimeoutError
		if !errors.As(err, &timeout) {
			return nil, retries, err
		}
		if pol.MaxRetries < 0 || retries >= int64(pol.MaxRetries) {
			return nil, retries, err
		}
		if alive != nil && !alive() {
			return nil, retries, err
		}
		retries++
		time.Sleep(time.Duration(retries) * pol.Backoff)
	}
}

// executorAlive derives the retry liveness check from an executor: retries
// continue only while the executor still has live workers to deliver the
// missing buckets. Executors that don't expose liveness — and the in-process
// engine, which has no leases at all — retry unconditionally (still bounded
// by MaxRetries).
func executorAlive(exec Executor) func() bool {
	if lw, ok := exec.(interface{ LiveWorkers() int }); ok {
		return func() bool { return lw.LiveWorkers() > 0 }
	}
	return nil
}
