package mapreduce

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.String() != "empty" || h.Quantile(0.5) != 0 {
		t.Fatal("zero histogram not empty")
	}
	for _, v := range []int64{1, 2, 3, 100, 1000, 0, -5} {
		h.Observe(v)
	}
	if h.Count() != 7 || h.Sum() != 1101 || h.Min() != -5 || h.Max() != 1000 {
		t.Fatalf("summary wrong: %s", h.String())
	}
	if q := h.Quantile(1); q != 1000 {
		t.Fatalf("p100 = %d, want max 1000", q)
	}
	if q := h.Quantile(0); q != -5 {
		t.Fatalf("p0 = %d, want min -5", q)
	}
	// p50 of {-5,0,1,2,3,100,1000} is 2; the bucket bound answer must be
	// within a factor of 2 (bucket [2,3]).
	if q := h.Quantile(0.5); q < 2 || q > 3 {
		t.Fatalf("p50 = %d, want in [2,3]", q)
	}
}

// TestHistogramQuantileInterpolation pins the within-bucket linear
// interpolation: on uniformly spread data the estimate lands on (essentially)
// the true order statistic instead of snapping to the bucket's 2^i−1 upper
// bound, and the estimate is monotone in q.
func TestHistogramQuantileInterpolation(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	// Old behavior returned bucket upper bounds: p50=511, p90=1000 (clamped
	// from 1023). Interpolation pins the uniform data's near-exact answers
	// (the p50's fractional rank 499.5 lands between 500 and 501 and rounds
	// half away from zero).
	if q := h.Quantile(0.5); q != 501 {
		t.Fatalf("p50 = %d, want 501", q)
	}
	if q := h.Quantile(0.9); q != 900 {
		t.Fatalf("p90 = %d, want 900", q)
	}
	if q := h.Quantile(0.99); q != 990 {
		t.Fatalf("p99 = %d, want 990", q)
	}

	// Monotone in q, and always inside the observed range.
	prev := h.Quantile(0)
	for q := 0.01; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%.2f gave %d after %d", q, v, prev)
		}
		if v < h.Min() || v > h.Max() {
			t.Fatalf("Quantile(%.2f) = %d outside [%d,%d]", q, v, h.Min(), h.Max())
		}
		prev = v
	}

	// A single observation is its own every-quantile (the min/max clamp
	// collapses the bucket to the point).
	var one Histogram
	one.Observe(10)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if v := one.Quantile(q); v != 10 {
			t.Fatalf("single-observation Quantile(%.2f) = %d, want 10", q, v)
		}
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 5, 5, 128, 1 << 40, math.MaxInt64, -9} {
		h.Observe(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, back) {
		t.Fatalf("round trip changed histogram: %s vs %s", h, back)
	}
	if err := back.UnmarshalJSON([]byte(`{"count":1,"buckets":[{"le":5,"count":1}]}`)); err == nil {
		t.Fatal("accepted a bucket bound that is not 2^i-1")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(4)
	a.Observe(1000)
	b.Observe(-1)
	b.Observe(7)
	a.Merge(b)
	if a.Count() != 4 || a.Min() != -1 || a.Max() != 1000 || a.Sum() != 1010 {
		t.Fatalf("merge wrong: %s", a.String())
	}
	var empty Histogram
	a.Merge(empty)
	if a.Count() != 4 {
		t.Fatal("merging empty changed count")
	}
	empty.Merge(a)
	if !reflect.DeepEqual(empty, a) {
		t.Fatal("merge into empty lost state")
	}
}

// TestHistogramMergeJSONRoundTrip is the audit-aggregation contract: per-run
// histograms serialized into metrics JSON can be decoded and merged across
// runs without re-bucketing, and the aggregate itself round-trips.
func TestHistogramMergeJSONRoundTrip(t *testing.T) {
	runs := [][]int64{
		{1, 5, 5, 64},
		{-3, 0, 7, 1 << 20},
		{2, 2, 2, math.MaxInt64},
	}
	var direct Histogram // everything observed into one histogram
	var merged Histogram // per-run histograms, JSON round-tripped, then merged
	for _, vs := range runs {
		var h Histogram
		for _, v := range vs {
			h.Observe(v)
			direct.Observe(v)
		}
		data, err := json.Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		var back Histogram
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		merged.Merge(back)
	}
	if !reflect.DeepEqual(direct, merged) {
		t.Fatalf("merge of round-tripped runs diverged: %s vs %s", direct, merged)
	}
	data, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, back) {
		t.Fatalf("aggregate round trip changed histogram: %s vs %s", merged, back)
	}
	if back.Count() != 12 || back.Min() != -3 || back.Max() != math.MaxInt64 {
		t.Fatalf("aggregate summary wrong: %s", back)
	}
}

func TestHistogramBucketBounds(t *testing.T) {
	cases := []struct {
		v  int64
		le int64
	}{
		{0, 0}, {-3, 0}, {1, 1}, {2, 3}, {3, 3}, {4, 7}, {1023, 1023}, {1024, 2047},
		{math.MaxInt64, math.MaxInt64},
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.v)
		bs := h.Buckets()
		if len(bs) != 1 || bs[0].Le != c.le || bs[0].Count != 1 {
			t.Fatalf("Observe(%d) → buckets %v, want le=%d", c.v, bs, c.le)
		}
	}
}
