package mapreduce

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Span phase names, in execution order. Every Run emits, per map task, one
// PhaseMap span per attempt (so the number of map spans equals
// Metrics.MapAttempts), then an optional PhaseCombine span and a
// PhaseShuffleSend span; per reducer, a PhaseShuffleRecv span and one
// PhaseReduce span per attempt; and finally a single PhaseJob span for the
// whole run.
const (
	PhaseMap         = "map"
	PhaseCombine     = "combine"
	PhaseShuffleSend = "shuffle-send"
	PhaseShuffleRecv = "shuffle-recv"
	PhaseReduce      = "reduce"
	PhaseJob         = "job"
)

// Child phases of a remote task attempt, emitted only when the cluster has a
// TraceContext: the attempt span decomposes into the coordinator-measured
// queue wait and wire time plus the worker's own measurements, shipped back
// inside the TaskResult (decode, exec, and push or recv depending on the
// attempt's shuffle role).
const (
	// PhaseQueue is the time a task spent in the pool's dispatch queue
	// before a worker slot picked it up (coordinator clock).
	PhaseQueue = "queue"
	// PhaseWire is the round-trip time not accounted for by any
	// worker-side span: frame encode, network transfer both ways, and
	// result decode. Derived as (recv − send) − Σ worker spans, so it
	// needs no clock alignment.
	PhaseWire = "wire"
	// PhaseDecode is the worker's task-frame decode time.
	PhaseDecode = "decode"
	// PhaseExec is the worker's task core execution time.
	PhaseExec = "exec"
	// PhasePush is the worker's direct-shuffle bucket delivery time (map
	// attempts running under a ShufflePlan).
	PhasePush = "push"
	// PhaseRecv is the worker's wait for peer-delivered shuffle buckets
	// (reduce attempts running under a ShufflePlan).
	PhaseRecv = "recv"
)

// Span is one traced unit of engine work: a task attempt, a per-task combine
// or shuffle leg, or the whole job. Wall durations are measured on the
// machine running the job; Simulated durations come from the cluster's cost
// model and fault plan, so a span file carries both the real execution
// profile and the virtual cluster's view (the paper's per-phase breakdown).
type Span struct {
	// Job is the job name the span belongs to.
	Job string `json:"job"`
	// Phase is one of the Phase* constants.
	Phase string `json:"phase"`
	// Task is the map-task or reduce-task index (0 for PhaseJob).
	Task int `json:"task"`
	// Attempt is the 1-based attempt number for map/reduce spans; attempts
	// beyond the first are re-executions injected by the FaultModel.
	Attempt int `json:"attempt,omitempty"`
	// Failed marks an attempt the FaultModel failed; the engine re-executed
	// the task, so a Failed span is always followed by another attempt.
	Failed bool `json:"failed,omitempty"`
	// Start is the span's wall-clock start, as an offset from the start of
	// Run (only meaningful relative to other spans of the same run).
	Start time.Duration `json:"start_ns"`
	// Wall is the measured duration. Fault-injected re-attempts did not
	// really run, so only the final (successful) attempt carries it.
	Wall time.Duration `json:"wall_ns,omitempty"`
	// Simulated is the virtual-clock charge for this span, including the
	// attempt's straggler factor.
	Simulated time.Duration `json:"sim_ns,omitempty"`
	// Records is the number of input records the span consumed.
	Records int64 `json:"records,omitempty"`
	// Out is the number of records the span produced.
	Out int64 `json:"out,omitempty"`
	// Groups is the number of distinct keys a reduce span processed.
	Groups int64 `json:"groups,omitempty"`
	// Bytes is the byte volume a shuffle span moved (wire bytes with a
	// Transport installed, approximated otherwise).
	Bytes int64 `json:"bytes,omitempty"`
	// Worker identifies the worker that ran the attempt when the cluster
	// executes on a remote backend (subprocess or TCP workers); empty for
	// in-process execution. Comparisons of span files across backends should
	// normalize this field: worker assignment races the pool's scheduling, so
	// it is the one deliberately nondeterministic span field.
	Worker string `json:"worker,omitempty"`
	// Trace is the distributed trace id the span belongs to. Empty unless
	// the emitting cluster carried a TraceContext (or the span producer —
	// the serve daemon, the CLI — stamped one); spans from different
	// processes sharing a Trace merge into one tree in `strata trace`.
	Trace string `json:"trace,omitempty"`
	// Run identifies the run/pass within the trace — e.g. "r3" for the
	// third cluster run of a CLI process, or "b5.p0" for serve batch 5,
	// pass group 0 — so concurrent passes writing one span file do not
	// interleave ambiguously.
	Run string `json:"run,omitempty"`
	// ID is the span's identifier within the trace: a deterministic hash
	// of its identity (see SpanID), so coordinator and workers agree on
	// ids without coordination. Zero when the span is untraced.
	ID uint64 `json:"id,omitempty"`
	// Parent is the ID of the enclosing span; zero for trace roots and
	// untraced spans.
	Parent uint64 `json:"parent,omitempty"`
}

// TraceContext is the cross-process trace identity a Cluster propagates into
// every span of a run and into every TaskSpec shipped to a worker. Setting
// it (together with an enabled Tracer) turns on distributed tracing: each
// span gains Trace/Run/ID/Parent stamps, and remote task attempts decompose
// into queue/wire/decode/exec/push/recv child spans.
type TraceContext struct {
	// Trace is the trace id, typically a random hex string minted by
	// whatever admitted the request (the serve daemon, the CLI).
	Trace string
	// Run names this cluster run within the trace (satisfies the
	// one-span-file-many-passes disambiguation: every span of the run
	// carries it).
	Run string
	// Parent is the span id the run's PhaseJob spans hang under — e.g.
	// the serve daemon's pass span — or zero for a root run.
	Parent uint64
}

// FNV-64a parameters, written out so SpanID needs no hash/fnv allocation.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// SpanID derives a deterministic span id from the span's identity parts
// (trace id, run, job, phase, task, attempt, ...). It is an FNV-64a hash
// with a separator fold between parts, never returns zero (zero means
// "untraced"/"root"), and is the shared convention that lets workers, the
// coordinator, and the serve daemon agree on parent links without passing
// ids over the wire for every span.
func SpanID(parts ...string) uint64 {
	h := uint64(fnvOffset64)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= fnvPrime64
		}
		h ^= 0xff // separator: ("ab","c") must differ from ("a","bc")
		h *= fnvPrime64
	}
	if h == 0 {
		h = 1
	}
	return h
}

// attemptSpanID is the id of a task-attempt span (or the job span, with
// phase PhaseJob and task/attempt zero) under the given context.
func attemptSpanID(ctx TraceContext, job, phase string, task, attempt int) uint64 {
	return SpanID(ctx.Trace, ctx.Run, job, phase, strconv.Itoa(task), strconv.Itoa(attempt))
}

// childSpanID is the id of a sub-attempt child span (queue/wire/decode/...),
// distinguished from the attempt span by the trailing phase part.
func childSpanID(ctx TraceContext, job, phase string, task, attempt int, sub string) uint64 {
	return SpanID(ctx.Trace, ctx.Run, job, phase, strconv.Itoa(task), strconv.Itoa(attempt), sub)
}

// spanStamper wraps the run's tracer when the cluster has a TraceContext,
// stamping every span that passes through with the trace identity: Trace and
// Run from the context, ID from the SpanID convention, and Parent linking
// task-level spans under the job span and the job span under ctx.Parent.
// Spans that arrive with an explicit ID/Parent (the remote child spans) are
// left alone apart from the Trace/Run stamps.
type spanStamper struct {
	ctx   TraceContext
	inner Tracer
}

// stampTracer wraps inner so every emitted span carries ctx's identity.
func stampTracer(ctx TraceContext, inner Tracer) Tracer {
	return &spanStamper{ctx: ctx, inner: inner}
}

// Enabled reports true: the engine only wraps an enabled tracer.
func (t *spanStamper) Enabled() bool { return true }

// Emit stamps and forwards the span.
func (t *spanStamper) Emit(s Span) {
	if s.Trace == "" {
		s.Trace = t.ctx.Trace
	}
	if s.Run == "" {
		s.Run = t.ctx.Run
	}
	if s.ID == 0 {
		s.ID = SpanID(s.Trace, s.Run, s.Job, s.Phase, strconv.Itoa(s.Task), strconv.Itoa(s.Attempt))
	}
	if s.Parent == 0 {
		if s.Phase == PhaseJob {
			s.Parent = t.ctx.Parent
		} else {
			// Task-level spans hang under the run's job span.
			s.Parent = SpanID(s.Trace, s.Run, s.Job, PhaseJob, "0", "0")
		}
	}
	t.inner.Emit(s)
}

// JobStarted forwards the announcement when the wrapped tracer observes jobs.
func (t *spanStamper) JobStarted(job string, mapTasks, reduceTasks int) {
	if jo, ok := t.inner.(JobObserver); ok {
		jo.JobStarted(job, mapTasks, reduceTasks)
	}
}

// Tracer receives spans from the engine. Implementations must be safe for
// concurrent Emit calls; the engine currently emits from its serial
// accounting sections, in deterministic order, but that is not part of the
// contract. A nil Tracer on the Cluster — or one whose Enabled returns false
// — keeps the hot path free of all timing and span work.
type Tracer interface {
	// Enabled reports whether spans are wanted; the engine checks it once
	// per Run and skips all span assembly (including wall-clock reads) when
	// it is false.
	Enabled() bool
	// Emit delivers one finished span.
	Emit(Span)
}

// JobObserver is an optional extension of Tracer. When the cluster's enabled
// tracer implements it, the engine announces each run *before* any task
// executes, carrying the per-phase task totals the span stream alone cannot
// provide (spans only exist for finished work). Live progress consumers —
// audit.Tracker behind the CLI's /progress endpoint — need the totals to
// render "done/total" meaningfully from the first moment of a run.
type JobObserver interface {
	// JobStarted reports a run about to execute: its name and how many map
	// and reduce tasks it will schedule.
	JobStarted(job string, mapTasks, reduceTasks int)
}

// TeeTracer fans every span out to several tracers — e.g. a JSONLTracer
// writing the span file and a progress tracker feeding /progress. It is
// enabled when any member is enabled, and forwards only to the enabled
// members; JobStarted reaches every enabled member that implements
// JobObserver.
type TeeTracer struct {
	tracers []Tracer
}

// NewTeeTracer combines the given tracers; nil entries are dropped.
func NewTeeTracer(tracers ...Tracer) *TeeTracer {
	t := &TeeTracer{}
	for _, tr := range tracers {
		if tr != nil {
			t.tracers = append(t.tracers, tr)
		}
	}
	return t
}

// Enabled reports whether any member wants spans.
func (t *TeeTracer) Enabled() bool {
	for _, tr := range t.tracers {
		if tr.Enabled() {
			return true
		}
	}
	return false
}

// Emit forwards the span to every enabled member.
func (t *TeeTracer) Emit(s Span) {
	for _, tr := range t.tracers {
		if tr.Enabled() {
			tr.Emit(s)
		}
	}
}

// JobStarted forwards the announcement to every enabled member that
// implements JobObserver.
func (t *TeeTracer) JobStarted(job string, mapTasks, reduceTasks int) {
	for _, tr := range t.tracers {
		if jo, ok := tr.(JobObserver); ok && tr.Enabled() {
			jo.JobStarted(job, mapTasks, reduceTasks)
		}
	}
}

// NopTracer is a Tracer that records nothing; it behaves exactly like a nil
// Cluster.Tracer and exists so callers can thread a Tracer value
// unconditionally.
type NopTracer struct{}

// Enabled reports false.
func (NopTracer) Enabled() bool { return false }

// Emit discards the span.
func (NopTracer) Emit(Span) {}

// MemTracer collects spans in memory, for tests and in-process reporting.
type MemTracer struct {
	mu    sync.Mutex
	spans []Span
}

// NewMemTracer returns an empty in-memory tracer.
func NewMemTracer() *MemTracer { return &MemTracer{} }

// Enabled reports true.
func (t *MemTracer) Enabled() bool { return true }

// Emit appends the span.
func (t *MemTracer) Emit(s Span) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Spans returns a copy of everything emitted so far.
func (t *MemTracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Reset discards all collected spans.
func (t *MemTracer) Reset() {
	t.mu.Lock()
	t.spans = nil
	t.mu.Unlock()
}

// JSONLTracer writes one JSON object per span to an io.Writer — the span
// file format `strata trace` reads back. Writes are buffered; call Close (or
// Flush) before reading the file.
type JSONLTracer struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLTracer returns a tracer writing JSON lines to w.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	bw := bufio.NewWriter(w)
	return &JSONLTracer{bw: bw, enc: json.NewEncoder(bw)}
}

// Enabled reports true.
func (t *JSONLTracer) Enabled() bool { return true }

// Emit encodes the span as one JSON line. The first encoding error sticks
// and is reported by Close.
func (t *JSONLTracer) Emit(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(s)
}

// Flush forces buffered spans to the underlying writer.
func (t *JSONLTracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	return t.bw.Flush()
}

// Close flushes and returns the first error seen. It does not close the
// underlying writer.
func (t *JSONLTracer) Close() error {
	if err := t.Flush(); err != nil {
		return fmt.Errorf("mapreduce: writing span file: %w", err)
	}
	return nil
}

// ReadSpans parses a JSON-lines span file produced by JSONLTracer.
func ReadSpans(r io.Reader) ([]Span, error) {
	var spans []Span
	dec := json.NewDecoder(r)
	for {
		var s Span
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				return spans, nil
			}
			return nil, fmt.Errorf("mapreduce: span file line %d: %w", len(spans)+1, err)
		}
		spans = append(spans, s)
	}
}
