package mapreduce

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/wire"
)

// Transport moves serialized shuffle buckets from map tasks to reducers. The
// default engine keeps buckets in memory; installing a transport on the
// cluster makes the shuffle pass through real serialization (gob) and —
// with TCPTransport — a real network stack, so shuffle byte counts are
// measured on the wire instead of estimated.
//
// The engine sends exactly one payload per (map task, reducer) pair,
// including empty ones, and receives them back grouped by reducer, ordered
// by map task. Implementations must be safe for concurrent Send calls.
type Transport interface {
	// Send ships one map task's bucket for one reducer and returns the
	// number of bytes moved.
	Send(task, reducer int, payload []byte) (int, error)
	// Receive returns the payloads destined for a reducer, ordered by map
	// task, once all expected sends completed. expect is the number of
	// map tasks.
	Receive(reducer, expect int) ([][]byte, error)
	// Close releases the transport's resources.
	Close() error
}

// ReceiveTimeoutError reports that a reducer gave up waiting for a map task's
// shuffle bucket: the sender died, hung, or was reassigned. Task is the first
// missing map task. The worker runtime's lease-expiry path matches it with
// errors.As to distinguish "the data never came" from decode errors when
// deciding whether a reduce attempt is retryable.
type ReceiveTimeoutError struct {
	// Reducer is the waiting reduce task.
	Reducer int
	// Task is the lowest-numbered map task whose bucket never arrived.
	Task int
	// Timeout is the configured receive deadline that expired.
	Timeout time.Duration
}

// Error renders the timeout, naming both ends of the missing transfer.
func (e *ReceiveTimeoutError) Error() string {
	return fmt.Sprintf("mapreduce: reducer %d timed out waiting for task %d (after %v)",
		e.Reducer, e.Task, e.Timeout)
}

// memTransport is a trivial in-process Transport used for testing the
// transport path without sockets.
type memTransport struct {
	mu      sync.Mutex
	buckets map[int]map[int][]byte // reducer → task → payload
}

// NewMemTransport returns an in-memory Transport. Its purpose is exercising
// the engine's serialization path deterministically; TCPTransport is the
// interesting implementation.
func NewMemTransport() Transport {
	return &memTransport{buckets: make(map[int]map[int][]byte)}
}

func (m *memTransport) Send(task, reducer int, payload []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.buckets[reducer] == nil {
		m.buckets[reducer] = make(map[int][]byte)
	}
	m.buckets[reducer][task] = payload
	return len(payload), nil
}

func (m *memTransport) Receive(reducer, expect int) ([][]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	got := m.buckets[reducer]
	if len(got) != expect {
		// Name the map tasks whose buckets never arrived: "got 3, want 4"
		// left the operator guessing which sender failed.
		var missing []int
		for t := 0; t < expect; t++ {
			if _, ok := got[t]; !ok {
				missing = append(missing, t)
			}
		}
		return nil, fmt.Errorf("mapreduce: reducer %d received %d of %d buckets, missing map tasks %v",
			reducer, len(got), expect, missing)
	}
	tasks := make([]int, 0, len(got))
	for t := range got {
		tasks = append(tasks, t)
	}
	sort.Ints(tasks)
	out := make([][]byte, 0, len(tasks))
	for _, t := range tasks {
		out = append(out, got[t])
	}
	return out, nil
}

func (m *memTransport) Close() error { return nil }

// TCPTransport ships shuffle buckets over loopback TCP connections with
// length-prefixed frames, like a real cluster's shuffle fetch. Bytes
// reported by Send are actual wire bytes (header + payload).
type TCPTransport struct {
	listener net.Listener
	addr     string

	// ReceiveTimeout bounds how long Receive blocks for a missing bucket.
	// Zero (the default) waits forever — safe in-process, where a dead
	// sender already failed the job, but a real worker backend must set it:
	// a crashed remote mapper would otherwise hang every reducer. On expiry
	// Receive returns a *ReceiveTimeoutError naming the first missing map
	// task. Set it before the first Receive call.
	ReceiveTimeout time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	buckets map[int]map[int][]byte
	err     error

	wg      sync.WaitGroup
	closing chan struct{}
}

// NewTCPTransport starts a loopback listener and the receiver loop.
func NewTCPTransport() (*TCPTransport, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("mapreduce: starting shuffle listener: %w", err)
	}
	t := &TCPTransport{
		listener: l,
		addr:     l.Addr().String(),
		buckets:  make(map[int]map[int][]byte),
		closing:  make(chan struct{}),
	}
	t.cond = sync.NewCond(&t.mu)
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener address (for tests).
func (t *TCPTransport) Addr() string { return t.addr }

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			select {
			case <-t.closing:
				return
			default:
				t.fail(err)
				return
			}
		}
		t.wg.Add(1)
		go t.serve(conn)
	}
}

// frame header: task (int32), reducer (int32), payload length (int32).
const frameHeaderSize = 12

func (t *TCPTransport) serve(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	header := make([]byte, frameHeaderSize)
	for {
		if _, err := io.ReadFull(conn, header); err != nil {
			if err != io.EOF {
				t.fail(fmt.Errorf("mapreduce: shuffle frame header: %w", err))
			}
			return
		}
		task := int(int32(binary.BigEndian.Uint32(header[0:])))
		reducer := int(int32(binary.BigEndian.Uint32(header[4:])))
		size := int(int32(binary.BigEndian.Uint32(header[8:])))
		if size < 0 {
			t.fail(fmt.Errorf("mapreduce: shuffle frame from map task %d for reducer %d: negative payload size %d",
				task, reducer, size))
			return
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(conn, payload); err != nil {
			// The header identified the sender, so a truncated payload can
			// name the originating map task instead of losing it.
			t.fail(fmt.Errorf("mapreduce: shuffle payload from map task %d for reducer %d: %w", task, reducer, err))
			return
		}
		t.mu.Lock()
		if t.buckets[reducer] == nil {
			t.buckets[reducer] = make(map[int][]byte)
		}
		t.buckets[reducer][task] = payload
		t.cond.Broadcast()
		t.mu.Unlock()
	}
}

func (t *TCPTransport) fail(err error) {
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.cond.Broadcast()
	t.mu.Unlock()
}

// Send dials the shuffle listener and writes one frame. Connections are
// per-call, mirroring shuffle fetches; payload sizes dominate, so connection
// reuse is not worth the complexity here.
func (t *TCPTransport) Send(task, reducer int, payload []byte) (int, error) {
	conn, err := net.Dial("tcp", t.addr)
	if err != nil {
		return 0, fmt.Errorf("mapreduce: shuffle dial: %w", err)
	}
	defer conn.Close()
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.BigEndian.PutUint32(frame[0:], uint32(task))
	binary.BigEndian.PutUint32(frame[4:], uint32(reducer))
	binary.BigEndian.PutUint32(frame[8:], uint32(len(payload)))
	copy(frame[frameHeaderSize:], payload)
	if _, err := conn.Write(frame); err != nil {
		return 0, fmt.Errorf("mapreduce: shuffle write: %w", err)
	}
	return len(frame), nil
}

// Receive blocks until all map tasks' buckets for the reducer arrived, or —
// when ReceiveTimeout is set — until the deadline expires, in which case it
// returns a *ReceiveTimeoutError naming the first missing map task.
func (t *TCPTransport) Receive(reducer, expect int) ([][]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	expired := false
	if t.ReceiveTimeout > 0 {
		timer := time.AfterFunc(t.ReceiveTimeout, func() {
			t.mu.Lock()
			expired = true
			t.cond.Broadcast()
			t.mu.Unlock()
		})
		defer timer.Stop()
	}
	for t.err == nil && !expired && len(t.buckets[reducer]) < expect {
		t.cond.Wait()
	}
	if t.err != nil {
		return nil, t.err
	}
	if got := t.buckets[reducer]; len(got) < expect {
		missing := 0
		for task := 0; task < expect; task++ {
			if _, ok := got[task]; !ok {
				missing = task
				break
			}
		}
		return nil, &ReceiveTimeoutError{Reducer: reducer, Task: missing, Timeout: t.ReceiveTimeout}
	}
	got := t.buckets[reducer]
	tasks := make([]int, 0, len(got))
	for task := range got {
		tasks = append(tasks, task)
	}
	sort.Ints(tasks)
	out := make([][]byte, 0, len(tasks))
	for _, task := range tasks {
		out = append(out, got[task])
	}
	return out, nil
}

// Close stops the listener and waits for the receiver loops.
func (t *TCPTransport) Close() error {
	close(t.closing)
	err := t.listener.Close()
	t.wg.Wait()
	return err
}

// encodeBucket serializes one map task's pairs for the wire: one payload
// tag byte, then either the registered binary pair codec or gob. The tag
// makes every bucket self-describing, which direct shuffle needs — the
// sending worker cannot know the consuming worker's negotiated format. A
// bucket payload is therefore never empty (the tag byte is always present),
// which the engine relies on as its hole marker.
func encodeBucket[K comparable, V any](pairs []Pair[K, V]) ([]byte, error) {
	if c, ok := lookupBucketCodec[K, V](); ok && !gobPayloads.Load() {
		buf := make([]byte, 1, 64)
		buf[0] = payloadBinary
		buf = wire.AppendUvarint(buf, uint64(len(pairs)))
		for _, p := range pairs {
			buf = c.AppendPair(buf, p)
		}
		return buf, nil
	}
	var buf bytes.Buffer
	buf.WriteByte(payloadGob)
	if err := gob.NewEncoder(&buf).Encode(pairs); err != nil {
		return nil, fmt.Errorf("mapreduce: encoding shuffle bucket: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeBucket reverses encodeBucket, dispatching on the payload tag.
func decodeBucket[K comparable, V any](payload []byte) ([]Pair[K, V], error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("mapreduce: empty shuffle bucket: %w", wire.ErrTruncated)
	}
	switch payload[0] {
	case payloadGob:
		var pairs []Pair[K, V]
		if err := gob.NewDecoder(bytes.NewReader(payload[1:])).Decode(&pairs); err != nil {
			return nil, fmt.Errorf("mapreduce: decoding shuffle bucket: %w", err)
		}
		return pairs, nil
	case payloadBinary:
		c, ok := lookupBucketCodec[K, V]()
		if !ok {
			return nil, fmt.Errorf("mapreduce: binary shuffle bucket for unregistered pair type %T", (Pair[K, V]{}))
		}
		r := wire.NewReader(payload[1:])
		n := r.Count(1)
		var pairs []Pair[K, V]
		if n > 0 {
			pairs = make([]Pair[K, V], 0, n)
		}
		for i := 0; i < n; i++ {
			p, err := c.ReadPair(r)
			if err != nil {
				return nil, fmt.Errorf("mapreduce: decoding shuffle bucket: %w", err)
			}
			pairs = append(pairs, p)
		}
		if err := r.Done(); err != nil {
			return nil, fmt.Errorf("mapreduce: decoding shuffle bucket: %w", err)
		}
		return pairs, nil
	default:
		return nil, fmt.Errorf("mapreduce: shuffle bucket with unknown payload tag %#x: %w", payload[0], wire.ErrCorrupt)
	}
}
