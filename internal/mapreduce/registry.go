package mapreduce

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"time"
)

// Remote workers cannot receive Go closures, so a job travels as a (Maker,
// Config) pair: Maker names a factory registered — in every process that
// might run the job's tasks — with RegisterJobMaker, and Config is the
// factory's serialized argument (the query, schema, options...). The worker
// rebuilds the full Job from them and executes task specs through the same
// task cores (task.go) the in-process engine uses, so output stays
// byte-identical across backends.

// taskRunner is a type-erased portable job: the registry stores these so it
// can dispatch specs without knowing the job's type parameters.
type taskRunner interface {
	runTask(spec *TaskSpec) (*TaskResult, error)
}

var registry = struct {
	sync.Mutex
	makers map[string]func(name string, config []byte) (taskRunner, error)
	// cache holds built runners keyed by maker+config, so a worker serving
	// many tasks of one job compiles its predicates once, not per attempt.
	// Workers run a handful of job families; the cache stays small.
	cache map[string]taskRunner
}{
	makers: make(map[string]func(name string, config []byte) (taskRunner, error)),
	cache:  make(map[string]taskRunner),
}

// RegisterJobMaker registers a named job factory. Call it from an init
// function of the package that builds the job, so every binary linking that
// package — the coordinator and its workers alike — can reconstruct the job
// from its serialized config. It panics on duplicate names, like gob.Register.
//
// The factory receives the TaskSpec's Config bytes and must deterministically
// rebuild the job: mapper, combiner, reducer, Partition and KeyString all
// included. Name and Seed are overridden from the spec, so the factory need
// not set them.
func RegisterJobMaker[I any, K comparable, V any, O any](name string, maker func(config []byte) (*Job[I, K, V, O], error)) {
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.makers[name]; dup {
		panic(fmt.Sprintf("mapreduce: RegisterJobMaker: duplicate maker %q", name))
	}
	registry.makers[name] = func(jobName string, config []byte) (taskRunner, error) {
		job, err := maker(config)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: maker %q: %w", name, err)
		}
		job.Name = jobName
		return &jobRunner[I, K, V, O]{job: job}, nil
	}
}

// runnerFor returns the (possibly cached) runner for the spec's job.
func runnerFor(spec *TaskSpec) (taskRunner, error) {
	key := spec.Maker + "\x00" + spec.Job + "\x00" + string(spec.Config)
	registry.Lock()
	defer registry.Unlock()
	if r, ok := registry.cache[key]; ok {
		return r, nil
	}
	mk, ok := registry.makers[spec.Maker]
	if !ok {
		return nil, fmt.Errorf("mapreduce: no job maker registered as %q (worker binary missing a registration?)", spec.Maker)
	}
	r, err := mk(spec.Job, spec.Config)
	if err != nil {
		return nil, err
	}
	registry.cache[key] = r
	return r, nil
}

// ExecuteTask runs one portable task spec in this process: the worker-side
// entry point (and the InprocExecutor's implementation).
func ExecuteTask(spec *TaskSpec) (*TaskResult, error) {
	r, err := runnerFor(spec)
	if err != nil {
		return nil, err
	}
	return r.runTask(spec)
}

// jobRunner adapts a concrete Job to the type-erased taskRunner interface.
type jobRunner[I any, K comparable, V any, O any] struct {
	job *Job[I, K, V, O]
}

func (jr *jobRunner[I, K, V, O]) runTask(spec *TaskSpec) (*TaskResult, error) {
	switch spec.Phase {
	case "map":
		return jr.runMap(spec)
	case "reduce":
		return jr.runReduce(spec)
	default:
		return nil, fmt.Errorf("mapreduce: task spec for job %q has unknown phase %q", spec.Job, spec.Phase)
	}
}

// taskClock returns a stage-boundary timer for worker-side execution: nil
// under a frozen coordinator clock (walls must stay zero for cross-backend
// span determinism), otherwise offsets from the task's own start.
func taskClock(spec *TaskSpec) func() time.Duration {
	if spec.Frozen {
		return nil
	}
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

func (jr *jobRunner[I, K, V, O]) runMap(spec *TaskSpec) (*TaskResult, error) {
	split, err := decodeSlice[I](spec.Split)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: decoding split of map task %d: %w", spec.Task, err)
	}
	run := execMapTask(jr.job, spec.Seed, split, spec.Task, spec.NumReducers, taskClock(spec))
	res := &TaskResult{
		Buckets: make([][]byte, len(run.buckets)),
		Counters: TaskCounters{
			In: run.in, Out: run.out,
			CombineIn: run.combineIn, CombineOut: run.combineOut,
			BucketSizes: make([]int64, len(run.buckets)),
			MapWall:     run.mapDone,
			CombineWall: run.combineDone - run.mapDone,
		},
		Custom: run.custom,
	}
	for r := range run.buckets {
		payload, err := encodeBucket(run.buckets[r])
		if err != nil {
			return nil, err
		}
		res.Buckets[r] = payload
		res.Counters.BucketSizes[r] = bucketApproxSize(run.buckets[r])
	}
	return res, nil
}

func (jr *jobRunner[I, K, V, O]) runReduce(spec *TaskSpec) (*TaskResult, error) {
	parts := make([][]Pair[K, V], len(spec.Buckets))
	for task, payload := range spec.Buckets {
		pairs, err := decodeBucket[K, V](payload)
		if err != nil {
			// Payloads arrive in map-task order, so the index names the
			// originating map task — same diagnostics as the engine's own
			// shuffle decode.
			return nil, fmt.Errorf("mapreduce: reducer %d: bucket from map task %d: %w", spec.Task, task, err)
		}
		parts[task] = pairs
	}
	groups := groupPairs(parts)
	names := groups.sortByName(jr.job.keyString)
	run := execReduceTask(jr.job, spec.Seed, groups, names, spec.Task, spec.CollectKeys)
	payload, err := encodeSlice(run.out)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: encoding reduce %d output: %w", spec.Task, err)
	}
	return &TaskResult{
		Output: payload,
		Counters: TaskCounters{
			In:     run.inRecs,
			Out:    int64(len(run.out)),
			Groups: int64(len(groups.keyOrder)),
		},
		Custom: run.custom,
		PerKey: run.perKey,
	}, nil
}

// DecodeTaskOutput decodes a reduce attempt's Output payload back into
// records. The coordinator-side engine uses it; it is exported for tests and
// tools that inspect raw results.
func DecodeTaskOutput[O any](payload []byte) ([]O, error) {
	out, err := decodeSlice[O](payload)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: decoding reduce output: %w", err)
	}
	return out, nil
}

// gobEncode serializes v with gob (deterministic for a fixed static type and
// value, since every payload uses a fresh encoder).
func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// gobDecode reverses gobEncode into the pointed-to value.
func gobDecode(payload []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}
