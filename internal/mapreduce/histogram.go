package mapreduce

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// histogramBuckets is the number of power-of-two buckets a Histogram keeps:
// bucket 0 holds non-positive observations, bucket i (1 ≤ i ≤ 64) holds
// values v with 2^(i-1) ≤ v < 2^i, i.e. bits.Len64(v) == i.
const histogramBuckets = 65

// Histogram is a fixed-memory log₂-bucket histogram of int64 observations
// (nanoseconds, bytes, record counts, ...). The zero value is ready to use.
// Buckets double in width, so relative resolution is a constant factor of 2
// at every scale — enough to read off task-latency and bucket-size shapes
// without per-run configuration. Histograms are value types: copy, Merge and
// compare them freely. Observe is not safe for concurrent use; the engine
// fills per-task histograms and merges them serially, so Metrics stays
// deterministic.
type Histogram struct {
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [histogramBuckets]int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketIndex(v)]++
}

func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketUpperBound is the largest value bucket i can hold.
func bucketUpperBound(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<i - 1
}

// Count is the number of observations.
func (h Histogram) Count() int64 { return h.count }

// Sum is the total of all observations.
func (h Histogram) Sum() int64 { return h.sum }

// Min is the smallest observation (0 when empty).
func (h Histogram) Min() int64 { return h.min }

// Max is the largest observation (0 when empty).
func (h Histogram) Max() int64 { return h.max }

// Mean is the average observation (0 when empty).
func (h Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Merge folds another histogram into this one.
func (h *Histogram) Merge(o Histogram) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// bucketLowerBound is the smallest positive value bucket i can hold (the
// non-positive bucket 0 reports 0; its true lower edge is the observed min).
func bucketLowerBound(i int) int64 {
	if i <= 1 {
		return int64(i) // bucket 0 → 0, bucket 1 → [1,1]
	}
	return int64(1) << (i - 1)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts. The
// target rank's bucket is found by cumulative count; within that bucket the
// answer is linearly interpolated between the bucket's bounds (clamped to the
// observed min/max) assuming the bucket's observations are evenly spread.
// Interpolation removes the power-of-two jumps the old upper-bound answer had:
// as q sweeps 0→1 the estimate moves smoothly through each bucket instead of
// snapping to 2^i−1, while staying within the same factor-of-2 error envelope.
func (h Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count-1)
	target := int64(rank)
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			lo, hi := bucketLowerBound(i), bucketUpperBound(i)
			if lo < h.min {
				lo = h.min
			}
			if hi > h.max {
				hi = h.max
			}
			if hi <= lo {
				return hi
			}
			// The bucket's c observations occupy ranks [seen−c, seen−1];
			// place the fractional rank proportionally between them. A
			// single-observation bucket has no spread to interpolate over,
			// so estimate its midpoint.
			frac := 0.5
			if c > 1 {
				frac = (rank - float64(seen-c)) / float64(c-1)
				if frac < 0 {
					frac = 0
				} else if frac > 1 {
					frac = 1
				}
			}
			return lo + int64(math.Round(frac*float64(hi-lo)))
		}
	}
	return h.max
}

// HistogramBucket is one non-empty bucket in a histogram's JSON form: Count
// observations no larger than Le (and larger than the previous bucket's Le).
type HistogramBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending bound order.
func (h Histogram) Buckets() []HistogramBucket {
	var out []HistogramBucket
	for i, c := range h.buckets {
		if c != 0 {
			out = append(out, HistogramBucket{Le: bucketUpperBound(i), Count: c})
		}
	}
	return out
}

// histogramJSON is the wire form of a Histogram.
type histogramJSON struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Min     int64             `json:"min"`
	Max     int64             `json:"max"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// MarshalJSON renders the histogram as summary fields plus its non-empty
// buckets; UnmarshalJSON reverses it exactly (the representation round-trips).
func (h Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{
		Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, Buckets: h.Buckets(),
	})
}

// UnmarshalJSON reverses MarshalJSON.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*h = Histogram{count: w.Count, sum: w.Sum, min: w.Min, max: w.Max}
	for _, b := range w.Buckets {
		i := bucketIndex(b.Le)
		if bucketUpperBound(i) != b.Le {
			return fmt.Errorf("mapreduce: histogram bucket bound %d is not of the form 2^i-1", b.Le)
		}
		h.buckets[i] = b.Count
	}
	return nil
}

// GobEncode makes histograms portable across process boundaries (the worker
// runtime ships per-task Custom histograms back to the coordinator). It reuses
// the JSON wire form, which round-trips the histogram exactly.
func (h Histogram) GobEncode() ([]byte, error) { return h.MarshalJSON() }

// GobDecode reverses GobEncode.
func (h *Histogram) GobDecode(data []byte) error { return h.UnmarshalJSON(data) }

// String renders a one-line summary: count, mean and the quartile spread.
func (h Histogram) String() string {
	if h.count == 0 {
		return "empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f min=%d p50≤%d p90≤%d max=%d",
		h.count, h.Mean(), h.min, h.Quantile(0.5), h.Quantile(0.9), h.max)
	return b.String()
}
