// Package mapreduce implements an in-process MapReduce engine with the
// semantics the paper's algorithms rely on: a map phase over input splits,
// an optional per-map-task combiner, a hash-partitioned shuffle with byte
// accounting, and a reduce phase. Tasks run concurrently on goroutines.
//
// # Execution model
//
// Map tasks run on a bounded worker pool. The shuffle is pipelined: as soon
// as a map task finishes, its per-reducer buckets are encoded and handed to
// the cluster's Transport (or kept in memory), overlapping the remaining map
// work; reducers then receive, decode and group their buckets in parallel,
// one unit per reducer. Combiners draw their intermediate reservoir samples
// with Algorithm L (geometric skips), so a full-split scan costs
// O(k(1+log(n/k))) RNG draws instead of one per tuple. Output is
// byte-identical to a serial shuffle.
//
// # Virtual clock
//
// Because the original evaluation ran on a Hadoop cluster whose wall-clock
// behaviour we cannot reproduce on one machine, the engine additionally keeps
// a *virtual clock*: a configurable cost model assigns each task a simulated
// duration from its measured record and byte counts, and a scheduler computes
// the makespan over the cluster's map/reduce slots. The optional FaultModel
// injects deterministic task failures and stragglers into that clock.
// Counters (records, groups, shuffled bytes) are always measured, never
// modelled.
//
// # Observability
//
// A Tracer installed on the Cluster receives one Span per task attempt
// (fault re-executions included), combine, shuffle leg and job, carrying
// wall and simulated durations plus record/byte counts; implementations
// include an in-memory collector and a JSON-lines sink that `strata trace`
// renders into a per-phase timeline. Metrics carries per-phase Histograms
// (task latency, shuffle bucket bytes), user histograms observed through
// TaskContext.Observe, and optional per-key counters, and exports itself as
// JSON or Prometheus text. With a nil (or disabled) tracer every hook
// compiles down to a branch, keeping the hot path at its benchmarked speed.
//
// # Determinism
//
// Every map task and every reduce key gets its own random source, seeded
// from the job seed and the task index or key string, so a job's output is
// reproducible regardless of goroutine interleaving — and so is every
// Metrics field except the measured wall times.
package mapreduce
