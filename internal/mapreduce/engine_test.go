package mapreduce

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"
)

// wordCount is the canonical test job.
type wcOut struct {
	Word  string
	Count int64
}

func wordCountJob(seed int64, withCombiner bool) *Job[string, string, int64, wcOut] {
	job := &Job[string, string, int64, wcOut]{
		Name: "wordcount",
		Seed: seed,
		Mapper: MapperFunc[string, string, int64](func(_ *TaskContext, line string, emit func(string, int64)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		}),
		Reducer: ReducerFunc[string, int64, wcOut](func(_ *TaskContext, w string, vs []int64, emit func(wcOut)) {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			emit(wcOut{w, sum})
		}),
	}
	if withCombiner {
		job.Combiner = CombinerFunc[string, int64](func(_ *TaskContext, _ string, vs []int64, emit func(int64)) {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			emit(sum)
		})
	}
	return job
}

var wcSplits = [][]string{
	{"a b a", "c"},
	{"b b", "a c c c"},
	{},
}

func sortedWC(out []wcOut) []wcOut {
	s := append([]wcOut(nil), out...)
	sort.Slice(s, func(i, j int) bool { return s[i].Word < s[j].Word })
	return s
}

func TestWordCount(t *testing.T) {
	c := NewCluster(2)
	res, err := Run(c, wordCountJob(1, false), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	want := []wcOut{{"a", 3}, {"b", 3}, {"c", 4}}
	if got := sortedWC(res.Output); !reflect.DeepEqual(got, want) {
		t.Fatalf("output %v, want %v", got, want)
	}
}

func TestCombinerDoesNotChangeResult(t *testing.T) {
	c := NewCluster(3)
	plain, err := Run(c, wordCountJob(1, false), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Run(c, wordCountJob(1, true), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedWC(plain.Output), sortedWC(combined.Output)) {
		t.Fatal("combiner changed the word count")
	}
	if combined.Metrics.ShuffleRecords >= plain.Metrics.ShuffleRecords {
		t.Fatalf("combiner did not reduce shuffle: %d vs %d",
			combined.Metrics.ShuffleRecords, plain.Metrics.ShuffleRecords)
	}
}

func TestMetricsCounters(t *testing.T) {
	c := NewCluster(2)
	res, err := Run(c, wordCountJob(1, false), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.MapTasks != 3 || m.MapInputRecords != 4 {
		t.Fatalf("map counters: %+v", m)
	}
	if m.MapOutputRecords != 10 || m.ShuffleRecords != 10 {
		t.Fatalf("output/shuffle counters: %+v", m)
	}
	if m.ReduceInputGroups != 3 || m.OutputRecords != 3 {
		t.Fatalf("reduce counters: %+v", m)
	}
	if m.ShuffleBytes <= 0 {
		t.Fatal("shuffle bytes not accounted")
	}
	if m.SimulatedTotal() <= 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	// A reducer that consumes randomness: sampling one value per key.
	mkJob := func() *Job[string, string, int64, wcOut] {
		return &Job[string, string, int64, wcOut]{
			Name: "pick",
			Seed: 42,
			Mapper: MapperFunc[string, string, int64](func(ctx *TaskContext, line string, emit func(string, int64)) {
				for _, w := range strings.Fields(line) {
					emit(w, int64(len(w))+ctx.Rand.Int63n(100))
				}
			}),
			Reducer: ReducerFunc[string, int64, wcOut](func(ctx *TaskContext, w string, vs []int64, emit func(wcOut)) {
				emit(wcOut{w, vs[ctx.Rand.Intn(len(vs))]})
			}),
		}
	}
	r1, err := Run(&Cluster{Slaves: 1, SlotsPerSlave: 1, Cost: ZeroCostModel()}, mkJob(), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(&Cluster{Slaves: 8, SlotsPerSlave: 2, Cost: ZeroCostModel()}, mkJob(), wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedWC(r1.Output), sortedWC(r8.Output)) {
		t.Fatal("results differ across cluster sizes with the same seed")
	}
}

func TestSeedChangesRandomness(t *testing.T) {
	mk := func(seed int64) *Job[string, string, int64, wcOut] {
		j := wordCountJob(seed, false)
		j.Reducer = ReducerFunc[string, int64, wcOut](func(ctx *TaskContext, w string, vs []int64, emit func(wcOut)) {
			emit(wcOut{w, ctx.Rand.Int63n(1 << 30)})
		})
		return j
	}
	c := NewCluster(2)
	r1, _ := Run(c, mk(1), wcSplits)
	r2, _ := Run(c, mk(2), wcSplits)
	if reflect.DeepEqual(sortedWC(r1.Output), sortedWC(r2.Output)) {
		t.Fatal("different seeds produced identical random output")
	}
}

func TestRunValidation(t *testing.T) {
	job := wordCountJob(1, false)
	if _, err := Run(&Cluster{Slaves: 0, SlotsPerSlave: 1}, job, wcSplits); err == nil {
		t.Fatal("want cluster validation error")
	}
	bad := wordCountJob(1, false)
	bad.Mapper = nil
	if _, err := Run(NewCluster(1), bad, wcSplits); err == nil {
		t.Fatal("want missing-mapper error")
	}
	bad2 := wordCountJob(1, false)
	bad2.Reducer = nil
	if _, err := Run(NewCluster(1), bad2, wcSplits); err == nil {
		t.Fatal("want missing-reducer error")
	}
}

func TestCustomPartitioner(t *testing.T) {
	job := wordCountJob(1, false)
	job.NumReducers = 2
	job.Partition = func(k string, n int) int {
		if k == "a" {
			return 0
		}
		return 1
	}
	res, err := Run(NewCluster(2), job, wcSplits)
	if err != nil {
		t.Fatal(err)
	}
	// Output order is reducer-major: "a" (reducer 0) must come first.
	if res.Output[0].Word != "a" {
		t.Fatalf("first output %v, want word a", res.Output[0])
	}
}

func TestMakespan(t *testing.T) {
	ds := []time.Duration{4, 3, 3, 2} // seconds-agnostic units
	if got := makespan(ds, 1); got != 12 {
		t.Fatalf("serial makespan %d, want 12", got)
	}
	if got := makespan(ds, 2); got != 6 {
		t.Fatalf("2-slot makespan %d, want 6", got)
	}
	if got := makespan(ds, 4); got != 4 {
		t.Fatalf("4-slot makespan %d, want 4", got)
	}
	if got := makespan(nil, 3); got != 0 {
		t.Fatalf("empty makespan %d", got)
	}
}

func TestVirtualTimeScalesWithSlaves(t *testing.T) {
	// Many equal splits: simulated map time must shrink roughly linearly
	// in the number of slaves.
	splits := make([][]string, 20)
	for i := range splits {
		lines := make([]string, 50)
		for j := range lines {
			lines[j] = "x y z"
		}
		splits[i] = lines
	}
	t1, _ := Run(NewCluster(1), wordCountJob(1, true), splits)
	t10, _ := Run(NewCluster(10), wordCountJob(1, true), splits)
	r := float64(t1.Metrics.SimulatedMap) / float64(t10.Metrics.SimulatedMap)
	if r < 5 || r > 15 {
		t.Fatalf("map speedup 1→10 slaves = %.2f, want ≈10", r)
	}
}

func TestMetricsAddAndString(t *testing.T) {
	var m Metrics
	m.Add(Metrics{MapTasks: 1, ShuffleBytes: 10, SimulatedMap: time.Second})
	m.Add(Metrics{MapTasks: 2, ShuffleBytes: 5, SimulatedReduce: time.Second})
	if m.MapTasks != 3 || m.ShuffleBytes != 15 || m.SimulatedTotal() != 2*time.Second {
		t.Fatalf("Add result: %+v", m)
	}
	if m.String() == "" {
		t.Fatal("String empty")
	}
}

func TestApproxSize(t *testing.T) {
	if approxSize("hello") != 5 {
		t.Fatal("string size")
	}
	if approxSize(int64(1)) != 8 || approxSize(int32(1)) != 4 || approxSize(true) != 1 || approxSize(int16(1)) != 2 {
		t.Fatal("scalar sizes")
	}
	if approxSize(struct{}{}) != 8 {
		t.Fatal("default size")
	}
}

func TestTaskContextFields(t *testing.T) {
	c := NewCluster(1)
	var phase string
	job := wordCountJob(1, false)
	job.Mapper = MapperFunc[string, string, int64](func(ctx *TaskContext, line string, emit func(string, int64)) {
		phase = ctx.Phase
		if ctx.JobName != "wordcount" || ctx.Rand == nil {
			t.Error("bad task context")
		}
		emit(line, 1)
	})
	if _, err := Run(c, job, [][]string{{"w"}}); err != nil {
		t.Fatal(err)
	}
	if phase != "map" {
		t.Fatalf("phase %q", phase)
	}
}

func TestBadPartitionerPanics(t *testing.T) {
	job := wordCountJob(1, false)
	job.NumReducers = 2
	job.Partition = func(string, int) int { return 99 }
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range partitioner must panic")
		}
	}()
	_, _ = Run(NewCluster(1), job, wcSplits)
}
