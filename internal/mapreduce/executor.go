package mapreduce

import (
	"fmt"
	"time"
)

// TaskSpec is one task attempt in backend-portable form: everything a worker
// process needs to reconstruct the job (Maker + Config), seed its RNGs
// identically to an in-process run (Seed, Task, Phase), and the input bytes.
// Payloads carry a one-byte format tag (binary codec or gob fallback, see
// wire.go), so the wire format is shared with the Transport path and mixed
// pools interoperate per payload.
type TaskSpec struct {
	// Job is the job name, used in task contexts and error messages.
	Job string
	// Maker names the job factory registered with RegisterJobMaker; Config
	// is its serialized argument. Together they make the job portable: a
	// worker that links the same registrations rebuilds mapper, combiner,
	// reducer, partitioner and key renderer from them.
	Maker  string
	Config []byte
	// Phase is "map" or "reduce".
	Phase string
	// Task is the map-task or reduce-task index.
	Task int
	// Seed is the job seed; per-task and per-key seeds derive from it
	// exactly as in-process, which keeps output byte-identical.
	Seed int64
	// NumReducers is the job's reducer count (map tasks partition by it).
	NumReducers int
	// Split is the encoded input split of a map task (encodeSlice format).
	Split []byte
	// Buckets are the reduce task's shuffle payloads in map-task order. On
	// the direct-shuffle path an empty entry is a hole: the payload was (or
	// will be) delivered worker-to-worker and the reduce attempt receives it
	// from its peer instead of from this spec. A bucket payload is never
	// empty (encodeBucket of zero pairs still carries its format tag byte),
	// so emptiness is an unambiguous hole marker.
	Buckets [][]byte
	// NumMapTasks is the job's map-task count; reduce attempts on the direct
	// path use it to size their expected bucket set.
	NumMapTasks int
	// Shuffle, when non-nil, routes this job's shuffle buckets directly
	// between workers: a map attempt Sends each bucket to its reducer's
	// endpoint, and a reduce attempt Receives the holes of Buckets from
	// peers instead of unpacking them from the spec.
	Shuffle *ShufflePlan
	// CollectKeys asks a reduce attempt for per-key (per-stratum) counters.
	CollectKeys bool
	// Frozen tells the worker the coordinator runs under a FrozenClock: it
	// must report zero wall durations so traced runs stay byte-identical
	// across backends.
	Frozen bool
	// Trace, TraceRun and TraceParent propagate the coordinator's trace
	// context (Cluster.TraceContext) to the worker running this attempt:
	// the distributed trace id, the run/pass identifier, and the span id
	// of the attempt span the worker's measurements will be parented
	// under (best-effort: the spec is built before the pool knows which
	// real attempt it serves, so it names the first attempt). All
	// zero when tracing is off — workers then skip span collection
	// entirely. On the binary wire path these ride a version-gated
	// extension (wire version ≥ 2); gob carries them natively.
	Trace       string
	TraceRun    string
	TraceParent uint64
}

// TaskCounters are the measured counters of one executed task attempt.
type TaskCounters struct {
	// In, Out count task input and output records. For reduce attempts In
	// is the shuffled record count and Groups the distinct keys reduced.
	In, Out int64
	// CombineIn, CombineOut count the combiner's records on map attempts.
	CombineIn, CombineOut int64
	// Groups is the number of distinct keys a reduce attempt processed.
	Groups int64
	// BucketSizes are the approximate (bucketApproxSize) per-reducer sizes
	// of a map attempt's buckets — what the coordinator accounts as shuffle
	// bytes when no Transport is installed, keeping metrics identical to an
	// in-process run. The direct path keeps using these for Metrics, so
	// ShuffleBytes stay byte-identical across backends; the wire bytes the
	// worker edge actually carried travel in TaskResult.DirectBytes.
	BucketSizes []int64
	// MapWall and CombineWall are worker-measured stage durations (zero
	// under a frozen clock).
	MapWall, CombineWall time.Duration
	// RecvWall is the time a direct-path reduce attempt spent waiting for
	// peer-delivered buckets (zero under a frozen clock, and on the routed
	// path where the coordinator measures the receive itself).
	RecvWall time.Duration
}

// TaskAttempt records one real failed attempt of a task: the worker it was
// leased to and why it failed. Unlike FaultModel attempts — which are
// simulated and deterministic — these are genuine runtime failures (a worker
// crashed or its lease expired), so they appear only when something actually
// went wrong.
type TaskAttempt struct {
	// Worker identifies the worker the attempt ran on.
	Worker string
	// Err describes the failure.
	Err string
}

// TaskResult is the outcome of one successfully executed task attempt.
type TaskResult struct {
	// Buckets are a map attempt's per-reducer shuffle payloads
	// (encodeBucket format, exactly what the Transport path ships). On the
	// direct-shuffle path an entry is nil when the worker delivered it
	// straight to its reducer's endpoint; payloads whose delivery failed
	// (dead endpoint) stay in place, so the coordinator retains them as the
	// routed fallback for exactly those buckets.
	Buckets [][]byte
	// DirectBytes counts the wire bytes (frame header + payload) a map
	// attempt shipped directly to reducer endpoints. It is executor-level
	// accounting — deliberately not folded into Metrics, which keep the
	// backend-independent approximate sizes so metrics stay byte-identical
	// across backends.
	DirectBytes int64
	// Output is a reduce attempt's encoded output record slice
	// (encodeSlice format).
	Output []byte
	// Counters are the attempt's measured counters.
	Counters TaskCounters
	// Custom are the histograms user code observed via TaskContext.Observe.
	Custom map[string]*Histogram
	// PerKey are the reduce attempt's per-key counters when requested.
	PerKey map[string]KeyStats
	// Worker identifies the worker that produced this result.
	Worker string
	// FailedAttempts lists real attempts that died before this one
	// succeeded (crashes, lease expiries); the engine surfaces them as
	// failed spans and extra attempt counts.
	FailedAttempts []TaskAttempt
	// Spans are the worker-side measurements of this attempt (decode,
	// exec, push, recv — see the Phase* constants), present only when the
	// spec carried a trace context and the worker speaks wire version ≥ 2.
	// The coordinator lifts them into child spans of the attempt span.
	Spans []WorkerSpan

	// The remaining fields are coordinator-local attribution, filled in by
	// the executor pool on the coordinator side and never wire-encoded
	// (gob sends their zero values, the binary codec omits them): how long
	// the task waited in the dispatch queue, when its frame was sent and
	// its result received (coordinator clock, unix nanos), and the
	// worker's estimated clock offset from the hello handshake.
	QueueNanos       int64
	SentAtNanos      int64
	RecvAtNanos      int64
	ClockOffsetNanos int64
	ClockOffsetOK    bool
}

// WorkerSpan is one worker-side measurement of a task attempt, shipped back
// inside the TaskResult and lifted into proper child Spans by the
// coordinator. Workers emit, in deterministic order: decode and exec for
// every attempt, push after exec for map attempts running under a
// ShufflePlan, and recv between decode and exec for reduce attempts that
// waited on peer-delivered buckets.
type WorkerSpan struct {
	// Phase is PhaseDecode, PhaseExec, PhasePush or PhaseRecv.
	Phase string
	// Start is the worker's wall clock at span start in unix nanoseconds;
	// zero under a frozen coordinator clock. The coordinator aligns it to
	// its own timeline via the hello clock-offset estimate.
	Start int64
	// Dur is the measured duration (zero when frozen).
	Dur time.Duration
	// Bytes is the byte volume the span handled: frame payload bytes for
	// decode, wire bytes shipped for push, bucket bytes received for recv.
	Bytes int64
}

// Executor runs task attempts for the engine. The engine keeps all
// scheduling, fault simulation, metrics folding and span emission; an
// executor only answers "run this spec, give me the result", possibly on
// another process or machine. Execute must be safe for concurrent calls —
// the engine issues up to Cluster.workers() of them at once. Execute is
// expected to retry transient worker failures internally (recording them in
// TaskResult.FailedAttempts) and return an error only when the task is
// undeliverable.
type Executor interface {
	// Name identifies the backend ("inproc", "subprocess", "tcp") in logs
	// and errors.
	Name() string
	// Execute runs one task attempt to completion.
	Execute(spec *TaskSpec) (*TaskResult, error)
	// Close drains and releases the executor's workers. The executor
	// outlives individual jobs; close it when the process is done.
	Close() error
}

// ShufflePlan is the control-plane description of one job's direct
// worker-to-worker shuffle: for every reducer, the worker that will execute
// it and the shuffle-receiver endpoint its buckets must be sent to. The
// coordinator exchanges only this metadata (plus bucket sizes and completion
// acks); the bucket bytes themselves travel worker-to-worker.
type ShufflePlan struct {
	// Session namespaces this job run's buckets on every receiver, so
	// back-to-back jobs on one worker pool cannot mix payloads.
	Session string
	// Workers[r] is the id of the worker that hosts reducer r's buckets and
	// must execute its reduce attempt (shuffle affinity).
	Workers []string
	// Endpoints[r] is the shuffle-receiver address of Workers[r].
	Endpoints []string
	// TimeoutMs bounds how long a reduce attempt waits for peer-delivered
	// buckets before reporting a lost shuffle.
	TimeoutMs int64
}

// Timeout returns the receive deadline as a duration.
func (p *ShufflePlan) Timeout() time.Duration { return time.Duration(p.TimeoutMs) * time.Millisecond }

// DirectShuffler is implemented by executors whose workers can exchange
// shuffle buckets directly (today: the TCP worker pool). The engine asks for
// a plan per job run; a nil plan means the executor cannot shuffle directly
// right now (no capable workers attached, or direct shuffle disabled) and
// the coordinator-routed path is used instead.
type DirectShuffler interface {
	Executor
	// PlanShuffle assigns the job's reducers to shuffle-capable workers.
	PlanShuffle(job string, numReducers int) *ShufflePlan
	// ExecuteOn runs one attempt on the named worker (shuffle affinity).
	// Unlike Execute it never reassigns across workers: if the worker is
	// gone — or reports that its peer-delivered buckets never arrived — it
	// returns a *ShuffleLostError and the engine falls back to the routed
	// path, replaying buckets through the coordinator.
	ExecuteOn(worker string, spec *TaskSpec) (*TaskResult, error)
}

// ShuffleLostError reports that a direct-shuffle reduce attempt could not be
// completed on its planned worker: the worker died (taking its received
// buckets with it), its affinity queue was unreachable, or the expected
// peer buckets never arrived before the deadline. It is retryable — not on
// another worker, which would not hold the buckets either, but through the
// coordinator-routed fallback, which replays the buckets from (deterministic)
// map re-execution.
type ShuffleLostError struct {
	// Worker is the planned worker the attempt was lost on.
	Worker string
	// Reducer is the reduce task whose shuffle was lost.
	Reducer int
	// Reason describes what went wrong.
	Reason string
}

// Error renders the lost shuffle, naming the planned worker.
func (e *ShuffleLostError) Error() string {
	return fmt.Sprintf("mapreduce: reducer %d lost its direct shuffle on worker %s: %s",
		e.Reducer, e.Worker, e.Reason)
}

// InprocExecutor executes task specs in-process through the same registry
// path remote workers use. Installing it on a cluster is equivalent to
// leaving Cluster.Executor nil — the engine recognizes it and keeps the
// faster closure-based path — but Execute is also usable directly, which is
// how tests verify that the registry round-trip is byte-identical to native
// execution.
type InprocExecutor struct{}

// Name reports "inproc".
func (*InprocExecutor) Name() string { return "inproc" }

// Execute runs the spec through the job-maker registry in this process.
func (*InprocExecutor) Execute(spec *TaskSpec) (*TaskResult, error) {
	return ExecuteTask(spec)
}

// Close is a no-op.
func (*InprocExecutor) Close() error { return nil }
