package mapreduce

import (
	"bytes"
	"testing"
	"time"
)

// goldenSpanRun executes one traced word-count run with a frozen clock and
// returns the raw JSONL span bytes.
func goldenSpanRun(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	c := NewCluster(3)
	c.MaxParallelism = 4
	c.Tracer = tr
	c.Clock = FrozenClock(time.Unix(0, 0))
	c.Faults = &FaultModel{TaskFailureProb: 0.3, StragglerStdDev: 0.5, Seed: 7}
	if _, err := Run(c, wordCountJob(5, true), wcSplits); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenSpanFileDeterminism locks in trace determinism for audit replay:
// with the virtual clock (FrozenClock zeroes every wall measurement, the
// cost model supplies simulated durations) and a fixed job seed, the JSONL
// span file is byte-identical across runs — even with real parallelism and
// injected faults, because spans are emitted from the engine's serial
// accounting sections in deterministic order.
func TestGoldenSpanFileDeterminism(t *testing.T) {
	first := goldenSpanRun(t)
	if len(first) == 0 {
		t.Fatal("no spans written")
	}
	for i := 0; i < 3; i++ {
		if again := goldenSpanRun(t); !bytes.Equal(first, again) {
			t.Fatalf("span files differ across identical runs:\n--- first\n%s\n--- run %d\n%s", first, i+2, again)
		}
	}
	// The frozen clock must actually have zeroed the wall fields; otherwise
	// the equality above only held by luck.
	if bytes.Contains(first, []byte(`"wall_ns":`)) && !bytes.Contains(first, []byte(`"wall_ns":0`)) {
		// wall_ns has omitempty, so with a frozen clock it should not
		// appear at all.
		t.Fatalf("frozen clock leaked wall time into spans:\n%s", first)
	}
	if !bytes.Contains(first, []byte(`"sim_ns":`)) {
		t.Fatal("spans carry no simulated durations; determinism test is vacuous")
	}
	if !bytes.Contains(first, []byte(`"failed":true`)) {
		t.Fatal("fault model injected no failed attempts; widen the test")
	}
}
