// Package paper encodes the paper's worked examples and constructions as
// executable tests: the shared-cost semantics of Example 4, the distributed
// sampling walk-through of Example 5, the sharing dilemma of Examples 3/6,
// and the NP-hardness reduction of Section 5.2 (minimum vertex cover as an
// MSSD query), verified against brute force.
package paper

import (
	"math/rand"
	"testing"

	"repro/internal/cps"
	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/stratified"
)

// --- Example 4: a face-to-face survey ($20) and a telephone survey ($4);
// surveying one individual for both costs max(20, 4) = $20. ---

func TestExample4SharedCostSemantics(t *testing.T) {
	costs := query.TableCosts{
		Interview: []float64{20, 4},
		Shared:    map[query.Tau]float64{query.NewTau(0, 1): 20},
	}
	if got := costs.Cost(query.NewTau(0)); got != 20 {
		t.Fatalf("c{1} = %g", got)
	}
	if got := costs.Cost(query.NewTau(1)); got != 4 {
		t.Fatalf("c{2} = %g", got)
	}
	if got := costs.Cost(query.NewTau(0, 1)); got != 20 {
		t.Fatalf("c{1,2} = %g, want max(c1, c2) = 20", got)
	}
}

// --- Example 5: R has 64 individuals — 30 men and 34 women — on two
// machines; R1 = 20 men + 16 women, R2 = 10 men + 18 women; select 5 men and
// 6 women. ---

func example5Population() (*dataset.Relation, []dataset.Split) {
	schema := dataset.MustSchema(dataset.Field{Name: "gender", Min: 0, Max: 1})
	r := dataset.NewRelation(schema)
	id := int64(0)
	add := func(n int, gender int64) dataset.Split {
		var split dataset.Split
		for i := 0; i < n; i++ {
			tp := dataset.Tuple{ID: id, Attrs: []int64{gender}}
			r.MustAdd(tp)
			split = append(split, tp)
			id++
		}
		return split
	}
	r1 := append(add(20, 1), add(16, 0)...)
	r2 := append(add(10, 1), add(18, 0)...)
	return r, []dataset.Split{r1, r2}
}

func TestExample5DistributedSampling(t *testing.T) {
	r, splits := example5Population()
	q := query.NewSSD("ex5",
		query.Stratum{Cond: predicate.MustParse("gender = 1"), Freq: 5},
		query.Stratum{Cond: predicate.MustParse("gender = 0"), Freq: 6},
	)
	cluster := &mapreduce.Cluster{Slaves: 2, SlotsPerSlave: 1, Cost: mapreduce.ZeroCostModel()}
	ans, met, err := stratified.RunSQE(cluster, q, r.Schema(), splits, stratified.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ans.Satisfies(q, r); err != nil {
		t.Fatal(err)
	}
	// Two mappers × two strata → four intermediate weighted samples, as in
	// the paper's narration ("the reducer for s1 receives 5 tuples from
	// each combiner").
	if met.ShuffleRecords != 4 {
		t.Fatalf("shuffle records %d, want 4 combiner outputs", met.ShuffleRecords)
	}
	if met.CombineOutputRecs != 4 {
		t.Fatalf("combine outputs %d, want 4", met.CombineOutputRecs)
	}
}

// TestExample5MenUniform: in the Example 5 layout, each of the 30 men must
// be selected with probability 5/30 despite the 20/10 machine imbalance.
func TestExample5MenUniform(t *testing.T) {
	const runs = 6000
	r, splits := example5Population()
	q := query.NewSSD("ex5men", query.Stratum{Cond: predicate.MustParse("gender = 1"), Freq: 5})
	cluster := &mapreduce.Cluster{Slaves: 2, SlotsPerSlave: 1, Cost: mapreduce.ZeroCostModel()}
	counts := make([]int64, 0, 30)
	perID := map[int64]int64{}
	for run := 0; run < runs; run++ {
		ans, _, err := stratified.RunSQE(cluster, q, r.Schema(), splits, stratified.Options{Seed: int64(run)})
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range ans.Strata[0] {
			perID[tp.ID]++
		}
	}
	for _, c := range perID {
		counts = append(counts, c)
	}
	if len(perID) < 30 {
		t.Fatalf("only %d of 30 men ever sampled", len(perID))
	}
	p, err := stats.ChiSquareUniformP(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("men inclusion biased: p = %g", p)
	}
}

// --- Example 3/6: 50 men and 100 singles; naive maximal sharing (all men
// single) is biased, CPS keeps frequencies representative. ---

func TestExample6RepresentativeSharing(t *testing.T) {
	// Population: gender × income with controlled counts.
	schema := dataset.MustSchema(
		dataset.Field{Name: "gender", Min: 0, Max: 1},
		dataset.Field{Name: "income", Min: 0, Max: 300000},
	)
	r := dataset.NewRelation(schema)
	rng := rand.New(rand.NewSource(5))
	for i := int64(0); i < 600; i++ {
		gender := i % 2
		income := int64(rng.Intn(300001))
		r.MustAdd(dataset.Tuple{ID: i, Attrs: []int64{gender, income}})
	}
	q1 := query.NewSSD("Q1",
		query.Stratum{Cond: predicate.MustParse("gender = 1"), Freq: 10},
		query.Stratum{Cond: predicate.MustParse("gender = 0"), Freq: 15},
	)
	q2 := query.NewSSD("Q2",
		query.Stratum{Cond: predicate.MustParse("income < 50000"), Freq: 12},
		query.Stratum{Cond: predicate.MustParse("income > 200000"), Freq: 12},
	)
	m := query.NewMSSD(query.PenaltyCosts{Interview: 1}, q1, q2)
	splits, err := dataset.Partition(r, 2, dataset.Contiguous, nil)
	if err != nil {
		t.Fatal(err)
	}
	cluster := &mapreduce.Cluster{Slaves: 2, SlotsPerSlave: 1, Cost: mapreduce.ZeroCostModel()}

	// Over many runs, the fraction of women among Q1's answers must stay
	// 15/25 — CPS must not skew it to maximise sharing with Q2 (the trap
	// Example 6 warns about); and the fraction of high-income individuals
	// in Q1's *female stratum* must match their population share.
	const runs = 300
	var richWomenInA1, womenInA1 float64
	for run := 0; run < runs; run++ {
		res, err := cps.Run(cluster, m, r.Schema(), splits, cps.Options{Seed: int64(run)})
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range res.Answers[0].Strata[1] { // women stratum
			womenInA1++
			if tp.Attrs[1] > 200000 {
				richWomenInA1++
			}
		}
	}
	// Population share of >200k income among women.
	women := r.Select(func(tp *dataset.Tuple) bool { return tp.Attrs[0] == 0 })
	rich := 0
	for i := range women {
		if women[i].Attrs[1] > 200000 {
			rich++
		}
	}
	wantFrac := float64(rich) / float64(len(women))
	gotFrac := richWomenInA1 / womenInA1
	if gotFrac < wantFrac*0.85 || gotFrac > wantFrac*1.15 {
		t.Fatalf("rich-women share in A1 = %.3f, population share %.3f — sample was biased to maximise sharing",
			gotFrac, wantFrac)
	}
}

// --- Section 5.2: the NP-hardness reduction. A graph's minimum vertex cover
// is an optimal MSSD answer: one SSD per edge with stratum "id = u or id = v"
// and frequency 1, interview cost 1, sharing free. ---

func TestVertexCoverReduction(t *testing.T) {
	// A small graph with known minimum vertex cover.
	edges := [][2]int64{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {3, 4}, {4, 5}}
	const nodes = 6

	schema := dataset.MustSchema(dataset.Field{Name: "id", Min: 0, Max: nodes - 1})
	r := dataset.NewRelation(schema)
	for v := int64(0); v < nodes; v++ {
		r.MustAdd(dataset.Tuple{ID: v, Attrs: []int64{v}})
	}
	queries := make([]*query.SSD, len(edges))
	for e, uv := range edges {
		cond := predicate.Or{
			L: predicate.Compare{Attr: "id", Op: predicate.Eq, Value: uv[0]},
			R: predicate.Compare{Attr: "id", Op: predicate.Eq, Value: uv[1]},
		}
		queries[e] = query.NewSSD("edge", query.Stratum{Cond: cond, Freq: 1})
	}
	m := query.NewMSSD(query.PenaltyCosts{Interview: 1}, queries...)

	// The *unconstrained* optimum of this MSSD is the minimum vertex cover
	// — that equivalence is what makes optimal MSSD answering NP-hard.
	minCover := bruteForceVertexCover(edges, nodes)
	if minCover != 3 {
		t.Fatalf("test graph's minimum cover is %d, want 3", minCover)
	}

	var costs []float64
	for run := 0; run < 40; run++ {
		res, err := cps.Sequential(m, r, rand.New(rand.NewSource(int64(run))), cps.SolveOptions{Integer: true})
		if err != nil {
			t.Fatal(err)
		}
		cost := res.Answers.Cost(m.Costs) // = number of distinct selected vertices
		costs = append(costs, cost)

		// Every answer is a valid cover: each edge-survey got a vertex.
		selected := map[int64]bool{}
		for id := range res.Answers.Assignments() {
			selected[id] = true
		}
		for _, uv := range edges {
			if !selected[uv[0]] && !selected[uv[1]] {
				t.Fatalf("edge %v uncovered by %v", uv, selected)
			}
		}
		// No answer beats the true optimum...
		if int(cost) < minCover {
			t.Fatalf("cover of size %g below the minimum %d", cost, minCover)
		}
		// ...and sharing keeps it below the no-sharing cost of one vertex
		// per edge.
		if int(cost) > len(edges) {
			t.Fatalf("cover of size %g worse than no sharing at all", cost)
		}
	}
	// CPS must not systematically reach the minimum cover: it is optimal
	// only among algorithms returning *representative* samples — each
	// edge-survey picks its endpoint uniformly — while the vertex-cover
	// optimum requires exactly the biased, engineered selection the
	// framework forbids. This is the content of the NP-hardness argument:
	// dropping representativeness makes the problem as hard as vertex
	// cover; CPS keeps representativeness and stays polynomial.
	var mean float64
	for _, c := range costs {
		mean += c
	}
	mean /= float64(len(costs))
	if mean <= float64(minCover) {
		t.Fatalf("mean CPS cover %.2f at the NP-hard optimum %d — representativeness constraint lost", mean, minCover)
	}
}

// bruteForceVertexCover enumerates all vertex subsets.
func bruteForceVertexCover(edges [][2]int64, nodes int) int {
	best := nodes
	for mask := 0; mask < 1<<nodes; mask++ {
		covered := true
		for _, uv := range edges {
			if mask&(1<<uv[0]) == 0 && mask&(1<<uv[1]) == 0 {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		size := 0
		for v := 0; v < nodes; v++ {
			if mask&(1<<v) != 0 {
				size++
			}
		}
		if size < best {
			best = size
		}
	}
	return best
}
